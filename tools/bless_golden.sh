#!/usr/bin/env bash
# Regenerate the golden stats snapshots in tests/golden/.
#
#   tools/bless_golden.sh [build-dir]
#
# Rebuilds mg_trace_test and re-runs the snapshot suite with
# MG_BLESS_GOLDEN=1, which rewrites tests/golden/golden_stats.jsonl
# from the current simulator instead of comparing against it.  Review
# the diff before committing: every changed line is a timing-model
# behaviour change.
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [ ! -d "$build_dir" ]; then
    echo "bless_golden.sh: no build dir '$build_dir'" \
         "(cmake -B $build_dir -S . first)" >&2
    exit 2
fi

cmake --build "$build_dir" --target mg_trace_test -j
MG_BLESS_GOLDEN=1 "$build_dir/tests/mg_trace_test" \
    --gtest_filter='GoldenStats.*'

echo
git --no-pager diff --stat tests/golden/ || true
echo "bless_golden.sh: done — review the diff above before committing"
