#!/usr/bin/env bash
# Regenerate the golden snapshots in tests/golden/.
#
#   tools/bless_golden.sh [build-dir]
#
# Rebuilds the snapshot suites and re-runs them with
# MG_BLESS_GOLDEN=1, which rewrites tests/golden/golden_stats.jsonl
# (timing-model stats), tests/golden/golden_analyze.jsonl (static
# analyzer reports) and tests/golden/golden_pareto.json (the measured
# Pareto frontier of the pinned DSE grid) from the current build
# instead of comparing against them.  Review the diff before
# committing: every changed line is a timing-model or analyzer
# behaviour change.
set -eu

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [ ! -d "$build_dir" ]; then
    echo "bless_golden.sh: no build dir '$build_dir'" \
         "(cmake -B $build_dir -S . first)" >&2
    exit 2
fi

cmake --build "$build_dir" --target mg_trace_test dse_suite_test -j
MG_BLESS_GOLDEN=1 "$build_dir/tests/mg_trace_test" \
    --gtest_filter='GoldenStats.*:GoldenAnalyze.*'
MG_BLESS_GOLDEN=1 "$build_dir/tests/dse_suite_test" \
    --gtest_filter='Prefilter.GoldenParetoSnapshot'

echo
git --no-pager diff --stat tests/golden/ || true
echo "bless_golden.sh: done — review the diff above before committing"
