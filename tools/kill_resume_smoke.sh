#!/usr/bin/env bash
# Kill-resume smoke test (docs/ROBUSTNESS.md).
#
# Starts an isolated, journalled `mgsim batch`, SIGKILLs the batch
# process mid-flight, resumes it from the journal, and requires the
# resumed run's --json output to be byte-identical to an uninterrupted
# reference run.  The per-batch option record (`{"options":...}`) and
# summary line (`{"batch":...}`) are stripped before comparing: the
# resumed batch legitimately differs there (--journal/--resume flags,
# "replayed" count).
#
# Usage: tools/kill_resume_smoke.sh [path/to/mgsim]

set -euo pipefail

MGSIM=${1:-build/tools/mgsim}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ ! -x "$MGSIM" ]; then
    echo "kill_resume_smoke: no mgsim at '$MGSIM'" >&2
    exit 2
fi

cat > "$WORK/jobs.txt" <<'EOF'
crc32.0    reduced none
crc32.0    reduced struct-all
crc32.0    full    none
bitcount.0 reduced struct-all
bitcount.0 reduced none
adpcm_c.0  reduced struct-bounded
adpcm_c.0  reduced slack-profile
bitcount.0 full    none
EOF

echo "== reference: uninterrupted batch =="
"$MGSIM" batch "$WORK/jobs.txt" --jobs 1 --isolate --json \
    > "$WORK/ref.json" 2> /dev/null
grep -v -e '^{"batch"' -e '^{"options"' "$WORK/ref.json" > "$WORK/ref.stripped"

echo "== interrupted batch: SIGKILL once the journal has 2 entries =="
"$MGSIM" batch "$WORK/jobs.txt" --jobs 1 --isolate --json \
    --journal "$WORK/journal.log" \
    > "$WORK/killed.json" 2> /dev/null &
pid=$!
for _ in $(seq 1 200); do
    if [ -f "$WORK/journal.log" ] &&
        [ "$(wc -l < "$WORK/journal.log")" -ge 2 ]; then
        break
    fi
    if ! kill -0 "$pid" 2> /dev/null; then
        break # finished before we could kill it; resume still replays
    fi
    sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
entries=$(wc -l < "$WORK/journal.log" 2> /dev/null || echo 0)
echo "   journal has $entries completed run(s) at kill time"

echo "== resume from the journal =="
"$MGSIM" batch "$WORK/jobs.txt" --jobs 1 --isolate --json \
    --journal "$WORK/journal.log" --resume \
    > "$WORK/resumed.json" 2> "$WORK/resumed.err"
grep -v -e '^{"batch"' -e '^{"options"' "$WORK/resumed.json" > "$WORK/resumed.stripped"

if ! diff -u "$WORK/ref.stripped" "$WORK/resumed.stripped"; then
    echo "kill_resume_smoke: FAIL — resumed output differs from the" \
        "uninterrupted reference" >&2
    exit 1
fi

replayed=$(grep -o '"replayed":[0-9]*' "$WORK/resumed.json" |
    cut -d: -f2)
echo "kill_resume_smoke: PASS — $replayed run(s) replayed from the" \
    "journal, resumed output byte-identical to the reference"
