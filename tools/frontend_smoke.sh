#!/usr/bin/env bash
# Frontend smoke test (docs/FRONTEND.md).
#
# Drives the C-subset compiler through the mgsim CLI exactly the way
# CI consumes it:
#
#   1. compiles every kernel in examples/c/ to MG-RISC assembly,
#      twice, and requires the two emissions to be byte-identical
#      (compiler determinism is contractual — batch workers compile
#      the same source concurrently);
#   2. runs each kernel through `mgsim cc --check`, the two-level
#      differential gate: AST interpreter vs compiled execution, then
#      the full architectural oracle (rewriter, linter, every default
#      selector at CheckLevel::Full);
#   3. requires a malformed source to produce a line:col diagnostic
#      and a nonzero exit;
#   4. runs a seeded `mgsim fuzz --frontend` sweep over generated C
#      programs.
#
# Emitted .s files are left in ARTIFACT_DIR (default: a temp dir) so
# CI can upload them.
#
# Usage: tools/frontend_smoke.sh [path/to/mgsim] [fuzz-count] [artifact-dir]

set -euo pipefail

MGSIM=${1:-build/tools/mgsim}
COUNT=${2:-50}
ARTIFACTS=${3:-}
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
if [ -z "$ARTIFACTS" ]; then
    ARTIFACTS="$WORK/asm"
fi
mkdir -p "$ARTIFACTS"

if [ ! -x "$MGSIM" ]; then
    echo "frontend_smoke: no mgsim at '$MGSIM'" >&2
    exit 2
fi

kernels=("$repo_root"/examples/c/*.c)
if [ "${#kernels[@]}" -lt 10 ]; then
    echo "frontend_smoke: expected >=10 kernels in examples/c," \
        "found ${#kernels[@]}" >&2
    exit 1
fi

echo "== compile determinism: each kernel emitted twice, bytes compared =="
for src in "${kernels[@]}"; do
    base=$(basename "$src" .c)
    "$MGSIM" cc "$src" --out "$ARTIFACTS/$base.s" 2> /dev/null
    "$MGSIM" cc "$src" --out "$WORK/$base.2.s" 2> /dev/null
    if ! cmp -s "$ARTIFACTS/$base.s" "$WORK/$base.2.s"; then
        echo "frontend_smoke: FAIL — '$base.c' compiled to different" \
            "bytes on the second run" >&2
        exit 1
    fi
    echo "   $base.s: $(wc -l < "$ARTIFACTS/$base.s") lines, deterministic"
done

echo "== differential gate: mgsim cc --check on every kernel =="
for src in "${kernels[@]}"; do
    base=$(basename "$src" .c)
    if ! "$MGSIM" cc "$src" --check > "$WORK/$base.verdict.json"; then
        echo "frontend_smoke: FAIL — '$base.c' failed the gate:" >&2
        cat "$WORK/$base.verdict.json" >&2
        exit 1
    fi
    grep -q '"ok":true' "$WORK/$base.verdict.json"
    echo "   $base.c: gate clean"
done

echo "== diagnostics: malformed source must fail with line:col =="
printf 'int main() {\n  return x;\n}\n' > "$WORK/bad.c"
if "$MGSIM" cc "$WORK/bad.c" 2> "$WORK/bad.err"; then
    echo "frontend_smoke: FAIL — malformed source exited 0" >&2
    exit 1
fi
if ! grep -q "bad.c:2:10: use of undeclared identifier 'x'" "$WORK/bad.err"; then
    echo "frontend_smoke: FAIL — unexpected diagnostic:" >&2
    cat "$WORK/bad.err" >&2
    exit 1
fi
echo "   diagnostic stable: $(cat "$WORK/bad.err")"

echo "== seeded random-C differential fuzz ($COUNT trials) =="
"$MGSIM" fuzz --frontend --seed 1 --count "$COUNT" \
    --repro-dir "$WORK/repros"

echo "frontend_smoke: PASS — ${#kernels[@]} kernels deterministic and" \
    "gate-clean, $COUNT fuzz trials, artifacts in $ARTIFACTS"
