#!/usr/bin/env bash
# Nightly/local fuzzing soak (docs/FUZZING.md).
#
# Runs consecutive fixed-seed blocks of `mgsim fuzz` (so any failure
# names the exact command that reproduces it), plus one chaos campaign
# per block, stopping at the first failure and keeping its shrunk
# repro under the repro directory.  Unlike the CI smoke, this runs
# until the block budget (or you) stops it.
#
# Usage: tools/fuzz_nightly.sh [path/to/mgsim] [blocks] [trials-per-block]
#   MG_FUZZ_REPRO_DIR  where repros land      (default: fuzz-repros)
#   MG_FUZZ_START_SEED first seed of block 0  (default: 1)

set -euo pipefail

MGSIM=${1:-build/tools/mgsim}
BLOCKS=${2:-20}
TRIALS=${3:-500}
REPRO_DIR=${MG_FUZZ_REPRO_DIR:-fuzz-repros}
START=${MG_FUZZ_START_SEED:-1}

if [ ! -x "$MGSIM" ]; then
    echo "fuzz_nightly: no mgsim at '$MGSIM'" >&2
    exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

for ((b = 0; b < BLOCKS; ++b)); do
    seed=$((START + b * TRIALS))
    echo "== block $b: mgsim fuzz --seed $seed --count $TRIALS =="
    if ! "$MGSIM" fuzz --seed "$seed" --count "$TRIALS" \
        --repro-dir "$REPRO_DIR" > "$WORK/block.json"; then
        echo "fuzz_nightly: FAIL in block $b" >&2
        echo "  repros: $REPRO_DIR/" >&2
        echo "  reproduce: $MGSIM fuzz --seed $seed --count $TRIALS" >&2
        grep '"ok":false' "$WORK/block.json" >&2 || true
        exit 1
    fi

    echo "== block $b: chaos campaign (seed $seed) =="
    if ! "$MGSIM" fuzz --chaos --seed "$seed" --schedules 10 \
        --work-dir "$WORK/chaos" --jobs 2 > "$WORK/chaos.json"; then
        echo "fuzz_nightly: FAIL — chaos campaign, seed $seed" >&2
        cat "$WORK/chaos.json" >&2
        echo "  reproduce: $MGSIM fuzz --chaos --seed $seed" \
            "--schedules 10" >&2
        exit 1
    fi
    rm -rf "$WORK/chaos"
done

echo "fuzz_nightly: PASS — $BLOCKS block(s) × $TRIALS trial(s) clean"
