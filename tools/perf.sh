#!/usr/bin/env bash
# Self-benchmarking harness driver (docs/PERF.md).
#
# Builds mgsim in Release mode and runs the pinned benchmark subset,
# writing BENCH_<pr>.json.  With --baseline OLD.json the previous
# measurement is embedded and the end-to-end speedup computed, so a
# checked-in bench file is a self-contained before/after record.
#
# Usage:
#   tools/perf.sh --pr N [--subset pinned|smoke|full] [--out FILE]
#                 [--baseline OLD.json] [--label TEXT] [--build DIR]
#                 [--pgo]
#
# --pgo builds the tuned benchmark binary (-march=native plus
# two-phase profile-guided optimization, trained on the same subset
# being measured); without it a plain portable Release build is used.
#
# Environment: MG_PERF_SKIP_BUILD=1 skips the cmake step (use the
# binary already in the build dir).

set -euo pipefail

BUILD=build-perf
SUBSET=pinned
PR=""
OUT=""
BASELINE=""
LABEL=""
PGO=0

while [ $# -gt 0 ]; do
    case "$1" in
      --pr)       PR=$2; shift 2 ;;
      --subset)   SUBSET=$2; shift 2 ;;
      --out)      OUT=$2; shift 2 ;;
      --baseline) BASELINE=$2; shift 2 ;;
      --label)    LABEL=$2; shift 2 ;;
      --build)    BUILD=$2; shift 2 ;;
      --pgo)      PGO=1; shift ;;
      *)
        echo "perf.sh: unknown argument '$1'" >&2
        exit 2
        ;;
    esac
done

if [ -z "$PR" ]; then
    echo "perf.sh: --pr N is required (names BENCH_<pr>.json)" >&2
    exit 2
fi
OUT=${OUT:-BENCH_${PR}.json}

if [ "${MG_PERF_SKIP_BUILD:-0}" != "1" ]; then
    if [ "$PGO" = "1" ]; then
        echo "== build ($BUILD, Release, PGO phase 1: instrument) =="
        cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
              -DMG_NATIVE=ON -DMG_PGO=generate > /dev/null
        cmake --build "$BUILD" -j --target mgsim
        echo "== PGO training run ($SUBSET subset) =="
        "$BUILD/tools/mgsim" perf --subset "$SUBSET" --pr "$PR" \
              --out "$BUILD/pgo-train.json" > /dev/null
        echo "== build ($BUILD, Release, PGO phase 2: optimize) =="
        cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
              -DMG_NATIVE=ON -DMG_PGO=use > /dev/null
        cmake --build "$BUILD" -j --target mgsim
    else
        echo "== build ($BUILD, Release) =="
        cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
              -DMG_NATIVE=OFF -DMG_PGO= > /dev/null
        cmake --build "$BUILD" -j --target mgsim
    fi
fi

MGSIM="$BUILD/tools/mgsim"
if [ ! -x "$MGSIM" ]; then
    echo "perf.sh: no mgsim at '$MGSIM'" >&2
    exit 2
fi

echo "== perf: $SUBSET subset -> $OUT =="
args=(perf --subset "$SUBSET" --pr "$PR" --out "$OUT")
if [ -n "$BASELINE" ]; then
    args+=(--baseline "$BASELINE")
fi
if [ -n "$LABEL" ]; then
    args+=(--label "$LABEL")
fi
"$MGSIM" "${args[@]}"
echo "perf.sh: wrote $OUT"
