/**
 * @file
 * Shared mgsim subcommand argument parser.
 *
 * Every mgsim subcommand used to hand-roll its own argv loop, so the
 * flag surfaces drifted: `--json` meant different things, unknown
 * flags were sometimes silently treated as usage and sometimes
 * produced a specific complaint, and cross-flag rules (`--timeout`
 * requires `--isolate`) were enforced late, inside the Runner.  This
 * parser gives run/batch/trace/lint/perf one grammar:
 *
 *  - each command declares its own value/boolean flags plus the
 *    subset of the sim::BatchOptions surface it accepts;
 *  - batch-surface flags (--jobs, --json, --progress, --isolate,
 *    --timeout, --retries, --backoff, --journal, --resume,
 *    --inject-fault, --check-level) parse into a BatchOptions with
 *    flag-over-env precedence (the env layer is read first via
 *    BatchOptions::fromEnv());
 *  - unknown flags and bad values produce one "mgsim <cmd>: ..."
 *    complaint on stderr and a usage exit (code 2), everywhere;
 *  - BatchOptions::validate() runs after all flags are consumed, so
 *    cross-flag rules hold regardless of flag order.
 */

#ifndef MG_TOOLS_CLI_H
#define MG_TOOLS_CLI_H

#include <map>
#include <string>
#include <vector>

#include "sim/batch_options.h"

namespace mg::cli
{

/** One command-specific flag. */
struct FlagSpec
{
    std::string name; ///< including dashes, e.g. "--config"
    bool takesValue = false;
};

/** A subcommand's accepted argument surface. */
struct Command
{
    std::string name; ///< e.g. "batch" (used in error messages)

    /** Command-specific flags (e.g. --config, --out). */
    std::vector<FlagSpec> own;

    /**
     * Accepted sim::BatchOptions flags by name; parsed straight into
     * Args::batch with flag-over-env precedence.
     */
    std::vector<std::string> batchFlags;

    /** Positional arguments required (after the subcommand name). */
    size_t minPositional = 0;
};

/** The parsed argument set for one invocation. */
struct Args
{
    /** Positional arguments in order. */
    std::vector<std::string> positional;

    /** Env layer + accepted batch flags, validated. */
    sim::BatchOptions batch;

    /** Command-specific flag values ("" for boolean presence). */
    std::map<std::string, std::string> own;

    bool has(const std::string &flag) const
    {
        return own.count(flag) != 0;
    }

    std::string get(const std::string &flag,
                    const std::string &dflt = "") const
    {
        auto it = own.find(flag);
        return it == own.end() ? dflt : it->second;
    }
};

/**
 * Parse argv[start..argc) against `cmd`.
 *
 * On success fills `out` (batch fields resolved env-then-flags and
 * cross-validated) and returns true.  On any usage problem — unknown
 * flag, missing value, bad value, missing positional, failed
 * cross-flag validation — prints "mgsim <cmd>: <complaint>" to
 * stderr and returns false; the caller exits with the uniform usage
 * code 2.
 */
bool parseArgs(int argc, char **argv, int start, const Command &cmd,
               Args &out);

/**
 * Read an integer-valued flag with validated bounds.
 *
 * `out` keeps its prior value (the default) when the flag is absent.
 * On a malformed or out-of-range value, prints the uniform
 * "mgsim <cmd>: --flag V: want ..." complaint to stderr and returns
 * false; the caller exits with the usage code 2.  Every subcommand's
 * hand-rolled atol/atoll parsing funnels through here so bad numeric
 * values behave exactly like unknown flags.
 */
bool getInt(const Args &args, const std::string &cmd,
            const std::string &flag, int64_t min, int64_t max,
            int64_t &out);

/** getInt with bounds [1, max]: a positive integer. */
bool getPositive(const Args &args, const std::string &cmd,
                 const std::string &flag, int64_t &out);

/** getInt with bounds [0, max]: a non-negative integer. */
bool getNonNegative(const Args &args, const std::string &cmd,
                    const std::string &flag, int64_t &out);

} // namespace mg::cli

#endif // MG_TOOLS_CLI_H
