/**
 * @file
 * mgsim: command-line driver for the mini-graph toolchain.
 *
 *   mgsim run <prog.s|workload> [--config NAME] [--selector NAME]
 *   mgsim candidates <prog.s|workload>
 *   mgsim disasm <prog.s|workload>
 *   mgsim profile <prog.s|workload> [--config NAME]   (stdout: profile)
 *   mgsim workloads
 *   mgsim configs
 *
 * A program argument is either a path to an MG-RISC assembly file or
 * the name of a built-in benchmark (e.g. "adpcm_c.0").
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "assembler/assembler.h"
#include "common/stats_util.h"
#include "profile/profile_io.h"
#include "sim/experiment.h"

namespace
{

using namespace mg;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  mgsim run <prog.s|workload> [--config NAME] [--selector "
        "NAME]\n"
        "  mgsim candidates <prog.s|workload>\n"
        "  mgsim disasm <prog.s|workload>\n"
        "  mgsim profile <prog.s|workload> [--config NAME]\n"
        "  mgsim workloads\n"
        "  mgsim configs\n"
        "\n"
        "configs: full reduced 2way 8way dmem4 enlarged\n"
        "selectors: none struct-all struct-none struct-bounded\n"
        "           slack-profile slack-dynamic\n");
    return 2;
}

std::optional<uarch::CoreConfig>
configByName(const std::string &name)
{
    if (name == "full")
        return uarch::fullConfig();
    if (name == "reduced")
        return uarch::reducedConfig();
    if (name == "2way")
        return uarch::twoWayConfig();
    if (name == "8way")
        return uarch::eightWayConfig();
    if (name == "dmem4")
        return uarch::dmemQuarterConfig();
    if (name == "enlarged")
        return uarch::enlargedConfig();
    return std::nullopt;
}

std::optional<minigraph::SelectorKind>
selectorByName(const std::string &name)
{
    using K = minigraph::SelectorKind;
    if (name == "struct-all")
        return K::StructAll;
    if (name == "struct-none")
        return K::StructNone;
    if (name == "struct-bounded")
        return K::StructBounded;
    if (name == "slack-profile")
        return K::SlackProfile;
    if (name == "slack-dynamic")
        return K::SlackDynamic;
    return std::nullopt;
}

std::optional<assembler::Program>
loadProgram(const std::string &arg)
{
    if (auto spec = workloads::findWorkload(arg))
        return workloads::buildWorkload(*spec).program;
    std::ifstream in(arg);
    if (!in)
        return std::nullopt;
    std::stringstream ss;
    ss << in.rdbuf();
    assembler::AssembleOptions opts;
    opts.name = arg;
    return assembler::assemble(ss.str(), opts);
}

void
printStats(const uarch::SimResult &r)
{
    std::printf("cycles            %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions      %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.originalInsts),
                r.ipc());
    if (r.committedHandles) {
        std::printf("mini-graphs       %llu committed, coverage %.1f%%\n",
                    static_cast<unsigned long long>(r.committedHandles),
                    100.0 * r.coverage());
        if (r.disabledExpansions) {
            std::printf("  disabled runs   %llu (+%llu outlining "
                        "jumps)\n",
                        static_cast<unsigned long long>(
                            r.disabledExpansions),
                        static_cast<unsigned long long>(
                            r.outliningJumps));
        }
    }
    std::printf("branch mispredict %.2f%% (%llu/%llu)\n",
                100.0 * r.branchPred.condMispredictRate(),
                static_cast<unsigned long long>(
                    r.branchPred.condMispredicts),
                static_cast<unsigned long long>(
                    r.branchPred.condPredictions));
    std::printf("D$/I$/L2 miss     %.2f%% / %.2f%% / %.2f%%\n",
                100.0 * r.dcache.missRate(), 100.0 * r.icache.missRate(),
                100.0 * r.l2.missRate());
    std::printf("mem violations    %llu, issue replays %llu\n",
                static_cast<unsigned long long>(r.memOrderViolations),
                static_cast<unsigned long long>(r.issueReplays));
}

int
cmdRun(const std::string &prog_arg, const std::string &config_name,
       const std::string &selector_name)
{
    auto cfg = configByName(config_name);
    if (!cfg) {
        std::fprintf(stderr, "unknown config '%s'\n",
                     config_name.c_str());
        return 2;
    }
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }

    sim::ProgramContext ctx(*prog);
    std::printf("program '%s': %zu static instructions, config %s\n",
                prog->name.c_str(), prog->size(), cfg->name.c_str());
    if (selector_name == "none") {
        printStats(ctx.baseline(*cfg));
        return 0;
    }
    auto kind = selectorByName(selector_name);
    if (!kind) {
        std::fprintf(stderr, "unknown selector '%s'\n",
                     selector_name.c_str());
        return 2;
    }
    auto run = ctx.runSelector(*kind, *cfg);
    std::printf("selector %s: %u templates, %zu sites\n",
                minigraph::selectorName(*kind).c_str(),
                run.templatesUsed, run.instances);
    printStats(run.sim);
    return 0;
}

int
cmdCandidates(const std::string &prog_arg)
{
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }
    auto pool = minigraph::enumerateCandidates(*prog);
    TextTable t;
    t.header({"firstPc", "len", "inputs", "output", "mem", "ctl",
              "class"});
    for (const auto &c : pool) {
        t.row({std::to_string(c.firstPc), std::to_string(c.len),
               std::to_string(c.tmpl.numInputs),
               c.outputReg >= 0 ? "r" + std::to_string(c.outputReg)
                                : "-",
               c.tmpl.hasMem ? "y" : "-", c.tmpl.hasControl ? "y" : "-",
               c.serialClass == minigraph::SerialClass::NonSerializing
                   ? "none"
               : c.serialClass == minigraph::SerialClass::Bounded
                   ? "bounded"
                   : "unbounded"});
    }
    std::printf("%zu candidates in '%s'\n%s", pool.size(),
                prog->name.c_str(), t.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "workloads") {
        for (const auto &w : mg::workloads::workloadList())
            std::printf("%-18s %s\n", w.name().c_str(), w.suite.c_str());
        return 0;
    }
    if (cmd == "configs") {
        for (const char *n :
             {"full", "reduced", "2way", "8way", "dmem4", "enlarged"}) {
            auto c = configByName(n);
            std::printf("%-9s %u-wide, IQ %u, %u regs\n", n,
                        c->issueWidth, c->issueQueueEntries, c->physRegs);
        }
        return 0;
    }
    if (argc < 3)
        return usage();
    std::string prog_arg = argv[2];

    std::string config = "reduced", selector = "none";
    for (int i = 3; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--config") == 0)
            config = argv[i + 1];
        else if (std::strcmp(argv[i], "--selector") == 0)
            selector = argv[i + 1];
        else
            return usage();
    }

    try {
        if (cmd == "run")
            return cmdRun(prog_arg, config, selector);
        if (cmd == "candidates")
            return cmdCandidates(prog_arg);
        if (cmd == "disasm") {
            auto prog = loadProgram(prog_arg);
            if (!prog)
                return 2;
            std::printf("%s", prog->listing().c_str());
            return 0;
        }
        if (cmd == "profile") {
            auto cfg = configByName(config);
            auto prog = loadProgram(prog_arg);
            if (!cfg || !prog)
                return 2;
            auto data = profile::profileProgram(*prog, *cfg);
            std::printf("%s",
                        profile::saveProfileToString(data).c_str());
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
