/**
 * @file
 * mgsim: command-line driver for the mini-graph toolchain.
 *
 *   mgsim run <prog.s|workload> [--config NAME] [--selector NAME]
 *             [--jobs N] [--json]
 *   mgsim batch <jobs.txt|-> [--jobs N] [--json] [--progress]
 *               [--isolate] [--timeout SEC] [--retries N]
 *               [--backoff SEC] [--journal FILE] [--resume]
 *               [--inject-fault SPEC] [--check-level LVL]
 *   mgsim sweep <grid.json|-|pinned> [--store DIR] [--out FILE]
 *               [--shard i/N] [--merge] [--no-prefilter] [--jobs N]
 *               [--progress] [--isolate] [--timeout SEC] [--retries N]
 *               [--backoff SEC] [--check-level LVL]
 *   mgsim cache stats|verify|gc [--store DIR] [--json]
 *   mgsim trace <prog.s|workload> [--config NAME] [--selector NAME]
 *               [--out PREFIX] [--start N] [--end N] [--json]
 *   mgsim perf [--subset pinned|smoke|full] [--out FILE]
 *              [--baseline FILE] [--label TEXT] [--pr N] [--jobs N]
 *              [--json] | perf --check FILE
 *   mgsim candidates <prog.s|workload>
 *   mgsim analyze <prog.s|workload|all> [--json]
 *   mgsim lint <prog.s|workload|all> [--config NAME]
 *              [--selector NAME|all] [--budget N] [--json]
 *   mgsim cc <file.c> [--emit] [--out FILE] [--run] [--check]
 *   mgsim disasm <prog.s|workload>
 *   mgsim profile <prog.s|workload> [--config NAME]   (stdout: profile)
 *   mgsim workloads
 *   mgsim configs
 *   mgsim selectors
 *
 * `mgsim cc` is the C-subset compiler frontend (docs/FRONTEND.md):
 * --emit prints the MG-RISC assembly (--out writes it to a file),
 * --run executes the compiled program functionally and prints the
 * final value of every global, --check runs the two-level frontend
 * differential gate (fuzz/frontend_fuzz.h).  Everywhere else a
 * program argument is accepted, a path ending in ".c" is compiled on
 * the fly, so `mgsim run/lint/analyze/trace foo.c` all work.
 *
 * All subcommands share one argument grammar (tools/cli.h): flags of
 * the batch-execution surface (--jobs, --json, ...) parse into
 * sim::BatchOptions with flag-over-env precedence, command-specific
 * flags are declared per subcommand, and any usage problem — unknown
 * flag, bad value, inconsistent combination like `--timeout` without
 * `--isolate` — is a parse-time complaint with exit code 2.
 *
 * `mgsim trace` simulates once with the pipeline tracer attached and
 * writes <PREFIX>.kanata (Konata pipeline log), <PREFIX>.trace.json
 * (Chrome trace_event) and <PREFIX>.stats.json (run statistics with
 * the cycle-loss breakdown), round-trip validating each artefact; see
 * docs/TRACING.md.
 *
 * `mgsim perf` is the self-benchmarking harness (docs/PERF.md): it
 * runs a pinned subset of the workload x selector matrix and writes
 * the BENCH_<pr>.json document with simulated-cycles/sec, per-run and
 * end-to-end wall time, and peak RSS; `--baseline OLD.json` embeds
 * the previous measurement and the end-to-end speedup.
 *
 * `mgsim analyze` runs the whole-program static analyzer
 * (docs/ANALYSIS.md) — dominators, natural loops with trip-count
 * estimates, dataflow readiness heights, candidate serialization
 * predictions — and emits one deterministic JSON line per program
 * (golden-snapshotted in tests/golden/golden_analyze.jsonl).  No
 * simulation is involved; `analyze all` covers all 108 benchmarks in
 * well under a second.
 *
 * A program argument is either a path to an MG-RISC assembly file or
 * the name of a built-in benchmark (e.g. "adpcm_c.0").
 *
 * A batch job list has one job per line ('#' starts a comment):
 *
 *   <workload> <config> <selector|none> [profile=<config>]
 *       [budget=<n>] [alt] [cross-input]
 *
 * Jobs run through the parallel sim::Runner (pool size: --jobs, else
 * MG_JOBS, else all cores) and results print in submission order.
 *
 * Robustness (docs/ROBUSTNESS.md): with --isolate each run executes
 * in a forked sandbox, so a crash/hang/OOM in one run degrades to a
 * structured error while the rest of the batch completes.  --timeout
 * (requires --isolate) SIGKILLs runaway runs; --retries re-runs
 * transient failures with exponential --backoff; --journal appends
 * each completed run's stats JSON so --resume can replay them after
 * the batch process itself is killed.  Batch exit codes: 0 = all runs
 * ok, 3 = partial failure, 1 = total failure, 2 = usage error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "assembler/assembler.h"
#include "check/mg_lint.h"
#include "cli.h"
#include "dse/result_store.h"
#include "dse/sweep.h"
#include "frontend/cgen.h"
#include "frontend/compile.h"
#include "frontend/interp.h"
#include "fuzz/chaos.h"
#include "fuzz/frontend_fuzz.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "common/stats_util.h"
#include "common/string_util.h"
#include "minigraph/rewriter.h"
#include "minigraph/selectors.h"
#include "minigraph/static_rank.h"
#include "profile/exec_counts.h"
#include "profile/profile_io.h"
#include "profile/slack_profile.h"
#include "sim/perf_harness.h"
#include "sim/runner.h"
#include "trace/konata.h"
#include "trace/stats_json.h"
#include "trace/validate.h"

namespace
{

using namespace mg;

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += " ";
        out += n;
    }
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  mgsim run <prog.s|workload> [--config NAME] [--selector "
        "NAME]\n"
        "            [--jobs N] [--json]\n"
        "  mgsim batch <jobs.txt|-> [--jobs N] [--json] [--progress]\n"
        "              [--isolate] [--timeout SEC] [--retries N]\n"
        "              [--backoff SEC] [--journal FILE] [--resume]\n"
        "              [--inject-fault SPEC] [--check-level LVL]\n"
        "  mgsim sweep <grid.json|-|pinned> [--store DIR] [--out "
        "FILE]\n"
        "              [--shard i/N] [--merge] [--no-prefilter]\n"
        "              [--jobs N] [--progress] [--isolate] [--timeout "
        "SEC]\n"
        "              [--retries N] [--backoff SEC] [--check-level "
        "LVL]\n"
        "  mgsim cache stats|verify|gc [--store DIR] [--json]\n"
        "  mgsim trace <prog.s|workload> [--config NAME] [--selector "
        "NAME]\n"
        "              [--out PREFIX] [--start N] [--end N] [--json]\n"
        "  mgsim perf [--subset pinned|smoke|full] [--out FILE]\n"
        "             [--baseline FILE] [--label TEXT] [--pr N]\n"
        "             [--jobs N] [--json] | perf --check FILE\n"
        "  mgsim candidates <prog.s|workload>\n"
        "  mgsim analyze <prog.s|workload|all> [--json]\n"
        "  mgsim lint <prog.s|workload|all> [--config NAME]\n"
        "             [--selector NAME|all] [--budget N] [--json]\n"
        "  mgsim fuzz [--seed N] [--count M] [--config NAME]\n"
        "             [--selectors A,B,...] [--budget N] "
        "[--no-shrink]\n"
        "             [--repro-dir DIR] [--frontend] | fuzz --chaos\n"
        "             [--seed N] [--schedules M] [--work-dir DIR] "
        "[--jobs N]\n"
        "  mgsim shrink <repro.s|repro.c> [--frontend] [--config "
        "NAME]\n"
        "             [--selectors A,B,...] [--budget N] [--out "
        "FILE]\n"
        "  mgsim cc <file.c> [--emit] [--out FILE] [--run] [--check]\n"
        "  mgsim disasm <prog.s|workload>\n"
        "  mgsim profile <prog.s|workload> [--config NAME]\n"
        "  mgsim workloads\n"
        "  mgsim configs\n"
        "  mgsim selectors\n"
        "\n"
        "batch job lines: <workload> <config> <selector|none>\n"
        "                 [profile=<config>] [budget=<n>] [alt] "
        "[cross-input]\n"
        "--jobs N         worker threads, 1..1024 (default: MG_JOBS, "
        "else all cores)\n"
        "--json           machine-readable results (one JSON object "
        "per job)\n"
        "--isolate        run each job in a forked sandbox (fault "
        "containment)\n"
        "--timeout SEC    per-run watchdog, SIGKILL on expiry "
        "(requires --isolate)\n"
        "--retries N      re-run transient failures up to N extra "
        "times\n"
        "--backoff SEC    base retry backoff, doubling per attempt "
        "(default 0.05)\n"
        "--journal FILE   append completed runs (key + stats JSON) to "
        "FILE\n"
        "--resume         replay completed runs from --journal instead "
        "of re-running\n"
        "--inject-fault SPEC  inject a fault: "
        "crash|hang|oom|corrupt[@cycle][:match][!attempts]\n"
        "--check-level LVL    invariant audit level: off, cheap, full\n"
        "\n"
        "batch exit codes: 0 all ok, 3 partial failure, 1 total "
        "failure, 2 usage\n"
        "\n"
        "configs: %s\n"
        "selectors: none %s\n",
        joinNames(uarch::allConfigNames()).c_str(),
        joinNames(minigraph::allSelectorNames()).c_str());
    return 2;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::optional<assembler::Program>
loadProgram(const std::string &arg)
{
    if (auto spec = workloads::findWorkload(arg))
        return workloads::buildWorkload(*spec).program;
    std::ifstream in(arg);
    if (!in)
        return std::nullopt;
    std::stringstream ss;
    ss << in.rdbuf();
    if (endsWith(arg, ".c")) {
        frontend::CompileOptions copts;
        copts.name = arg;
        frontend::CompileResult comp =
            frontend::compile(ss.str(), copts);
        if (!comp.ok) {
            std::fprintf(stderr, "%s\n", comp.error.c_str());
            return std::nullopt;
        }
        return frontend::assemble(comp, copts);
    }
    assembler::AssembleOptions opts;
    opts.name = arg;
    return assembler::assemble(ss.str(), opts);
}

void
printStats(const uarch::SimResult &r)
{
    std::printf("cycles            %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions      %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.originalInsts),
                r.ipc());
    if (r.committedHandles) {
        std::printf("mini-graphs       %llu committed, coverage %.1f%%\n",
                    static_cast<unsigned long long>(r.committedHandles),
                    100.0 * r.coverage());
        if (r.disabledExpansions) {
            std::printf("  disabled runs   %llu (+%llu outlining "
                        "jumps)\n",
                        static_cast<unsigned long long>(
                            r.disabledExpansions),
                        static_cast<unsigned long long>(
                            r.outliningJumps));
        }
    }
    std::printf("branch mispredict %.2f%% (%llu/%llu)\n",
                100.0 * r.branchPred.condMispredictRate(),
                static_cast<unsigned long long>(
                    r.branchPred.condMispredicts),
                static_cast<unsigned long long>(
                    r.branchPred.condPredictions));
    std::printf("D$/I$/L2 miss     %.2f%% / %.2f%% / %.2f%%\n",
                100.0 * r.dcache.missRate(), 100.0 * r.icache.missRate(),
                100.0 * r.l2.missRate());
    std::printf("mem violations    %llu, issue replays %llu\n",
                static_cast<unsigned long long>(r.memOrderViolations),
                static_cast<unsigned long long>(r.issueReplays));
    if (r.accountedWidth) {
        std::printf("loss accounting   %llu of %llu slots lost\n",
                    static_cast<unsigned long long>(r.lostSlots()),
                    static_cast<unsigned long long>(r.totalSlots()));
        for (size_t i = 0; i < uarch::kNumLossBuckets; ++i) {
            uint64_t v = r.lossSlots[i];
            if (!v)
                continue;
            std::printf("  %-26s %10llu (%5.1f%%)\n",
                        uarch::lossBucketName(
                            static_cast<uarch::LossBucket>(i)),
                        static_cast<unsigned long long>(v),
                        r.lostSlots()
                            ? 100.0 * v / r.lostSlots()
                            : 0.0);
        }
    }
}

/** StatsMeta for one request/result pair (JSON identification). */
trace::StatsMeta
metaFor(const sim::RunRequest &req, const std::string &program_name,
        const sim::RunResult &r)
{
    trace::StatsMeta meta;
    meta.workload = program_name;
    meta.config = req.config.name;
    meta.selector =
        req.selector ? minigraph::nameOf(*req.selector) : "none";
    meta.templateNames = r.templateNames;
    meta.mgInstances = r.instances;
    meta.mgTemplatesUsed = r.templatesUsed;
    return meta;
}

/** One machine-readable result line. */
void
printJson(const sim::RunRequest &req, const std::string &program_name,
          const sim::RunResult &r)
{
    trace::StatsMeta meta = metaFor(req, program_name, r);
    std::string line = r.ok ? trace::statsJson(meta, r.sim)
                            : trace::errorJson(meta, r.error);
    std::printf("%s\n", line.c_str());
}

/** Parse a selector name into a RunRequest; complain on stderr. */
bool
applySelector(const std::string &name, sim::RunRequest &req)
{
    if (name == "none")
        return true;
    auto kind = minigraph::selectorFromName(name);
    if (!kind) {
        std::fprintf(stderr, "unknown selector '%s'\n", name.c_str());
        return false;
    }
    req.selector = *kind;
    return true;
}

int
cmdRun(const cli::Args &args)
{
    const std::string &prog_arg = args.positional[0];
    const std::string config = args.get("--config", "reduced");
    auto cfg = uarch::configFromName(config);
    if (!cfg) {
        std::fprintf(stderr, "unknown config '%s'\n", config.c_str());
        return 2;
    }
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }

    sim::RunRequest req;
    req.config = *cfg;
    if (!applySelector(args.get("--selector", "none"), req))
        return 2;

    sim::ProgramContext ctx(*prog);
    auto run = ctx.run(req);
    if (args.batch.json) {
        printJson(req, prog->name, run);
        return run.ok ? 0 : 1;
    }
    std::printf("program '%s': %zu static instructions, config %s\n",
                prog->name.c_str(), prog->size(), cfg->name.c_str());
    if (req.selector) {
        std::printf("selector %s: %u templates, %zu sites\n",
                    minigraph::selectorName(*req.selector).c_str(),
                    run.templatesUsed, run.instances);
    }
    printStats(run.sim);
    return 0;
}

/**
 * Simulate once with the pipeline tracer attached; write and
 * round-trip validate the Konata / Chrome / stats artefacts.
 */
int
cmdTrace(const cli::Args &args)
{
    const std::string &prog_arg = args.positional[0];
    const std::string config = args.get("--config", "reduced");
    auto cfg = uarch::configFromName(config);
    if (!cfg) {
        std::fprintf(stderr, "unknown config '%s'\n", config.c_str());
        return 2;
    }
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }

    const std::string prefix = args.get("--out", "mgtrace");
    const std::string konata_path = prefix + ".kanata";
    const std::string chrome_path = prefix + ".trace.json";
    const std::string stats_path = prefix + ".stats.json";

    sim::RunRequest req;
    req.config = *cfg;
    if (!applySelector(args.get("--selector", "none"), req))
        return 2;
    int64_t start = 0, end = INT64_MAX;
    if (!cli::getNonNegative(args, "trace", "--start", start) ||
        !cli::getNonNegative(args, "trace", "--end", end)) {
        return 2;
    }
    req.trace = trace::TraceConfig{static_cast<uint64_t>(start),
                                   static_cast<uint64_t>(end),
                                   konata_path, chrome_path};

    sim::ProgramContext ctx(*prog);
    auto run = ctx.run(req);

    trace::StatsMeta meta = metaFor(req, prog->name, run);
    std::ofstream stats(stats_path, std::ios::binary);
    stats << trace::statsJson(meta, run.sim) << "\n";
    if (!stats) {
        std::fprintf(stderr, "cannot write '%s'\n", stats_path.c_str());
        return 1;
    }
    stats.close();

    // Round-trip validate everything we just wrote.
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    int rc = 0;
    if (std::string err = trace::validateKonata(slurp(konata_path));
        !err.empty()) {
        std::fprintf(stderr, "%s: invalid Konata log: %s\n",
                     konata_path.c_str(), err.c_str());
        rc = 1;
    }
    if (std::string err = trace::validateJson(slurp(chrome_path));
        !err.empty()) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n",
                     chrome_path.c_str(), err.c_str());
        rc = 1;
    }
    if (std::string err = trace::validateJson(slurp(stats_path));
        !err.empty()) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n",
                     stats_path.c_str(), err.c_str());
        rc = 1;
    }
    if (rc != 0)
        return rc;
    if (args.batch.json) {
        std::printf("{\"konata\":\"%s\",\"chrome\":\"%s\",\"stats\":"
                    "\"%s\",\"cycles\":%llu}\n",
                    trace::jsonEscape(konata_path).c_str(),
                    trace::jsonEscape(chrome_path).c_str(),
                    trace::jsonEscape(stats_path).c_str(),
                    static_cast<unsigned long long>(run.sim.cycles));
    } else {
        std::printf("wrote %s %s %s (%llu cycles simulated)\n",
                    konata_path.c_str(), chrome_path.c_str(),
                    stats_path.c_str(),
                    static_cast<unsigned long long>(run.sim.cycles));
    }
    return 0;
}

/** Parse one batch-file line into a request; false on error. */
bool
parseJobLine(const std::string &line, sim::RunRequest &out,
             std::string &err)
{
    auto tokens = splitWhitespace(line);
    if (tokens.size() < 3) {
        err = "expected: <workload> <config> <selector|none>";
        return false;
    }
    auto spec = workloads::findWorkload(tokens[0]);
    if (!spec) {
        err = "unknown workload '" + tokens[0] + "'";
        return false;
    }
    out.workload = *spec;
    auto cfg = uarch::configFromName(tokens[1]);
    if (!cfg) {
        err = "unknown config '" + tokens[1] + "'";
        return false;
    }
    out.config = *cfg;
    if (tokens[2] != "none") {
        auto kind = minigraph::selectorFromName(tokens[2]);
        if (!kind) {
            err = "unknown selector '" + tokens[2] + "'";
            return false;
        }
        out.selector = *kind;
    }
    for (size_t i = 3; i < tokens.size(); ++i) {
        const std::string &t = tokens[i];
        if (t == "alt") {
            out.altInput = true;
        } else if (t == "cross-input") {
            out.profileFromAltInput = true;
        } else if (startsWith(t, "profile=")) {
            auto pc = uarch::configFromName(t.substr(8));
            if (!pc) {
                err = "unknown profile config '" + t.substr(8) + "'";
                return false;
            }
            out.profileConfig = *pc;
        } else if (startsWith(t, "budget=")) {
            int64_t v = 0;
            if (!parseInt(t.substr(7), v) || v <= 0) {
                err = "bad budget '" + t + "'";
                return false;
            }
            out.templateBudget = static_cast<uint32_t>(v);
        } else {
            err = "unknown option '" + t + "'";
            return false;
        }
    }
    return true;
}

int
cmdBatch(const cli::Args &args)
{
    const std::string &list_arg = args.positional[0];
    const sim::BatchOptions &bopts = args.batch;

    std::ifstream file;
    std::istream *in = &std::cin;
    if (list_arg != "-") {
        file.open(list_arg);
        if (!file) {
            std::fprintf(stderr, "cannot open '%s'\n", list_arg.c_str());
            return 2;
        }
        in = &file;
    }

    std::vector<sim::RunRequest> jobs;
    std::string line;
    size_t lineno = 0;
    while (std::getline(*in, line)) {
        ++lineno;
        std::string body = trim(line.substr(0, line.find('#')));
        if (body.empty())
            continue;
        sim::RunRequest req;
        std::string err;
        if (!parseJobLine(body, req, err)) {
            std::fprintf(stderr, "%s:%zu: %s\n", list_arg.c_str(),
                         lineno, err.c_str());
            return 2;
        }
        // An explicit --check-level overrides the per-config default
        // for every job (the env var is already folded into the
        // config default; see uarch::defaultCheckLevel()).
        if (bopts.src.checkLevel == sim::OptionSource::Flag)
            req.config.checkLevel = bopts.checkLevel;
        jobs.push_back(std::move(req));
    }
    if (jobs.empty()) {
        std::fprintf(stderr, "no jobs in '%s'\n", list_arg.c_str());
        return 2;
    }

    if (bopts.json) {
        // First record: the resolved option set with per-field
        // provenance, so a machine-readable batch documents exactly
        // how it was configured.
        std::printf("{\"options\":%s}\n", bopts.describe().c_str());
    }

    sim::Runner runner(bopts.runnerOptions());
    std::fprintf(stderr, "%zu jobs on %u threads%s\n", jobs.size(),
                 runner.jobs(), bopts.isolate ? " (isolated)" : "");
    auto results = runner.run(jobs, "batch");

    for (size_t i = 0; i < results.size(); ++i) {
        const auto &req = jobs[i];
        const auto &r = results[i];
        std::string wname =
            req.workload.name() + (req.altInput ? "#alt" : "");
        std::string key = sim::journal::runKey(req);
        if (bopts.json) {
            // Splice "status" and "key" in front of the stats-JSON
            // payload so the rest of the line keeps the exact bytes
            // the journal / isolated child produced.
            std::string payload;
            if (r.ok) {
                payload = r.statsJsonLine.empty()
                              ? trace::statsJson(
                                    sim::metaForRun(req, r, wname),
                                    r.sim)
                              : r.statsJsonLine;
            } else {
                payload = trace::errorJson(
                    sim::metaForRun(req, r, wname), r.error,
                    sim::errorDetailOf(r.err));
            }
            std::printf("{\"status\":\"%s\",\"key\":\"%s\",%s\n",
                        r.ok ? "ok" : "error",
                        trace::jsonEscape(key).c_str(),
                        payload.c_str() + 1);
            continue;
        }
        if (!r.ok) {
            std::string attempts_note;
            if (r.err.attempts > 1) {
                attempts_note = " (after " +
                                std::to_string(r.err.attempts) +
                                " attempts)";
            }
            std::printf("%-18s %-10s %-22s ERROR [%s] %s%s\n",
                        wname.c_str(), req.config.name.c_str(),
                        req.selector
                            ? minigraph::nameOf(*req.selector).c_str()
                            : "none",
                        sim::errorClassName(r.err.cls),
                        r.error.c_str(), attempts_note.c_str());
            continue;
        }
        std::printf("%-18s %-10s %-22s cycles=%-10llu ipc=%-6s "
                    "coverage=%-6s templates=%-4u instances=%zu\n",
                    wname.c_str(), req.config.name.c_str(),
                    req.selector
                        ? minigraph::nameOf(*req.selector).c_str()
                        : "none",
                    static_cast<unsigned long long>(r.sim.cycles),
                    fmtDouble(r.ipc(), 3).c_str(),
                    fmtDouble(r.coverage(), 3).c_str(), r.templatesUsed,
                    r.instances);
    }

    sim::BatchSummary sum = sim::summarize(results);
    std::fprintf(stderr,
                 "batch: %zu/%zu ok, %zu failed (%zu retried, %zu "
                 "timed out, %zu replayed from journal)\n",
                 sum.ok, sum.total, sum.failed, sum.retried,
                 sum.timedOut, sum.replayed);
    if (bopts.json) {
        std::printf("{\"batch\":{\"total\":%zu,\"ok\":%zu,"
                    "\"failed\":%zu,\"retried\":%zu,\"timedOut\":%zu,"
                    "\"replayed\":%zu}}\n",
                    sum.total, sum.ok, sum.failed, sum.retried,
                    sum.timedOut, sum.replayed);
    }

    // 0 = every run succeeded, 3 = partial failure, 1 = nothing ran.
    if (sum.failed == 0)
        return 0;
    return sum.ok ? 3 : 1;
}

/**
 * `mgsim sweep`: design-space exploration over a parameter grid with
 * the content-addressed result store (docs/DSE.md).  The grid
 * argument is a JSON file, "-" for stdin, or "pinned" for the
 * built-in 130-cell pinned grid.  Exit codes mirror batch: 0 all ok,
 * 3 some simulations failed, 1 fatal, 2 usage.
 */
int
cmdSweep(const cli::Args &args)
{
    const std::string &grid_arg = args.positional[0];

    dse::GridSpec grid;
    if (grid_arg == "pinned") {
        grid = dse::pinnedDseGrid();
    } else {
        std::ifstream file;
        std::istream *in = &std::cin;
        if (grid_arg != "-") {
            file.open(grid_arg);
            if (!file) {
                std::fprintf(stderr, "cannot open '%s'\n",
                             grid_arg.c_str());
                return 2;
            }
            in = &file;
        }
        std::stringstream ss;
        ss << in->rdbuf();
        std::string err = dse::parseGrid(ss.str(), grid);
        if (!err.empty()) {
            std::fprintf(stderr, "mgsim sweep: %s: %s\n",
                         grid_arg.c_str(), err.c_str());
            return 2;
        }
    }

    dse::SweepOptions opts;
    opts.batch = args.batch;
    opts.storeRoot = args.get("--store", opts.storeRoot);
    opts.merge = args.has("--merge");
    opts.prefilter = !args.has("--no-prefilter");
    if (args.has("--shard")) {
        unsigned i = 0, n = 0;
        if (std::sscanf(args.get("--shard").c_str(), "%u/%u", &i, &n) !=
                2 ||
            i < 1 || n < 1 || i > n) {
            std::fprintf(stderr,
                         "mgsim sweep: --shard %s: want i/N with "
                         "1 <= i <= N\n",
                         args.get("--shard").c_str());
            return 2;
        }
        opts.shardIndex = i;
        opts.shardCount = n;
    }
    if (opts.merge && args.has("--shard")) {
        std::fprintf(stderr,
                     "mgsim sweep: --merge and --shard are exclusive "
                     "(merge reads every shard's results)\n");
        return 2;
    }

    auto t0 = std::chrono::steady_clock::now();
    dse::SweepOutcome out = dse::runSweep(grid, opts);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (!out.error.empty()) {
        std::fprintf(stderr, "mgsim sweep: %s\n", out.error.c_str());
        return 1;
    }

    // Run provenance goes to stderr only: the document on stdout is
    // byte-identical whether points were simulated or cache hits.
    std::fprintf(stderr,
                 "sweep: %zu points, %zu pruned, %zu hits, %zu misses, "
                 "%zu simulated, %zu failed, %zu other-shard (%.2fs)\n",
                 out.summary.points, out.summary.pruned, out.summary.hits,
                 out.summary.misses, out.summary.simulated,
                 out.summary.failed, out.summary.skipped, wall);

    if (!out.doc.empty()) {
        const std::string out_path = args.get("--out");
        if (out_path.empty()) {
            std::fputs(out.doc.c_str(), stdout);
        } else {
            std::ofstream f(out_path, std::ios::binary);
            f << out.doc;
            if (!f) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             out_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "wrote %s\n", out_path.c_str());
        }
    }
    if (out.summary.failed == 0)
        return 0;
    return out.summary.failed < out.summary.points ? 3 : 1;
}

/**
 * `mgsim cache`: inspect and maintain the DSE result store.
 * `stats` tallies entries; `verify` validates every entry
 * (quarantining and exiting 1 on any corruption); `gc` removes
 * quarantined files and entries of other simulator versions.
 */
int
cmdCache(const cli::Args &args)
{
    const std::string &verb = args.positional[0];
    if (verb != "stats" && verb != "verify" && verb != "gc") {
        std::fprintf(stderr,
                     "mgsim cache: unknown action '%s' (want stats, "
                     "verify or gc)\n",
                     verb.c_str());
        return 2;
    }

    dse::ResultStore store;
    std::string err = store.open(args.get("--store", ".mgstore"));
    if (!err.empty()) {
        std::fprintf(stderr, "mgsim cache: %s\n", err.c_str());
        return 1;
    }

    if (verb == "stats") {
        dse::StoreStats st = store.stats();
        if (args.batch.json) {
            std::string versions;
            for (const auto &[ver, n] : st.byVersion) {
                versions += versions.empty() ? "" : ",";
                versions += "\"" + trace::jsonEscape(ver) +
                            "\":" + std::to_string(n);
            }
            std::printf("{\"store\":\"%s\",\"entries\":%zu,"
                        "\"quarantined\":%zu,\"objectBytes\":%llu,"
                        "\"byVersion\":{%s}}\n",
                        trace::jsonEscape(store.rootDir()).c_str(),
                        st.entries, st.quarantined,
                        static_cast<unsigned long long>(st.objectBytes),
                        versions.c_str());
        } else {
            std::printf("store       %s\n", store.rootDir().c_str());
            std::printf("entries     %zu (%llu bytes)\n", st.entries,
                        static_cast<unsigned long long>(st.objectBytes));
            std::printf("quarantined %zu\n", st.quarantined);
            for (const auto &[ver, n] : st.byVersion)
                std::printf("  %-12s %zu\n", ver.c_str(), n);
        }
        return 0;
    }

    if (verb == "verify") {
        dse::VerifyReport rep = store.verify();
        for (const auto &bad : rep.bad)
            std::fprintf(stderr, "quarantined %s: %s\n",
                         bad.file.c_str(), bad.reason.c_str());
        if (args.batch.json) {
            std::printf("{\"checked\":%zu,\"bad\":%zu,\"clean\":%s}\n",
                        rep.checked, rep.bad.size(),
                        rep.clean() ? "true" : "false");
        } else {
            std::printf("verified %zu entr%s, %zu bad\n", rep.checked,
                        rep.checked == 1 ? "y" : "ies", rep.bad.size());
        }
        return rep.clean() ? 0 : 1;
    }

    dse::GcReport rep = store.gc();
    if (args.batch.json) {
        std::printf("{\"staleRemoved\":%zu,\"quarantineRemoved\":%zu,"
                    "\"bytesReclaimed\":%llu}\n",
                    rep.staleRemoved, rep.quarantineRemoved,
                    static_cast<unsigned long long>(rep.bytesReclaimed));
    } else {
        std::printf("removed %zu stale entr%s, %zu quarantined file%s "
                    "(%llu bytes)\n",
                    rep.staleRemoved, rep.staleRemoved == 1 ? "y" : "ies",
                    rep.quarantineRemoved,
                    rep.quarantineRemoved == 1 ? "" : "s",
                    static_cast<unsigned long long>(rep.bytesReclaimed));
    }
    return 0;
}

int
cmdPerf(const cli::Args &args)
{
    // --check FILE: validate an existing bench report (schema parse,
    // round-trip, every cell ok) without running anything.  CI runs
    // this on the report it just produced; the per-PR workflow runs
    // it on checked-in BENCH_*.json files.
    if (args.has("--check")) {
        const std::string path = args.get("--check");
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "mgsim perf: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        sim::PerfReport rep;
        if (std::string perr = sim::parseBenchJson(ss.str(), rep);
            !perr.empty()) {
            std::fprintf(stderr, "mgsim perf: %s: %s\n", path.c_str(),
                         perr.c_str());
            return 1;
        }
        if (!rep.allOk()) {
            std::fprintf(stderr,
                         "mgsim perf: %s: contains failed runs\n",
                         path.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "perf: %s ok (%s subset, %zu cells, %.2fs)\n",
                     path.c_str(), rep.subset.c_str(),
                     rep.runs.size(), rep.batchWallSec);
        return 0;
    }

    const std::string subset = args.get("--subset", "pinned");
    std::string err;
    auto cells = sim::perfCellsForSubset(subset, err);
    if (!err.empty()) {
        std::fprintf(stderr, "mgsim perf: %s\n", err.c_str());
        return 2;
    }

    int64_t pr = 0;
    if (!cli::getPositive(args, "perf", "--pr", pr))
        return 2;

    // Unless --jobs was given explicitly, measure with one worker:
    // the pinned numbers must not depend on the machine's core count.
    unsigned jobs = args.batch.src.jobs == sim::OptionSource::Flag
                        ? args.batch.jobs
                        : 1;

    std::optional<sim::PerfBaseline> baseline;
    if (args.has("--baseline")) {
        const std::string path = args.get("--baseline");
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "mgsim perf: cannot open '%s'\n",
                         path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        sim::PerfReport base;
        if (std::string perr = sim::parseBenchJson(ss.str(), base);
            !perr.empty()) {
            std::fprintf(stderr, "mgsim perf: %s: %s\n", path.c_str(),
                         perr.c_str());
            return 2;
        }
        sim::PerfBaseline b;
        b.label = args.get("--label", "baseline");
        b.batchWallSec = base.batchWallSec;
        b.totalSimCycles = base.totalSimCycles;
        b.simCyclesPerSec = base.simCyclesPerSec;
        b.peakRssKb = base.peakRssKb;
        baseline = b;
    }

    std::fprintf(stderr, "perf: %zu cells (%s subset) on %u thread%s\n",
                 cells.size(), subset.c_str(), jobs,
                 jobs == 1 ? "" : "s");
    sim::PerfReport rep = sim::runPerf(cells, jobs, static_cast<unsigned>(pr), subset);
    rep.baseline = baseline;

    std::string doc = sim::benchJson(rep);
    const std::string out_path = args.get("--out", "");
    if (!out_path.empty() && out_path != "-") {
        std::ofstream out(out_path, std::ios::binary);
        out << doc;
        if (!out) {
            std::fprintf(stderr, "mgsim perf: cannot write '%s'\n",
                         out_path.c_str());
            return 1;
        }
    }
    if (args.batch.json || out_path.empty() || out_path == "-")
        std::fwrite(doc.data(), 1, doc.size(), stdout);

    std::fprintf(stderr,
                 "perf: %.2fs end-to-end, %llu simulated cycles "
                 "(%.2fM cyc/s), peak RSS %ld KB\n",
                 rep.batchWallSec,
                 static_cast<unsigned long long>(rep.totalSimCycles),
                 rep.simCyclesPerSec / 1e6, rep.peakRssKb);
    if (rep.baseline) {
        std::fprintf(stderr, "perf: %.2fx end-to-end vs %s (%.2fs)\n",
                     rep.speedup(), rep.baseline->label.c_str(),
                     rep.baseline->batchWallSec);
    }
    return rep.allOk() ? 0 : 1;
}

int
cmdCandidates(const std::string &prog_arg)
{
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }
    auto pool = minigraph::enumerateCandidates(*prog);
    TextTable t;
    t.header({"firstPc", "len", "inputs", "output", "mem", "ctl",
              "class"});
    for (const auto &c : pool) {
        t.row({std::to_string(c.firstPc), std::to_string(c.len),
               std::to_string(c.tmpl.numInputs),
               c.outputReg >= 0 ? "r" + std::to_string(c.outputReg)
                                : "-",
               c.tmpl.hasMem ? "y" : "-", c.tmpl.hasControl ? "y" : "-",
               c.serialClass == minigraph::SerialClass::NonSerializing
                   ? "none"
               : c.serialClass == minigraph::SerialClass::Bounded
                   ? "bounded"
                   : "unbounded"});
    }
    std::printf("%zu candidates in '%s'\n%s", pool.size(),
                prog->name.c_str(), t.render().c_str());
    return 0;
}

/** Analyze one program; print one line (JSON or human-readable). */
void
analyzeOne(const assembler::Program &prog, bool json)
{
    minigraph::AnalyzeReport rep = minigraph::analyzeProgram(prog);
    if (json) {
        std::printf("%s\n", minigraph::analyzeReportJson(rep).c_str());
        return;
    }
    std::printf("%-18s insts=%-5zu blocks=%-3zu loops=%zu(%zu exact, "
                "depth %u) height=%-4u cands=%-3zu "
                "pred=%zu/%zu/%zu slack-static=%zu\n",
                rep.program.c_str(), rep.instructions, rep.blocks,
                rep.loops, rep.exactTripCounts, rep.maxLoopDepth,
                rep.maxHeight, rep.candidates, rep.predNonSerializing,
                rep.predBounded, rep.predUnbounded, rep.slackStaticKept);
}

int
cmdAnalyze(const cli::Args &args)
{
    const std::string &prog_arg = args.positional[0];
    if (prog_arg == "all") {
        for (const auto &spec : workloads::workloadList()) {
            analyzeOne(workloads::buildWorkload(spec).program,
                       args.batch.json);
        }
        return 0;
    }
    auto prog = loadProgram(prog_arg);
    if (!prog) {
        std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
        return 2;
    }
    analyzeOne(*prog, args.batch.json);
    return 0;
}

/**
 * Lint one program: run the static selection pipeline for each
 * requested selector and re-check every template, chosen site, and
 * rewritten binary against the mini-graph interface rules.  Returns
 * the number of findings.
 */
size_t
lintProgram(const assembler::Program &prog,
            const std::vector<minigraph::SelectorKind> &kinds,
            const uarch::CoreConfig &machine, uint32_t budget,
            bool json)
{
    auto pool = minigraph::enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    std::optional<profile::SlackProfileData> prof;

    size_t findings = 0;
    for (auto kind : kinds) {
        const profile::SlackProfileData *p = nullptr;
        if (minigraph::selectorNeedsProfile(kind)) {
            if (!prof)
                prof = profile::profileProgram(prog, machine);
            p = &*prof;
        }
        auto filtered = minigraph::filterPool(pool, kind, prog, p);
        auto sel = minigraph::selectGreedy(filtered, counts, budget);
        auto rw = minigraph::rewrite(prog, sel.chosen);
        check::LintReport rep =
            check::lintRewrite(prog, sel.chosen, rw.program, rw.info);
        if (json) {
            std::printf("{\"workload\":\"%s\",\"selector\":\"%s\","
                        "\"templates\":%zu,\"instances\":%zu,"
                        "\"findings\":%zu}\n",
                        trace::jsonEscape(prog.name).c_str(),
                        trace::jsonEscape(minigraph::nameOf(kind))
                            .c_str(),
                        rep.templatesChecked, rep.instancesChecked,
                        rep.findings.size());
        } else {
            std::printf(
                "%-18s %-22s templates=%-4zu instances=%-5zu %s\n",
                prog.name.c_str(), minigraph::nameOf(kind).c_str(),
                rep.templatesChecked, rep.instancesChecked,
                rep.clean() ? "clean"
                            : ("FINDINGS(" +
                               std::to_string(rep.findings.size()) +
                               ")")
                                  .c_str());
            if (!rep.clean())
                std::printf("%s", rep.render().c_str());
        }
        findings += rep.findings.size();
    }
    return findings;
}

int
cmdLint(const cli::Args &args)
{
    const std::string &prog_arg = args.positional[0];
    const std::string config = args.get("--config", "reduced");
    auto machine = uarch::configFromName(config);
    if (!machine) {
        std::fprintf(stderr, "unknown config '%s'\n", config.c_str());
        return 2;
    }
    int64_t budget = 512;
    if (!cli::getInt(args, "lint", "--budget", 1, UINT32_MAX, budget))
        return 2;

    // Default: the five paper selectors (lint "none" is vacuous).
    const std::string selector = args.get("--selector", "none");
    std::vector<minigraph::SelectorKind> kinds;
    if (selector == "none" || selector == "all") {
        kinds = {minigraph::SelectorKind::StructAll,
                 minigraph::SelectorKind::StructNone,
                 minigraph::SelectorKind::StructBounded,
                 minigraph::SelectorKind::SlackProfile,
                 minigraph::SelectorKind::SlackDynamic};
    } else {
        auto kind = minigraph::selectorFromName(selector);
        if (!kind) {
            std::fprintf(stderr, "unknown selector '%s'\n",
                         selector.c_str());
            return 2;
        }
        kinds = {*kind};
    }

    size_t findings = 0;
    if (prog_arg == "all") {
        for (const auto &spec : workloads::workloadList()) {
            auto prog = workloads::buildWorkload(spec).program;
            findings += lintProgram(prog, kinds, *machine,
                                    static_cast<uint32_t>(budget),
                                    args.batch.json);
        }
    } else {
        auto prog = loadProgram(prog_arg);
        if (!prog) {
            std::fprintf(stderr, "cannot load '%s'\n", prog_arg.c_str());
            return 2;
        }
        findings += lintProgram(*prog, kinds, *machine,
                                static_cast<uint32_t>(budget),
                                args.batch.json);
    }
    if (findings) {
        std::fprintf(stderr, "lint: %zu finding%s\n", findings,
                     findings == 1 ? "" : "s");
        return 1;
    }
    return 0;
}

/**
 * `mgsim cc`: the C-subset compiler frontend (docs/FRONTEND.md).
 * Compiles one .c file; --emit/--out produce the MG-RISC assembly,
 * --run executes the compiled program functionally and prints every
 * global's final value, --check runs the two-level differential gate
 * and prints its JSON verdict.  With none of those, prints a one-line
 * summary.  Exit 1 on compile errors, check failures, or
 * nontermination.
 */
int
cmdCc(const cli::Args &args)
{
    const std::string &path = args.positional[0];
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();

    frontend::CompileOptions copts;
    copts.name = path;
    frontend::CompileResult comp = frontend::compile(source, copts);
    if (!comp.ok) {
        for (const auto &d : comp.diags)
            std::fprintf(stderr, "%s\n",
                         frontend::renderDiag(path, d).c_str());
        return 1;
    }
    assembler::Program prog = frontend::assemble(comp, copts);

    const std::string out_path = args.get("--out");
    bool acted = false;
    if (args.has("--emit") || !out_path.empty()) {
        acted = true;
        if (out_path.empty() || out_path == "-") {
            std::fwrite(comp.asmText.data(), 1, comp.asmText.size(),
                        stdout);
        } else {
            std::ofstream f(out_path, std::ios::binary);
            f << comp.asmText;
            if (!f) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             out_path.c_str());
                return 1;
            }
            std::fprintf(stderr, "wrote %s\n", out_path.c_str());
        }
    }

    int rc = 0;
    if (args.has("--check")) {
        acted = true;
        fuzz::FrontendCheckOptions fopts;
        fopts.compile = copts;
        fuzz::OracleVerdict verdict = fuzz::checkCSource(source, fopts);
        std::printf("%s\n",
                    fuzz::verdictJson(path, 0, verdict).c_str());
        if (!verdict.ok())
            rc = 1;
    }

    if (args.has("--run")) {
        acted = true;
        uarch::FunctionalCore core(prog);
        const uint64_t max_steps = fuzz::OracleOptions{}.maxSteps;
        for (uint64_t s = 0; !core.halted() && s < max_steps; ++s)
            core.step();
        if (!core.halted()) {
            std::fprintf(stderr,
                         "%s: did not halt within %llu steps\n",
                         path.c_str(),
                         static_cast<unsigned long long>(max_steps));
            return 1;
        }
        for (const auto &g : comp.ast->globals) {
            const uint64_t base = prog.dataLabels.at(g.name);
            if (g.arraySize == 0) {
                std::printf("%s = %llu\n", g.name.c_str(),
                            static_cast<unsigned long long>(
                                core.memory().read(base, 8)));
                continue;
            }
            std::printf("%s[%zu] =", g.name.c_str(), g.arraySize);
            const size_t shown = std::min<size_t>(g.arraySize, 8);
            for (size_t i = 0; i < shown; ++i)
                std::printf(" %llu",
                            static_cast<unsigned long long>(
                                core.memory().read(base + 8 * i, 8)));
            std::printf(g.arraySize > shown ? " ...\n" : "\n");
        }
        std::printf("insts = %llu\n",
                    static_cast<unsigned long long>(core.instCount()));
    }

    if (!acted) {
        std::printf("compiled '%s': %zu instructions, %zu globals, "
                    "%zu functions\n",
                    path.c_str(), prog.size(),
                    comp.ast->globals.size(), comp.ast->funcs.size());
    }
    return rc;
}

/**
 * Resolve the oracle options shared by `mgsim fuzz` and
 * `mgsim shrink`: --config and a comma-separated --selectors list.
 * @return false on a usage error (complaint already printed).
 */
bool
oracleOptionsFromArgs(const cli::Args &args, const std::string &cmd,
                      fuzz::OracleOptions &opts)
{
    const std::string config = args.get("--config", "reduced");
    auto machine = uarch::configFromName(config);
    if (!machine) {
        std::fprintf(stderr, "unknown config '%s'\n", config.c_str());
        return false;
    }
    opts.config = *machine;
    opts.config.checkLevel = uarch::CheckLevel::Full;

    int64_t budget = opts.templateBudget;
    if (!cli::getInt(args, cmd, "--budget", 1, UINT32_MAX, budget))
        return false;
    opts.templateBudget = static_cast<uint32_t>(budget);

    if (args.has("--selectors")) {
        opts.selectors.clear();
        std::stringstream ss(args.get("--selectors"));
        std::string name;
        while (std::getline(ss, name, ',')) {
            auto kind = minigraph::selectorFromName(name);
            if (!kind) {
                std::fprintf(stderr, "unknown selector '%s'\n",
                             name.c_str());
                return false;
            }
            opts.selectors.push_back(*kind);
        }
        if (opts.selectors.empty()) {
            std::fprintf(stderr,
                         "mgsim %s: --selectors: want a "
                         "comma-separated selector list\n",
                         cmd.c_str());
            return false;
        }
    }
    return true;
}

/**
 * `mgsim fuzz`: differential fuzzing (docs/FUZZING.md).  Default
 * mode generates --count programs from consecutive seeds and runs
 * each through the architectural oracle, printing one JSON verdict
 * line per trial; failures are shrunk to ready-to-commit repros
 * under --repro-dir unless --no-shrink.  --chaos instead runs
 * randomized kill/corrupt/resume schedules against the DSE service.
 */
int
cmdFuzz(const cli::Args &args)
{
    int64_t seed = 1, count = 100;
    if (!cli::getInt(args, "fuzz", "--seed", 0, INT64_MAX, seed) ||
        !cli::getPositive(args, "fuzz", "--count", count))
        return 2;

    if (args.has("--chaos")) {
        fuzz::ChaosOptions copts;
        copts.seed = static_cast<uint64_t>(seed);
        int64_t schedules = 20;
        if (!cli::getPositive(args, "fuzz", "--schedules", schedules))
            return 2;
        copts.schedules = static_cast<unsigned>(schedules);
        copts.workDir = args.get("--work-dir", copts.workDir);
        copts.jobs = args.batch.jobs;
        fuzz::ChaosResult res = fuzz::runChaos(copts);
        if (!res.error.empty()) {
            std::fprintf(stderr, "mgsim fuzz: %s\n", res.error.c_str());
            return 1;
        }
        std::printf("%s\n", fuzz::chaosJson(res, copts.seed).c_str());
        std::fprintf(stderr,
                     "chaos: %u schedules, %u faulted, %u resumed, "
                     "%llu files corrupted, %zu invariant "
                     "violation(s)\n",
                     res.schedules, res.faultsInjected, res.resumes,
                     static_cast<unsigned long long>(res.corrupted),
                     res.failures.size());
        for (const std::string &f : res.failures)
            std::fprintf(stderr, "chaos: FAIL: %s\n", f.c_str());
        return res.ok() ? 0 : 1;
    }

    fuzz::OracleOptions oracle;
    if (!oracleOptionsFromArgs(args, "fuzz", oracle))
        return 2;
    const bool do_shrink = !args.has("--no-shrink");
    const std::string repro_dir =
        args.get("--repro-dir", "fuzz-repros");

    // --frontend: random-C differential fuzzing of the compiler
    // against the AST interpreter, then the architectural oracle on
    // the compiled binary (docs/FRONTEND.md).
    if (args.has("--frontend")) {
        unsigned cfails = 0;
        for (int64_t i = 0; i < count; ++i) {
            const uint64_t s = static_cast<uint64_t>(seed + i);
            frontend::CGenOptions gopts;
            gopts.seed = s;
            const std::string source =
                frontend::generateCSource(gopts);
            fuzz::FrontendCheckOptions fopts;
            fopts.oracle = oracle;
            fopts.compile.name = frontend::cFuzzProgramName(s);
            fuzz::OracleVerdict verdict =
                fuzz::checkCSourceIsolated(source, fopts);
            std::printf("%s\n",
                        fuzz::verdictJson(fopts.compile.name, s,
                                          verdict)
                            .c_str());
            std::fflush(stdout);
            if (verdict.ok())
                continue;
            ++cfails;
            if (!do_shrink)
                continue;
            fuzz::ShrinkResult shrunk =
                fuzz::shrinkCSource(source, fopts);
            std::error_code ec;
            std::filesystem::create_directories(repro_dir, ec);
            const std::string path =
                (std::filesystem::path(repro_dir) /
                 (fopts.compile.name + ".c"))
                    .string();
            std::ofstream f(path, std::ios::binary);
            f << fuzz::reproCSource(shrunk, s);
            std::fprintf(
                stderr,
                "fuzz: seed %llu FAILED (%s), repro: %s "
                "(%llu insts, %llu trials)\n",
                static_cast<unsigned long long>(s),
                verdict.failures.front().kind.c_str(), path.c_str(),
                static_cast<unsigned long long>(shrunk.instructions),
                static_cast<unsigned long long>(shrunk.trials));
        }
        std::fprintf(stderr,
                     "fuzz: %lld frontend trial(s), %u failure(s)\n",
                     static_cast<long long>(count), cfails);
        return cfails ? 1 : 0;
    }

    unsigned failures = 0;
    for (int64_t i = 0; i < count; ++i) {
        const uint64_t s = static_cast<uint64_t>(seed + i);
        fuzz::GeneratorOptions gopts;
        gopts.seed = s;
        fuzz::GeneratedProgram gen = fuzz::generateProgram(gopts);
        fuzz::OracleVerdict verdict =
            fuzz::checkProgramIsolated(gen.program, oracle);
        std::printf("%s\n",
                    fuzz::verdictJson(gen.program.name, s, verdict)
                        .c_str());
        std::fflush(stdout);
        if (verdict.ok())
            continue;
        ++failures;
        if (!do_shrink)
            continue;
        fuzz::ShrinkOptions sopts;
        sopts.oracle = oracle;
        sopts.name = gen.program.name;
        sopts.memSize = gopts.memSize;
        fuzz::ShrinkResult shrunk = fuzz::shrink(gen.source, sopts);
        std::error_code ec;
        std::filesystem::create_directories(repro_dir, ec);
        const std::string path =
            (std::filesystem::path(repro_dir) /
             (gen.program.name + ".s"))
                .string();
        std::ofstream f(path, std::ios::binary);
        f << fuzz::reproSource(shrunk, s);
        std::fprintf(stderr,
                     "fuzz: seed %llu FAILED (%s/%s), repro: %s "
                     "(%llu insts, %llu trials)\n",
                     static_cast<unsigned long long>(s),
                     verdict.failures.front().selector.c_str(),
                     verdict.failures.front().kind.c_str(),
                     path.c_str(),
                     static_cast<unsigned long long>(
                         shrunk.instructions),
                     static_cast<unsigned long long>(shrunk.trials));
    }
    std::fprintf(stderr, "fuzz: %lld trial(s), %u failure(s)\n",
                 static_cast<long long>(count), failures);
    return failures ? 1 : 0;
}

/**
 * `mgsim shrink`: re-shrink a failing program (typically a repro a
 * soak run produced with different oracle options, or a hand-edited
 * candidate).  Exits 1 if the input does not fail the oracle.
 */
int
cmdShrink(const cli::Args &args)
{
    const std::string &in_path = args.positional[0];
    std::ifstream in(in_path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", in_path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    // C repros go through the frontend shrinker (ddmin over C lines);
    // a .c suffix implies --frontend.
    if (args.has("--frontend") || endsWith(in_path, ".c")) {
        fuzz::FrontendCheckOptions fopts;
        if (!oracleOptionsFromArgs(args, "shrink", fopts.oracle))
            return 2;
        fopts.compile.name = in_path;
        fuzz::ShrinkResult shrunk =
            fuzz::shrinkCSource(ss.str(), fopts);
        if (!shrunk.reproduced) {
            std::fprintf(stderr,
                         "mgsim shrink: %s does not fail the "
                         "frontend gate (nothing to shrink)\n",
                         in_path.c_str());
            return 1;
        }
        const std::string out_path =
            args.get("--out", in_path + ".min.c");
        std::ofstream f(out_path, std::ios::binary);
        f << fuzz::reproCSource(shrunk, 0);
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         out_path.c_str());
            return 1;
        }
        std::fprintf(
            stderr,
            "shrink: %s -> %s (%llu insts, %llu trials, first "
            "failure: %s)\n",
            in_path.c_str(), out_path.c_str(),
            static_cast<unsigned long long>(shrunk.instructions),
            static_cast<unsigned long long>(shrunk.trials),
            shrunk.verdict.failures.front().kind.c_str());
        return 0;
    }

    fuzz::ShrinkOptions sopts;
    if (!oracleOptionsFromArgs(args, "shrink", sopts.oracle))
        return 2;

    fuzz::ShrinkResult shrunk = fuzz::shrink(ss.str(), sopts);
    if (!shrunk.reproduced) {
        std::fprintf(stderr,
                     "mgsim shrink: %s does not fail the oracle "
                     "(nothing to shrink)\n",
                     in_path.c_str());
        return 1;
    }
    const std::string out_path =
        args.get("--out", in_path + ".min.s");
    std::ofstream f(out_path, std::ios::binary);
    f << fuzz::reproSource(shrunk, 0);
    if (!f) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "shrink: %s -> %s (%llu insts, %llu trials, first "
                 "failure: %s)\n",
                 in_path.c_str(), out_path.c_str(),
                 static_cast<unsigned long long>(shrunk.instructions),
                 static_cast<unsigned long long>(shrunk.trials),
                 shrunk.verdict.failures.front().kind.c_str());
    return 0;
}

/** The accepted argument surface of each subcommand. */
cli::Command
commandSpec(const std::string &cmd)
{
    cli::Command c;
    c.name = cmd;
    if (cmd == "run") {
        c.own = {{"--config", true}, {"--selector", true}};
        c.batchFlags = {"--jobs", "--json"};
        c.minPositional = 1;
    } else if (cmd == "batch") {
        c.batchFlags = {"--jobs",    "--json",    "--progress",
                        "--isolate", "--timeout", "--retries",
                        "--backoff", "--journal", "--resume",
                        "--inject-fault", "--check-level"};
        c.minPositional = 1;
    } else if (cmd == "sweep") {
        c.own = {{"--store", true},
                 {"--out", true},
                 {"--shard", true},
                 {"--merge", false},
                 {"--no-prefilter", false}};
        c.batchFlags = {"--jobs",    "--progress", "--isolate",
                        "--timeout", "--retries",  "--backoff",
                        "--check-level"};
        c.minPositional = 1;
    } else if (cmd == "cache") {
        c.own = {{"--store", true}};
        c.batchFlags = {"--json"};
        c.minPositional = 1;
    } else if (cmd == "trace") {
        c.own = {{"--config", true},
                 {"--selector", true},
                 {"--out", true},
                 {"--start", true},
                 {"--end", true}};
        c.batchFlags = {"--jobs", "--json"};
        c.minPositional = 1;
    } else if (cmd == "perf") {
        c.own = {{"--subset", true},
                 {"--out", true},
                 {"--baseline", true},
                 {"--label", true},
                 {"--pr", true},
                 {"--check", true}};
        c.batchFlags = {"--jobs", "--json", "--progress"};
    } else if (cmd == "lint") {
        c.own = {{"--config", true},
                 {"--selector", true},
                 {"--budget", true}};
        c.batchFlags = {"--jobs", "--json"};
        c.minPositional = 1;
    } else if (cmd == "analyze") {
        c.batchFlags = {"--json"};
        c.minPositional = 1;
    } else if (cmd == "fuzz") {
        c.own = {{"--seed", true},      {"--count", true},
                 {"--chaos", false},    {"--config", true},
                 {"--selectors", true}, {"--budget", true},
                 {"--no-shrink", false}, {"--repro-dir", true},
                 {"--schedules", true}, {"--work-dir", true},
                 {"--frontend", false}};
        c.batchFlags = {"--jobs"};
    } else if (cmd == "shrink") {
        c.own = {{"--config", true},
                 {"--selectors", true},
                 {"--budget", true},
                 {"--out", true},
                 {"--frontend", false}};
        c.minPositional = 1;
    } else if (cmd == "cc") {
        c.own = {{"--emit", false},
                 {"--out", true},
                 {"--run", false},
                 {"--check", false}};
        c.minPositional = 1;
    } else if (cmd == "candidates" || cmd == "disasm" ||
               cmd == "profile") {
        if (cmd == "profile")
            c.own = {{"--config", true}};
        c.minPositional = 1;
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "workloads") {
        for (const auto &w : mg::workloads::workloadList())
            std::printf("%-18s %s\n", w.name().c_str(), w.suite.c_str());
        return 0;
    }
    if (cmd == "configs") {
        for (const auto &n : uarch::allConfigNames()) {
            auto c = uarch::configFromName(n);
            std::printf("%-9s %u-wide, IQ %u, %u regs\n", n.c_str(),
                        c->issueWidth, c->issueQueueEntries, c->physRegs);
        }
        return 0;
    }
    if (cmd == "selectors") {
        for (const auto &n : minigraph::allSelectorNames()) {
            auto k = minigraph::selectorFromName(n);
            std::printf("%-26s %s\n", n.c_str(),
                        minigraph::selectorName(*k).c_str());
        }
        return 0;
    }

    const bool known = cmd == "run" || cmd == "batch" ||
                       cmd == "sweep" || cmd == "cache" ||
                       cmd == "trace" || cmd == "perf" ||
                       cmd == "candidates" || cmd == "analyze" ||
                       cmd == "lint" || cmd == "disasm" ||
                       cmd == "profile" || cmd == "fuzz" ||
                       cmd == "shrink" || cmd == "cc";
    if (!known)
        return usage();

    cli::Args args;
    if (!cli::parseArgs(argc, argv, 2, commandSpec(cmd), args))
        return usage();

    try {
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "batch")
            return cmdBatch(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "cache")
            return cmdCache(args);
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "perf")
            return cmdPerf(args);
        if (cmd == "candidates")
            return cmdCandidates(args.positional[0]);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "lint")
            return cmdLint(args);
        if (cmd == "cc")
            return cmdCc(args);
        if (cmd == "fuzz")
            return cmdFuzz(args);
        if (cmd == "shrink")
            return cmdShrink(args);
        if (cmd == "disasm") {
            auto prog = loadProgram(args.positional[0]);
            if (!prog)
                return 2;
            std::printf("%s", prog->listing().c_str());
            return 0;
        }
        if (cmd == "profile") {
            auto cfg =
                uarch::configFromName(args.get("--config", "reduced"));
            auto prog = loadProgram(args.positional[0]);
            if (!cfg || !prog)
                return 2;
            auto data = profile::profileProgram(*prog, *cfg);
            std::printf("%s",
                        profile::saveProfileToString(data).c_str());
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
