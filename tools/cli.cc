#include "cli.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/string_util.h"

namespace mg::cli
{

namespace
{

/** Does this batch-surface flag take a value argument? */
bool
batchFlagTakesValue(const std::string &flag)
{
    return flag == "--jobs" || flag == "--timeout" ||
           flag == "--retries" || flag == "--backoff" ||
           flag == "--journal" || flag == "--inject-fault" ||
           flag == "--check-level";
}

void
complain(const Command &cmd, const std::string &msg)
{
    std::fprintf(stderr, "mgsim %s: %s\n", cmd.name.c_str(),
                 msg.c_str());
}

} // namespace

bool
parseArgs(int argc, char **argv, int start, const Command &cmd,
          Args &out)
{
    out.batch = sim::BatchOptions::fromEnv();

    for (int i = start; i < argc; ++i) {
        const std::string arg = argv[i];

        if (arg.rfind("--", 0) != 0) {
            out.positional.push_back(arg);
            continue;
        }

        // Command-specific flag?
        auto spec = std::find_if(
            cmd.own.begin(), cmd.own.end(),
            [&](const FlagSpec &f) { return f.name == arg; });
        if (spec != cmd.own.end()) {
            if (!spec->takesValue) {
                out.own[arg] = "";
                continue;
            }
            if (i + 1 >= argc) {
                complain(cmd, arg + " needs a value");
                return false;
            }
            out.own[arg] = argv[++i];
            continue;
        }

        // Batch-surface flag accepted by this command?
        if (std::find(cmd.batchFlags.begin(), cmd.batchFlags.end(),
                      arg) != cmd.batchFlags.end()) {
            std::string value;
            if (batchFlagTakesValue(arg)) {
                if (i + 1 >= argc) {
                    complain(cmd, arg + " needs a value");
                    return false;
                }
                value = argv[++i];
            }
            std::string err;
            if (!out.batch.applyFlag(arg, value, err)) {
                // ownsFlag and batchFlagTakesValue are in sync with
                // applyFlag; reaching here means they diverged.
                complain(cmd, "internal: unhandled batch flag " + arg);
                return false;
            }
            if (!err.empty()) {
                complain(cmd, err);
                return false;
            }
            continue;
        }

        if (sim::BatchOptions::ownsFlag(arg)) {
            complain(cmd, "flag " + arg +
                              " is not accepted by this subcommand");
            return false;
        }
        complain(cmd, "unknown flag " + arg);
        return false;
    }

    if (out.positional.size() < cmd.minPositional) {
        complain(cmd, "missing argument");
        return false;
    }

    // Cross-flag rules hold regardless of the order flags appeared.
    if (std::string err = out.batch.validate(); !err.empty()) {
        complain(cmd, err);
        return false;
    }
    return true;
}

bool
getInt(const Args &args, const std::string &cmd,
       const std::string &flag, int64_t min, int64_t max, int64_t &out)
{
    if (!args.has(flag))
        return true;
    const std::string value = args.get(flag);
    int64_t v = 0;
    if (!mg::parseInt(value, v) || v < min || v > max) {
        std::string want =
            min == 1 && max == std::numeric_limits<int64_t>::max()
                ? "want a positive integer"
            : min == 0 && max == std::numeric_limits<int64_t>::max()
                ? "want a non-negative integer"
                : "want an integer in [" + std::to_string(min) + ", " +
                      std::to_string(max) + "]";
        std::fprintf(stderr, "mgsim %s: %s %s: %s\n", cmd.c_str(),
                     flag.c_str(), value.c_str(), want.c_str());
        return false;
    }
    out = v;
    return true;
}

bool
getPositive(const Args &args, const std::string &cmd,
            const std::string &flag, int64_t &out)
{
    return getInt(args, cmd, flag, 1,
                  std::numeric_limits<int64_t>::max(), out);
}

bool
getNonNegative(const Args &args, const std::string &cmd,
               const std::string &flag, int64_t &out)
{
    return getInt(args, cmd, flag, 0,
                  std::numeric_limits<int64_t>::max(), out);
}

} // namespace mg::cli
