#!/usr/bin/env bash
# Run clang-tidy over the whole tree using the compile database.
#
#   tools/lint.sh [build-dir]
#
# The build directory must have been configured with
# CMAKE_EXPORT_COMPILE_COMMANDS (the top-level CMakeLists.txt turns it
# on unconditionally).  Exits 0 with a notice when clang-tidy is not
# installed, so the script is safe to call from environments without
# LLVM (the CI clang-tidy job installs it explicitly).
set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy="$(command -v clang-tidy || true)"
if [ -z "$tidy" ]; then
    echo "lint.sh: clang-tidy not installed; skipping (ok)"
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "lint.sh: $db not found; configure first:" >&2
    echo "  cmake -B $build_dir -S ." >&2
    exit 2
fi

# First-party sources only: skip gtest/benchmark and generated files.
mapfile -t sources < <(git ls-files 'src/*.cc' 'tools/*.cc' 'tests/*.cc')
if [ "${#sources[@]}" -eq 0 ]; then
    echo "lint.sh: no sources found" >&2
    exit 2
fi

echo "lint.sh: clang-tidy (${tidy}) over ${#sources[@]} files"
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$build_dir" "${sources[@]}"
else
    "$tidy" -quiet -p "$build_dir" "${sources[@]}"
fi
