// c_matmul: chained 12x12 matrix products -- each round multiplies the
// running product by a fresh random matrix, masking entries back to 16
// bits so values stay bounded across rounds.
unsigned SEED = 1;
unsigned N = 3;
unsigned result = 0;
unsigned rs = 0;

unsigned MA[144];
unsigned MB[144];
unsigned MC[144];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    unsigned j;
    unsigned k;
    unsigned r;
    rs = SEED;
    for (i = 0; i < 144; i = i + 1)
        MA[i] = rnd() & 255;
    for (r = 0; r < N; r = r + 1) {
        for (i = 0; i < 144; i = i + 1)
            MB[i] = rnd() & 255;
        for (i = 0; i < 12; i = i + 1)
            for (j = 0; j < 12; j = j + 1) {
                unsigned acc = 0;
                for (k = 0; k < 12; k = k + 1)
                    acc = acc + MA[i * 12 + k] * MB[k * 12 + j];
                MC[i * 12 + j] = acc & 65535;
            }
        for (i = 0; i < 144; i = i + 1)
            MA[i] = MC[i];
    }
    unsigned chk = 0;
    for (i = 0; i < 144; i = i + 1)
        chk = (chk * 131 + MA[i]) & 4294967295;
    result = chk;
    return 0;
}
