// c_adpcm: IMA ADPCM encode of a centered random sample stream --
// branchy quantization with table-driven step adaptation and signed
// predictor clamping.
unsigned SEED = 1;
unsigned N = 600;
unsigned result = 0;
unsigned rs = 0;

int STEPTBL[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
    34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544,
    598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707,
    1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871,
    5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635,
    13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
int IDXTBL[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    int pred = 0;
    int index = 0;
    unsigned chk = 0;
    unsigned i;
    rs = SEED;
    for (i = 0; i < N; i = i + 1) {
        int sample = rnd() - 32768;
        int step = STEPTBL[index];
        int diff = sample - pred;
        int sign = 0;
        if (diff < 0) {
            sign = 8;
            diff = -diff;
        }
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff = diff - step;
            vpdiff = vpdiff + step;
        }
        if (diff >= (step >> 1)) {
            delta = delta | 2;
            diff = diff - (step >> 1);
            vpdiff = vpdiff + (step >> 1);
        }
        if (diff >= (step >> 2)) {
            delta = delta | 1;
            vpdiff = vpdiff + (step >> 2);
        }
        if (sign)
            pred = pred - vpdiff;
        else
            pred = pred + vpdiff;
        if (pred > 32767)
            pred = 32767;
        if (pred < -32768)
            pred = -32768;
        index = index + IDXTBL[delta];
        if (index < 0)
            index = 0;
        if (index > 88)
            index = 88;
        chk = (chk * 33 + (delta | sign)) & 4294967295;
    }
    result = (chk ^ (pred & 65535) ^ (index * 65536)) & 4294967295;
    return 0;
}
