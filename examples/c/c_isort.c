// c_isort: insertion sort of random keys (signed comparisons via a
// short-circuit guard), checksummed with an FNV-style fold over the
// sorted order.
unsigned SEED = 1;
unsigned N = 96;
unsigned result = 0;
unsigned rs = 0;

unsigned A[160];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    rs = SEED;
    for (i = 0; i < N; i = i + 1)
        A[i] = rnd();
    for (i = 1; i < N; i = i + 1) {
        unsigned v = A[i];
        int j = i - 1;
        while (j >= 0 && A[j] > v) {
            A[j + 1] = A[j];
            j = j - 1;
        }
        A[j + 1] = v;
    }
    unsigned chk = 2166136261;
    for (i = 0; i < N; i = i + 1)
        chk = ((chk ^ A[i]) * 16777619) & 4294967295;
    result = chk;
    return 0;
}
