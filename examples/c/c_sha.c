// c_sha: SHA-1-style compression rounds over random message blocks --
// 32-bit rotate-mix arithmetic emulated on 64-bit registers via a
// helper function with two scalar arguments.
unsigned SEED = 1;
unsigned N = 4;
unsigned result = 0;
unsigned rs = 0;

unsigned W[16];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

unsigned rotl(unsigned x, unsigned c) {
    return ((x << c) | ((x & 4294967295) >> (32 - c))) & 4294967295;
}

int main() {
    unsigned h0 = 0x67452301;
    unsigned h1 = 0xefcdab89;
    unsigned h2 = 0x98badcfe;
    unsigned h3 = 0x10325476;
    unsigned h4 = 0xc3d2e1f0;
    unsigned blk;
    unsigned t;
    rs = SEED;
    for (blk = 0; blk < N; blk = blk + 1) {
        for (t = 0; t < 16; t = t + 1)
            W[t] = rnd() | (rnd() << 16);
        unsigned a = h0;
        unsigned b = h1;
        unsigned c = h2;
        unsigned d = h3;
        unsigned e = h4;
        for (t = 0; t < 80; t = t + 1) {
            unsigned wv;
            if (t < 16) {
                wv = W[t];
            } else {
                wv = rotl(W[(t - 3) & 15] ^ W[(t - 8) & 15] ^
                              W[(t - 14) & 15] ^ W[t & 15],
                          1);
                W[t & 15] = wv;
            }
            unsigned f;
            unsigned k;
            if (t < 20) {
                f = (b & c) | ((~b) & d);
                k = 0x5a827999;
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = 0x6ed9eba1;
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8f1bbcdc;
            } else {
                f = b ^ c ^ d;
                k = 0xca62c1d6;
            }
            unsigned tmp = (rotl(a, 5) + f + e + k + wv) & 4294967295;
            e = d;
            d = c;
            c = rotl(b, 30);
            b = a;
            a = tmp;
        }
        h0 = (h0 + a) & 4294967295;
        h1 = (h1 + b) & 4294967295;
        h2 = (h2 + c) & 4294967295;
        h3 = (h3 + d) & 4294967295;
        h4 = (h4 + e) & 4294967295;
    }
    result = (h0 ^ h1 ^ h2 ^ h3 ^ h4) & 4294967295;
    return 0;
}
