// c_bitcount: Kernighan popcount over 32-bit LCG words, weighted by
// position so element order matters in the checksum.
unsigned SEED = 1;
unsigned N = 400;
unsigned result = 0;
unsigned rs = 0;

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned acc = 0;
    unsigned i;
    rs = SEED;
    for (i = 0; i < N; i = i + 1) {
        unsigned v = rnd() | (rnd() << 16);
        unsigned c = 0;
        while (v) {
            v = v & (v - 1);
            c = c + 1;
        }
        acc = acc + c * (i + 1);
    }
    result = acc & 4294967295;
    return 0;
}
