// c_strsearch: naive substring search of 8 random 4-symbol patterns
// over a 4-letter-alphabet random text; counts matches and folds the
// match positions and pattern bytes into the checksum.
unsigned SEED = 1;
unsigned N = 384;
unsigned result = 0;
unsigned rs = 0;

unsigned TXT[512];
unsigned PAT[4];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    unsigned p;
    unsigned chk = 0;
    rs = SEED;
    for (i = 0; i < N; i = i + 1)
        TXT[i] = rnd() & 3;
    for (p = 0; p < 8; p = p + 1) {
        unsigned k;
        for (k = 0; k < 4; k = k + 1)
            PAT[k] = rnd() & 3;
        unsigned hits = 0;
        for (i = 0; i + 4 <= N; i = i + 1) {
            unsigned ok = 1;
            for (k = 0; k < 4; k = k + 1)
                if (TXT[i + k] != PAT[k]) {
                    ok = 0;
                    break;
                }
            if (ok) {
                hits = hits + 1;
                chk = (chk ^ (i * 2654435761)) & 4294967295;
            }
        }
        chk = ((chk * 33 + hits) ^
               (PAT[0] + PAT[1] * 4 + PAT[2] * 16 + PAT[3] * 64)) &
              4294967295;
    }
    result = chk;
    return 0;
}
