// c_fir: 16-tap FIR filter over an LCG sample stream with a
// multiply-fold checksum of the filtered output.
unsigned SEED = 1;
unsigned N = 160;
unsigned result = 0;
unsigned rs = 0;

unsigned TAPS[16] = {3, 7, 11, 5, 2, 13, 8, 1, 6, 9, 4, 12, 10, 15, 14, 3};
unsigned X[256];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    unsigned t;
    unsigned chk = 2166136261;
    rs = SEED;
    for (i = 0; i < N; i = i + 1)
        X[i] = rnd();
    for (i = 16; i < N; i = i + 1) {
        unsigned acc = 0;
        for (t = 0; t < 16; t = t + 1)
            acc = acc + TAPS[t] * X[i - t];
        chk = ((chk ^ (acc & 4294967295)) * 16777619) & 4294967295;
    }
    result = chk;
    return 0;
}
