// c_dijkstra: single-source shortest paths on a dense random 16-node
// graph, run from N different sources; checksums the distance vectors.
unsigned SEED = 1;
unsigned N = 8;
unsigned result = 0;
unsigned rs = 0;

unsigned G[256];
unsigned DIST[16];
unsigned DONE[16];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    unsigned j;
    unsigned src;
    unsigned chk = 0;
    rs = SEED;
    for (i = 0; i < 256; i = i + 1)
        G[i] = (rnd() & 63) + 1;
    for (src = 0; src < N; src = src + 1) {
        for (i = 0; i < 16; i = i + 1) {
            DIST[i] = 1000000;
            DONE[i] = 0;
        }
        DIST[src & 15] = 0;
        unsigned it;
        for (it = 0; it < 16; it = it + 1) {
            unsigned best = 1000001;
            int bi = -1;
            for (i = 0; i < 16; i = i + 1)
                if (!DONE[i] && DIST[i] < best) {
                    best = DIST[i];
                    bi = i;
                }
            if (bi < 0)
                break;
            DONE[bi] = 1;
            for (j = 0; j < 16; j = j + 1) {
                unsigned nd = DIST[bi] + G[bi * 16 + j];
                if (nd < DIST[j])
                    DIST[j] = nd;
            }
        }
        for (i = 0; i < 16; i = i + 1)
            chk = (chk * 31 + DIST[i]) & 4294967295;
    }
    result = chk;
    return 0;
}
