// c_histogram: 64-bin histogram of an LCG stream with a secondary
// xor-weighted accumulation, folded into one checksum.
unsigned SEED = 1;
unsigned N = 1500;
unsigned result = 0;
unsigned rs = 0;

unsigned H[64];
unsigned W[64];

unsigned rnd() {
    rs = rs * 6364136223846793005 + 1442695040888963407;
    return (rs >> 33) & 0xffff;
}

int main() {
    unsigned i;
    rs = SEED;
    for (i = 0; i < N; i = i + 1) {
        unsigned v = rnd();
        H[v & 63] = H[v & 63] + 1;
        W[(v >> 5) & 63] = W[(v >> 5) & 63] ^ (v & 255);
    }
    unsigned chk = 0;
    for (i = 0; i < 64; i = i + 1)
        chk = (chk * 31 + H[i] * 7 + W[i]) & 4294967295;
    result = chk;
    return 0;
}
