/**
 * @file
 * A walk through the paper's Figures 4 and 5: what serialization is,
 * how the structural classes (none / bounded / unbounded) arise, and
 * how the Slack-Profile rules quantify mini-graph-induced delay.
 *
 * The program builds three small code shapes, shows their candidate
 * classifications, then collects a real slack profile and prints the
 * rule-by-rule evaluation for each candidate.
 *
 * Build and run:  ./build/examples/serialization_anatomy
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "minigraph/selectors.h"
#include "profile/slack_profile.h"
#include "uarch/config.h"

namespace
{

using namespace mg;

const char *
className(minigraph::SerialClass c)
{
    switch (c) {
      case minigraph::SerialClass::NonSerializing: return "none";
      case minigraph::SerialClass::Bounded: return "bounded";
      case minigraph::SerialClass::Unbounded: return "unbounded";
    }
    return "?";
}

void
analyse(const char *title, const char *source)
{
    std::printf("==== %s ====\n", title);
    assembler::Program prog = assembler::assemble(source);
    std::printf("%s", prog.listing().c_str());

    auto pool = minigraph::enumerateCandidates(prog);
    profile::SlackProfileData prof =
        profile::profileProgram(prog, uarch::reducedConfig());

    std::printf("%-8s %-4s %-10s %-28s %s\n", "firstPc", "len", "class",
                "per-constituent delay (r#3)", "verdicts");
    for (const auto &c : pool) {
        auto m = minigraph::evaluateSlackModel(c, prog, prof);
        std::string delays;
        for (unsigned k = 0; k < c.len; ++k) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f ", m.delay[k]);
            delays += buf;
        }
        std::printf("%-8u %-4u %-10s %-28s %s%s%s\n", c.firstPc, c.len,
                    className(c.serialClass), delays.c_str(),
                    m.degrades ? "DEGRADES " : "ok ",
                    m.anyOutputDelayed ? "(output delayed) " : "",
                    m.serialInputArrivesLast ? "(SIAL)" : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // Shape 1 (Figure 4b/c, bounded): the serializing input feeds the
    // instruction that produces the output, so in a singleton
    // execution the output would wait for it anyway.  The slow value
    // r2 comes from a multiply chain.
    analyse("bounded serialization (Figure 4c)",
            "main:  li r29, 3000\n"
            "       li r2, 3\n"
            "loop:  mul r2, r2, r2\n"
            "       ori r2, r2, 1\n"
            "       add r5, r29, r29\n" // window start: fast input
            "       add r6, r5, r2\n"   // slow input -> output producer
            "       sd r6, 0(r28)\n"
            "       addi r29, r29, -1\n"
            "       bnez r29, loop\n"
            "       halt\n");

    // Shape 2 (Figure 4d, unbounded): the output comes from the
    // *first* instruction; the serializing input feeds a later,
    // independent store-address computation.  If the slow input is n
    // cycles late, the output is n cycles late — unbounded.
    analyse("unbounded serialization (Figure 4d)",
            "main:  li r29, 3000\n"
            "       li r2, 3\n"
            "loop:  mul r2, r2, r2\n"
            "       ori r2, r2, 1\n"
            "       add r6, r29, r29\n" // produces the live-out value
            "       andi r7, r2, 248\n" // slow input, feeds the store
            "       sd r6, 0(r7)\n"
            "       add r8, r6, r6\n"   // consumer of the output
            "       sd r8, 8(r28)\n"
            "       addi r29, r29, -1\n"
            "       bnez r29, loop\n"
            "       halt\n");

    // Shape 3: structurally serializing, but the "serializing" input
    // is always ready first at run time — the profile shows no actual
    // delay (the reason Struct-None is too conservative).
    analyse("structural-but-harmless serialization",
            "main:  li r29, 3000\n"
            "       li r2, 7\n"         // ready long before each iter
            "loop:  mul r9, r29, r29\n"
            "       andi r9, r9, 1023\n"
            "       add r5, r9, r9\n"   // slow input feeds FIRST op
            "       add r6, r5, r2\n"   // early input feeds SECOND op
            "       sd r6, 0(r28)\n"
            "       addi r29, r29, -1\n"
            "       bnez r29, loop\n"
            "       halt\n");

    std::printf("Legend: rule #1/2 compute each constituent's issue\n"
                "time inside the mini-graph; rule #3 is the delay vs\n"
                "its singleton issue time; rule #4 (DEGRADES) fires\n"
                "when an output's delay exceeds its local slack.\n");
    return 0;
}
