/**
 * @file
 * Selector tour: run every selector from the paper on one benchmark
 * and print the §5.1-style comparison — coverage, performance on the
 * reduced machine, and performance on the fully-provisioned machine.
 *
 * Usage:  ./build/examples/selector_tour [workload]
 *         (default adpcm_c.0; try crc32.0, sha_like.0, mcf_like.0,
 *          or list all with "--list")
 */

#include <cstdio>
#include <cstring>

#include "common/stats_util.h"
#include "sim/experiment.h"

int
main(int argc, char **argv)
{
    using namespace mg;
    using minigraph::SelectorKind;

    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const auto &w : workloads::workloadList())
            std::printf("%s (%s)\n", w.name().c_str(), w.suite.c_str());
        return 0;
    }

    std::string name = argc > 1 ? argv[1] : "adpcm_c.0";
    auto spec = workloads::findWorkload(name);
    if (!spec) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     name.c_str());
        return 1;
    }

    sim::ProgramContext ctx(*spec);
    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();
    double base = static_cast<double>(ctx.baseline(full).cycles);
    double base_red = static_cast<double>(ctx.baseline(reduced).cycles);

    std::printf("%s: %llu instructions, %zu mini-graph candidates\n",
                name.c_str(),
                static_cast<unsigned long long>(
                    ctx.baseline(full).originalInsts),
                ctx.candidatePool().size());
    std::printf("no mini-graphs: reduced machine at %.3fx the "
                "fully-provisioned baseline\n\n",
                base / base_red);

    TextTable t;
    t.header({"selector", "coverage", "templates", "reduced perf",
              "full perf"});
    for (auto kind :
         {SelectorKind::StructAll, SelectorKind::StructNone,
          SelectorKind::StructBounded, SelectorKind::SlackDynamic,
          SelectorKind::SlackProfile}) {
        auto r = ctx.run({.config = reduced, .selector = kind});
        auto f = ctx.run({.config = full, .selector = kind});
        t.row({minigraph::selectorName(kind),
               fmtDouble(r.coverage(), 3),
               std::to_string(r.templatesUsed),
               fmtDouble(base / r.sim.cycles, 3),
               fmtDouble(base / f.sim.cycles, 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n(perf is relative to the 4-way baseline: 1.000 means "
                "fully compensated)\n");
    return 0;
}
