/**
 * @file
 * Bring-your-own-kernel: write an MG-RISC routine (here: a fixed-point
 * exponential moving average over a sample stream), validate it on
 * the functional core against a C++ reference, then measure how much
 * a mini-graph-enabled reduced machine recovers.
 *
 * Demonstrates the workflow a user follows to evaluate their own
 * codes: assemble -> verify -> profile -> select -> simulate.
 *
 * Build and run:  ./build/examples/custom_kernel
 */

#include <cstdio>
#include <sstream>
#include <vector>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "sim/experiment.h"
#include "uarch/functional.h"

int
main()
{
    using namespace mg;

    // ---- generate input data and the C++ reference result ----
    const unsigned n = 6000;
    Rng rng(42);
    std::vector<int32_t> samples(n);
    int32_t v = 0;
    for (auto &s : samples) {
        v += static_cast<int32_t>(rng.range(-200, 200));
        s = v;
    }
    int64_t ema = 0;
    uint64_t expected = 0;
    for (int32_t s : samples) {
        ema += (static_cast<int64_t>(s) - ema) >> 3; // alpha = 1/8
        expected += static_cast<uint64_t>(ema) & 0xffff;
    }

    // ---- emit the assembly with the data inline ----
    std::ostringstream src;
    src << "        .data\n"
           "result: .dword 0\n"
           "input:\n";
    for (unsigned i = 0; i < n; i += 8) {
        src << "        .word ";
        for (unsigned j = i; j < i + 8 && j < n; ++j) {
            if (j > i)
                src << ", ";
            src << static_cast<uint32_t>(samples[j]);
        }
        src << "\n";
    }
    src << "        .text\n"
           "main:   la   r1, input\n"
        << "        li   r2, " << n << "\n"
        << "        li   r3, 0\n" // ema
           "        li   r4, 0\n" // acc
           "        li   r15, 65535\n"
           "loop:   lw   r5, 0(r1)\n"
           "        sub  r6, r5, r3\n"
           "        srai r6, r6, 3\n"
           "        add  r3, r3, r6\n"
           "        and  r7, r3, r15\n"
           "        add  r4, r4, r7\n"
           "        addi r1, r1, 4\n"
           "        addi r2, r2, -1\n"
           "        bnez r2, loop\n"
           "        la   r8, result\n"
           "        sd   r4, 0(r8)\n"
           "        halt\n";

    assembler::AssembleOptions opts;
    opts.name = "ema";
    assembler::Program prog = assembler::assemble(src.str(), opts);

    // ---- functional validation ----
    uarch::FunctionalCore golden(prog);
    golden.run();
    uint64_t got =
        golden.memory().read(prog.dataLabels.at("result"), 8);
    std::printf("functional check: expected=%llu got=%llu  %s\n",
                static_cast<unsigned long long>(expected),
                static_cast<unsigned long long>(got),
                expected == got ? "OK" : "MISMATCH");
    if (expected != got)
        return 1;

    // ---- timing study ----
    sim::ProgramContext ctx(prog);
    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();
    double base = static_cast<double>(ctx.baseline(full).cycles);
    std::printf("\n4-way baseline: %.0f cycles (IPC %.2f)\n", base,
                ctx.baseline(full).ipc());
    std::printf("3-way reduced : %.3fx\n",
                base / ctx.baseline(reduced).cycles);
    for (auto kind : {minigraph::SelectorKind::StructAll,
                      minigraph::SelectorKind::SlackProfile}) {
        auto r = ctx.run({.config = reduced, .selector = kind});
        std::printf("3-way + %-14s: %.3fx  (coverage %.0f%%)\n",
                    minigraph::selectorName(kind).c_str(),
                    base / r.sim.cycles, 100.0 * r.coverage());
    }
    return 0;
}
