/**
 * @file
 * Quickstart: the whole mini-graph pipeline on a small program.
 *
 *   1. assemble an MG-RISC program,
 *   2. profile it (execution counts + local slack),
 *   3. enumerate mini-graph candidates and select with Slack-Profile,
 *   4. rewrite the binary with outlined mini-graphs,
 *   5. simulate original vs rewritten on the reduced 3-way machine
 *      and compare against the fully-provisioned 4-way baseline.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "assembler/assembler.h"
#include "sim/experiment.h"

int
main()
{
    using namespace mg;

    // A little checksum loop with an obvious mini-graph inside.
    const char *source =
        "        .data\n"
        "input:  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3\n"
        "result: .dword 0\n"
        "        .text\n"
        "main:   la   r1, input\n"
        "        li   r2, 16\n"
        "        li   r3, 0\n"
        "        li   r9, 20000\n"        // outer repetitions
        "outer:  la   r1, input\n"
        "        li   r2, 16\n"
        "loop:   lw   r4, 0(r1)\n"
        "        slli r5, r4, 1\n"
        "        add  r5, r5, r4\n"       // r5 = 3*r4
        "        add  r3, r3, r5\n"
        "        addi r1, r1, 4\n"
        "        addi r2, r2, -1\n"
        "        bnez r2, loop\n"
        "        addi r9, r9, -1\n"
        "        bnez r9, outer\n"
        "        la   r6, result\n"
        "        sd   r3, 0(r6)\n"
        "        halt\n";

    assembler::AssembleOptions opts;
    opts.name = "quickstart";
    assembler::Program prog = assembler::assemble(source, opts);
    std::printf("assembled %zu instructions\n%s\n", prog.size(),
                prog.listing().c_str());

    sim::ProgramContext ctx(prog);
    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();

    // Candidate pool.
    std::printf("mini-graph candidates: %zu\n",
                ctx.candidatePool().size());

    // Baselines.
    auto base_full = ctx.baseline(full);
    auto base_red = ctx.baseline(reduced);
    std::printf("\n4-way baseline : %8llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(base_full.cycles),
                base_full.ipc());
    std::printf("3-way reduced  : %8llu cycles (IPC %.2f)  -> %.1f%% "
                "slower\n",
                static_cast<unsigned long long>(base_red.cycles),
                base_red.ipc(),
                100.0 * (static_cast<double>(base_red.cycles) /
                             base_full.cycles -
                         1.0));

    // Slack-Profile mini-graphs on the reduced machine.
    auto run =
        ctx.run({.config = reduced,
                 .selector = minigraph::SelectorKind::SlackProfile});
    std::printf("3-way + MGs    : %8llu cycles (coverage %.0f%%, "
                "%u templates, %zu sites)\n",
                static_cast<unsigned long long>(run.sim.cycles),
                100.0 * run.coverage(), run.templatesUsed,
                run.instances);
    double vs_full = static_cast<double>(base_full.cycles) /
                     static_cast<double>(run.sim.cycles);
    std::printf("\nreduced machine with Slack-Profile mini-graphs runs "
                "at %.3fx the fully-provisioned baseline\n",
                vs_full);
    return 0;
}
