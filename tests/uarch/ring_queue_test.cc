/**
 * @file
 * RingQueue (src/uarch/ring_queue.h) edge cases: wrap-around at
 * exactly the capacity, growth while the head is mid-buffer, FIFO
 * order across repeated fill/drain cycles spanning the power-of-two
 * boundary, and push_front wrapping below index zero.
 */

#include <gtest/gtest.h>

#include "uarch/ring_queue.h"

namespace mg::uarch
{
namespace
{

TEST(RingQueue, FillToExactlyInitialCapacityThenDrain)
{
    RingQueue<int> q;
    for (int i = 0; i < 16; ++i) // kInitialCapacity, no growth yet
        q.push_back(int(i));
    ASSERT_EQ(q.size(), 16u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, FillDrainFillAcrossPowerOfTwoBoundary)
{
    // Leave the head mid-buffer, then push enough that the tail wraps
    // past the capacity boundary and the queue must grow with wrapped
    // contents.
    RingQueue<int> q;
    for (int i = 0; i < 16; ++i)
        q.push_back(int(i));
    for (int i = 0; i < 10; ++i)
        q.pop_front(); // head = 10, count = 6

    for (int i = 16; i < 40; ++i) // wraps, then grows (16 -> 32 -> 64)
        q.push_back(int(i));
    ASSERT_EQ(q.size(), 30u);
    for (int i = 10; i < 40; ++i) {
        EXPECT_EQ(q.front(), i) << "FIFO order broken at " << i;
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());

    // The queue stays usable after the growth cycle.
    q.push_back(99);
    EXPECT_EQ(q.front(), 99);
}

TEST(RingQueue, GrowAtExactlyCapacityWithWrappedHead)
{
    RingQueue<int> q;
    for (int i = 0; i < 16; ++i)
        q.push_back(int(i));
    for (int i = 0; i < 15; ++i)
        q.pop_front(); // head = 15 (last slot), count = 1

    for (int i = 16; i < 31; ++i)
        q.push_back(int(i)); // count back to 16 with head mid-buffer
    ASSERT_EQ(q.size(), 16u);
    q.push_back(31); // the push at exactly capacity forces grow()

    ASSERT_EQ(q.size(), 17u);
    for (int i = 15; i <= 31; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
}

TEST(RingQueue, IndexOperatorFollowsWrappedHead)
{
    RingQueue<int> q;
    for (int i = 0; i < 16; ++i)
        q.push_back(int(i));
    for (int i = 0; i < 12; ++i)
        q.pop_front();
    for (int i = 16; i < 24; ++i)
        q.push_back(int(i)); // physically wrapped
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], static_cast<int>(12 + i));
}

TEST(RingQueue, PushFrontWrapsBelowZero)
{
    RingQueue<int> q;
    q.push_back(1); // head = 0: push_front must wrap to slot 15
    q.push_front(0);
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], 0);
    EXPECT_EQ(q[1], 1);

    // push_front at exactly capacity grows first.
    RingQueue<int> full;
    for (int i = 1; i <= 16; ++i)
        full.push_back(int(i));
    full.push_front(0);
    ASSERT_EQ(full.size(), 17u);
    for (int i = 0; i <= 16; ++i) {
        EXPECT_EQ(full.front(), i);
        full.pop_front();
    }
}

TEST(RingQueue, EmplaceBackResetsRecycledSlot)
{
    RingQueue<int> q;
    for (int i = 0; i < 16; ++i)
        q.push_back(int(i + 100));
    for (int i = 0; i < 16; ++i)
        q.pop_front();
    // The recycled slot held 100..115; emplace_back must hand back a
    // default-initialized element, not stale contents.
    EXPECT_EQ(q.emplace_back(), 0);
}

TEST(RingQueue, ClearThenReuse)
{
    RingQueue<int> q;
    for (int i = 0; i < 20; ++i)
        q.push_back(int(i));
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push_back(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.size(), 1u);
}

} // namespace
} // namespace mg::uarch
