#include "uarch/functional.h"

#include <deque>

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::uarch
{
namespace
{

FunctionalCore
runProgram(const std::string &src)
{
    // A deque keeps element addresses stable: each FunctionalCore
    // holds a reference to its Program.
    static std::deque<assembler::Program> keep_alive;
    keep_alive.push_back(assembler::assemble(src));
    FunctionalCore core(keep_alive.back());
    core.run(100000);
    return core;
}

uint64_t
evalToR1(const std::string &body)
{
    auto core = runProgram(body + "\nhalt\n");
    return core.reg(1);
}

TEST(Functional, ArithmeticBasics)
{
    EXPECT_EQ(evalToR1("li r2, 7\nli r3, 5\nadd r1, r2, r3"), 12u);
    EXPECT_EQ(evalToR1("li r2, 7\nli r3, 5\nsub r1, r2, r3"), 2u);
    EXPECT_EQ(evalToR1("li r2, 5\nli r3, 7\nsub r1, r2, r3"),
              static_cast<uint64_t>(-2));
    EXPECT_EQ(evalToR1("li r2, 6\nli r3, 7\nmul r1, r2, r3"), 42u);
}

TEST(Functional, LogicAndShifts)
{
    EXPECT_EQ(evalToR1("li r2, 0xf0\nli r3, 0x0f\nor r1, r2, r3"), 0xffu);
    EXPECT_EQ(evalToR1("li r2, 0xf0\nandi r1, r2, 0x30"), 0x30u);
    EXPECT_EQ(evalToR1("li r2, 0xff\nxori r1, r2, 0x0f"), 0xf0u);
    EXPECT_EQ(evalToR1("li r2, 1\nslli r1, r2, 8"), 256u);
    EXPECT_EQ(evalToR1("li r2, -8\nsrai r1, r2, 1"),
              static_cast<uint64_t>(-4));
    EXPECT_EQ(evalToR1("li r2, -8\nsrli r1, r2, 60"), 0xfu);
}

TEST(Functional, Comparisons)
{
    EXPECT_EQ(evalToR1("li r2, -1\nli r3, 1\nslt r1, r2, r3"), 1u);
    EXPECT_EQ(evalToR1("li r2, -1\nli r3, 1\nsltu r1, r2, r3"), 0u);
    EXPECT_EQ(evalToR1("li r2, 5\nslti r1, r2, 6"), 1u);
    EXPECT_EQ(evalToR1("li r2, 5\nsltiu r1, r2, 5"), 0u);
}

TEST(Functional, DivisionSemantics)
{
    EXPECT_EQ(evalToR1("li r2, 42\nli r3, 5\ndiv r1, r2, r3"), 8u);
    EXPECT_EQ(evalToR1("li r2, -42\nli r3, 5\ndiv r1, r2, r3"),
              static_cast<uint64_t>(-8));
    EXPECT_EQ(evalToR1("li r2, 42\nli r3, 5\nrem r1, r2, r3"), 2u);
    // RISC-V conventions for the awkward cases.
    EXPECT_EQ(evalToR1("li r2, 42\nli r3, 0\ndiv r1, r2, r3"),
              ~0ull);
    EXPECT_EQ(evalToR1("li r2, 42\nli r3, 0\nrem r1, r2, r3"), 42u);
}

TEST(Functional, ZeroRegisterReadsZeroIgnoresWrites)
{
    EXPECT_EQ(evalToR1("li r0, 99\nadd r1, r0, r0"), 0u);
}

TEST(Functional, LoadStoreWidthsAndSignExtension)
{
    auto core = runProgram(".data\nbuf: .space 32\n.text\n"
                           "main: li r2, -1\n"
                           "      sb r2, buf\n"
                           "      lbu r1, buf\n"
                           "      lb r3, buf\n"
                           "      li r4, 0x12345678\n"
                           "      sw r4, buf+8\n"
                           "      lw r5, buf+8\n"
                           "      sh r4, buf+16\n"
                           "      lhu r6, buf+16\n"
                           "      halt\n");
    EXPECT_EQ(core.reg(1), 0xffu);
    EXPECT_EQ(core.reg(3), static_cast<uint64_t>(-1));
    EXPECT_EQ(core.reg(5), 0x12345678u);
    EXPECT_EQ(core.reg(6), 0x5678u);
}

TEST(Functional, BranchesFollowPredicates)
{
    auto core = runProgram("main: li r1, 0\n"
                           "      li r2, 3\n"
                           "loop: addi r1, r1, 1\n"
                           "      blt r1, r2, loop\n"
                           "      halt\n");
    EXPECT_EQ(core.reg(1), 3u);
}

TEST(Functional, UnsignedBranches)
{
    auto core = runProgram("main: li r1, -1\n"   // max unsigned
                           "      li r2, 1\n"
                           "      li r3, 0\n"
                           "      bltu r1, r2, below\n"
                           "      li r3, 7\n"
                           "below: halt\n");
    EXPECT_EQ(core.reg(3), 7u);
}

TEST(Functional, CallAndReturn)
{
    auto core = runProgram("main: li r1, 1\n"
                           "      call fn\n"
                           "      addi r1, r1, 100\n"
                           "      halt\n"
                           "fn:   addi r1, r1, 10\n"
                           "      ret\n");
    EXPECT_EQ(core.reg(1), 111u);
}

TEST(Functional, JalrIndirectCall)
{
    auto core = runProgram("main: la r5, fn\n"
                           "      jalr ra, r5\n"
                           "      addi r1, r1, 1\n"
                           "      halt\n"
                           "fn:   li r1, 40\n"
                           "      ret\n");
    EXPECT_EQ(core.reg(1), 41u);
}

TEST(Functional, StackPointerInitialised)
{
    auto core = runProgram("main: mov r1, sp\nhalt\n");
    EXPECT_GT(core.reg(1), 0u);
    EXPECT_EQ(core.reg(1) % 16, 0u);
}

TEST(Functional, InstCountCountsExecutedInstructions)
{
    auto core = runProgram("main: li r1, 2\n"
                           "loop: addi r1, r1, -1\n"
                           "      bnez r1, loop\n"
                           "      halt\n");
    // li + 2*(addi+bne) + halt = 6.
    EXPECT_EQ(core.instCount(), 6u);
}

TEST(Functional, StepAfterHaltPanics)
{
    static assembler::Program p = assembler::assemble("halt\n");
    FunctionalCore core(p);
    core.run();
    EXPECT_DEATH(core.step(), "after halt");
}

TEST(Functional, RunRespectsStepLimit)
{
    static assembler::Program p =
        assembler::assemble("loop: j loop\n");
    FunctionalCore core(p);
    EXPECT_DEATH(core.run(100), "exceeded");
}

TEST(Functional, ExecStepReportsMemoryAccess)
{
    static assembler::Program p = assembler::assemble(
        ".data\nv: .word 9\n.text\nmain: lw r1, v\nhalt\n");
    FunctionalCore core(p);
    ExecStep s = core.step();
    EXPECT_EQ(s.memSize, 4);
    EXPECT_EQ(s.memAddr, p.dataBase);
    EXPECT_EQ(s.nextPc, 1u);
}

TEST(Functional, ExecStepReportsBranchOutcome)
{
    static assembler::Program p = assembler::assemble(
        "main: li r1, 1\n"
        "      bnez r1, target\n"
        "      nop\n"
        "target: halt\n");
    FunctionalCore core(p);
    core.step();
    ExecStep s = core.step();
    EXPECT_TRUE(s.taken);
    EXPECT_EQ(s.nextPc, 3u);
}

} // namespace
} // namespace mg::uarch
