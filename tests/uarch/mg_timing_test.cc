/**
 * @file
 * Cycle-level tests of mini-graph execution in the timing core:
 * amplification (one slot per handle), external serialization
 * (aggregate waits for all inputs), internal serialization
 * (constituents in series), and the per-cycle mini-graph issue
 * limits.
 */

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "minigraph/rewriter.h"
#include "minigraph/selection.h"
#include "profile/exec_counts.h"
#include "sim/experiment.h"
#include "uarch/core.h"

namespace mg::uarch
{
namespace
{

struct MgRun
{
    minigraph::RewrittenProgram rp;
    SimResult base;
    SimResult mg;
};

const assembler::Program &
keep(assembler::Program p)
{
    static std::deque<assembler::Program> progs;
    progs.push_back(std::move(p));
    return progs.back();
}

MgRun
runBoth(const std::string &src, const CoreConfig &cfg = fullConfig())
{
    const assembler::Program &prog = keep(assembler::assemble(src));
    auto pool = minigraph::enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    auto sel = minigraph::selectGreedy(pool, counts, 512);

    MgRun out;
    out.rp = minigraph::rewrite(prog, sel.chosen);
    Core base_core(cfg, prog);
    out.base = base_core.run();
    Core mg_core(cfg, out.rp.program, &out.rp.info);
    out.mg = mg_core.run();
    return out;
}

TEST(MgTiming, HandlesAmplifyCommitSlots)
{
    // 4-instruction chain per iteration collapses into one handle:
    // far fewer commit "units" for the same instruction count.
    MgRun r = runBoth("main:  li r29, 2000\n"
                      "loop:  add r1, r2, r2\n"
                      "       add r1, r1, r2\n"
                      "       add r1, r1, r2\n"
                      "       sd r1, 0(r28)\n"
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n");
    EXPECT_EQ(r.mg.originalInsts, r.base.originalInsts);
    EXPECT_LT(r.mg.committedUnits, r.base.committedUnits);
    EXPECT_GT(r.mg.coverage(), 0.5);
}

TEST(MgTiming, NonSerializingChainMgIsHarmless)
{
    // Explicitly choose the pure-chain window [ori; slli; srli]
    // (external input feeds the first constituent): aggregate
    // execution matches the singleton schedule, so cycles stay put.
    const assembler::Program &prog = keep(assembler::assemble(
        "main:  li r29, 3000\n"
        "loop:  add r1, r1, r2\n"   // 1: chain head (stays singleton)
        "       ori r3, r1, 5\n"    // 2
        "       slli r3, r3, 1\n"   // 3
        "       srli r3, r3, 2\n"   // 4
        "       sd r3, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n"));
    auto pool = minigraph::enumerateCandidates(prog);
    const minigraph::Candidate *chain = nullptr;
    for (const auto &c : pool) {
        if (c.firstPc == 2 && c.len == 3)
            chain = &c;
    }
    ASSERT_NE(chain, nullptr);
    ASSERT_EQ(chain->serialClass,
              minigraph::SerialClass::NonSerializing);

    auto rp = minigraph::rewrite(prog, {*chain});
    Core base_core(fullConfig(), prog);
    Core mg_core(fullConfig(), rp.program, &rp.info);
    uint64_t base = base_core.run().cycles;
    uint64_t mg = mg_core.run().cycles;
    EXPECT_LT(static_cast<double>(mg), 1.1 * static_cast<double>(base));
}

TEST(MgTiming, SerializingAggregateStretchesRecurrence)
{
    // Struct-All greedy grabs the window [srli; sd; addi r29; bnez]
    // whose loop-carried input (r29) enters at a non-first
    // constituent: external serialization stretches the 1-cycle
    // counter recurrence to the aggregate's prefix latency, and the
    // loop slows measurably.  (This is exactly the pathology the
    // serialization-aware selectors exist to avoid.)
    MgRun r = runBoth("main:  li r29, 3000\n"
                      "loop:  add r1, r1, r2\n"
                      "       ori r3, r1, 5\n"
                      "       slli r3, r3, 1\n"
                      "       srli r3, r3, 2\n"
                      "       sd r3, 0(r28)\n"
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n");
    EXPECT_GT(static_cast<double>(r.mg.cycles),
              1.2 * static_cast<double>(r.base.cycles));
    // ... and the Slack-Profile selector avoids the harm on the same
    // program (the recurrence guard rejects the stretching window).
    const assembler::Program &prog = keep(assembler::assemble(
        "main:  li r29, 3000\n"
        "loop:  add r1, r1, r2\n"
        "       ori r3, r1, 5\n"
        "       slli r3, r3, 1\n"
        "       srli r3, r3, 2\n"
        "       sd r3, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n"));
    sim::ProgramContext ctx(prog);
    auto safe =
        ctx.run({.config = fullConfig(),
                 .selector = minigraph::SelectorKind::SlackProfile});
    EXPECT_LT(static_cast<double>(safe.sim.cycles),
              1.1 * static_cast<double>(r.base.cycles));
}

TEST(MgTiming, MgIssueWidthLimitBinds)
{
    // Many independent 2-op mini-graphs per iteration: with only one
    // mini-graph issue per cycle the loop gets slower than with two.
    std::string body;
    for (int i = 1; i <= 6; ++i) {
        std::string r = std::to_string(i);
        body += "       add r" + r + ", r20, r2" + r + "\n";
        body += "       slli r" + r + ", r" + r + ", 1\n";
    }
    // Consume the results so each pair is live-out once.
    std::string src = "main:  li r29, 2000\nloop:\n" + body;
    for (int i = 1; i <= 6; ++i)
        src += "       sd r" + std::to_string(i) + ", " +
               std::to_string(8 * i) + "(r28)\n";
    src += "       addi r29, r29, -1\n"
           "       bnez r29, loop\n"
           "       halt\n";

    const assembler::Program &prog = keep(assembler::assemble(src));
    auto pool = minigraph::enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    auto sel = minigraph::selectGreedy(pool, counts, 512);
    auto rp = minigraph::rewrite(prog, sel.chosen);
    ASSERT_GT(rp.instanceCount(), 3u);

    CoreConfig one = fullConfig();
    one.mgIssuePerCycle = 1;
    CoreConfig two = fullConfig();
    two.mgIssuePerCycle = 2;
    Core c1(one, rp.program, &rp.info);
    Core c2(two, rp.program, &rp.info);
    uint64_t cyc1 = c1.run().cycles;
    uint64_t cyc2 = c2.run().cycles;
    EXPECT_GT(cyc1, cyc2);
}

TEST(MgTiming, HandleWithBranchStillPredicts)
{
    // The loop-closing branch lives inside a handle; prediction keeps
    // working (no per-iteration mispredict penalty).
    MgRun r = runBoth("main:  li r29, 4000\n"
                      "loop:  addi r1, r1, 3\n"
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n");
    bool has_ctl_handle = false;
    for (const auto &t : r.rp.info.templates)
        has_ctl_handle |= t.hasControl;
    ASSERT_TRUE(has_ctl_handle);
    EXPECT_LT(r.mg.branchPred.condMispredictRate(), 0.01);
    EXPECT_EQ(r.mg.originalInsts, r.base.originalInsts);
}

TEST(MgTiming, MemHandleAccessesCache)
{
    // A load inside a handle still produces D$ traffic.
    MgRun r = runBoth(".data\nbuf: .space 4096\n.text\n"
                      "main:  li r29, 2000\n"
                      "       la r9, buf\n"
                      "loop:  andi r4, r29, 1023\n"
                      "       add r4, r4, r9\n"
                      "       lw r5, 0(r4)\n"
                      "       add r6, r5, r29\n"
                      "       sd r6, 2048(r9)\n"
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n");
    bool mem_handle = false;
    for (const auto &t : r.rp.info.templates)
        mem_handle |= t.hasMem;
    ASSERT_TRUE(mem_handle);
    EXPECT_GT(r.mg.dcache.accesses, 2000u);
}

TEST(MgTiming, RegisterPressureReliefVisible)
{
    // With a tiny rename pool, embedding interior values (which need
    // no physical registers) relieves pressure: the mini-graph run
    // must stall on registers less.
    std::string src = "main:  li r29, 2000\n"
                      "loop:\n";
    for (int i = 1; i <= 5; ++i) {
        std::string r = std::to_string(i);
        src += "       add r" + r + ", r20, r21\n";
        src += "       slli r" + r + ", r" + r + ", 1\n";
        src += "       ori r" + r + ", r" + r + ", 1\n";
    }
    for (int i = 1; i <= 5; ++i)
        src += "       sd r" + std::to_string(i) + ", " +
               std::to_string(8 * i) + "(r28)\n";
    src += "       addi r29, r29, -1\n"
           "       bnez r29, loop\n"
           "       halt\n";

    CoreConfig tight = fullConfig();
    tight.physRegs = 44; // 12 rename registers
    MgRun r = runBoth(src, tight);
    EXPECT_LT(r.mg.regStallCycles, r.base.regStallCycles);
    EXPECT_LT(r.mg.cycles, r.base.cycles);
}

} // namespace
} // namespace mg::uarch
