#include "uarch/store_sets.h"

#include <gtest/gtest.h>

namespace mg::uarch
{
namespace
{

TEST(StoreSets, UntrainedLoadsAreFree)
{
    StoreSets ss(64, 16, 0);
    ss.storeRenamed(10, 1);
    EXPECT_EQ(ss.loadRenamed(20), StoreSets::kNone);
}

TEST(StoreSets, ViolationTrainsDependence)
{
    StoreSets ss(64, 16, 0);
    ss.violation(/*load*/ 20, /*store*/ 10);
    ss.storeRenamed(10, 7);
    EXPECT_EQ(ss.loadRenamed(20), 7u);
}

TEST(StoreSets, LoadWaitsForLastFetchedStore)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10);
    ss.storeRenamed(10, 7);
    ss.storeRenamed(10, 9); // younger instance of the same store
    EXPECT_EQ(ss.loadRenamed(20), 9u);
}

TEST(StoreSets, StoreCompletedClearsLfst)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10);
    ss.storeRenamed(10, 7);
    ss.storeCompleted(10, 7);
    EXPECT_EQ(ss.loadRenamed(20), StoreSets::kNone);
}

TEST(StoreSets, CompletedOnlyClearsMatchingSeq)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10);
    ss.storeRenamed(10, 7);
    ss.storeRenamed(10, 9);
    ss.storeCompleted(10, 7); // stale completion of the older one
    EXPECT_EQ(ss.loadRenamed(20), 9u);
}

TEST(StoreSets, MergeAdoptsSmallerSetId)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10); // set 0
    ss.violation(21, 11); // set 1
    ss.violation(20, 11); // merge: the *pair* adopts set 0
    ss.storeRenamed(11, 42);
    // Load 20 now shares store 11's set...
    EXPECT_EQ(ss.loadRenamed(20), 42u);
    // ... but load 21 keeps its old set id (merging reassigns only
    // the violating pair, as in the declining-set-id algorithm).
    EXPECT_EQ(ss.loadRenamed(21), StoreSets::kNone);
}

TEST(StoreSets, StoresInSameSetOrdered)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10);
    ss.violation(20, 11); // stores 10 and 11 share the load's set
    EXPECT_EQ(ss.storeRenamed(10, 5), StoreSets::kNone);
    EXPECT_EQ(ss.storeRenamed(11, 6), 5u); // must follow store 5
}

TEST(StoreSets, CyclicClearForgetsTraining)
{
    StoreSets ss(64, 16, /*clear every*/ 4);
    ss.violation(20, 10);
    ss.storeRenamed(10, 1); // event 1
    EXPECT_EQ(ss.loadRenamed(20), 1u); // event 2
    ss.loadRenamed(20);     // event 3
    ss.loadRenamed(20);     // event 4 -> clear happens
    EXPECT_EQ(ss.loadRenamed(20), StoreSets::kNone);
}

TEST(StoreSets, StatsCount)
{
    StoreSets ss(64, 16, 0);
    ss.violation(20, 10);
    ss.storeRenamed(10, 3);
    ss.loadRenamed(20);
    EXPECT_EQ(ss.stats().violations, 1u);
    EXPECT_EQ(ss.stats().loadsDeferred, 1u);
}

} // namespace
} // namespace mg::uarch
