#include "uarch/memory.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::uarch
{
namespace
{

assembler::Program
progWithData()
{
    return assembler::assemble(".data\n"
                               "v: .word 0x80000001\n"
                               "b: .byte 0xff\n"
                               ".text\nhalt\n");
}

TEST(Memory, LoadsDataImageAtBase)
{
    assembler::Program p = progWithData();
    Memory m(p);
    EXPECT_EQ(m.read(p.dataBase, 4), 0x80000001u);
    EXPECT_EQ(m.read(p.dataBase + 4, 1), 0xffu);
}

TEST(Memory, ZeroInitializedElsewhere)
{
    Memory m(progWithData());
    EXPECT_EQ(m.read(0x100, 8), 0u);
}

TEST(Memory, SignedReads)
{
    assembler::Program p = progWithData();
    Memory m(p);
    EXPECT_EQ(m.readSigned(p.dataBase + 4, 1), -1);
    EXPECT_EQ(m.readSigned(p.dataBase, 4),
              static_cast<int32_t>(0x80000001u));
}

TEST(Memory, WriteReadRoundTrip)
{
    Memory m(progWithData());
    m.write(0x2000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x2000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x2000, 1), 0x88u);
    EXPECT_EQ(m.read(0x2004, 4), 0x11223344u);
}

TEST(Memory, PartialWritePreservesNeighbours)
{
    Memory m(progWithData());
    m.write(0x3000, 0xffffffffffffffffull, 8);
    m.write(0x3002, 0, 2);
    EXPECT_EQ(m.read(0x3000, 8), 0xffffffff0000ffffull);
}

TEST(Memory, InitialSpInsideMemory)
{
    Memory m(progWithData());
    EXPECT_LT(m.initialSp(), m.size());
    EXPECT_EQ(m.initialSp() % 16, 0u);
}

TEST(Memory, OutOfRangePanics)
{
    Memory m(progWithData());
    EXPECT_DEATH(m.read(m.size(), 1), "out of range");
    EXPECT_DEATH(m.write(m.size() - 3, 0, 8), "out of range");
}

} // namespace
} // namespace mg::uarch
