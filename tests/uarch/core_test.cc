#include "uarch/core.h"

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "minigraph/rewriter.h"
#include "minigraph/selection.h"
#include "profile/exec_counts.h"

namespace mg::uarch
{
namespace
{

const assembler::Program &
keep(assembler::Program p)
{
    static std::deque<assembler::Program> progs;
    progs.push_back(std::move(p));
    return progs.back();
}

SimResult
run(const std::string &src, const CoreConfig &cfg = fullConfig())
{
    const assembler::Program &p = keep(assembler::assemble(src));
    Core core(cfg, p);
    return core.run();
}

/** N copies of `body` inside a counted loop plus prologue. */
std::string
loopProgram(const std::string &body, int iterations)
{
    std::string src = "main:  li r29, " + std::to_string(iterations) +
                      "\n"
                      "loop:\n" +
                      body +
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n";
    return src;
}

TEST(CoreTiming, CompletesAndCountsInstructions)
{
    SimResult r = run("main: li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n");
    EXPECT_EQ(r.originalInsts, 4u);
    EXPECT_EQ(r.committedUnits, 4u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(CoreTiming, SerialChainRunsNearOneCyclePerOp)
{
    // 8 dependent adds per iteration: bound by the chain, ~8c/iter.
    std::string body;
    for (int i = 0; i < 8; ++i)
        body += "       add r1, r1, r2\n";
    SimResult r = run(loopProgram(body, 2000));
    double cpi_iter = static_cast<double>(r.cycles) / 2000;
    EXPECT_GT(cpi_iter, 7.0);
    EXPECT_LT(cpi_iter, 11.0);
}

TEST(CoreTiming, IndependentOpsReachIssueWidth)
{
    // 12 independent adds per iteration on a 4-wide machine.
    std::string body;
    for (int i = 1; i <= 12; ++i) {
        body += "       add r" + std::to_string(i) + ", r20, r21\n";
    }
    SimResult r = run(loopProgram(body, 2000));
    double ipc = r.ipc();
    EXPECT_GT(ipc, 2.8);
}

TEST(CoreTiming, WidthScalingOnParallelCode)
{
    std::string body;
    for (int i = 1; i <= 12; ++i)
        body += "       add r" + std::to_string(i) + ", r20, r21\n";
    std::string src = loopProgram(body, 2000);
    SimResult wide = run(src, fullConfig());
    SimResult narrow = run(src, reducedConfig());
    EXPECT_LT(wide.cycles, narrow.cycles);
}

TEST(CoreTiming, LoadUseLatencyVisible)
{
    // Chain through memory: load feeding the next load's address.
    std::string setup = ".data\ncell: .dword 0\n.text\n";
    // Store the cell's own address so the chase loops on itself.
    std::string src = setup +
                      "main:  la r1, cell\n"
                      "       sd r1, 0(r1)\n"
                      "       li r29, 1000\n"
                      "loop:  ld r1, 0(r1)\n"
                      "       addi r29, r29, -1\n"
                      "       bnez r29, loop\n"
                      "       halt\n";
    SimResult r = run(src);
    // Each iteration is bound by the D$ hit latency (3 cycles).
    double cpi_iter = static_cast<double>(r.cycles) / 1000;
    EXPECT_GT(cpi_iter, 2.8);
    EXPECT_LT(cpi_iter, 4.5);
}

TEST(CoreTiming, MispredictsCostCycles)
{
    // Data-dependent 50/50 branch via a xorshift toggle.
    std::string predictable = loopProgram(
        "       add r1, r1, r2\n", 3000);
    std::string branchy =
        "main:  li r29, 3000\n"
        "       li r5, 12345\n"
        "loop:  srli r6, r5, 3\n"
        "       xor r5, r5, r6\n"
        "       slli r6, r5, 5\n"
        "       xor r5, r5, r6\n"
        "       andi r7, r5, 1\n"
        "       beqz r7, skip\n"
        "       addi r1, r1, 1\n"
        "skip:  addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    SimResult p = run(predictable);
    SimResult b = run(branchy);
    EXPECT_GT(b.branchPred.condMispredictRate(), 0.1);
    // Cycles per *instruction* must be far worse for the branchy loop.
    double cpi_p = static_cast<double>(p.cycles) / p.originalInsts;
    double cpi_b = static_cast<double>(b.cycles) / b.originalInsts;
    EXPECT_GT(cpi_b, cpi_p * 1.5);
}

TEST(CoreTiming, MemoryOrderViolationsDetectedAndRecovered)
{
    // A store whose address depends on a long chain, followed by a
    // load to the same address: the load issues early, reads stale
    // timing, and must be squashed when the store executes.
    std::string src =
        ".data\nbuf: .space 64\n.text\n"
        "main:  li r29, 500\n"
        "       la r10, buf\n"
        "loop:  mul r2, r29, r29\n" // slow address chain
        "       andi r2, r2, 7\n"
        "       slli r2, r2, 3\n"
        "       add r2, r2, r10\n"
        "       sd r29, 0(r2)\n"    // store, late address
        "       ld r3, 0(r10)\n"    // load may conflict (slot 0)
        "       add r4, r4, r3\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    SimResult r = run(src);
    EXPECT_GT(r.memOrderViolations, 0u);
    EXPECT_EQ(r.originalInsts, 2u + 500u * 9u + 1u);
}

TEST(CoreTiming, CacheMissesProduceReplays)
{
    // Pointer chase over a large footprint misses in the D$; the
    // dependent add issues in the miss shadow and replays.
    std::string src =
        ".data\nnodes: .space 524288\n.text\n"
        "main:  la r1, nodes\n"
        "       li r29, 2000\n"
        "loop:  ld r2, 0(r1)\n"
        "       add r3, r3, r2\n"   // wakes speculatively, replays
        "       addi r1, r1, 4096\n"
        "       andi r5, r1, 262143\n"
        "       la r1, nodes\n"
        "       add r1, r1, r5\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    SimResult r = run(src);
    EXPECT_GT(r.dcache.misses, 100u);
    EXPECT_GT(r.issueReplays, 50u);
}

TEST(CoreTiming, TakenBranchLimitsFetch)
{
    // Two-instruction loop: fetch breaks every cycle on the taken
    // branch, so IPC can't reach the issue width.
    SimResult r = run(loopProgram("", 5000));
    EXPECT_LT(r.ipc(), 2.5);
}

TEST(CoreTiming, IcachePressureVisibleWithTinyCache)
{
    // A long straight-line body cycled repeatedly with a tiny I$.
    std::string body;
    for (int i = 0; i < 400; ++i)
        body += "       add r1, r1, r2\n";
    CoreConfig cfg = fullConfig();
    cfg.icache.sizeBytes = 512; // 16 lines
    SimResult small = run(loopProgram(body, 50), cfg);
    SimResult big = run(loopProgram(body, 50), fullConfig());
    EXPECT_GT(small.icache.missRate(), 0.01);
    EXPECT_GT(small.cycles, big.cycles);
}

TEST(CoreTiming, ComplexUnitThroughputLimit)
{
    // Independent multiplies: only one complex issue per cycle.
    std::string body;
    for (int i = 1; i <= 8; ++i)
        body += "       mul r" + std::to_string(i) + ", r20, r21\n";
    SimResult r = run(loopProgram(body, 1500));
    // 8 muls / iteration at 1/cycle → at least ~8 cycles/iteration.
    EXPECT_GT(static_cast<double>(r.cycles) / 1500, 7.0);
}

TEST(CoreTiming, RobLimitsInflightWork)
{
    CoreConfig tiny = fullConfig();
    tiny.robEntries = 8;
    std::string body;
    for (int i = 1; i <= 12; ++i)
        body += "       add r" + std::to_string(i) + ", r20, r21\n";
    SimResult small = run(loopProgram(body, 1000), tiny);
    SimResult big = run(loopProgram(body, 1000), fullConfig());
    EXPECT_GT(small.cycles, big.cycles);
    EXPECT_GT(small.robStallCycles, 0u);
}

TEST(CoreTiming, StoreLoadForwardingFast)
{
    // Store then immediately load the same address repeatedly: the
    // load forwards from the SQ and the loop stays fast.
    std::string src =
        ".data\ncell: .dword 5\n.text\n"
        "main:  li r29, 2000\n"
        "       la r1, cell\n"
        "loop:  sd r2, 0(r1)\n"
        "       ld r2, 0(r1)\n"
        "       addi r2, r2, 1\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    SimResult r = run(src);
    double cpi_iter = static_cast<double>(r.cycles) / 2000;
    EXPECT_LT(cpi_iter, 14.0);
}

} // namespace
} // namespace mg::uarch
