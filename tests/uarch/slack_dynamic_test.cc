#include "uarch/slack_dynamic.h"

#include <gtest/gtest.h>

namespace mg::uarch
{
namespace
{

CoreConfig
cfgWith(uint32_t threshold, uint32_t max, uint64_t decay)
{
    CoreConfig cfg;
    cfg.slackDynamicThreshold = threshold;
    cfg.slackDynamicMax = max;
    cfg.slackDynamicDecayCycles = decay;
    return cfg;
}

TEST(SlackDynamic, StartsEnabled)
{
    SlackDynamicState st(cfgWith(4, 7, 1000));
    EXPECT_FALSE(st.isDisabled(10));
    EXPECT_EQ(st.disabledCount(), 0u);
}

TEST(SlackDynamic, HysteresisBeforeDisable)
{
    SlackDynamicState st(cfgWith(8, 12, 1000000));
    // "avoid rashly disabling a mini-graph that serializes once":
    // each harmful event counts +2, so the 8-threshold needs four.
    st.harmful(10);
    EXPECT_FALSE(st.isDisabled(10));
    st.harmful(10);
    st.harmful(10);
    EXPECT_FALSE(st.isDisabled(10));
    st.harmful(10); // 4th event reaches the threshold
    EXPECT_TRUE(st.isDisabled(10));
    EXPECT_EQ(st.stats().disables, 1u);
}

TEST(SlackDynamic, BenignExecutionsCoolTheCounter)
{
    SlackDynamicState st(cfgWith(8, 12, 1000000));
    // A mini-graph that serializes only occasionally (one harmful
    // per two benign issues) never gets disabled.
    for (int i = 0; i < 50; ++i) {
        st.harmful(10);
        st.benign(10);
        st.benign(10);
    }
    EXPECT_FALSE(st.isDisabled(10));
    // A persistently harmful one still does.
    for (int i = 0; i < 6; ++i)
        st.harmful(20);
    EXPECT_TRUE(st.isDisabled(20));
}

TEST(SlackDynamic, CounterSaturates)
{
    SlackDynamicState st(cfgWith(2, 3, 1000000));
    for (int i = 0; i < 100; ++i)
        st.harmful(10);
    EXPECT_EQ(st.stats().harmfulEvents, 100u);
    EXPECT_TRUE(st.isDisabled(10));
    EXPECT_EQ(st.stats().disables, 1u); // disabled once, stays
}

TEST(SlackDynamic, IndependentPerPc)
{
    SlackDynamicState st(cfgWith(2, 7, 1000000));
    st.harmful(10);
    st.harmful(10);
    EXPECT_TRUE(st.isDisabled(10));
    EXPECT_FALSE(st.isDisabled(20));
}

TEST(SlackDynamic, DecayResurrects)
{
    SlackDynamicState st(cfgWith(4, 7, 100));
    for (int i = 0; i < 5; ++i)
        st.harmful(10);
    EXPECT_TRUE(st.isDisabled(10));
    // First decay: 5 -> 2 (< threshold): resurrection.
    st.maybeDecay(100);
    st.maybeDecay(250);
    EXPECT_FALSE(st.isDisabled(10));
    EXPECT_GE(st.stats().resurrections, 1u);
}

TEST(SlackDynamic, DecayOnlyAtInterval)
{
    SlackDynamicState st(cfgWith(4, 7, 1000));
    for (int i = 0; i < 4; ++i)
        st.harmful(10);
    st.maybeDecay(1); // arms the timer only
    st.maybeDecay(500);
    EXPECT_TRUE(st.isDisabled(10));
}

TEST(SlackDynamic, SerializedIssueCounter)
{
    SlackDynamicState st(cfgWith(4, 7, 1000));
    st.noteSerializedIssue();
    st.noteSerializedIssue();
    EXPECT_EQ(st.stats().serializedIssues, 2u);
}

} // namespace
} // namespace mg::uarch
