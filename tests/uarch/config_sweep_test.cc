/**
 * @file
 * Parameterised sanity sweeps across machine configurations: the
 * timing model must behave monotonically where theory demands it
 * (wider/larger machines never slower on parallel code, identical
 * results are deterministic, all presets run every program shape).
 */

#include <cctype>
#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "uarch/config.h"
#include "uarch/core.h"

namespace mg::uarch
{
namespace
{

const assembler::Program &
parallelProgram()
{
    static assembler::Program p = assembler::assemble([] {
        std::string body;
        for (int i = 1; i <= 12; ++i)
            body += "       add r" + std::to_string(i) + ", r20, r21\n";
        return "main:  li r29, 1500\nloop:\n" + body +
               "       addi r29, r29, -1\n"
               "       bnez r29, loop\n"
               "       halt\n";
    }());
    return p;
}

const assembler::Program &
mixedProgram()
{
    static assembler::Program p = assembler::assemble(
        ".data\nbuf: .space 8192\nresult: .dword 0\n.text\n"
        "main:  li r29, 1200\n"
        "       la r9, buf\n"
        "loop:  andi r4, r29, 1023\n"
        "       slli r4, r4, 3\n"
        "       add r4, r4, r9\n"
        "       ld r5, 0(r4)\n"
        "       add r6, r6, r5\n"
        "       sd r6, 0(r4)\n"
        "       mul r7, r29, r29\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       la r8, result\n"
        "       sd r6, 0(r8)\n"
        "       halt\n");
    return p;
}

class ConfigSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    static CoreConfig
    configOf(const std::string &name)
    {
        auto cfg = configFromName(name);
        EXPECT_TRUE(cfg.has_value()) << name;
        return *cfg;
    }
};

TEST_P(ConfigSweep, RunsMixedProgramToCompletion)
{
    Core core(configOf(GetParam()), mixedProgram());
    SimResult r = core.run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.originalInsts, 2u + 1200u * 9u + 3u);
}

TEST_P(ConfigSweep, DeterministicAcrossRuns)
{
    Core a(configOf(GetParam()), mixedProgram());
    Core b(configOf(GetParam()), mixedProgram());
    EXPECT_EQ(a.run().cycles, b.run().cycles);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, ConfigSweep,
                         ::testing::ValuesIn(allConfigNames()),
                         [](const auto &pinfo) {
                             std::string n = pinfo.param;
                             for (char &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(ConfigMonotonicity, WidthOrderingOnParallelCode)
{
    uint64_t c2, c3, c4, c8;
    {
        Core c(twoWayConfig(), parallelProgram());
        c2 = c.run().cycles;
    }
    {
        Core c(reducedConfig(), parallelProgram());
        c3 = c.run().cycles;
    }
    {
        Core c(fullConfig(), parallelProgram());
        c4 = c.run().cycles;
    }
    {
        Core c(eightWayConfig(), parallelProgram());
        c8 = c.run().cycles;
    }
    EXPECT_GE(c2, c3);
    EXPECT_GE(c3, c4);
    EXPECT_GE(c4, c8);
}

TEST(ConfigMonotonicity, EnlargedNeverMuchWorseThanBaseline)
{
    Core base(fullConfig(), mixedProgram());
    Core big(enlargedConfig(), mixedProgram());
    uint64_t cb = base.run().cycles;
    uint64_t ce = big.run().cycles;
    EXPECT_LE(static_cast<double>(ce), 1.05 * static_cast<double>(cb));
}

TEST(ConfigMonotonicity, SmallerCachesNeverFaster)
{
    const assembler::Program &p = mixedProgram();
    Core base(reducedConfig(), p);
    Core small(dmemQuarterConfig(), p);
    uint64_t cb = base.run().cycles;
    uint64_t cs = small.run().cycles;
    EXPECT_LE(static_cast<double>(cb), 1.02 * static_cast<double>(cs));
}

} // namespace
} // namespace mg::uarch
