/**
 * @file
 * Property tests of the functional ALU semantics: for every ALU
 * opcode, random operands executed on the FunctionalCore must match
 * an independent C++ oracle.
 */

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "uarch/functional.h"

namespace mg::uarch
{
namespace
{

using isa::Opcode;

/** Independent oracle for the register-register ops. */
uint64_t
oracleRRR(Opcode op, uint64_t a, uint64_t b)
{
    int64_t sa = static_cast<int64_t>(a), sb = static_cast<int64_t>(b);
    switch (op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA: return static_cast<uint64_t>(sa >> (b & 63));
      case Opcode::SLT: return sa < sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        if (b == 0)
            return ~0ull;
        if (sa == INT64_MIN && sb == -1)
            return a;
        return static_cast<uint64_t>(sa / sb);
      case Opcode::REM:
        if (b == 0)
            return a;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<uint64_t>(sa % sb);
      default:
        ADD_FAILURE() << "no oracle";
        return 0;
    }
}

class AluProperty : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(AluProperty, MatchesOracleOnRandomOperands)
{
    Opcode op = GetParam();
    Rng rng(0xabc0 + static_cast<unsigned>(op));

    static std::deque<assembler::Program> hold;
    for (int trial = 0; trial < 40; ++trial) {
        uint64_t a = rng.next();
        uint64_t b = rng.next();
        switch (trial) { // force interesting corners
          case 0: a = 0; b = 0; break;
          case 1: a = ~0ull; b = 1; break;
          case 2: a = 1ull << 63; b = ~0ull; break; // INT64_MIN / -1
          case 3: b = 0; break;
          default: break;
        }
        if (trial % 3 == 0)
            b &= 63; // exercise in-range shift amounts too

        assembler::Program p = assembler::assemble(
            "main: ld r2, 0x100\n"
            "      ld r3, 0x108\n"
            "      " + std::string(isa::mnemonic(op)) +
            " r1, r2, r3\n"
            "      halt\n");
        hold.push_back(std::move(p));
        FunctionalCore core(hold.back());
        core.memory().write(0x100, a, 8);
        core.memory().write(0x108, b, 8);
        core.run();
        EXPECT_EQ(core.reg(1), oracleRRR(op, a, b))
            << isa::mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRRROps, AluProperty,
    ::testing::Values(Opcode::ADD, Opcode::SUB, Opcode::AND, Opcode::OR,
                      Opcode::XOR, Opcode::SLL, Opcode::SRL, Opcode::SRA,
                      Opcode::SLT, Opcode::SLTU, Opcode::MUL, Opcode::DIV,
                      Opcode::REM),
    [](const ::testing::TestParamInfo<Opcode> &pinfo) {
        return std::string(isa::mnemonic(pinfo.param));
    });

/** Branch predicates against an oracle. */
class BranchProperty : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(BranchProperty, MatchesOracleOnRandomOperands)
{
    Opcode op = GetParam();
    Rng rng(0xbee0 + static_cast<unsigned>(op));
    static std::deque<assembler::Program> hold;

    for (int trial = 0; trial < 30; ++trial) {
        uint64_t a = rng.chance(0.3) ? rng.below(4) : rng.next();
        uint64_t b = rng.chance(0.3) ? rng.below(4) : rng.next();
        int64_t sa = static_cast<int64_t>(a), sb = static_cast<int64_t>(b);
        bool expect_taken = false;
        switch (op) {
          case Opcode::BEQ: expect_taken = a == b; break;
          case Opcode::BNE: expect_taken = a != b; break;
          case Opcode::BLT: expect_taken = sa < sb; break;
          case Opcode::BGE: expect_taken = sa >= sb; break;
          case Opcode::BLTU: expect_taken = a < b; break;
          case Opcode::BGEU: expect_taken = a >= b; break;
          default: break;
        }
        assembler::Program p = assembler::assemble(
            "main: ld r2, 0x100\n"
            "      ld r3, 0x108\n"
            "      " + std::string(isa::mnemonic(op)) +
            " r2, r3, yes\n"
            "      li r1, 0\n"
            "      halt\n"
            "yes:  li r1, 1\n"
            "      halt\n");
        hold.push_back(std::move(p));
        FunctionalCore core(hold.back());
        core.memory().write(0x100, a, 8);
        core.memory().write(0x108, b, 8);
        core.run();
        EXPECT_EQ(core.reg(1), expect_taken ? 1u : 0u)
            << isa::mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, BranchProperty,
    ::testing::Values(Opcode::BEQ, Opcode::BNE, Opcode::BLT, Opcode::BGE,
                      Opcode::BLTU, Opcode::BGEU),
    [](const ::testing::TestParamInfo<Opcode> &pinfo) {
        return std::string(isa::mnemonic(pinfo.param));
    });

} // namespace
} // namespace mg::uarch
