#include "uarch/cache.h"

#include <gtest/gtest.h>

namespace mg::uarch
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 32B lines = 256 B.
    return CacheConfig{256, 2, 32, 3};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11f)); // same line
    EXPECT_FALSE(c.access(0x120)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, AssociativityHoldsTwoWays)
{
    Cache c(smallCache());
    // Two addresses mapping to the same set (set stride = 4*32 = 128).
    c.access(0x000);
    c.access(0x080);
    EXPECT_TRUE(c.access(0x000));
    EXPECT_TRUE(c.access(0x080));
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    c.access(0x000);
    c.access(0x080);
    c.access(0x000);       // make 0x080 the LRU way
    c.access(0x100);       // same set: evicts 0x080
    EXPECT_TRUE(c.access(0x000));
    EXPECT_FALSE(c.access(0x080));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x40));
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallCache());
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Tlb, MissThenHitAndPenalty)
{
    Tlb t(TlbConfig{8, 2, 4096, 30});
    EXPECT_EQ(t.access(0x1000), 30u);
    EXPECT_EQ(t.access(0x1abc), 0u); // same page
    EXPECT_EQ(t.access(0x2000), 30u);
}

TEST(Hierarchy, L1HitLatency)
{
    CoreConfig cfg;
    CacheHierarchy h(cfg);
    h.dataAccess(0x5000, false); // warm (pays TLB + misses)
    uint32_t lat = h.dataAccess(0x5000, false);
    EXPECT_EQ(lat, cfg.dcache.hitLatency);
}

TEST(Hierarchy, MissLatenciesStack)
{
    CoreConfig cfg;
    CacheHierarchy h(cfg);
    // Cold access: TLB miss + L1 miss + L2 miss + memory.
    uint32_t lat = h.dataAccess(0x9000, false);
    EXPECT_EQ(lat, cfg.dtlb.missLatency + cfg.dcache.hitLatency +
                       cfg.l2.hitLatency + cfg.memLatency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CoreConfig cfg;
    cfg.dcache = CacheConfig{256, 1, 32, 3}; // tiny direct-mapped L1
    CacheHierarchy h(cfg);
    h.dataAccess(0x0, false);
    h.dataAccess(0x100, false); // evicts L1 line 0 (same set)
    uint32_t lat = h.dataAccess(0x0, false);
    EXPECT_EQ(lat, cfg.dcache.hitLatency + cfg.l2.hitLatency);
}

TEST(Hierarchy, InstAccessReturnsExtraLatencyOnly)
{
    CoreConfig cfg;
    CacheHierarchy h(cfg);
    h.instAccess(0x40);
    EXPECT_EQ(h.instAccess(0x40), 0u);
}

} // namespace
} // namespace mg::uarch
