#include "uarch/branch_pred.h"

#include <gtest/gtest.h>

namespace mg::uarch
{
namespace
{

BranchPredConfig
defaultCfg()
{
    return BranchPredConfig{};
}

TEST(BranchPred, LearnsAlwaysTaken)
{
    BranchPredictor bp(defaultCfg());
    // Warm up.
    for (int i = 0; i < 8; ++i)
        bp.predictConditional(100, true);
    int correct = 0;
    for (int i = 0; i < 100; ++i)
        correct += bp.predictConditional(100, true);
    EXPECT_EQ(correct, 100);
}

TEST(BranchPred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(defaultCfg());
    for (int i = 0; i < 8; ++i)
        bp.predictConditional(100, false);
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += bp.predictConditional(100, false);
    EXPECT_EQ(wrong, 0);
}

TEST(BranchPred, GshareLearnsAlternatingPattern)
{
    BranchPredictor bp(defaultCfg());
    // Strictly alternating T/N is history-predictable.
    for (int i = 0; i < 200; ++i)
        bp.predictConditional(64, i % 2 == 0);
    uint64_t before = bp.stats().condMispredicts;
    for (int i = 0; i < 100; ++i)
        bp.predictConditional(64, i % 2 == 0);
    uint64_t after = bp.stats().condMispredicts;
    EXPECT_LE(after - before, 5u);
}

TEST(BranchPred, LoopExitPatternMostlyCorrect)
{
    BranchPredictor bp(defaultCfg());
    // 9 taken, 1 not-taken, repeated: bimodal should get ~90%.
    for (int rep = 0; rep < 50; ++rep) {
        for (int i = 0; i < 9; ++i)
            bp.predictConditional(32, true);
        bp.predictConditional(32, false);
    }
    EXPECT_LT(bp.stats().condMispredictRate(), 0.25);
}

TEST(BranchPred, BtbStoresTargets)
{
    BranchPredictor bp(defaultCfg());
    EXPECT_FALSE(bp.btbLookup(40, 100)); // cold miss, allocates
    EXPECT_TRUE(bp.btbLookup(40, 100));  // hit with right target
    EXPECT_FALSE(bp.btbLookup(40, 200)); // target changed
    EXPECT_TRUE(bp.btbLookup(40, 200));  // retrained
}

TEST(BranchPred, BtbSetsAreAssociative)
{
    BranchPredConfig cfg;
    cfg.btbEntries = 8;
    cfg.btbAssoc = 4;
    BranchPredictor bp(cfg);
    // Four PCs in the same set (stride = btbSets = 2).
    for (isa::Addr pc : {2u, 4u, 6u, 8u})
        bp.btbLookup(pc, pc + 100);
    for (isa::Addr pc : {2u, 4u, 6u, 8u})
        EXPECT_TRUE(bp.btbLookup(pc, pc + 100));
}

TEST(BranchPred, RasPushPopMatches)
{
    BranchPredictor bp(defaultCfg());
    bp.rasPush(11);
    bp.rasPush(22);
    EXPECT_TRUE(bp.rasPop(22));
    EXPECT_TRUE(bp.rasPop(11));
}

TEST(BranchPred, RasUnderflowMispredicts)
{
    BranchPredictor bp(defaultCfg());
    EXPECT_FALSE(bp.rasPop(5));
    EXPECT_EQ(bp.stats().rasMispredicts, 1u);
}

TEST(BranchPred, RasWrongTargetMispredicts)
{
    BranchPredictor bp(defaultCfg());
    bp.rasPush(10);
    EXPECT_FALSE(bp.rasPop(99));
}

TEST(BranchPred, RasOverflowWrapsGracefully)
{
    BranchPredConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    for (isa::Addr i = 0; i < 6; ++i)
        bp.rasPush(i);
    // Deepest entries were overwritten, newest survive.
    EXPECT_TRUE(bp.rasPop(5));
    EXPECT_TRUE(bp.rasPop(4));
}

} // namespace
} // namespace mg::uarch
