#include "assembler/assembler.h"

#include <gtest/gtest.h>

namespace mg::assembler
{
namespace
{

using isa::Opcode;

Program
asmOk(const std::string &src)
{
    AssembleOptions opts;
    opts.name = "test";
    return assemble(src, opts);
}

TEST(Assembler, RegisterNames)
{
    EXPECT_EQ(parseRegister("r0"), 0);
    EXPECT_EQ(parseRegister("r31"), 31);
    EXPECT_EQ(parseRegister("zero"), 0);
    EXPECT_EQ(parseRegister("sp"), 30);
    EXPECT_EQ(parseRegister("ra"), 31);
    EXPECT_EQ(parseRegister("R7"), 7);
    EXPECT_EQ(parseRegister("r32"), -1);
    EXPECT_EQ(parseRegister("x1"), -1);
    EXPECT_EQ(parseRegister(""), -1);
}

TEST(Assembler, MinimalProgram)
{
    Program p = asmOk("main: halt\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.code[0].op, Opcode::HALT);
    EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, AluEncoding)
{
    Program p = asmOk("add r1, r2, r3\n"
                      "addi r4, r5, -6\n"
                      "li r7, 0x10\n");
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_EQ(p.code[0].rd, 1);
    EXPECT_EQ(p.code[0].rs1, 2);
    EXPECT_EQ(p.code[0].rs2, 3);
    EXPECT_EQ(p.code[1].imm, -6);
    EXPECT_EQ(p.code[2].imm, 16);
}

TEST(Assembler, BranchTargetsResolveToAbsolutePc)
{
    Program p = asmOk("main: nop\n"
                      "loop: addi r1, r1, 1\n"
                      "      bne r1, r2, loop\n"
                      "      j main\n");
    EXPECT_EQ(p.code[2].op, Opcode::BNE);
    EXPECT_EQ(p.code[2].imm, 1);
    EXPECT_EQ(p.code[3].imm, 0);
}

TEST(Assembler, ForwardReferences)
{
    Program p = asmOk("j end\nnop\nend: halt\n");
    EXPECT_EQ(p.code[0].imm, 2);
}

TEST(Assembler, DataDirectivesAndLabels)
{
    Program p = asmOk("        .data\n"
                      "a:      .word 1, 2\n"
                      "b:      .byte 3\n"
                      "        .align 4\n"
                      "c:      .dword 0x1122334455667788\n"
                      "        .text\n"
                      "main:   halt\n");
    EXPECT_EQ(p.dataLabels.at("a"), p.dataBase);
    EXPECT_EQ(p.dataLabels.at("b"), p.dataBase + 8);
    EXPECT_EQ(p.dataLabels.at("c"), p.dataBase + 12);
    // Little-endian layout.
    EXPECT_EQ(p.dataInit[0], 1);
    EXPECT_EQ(p.dataInit[4], 2);
    EXPECT_EQ(p.dataInit[8], 3);
    EXPECT_EQ(p.dataInit[12], 0x88);
    EXPECT_EQ(p.dataInit[19], 0x11);
}

TEST(Assembler, SpaceReservesZeroedBytes)
{
    Program p = asmOk(".data\nbuf: .space 16\nafter: .word 7\n"
                      ".text\nhalt\n");
    EXPECT_EQ(p.dataLabels.at("after"), p.dataBase + 16);
    EXPECT_EQ(p.dataInit[3], 0);
}

TEST(Assembler, AsciizEscapes)
{
    Program p = asmOk(".data\ns: .asciiz \"a\\n\\\"b\"\n.text\nhalt\n");
    EXPECT_EQ(p.dataInit[0], 'a');
    EXPECT_EQ(p.dataInit[1], '\n');
    EXPECT_EQ(p.dataInit[2], '"');
    EXPECT_EQ(p.dataInit[3], 'b');
    EXPECT_EQ(p.dataInit[4], 0);
}

TEST(Assembler, LoadStoreAddressingForms)
{
    Program p = asmOk(".data\nv: .word 5\n.text\n"
                      "lw r1, v\n"
                      "lw r2, v(r3)\n"
                      "lw r4, 8(r5)\n"
                      "sw r6, v+4\n"
                      "halt\n");
    EXPECT_EQ(p.code[0].rs1, 0);
    EXPECT_EQ(static_cast<uint64_t>(p.code[0].imm), p.dataBase);
    EXPECT_EQ(p.code[1].rs1, 3);
    EXPECT_EQ(p.code[2].imm, 8);
    EXPECT_EQ(static_cast<uint64_t>(p.code[3].imm), p.dataBase + 4);
}

TEST(Assembler, PseudoOps)
{
    Program p = asmOk("main: mov r1, r2\n"
                      "      la r3, main\n"
                      "      b main\n"
                      "      ble r1, r2, main\n"
                      "      bgt r1, r2, main\n"
                      "      call main\n"
                      "      ret\n"
                      "      neg r4, r5\n"
                      "      not r6, r7\n"
                      "      beqz r8, main\n"
                      "      bnez r9, main\n");
    EXPECT_EQ(p.code[0].op, Opcode::ADDI);
    EXPECT_EQ(p.code[0].imm, 0);
    EXPECT_EQ(p.code[1].op, Opcode::LI);
    EXPECT_EQ(p.code[2].op, Opcode::J);
    // ble a,b -> bge b,a
    EXPECT_EQ(p.code[3].op, Opcode::BGE);
    EXPECT_EQ(p.code[3].rs1, 2);
    EXPECT_EQ(p.code[3].rs2, 1);
    EXPECT_EQ(p.code[4].op, Opcode::BLT);
    EXPECT_EQ(p.code[5].op, Opcode::JAL);
    EXPECT_EQ(p.code[5].rd, isa::kLinkReg);
    EXPECT_EQ(p.code[6].op, Opcode::JR);
    EXPECT_EQ(p.code[6].rs1, isa::kLinkReg);
    EXPECT_EQ(p.code[7].op, Opcode::SUB);
    EXPECT_EQ(p.code[7].rs1, 0);
    EXPECT_EQ(p.code[8].op, Opcode::XORI);
    EXPECT_EQ(p.code[8].imm, -1);
    EXPECT_EQ(p.code[9].op, Opcode::BEQ);
    EXPECT_EQ(p.code[9].rs2, 0);
    EXPECT_EQ(p.code[10].op, Opcode::BNE);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = asmOk("; full line comment\n"
                      "\n"
                      "main: nop ; trailing\n"
                      "      halt # hash comment\n");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, MultipleLabelsSameAddress)
{
    Program p = asmOk("a: b: nop\nhalt\n");
    EXPECT_EQ(p.codeLabels.at("a"), 0u);
    EXPECT_EQ(p.codeLabels.at("b"), 0u);
}

TEST(Assembler, EntryDefaultsToZeroWithoutMain)
{
    Program p = asmOk("start: halt\n");
    EXPECT_EQ(p.entry, 0u);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    EXPECT_THROW(asmOk("frobnicate r1, r2\n"), std::runtime_error);
}

TEST(Assembler, ErrorUndefinedSymbol)
{
    EXPECT_THROW(asmOk("j nowhere\n"), std::runtime_error);
}

TEST(Assembler, ErrorDuplicateLabel)
{
    EXPECT_THROW(asmOk("a: nop\na: halt\n"), std::runtime_error);
}

TEST(Assembler, ErrorBadRegister)
{
    EXPECT_THROW(asmOk("add r1, r2, r99\n"), std::runtime_error);
}

TEST(Assembler, ErrorWrongOperandCount)
{
    EXPECT_THROW(asmOk("add r1, r2\n"), std::runtime_error);
}

TEST(Assembler, ErrorDirectiveInText)
{
    EXPECT_THROW(asmOk(".text\n.word 5\n"), std::runtime_error);
}

TEST(Assembler, ListingContainsLabelsAndInstructions)
{
    Program p = asmOk("main: addi r1, r1, 1\nhalt\n");
    std::string listing = p.listing();
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("addi r1, r1, 1"), std::string::npos);
}

} // namespace
} // namespace mg::assembler
