#include "assembler/liveness.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::assembler
{
namespace
{

struct Built
{
    Program p;
    Cfg cfg;
    Liveness live;

    explicit Built(const std::string &src)
        : p(assemble(src)), cfg(p), live(cfg)
    {}
};

TEST(Liveness, DeadAfterLastUse)
{
    Built b("main: li r1, 5\n"       // 0
            "      add r2, r1, r1\n" // 1: last use of r1
            "      add r3, r2, r2\n" // 2
            "      sd r3, 0(r0)\n"   // 3
            "      halt\n");
    EXPECT_TRUE(regIn(b.live.liveAfter(0), 1));
    EXPECT_FALSE(regIn(b.live.liveAfter(1), 1));
    EXPECT_TRUE(regIn(b.live.liveAfter(1), 2));
    EXPECT_FALSE(regIn(b.live.liveAfter(2), 2));
}

TEST(Liveness, LoopCarriedValueStaysLive)
{
    Built b("main: li r1, 10\n"
            "loop: addi r1, r1, -1\n"
            "      bne r1, r0, loop\n"
            "      halt\n");
    // r1 is live around the loop back edge.
    uint32_t loop_block = b.cfg.blockIdOf(1);
    EXPECT_TRUE(regIn(b.live.liveOut(loop_block), 1));
    EXPECT_TRUE(regIn(b.live.liveIn(loop_block), 1));
}

TEST(Liveness, RedefinitionKillsLiveness)
{
    Built b("main: li r1, 1\n"   // 0: dead (overwritten at 1)
            "      li r1, 2\n"   // 1
            "      sd r1, 0(r0)\n"
            "      halt\n");
    EXPECT_FALSE(regIn(b.live.liveAfter(0), 1));
    EXPECT_TRUE(regIn(b.live.liveAfter(1), 1));
}

TEST(Liveness, IndirectJumpMakesEverythingLive)
{
    Built b("main: li r1, 5\n"
            "      jr r2\n");
    uint32_t blk = b.cfg.blockIdOf(0);
    // Unknown continuation: conservatively all live.
    EXPECT_EQ(b.live.liveOut(blk), 0xffffffffu);
}

TEST(Liveness, BranchOperandsLiveBeforeBranch)
{
    Built b("main: li r1, 1\n"
            "      li r2, 2\n"
            "      beq r1, r2, done\n"
            "done: halt\n");
    RegSet before = b.live.liveBefore(2);
    EXPECT_TRUE(regIn(before, 1));
    EXPECT_TRUE(regIn(before, 2));
}

TEST(Liveness, ValueLiveAcrossCall)
{
    Built b("main: li r5, 7\n"
            "      call fn\n"
            "      sd r5, 0(r0)\n"
            "      halt\n"
            "fn:   ret\n");
    // r5 must be live out of the call block (used after return).
    uint32_t call_block = b.cfg.blockIdOf(1);
    EXPECT_TRUE(regIn(b.live.liveOut(call_block), 5));
}

TEST(Liveness, ZeroRegisterNeverTracked)
{
    Built b("main: add r0, r1, r2\n"
            "      halt\n");
    EXPECT_FALSE(regIn(b.live.liveAfter(0), 0));
}

TEST(Liveness, LiveBeforeIncludesOwnSources)
{
    Built b("main: add r3, r4, r5\n"
            "      halt\n");
    RegSet before = b.live.liveBefore(0);
    EXPECT_TRUE(regIn(before, 4));
    EXPECT_TRUE(regIn(before, 5));
    EXPECT_FALSE(regIn(before, 3));
}

} // namespace
} // namespace mg::assembler
