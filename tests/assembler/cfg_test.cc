#include "assembler/cfg.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::assembler
{
namespace
{

Program
asmOk(const std::string &src)
{
    return assemble(src);
}

TEST(Cfg, StraightLineIsOneBlock)
{
    Program p = asmOk("nop\nnop\nhalt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].first, 0u);
    EXPECT_EQ(cfg.blocks()[0].last, 2u);
    EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

TEST(Cfg, BranchSplitsBlocks)
{
    Program p = asmOk("main: addi r1, r1, 1\n"
                      "      bne r1, r2, main\n"
                      "      halt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 2u);
    const BasicBlock &bb0 = cfg.blocks()[0];
    EXPECT_EQ(bb0.last, 1u);
    // Branch: taken edge back to block 0, fall-through to block 1.
    ASSERT_EQ(bb0.succs.size(), 2u);
    EXPECT_EQ(bb0.succs[0], 0u);
    EXPECT_EQ(bb0.succs[1], 1u);
    EXPECT_EQ(cfg.blocks()[1].preds.size(), 1u);
}

TEST(Cfg, JumpTargetCreatesLeader)
{
    Program p = asmOk("j skip\n"
                      "nop\n"
                      "skip: halt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[2].first, 2u);
    // Block 0 jumps straight to block 2.
    ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].succs[0], 2u);
    // The unreachable nop block falls through into skip.
    ASSERT_EQ(cfg.blocks()[1].succs.size(), 1u);
}

TEST(Cfg, CallHasBothEdges)
{
    Program p = asmOk("main: call fn\n"
                      "      halt\n"
                      "fn:   ret\n");
    Cfg cfg(p);
    const BasicBlock &bb0 = cfg.blockOf(0);
    // jal: edge to target and to the return point.
    EXPECT_EQ(bb0.succs.size(), 2u);
    const BasicBlock &fn = cfg.blockOf(2);
    EXPECT_TRUE(fn.endsIndirect);
    EXPECT_TRUE(fn.succs.empty());
}

TEST(Cfg, BlockOfMapsEveryPc)
{
    Program p = asmOk("a: nop\nbne r1, r2, a\nnop\nhalt\n");
    Cfg cfg(p);
    EXPECT_EQ(cfg.blockIdOf(0), cfg.blockIdOf(1));
    EXPECT_NE(cfg.blockIdOf(1), cfg.blockIdOf(2));
}

TEST(Cfg, HaltEndsBlockWithNoSuccessors)
{
    Program p = asmOk("nop\nhalt\nnop\nhalt\n");
    Cfg cfg(p);
    const BasicBlock &bb0 = cfg.blockOf(0);
    EXPECT_TRUE(bb0.succs.empty());
}

TEST(Cfg, SizeAccessor)
{
    Program p = asmOk("nop\nnop\nnop\nhalt\n");
    Cfg cfg(p);
    EXPECT_EQ(cfg.blocks()[0].size(), 4u);
}

} // namespace
} // namespace mg::assembler
