/**
 * @file
 * Assembler error-path coverage: every malformed-program class must
 * produce a *stable*, line-tagged diagnostic ("name:line: message"),
 * not just some exception.  The exact texts are contractual — the CI
 * smoke scripts and shrinker repro headers quote them — so these
 * tests pin the full strings, and a companion test asserts the
 * `mgsim` CLI turns them into a nonzero exit (tools/frontend_smoke.sh
 * covers the subprocess side).
 */

#include "assembler/assembler.h"

#include <gtest/gtest.h>

namespace mg::assembler
{
namespace
{

/** Diagnostic text of a failing assembly, or "" if it assembled. */
std::string
diagOf(const std::string &src)
{
    AssembleOptions opts;
    opts.name = "t";
    try {
        assemble(src, opts);
    } catch (const std::exception &e) {
        return e.what();
    }
    return "";
}

TEST(AssemblerErrors, UnknownMnemonicNamesLine)
{
    EXPECT_EQ(diagOf("nop\nfrobnicate r1, r2\n"),
              "t:2: unknown mnemonic 'frobnicate'");
}

TEST(AssemblerErrors, UndefinedSymbolNamesLine)
{
    EXPECT_EQ(diagOf("main: j nowhere\nhalt\n"),
              "t:1: undefined symbol 'nowhere'");
}

TEST(AssemblerErrors, DuplicateLabelReportsSecondSite)
{
    EXPECT_EQ(diagOf("a: nop\nnop\na: halt\n"),
              "t:3: duplicate label 'a'");
}

TEST(AssemblerErrors, DuplicateAcrossSections)
{
    EXPECT_EQ(diagOf("x: nop\nhalt\n    .data\nx: .dword 1\n"),
              "t:4: duplicate label 'x'");
}

TEST(AssemblerErrors, BadRegister)
{
    EXPECT_EQ(diagOf("add r1, r2, r99\n"), "t:1: bad register 'r99'");
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_EQ(diagOf("add r1, r2\n"),
              "t:1: 'add' expects 3 operand(s), got 2");
}

TEST(AssemblerErrors, ShiftImmediateTooLarge)
{
    EXPECT_EQ(diagOf("nop\nslli r1, r1, 64\nhalt\n"),
              "t:2: shift immediate 64 out of range 0..63");
}

TEST(AssemblerErrors, ShiftImmediateNegative)
{
    EXPECT_EQ(diagOf("srai r1, r1, -1\nhalt\n"),
              "t:1: shift immediate -1 out of range 0..63");
}

TEST(AssemblerErrors, ShiftImmediateBoundaryOk)
{
    EXPECT_EQ(diagOf("slli r1, r1, 63\nsrli r1, r1, 0\nhalt\n"), "");
}

TEST(AssemblerErrors, BranchTargetPastEndOfCode)
{
    EXPECT_EQ(diagOf("beq r1, r2, 7\nhalt\n"),
              "t:1: branch target 7 outside code (0..1)");
}

TEST(AssemblerErrors, BranchTargetNegative)
{
    EXPECT_EQ(diagOf("j -3\nhalt\n"),
              "t:1: branch target -3 outside code (0..1)");
}

TEST(AssemblerErrors, JumpAndLinkTargetChecked)
{
    EXPECT_EQ(diagOf("jal ra, 9\nhalt\n"),
              "t:1: branch target 9 outside code (0..1)");
}

TEST(AssemblerErrors, BranchToLastInstructionOk)
{
    EXPECT_EQ(diagOf("main: beq r1, r2, 1\nhalt\n"), "");
}

TEST(AssemblerErrors, ByteValueTooWide)
{
    EXPECT_EQ(diagOf("halt\n    .data\nb: .byte 256\n"),
              "t:3: value 256 does not fit in '.byte' (range -128..255)");
}

TEST(AssemblerErrors, HalfValueTooWide)
{
    EXPECT_EQ(
        diagOf("halt\n    .data\nh: .half 65536\n"),
        "t:3: value 65536 does not fit in '.half' (range -32768..65535)");
}

TEST(AssemblerErrors, WordValueTooWide)
{
    EXPECT_EQ(diagOf("halt\n    .data\nw: .word 4294967296\n"),
              "t:3: value 4294967296 does not fit in '.word' "
              "(range -2147483648..4294967295)");
}

TEST(AssemblerErrors, SignedNarrowValuesOk)
{
    EXPECT_EQ(diagOf("halt\n    .data\nv: .byte -128, 255\n"
                     "h: .half -32768, 65535\nw: .word -2147483648\n"),
              "");
}

TEST(AssemblerErrors, DwordTakesAnyValue)
{
    EXPECT_EQ(diagOf("halt\n    .data\nd: .dword -1, "
                     "9223372036854775807\n"),
              "");
}

TEST(AssemblerErrors, DirectiveInTextSection)
{
    EXPECT_EQ(diagOf(".text\n.word 5\n"),
              "t:2: directive '.word' not allowed in .text");
}

TEST(AssemblerErrors, MalformedMemoryOperand)
{
    EXPECT_EQ(diagOf("ld r1, 0(r2\nhalt\n"),
              "t:1: malformed memory operand '0(r2'");
}

TEST(AssemblerErrors, BadSpaceDirective)
{
    EXPECT_EQ(diagOf("halt\n    .data\ns: .space -4\n"),
              "t:3: .space requires one non-negative integer");
}

TEST(AssemblerErrors, UnknownDataDirective)
{
    EXPECT_EQ(diagOf("halt\n    .data\nq: .quad 1\n"),
              "t:3: unknown data directive '.quad'");
}

TEST(AssemblerErrors, MgHandleRejected)
{
    EXPECT_EQ(diagOf("mghandle 3\nhalt\n"),
              "t:1: mghandle cannot be written in assembly source");
}

// The diagnostics must be deterministic: the same malformed source
// yields byte-identical text every time (the fuzz shrinker dedups
// repros by message).
TEST(AssemblerErrors, DiagnosticsAreStable)
{
    const std::string src = "main: j gone\nhalt\n";
    EXPECT_EQ(diagOf(src), diagOf(src));
}

} // namespace
} // namespace mg::assembler
