#include "profile/slack_profile.h"

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "uarch/config.h"

namespace mg::profile
{
namespace
{

const assembler::Program &
keep(const std::string &src)
{
    static std::deque<assembler::Program> progs;
    progs.push_back(assembler::assemble(src));
    return progs.back();
}

SlackProfileData
profileSrc(const std::string &src)
{
    return profileProgram(keep(src), uarch::fullConfig());
}

TEST(SlackProfile, CoversExecutedInstructions)
{
    SlackProfileData d = profileSrc(
        "main: li r29, 200\n"
        "loop: add r1, r1, r29\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    for (isa::Addr pc = 0; pc <= 3; ++pc) {
        ASSERT_NE(d.at(pc), nullptr) << "pc " << pc;
        EXPECT_GT(d.at(pc)->count, 0u);
    }
    EXPECT_EQ(d.at(99), nullptr);
}

TEST(SlackProfile, ChainedValueHasLittleSlack)
{
    // r1 feeds the next iteration's add immediately: its local slack
    // should be small.  r5 is computed but consumed only by a store
    // much later -> effectively unconstrained.
    SlackProfileData d = profileSrc(
        "main: li r29, 300\n"
        "loop: add r1, r1, r1\n"
        "      andi r1, r1, 1023\n"
        "      addi r1, r1, 3\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *chain = d.at(1);
    ASSERT_NE(chain, nullptr);
    EXPECT_LT(chain->slack, 8.0);
}

TEST(SlackProfile, UnconsumedValueGetsCapSlack)
{
    SlackProfileData d = profileSrc(
        "main: li r29, 100\n"
        "loop: add r9, r29, r29\n" // r9 overwritten, never read
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *dead = d.at(1);
    ASSERT_NE(dead, nullptr);
    EXPECT_NEAR(dead->slack, kSlackCap, 1.0);
}

TEST(SlackProfile, IssueTimesRelativeToBlockHead)
{
    // Within one block the issue times should ascend along a
    // dependence chain.
    SlackProfileData d = profileSrc(
        "main: li r29, 200\n"
        "loop: add r1, r1, r29\n"  // 1 (block head)
        "      add r2, r1, r29\n"  // 2 depends on 1
        "      add r3, r2, r29\n"  // 3 depends on 2
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    ASSERT_NE(d.at(1), nullptr);
    ASSERT_NE(d.at(2), nullptr);
    ASSERT_NE(d.at(3), nullptr);
    EXPECT_LT(d.at(1)->issueRel, d.at(2)->issueRel);
    EXPECT_LT(d.at(2)->issueRel, d.at(3)->issueRel);
}

TEST(SlackProfile, SourceReadyTimesRecorded)
{
    SlackProfileData d = profileSrc(
        "main: li r29, 200\n"
        "loop: add r1, r1, r1\n"
        "      add r2, r1, r1\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *consumer = d.at(2);
    ASSERT_NE(consumer, nullptr);
    EXPECT_TRUE(consumer->srcObserved[0]);
    // r1 becomes ready after the block-head add: strictly positive.
    EXPECT_GT(consumer->srcReadyRel[0], 0.0);
}

TEST(SlackProfile, PredictableBranchHasCapSlack)
{
    SlackProfileData d = profileSrc(
        "main: li r29, 500\n"
        "loop: addi r29, r29, -1\n"
        "      bnez r29, loop\n"  // taken 499, not taken once
        "      halt\n");
    const ProfileEntry *br = d.at(2);
    ASSERT_NE(br, nullptr);
    EXPECT_GT(br->branchSlack, kSlackCap * 0.8);
}

TEST(SlackProfile, RandomBranchHasLowSlack)
{
    SlackProfileData d = profileSrc(
        "main: li r29, 2000\n"
        "      li r5, 987654321\n"
        "loop: srli r6, r5, 3\n"
        "      xor r5, r5, r6\n"
        "      slli r6, r5, 5\n"
        "      xor r5, r5, r6\n"
        "      andi r7, r5, 1\n"
        "      beqz r7, skip\n"   // ~50/50 branch
        "      addi r1, r1, 1\n"
        "skip: addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *br = d.at(7);
    ASSERT_NE(br, nullptr);
    EXPECT_LT(br->branchSlack, kSlackCap * 0.9);
}

TEST(SlackProfile, ForwardingStoreGetsFiniteSlack)
{
    SlackProfileData d = profileSrc(
        ".data\ncell: .dword 1\n.text\n"
        "main: li r29, 300\n"
        "      la r10, cell\n"
        "loop: sd r1, 0(r10)\n"
        "      ld r1, 0(r10)\n"   // forwards from the store
        "      addi r1, r1, 1\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *st = d.at(2);
    ASSERT_NE(st, nullptr);
    EXPECT_LT(st->storeSlack, kSlackCap * 0.5);
}

TEST(SlackProfile, NonForwardingStoreKeepsCapSlack)
{
    SlackProfileData d = profileSrc(
        ".data\nbuf: .space 4096\n.text\n"
        "main: li r29, 300\n"
        "      la r10, buf\n"
        "loop: sd r29, 0(r10)\n"  // never read back
        "      addi r10, r10, 8\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    const ProfileEntry *st = d.at(2);
    ASSERT_NE(st, nullptr);
    EXPECT_NEAR(st->storeSlack, kSlackCap, 1.0);
}

} // namespace
} // namespace mg::profile
