#include "profile/profile_io.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "uarch/config.h"

namespace mg::profile
{
namespace
{

SlackProfileData
sampleProfile()
{
    static assembler::Program prog = assembler::assemble(
        "main: li r29, 300\n"
        "loop: add r1, r1, r29\n"
        "      sd r1, 0(r28)\n"
        "      addi r29, r29, -1\n"
        "      bnez r29, loop\n"
        "      halt\n");
    return profileProgram(prog, uarch::fullConfig());
}

TEST(ProfileIo, RoundTripPreservesEverything)
{
    SlackProfileData a = sampleProfile();
    SlackProfileData b =
        loadProfileFromString(saveProfileToString(a));
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (const auto &[pc, ea] : a.entries) {
        const ProfileEntry *eb = b.at(pc);
        ASSERT_NE(eb, nullptr) << "pc " << pc;
        EXPECT_DOUBLE_EQ(ea.issueRel, eb->issueRel);
        EXPECT_DOUBLE_EQ(ea.readyRel, eb->readyRel);
        EXPECT_DOUBLE_EQ(ea.slack, eb->slack);
        EXPECT_DOUBLE_EQ(ea.storeSlack, eb->storeSlack);
        EXPECT_DOUBLE_EQ(ea.branchSlack, eb->branchSlack);
        EXPECT_EQ(ea.count, eb->count);
        for (int s = 0; s < 2; ++s) {
            EXPECT_EQ(ea.srcObserved[s], eb->srcObserved[s]);
            EXPECT_DOUBLE_EQ(ea.srcReadyRel[s], eb->srcReadyRel[s]);
        }
    }
}

TEST(ProfileIo, OutputIsDeterministic)
{
    SlackProfileData a = sampleProfile();
    EXPECT_EQ(saveProfileToString(a), saveProfileToString(a));
}

TEST(ProfileIo, HeaderValidated)
{
    EXPECT_THROW(loadProfileFromString("bogus\n1 2 3\n"),
                 std::runtime_error);
    EXPECT_THROW(loadProfileFromString(""), std::runtime_error);
}

TEST(ProfileIo, MalformedLineRejected)
{
    EXPECT_THROW(
        loadProfileFromString("mg-slack-profile v1\n5 nonsense\n"),
        std::runtime_error);
}

TEST(ProfileIo, EmptyProfileRoundTrips)
{
    SlackProfileData empty;
    SlackProfileData back =
        loadProfileFromString(saveProfileToString(empty));
    EXPECT_TRUE(back.entries.empty());
}

} // namespace
} // namespace mg::profile
