#include "profile/exec_counts.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::profile
{
namespace
{

TEST(ExecCounts, StraightLineCountsOnce)
{
    assembler::Program p = assembler::assemble("nop\nnop\nhalt\n");
    auto c = countExecutions(p);
    EXPECT_EQ(c, (std::vector<uint64_t>{1, 1, 1}));
}

TEST(ExecCounts, LoopBodyCountsIterations)
{
    assembler::Program p = assembler::assemble(
        "main: li r1, 10\n"
        "loop: addi r1, r1, -1\n"
        "      bnez r1, loop\n"
        "      halt\n");
    auto c = countExecutions(p);
    EXPECT_EQ(c[0], 1u);
    EXPECT_EQ(c[1], 10u);
    EXPECT_EQ(c[2], 10u);
    EXPECT_EQ(c[3], 1u);
}

TEST(ExecCounts, UntakenPathCountsZero)
{
    assembler::Program p = assembler::assemble(
        "main: j skip\n"
        "      addi r1, r1, 1\n"
        "skip: halt\n");
    auto c = countExecutions(p);
    EXPECT_EQ(c[1], 0u);
}

TEST(ExecCounts, StepLimitPanicsOnRunaway)
{
    assembler::Program p = assembler::assemble("loop: j loop\n");
    EXPECT_DEATH(countExecutions(p, 1000), "exceeded");
}

} // namespace
} // namespace mg::profile
