/**
 * @file
 * The frontend differential fuzz gate (src/fuzz/frontend_fuzz.h):
 * generated C programs pass the two-level check clean across seeds, a
 * planted miscompile is caught and shrinks to a small repro, the
 * degenerate failure kinds (compile/interp/nontermination) come out as
 * verdicts rather than exceptions, and repro rendering is stable.
 *
 * Own executable (LABELS frontend): shrinkCSource and the isolated
 * checks fork, which the TSan job's test filter must be able to skip.
 */

#include "fuzz/frontend_fuzz.h"

#include <dirent.h>

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "frontend/cgen.h"

#ifndef MG_FUZZ_REPRO_DIR
#error "MG_FUZZ_REPRO_DIR must point at tests/fuzz/repros"
#endif

namespace mg::fuzz
{
namespace
{

FrontendCheckOptions
fastGate()
{
    // StructAll alone keeps per-seed cost low where the full default
    // selector set isn't the point of the test (the 200-trial CLI
    // sweep and checked_suite_test cover the full set).
    FrontendCheckOptions opts;
    opts.oracle.selectors = {minigraph::SelectorKind::StructAll};
    return opts;
}

TEST(FrontendGate, GeneratorIsDeterministic)
{
    frontend::CGenOptions g;
    g.seed = 42;
    std::string a = frontend::generateCSource(g);
    std::string b = frontend::generateCSource(g);
    EXPECT_EQ(a, b);
    g.seed = 43;
    EXPECT_NE(frontend::generateCSource(g), a);
}

TEST(FrontendGate, CleanVerdictsAcrossGeneratedSeeds)
{
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        frontend::CGenOptions g;
        g.seed = seed;
        std::string src = frontend::generateCSource(g);
        FrontendCheckOptions opts = fastGate();
        opts.compile.name = frontend::cFuzzProgramName(seed);
        OracleVerdict verdict = checkCSource(src, opts);
        EXPECT_TRUE(verdict.ok())
            << verdictJson(opts.compile.name, seed, verdict);
        EXPECT_GT(verdict.instCount, 0u) << "seed " << seed;
    }
}

TEST(FrontendGate, CompileFailureIsAVerdictNotAnException)
{
    FrontendCheckOptions opts = fastGate();
    opts.compile.name = "broken.c";
    OracleVerdict v = checkCSource("int main() { return x; }\n", opts);
    ASSERT_EQ(v.failures.size(), 1u);
    EXPECT_EQ(v.failures[0].kind, "compile");
    EXPECT_NE(v.failures[0].detail.find("undeclared identifier"),
              std::string::npos);
}

TEST(FrontendGate, InterpreterFaultIsAVerdict)
{
    FrontendCheckOptions opts = fastGate();
    OracleVerdict v = checkCSource("unsigned A[2];\n"
                                   "unsigned k = 7;\n"
                                   "int main() { A[k] = 1; return 0; }\n",
                                   opts);
    ASSERT_EQ(v.failures.size(), 1u);
    EXPECT_EQ(v.failures[0].kind, "interp");
    EXPECT_NE(v.failures[0].detail.find("out of bounds"),
              std::string::npos);
}

TEST(FrontendGate, NonterminationIsAVerdict)
{
    FrontendCheckOptions opts = fastGate();
    opts.oracle.maxSteps = 2000;
    OracleVerdict v =
        checkCSource("unsigned s = 0;\n"
                     "int main() {\n"
                     "  unsigned i;\n"
                     "  for (i = 0; i < 1000000; i = i + 1)\n"
                     "    s = s + i;\n"
                     "  return 0;\n"
                     "}\n",
                     opts);
    ASSERT_FALSE(v.ok());
    // The tiny step budget trips the reference interpreter first.
    EXPECT_EQ(v.failures[0].kind, "interp");
}

TEST(FrontendGate, PlantedMiscompileIsCaughtAndShrinks)
{
    // Emulate a rewriter bug under a compiled program, exactly like
    // the asm-level oracle tests: bump an outlined-body immediate.
    // The gate must fail, and ddmin-over-lines must hand back a
    // smaller-or-equal still-failing repro.
    unsigned planted = 0;
    for (uint64_t seed = 1; seed <= 6 && planted == 0; ++seed) {
        frontend::CGenOptions g;
        g.seed = seed;
        std::string src = frontend::generateCSource(g);

        bool applied = false;
        FrontendCheckOptions opts = fastGate();
        opts.oracle.sabotage = [&applied](assembler::Program &p,
                                          isa::MgBinaryInfo &info) {
            applied |= sabotageOutlinedImmediate(p, info);
        };
        OracleVerdict verdict = checkCSource(src, opts);
        if (!applied)
            continue; // nothing outlined with an immediate
        ++planted;
        ASSERT_FALSE(verdict.ok()) << "seed " << seed;

        ShrinkResult shrunk = shrinkCSource(src, opts);
        EXPECT_TRUE(shrunk.reproduced);
        EXPECT_LE(shrunk.source.size(), src.size());
        EXPECT_GT(shrunk.instructions, 0u);
        EXPECT_FALSE(shrunk.verdict.ok());

        std::string repro = reproCSource(shrunk, seed);
        EXPECT_NE(repro.find("mgsim fuzz --frontend repro, seed " +
                             std::to_string(seed)),
                  std::string::npos);
        EXPECT_NE(repro.find("// failure: kind="), std::string::npos);
        EXPECT_NE(repro.find(shrunk.source), std::string::npos);
    }
    EXPECT_GE(planted, 1u)
        << "no generated seed produced an outlined immediate to plant";
}

TEST(FrontendGate, CleanSourceDoesNotShrink)
{
    frontend::CGenOptions g;
    g.seed = 3;
    std::string src = frontend::generateCSource(g);
    ShrinkResult r = shrinkCSource(src, fastGate());
    EXPECT_FALSE(r.reproduced);
    EXPECT_EQ(r.source, src);
}

// Every committed shrunk repro documents a *fixed* bug; it must stay
// clean through the full gate.  A failure here means the bug the
// repro's header describes has been reintroduced.
TEST(FrontendGate, CommittedReprosStayClean)
{
    DIR *d = opendir(MG_FUZZ_REPRO_DIR);
    ASSERT_NE(d, nullptr) << "cannot open " << MG_FUZZ_REPRO_DIR;
    unsigned checked = 0;
    while (dirent *e = readdir(d)) {
        std::string name = e->d_name;
        if (name.size() < 3 ||
            name.compare(name.size() - 2, 2, ".c") != 0)
            continue;
        std::string path = std::string(MG_FUZZ_REPRO_DIR) + "/" + name;
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in) << path;
        std::ostringstream ss;
        ss << in.rdbuf();

        FrontendCheckOptions opts; // full default selector set
        opts.compile.name = name;
        OracleVerdict v = checkCSource(ss.str(), opts);
        EXPECT_TRUE(v.ok())
            << name << " regressed: " << verdictJson(name, 0, v);
        ++checked;
    }
    closedir(d);
    EXPECT_GE(checked, 1u);
}

TEST(FrontendGate, IsolatedCheckMatchesInProcess)
{
    frontend::CGenOptions g;
    g.seed = 2;
    std::string src = frontend::generateCSource(g);
    FrontendCheckOptions opts = fastGate();
    OracleVerdict in = checkCSource(src, opts);
    OracleVerdict iso = checkCSourceIsolated(src, opts);
    EXPECT_EQ(in.ok(), iso.ok());
    EXPECT_EQ(in.instCount, iso.instCount);
}

} // namespace
} // namespace mg::fuzz
