/**
 * @file
 * The C-subset compiler's library contract (docs/FRONTEND.md):
 * deterministic byte-identical output (serially and under concurrent
 * compiles, the `--jobs` story), stable "name:line:col" diagnostics
 * with nonzero-ok=false results, global overrides, and the on-disk
 * examples/c corpus compiling clean.
 */

#include "frontend/compile.h"

#include <dirent.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/interp.h"
#include "uarch/functional.h"

#ifndef MG_EXAMPLES_C_DIR
#error "MG_EXAMPLES_C_DIR must point at examples/c"
#endif

namespace mg::frontend
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string>
exampleFiles()
{
    std::vector<std::string> files;
    DIR *d = opendir(MG_EXAMPLES_C_DIR);
    EXPECT_NE(d, nullptr) << "cannot open " << MG_EXAMPLES_C_DIR;
    if (!d)
        return files;
    while (dirent *e = readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 2 &&
            name.compare(name.size() - 2, 2, ".c") == 0)
            files.push_back(std::string(MG_EXAMPLES_C_DIR) + "/" + name);
    }
    closedir(d);
    std::sort(files.begin(), files.end());
    return files;
}

const std::string kTiny = "unsigned g = 5;\n"
                          "int main() { g = g * 3 + 1; return 0; }\n";

TEST(FrontendCompile, TinyProgramCompilesAndRuns)
{
    CompileResult comp = compile(kTiny, {});
    ASSERT_TRUE(comp.ok) << comp.error;
    assembler::Program prog = assemble(comp, {});
    uarch::FunctionalCore core(prog);
    core.run(1000);
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.memory().read(prog.dataLabels.at("g"), 8), 16u);
}

TEST(FrontendCompile, DeterministicSerially)
{
    CompileResult a = compile(kTiny, {});
    CompileResult b = compile(kTiny, {});
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.asmText, b.asmText);
}

// The batch runner compiles .c workloads from worker threads under
// --jobs>1; concurrent compiles of the same source must all produce
// the byte-identical assembly the serial compile does.
TEST(FrontendCompile, DeterministicUnderConcurrency)
{
    const std::string reference = compile(kTiny, {}).asmText;
    ASSERT_FALSE(reference.empty());

    constexpr int kThreads = 8;
    std::vector<std::string> out(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { out[t] = compile(kTiny, {}).asmText; });
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(out[t], reference) << "thread " << t;
}

TEST(FrontendCompile, ExampleCorpusCompilesDeterministically)
{
    std::vector<std::string> files = exampleFiles();
    EXPECT_GE(files.size(), 10u)
        << "examples/c should hold the ported kernel corpus";
    for (const std::string &path : files) {
        std::string src = slurp(path);
        CompileResult a = compile(src, {});
        ASSERT_TRUE(a.ok) << path << ": " << a.error;
        CompileResult b = compile(src, {});
        EXPECT_EQ(a.asmText, b.asmText) << path;
        EXPECT_FALSE(a.asmText.empty()) << path;
    }
}

TEST(FrontendCompile, DiagnosticHasLineAndColumn)
{
    CompileOptions opts;
    opts.name = "t.c";
    CompileResult comp =
        compile("int main() {\n  return x;\n}\n", opts);
    ASSERT_FALSE(comp.ok);
    EXPECT_EQ(comp.error, "t.c:2:10: use of undeclared identifier 'x'");
}

TEST(FrontendCompile, DiagnosticsAreStable)
{
    const std::string bad = "int main() { if x) return 0; }\n";
    CompileOptions opts;
    opts.name = "s.c";
    std::string first = compile(bad, opts).error;
    EXPECT_EQ(first, "s.c:1:17: expected '('");
    EXPECT_EQ(compile(bad, opts).error, first);
}

TEST(FrontendCompile, GlobalOverridesChangeDataImage)
{
    CompileOptions opts;
    opts.globalOverrides = {{"g", 41}};
    CompileResult comp = compile(kTiny, opts);
    ASSERT_TRUE(comp.ok) << comp.error;
    assembler::Program prog = assemble(comp, opts);
    uarch::FunctionalCore core(prog);
    core.run(1000);
    EXPECT_EQ(core.memory().read(prog.dataLabels.at("g"), 8), 124u);
}

TEST(FrontendCompile, UnknownOverrideIsAnError)
{
    CompileOptions opts;
    opts.name = "o.c";
    opts.globalOverrides = {{"nope", 1}};
    CompileResult comp = compile(kTiny, opts);
    EXPECT_FALSE(comp.ok);
    EXPECT_NE(comp.error.find("nope"), std::string::npos);
}

// A function ending in an explicit return must not leave the implicit
// "return 0" tail in the binary: mg_lint rejects candidates over
// unreachable instructions, and the frontend's contract is
// lint-cleanliness by construction.
TEST(FrontendCompile, ExplicitFinalReturnLeavesNoDeadTail)
{
    const std::string explicitRet =
        "unsigned g = 1;\nint main() { g = 2; return 0; }\n";
    const std::string implicitRet =
        "unsigned g = 1;\nint main() { g = 2; }\n";
    CompileResult a = compile(explicitRet, {});
    CompileResult b = compile(implicitRet, {});
    ASSERT_TRUE(a.ok && b.ok);
    // The explicit return keeps its jump to the epilogue, but the
    // unreachable implicit-return tail (li 0 + move to the return
    // register) must be pruned — exactly one instruction of
    // difference, not three.
    EXPECT_EQ(assemble(a, {}).size(), assemble(b, {}).size() + 1);
}

} // namespace
} // namespace mg::frontend
