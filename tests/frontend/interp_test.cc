/**
 * @file
 * The AST reference interpreter (frontend/interp.h) is the
 * differential gate's ground truth, so its arithmetic must mirror the
 * MG-RISC ALU exactly — these tests pin the ISA edge cases
 * (shift-count masking, the defined division edges) and the
 * interpreter's own failure modes (array bounds, step budget).
 */

#include "frontend/interp.h"

#include <limits>

#include <gtest/gtest.h>

#include "frontend/compile.h"

namespace mg::frontend
{
namespace
{

InterpResult
runSource(const std::string &src, InterpOptions opts = {})
{
    CompileResult comp = compile(src, {});
    EXPECT_TRUE(comp.ok) << comp.error;
    if (!comp.ok)
        return {};
    return interpret(*comp.ast, opts);
}

TEST(FrontendInterp, ShiftCountsMaskTo63)
{
    // The ALU masks shift counts `& 63`, and so must the interpreter:
    // 1 << 64 is 1, not 0.
    EXPECT_EQ(evalCBinary("<<", false, 1, 64), 1u);
    EXPECT_EQ(evalCBinary("<<", false, 1, 65), 2u);
    EXPECT_EQ(evalCBinary(">>", true, 0x8000000000000000ull, 64),
              0x8000000000000000ull);
}

TEST(FrontendInterp, ShiftSignednessFromLeftOperand)
{
    const uint64_t neg = static_cast<uint64_t>(-8);
    // signed >> is arithmetic...
    EXPECT_EQ(evalCBinary(">>", false, neg, 1),
              static_cast<uint64_t>(-4));
    // ...unsigned >> is logical.
    EXPECT_EQ(evalCBinary(">>", true, neg, 1), neg >> 1);
}

TEST(FrontendInterp, DivisionEdgesMatchIsa)
{
    // The ISA defines x/0 == -1, x%0 == x, INT64_MIN/-1 == INT64_MIN
    // with remainder 0 (no trap, no UB).
    const uint64_t minS =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::min());
    EXPECT_EQ(evalCBinary("/", false, 7, 0), static_cast<uint64_t>(-1));
    EXPECT_EQ(evalCBinary("%", false, 7, 0), 7u);
    EXPECT_EQ(evalCBinary("/", false, minS, static_cast<uint64_t>(-1)),
              minS);
    EXPECT_EQ(evalCBinary("%", false, minS, static_cast<uint64_t>(-1)),
              0u);
}

TEST(FrontendInterp, UnsignedWinsComparisons)
{
    const uint64_t neg1 = static_cast<uint64_t>(-1);
    EXPECT_EQ(evalCBinary("<", false, neg1, 1), 1u); // -1 < 1 signed
    EXPECT_EQ(evalCBinary("<", true, neg1, 1), 0u);  // huge > 1 unsigned
}

TEST(FrontendInterp, ComputesGlobals)
{
    InterpResult r = runSource("unsigned a = 3;\n"
                               "unsigned b = 0;\n"
                               "int main() {\n"
                               "  unsigned i;\n"
                               "  for (i = 0; i < 5; i = i + 1)\n"
                               "    b = b + a * i;\n"
                               "  return 0;\n"
                               "}\n");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.globals.size(), 2u);
    EXPECT_EQ(r.globals[0][0], 3u);
    EXPECT_EQ(r.globals[1][0], 30u);
}

TEST(FrontendInterp, ArrayIndexOutOfBoundsIsAnError)
{
    InterpResult r = runSource("unsigned A[4];\n"
                               "unsigned k = 9;\n"
                               "int main() { A[k] = 1; return 0; }\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("out of bounds"), std::string::npos)
        << r.error;
    EXPECT_NE(r.error.find("'A[4]'"), std::string::npos) << r.error;
}

TEST(FrontendInterp, StepBudgetTripsOnLongLoops)
{
    InterpOptions opts;
    opts.maxSteps = 100;
    InterpResult r = runSource("unsigned s = 0;\n"
                               "int main() {\n"
                               "  unsigned i;\n"
                               "  for (i = 0; i < 100000; i = i + 1)\n"
                               "    s = s + i;\n"
                               "  return 0;\n"
                               "}\n",
                               opts);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("step"), std::string::npos) << r.error;
}

TEST(FrontendInterp, OverridesReplaceInitialValues)
{
    InterpOptions opts;
    opts.globalOverrides = {{"n", 7}};
    InterpResult r = runSource("unsigned n = 2;\n"
                               "unsigned out = 0;\n"
                               "int main() { out = n * n; return 0; }\n",
                               opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.globals[1][0], 49u);
}

TEST(FrontendInterp, ShortCircuitSkipsRhs)
{
    // The && rhs must not evaluate when the lhs is false: the rhs here
    // would index out of bounds.
    InterpResult r = runSource(
        "unsigned A[2];\n"
        "unsigned ok = 0;\n"
        "int main() {\n"
        "  unsigned k = 5;\n"
        "  if (k < 2 && A[k] == 0) ok = 1; else ok = 2;\n"
        "  return 0;\n"
        "}\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.globals[1][0], 2u);
}

} // namespace
} // namespace mg::frontend
