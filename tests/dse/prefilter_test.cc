/**
 * @file
 * Pre-filter safety and the golden Pareto snapshot, both on the
 * pinned 130-cell DSE grid (dse/grid.h pinnedDseGrid).
 *
 * The safety property is the one that makes analytic pruning
 * admissible at all: run the grid both ways — fully measured, and
 * with the queuing-model pre-filter on — and require that NO pruned
 * configuration sits on the measured Pareto frontier.  The queuing
 * model may rank wrongly inside the dominated mass; it must never
 * cost us a frontier point.
 *
 * The measured frontier itself is golden-snapshotted
 * (tests/golden/golden_pareto.json): any timing-model change that
 * moves the frontier shows up as a byte diff here, re-blessed via
 * tools/bless_golden.sh (or MG_BLESS_GOLDEN=1).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "dse/queue_model.h"
#include "dse/sweep.h"

#ifndef MG_GOLDEN_DIR
#error "MG_GOLDEN_DIR must point at tests/golden"
#endif

namespace mg::dse
{
namespace
{

namespace fs = std::filesystem;

constexpr const char *kGoldenPath =
    MG_GOLDEN_DIR "/golden_pareto.json";

/**
 * One shared store + fully measured (no pre-filter) sweep of the
 * pinned grid, computed once per process: the prefilter run and the
 * golden snapshot both reuse its results as cache hits.  The root is
 * keyed by pid because ctest runs each TEST as its own process, and
 * under -j two of them would otherwise race on the same store.
 */
const std::string &
sharedRoot()
{
    static const std::string root = [] {
        fs::path p = fs::path(::testing::TempDir()) /
                     ("mg_prefilter_" + std::to_string(::getpid()));
        fs::remove_all(p);
        return p.string();
    }();
    return root;
}

const SweepOutcome &
fullSweep()
{
    static const SweepOutcome out = [] {
        SweepOptions opts;
        opts.storeRoot = sharedRoot();
        opts.prefilter = false;
        return runSweep(pinnedDseGrid(), opts);
    }();
    return out;
}

/** Extract `"key": "value"` from one document line. */
std::string
fieldOf(const std::string &line, const std::string &key)
{
    const std::string pat = "\"" + key + "\": \"";
    size_t pos = line.find(pat);
    if (pos == std::string::npos)
        return "";
    pos += pat.size();
    return line.substr(pos, line.find('"', pos) - pos);
}

/** (config, selector) pairs of every point with the given status. */
std::set<std::string>
pairsWithStatus(const std::string &doc, const std::string &status)
{
    std::set<std::string> pairs;
    std::istringstream in(doc);
    std::string line;
    while (std::getline(in, line))
        if (line.find("\"status\": \"" + status + "\"") !=
            std::string::npos)
            pairs.insert(fieldOf(line, "config") + "|" +
                         fieldOf(line, "selector"));
    return pairs;
}

/** (config, selector) pairs of the document's measured frontier. */
std::set<std::string>
frontierPairs(const std::string &doc)
{
    std::set<std::string> pairs;
    std::istringstream in(doc);
    std::string line;
    bool inside = false;
    while (std::getline(in, line)) {
        if (line.find("\"pareto\": [") != std::string::npos) {
            inside = true;
            continue;
        }
        if (!inside)
            continue;
        if (line.find(']') != std::string::npos && line.find('{') ==
            std::string::npos)
            break;
        pairs.insert(fieldOf(line, "config") + "|" +
                     fieldOf(line, "selector"));
    }
    return pairs;
}

TEST(QueueModel, PredictionsAreSaneAndMonotone)
{
    auto base = *uarch::configFromName("reduced");
    const double ref = predictedIpc(base, false);
    EXPECT_GT(ref, 0.0);
    EXPECT_LE(ref, base.commitWidth);

    // More of any swept resource never predicts slower.
    auto wider = base;
    wider.issueWidth += 1;
    wider.commitWidth += 1;
    EXPECT_GE(predictedIpc(wider, false), ref);
    auto deeper = base;
    deeper.issueQueueEntries += 16;
    EXPECT_GE(predictedIpc(deeper, false), ref);
    auto regs = base;
    regs.physRegs += 32;
    EXPECT_GE(predictedIpc(regs, false), ref);

    // Mini-graphs amplify, saturating in MGT capacity.
    const double mg = predictedIpc(base, true);
    EXPECT_GT(mg, ref);
    auto big_mgt = base;
    big_mgt.mgtEntries = 4096;
    EXPECT_GE(predictedIpc(big_mgt, true), mg);

    // Determinism: the fixed point converges to the same value.
    EXPECT_EQ(predictedIpc(base, true), predictedIpc(base, true));
}

TEST(Prefilter, PrunedPointsNeverOnMeasuredFrontier)
{
    const SweepOutcome &full = fullSweep();
    ASSERT_EQ(full.error, "");
    ASSERT_TRUE(full.ok()) << "pinned grid must simulate cleanly";
    ASSERT_EQ(full.summary.points, 130u);
    EXPECT_EQ(full.summary.pruned, 0u);

    // The pre-filtered run reuses the store: every unpruned point is
    // a cache hit, so this costs no extra simulation.
    SweepOptions opts;
    opts.storeRoot = sharedRoot();
    opts.prefilter = true;
    SweepOutcome pruned_run = runSweep(pinnedDseGrid(), opts);
    ASSERT_EQ(pruned_run.error, "");
    EXPECT_EQ(pruned_run.summary.hits,
              130u - pruned_run.summary.pruned);
    EXPECT_EQ(pruned_run.summary.simulated, 0u);

    std::set<std::string> pruned =
        pairsWithStatus(pruned_run.doc, "pruned");
    EXPECT_EQ(pruned.size() * pinnedDseGrid().workloads.size(),
              pruned_run.summary.pruned)
        << "prune decisions are per (config, selector), uniform "
           "across workloads";
    EXPECT_FALSE(pruned.empty())
        << "the pinned grid is built to exercise pruning; if the "
           "model stopped pruning anything this test is vacuous";

    // The safety property: pruning must not delete frontier points.
    std::set<std::string> frontier = frontierPairs(full.doc);
    ASSERT_FALSE(frontier.empty());
    for (const std::string &p : pruned)
        EXPECT_EQ(frontier.count(p), 0u)
            << "pre-filter pruned measured-frontier point " << p
            << " — the queuing model's margin (kPruneMargin) is "
               "no longer safe on the pinned grid";
}

TEST(Prefilter, GoldenParetoSnapshot)
{
    const SweepOutcome &full = fullSweep();
    ASSERT_EQ(full.error, "");

    // The snapshot is the document's "pareto" section, re-wrapped as
    // a standalone JSON object so it reads on its own.
    size_t pos = full.doc.find("  \"pareto\": [");
    ASSERT_NE(pos, std::string::npos);
    std::string actual = "{\n" + full.doc.substr(pos);

    if (const char *bless = std::getenv("MG_BLESS_GOLDEN");
        bless && *bless == '1') {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        out << actual;
        GTEST_SKIP() << "blessed " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in) << "missing " << kGoldenPath
                    << " — run tools/bless_golden.sh";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), actual)
        << "measured Pareto frontier diverged; intentional timing "
           "changes: re-bless with tools/bless_golden.sh";
}

} // namespace
} // namespace mg::dse
