/**
 * @file
 * The content-addressed result store (dse/result_store.h): key
 * derivation, round trips, and — above all — the corruption
 * contract: a truncated, bit-flipped or mis-keyed entry is
 * quarantined and *never served*, `verify` reports it, and `gc`
 * removes quarantined files and stale-version entries.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "dse/result_store.h"
#include "trace/stats_json.h"
#include "workloads/workload.h"

namespace mg::dse
{
namespace
{

namespace fs = std::filesystem;

/** A fresh store root per test. */
std::string
tmpRoot(const std::string &name)
{
    fs::path root =
        fs::path(::testing::TempDir()) / ("mg_store_" + name);
    fs::remove_all(root);
    return root.string();
}

const assembler::Program &
testProgram()
{
    static const assembler::Program prog =
        workloads::buildWorkload(*workloads::findWorkload("crc32.0"))
            .program;
    return prog;
}

/** A syntactically valid, successful stats line to store. */
std::string
testStatsLine(uint64_t cycles = 1000)
{
    trace::StatsMeta meta;
    meta.workload = "crc32.0";
    meta.config = "reduced";
    meta.selector = "none";
    uarch::SimResult res;
    res.cycles = cycles;
    res.originalInsts = 2 * cycles;
    return trace::statsJson(meta, res);
}

StoreKey
testKey(uint32_t budget = 512)
{
    return deriveKey(testProgram(), *uarch::configFromName("reduced"),
                     "none", budget);
}

/** The documented on-disk location of an entry. */
std::string
entryPath(const std::string &root, const StoreKey &key)
{
    std::string hex = key.hex();
    return root + "/objects/" + hex.substr(0, 2) + "/" + hex + ".entry";
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    fs::create_directories(fs::path(path).parent_path());
    std::ofstream out(path, std::ios::binary);
    out << content;
}

size_t
quarantineCount(const std::string &root)
{
    size_t n = 0;
    std::error_code ec;
    for (auto it = fs::directory_iterator(root + "/quarantine", ec);
         !ec && it != fs::directory_iterator(); ++it)
        ++n;
    return n;
}

TEST(StoreKey, CoversEveryInput)
{
    StoreKey base = testKey();
    EXPECT_EQ(base.value, fnv1a64(base.identity));
    EXPECT_EQ(base.hex(), hex64(base.value));
    EXPECT_EQ(base.hex().size(), 16u);

    // Same inputs, same key (the whole point of content addressing).
    EXPECT_EQ(base.value, testKey().value);

    auto reduced = *uarch::configFromName("reduced");
    const auto &prog = testProgram();

    // Selector, budget and simulator version are all identity.
    EXPECT_NE(base.value,
              deriveKey(prog, reduced, "struct-all", 512).value);
    EXPECT_NE(base.value, testKey(256).value);
    EXPECT_NE(base.value,
              deriveKey(prog, reduced, "none", 512, "mg-sim-0").value);

    // Any configuration field counts — not just the registry name.
    auto tweaked = reduced;
    tweaked.issueQueueEntries += 1;
    EXPECT_NE(base.value, deriveKey(prog, tweaked, "none", 512).value);

    // So do the program bytes.
    auto other =
        workloads::buildWorkload(*workloads::findWorkload("bitcount.0"))
            .program;
    EXPECT_NE(base.value, deriveKey(other, reduced, "none", 512).value);
}

TEST(ResultStore, InsertLookupRoundTrip)
{
    const std::string root = tmpRoot("roundtrip");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");

    StoreKey key = testKey();
    EXPECT_FALSE(store.lookup(key).has_value());
    EXPECT_EQ(store.misses(), 1u);

    const std::string line = testStatsLine();
    ASSERT_EQ(store.insert(key, line), "");

    auto got = store.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, line) << "lookup must return the exact bytes";
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.quarantines(), 0u);

    StoreStats st = store.stats();
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.quarantined, 0u);
    EXPECT_EQ(st.byVersion.at(kSimVersion), 1u);
}

TEST(ResultStore, RefusesToStoreErrorRecords)
{
    ResultStore store;
    ASSERT_EQ(store.open(tmpRoot("norerror")), "");
    trace::StatsMeta meta;
    meta.workload = "crc32.0";
    std::string err_line = trace::errorJson(meta, "boom");
    EXPECT_NE(store.insert(testKey(), err_line), "");
    EXPECT_NE(store.insert(testKey(), "not json at all"), "");
}

TEST(ResultStore, TruncatedEntryIsQuarantinedNotServed)
{
    const std::string root = tmpRoot("truncated");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    StoreKey key = testKey();
    ASSERT_EQ(store.insert(key, testStatsLine()), "");

    // Chop the trailing newline + a few bytes: the mid-write
    // truncation signature.
    const std::string path = entryPath(root, key);
    std::string bytes = slurpFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 5));

    EXPECT_FALSE(store.lookup(key).has_value())
        << "a truncated entry must read as a miss";
    EXPECT_EQ(store.quarantines(), 1u);
    ASSERT_EQ(store.quarantined().size(), 1u);
    EXPECT_EQ(store.quarantined()[0].reason, "truncated");
    EXPECT_FALSE(fs::exists(path)) << "bad entry left in objects/";
    EXPECT_EQ(quarantineCount(root), 1u);

    // And it stays a miss — never "recovers".
    EXPECT_FALSE(store.lookup(key).has_value());
}

TEST(ResultStore, BitFlippedPayloadIsQuarantined)
{
    const std::string root = tmpRoot("bitflip");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    StoreKey key = testKey();
    ASSERT_EQ(store.insert(key, testStatsLine()), "");

    const std::string path = entryPath(root, key);
    std::string bytes = slurpFile(path);
    // Flip one bit inside the stats payload (the last line).
    bytes[bytes.rfind("cycles")] ^= 0x20;
    writeFile(path, bytes);

    EXPECT_FALSE(store.lookup(key).has_value());
    ASSERT_EQ(store.quarantined().size(), 1u);
    EXPECT_EQ(store.quarantined()[0].reason, "payload-hash");
}

TEST(ResultStore, KeyMismatchIsQuarantined)
{
    const std::string root = tmpRoot("keymismatch");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    StoreKey key = testKey();
    ASSERT_EQ(store.insert(key, testStatsLine()), "");

    // Copy the (internally consistent) entry to a different key's
    // path: the filename no longer matches the content address.
    StoreKey other = testKey(256);
    writeFile(entryPath(root, other),
              slurpFile(entryPath(root, key)));

    EXPECT_FALSE(store.lookup(other).has_value());
    ASSERT_EQ(store.quarantined().size(), 1u);
    EXPECT_EQ(store.quarantined()[0].reason, "key-mismatch");

    // The genuine entry is untouched.
    EXPECT_TRUE(store.lookup(key).has_value());
}

TEST(ResultStore, VerifyWalksAndQuarantines)
{
    const std::string root = tmpRoot("verify");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    StoreKey good = testKey();
    StoreKey bad = testKey(128);
    ASSERT_EQ(store.insert(good, testStatsLine(1000)), "");
    ASSERT_EQ(store.insert(bad, testStatsLine(2000)), "");

    VerifyReport clean = store.verify();
    EXPECT_TRUE(clean.clean());
    EXPECT_EQ(clean.checked, 2u);

    const std::string path = entryPath(root, bad);
    std::string bytes = slurpFile(path);
    writeFile(path, bytes.substr(0, bytes.size() - 1));

    VerifyReport rep = store.verify();
    EXPECT_EQ(rep.checked, 2u);
    ASSERT_EQ(rep.bad.size(), 1u);
    EXPECT_EQ(rep.bad[0].reason, "truncated");
    EXPECT_FALSE(rep.clean());

    // After the quarantine the store verifies clean again.
    EXPECT_TRUE(store.verify().clean());
    EXPECT_TRUE(store.lookup(good).has_value());
}

TEST(ResultStore, GcRemovesStaleVersionsAndQuarantine)
{
    const std::string root = tmpRoot("gc");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    ASSERT_EQ(store.insert(testKey(), testStatsLine()), "");

    // Handcraft a valid entry of an older simulator version (insert
    // always writes the current one): identity ends in the stale
    // version, key = fnv of the identity, so it self-validates.
    const std::string stats = testStatsLine(4242);
    const std::string identity = "prog=x#0|cfg=c|sel=none|budget=512|"
                                 "sim=mg-sim-0";
    const std::string key_hex = hex64(fnv1a64(identity));
    writeFile(root + "/objects/" + key_hex.substr(0, 2) + "/" +
                  key_hex + ".entry",
              "mg-dse-v1 " + key_hex + " " + hex64(fnv1a64(stats)) +
                  " mg-sim-0\n" + identity + "\n" + stats + "\n");

    // And one quarantined file.
    writeFile(root + "/quarantine/deadbeefdeadbeef.truncated", "junk");

    StoreStats before = store.stats();
    EXPECT_EQ(before.entries, 2u);
    EXPECT_EQ(before.byVersion.at("mg-sim-0"), 1u);
    EXPECT_EQ(before.quarantined, 1u);

    GcReport rep = store.gc();
    EXPECT_EQ(rep.staleRemoved, 1u);
    EXPECT_EQ(rep.quarantineRemoved, 1u);
    EXPECT_GT(rep.bytesReclaimed, 0u);

    StoreStats after = store.stats();
    EXPECT_EQ(after.entries, 1u);
    EXPECT_EQ(after.quarantined, 0u);
    EXPECT_EQ(after.byVersion.count("mg-sim-0"), 0u);
    EXPECT_TRUE(store.lookup(testKey()).has_value())
        << "gc must keep current-version entries";
}

TEST(ResultStore, ConcurrentDoubleWriterIsSafe)
{
    const std::string root = tmpRoot("race");
    ResultStore store;
    ASSERT_EQ(store.open(root), "");
    StoreKey key = testKey();
    const std::string line = testStatsLine();

    // Content-addressed writes are idempotent: N racing writers of
    // the same key stage identical bytes under unique tmp names and
    // rename into place; whoever lands last wins with the same bytes.
    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t)
        writers.emplace_back([&] {
            ResultStore mine;
            ASSERT_EQ(mine.open(root), "");
            for (int i = 0; i < 25; ++i)
                EXPECT_EQ(mine.insert(key, line), "");
        });
    for (auto &th : writers)
        th.join();

    auto got = store.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, line);
    EXPECT_TRUE(store.verify().clean());
    EXPECT_EQ(store.stats().entries, 1u);

    // No staging debris left behind.
    size_t tmp_files = 0;
    for (auto &e : fs::directory_iterator(root + "/tmp"))
        (void)e, ++tmp_files;
    EXPECT_EQ(tmp_files, 0u);
}

} // namespace
} // namespace mg::dse
