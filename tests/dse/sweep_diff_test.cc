/**
 * @file
 * Differential equivalence harness for the sweep engine (dse/sweep.h)
 * — the DSE service's central promise, checked byte-for-byte: for a
 * fixed grid, the emitted document is IDENTICAL whether every point
 * was freshly simulated (cold store), every point was a cache hit
 * (warm store), some were each (partially warm), or the grid was
 * split into three shards whose results were merged afterwards.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "dse/sweep.h"

namespace mg::dse
{
namespace
{

namespace fs = std::filesystem;

std::string
tmpRoot(const std::string &name)
{
    fs::path root =
        fs::path(::testing::TempDir()) / ("mg_sweep_" + name);
    fs::remove_all(root);
    return root.string();
}

/** The reduced differential grid: 2 selectors x 2 configs x 1 wl. */
GridSpec
diffGrid()
{
    GridSpec g;
    g.base = "reduced";
    g.workloads = {"crc32.0"};
    g.selectors = {"none", "struct-all"};
    g.configs = {{3, 20, 96, 256}, {3, 30, 144, 512}};
    return g;
}

/**
 * Options for one store.  The pre-filter is off so the hit/miss
 * arithmetic below is exact (pruning is exercised in
 * prefilter_test.cc); equivalence holds either way because prune
 * decisions are a pure function of the grid.
 */
SweepOptions
optsFor(const std::string &root)
{
    SweepOptions o;
    o.storeRoot = root;
    o.prefilter = false;
    return o;
}

TEST(SweepDiff, FreshThenCachedAreByteIdentical)
{
    const std::string root = tmpRoot("fresh_cached");
    const GridSpec grid = diffGrid();

    // Cold store: everything simulates.
    SweepOutcome fresh = runSweep(grid, optsFor(root));
    ASSERT_EQ(fresh.error, "");
    EXPECT_TRUE(fresh.ok());
    EXPECT_EQ(fresh.summary.points, 4u);
    EXPECT_EQ(fresh.summary.hits, 0u);
    EXPECT_EQ(fresh.summary.misses, 4u);
    EXPECT_EQ(fresh.summary.simulated, 4u);
    ASSERT_FALSE(fresh.doc.empty());

    // Warm store: everything hits, nothing simulates...
    SweepOutcome cached = runSweep(grid, optsFor(root));
    ASSERT_EQ(cached.error, "");
    EXPECT_EQ(cached.summary.hits, 4u);
    EXPECT_EQ(cached.summary.misses, 0u);
    EXPECT_EQ(cached.summary.simulated, 0u);

    // ...and the documents are the same bytes.
    EXPECT_EQ(fresh.doc, cached.doc);
}

TEST(SweepDiff, PartiallyWarmStoreProducesTheSameBytes)
{
    const std::string cold_root = tmpRoot("partial_ref");
    const std::string warm_root = tmpRoot("partial");
    const GridSpec grid = diffGrid();

    // Reference document from a fully cold sweep.
    SweepOutcome ref = runSweep(grid, optsFor(cold_root));
    ASSERT_EQ(ref.error, "");

    // Pre-warm the second store with half the grid (one selector).
    GridSpec half = grid;
    half.selectors = {"struct-all"};
    SweepOutcome pre = runSweep(half, optsFor(warm_root));
    ASSERT_EQ(pre.error, "");
    EXPECT_EQ(pre.summary.simulated, 2u);

    // The full sweep hits the warmed half, simulates the rest, and
    // still emits the reference bytes.
    SweepOutcome mixed = runSweep(grid, optsFor(warm_root));
    ASSERT_EQ(mixed.error, "");
    EXPECT_EQ(mixed.summary.hits, 2u);
    EXPECT_EQ(mixed.summary.misses, 2u);
    EXPECT_EQ(mixed.summary.simulated, 2u);
    EXPECT_EQ(ref.doc, mixed.doc);
}

TEST(SweepDiff, ThreeShardsThenMergeAreByteIdentical)
{
    const std::string ref_root = tmpRoot("shard_ref");
    const std::string shard_root = tmpRoot("shard");
    const GridSpec grid = diffGrid();

    SweepOutcome ref = runSweep(grid, optsFor(ref_root));
    ASSERT_EQ(ref.error, "");

    // Merging before any shard ran fails loudly — a partial sweep
    // must never masquerade as a complete one.
    SweepOptions merge = optsFor(shard_root);
    merge.merge = true;
    SweepOutcome premature = runSweep(grid, merge);
    EXPECT_NE(premature.error, "");

    // Run the three shards (any order; disjoint by construction).
    size_t simulated = 0;
    for (unsigned i = 1; i <= 3; ++i) {
        SweepOptions shard = optsFor(shard_root);
        shard.shardIndex = i;
        shard.shardCount = 3;
        SweepOutcome out = runSweep(grid, shard);
        ASSERT_EQ(out.error, "") << "shard " << i;
        EXPECT_TRUE(out.doc.empty())
            << "shards publish to the store, not a document";
        EXPECT_EQ(out.summary.skipped + out.summary.simulated +
                      out.summary.hits,
                  4u);
        simulated += out.summary.simulated;
    }
    EXPECT_EQ(simulated, 4u) << "shards must partition the grid";

    // The merge is pure cache reads and emits the reference bytes.
    SweepOutcome merged = runSweep(grid, merge);
    ASSERT_EQ(merged.error, "");
    EXPECT_EQ(merged.summary.hits, 4u);
    EXPECT_EQ(merged.summary.simulated, 0u);
    EXPECT_EQ(ref.doc, merged.doc);
}

TEST(SweepDiff, ShardBoundsAreValidated)
{
    SweepOptions bad = optsFor(tmpRoot("badshard"));
    bad.shardIndex = 4;
    bad.shardCount = 3;
    EXPECT_NE(runSweep(diffGrid(), bad).error, "");
}

} // namespace
} // namespace mg::dse
