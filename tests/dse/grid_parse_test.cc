/**
 * @file
 * parseGrid (src/dse/grid.h) rejection paths: every malformed grid
 * JSON shape must come back as one clear error string — never a
 * partially filled GridSpec that a sweep would silently run.
 */

#include <gtest/gtest.h>

#include "dse/grid.h"

namespace mg::dse
{
namespace
{

/** Parse and expect failure; returns the error message. */
std::string
rejects(const std::string &json)
{
    GridSpec grid;
    std::string err = parseGrid(json, grid);
    EXPECT_FALSE(err.empty())
        << "accepted malformed grid: " << json;
    // A rejected parse must leave the output untouched (the default
    // GridSpec has no workloads), never a partial sweep's worth.
    EXPECT_TRUE(grid.workloads.empty());
    EXPECT_TRUE(grid.configs.empty());
    return err;
}

TEST(GridParse, AcceptsMinimalGrid)
{
    GridSpec grid;
    ASSERT_EQ(parseGrid("{\"workloads\": [\"crc32.0\"]}", grid), "");
    EXPECT_EQ(grid.base, "reduced");
    EXPECT_EQ(grid.workloads.size(), 1u);
    EXPECT_EQ(grid.selectors, std::vector<std::string>{"none"});
    ASSERT_EQ(grid.configs.size(), 1u); // base values on every axis
}

TEST(GridParse, RejectsMalformedJson)
{
    rejects("{\"workloads\": [");
    rejects("");
    rejects("[1, 2, 3]"); // top level must be an object
}

TEST(GridParse, RejectsUnknownKeysAndBase)
{
    EXPECT_NE(rejects("{\"wrkloads\": [\"crc32.0\"]}")
                  .find("unknown key 'wrkloads'"),
              std::string::npos);
    EXPECT_NE(rejects("{\"base\": \"gigantic\"}")
                  .find("unknown base config 'gigantic'"),
              std::string::npos);
}

TEST(GridParse, RejectsMalformedAxes)
{
    EXPECT_NE(rejects("{\"width\": \"wide\"}")
                  .find("'width' must be a number or array"),
              std::string::npos);
    EXPECT_NE(rejects("{\"iq\": []}").find("'iq' must not be empty"),
              std::string::npos);
}

TEST(GridParse, RejectsZeroAndNegativeDimensions)
{
    EXPECT_NE(rejects("{\"width\": [0]}")
                  .find("'width' values must be positive integers"),
              std::string::npos);
    EXPECT_NE(rejects("{\"regs\": [-96]}")
                  .find("'regs' values must be positive integers"),
              std::string::npos);
    EXPECT_NE(rejects("{\"mgt\": [256.5]}")
                  .find("'mgt' values must be positive integers"),
              std::string::npos);
}

TEST(GridParse, RejectsMalformedConfigTuples)
{
    EXPECT_NE(rejects("{\"configs\": []}")
                  .find("'configs' must be a non-empty array"),
              std::string::npos);
    EXPECT_NE(rejects("{\"configs\": [[3, 20, 96]]}")
                  .find("must be [width, iq, regs, mgt]"),
              std::string::npos);
    EXPECT_NE(rejects("{\"configs\": [[3, 20, 96, 0]]}")
                  .find("'configs' values must be positive integers"),
              std::string::npos);
    EXPECT_NE(rejects("{\"configs\": [[3, 20, 96, 256]],"
                      " \"width\": [3]}")
                  .find("'width' and 'configs' are mutually exclusive"),
              std::string::npos);
}

TEST(GridParse, RejectsDuplicateExplicitTuples)
{
    std::string err = rejects(
        "{\"configs\": [[3, 20, 96, 256], [3, 30, 144, 512],"
        " [3, 20, 96, 256]]}");
    EXPECT_NE(err.find("duplicate 'configs' entry [3, 20, 96, 256]"),
              std::string::npos);
}

TEST(GridParse, AcceptsDistinctTuplesAndKeepsOrder)
{
    GridSpec grid;
    ASSERT_EQ(parseGrid("{\"workloads\": [\"crc32.0\"],"
                        " \"configs\": [[3, 30, 144, 512],"
                        " [3, 20, 96, 256]]}",
                        grid),
              "");
    ASSERT_EQ(grid.configs.size(), 2u);
    EXPECT_EQ(grid.configs[0], (ConfigTuple{3, 30, 144, 512}));
    EXPECT_EQ(grid.configs[1], (ConfigTuple{3, 20, 96, 256}));
}

TEST(GridParse, RejectsUnknownWorkloadSet)
{
    EXPECT_NE(rejects("{\"workloads\": \"everything\"}")
                  .find("unknown workload set 'everything'"),
              std::string::npos);
}

} // namespace
} // namespace mg::dse
