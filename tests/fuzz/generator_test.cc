/**
 * @file
 * The random program generator's contract (src/fuzz/generator.h):
 * bit-for-bit seed determinism, assembly through the real assembler
 * on every seed, and termination by construction.
 */

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "uarch/functional.h"

namespace mg::fuzz
{
namespace
{

TEST(FuzzGenerator, SameSeedSameSourceBitForBit)
{
    GeneratorOptions opts;
    for (uint64_t seed : {1ull, 2ull, 99ull, 12345ull}) {
        opts.seed = seed;
        EXPECT_EQ(generateSource(opts), generateSource(opts))
            << "seed " << seed;
    }
}

TEST(FuzzGenerator, DifferentSeedsDifferentPrograms)
{
    GeneratorOptions a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(generateSource(a), generateSource(b));
}

TEST(FuzzGenerator, ManySeedsAssembleAndTerminate)
{
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        GeneratorOptions opts;
        opts.seed = seed;
        GeneratedProgram gen;
        ASSERT_NO_THROW(gen = generateProgram(opts))
            << "seed " << seed << " failed to assemble";
        ASSERT_GT(gen.program.size(), 0u);
        EXPECT_EQ(gen.program.name, fuzzProgramName(seed));

        // Termination-by-construction, demonstrated: every generated
        // program halts well within the functional step budget.
        uarch::FunctionalCore core(gen.program);
        uint64_t steps = 0;
        const uint64_t cap = 1ull << 22;
        while (!core.halted() && steps < cap) {
            core.step();
            ++steps;
        }
        EXPECT_TRUE(core.halted())
            << "seed " << seed << " did not halt within " << cap
            << " steps";
    }
}

TEST(FuzzGenerator, SegmentKnobsAreRespected)
{
    // A one-segment program is shorter than a max-segment program
    // from the same seed (sanity that the knobs reach the emitter).
    GeneratorOptions small;
    small.seed = 3;
    small.minSegments = 1;
    small.maxSegments = 1;
    GeneratorOptions large;
    large.seed = 3;
    large.minSegments = 12;
    large.maxSegments = 12;
    EXPECT_LT(generateProgram(small).program.size(),
              generateProgram(large).program.size());
}

} // namespace
} // namespace mg::fuzz
