// mgsim fuzz --frontend repro, seed 169
// failure: kind=lint (all selectors)
//   [unreachable] candidate pc: constituents are unreachable from
//   the program entry
//
// A function body ending in an explicit `return` used to leave the
// implicit default-return tail (li 0 + move into the return register)
// in the emitted code, dead behind the return's jump to the epilogue.
// Selectors happily formed a mini-graph candidate over the dead pair,
// which mg_lint's Unreachable rule rejects.  Fixed by the
// reachability prune over the codegen IR (codegen.cc,
// pruneUnreachable); kept here so the dead tail never comes back.
unsigned a = 5;
unsigned b = 0;
int main() {
  b = a * 3 + 1;
  b = b ^ (a << 2);
  return 0;
}
