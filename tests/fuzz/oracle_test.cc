/**
 * @file
 * The differential oracle's contract (src/fuzz/oracle.h): clean
 * verdicts across many seeds and every default selector, a planted
 * miscompile always caught, deterministic verdict JSON, and crash
 * containment in the isolated flavour.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace mg::fuzz
{
namespace
{

OracleOptions
fastOracle()
{
    // StructAll alone keeps per-seed cost low where the full default
    // selector set isn't the point of the test.
    OracleOptions opts;
    opts.selectors = {minigraph::SelectorKind::StructAll};
    return opts;
}

TEST(FuzzOracle, CleanVerdictsAcrossSeedsAllSelectors)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        GeneratorOptions gopts;
        gopts.seed = seed;
        GeneratedProgram gen = generateProgram(gopts);
        OracleVerdict verdict = checkProgram(gen.program, {});
        EXPECT_TRUE(verdict.ok())
            << "seed " << seed << ": "
            << verdictJson(gen.program.name, seed, verdict);
        EXPECT_GT(verdict.instCount, 0u);
    }
}

TEST(FuzzOracle, VerdictJsonIsDeterministic)
{
    GeneratorOptions gopts;
    gopts.seed = 5;
    GeneratedProgram gen = generateProgram(gopts);
    std::string a = verdictJson(gen.program.name, 5,
                                checkProgram(gen.program, {}));
    std::string b = verdictJson(gen.program.name, 5,
                                checkProgram(gen.program, {}));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"ok\":true"), std::string::npos);
}

TEST(FuzzOracle, PlantedMiscompileIsCaught)
{
    // Emulate a rewriter outlining bug: bump an immediate in an
    // outlined body.  Enabled handles still execute correct template
    // semantics, so the disabled/outlined path and the linter carry
    // the detection — exactly the surface a real outlining bug hits.
    unsigned planted = 0, caught = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        GeneratorOptions gopts;
        gopts.seed = seed;
        GeneratedProgram gen = generateProgram(gopts);

        bool applied = false;
        OracleOptions opts = fastOracle();
        opts.sabotage = [&applied](assembler::Program &p,
                                   isa::MgBinaryInfo &info) {
            applied |= sabotageOutlinedImmediate(p, info);
        };
        OracleVerdict verdict = checkProgram(gen.program, opts);
        if (!applied)
            continue; // nothing outlined with an immediate: no plant
        ++planted;
        if (!verdict.ok())
            ++caught;
    }
    ASSERT_GT(planted, 0u)
        << "no seed produced an outlined immediate to sabotage";
    EXPECT_EQ(caught, planted)
        << "a planted miscompile escaped the oracle";
}

TEST(FuzzOracle, SabotageReportsFalseWithoutTarget)
{
    // A program with no mini-graphs has no outlined body to damage.
    assembler::Program prog =
        assembler::assemble("        .text\n"
                            "main:\n"
                            "        halt\n");
    isa::MgBinaryInfo info;
    EXPECT_FALSE(sabotageOutlinedImmediate(prog, info));
}

TEST(FuzzOracle, NonterminationIsAVerdictNotAPanic)
{
    assembler::Program prog =
        assembler::assemble("        .text\n"
                            "main:\n"
                            "loop:   addi r1, r1, 1\n"
                            "        j    loop\n");
    OracleOptions opts = fastOracle();
    opts.maxSteps = 1000;
    OracleVerdict verdict = checkProgram(prog, opts);
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.failures.front().kind, "nontermination");
    EXPECT_EQ(verdict.failures.front().selector, "");
}

TEST(FuzzOracle, IsolatedTurnsSimulatorAbortIntoCrashVerdict)
{
    // Falling off the end of the code segment trips an mg_assert
    // (abort).  In-process that would kill the test runner; isolated
    // it must come back as a "crash" failure.
    assembler::Program prog =
        assembler::assemble("        .text\n"
                            "main:\n"
                            "        addi r1, r1, 1\n");
    OracleVerdict verdict = checkProgramIsolated(prog, fastOracle());
    ASSERT_FALSE(verdict.ok());
    EXPECT_EQ(verdict.failures.front().kind, "crash");
}

TEST(FuzzOracle, IsolatedMatchesInProcessOnCleanPrograms)
{
    GeneratorOptions gopts;
    gopts.seed = 4;
    GeneratedProgram gen = generateProgram(gopts);
    OracleOptions opts = fastOracle();
    OracleVerdict in_process = checkProgram(gen.program, opts);
    OracleVerdict isolated = checkProgramIsolated(gen.program, opts);
    EXPECT_EQ(verdictJson(gen.program.name, 4, in_process),
              verdictJson(gen.program.name, 4, isolated));
}

} // namespace
} // namespace mg::fuzz
