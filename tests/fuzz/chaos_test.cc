/**
 * @file
 * Chaos mode's contract (src/fuzz/chaos.h): randomized
 * kill/corrupt/resume schedules over the DSE service leave the final
 * sweep document byte-identical to the undisturbed reference, with
 * zero failed points and no corrupt store entry served.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/chaos.h"

namespace mg::fuzz
{
namespace
{

TEST(FuzzChaos, SchedulesPreserveSweepByteIdentity)
{
    ChaosOptions opts;
    opts.seed = 11;
    opts.schedules = 3;
    opts.jobs = 2;
    opts.workDir = (std::filesystem::path(::testing::TempDir()) /
                    "mg-chaos-test")
                       .string();
    std::filesystem::remove_all(opts.workDir);

    ChaosResult result = runChaos(opts);
    EXPECT_EQ(result.error, "");
    EXPECT_EQ(result.schedules, 3u);
    for (const std::string &f : result.failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(result.ok());

    // Same seed, same campaign: the summary JSON is deterministic.
    std::filesystem::remove_all(opts.workDir);
    ChaosResult again = runChaos(opts);
    EXPECT_EQ(chaosJson(result, opts.seed),
              chaosJson(again, opts.seed));

    std::filesystem::remove_all(opts.workDir);
}

TEST(FuzzChaos, JsonShapeIsStable)
{
    ChaosResult result;
    result.schedules = 2;
    result.faultsInjected = 1;
    result.resumes = 1;
    result.corrupted = 3;
    EXPECT_EQ(chaosJson(result, 9),
              "{\"mode\":\"chaos\",\"seed\":9,\"ok\":true,"
              "\"schedules\":2,\"faults\":1,\"resumes\":1,"
              "\"corrupted\":3,\"failures\":[]}");

    result.failures.push_back("schedule 0: doc \"diff\"");
    EXPECT_EQ(chaosJson(result, 9),
              "{\"mode\":\"chaos\",\"seed\":9,\"ok\":false,"
              "\"schedules\":2,\"faults\":1,\"resumes\":1,"
              "\"corrupted\":3,\"failures\":[\"schedule 0: doc "
              "\\\"diff\\\"\"]}");
}

} // namespace
} // namespace mg::fuzz
