/**
 * @file
 * The ddmin shrinker's contract (src/fuzz/shrink.h): a planted
 * miscompile shrinks to a minimal, still-failing, ready-to-commit
 * repro; non-failing input is returned untouched; degenerate
 * candidates (crash / nontermination) are never chased.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "fuzz/generator.h"
#include "fuzz/shrink.h"

namespace mg::fuzz
{
namespace
{

/** Oracle that plants the outlined-immediate miscompile. */
OracleOptions
sabotagedOracle()
{
    OracleOptions opts;
    opts.selectors = {minigraph::SelectorKind::StructAll};
    opts.sabotage = [](assembler::Program &p,
                       isa::MgBinaryInfo &info) {
        sabotageOutlinedImmediate(p, info);
    };
    return opts;
}

/** First generated program the sabotaged oracle fails on. */
std::string
failingSource()
{
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        GeneratorOptions gopts;
        gopts.seed = seed;
        GeneratedProgram gen = generateProgram(gopts);
        if (!checkProgram(gen.program, sabotagedOracle()).ok())
            return gen.source;
    }
    ADD_FAILURE() << "no seed in 1..16 trips the planted miscompile";
    return "";
}

TEST(FuzzShrink, PlantedMiscompileShrinksToSmallRepro)
{
    std::string source = failingSource();
    ASSERT_FALSE(source.empty());

    ShrinkOptions opts;
    opts.oracle = sabotagedOracle();
    ShrinkResult result = shrink(source, opts);

    ASSERT_TRUE(result.reproduced);
    EXPECT_FALSE(result.verdict.ok());
    EXPECT_GT(result.trials, 1u);
    // The acceptance bar: a planted rewriter miscompile reduces to a
    // handful of instructions, not a page of program.
    EXPECT_LE(result.instructions, 20u)
        << "shrunk repro still has " << result.instructions
        << " instructions:\n"
        << result.source;
    EXPECT_LT(result.source.size(), source.size());

    // The minimized source must itself still assemble and fail.
    assembler::AssembleOptions aopts;
    aopts.name = "repro";
    aopts.memSize = opts.memSize;
    assembler::Program prog =
        assembler::assemble(result.source, aopts);
    EXPECT_FALSE(checkProgram(prog, opts.oracle).ok());
}

TEST(FuzzShrink, CleanProgramDoesNotReproduce)
{
    GeneratorOptions gopts;
    gopts.seed = 2;
    GeneratedProgram gen = generateProgram(gopts);

    ShrinkOptions opts;
    opts.oracle.selectors = {minigraph::SelectorKind::StructAll};
    ShrinkResult result = shrink(gen.source, opts);
    EXPECT_FALSE(result.reproduced);
    EXPECT_EQ(result.source, gen.source);
    EXPECT_EQ(result.trials, 1u);
}

TEST(FuzzShrink, ReproSourceCarriesFailureHeader)
{
    std::string source = failingSource();
    ASSERT_FALSE(source.empty());
    ShrinkOptions opts;
    opts.oracle = sabotagedOracle();
    ShrinkResult result = shrink(source, opts);
    ASSERT_TRUE(result.reproduced);

    std::string repro = reproSource(result, 42);
    EXPECT_NE(repro.find("mgfuzz repro, seed 42"), std::string::npos);
    EXPECT_NE(repro.find("failure: kind="), std::string::npos);
    EXPECT_NE(repro.find(result.source), std::string::npos);
}

} // namespace
} // namespace mg::fuzz
