/**
 * @file
 * The cycle-loss accounting identity, enforced across the whole
 * benchmark suite: for every workload and every paper selector, the
 * loss buckets must sum *exactly* to the lost retirement slots,
 *
 *     sum(lossSlots) == commitWidth * cycles - committedUnits.
 *
 * The runs execute with CheckLevel::Cheap, so the invariant auditor
 * additionally proves the identity holds after *every cycle*, not
 * just at the end.  Part of the `check` ctest label (with the audited
 * experiment sweep), since it simulates the full suite.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

TEST(AccountingIdentity, HoldsOnAllWorkloadsAndSelectors)
{
    const std::vector<SelectorKind> kinds{
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackProfile,
        SelectorKind::SlackDynamic};

    auto reduced = *uarch::configFromName("reduced");
    // Per-cycle enforcement via the auditor's O(1) [loss] check.
    reduced.checkLevel = uarch::CheckLevel::Cheap;

    std::vector<RunRequest> jobs;
    for (const auto &spec : workloads::workloadList())
        for (auto kind : kinds)
            jobs.push_back({.workload = spec,
                            .config = reduced,
                            .selector = kind});

    Runner runner(Runner::Options{});
    auto results = runner.run(jobs, "identity");
    ASSERT_EQ(results.size(), jobs.size());

    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::string what = jobs[i].workload.name() + " / " +
                           minigraph::nameOf(*jobs[i].selector);
        ASSERT_TRUE(r.ok) << what << ": " << r.error;

        const uarch::SimResult &s = r.sim;
        ASSERT_EQ(s.accountedWidth, reduced.commitWidth) << what;
        EXPECT_EQ(s.lossSum(), s.lostSlots())
            << what << ": buckets sum to " << s.lossSum()
            << " but width*cycles-committed = " << s.lostSlots();

        // Sanity on the per-template serialization counters: every
        // counted issue belongs to a real template, and the internal
        // penalty is an exact multiple of the template's structural
        // chain penalty (charged once per issue).
        for (const auto &t : s.mgTemplates) {
            if (t.issues == 0) {
                EXPECT_EQ(t.extWaitCycles, 0u) << what;
                EXPECT_EQ(t.intPenaltyCycles, 0u) << what;
            } else {
                EXPECT_EQ(t.intPenaltyCycles % t.issues, 0u) << what;
            }
        }
    }
}

TEST(AccountingIdentity, DisabledAccountingReportsNoBuckets)
{
    auto reduced = *uarch::configFromName("reduced");
    reduced.lossAccounting = false;

    auto spec = *workloads::findWorkload("crc32.0");
    ProgramContext ctx(spec);
    auto r = ctx.run({.config = reduced,
                      .selector = SelectorKind::StructAll});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.sim.accountedWidth, 0u);
    EXPECT_EQ(r.sim.lossSum(), 0u);
    EXPECT_TRUE(r.sim.mgTemplates.empty());
}

} // namespace
} // namespace mg::sim
