/**
 * @file
 * Golden stats snapshots: the serialized statistics of a small
 * workload x selector matrix, compared byte-for-byte against
 * tests/golden/golden_stats.jsonl.  Any timing-model change that
 * shifts a single counter shows up as a diff here — intentional
 * changes re-bless with tools/bless_golden.sh (or by running this
 * binary with MG_BLESS_GOLDEN=1).
 */

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "trace/stats_json.h"

#ifndef MG_GOLDEN_DIR
#error "MG_GOLDEN_DIR must point at tests/golden"
#endif

namespace mg::trace
{
namespace
{

using minigraph::SelectorKind;

constexpr const char *kGoldenPath =
    MG_GOLDEN_DIR "/golden_stats.jsonl";

struct Cell
{
    const char *workload;
    const char *selector; ///< registry name, "none" = baseline
};

/**
 * The snapshot matrix: three fast hand-written workloads plus two
 * compiled cbench workloads (the C frontend's emitted code is pinned
 * here too — a codegen change that shifts a counter must re-bless),
 * three policies each.
 */
constexpr Cell kMatrix[] = {
    {"crc32.0", "none"},      {"crc32.0", "struct-all"},
    {"crc32.0", "slack-profile"},
    {"bitcount.0", "none"},   {"bitcount.0", "struct-all"},
    {"bitcount.0", "slack-profile"},
    {"adpcm_c.0", "none"},    {"adpcm_c.0", "struct-all"},
    {"adpcm_c.0", "slack-profile"},
    {"c_crc32.0", "none"},    {"c_crc32.0", "struct-all"},
    {"c_crc32.0", "slack-profile"},
    {"c_dijkstra.0", "none"}, {"c_dijkstra.0", "struct-all"},
    {"c_dijkstra.0", "slack-profile"},
};

/** Serialize the whole matrix, one JSON line per cell. */
std::string
renderMatrix()
{
    auto reduced = *uarch::configFromName("reduced");
    std::string out;

    for (const Cell &cell : kMatrix) {
        auto spec = *workloads::findWorkload(cell.workload);
        sim::ProgramContext ctx(spec);

        sim::RunRequest req;
        req.config = reduced;
        if (std::string(cell.selector) != "none")
            req.selector = *minigraph::selectorFromName(cell.selector);

        auto run = ctx.run(req);
        EXPECT_TRUE(run.ok) << cell.workload << ": " << run.error;

        StatsMeta meta;
        meta.workload = cell.workload;
        meta.config = reduced.name;
        meta.selector = cell.selector;
        meta.templateNames = run.templateNames;
        meta.mgInstances = run.instances;
        meta.mgTemplatesUsed = run.templatesUsed;
        out += statsJson(meta, run.sim);
        out += '\n';
    }
    return out;
}

TEST(GoldenStats, MatrixMatchesSnapshot)
{
    std::string actual = renderMatrix();

    if (const char *bless = std::getenv("MG_BLESS_GOLDEN");
        bless && *bless == '1') {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        out << actual;
        GTEST_SKIP() << "blessed " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in) << "missing " << kGoldenPath
                    << " — run tools/bless_golden.sh";
    std::stringstream ss;
    ss << in.rdbuf();
    std::string expected = ss.str();

    if (expected != actual) {
        // Line-by-line diff beats one giant string mismatch.
        std::istringstream ea(expected), aa(actual);
        std::string el, al;
        size_t line = 0;
        while (true) {
            bool eok = static_cast<bool>(std::getline(ea, el));
            bool aok = static_cast<bool>(std::getline(aa, al));
            ++line;
            if (!eok && !aok)
                break;
            EXPECT_EQ(eok ? el : "<eof>", aok ? al : "<eof>")
                << "golden_stats.jsonl line " << line << " ("
                << kMatrix[line - 1 < std::size(kMatrix) ? line - 1 : 0]
                       .workload
                << "); intentional timing changes: re-bless with "
                   "tools/bless_golden.sh";
        }
        FAIL() << "stats snapshot diverged from " << kGoldenPath;
    }
}

} // namespace
} // namespace mg::trace
