/**
 * @file
 * Static-vs-dynamic serialization cross-check, swept across the whole
 * benchmark suite: every workload x every selector (the five paper
 * policies plus Slack-Static), the dynamic per-template serialization
 * counters and mg-external / mg-internal loss buckets must satisfy
 * the analyzer's structural invariants (analysis/consistency.h).
 * Part of the `check` ctest label, since it simulates the full suite.
 */

#include <gtest/gtest.h>

#include "analysis/consistency.h"
#include "sim/runner.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

TEST(StaticDynamicCheck, SuiteIsConsistentAcrossSelectors)
{
    const std::vector<SelectorKind> kinds{
        SelectorKind::StructAll,     SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackProfile,
        SelectorKind::SlackDynamic,  SelectorKind::SlackStatic};

    auto reduced = *uarch::configFromName("reduced");

    std::vector<RunRequest> jobs;
    for (const auto &spec : workloads::workloadList())
        for (auto kind : kinds)
            jobs.push_back({.workload = spec,
                            .config = reduced,
                            .selector = kind});

    Runner runner(Runner::Options{});
    auto results = runner.run(jobs, "static-dynamic");
    ASSERT_EQ(results.size(), jobs.size());

    size_t checks = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::string what = jobs[i].workload.name() + " / " +
                           minigraph::nameOf(*jobs[i].selector);
        ASSERT_TRUE(r.ok) << what << ": " << r.error;
        ASSERT_EQ(r.templates.size(), r.sim.mgTemplates.size()) << what;

        std::vector<analysis::TemplateDynStats> stats;
        stats.reserve(r.templates.size());
        for (size_t t = 0; t < r.templates.size(); ++t) {
            const auto &dyn = r.sim.mgTemplates[t];
            stats.push_back({&r.templates[t], dyn.issues,
                             dyn.extWaitCycles, dyn.intPenaltyCycles});
        }

        auto rep = analysis::checkStaticDynamic(
            stats, r.sim.loss(uarch::LossBucket::MgExternal),
            r.sim.loss(uarch::LossBucket::MgInternal));
        EXPECT_TRUE(rep.clean()) << what << ":\n" << rep.render();
        checks += rep.checksRun;
    }
    // The sweep actually checked something substantial.
    EXPECT_GT(checks, jobs.size() * 2);
}

TEST(StaticDynamicCheck, SlackStaticNeedsNoProfile)
{
    // Slack-Static is a pure static policy: it must run without a
    // training simulation and still select mini-graphs.
    EXPECT_FALSE(
        minigraph::selectorNeedsProfile(SelectorKind::SlackStatic));

    auto spec = *workloads::findWorkload("crc32.0");
    ProgramContext ctx(spec);
    auto r = ctx.run({.config = *uarch::configFromName("reduced"),
                      .selector = SelectorKind::SlackStatic});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.templatesUsed, 0u);
    EXPECT_GT(r.sim.committedHandles, 0u);
}

} // namespace
} // namespace mg::sim
