/**
 * @file
 * The pipeline-trace export formats: record invariants from a real
 * simulation, Konata and Chrome round-trip validation, the cycle
 * window, the RunRequest::trace file-writing path, and the negative
 * cases the validators must catch.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "trace/chrome_trace.h"
#include "trace/konata.h"
#include "trace/stats_json.h"
#include "trace/validate.h"
#include "workloads/workload.h"

namespace mg::trace
{
namespace
{

/** Trace one full run of a small workload through the raw core. */
std::vector<InstRecord>
traceWorkload(const std::string &name, const TraceConfig &tc = {})
{
    auto spec = *workloads::findWorkload(name);
    auto prog = workloads::buildWorkload(spec).program;
    auto cfg = *uarch::configFromName("reduced");

    PipelineTracer tracer(tc);
    uarch::Core core(cfg, prog);
    core.setProfiler(&tracer);
    core.run();
    return tracer.records();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(PipelineTracer, RecordsObeyStageOrdering)
{
    auto recs = traceWorkload("crc32.0");
    ASSERT_FALSE(recs.empty());

    size_t committed = 0;
    for (const auto &r : recs) {
        if (!r.committed)
            continue;
        ++committed;
        EXPECT_LE(r.fetchCycle, r.dispatchCycle) << "seq " << r.seq;
        EXPECT_LE(r.dispatchCycle, r.issueCycle) << "seq " << r.seq;
        EXPECT_LE(r.issueCycle, r.completeCycle) << "seq " << r.seq;
        EXPECT_LE(r.completeCycle, r.commitCycle) << "seq " << r.seq;
        EXPECT_FALSE(r.squashed) << "seq " << r.seq;
        EXPECT_FALSE(r.disasm.empty()) << "seq " << r.seq;
    }
    EXPECT_GT(committed, 0u);

    // Committed seqs are unique (a flushed seq re-fetches as a new
    // record; only one of them can commit).
    std::set<uint64_t> seqs;
    for (const auto &r : recs) {
        if (r.committed) {
            EXPECT_TRUE(seqs.insert(r.seq).second)
                << "seq " << r.seq << " committed twice";
        }
    }
}

TEST(PipelineTracer, CycleWindowBoundsRecording)
{
    TraceConfig tc;
    tc.startCycle = 100;
    tc.endCycle = 300;
    auto recs = traceWorkload("crc32.0", tc);
    ASSERT_FALSE(recs.empty());
    for (const auto &r : recs) {
        EXPECT_GE(r.fetchCycle, tc.startCycle);
        EXPECT_LE(r.fetchCycle, tc.endCycle);
    }
}

TEST(KonataExport, RoundTripValidates)
{
    TraceConfig window;
    window.endCycle = 3000;
    auto recs = traceWorkload("bitcount.0", window);
    std::string log = konataToString(recs);
    EXPECT_EQ(validateKonata(log), "");
    EXPECT_NE(log.find("Kanata\t0004"), std::string::npos);
    EXPECT_NE(log.find("\nR\t"), std::string::npos) << "no retires";
}

TEST(KonataExport, ValidatorCatchesCorruption)
{
    EXPECT_NE(validateKonata(""), "");
    EXPECT_NE(validateKonata("Kanata\t0003\n"), "");
    // Stage command for an id never introduced.
    EXPECT_NE(
        validateKonata("Kanata\t0004\nC=\t0\nS\t7\t0\tF\n"), "");
    // Malformed retire type.
    EXPECT_NE(validateKonata("Kanata\t0004\nC=\t0\nI\t0\t0\t0\n"
                             "R\t0\t0\t9\n"),
              "");
    // Valid minimal log.
    EXPECT_EQ(validateKonata("Kanata\t0004\nC=\t5\nI\t0\t0\t0\n"
                             "L\t0\t0\tadd r1, r2, r3\nS\t0\t0\tF\n"
                             "C\t3\nR\t0\t0\t0\n"),
              "");
}

TEST(ChromeExport, RoundTripValidates)
{
    TraceConfig window;
    window.endCycle = 3000;
    auto recs = traceWorkload("bitcount.0", window);
    std::string json = chromeTraceToString(recs);
    EXPECT_EQ(validateJson(json), "");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(JsonValidator, AcceptsAndRejects)
{
    EXPECT_EQ(validateJson("{}"), "");
    EXPECT_EQ(validateJson("[1,2.5,-3e4,\"x\",true,false,null]"), "");
    EXPECT_EQ(validateJson("{\"a\":{\"b\":[{}]}}"), "");
    EXPECT_EQ(validateJson("  {\"k\":\"\\u00e9\\n\"}  "), "");

    EXPECT_NE(validateJson(""), "");
    EXPECT_NE(validateJson("{"), "");
    EXPECT_NE(validateJson("{\"a\":}"), "");
    EXPECT_NE(validateJson("{'a':1}"), "");
    EXPECT_NE(validateJson("[1,]"), "");
    EXPECT_NE(validateJson("{} extra"), "");
    EXPECT_NE(validateJson("{\"a\":01}"), "");
    EXPECT_NE(validateJson(std::string("[\"\x01\"]")), "");
}

TEST(StatsJson, SerializesAndValidates)
{
    auto spec = *workloads::findWorkload("crc32.0");
    sim::ProgramContext ctx(spec);
    auto run = ctx.run({.config = *uarch::configFromName("reduced"),
                        .selector = minigraph::SelectorKind::StructAll});
    ASSERT_TRUE(run.ok);

    StatsMeta meta;
    meta.workload = "crc32.0";
    meta.config = "reduced-3w";
    meta.selector = "struct-all";
    meta.templateNames = run.templateNames;
    meta.mgInstances = run.instances;
    meta.mgTemplatesUsed = run.templatesUsed;

    std::string json = statsJson(meta, run.sim);
    EXPECT_EQ(validateJson(json), "");
    EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
    EXPECT_NE(json.find("\"lossAccounting\":{"), std::string::npos);
    EXPECT_NE(json.find("\"mg-internal-serialization\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mgTemplates\":[{"), std::string::npos);

    // Error form.
    std::string err = errorJson(meta, "boom \"quoted\"");
    EXPECT_EQ(validateJson(err), "");
    EXPECT_NE(err.find("\\\"quoted\\\""), std::string::npos);
}

TEST(RunRequestTrace, WritesValidArtefacts)
{
    std::string dir = ::testing::TempDir();
    std::string konata = dir + "/mg_export_test.kanata";
    std::string chrome = dir + "/mg_export_test.trace.json";

    auto spec = *workloads::findWorkload("crc32.0");
    sim::ProgramContext ctx(spec);
    sim::RunRequest req;
    req.config = *uarch::configFromName("reduced");
    req.selector = minigraph::SelectorKind::SlackProfile;
    req.trace = TraceConfig{0, 5000, konata, chrome};
    auto run = ctx.run(req);
    ASSERT_TRUE(run.ok) << run.error;

    std::string klog = slurp(konata);
    std::string cjson = slurp(chrome);
    ASSERT_FALSE(klog.empty());
    ASSERT_FALSE(cjson.empty());
    EXPECT_EQ(validateKonata(klog), "");
    EXPECT_EQ(validateJson(cjson), "");

    // Tracing must not perturb the simulation itself.
    auto plain = ctx.run({.config = req.config,
                          .selector = req.selector});
    EXPECT_EQ(plain.sim.cycles, run.sim.cycles);
    EXPECT_EQ(plain.sim.committedUnits, run.sim.committedUnits);

    std::remove(konata.c_str());
    std::remove(chrome.c_str());
}

} // namespace
} // namespace mg::trace
