/**
 * @file
 * Golden analyze snapshots: the `mgsim analyze` one-line JSON report
 * of every workload in the suite, compared byte-for-byte against
 * tests/golden/golden_analyze.jsonl.  The static analyzer runs no
 * simulation, so the whole 108-program suite snapshots in well under a
 * second — any change to the CFG, dominator, loop, trip-count,
 * height, candidate, or Slack-Static logic shows up as a diff here.
 * Intentional changes re-bless with tools/bless_golden.sh (or by
 * running this binary with MG_BLESS_GOLDEN=1).
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "minigraph/static_rank.h"
#include "workloads/workload.h"

#ifndef MG_GOLDEN_DIR
#error "MG_GOLDEN_DIR must point at tests/golden"
#endif

namespace mg::minigraph
{
namespace
{

constexpr const char *kGoldenPath =
    MG_GOLDEN_DIR "/golden_analyze.jsonl";

/** One JSON line per workload program, suite order. */
std::string
renderSuite(std::vector<std::string> &names)
{
    std::string out;
    for (const auto &spec : workloads::workloadList()) {
        auto built = workloads::buildWorkload(spec);
        names.push_back(spec.name());
        out += analyzeReportJson(analyzeProgram(built.program));
        out += '\n';
    }
    return out;
}

TEST(GoldenAnalyze, SuiteMatchesSnapshot)
{
    std::vector<std::string> names;
    std::string actual = renderSuite(names);

    if (const char *bless = std::getenv("MG_BLESS_GOLDEN");
        bless && *bless == '1') {
        std::ofstream out(kGoldenPath, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        out << actual;
        GTEST_SKIP() << "blessed " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(in) << "missing " << kGoldenPath
                    << " — run tools/bless_golden.sh";
    std::stringstream ss;
    ss << in.rdbuf();
    std::string expected = ss.str();

    if (expected != actual) {
        std::istringstream ea(expected), aa(actual);
        std::string el, al;
        size_t line = 0;
        while (true) {
            bool eok = static_cast<bool>(std::getline(ea, el));
            bool aok = static_cast<bool>(std::getline(aa, al));
            ++line;
            if (!eok && !aok)
                break;
            EXPECT_EQ(eok ? el : "<eof>", aok ? al : "<eof>")
                << "golden_analyze.jsonl line " << line << " ("
                << (line - 1 < names.size() ? names[line - 1]
                                            : "<extra>")
                << "); intentional analyzer changes: re-bless with "
                   "tools/bless_golden.sh";
        }
        FAIL() << "analyze snapshot diverged from " << kGoldenPath;
    }
}

} // namespace
} // namespace mg::minigraph
