/**
 * @file
 * The stats-JSON parser (trace/stats_parse.h): byte-faithful round
 * trips on real runs — the property the batch journal and the
 * isolated-run wire format rely on — plus error-record parsing and
 * malformed-input rejection.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "trace/stats_json.h"
#include "trace/stats_parse.h"

namespace mg::trace
{
namespace
{

using minigraph::SelectorKind;

/** One real run's stats-JSON line (with mini-graphs active). */
std::string
realStatsLine()
{
    auto spec = *workloads::findWorkload("crc32.0");
    sim::ProgramContext ctx(spec);
    sim::RunRequest req;
    req.workload = spec;
    req.config = *uarch::configFromName("reduced");
    req.selector = SelectorKind::StructAll;
    sim::RunResult r = ctx.run(req);
    EXPECT_TRUE(r.ok);
    return statsJson(sim::metaForRun(req, r), r.sim);
}

TEST(StatsParseTest, RoundTripIsByteIdentical)
{
    std::string line = realStatsLine();
    ParsedStats parsed;
    ASSERT_EQ(parseStatsJson(line, parsed), "");
    EXPECT_FALSE(parsed.isError);
    EXPECT_EQ(parsed.meta.workload, "crc32.0");
    EXPECT_EQ(parsed.meta.config, "reduced-3w");
    EXPECT_EQ(parsed.meta.selector, "struct-all");
    EXPECT_GT(parsed.sim.cycles, 0u);

    // The wire-format contract: re-serializing reproduces the exact
    // bytes (every float in the stats JSON derives from integers).
    EXPECT_EQ(statsJson(parsed.meta, parsed.sim), line);
}

TEST(StatsParseTest, RoundTripNoSelector)
{
    auto spec = *workloads::findWorkload("bitcount.0");
    sim::ProgramContext ctx(spec);
    sim::RunRequest req;
    req.workload = spec;
    req.config = *uarch::configFromName("full");
    sim::RunResult r = ctx.run(req);
    ASSERT_TRUE(r.ok);
    std::string line = statsJson(sim::metaForRun(req, r), r.sim);

    ParsedStats parsed;
    ASSERT_EQ(parseStatsJson(line, parsed), "");
    EXPECT_EQ(parsed.meta.selector, "none");
    EXPECT_EQ(parsed.meta.templateNames.size(), 0u);
    EXPECT_EQ(statsJson(parsed.meta, parsed.sim), line);
}

TEST(StatsParseTest, ErrorRecordRoundTrip)
{
    StatsMeta meta;
    meta.workload = "w";
    meta.config = "c";
    meta.selector = "none";
    ErrorDetail detail;
    detail.cls = "crash";
    detail.signal = 11;
    detail.exitStatus = -1;
    detail.lastCycle = 1234;
    detail.attempts = 3;
    detail.stderrTail = "boom\nline \"two\"";
    std::string line =
        errorJson(meta, "sandbox child died on signal 11", detail);

    ParsedStats parsed;
    ASSERT_EQ(parseStatsJson(line, parsed), "");
    EXPECT_TRUE(parsed.isError);
    EXPECT_EQ(parsed.error, "sandbox child died on signal 11");
    EXPECT_EQ(parsed.detail.cls, "crash");
    EXPECT_EQ(parsed.detail.signal, 11);
    EXPECT_EQ(parsed.detail.exitStatus, -1);
    EXPECT_EQ(parsed.detail.lastCycle, 1234u);
    EXPECT_EQ(parsed.detail.attempts, 3u);
    EXPECT_EQ(parsed.detail.stderrTail, "boom\nline \"two\"");
    EXPECT_EQ(errorJson(parsed.meta, parsed.error, parsed.detail), line);
}

TEST(StatsParseTest, RejectsMalformedInput)
{
    ParsedStats parsed;
    EXPECT_NE(parseStatsJson("", parsed), "");
    EXPECT_NE(parseStatsJson("not json at all", parsed), "");
    EXPECT_NE(parseStatsJson("{\"workload\":\"w\"", parsed), "");
    EXPECT_NE(parseStatsJson("{}", parsed), "");
    EXPECT_NE(parseStatsJson("[1,2,3]", parsed), "");

    // A valid prefix with trailing garbage must not pass either.
    std::string line = realStatsLine();
    EXPECT_NE(parseStatsJson(line + "garbage", parsed), "");
}

/** The real line with one "key":value swapped for a planted value. */
std::string
withValue(const std::string &line, const std::string &key,
          const std::string &value)
{
    const std::string needle = "\"" + key + "\":";
    size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos) << "no '" << key << "' in line";
    size_t start = at + needle.size();
    size_t end = line.find_first_of(",}", start);
    return line.substr(0, start) + value + line.substr(end);
}

TEST(StatsParseTest, RejectsNonFiniteNumerics)
{
    // NaN / Infinity are not JSON and must die in the tokenizer, in
    // any numeric position.
    std::string line = realStatsLine();
    ParsedStats parsed;
    for (const char *bad : {"NaN", "nan", "Infinity", "-Infinity",
                            "inf", "-inf", "1e", "0x10"}) {
        EXPECT_NE(parseStatsJson(withValue(line, "cycles", bad),
                                 parsed),
                  "")
            << "accepted cycles:" << bad;
        EXPECT_NE(parseStatsJson(withValue(line, "ipc", bad), parsed),
                  "")
            << "accepted ipc:" << bad;
    }
}

TEST(StatsParseTest, RejectsNonIntegerCounters)
{
    // Valid JSON numbers that are corrupt for a *counter* field:
    // negatives, fractions, exponent forms, and values past 2^64.
    std::string line = realStatsLine();
    ParsedStats parsed;
    for (const char *bad :
         {"-5", "1.5", "1e3", "18446744073709551616",
          "99999999999999999999"}) {
        std::string err =
            parseStatsJson(withValue(line, "cycles", bad), parsed);
        EXPECT_NE(err, "") << "accepted cycles:" << bad;
        EXPECT_NE(err.find("cycles"), std::string::npos) << err;
    }
}

TEST(StatsParseTest, RejectsCommitWidthBeyondUint32)
{
    std::string line = realStatsLine();
    ParsedStats parsed;
    std::string err = parseStatsJson(
        withValue(line, "commitWidth", "4294967296"), parsed);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("commitWidth"), std::string::npos) << err;
    // The uint32 boundary itself is representable and must parse...
    // except that the accounting identity then fails, so sanity-check
    // only the error text, not acceptance.
    err = parseStatsJson(withValue(line, "commitWidth", "4294967295"),
                         parsed);
    EXPECT_EQ(err.find("out of uint32 range"), std::string::npos)
        << err;
}

TEST(StatsParseTest, RejectsTruncatedRealLine)
{
    std::string line = realStatsLine();
    ParsedStats parsed;
    // Chop the line at a few interior points: every prefix must fail.
    for (size_t cut : {line.size() / 4, line.size() / 2,
                       line.size() - 2}) {
        EXPECT_NE(parseStatsJson(line.substr(0, cut), parsed), "")
            << "prefix of " << cut << " bytes unexpectedly parsed";
    }
}

} // namespace
} // namespace mg::trace
