/**
 * @file
 * Correctness of the 108-program benchmark suite: every kernel, every
 * input variant, and every alternate (cross-training) input set must
 * run to completion on the functional core and reproduce its reference
 * checksum (a C++ model for the assembly suites, the AST interpreter
 * for the compiled cbench suite).  Parameterised over the whole
 * catalogue.
 */

#include "workloads/workload.h"

#include <gtest/gtest.h>

#include "uarch/functional.h"

namespace mg::workloads
{
namespace
{

struct Case
{
    WorkloadSpec spec;
    bool alt;
};

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &spec : workloadList()) {
        cases.push_back({spec, false});
        cases.push_back({spec, true});
    }
    return cases;
}

class WorkloadCorrectness : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadCorrectness, MatchesReferenceResult)
{
    const Case &c = GetParam();
    BuiltWorkload built = buildWorkload(c.spec, c.alt);
    uarch::FunctionalCore core(built.program);
    uint64_t insts = core.run(1ull << 26);
    EXPECT_GT(insts, 1000u) << "suspiciously short run";

    ASSERT_TRUE(built.expected.has_value())
        << "kernel has no reference implementation";
    uint64_t raddr = built.program.dataLabels.at("result");
    EXPECT_EQ(core.memory().read(raddr, 8), *built.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, WorkloadCorrectness, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &pinfo) {
        std::string name = pinfo.param.spec.kernel + "_" +
                           std::to_string(pinfo.param.spec.variant) +
                           (pinfo.param.alt ? "_alt" : "");
        return name;
    });

TEST(WorkloadCatalogue, Has108Programs)
{
    EXPECT_EQ(workloadList().size(), 108u);
}

TEST(WorkloadCatalogue, FiveSuitesPresent)
{
    EXPECT_FALSE(suiteWorkloads("spec").empty());
    EXPECT_FALSE(suiteWorkloads("media").empty());
    EXPECT_FALSE(suiteWorkloads("comm").empty());
    EXPECT_FALSE(suiteWorkloads("mibench").empty());
    EXPECT_FALSE(suiteWorkloads("cbench").empty());
    size_t total = suiteWorkloads("spec").size() +
                   suiteWorkloads("media").size() +
                   suiteWorkloads("comm").size() +
                   suiteWorkloads("mibench").size() +
                   suiteWorkloads("cbench").size();
    EXPECT_EQ(total, 108u);
}

TEST(WorkloadCatalogue, LookupByName)
{
    auto w = findWorkload("adpcm_c.1");
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->kernel, "adpcm_c");
    EXPECT_EQ(w->variant, 1);
    EXPECT_FALSE(findWorkload("nope.9").has_value());
}

TEST(WorkloadCatalogue, ThirtySixKernels)
{
    EXPECT_EQ(kernelNames().size(), 36u);
}

TEST(WorkloadCatalogue, AltInputDiffersFromPrimary)
{
    // The cross-training input must actually be a different data set.
    auto spec = *findWorkload("crc32.0");
    auto a = buildWorkload(spec, false);
    auto b = buildWorkload(spec, true);
    EXPECT_NE(a.expected, b.expected);
}

TEST(WorkloadCatalogue, VariantsDiffer)
{
    auto v0 = buildWorkload(*findWorkload("gcc_like.0"));
    auto v2 = buildWorkload(*findWorkload("gcc_like.2"));
    EXPECT_NE(v0.expected, v2.expected);
}

TEST(WorkloadCatalogue, DeterministicRebuild)
{
    auto spec = *findWorkload("sha_like.0");
    auto a = buildWorkload(spec);
    auto b = buildWorkload(spec);
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.program.code.size(), b.program.code.size());
    EXPECT_EQ(a.program.dataInit, b.program.dataInit);
}

// The compiled suite must behave like the hand-written ones: distinct
// inputs per variant and per alt flag, and byte-identical rebuilds
// (the compiler is deterministic; see FrontendDeterminism tests).
TEST(WorkloadCatalogue, CbenchAltAndVariantsDiffer)
{
    auto spec = *findWorkload("c_crc32.0");
    auto a = buildWorkload(spec, false);
    auto b = buildWorkload(spec, true);
    EXPECT_NE(a.expected, b.expected);
    auto v2 = buildWorkload(*findWorkload("c_crc32.2"));
    EXPECT_NE(a.expected, v2.expected);
}

TEST(WorkloadCatalogue, CbenchDeterministicRebuild)
{
    auto spec = *findWorkload("c_sha.1");
    auto a = buildWorkload(spec, true);
    auto b = buildWorkload(spec, true);
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.program.code.size(), b.program.code.size());
    EXPECT_EQ(a.program.dataInit, b.program.dataInit);
}

} // namespace
} // namespace mg::workloads
