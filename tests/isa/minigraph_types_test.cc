#include "isa/minigraph_types.h"

#include <gtest/gtest.h>

namespace mg::isa
{
namespace
{

/** Template: t0 = ext0 + ext1; out = t0 + ext2 (chain). */
MgTemplate
chainTemplate()
{
    MgTemplate t;
    MgConstituent a;
    a.op = Opcode::ADD;
    a.src1Kind = MgSrcKind::External;
    a.src1 = 0;
    a.src2Kind = MgSrcKind::External;
    a.src2 = 1;
    MgConstituent b;
    b.op = Opcode::ADD;
    b.src1Kind = MgSrcKind::Internal;
    b.src1 = 0;
    b.src2Kind = MgSrcKind::External;
    b.src2 = 2;
    b.producesOutput = true;
    t.ops = {a, b};
    t.numInputs = 3;
    t.hasOutput = true;
    t.outputIdx = 1;
    return t;
}

TEST(MgTemplate, TotalLatencySumsConstituents)
{
    MgTemplate t = chainTemplate();
    EXPECT_EQ(t.totalLatency(), 2u);
    t.ops[1].op = Opcode::LW;
    EXPECT_EQ(t.totalLatency(), 4u);
}

TEST(MgTemplate, SerializingInputDetection)
{
    MgTemplate t = chainTemplate();
    // Inputs 0 and 1 feed only the first constituent: not serializing.
    EXPECT_FALSE(t.inputIsSerializing(0));
    EXPECT_FALSE(t.inputIsSerializing(1));
    // Input 2 feeds the second constituent: serializing.
    EXPECT_TRUE(t.inputIsSerializing(2));
    EXPECT_TRUE(t.hasSerializingInput());
}

TEST(MgTemplate, NoSerializingInputWhenAllFeedFirst)
{
    MgTemplate t = chainTemplate();
    t.ops[1].src2Kind = MgSrcKind::None;
    EXPECT_FALSE(t.hasSerializingInput());
}

TEST(MgTemplate, HashEqualForEqualTemplates)
{
    MgTemplate a = chainTemplate();
    MgTemplate b = chainTemplate();
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
}

TEST(MgTemplate, HashDiffersOnImmediate)
{
    MgTemplate a = chainTemplate();
    MgTemplate b = chainTemplate();
    b.ops[0].imm = 42;
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(MgTemplate, HashDiffersOnOpcode)
{
    MgTemplate a = chainTemplate();
    MgTemplate b = chainTemplate();
    b.ops[1].op = Opcode::XOR;
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(MgBinaryInfo, InstanceLookup)
{
    MgBinaryInfo info;
    MgInstance inst;
    inst.handlePc = 10;
    inst.templateIdx = 0;
    info.instances.emplace(10, inst);
    EXPECT_NE(info.instanceAt(10), nullptr);
    EXPECT_EQ(info.instanceAt(11), nullptr);
}

} // namespace
} // namespace mg::isa
