#include "isa/opcodes.h"

#include <gtest/gtest.h>

namespace mg::isa
{
namespace
{

TEST(Opcodes, MnemonicRoundTrip)
{
    for (size_t i = 0; i < kNumOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        auto parsed = parseMnemonic(mnemonic(op));
        ASSERT_TRUE(parsed.has_value()) << mnemonic(op);
        EXPECT_EQ(*parsed, op);
    }
}

TEST(Opcodes, ParseUnknownFails)
{
    EXPECT_FALSE(parseMnemonic("bogus").has_value());
    EXPECT_FALSE(parseMnemonic("").has_value());
}

TEST(Opcodes, Classification)
{
    EXPECT_TRUE(isCondBranch(Opcode::BEQ));
    EXPECT_TRUE(isCondBranch(Opcode::BGEU));
    EXPECT_FALSE(isCondBranch(Opcode::J));
    EXPECT_TRUE(isControl(Opcode::J));
    EXPECT_TRUE(isControl(Opcode::JALR));
    EXPECT_FALSE(isControl(Opcode::ADD));
    EXPECT_TRUE(isLoad(Opcode::LBU));
    EXPECT_TRUE(isStore(Opcode::SD));
    EXPECT_TRUE(isMem(Opcode::LW));
    EXPECT_FALSE(isMem(Opcode::XOR));
}

TEST(Opcodes, ExecClasses)
{
    EXPECT_EQ(opInfo(Opcode::ADD).execClass, ExecClass::IntAlu);
    EXPECT_EQ(opInfo(Opcode::MUL).execClass, ExecClass::IntComplex);
    EXPECT_EQ(opInfo(Opcode::DIV).execClass, ExecClass::IntComplex);
    EXPECT_EQ(opInfo(Opcode::LW).execClass, ExecClass::MemRead);
    EXPECT_EQ(opInfo(Opcode::SW).execClass, ExecClass::MemWrite);
    EXPECT_EQ(opInfo(Opcode::BNE).execClass, ExecClass::Control);
    EXPECT_EQ(opInfo(Opcode::NOP).execClass, ExecClass::Nop);
    EXPECT_EQ(opInfo(Opcode::MGHANDLE).execClass, ExecClass::MgHandle);
}

TEST(Opcodes, Latencies)
{
    EXPECT_EQ(opInfo(Opcode::ADD).latency, 1u);
    EXPECT_EQ(opInfo(Opcode::MUL).latency, 4u);
    EXPECT_EQ(opInfo(Opcode::DIV).latency, 12u);
    EXPECT_EQ(opInfo(Opcode::LD).latency, 3u);
}

TEST(Opcodes, RegisterUsageFlags)
{
    EXPECT_TRUE(opInfo(Opcode::ADD).readsRs1);
    EXPECT_TRUE(opInfo(Opcode::ADD).readsRs2);
    EXPECT_TRUE(opInfo(Opcode::ADD).writesRd);
    EXPECT_FALSE(opInfo(Opcode::ADDI).readsRs2);
    EXPECT_FALSE(opInfo(Opcode::LI).readsRs1);
    EXPECT_FALSE(opInfo(Opcode::SW).writesRd);
    EXPECT_TRUE(opInfo(Opcode::SW).readsRs2);
    EXPECT_TRUE(opInfo(Opcode::JAL).writesRd);
    EXPECT_FALSE(opInfo(Opcode::J).writesRd);
}

} // namespace
} // namespace mg::isa
