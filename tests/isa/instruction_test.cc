#include "isa/instruction.h"

#include <gtest/gtest.h>

namespace mg::isa
{
namespace
{

TEST(Instruction, SrcRegsSkipsZeroRegister)
{
    Instruction i = makeRRR(Opcode::ADD, 3, 0, 5);
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.count, 1u);
    EXPECT_EQ(srcs.regs[0], 5);
}

TEST(Instruction, SrcRegsImmediateForm)
{
    Instruction i = makeRRI(Opcode::ADDI, 3, 4, 10);
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.count, 1u);
    EXPECT_EQ(srcs.regs[0], 4);
}

TEST(Instruction, DestRegZeroIsNone)
{
    Instruction i = makeRRR(Opcode::ADD, 0, 1, 2);
    EXPECT_EQ(i.destReg(), -1);
}

TEST(Instruction, StoreHasNoDest)
{
    Instruction i = makeStore(Opcode::SW, 2, 1, 0);
    EXPECT_EQ(i.destReg(), -1);
    auto srcs = i.srcRegs();
    EXPECT_EQ(srcs.count, 2u);
}

TEST(Instruction, HandleSrcsFollowNumSrcs)
{
    Instruction h;
    h.op = Opcode::MGHANDLE;
    h.rs1 = 4;
    h.rs2 = 5;
    h.rs3 = 6;
    h.numSrcs = 2;
    auto srcs = h.srcRegs();
    ASSERT_EQ(srcs.count, 2u);
    EXPECT_EQ(srcs.regs[0], 4);
    EXPECT_EQ(srcs.regs[1], 5);
}

TEST(Instruction, HandleDestRespectsHasDest)
{
    Instruction h;
    h.op = Opcode::MGHANDLE;
    h.rd = 9;
    h.hasDest = false;
    EXPECT_EQ(h.destReg(), -1);
    h.hasDest = true;
    EXPECT_EQ(h.destReg(), 9);
}

TEST(Instruction, ControlClassification)
{
    EXPECT_TRUE(makeBranch(Opcode::BEQ, 1, 2, 7).isCondBranch());
    EXPECT_TRUE(makeJump(3).isDirectControl());
    Instruction jr;
    jr.op = Opcode::JR;
    jr.rs1 = 31;
    EXPECT_TRUE(jr.isIndirectControl());
    EXPECT_FALSE(jr.isDirectControl());
}

TEST(Instruction, DisassembleFormats)
{
    EXPECT_EQ(disassemble(makeRRR(Opcode::ADD, 1, 2, 3)),
              "add r1, r2, r3");
    EXPECT_EQ(disassemble(makeRRI(Opcode::ADDI, 1, 2, -5)),
              "addi r1, r2, -5");
    EXPECT_EQ(disassemble(makeLi(4, 99)), "li r4, 99");
    EXPECT_EQ(disassemble(makeLoad(Opcode::LW, 1, 2, 8)),
              "lw r1, 8(r2)");
    EXPECT_EQ(disassemble(makeStore(Opcode::SW, 1, 2, 8)),
              "sw r1, 8(r2)");
    EXPECT_EQ(disassemble(makeBranch(Opcode::BNE, 1, 2, 7)),
              "bne r1, r2, 7");
    EXPECT_EQ(disassemble(makeJump(12)), "j 12");
    EXPECT_EQ(disassemble(makeHalt()), "halt");
}

TEST(Instruction, MakeHelpersValidateOpcodes)
{
    EXPECT_DEATH(makeRRR(Opcode::ADDI, 1, 2, 3), "makeRRR");
    EXPECT_DEATH(makeLoad(Opcode::SW, 1, 2, 0), "makeLoad");
}

} // namespace
} // namespace mg::isa
