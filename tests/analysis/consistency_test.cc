/**
 * @file
 * Static-vs-dynamic consistency checker: a clean run passes, and each
 * invariant class produces a finding when violated.
 */

#include "analysis/consistency.h"

#include <gtest/gtest.h>

namespace mg::analysis
{
namespace
{

using isa::MgConstituent;
using isa::MgSrcKind;
using isa::MgTemplate;
using isa::Opcode;

/** add(ext0, ext1) -> add(internal, ext2): a serializing input on
 *  slot 2, fully chained so the internal penalty is zero. */
MgTemplate
serializingTemplate()
{
    MgTemplate t;
    t.ops.push_back({Opcode::ADD, MgSrcKind::External,
                     MgSrcKind::External, 0, 1, 0, false});
    t.ops.push_back({Opcode::ADD, MgSrcKind::Internal,
                     MgSrcKind::External, 0, 2, 0, true});
    t.numInputs = 3;
    t.hasOutput = true;
    t.outputIdx = 1;
    return t;
}

/** add(ext0, ext1) -> addi(internal): chained, no external input
 *  past the first constituent. */
MgTemplate
nonSerializingTemplate()
{
    MgTemplate t;
    t.ops.push_back({Opcode::ADD, MgSrcKind::External,
                     MgSrcKind::External, 0, 1, 0, false});
    t.ops.push_back({Opcode::ADDI, MgSrcKind::Internal,
                     MgSrcKind::None, 0, 0, 1, true});
    t.numInputs = 2;
    t.hasOutput = true;
    t.outputIdx = 1;
    return t;
}

/** Two independent all-external adds forced into series: the serial
 *  latency to the output exceeds the dataflow critical path by 1. */
MgTemplate
penaltyTemplate()
{
    MgTemplate t;
    t.ops.push_back({Opcode::ADD, MgSrcKind::External,
                     MgSrcKind::External, 0, 1, 0, false});
    t.ops.push_back({Opcode::ADD, MgSrcKind::External,
                     MgSrcKind::External, 0, 1, 0, true});
    t.numInputs = 2;
    t.hasOutput = true;
    t.outputIdx = 1;
    return t;
}

TEST(Consistency, TemplateFixturesHaveTheIntendedStatics)
{
    EXPECT_TRUE(serializingTemplate().hasSerializingInput());
    EXPECT_EQ(serializingTemplate().internalChainPenalty(), 0u);
    EXPECT_FALSE(nonSerializingTemplate().hasSerializingInput());
    EXPECT_EQ(nonSerializingTemplate().internalChainPenalty(), 0u);
    EXPECT_EQ(penaltyTemplate().internalChainPenalty(), 1u);
}

TEST(Consistency, CleanRunProducesNoFindings)
{
    auto ser = serializingTemplate();
    auto non = nonSerializingTemplate();
    auto pen = penaltyTemplate();
    std::vector<TemplateDynStats> stats{
        {&ser, 10, 37, 0},  // waits allowed: serializing input
        {&non, 4, 0, 0},    // no serializing input, no wait
        {&pen, 6, 12, 6},   // penalty 1 x 6 issues, serializing
    };
    auto rep = checkStaticDynamic(stats, 37, 6);
    EXPECT_TRUE(rep.clean()) << rep.render();
    // 3 per-template checks x 3 templates + 2 program-level checks.
    EXPECT_EQ(rep.checksRun, 11u);
    EXPECT_EQ(rep.render(), "");
}

TEST(Consistency, NeverIssuedMustNotAccumulate)
{
    auto ser = serializingTemplate();
    std::vector<TemplateDynStats> stats{{&ser, 0, 5, 0}};
    auto rep = checkStaticDynamic(stats, 0, 0);
    ASSERT_FALSE(rep.clean());
    EXPECT_EQ(rep.findings[0].where, "template 0");
    EXPECT_NE(rep.findings[0].message.find("never issued"),
              std::string::npos);
    EXPECT_NE(rep.render().find("[static-dynamic]"), std::string::npos);
}

TEST(Consistency, InternalPenaltyMustBeExactMultiple)
{
    auto pen = penaltyTemplate();
    // Penalty 1/issue, 6 issues, but 7 cycles charged.
    std::vector<TemplateDynStats> stats{{&pen, 6, 0, 7}};
    auto rep = checkStaticDynamic(stats, 0, 7);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_NE(rep.findings[0].message.find("internal-penalty"),
              std::string::npos);
}

TEST(Consistency, ExternalWaitNeedsASerializingInput)
{
    auto non = nonSerializingTemplate();
    std::vector<TemplateDynStats> stats{{&non, 4, 9, 0}};
    auto rep = checkStaticDynamic(stats, 9, 0);
    // Finding for the impossible wait, plus the program-level
    // mg-external bucket with no serializing template to blame.
    ASSERT_EQ(rep.findings.size(), 2u);
    EXPECT_NE(rep.findings[0].message.find("no serializing input"),
              std::string::npos);
    EXPECT_EQ(rep.findings[1].where, "program");
}

TEST(Consistency, InternalLossNeedsAPenaltyTemplate)
{
    auto ser = serializingTemplate(); // penalty 0
    std::vector<TemplateDynStats> stats{{&ser, 3, 2, 0}};
    auto rep = checkStaticDynamic(stats, 2, 50);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].where, "program");
    EXPECT_NE(rep.findings[0].message.find("mg-internal"),
              std::string::npos);
}

TEST(Consistency, ExternalLossNeedsASerializingTemplate)
{
    auto non = nonSerializingTemplate();
    std::vector<TemplateDynStats> stats{{&non, 3, 0, 0}};
    auto rep = checkStaticDynamic(stats, 25, 0);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].where, "program");
    EXPECT_NE(rep.findings[0].message.find("mg-external"),
              std::string::npos);
}

TEST(Consistency, EmptyRunIsTriviallyClean)
{
    auto rep = checkStaticDynamic({}, 0, 0);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.checksRun, 2u);
}

} // namespace
} // namespace mg::analysis
