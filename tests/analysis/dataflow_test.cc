/**
 * @file
 * Reaching definitions, def-use chains, and readiness heights —
 * straight-line chains, merges at joins, dead definitions, loop
 * recurrences saturating at the height cap, and unreachable code.
 */

#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "assembler/assembler.h"
#include "assembler/cfg.h"

namespace mg::analysis
{
namespace
{

using assembler::Cfg;
using assembler::Program;

struct Built
{
    Program prog;
    Cfg cfg;
    Dominators dom;
    Dataflow flow;

    explicit Built(const std::string &src)
        : prog(assembler::assemble(src)), cfg(prog), dom(cfg),
          flow(cfg, dom)
    {
    }
};

TEST(Dataflow, StraightLineDefUseChain)
{
    // pc0: li r1 (lat 1); pc1: addi r2 <- r1 (lat 1); pc2: halt.
    Built b("li r1, 5\n"
            "addi r2, r1, 1\n"
            "halt\n");
    ASSERT_EQ(b.flow.defSites().size(), 2u);
    EXPECT_EQ(b.flow.defSites()[0], 0u);
    EXPECT_EQ(b.flow.defSites()[1], 1u);

    auto reach = b.flow.reachingDefs(1, 1);
    ASSERT_EQ(reach.size(), 1u);
    EXPECT_EQ(reach[0], 0u);

    const auto &uses = b.flow.usesOf(0);
    ASSERT_EQ(uses.size(), 1u);
    EXPECT_EQ(uses[0], 1u);

    // r2 is never read: its definition is dead.
    EXPECT_FALSE(b.flow.defIsDead(0));
    EXPECT_TRUE(b.flow.defIsDead(1));

    // Heights: li = 1; addi = value(r1) + 1 = 2.
    EXPECT_EQ(b.flow.heightOf(0), 1u);
    EXPECT_EQ(b.flow.valueHeightAt(1, 1), 1u);
    EXPECT_EQ(b.flow.heightOf(1), 2u);
    EXPECT_EQ(b.flow.maxHeight(), 2u);
    EXPECT_FALSE(b.flow.saturated());
}

TEST(Dataflow, LaterDefKillsEarlierSameReg)
{
    Built b("li r1, 1\n"
            "li r1, 2\n"
            "addi r2, r1, 0\n"
            "halt\n");
    auto reach = b.flow.reachingDefs(2, 1);
    ASSERT_EQ(reach.size(), 1u);
    EXPECT_EQ(reach[0], 1u);
    // The killed first def has no readers.
    EXPECT_TRUE(b.flow.defIsDead(0));
    EXPECT_FALSE(b.flow.defIsDead(1));
}

TEST(Dataflow, BothArmsReachTheJoin)
{
    // r3 defined in both arms of a diamond; both defs reach the use.
    Built b("      bne r1, r2, other\n"
            "      li r3, 1\n"
            "      j join\n"
            "other: li r3, 2\n"
            "join: addi r4, r3, 0\n"
            "      halt\n");
    auto reach = b.flow.reachingDefs(4, 3);
    std::sort(reach.begin(), reach.end());
    ASSERT_EQ(reach.size(), 2u);
    EXPECT_EQ(reach[0], 1u);
    EXPECT_EQ(reach[1], 3u);
    // ... and symmetrically each def's use list has the join.
    ASSERT_EQ(b.flow.usesOf(1).size(), 1u);
    EXPECT_EQ(b.flow.usesOf(1)[0], 4u);
    ASSERT_EQ(b.flow.usesOf(3).size(), 1u);
    EXPECT_EQ(b.flow.usesOf(3)[0], 4u);

    // The join's value height is the max over both arms (each li = 1).
    EXPECT_EQ(b.flow.valueHeightAt(4, 3), 1u);
}

TEST(Dataflow, InitialRegisterStateReachesAsNoDefs)
{
    // r7 is never defined: only the loader-initialised state reaches,
    // reported as an empty def list and height 0.
    Built b("addi r2, r7, 1\nhalt\n");
    EXPECT_TRUE(b.flow.reachingDefs(0, 7).empty());
    EXPECT_EQ(b.flow.valueHeightAt(0, 7), 0u);
    EXPECT_EQ(b.flow.heightOf(0), 1u);
}

TEST(Dataflow, LoadLatencyEntersTheHeight)
{
    // lw latency is 3; the dependent addi sits at 3 + 1.
    Built b("lw r1, 0(r2)\n"
            "addi r3, r1, 1\n"
            "halt\n");
    EXPECT_EQ(b.flow.heightOf(0), 3u);
    EXPECT_EQ(b.flow.valueHeightAt(1, 1), 3u);
    EXPECT_EQ(b.flow.heightOf(1), 4u);
}

TEST(Dataflow, LoopRecurrenceSaturatesAtTheCap)
{
    // r1 += 1 around a back edge: a loop-carried dependence cycle
    // pushes the height fixpoint to the saturation cap.
    Built b("      li r1, 0\n"
            "loop: addi r1, r1, 1\n"
            "      bne r1, r2, loop\n"
            "      halt\n");
    EXPECT_TRUE(b.flow.saturated());
    EXPECT_EQ(b.flow.heightOf(1), kHeightCap);
    EXPECT_EQ(b.flow.valueHeightAt(1, 1), kHeightCap);
    EXPECT_EQ(b.flow.maxHeight(), kHeightCap);

    // The recurrence def reaches its own PC around the back edge.
    auto reach = b.flow.reachingDefs(1, 1);
    std::sort(reach.begin(), reach.end());
    ASSERT_EQ(reach.size(), 2u);
    EXPECT_EQ(reach[0], 0u); // li from the preheader
    EXPECT_EQ(reach[1], 1u); // itself, loop-carried
}

TEST(Dataflow, LoopInvariantStaysFinite)
{
    // r5 is defined once outside the loop and only *read* inside:
    // no recurrence through it, so its consumer's height is finite.
    Built b("      li r5, 7\n"
            "      li r1, 0\n"
            "loop: addi r6, r5, 1\n"
            "      addi r1, r1, 1\n"
            "      bne r1, r2, loop\n"
            "      halt\n");
    EXPECT_EQ(b.flow.valueHeightAt(2, 5), 1u);
    EXPECT_EQ(b.flow.heightOf(2), 2u);
    // The induction register still saturates.
    EXPECT_EQ(b.flow.heightOf(3), kHeightCap);
}

TEST(Dataflow, UnreachableBlockHasZeroHeights)
{
    Built b("j skip\n"
            "addi r1, r1, 1\n"
            "skip: halt\n");
    EXPECT_EQ(b.flow.heightOf(1), 0u);
    EXPECT_EQ(b.flow.valueHeightAt(1, 1), 0u);
}

TEST(Dataflow, ZeroRegisterIsNeverADef)
{
    // Branches/stores define nothing; r0 reads are height 0.
    Built b("sw r1, 0(r2)\n"
            "addi r3, r0, 1\n"
            "halt\n");
    ASSERT_EQ(b.flow.defSites().size(), 1u);
    EXPECT_EQ(b.flow.defSites()[0], 1u);
    EXPECT_EQ(b.flow.valueHeightAt(1, isa::kZeroReg), 0u);
}

} // namespace
} // namespace mg::analysis
