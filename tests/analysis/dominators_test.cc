/**
 * @file
 * Dominator-tree edge cases the static analyzer must survive:
 * single-block programs, diamonds, unreachable blocks, fallthrough
 * into a labeled block, and loops (header dominating the latch).
 */

#include "analysis/dominators.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "assembler/cfg.h"

namespace mg::analysis
{
namespace
{

using assembler::Cfg;
using assembler::Program;

TEST(Dominators, SingleBlockProgram)
{
    Program p = assembler::assemble("nop\nnop\nhalt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 1u);
    Dominators dom(cfg);
    EXPECT_EQ(dom.entry(), 0u);
    EXPECT_TRUE(dom.reachable(0));
    EXPECT_EQ(dom.idom(0), kNoBlock);
    EXPECT_TRUE(dom.dominates(0, 0));
    EXPECT_EQ(dom.reachableCount(), 1u);
    ASSERT_EQ(dom.rpoOrder().size(), 1u);
    EXPECT_EQ(dom.rpoOrder()[0], 0u);
}

TEST(Dominators, DiamondJoinDominatedOnlyByFork)
{
    // b0: branch; b1: then; b2: else; b3: join.
    Program p = assembler::assemble("      bne r1, r2, other\n"
                                    "      addi r3, r3, 1\n"
                                    "      j join\n"
                                    "other: addi r4, r4, 1\n"
                                    "join: halt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 4u);
    Dominators dom(cfg);
    uint32_t b0 = cfg.blockIdOf(0);
    uint32_t b1 = cfg.blockIdOf(1);
    uint32_t b2 = cfg.blockIdOf(3);
    uint32_t b3 = cfg.blockIdOf(4);

    EXPECT_EQ(dom.idom(b1), b0);
    EXPECT_EQ(dom.idom(b2), b0);
    // Join: neither arm dominates it, only the fork does.
    EXPECT_EQ(dom.idom(b3), b0);
    EXPECT_TRUE(dom.dominates(b0, b3));
    EXPECT_FALSE(dom.dominates(b1, b3));
    EXPECT_FALSE(dom.dominates(b2, b3));
    // Dominance is reflexive on reachable blocks.
    EXPECT_TRUE(dom.dominates(b3, b3));
}

TEST(Dominators, UnreachableBlockHasNoDominatorInfo)
{
    // The nop after the jump is dead code that falls through into
    // the labeled halt block.
    Program p = assembler::assemble("j skip\n"
                                    "nop\n"
                                    "skip: halt\n");
    Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 3u);
    Dominators dom(cfg);
    uint32_t dead = cfg.blockIdOf(1);
    uint32_t skip = cfg.blockIdOf(2);

    EXPECT_FALSE(dom.reachable(dead));
    EXPECT_EQ(dom.idom(dead), kNoBlock);
    EXPECT_EQ(dom.rpo(dead), kNoBlock);
    // Unreachable blocks dominate nothing and are dominated by nothing.
    EXPECT_FALSE(dom.dominates(dead, skip));
    EXPECT_FALSE(dom.dominates(0, dead));
    EXPECT_FALSE(dom.dominates(dead, dead));
    EXPECT_EQ(dom.reachableCount(), 2u);

    // The reachable join still has the entry as idom even though it
    // also has an (unreachable) fallthrough predecessor.
    EXPECT_TRUE(dom.reachable(skip));
    EXPECT_EQ(dom.idom(skip), cfg.blockIdOf(0));
}

TEST(Dominators, FallthroughIntoLabeledBlock)
{
    // The label splits a straight line; the first block dominates
    // the second through the fallthrough edge.
    Program p = assembler::assemble("      addi r1, r1, 1\n"
                                    "next: addi r2, r2, 1\n"
                                    "      bne r1, r2, next\n"
                                    "      halt\n");
    Cfg cfg(p);
    Dominators dom(cfg);
    uint32_t b0 = cfg.blockIdOf(0);
    uint32_t b1 = cfg.blockIdOf(1);
    EXPECT_EQ(dom.idom(b1), b0);
    EXPECT_TRUE(dom.dominates(b0, b1));
    EXPECT_FALSE(dom.dominates(b1, b0));
}

TEST(Dominators, LoopHeaderDominatesLatch)
{
    Program p = assembler::assemble("      li r1, 0\n"
                                    "loop: addi r1, r1, 1\n"
                                    "      bne r1, r2, loop\n"
                                    "      halt\n");
    Cfg cfg(p);
    Dominators dom(cfg);
    uint32_t pre = cfg.blockIdOf(0);
    uint32_t body = cfg.blockIdOf(1);
    EXPECT_TRUE(dom.dominates(pre, body));
    EXPECT_EQ(dom.idom(body), pre);
    // Self-loop: the body block is both header and latch.
    EXPECT_TRUE(dom.dominates(body, body));
}

TEST(Dominators, RpoOrderStartsAtEntryAndCoversReachable)
{
    Program p = assembler::assemble("      bne r1, r2, other\n"
                                    "      j join\n"
                                    "other: nop\n"
                                    "join: halt\n");
    Cfg cfg(p);
    Dominators dom(cfg);
    const auto &order = dom.rpoOrder();
    ASSERT_FALSE(order.empty());
    EXPECT_EQ(order.front(), dom.entry());
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(dom.rpo(order[i]), i);
}

} // namespace
} // namespace mg::analysis
