/**
 * @file
 * Natural-loop detection, static trip-count estimation, and block
 * frequency — including the irreducible-loop and unreachable-block
 * edge cases.
 */

#include "analysis/loops.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "assembler/cfg.h"

namespace mg::analysis
{
namespace
{

using assembler::Cfg;
using assembler::Program;

struct Built
{
    Program prog;
    Cfg cfg;
    Dominators dom;
    LoopInfo loops;

    explicit Built(const std::string &src)
        : prog(assembler::assemble(src)), cfg(prog), dom(cfg),
          loops(cfg, dom)
    {
    }
};

TEST(Loops, LoopFreeProgram)
{
    Built b("nop\nbne r1, r2, skip\nnop\nskip: halt\n");
    EXPECT_TRUE(b.loops.loops().empty());
    EXPECT_EQ(b.loops.maxDepth(), 0u);
    EXPECT_EQ(b.loops.irreducibleEdges(), 0u);
    for (uint32_t blk = 0; blk < b.cfg.blocks().size(); ++blk) {
        EXPECT_EQ(b.loops.loopDepthOf(blk), 0u);
        EXPECT_EQ(b.loops.frequencyOf(blk), 1u);
    }
}

TEST(Loops, CountedLoopGetsExactTripCount)
{
    // i = 0; do { i += 1 } while (i != 8): exactly 8 iterations.
    Built b("      li r1, 0\n"
            "      li r2, 8\n"
            "loop: addi r1, r1, 1\n"
            "      bne r1, r2, loop\n"
            "      halt\n");
    ASSERT_EQ(b.loops.loops().size(), 1u);
    const Loop &l = b.loops.loops()[0];
    EXPECT_TRUE(l.tripCountExact);
    EXPECT_EQ(l.tripCount, 8u);
    EXPECT_EQ(l.depth, 1u);
    EXPECT_EQ(l.parent, -1);

    uint32_t body = b.cfg.blockIdOf(2);
    EXPECT_EQ(b.loops.frequencyOf(body), 8u);
    // Pre-header and exit execute once.
    EXPECT_EQ(b.loops.frequencyOf(b.cfg.blockIdOf(0)), 1u);
    EXPECT_EQ(b.loops.frequencyOf(b.cfg.blockIdOf(4)), 1u);
}

TEST(Loops, CountingDownBltPatterns)
{
    // i = 10; do { i -= 2 } while (i >= 1): i = 10,8,6,4,2 -> 5 trips.
    Built down("      li r1, 10\n"
               "      li r2, 1\n"
               "loop: addi r1, r1, -2\n"
               "      bge r1, r2, loop\n"
               "      halt\n");
    ASSERT_EQ(down.loops.loops().size(), 1u);
    EXPECT_TRUE(down.loops.loops()[0].tripCountExact);
    EXPECT_EQ(down.loops.loops()[0].tripCount, 5u);

    // i = 0; do { i += 3 } while (i < 10): i = 0,3,6,9 -> 4 trips.
    Built up("      li r1, 0\n"
             "      li r2, 10\n"
             "loop: addi r1, r1, 3\n"
             "      blt r1, r2, loop\n"
             "      halt\n");
    ASSERT_EQ(up.loops.loops().size(), 1u);
    EXPECT_TRUE(up.loops.loops()[0].tripCountExact);
    EXPECT_EQ(up.loops.loops()[0].tripCount, 4u);
}

TEST(Loops, UnknowableBoundFallsBackToDefault)
{
    // The bound register is never defined by a `li` we can see, so
    // the trip count stays at the default estimate.
    Built b("loop: addi r1, r1, 1\n"
            "      bne r1, r2, loop\n"
            "      halt\n");
    ASSERT_EQ(b.loops.loops().size(), 1u);
    EXPECT_FALSE(b.loops.loops()[0].tripCountExact);
    EXPECT_EQ(b.loops.loops()[0].tripCount, kDefaultTripCount);
}

TEST(Loops, NestedLoopsMultiplyFrequencies)
{
    // Outer 4 trips, inner 8 trips per outer iteration.
    Built b("       li r1, 0\n"
            "       li r3, 4\n"
            "       li r4, 8\n"
            "outer: li r2, 0\n"
            "inner: addi r2, r2, 1\n"
            "       bne r2, r4, inner\n"
            "       addi r1, r1, 1\n"
            "       bne r1, r3, outer\n"
            "       halt\n");
    ASSERT_EQ(b.loops.loops().size(), 2u);
    EXPECT_EQ(b.loops.maxDepth(), 2u);

    uint32_t inner_blk = b.cfg.blockIdOf(4);
    uint32_t outer_hdr = b.cfg.blockIdOf(3);
    EXPECT_EQ(b.loops.loopDepthOf(inner_blk), 2u);
    EXPECT_EQ(b.loops.loopDepthOf(outer_hdr), 1u);
    EXPECT_EQ(b.loops.frequencyOf(outer_hdr), 4u);
    EXPECT_EQ(b.loops.frequencyOf(inner_blk), 32u);

    // The inner loop's parent is the outer loop.
    const Loop &inner =
        b.loops.loops()[b.loops.innermostLoopOf(inner_blk)];
    EXPECT_EQ(inner.depth, 2u);
    ASSERT_GE(inner.parent, 0);
    EXPECT_EQ(b.loops.loops()[inner.parent].depth, 1u);
}

TEST(Loops, IrreducibleEntryIsFlaggedNotLooped)
{
    // Two blocks jumping at each other, entered from the side at
    // `b`: the retreating edge's target does not dominate its
    // source, so no natural loop forms and the edge is flagged.
    Built b("   bne r1, r2, second\n"
            "first:  nop\n"
            "   j second\n"
            "second: nop\n"
            "   bne r3, r4, first\n"
            "   halt\n");
    EXPECT_GE(b.loops.irreducibleEdges(), 1u);
    EXPECT_TRUE(b.loops.loops().empty());
}

TEST(Loops, UnreachableBlockHasZeroFrequency)
{
    Built b("j skip\n"
            "nop\n"
            "skip: halt\n");
    uint32_t dead = b.cfg.blockIdOf(1);
    EXPECT_EQ(b.loops.frequencyOf(dead), 0u);
    EXPECT_EQ(b.loops.frequencyOf(b.cfg.blockIdOf(0)), 1u);
}

TEST(Loops, SelfLoopSingleBlockHeaderIsLatch)
{
    Built b("loop: addi r1, r1, 1\n"
            "      bne r1, r2, loop\n"
            "      halt\n");
    ASSERT_EQ(b.loops.loops().size(), 1u);
    const Loop &l = b.loops.loops()[0];
    EXPECT_EQ(l.header, l.latch);
    ASSERT_EQ(l.body.size(), 1u);
    EXPECT_EQ(l.body[0], l.header);
}

} // namespace
} // namespace mg::analysis
