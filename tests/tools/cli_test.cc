/**
 * @file
 * The shared mgsim subcommand parser: one grammar for every
 * subcommand, uniform unknown-flag/bad-value complaints, and
 * parse-time cross-flag validation independent of flag order.
 */

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli.h"

namespace mg::cli
{
namespace
{

/** Environment variables that would leak into BatchOptions::fromEnv. */
const char *const kBatchEnvVars[] = {
    "MG_JOBS",    "MG_JSON",   "MG_PROGRESS", "MG_ISOLATE",
    "MG_TIMEOUT", "MG_RETRIES", "MG_BACKOFF",  "MG_JOURNAL",
    "MG_RESUME",  "MG_FAULTS", "MG_CHECKLEVEL",
};

class CliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const char *name : kBatchEnvVars) {
            if (const char *v = std::getenv(name))
                saved[name] = v;
            unsetenv(name);
        }
    }

    void
    TearDown() override
    {
        for (const char *name : kBatchEnvVars) {
            auto it = saved.find(name);
            if (it == saved.end())
                unsetenv(name);
            else
                setenv(name, it->second.c_str(), 1);
        }
    }

    /** Parse as if argv were {"mgsim", cmd.name, args...}. */
    static bool
    parse(const std::vector<std::string> &args, const Command &cmd,
          Args &out)
    {
        std::vector<std::string> full = {"mgsim", cmd.name};
        full.insert(full.end(), args.begin(), args.end());
        std::vector<char *> argv;
        argv.reserve(full.size());
        for (std::string &s : full)
            argv.push_back(s.data());
        return parseArgs(static_cast<int>(argv.size()), argv.data(), 2,
                         cmd, out);
    }

  private:
    std::map<std::string, std::string> saved;
};

Command
runLikeCommand()
{
    Command cmd;
    cmd.name = "run";
    cmd.own = {{"--config", true}, {"--verbose", false}};
    cmd.batchFlags = {"--jobs", "--json", "--isolate", "--timeout"};
    cmd.minPositional = 1;
    return cmd;
}

TEST_F(CliTest, OwnFlagsAndPositionals)
{
    Args out;
    ASSERT_TRUE(parse({"--config", "reduced", "prog", "--verbose"},
                      runLikeCommand(), out));
    EXPECT_EQ(out.get("--config"), "reduced");
    EXPECT_TRUE(out.has("--verbose"));
    EXPECT_FALSE(out.has("--config-missing"));
    ASSERT_EQ(out.positional.size(), 1u);
    EXPECT_EQ(out.positional[0], "prog");
}

TEST_F(CliTest, UnknownFlagIsUsageError)
{
    Args out;
    EXPECT_FALSE(parse({"--bogus", "prog"}, runLikeCommand(), out));
}

TEST_F(CliTest, MissingFlagValueIsUsageError)
{
    Args out;
    EXPECT_FALSE(parse({"prog", "--config"}, runLikeCommand(), out));
}

TEST_F(CliTest, MissingPositionalIsUsageError)
{
    Args out;
    EXPECT_FALSE(parse({"--verbose"}, runLikeCommand(), out));
}

TEST_F(CliTest, BatchFlagsParseIntoBatchOptions)
{
    Args out;
    ASSERT_TRUE(
        parse({"--jobs", "4", "--json", "prog"}, runLikeCommand(), out));
    EXPECT_EQ(out.batch.jobs, 4u);
    EXPECT_EQ(out.batch.src.jobs, sim::OptionSource::Flag);
    EXPECT_TRUE(out.batch.json);
    // Batch flags are not duplicated into the own-flag map.
    EXPECT_FALSE(out.has("--jobs"));
}

TEST_F(CliTest, BatchFlagValueErrorsAreUsageErrors)
{
    Args out;
    EXPECT_FALSE(parse({"--jobs", "0", "prog"}, runLikeCommand(), out));
    EXPECT_FALSE(
        parse({"--timeout", "nope", "prog"}, runLikeCommand(), out));
}

TEST_F(CliTest, TimeoutRequiresIsolateInEitherFlagOrder)
{
    // Regression: `--timeout` without `--isolate` must be rejected at
    // parse time, whichever side of the other flags it lands on.
    Args out;
    EXPECT_TRUE(parse({"--timeout", "5", "--isolate", "prog"},
                      runLikeCommand(), out));
    Args out2;
    EXPECT_TRUE(parse({"--isolate", "--timeout", "5", "prog"},
                      runLikeCommand(), out2));
    Args out3;
    EXPECT_FALSE(
        parse({"--timeout", "5", "prog"}, runLikeCommand(), out3));
    Args out4;
    EXPECT_FALSE(
        parse({"prog", "--timeout", "5"}, runLikeCommand(), out4));
}

TEST_F(CliTest, BatchFlagsOutsideTheCommandSurfaceAreUnknown)
{
    // runLikeCommand accepts no --retries; it must be treated exactly
    // like any other unknown flag.
    Args out;
    EXPECT_FALSE(
        parse({"--retries", "2", "prog"}, runLikeCommand(), out));
}

TEST_F(CliTest, EnvLayerFlowsThroughParse)
{
    setenv("MG_JOBS", "5", 1);
    Args out;
    ASSERT_TRUE(parse({"prog"}, runLikeCommand(), out));
    EXPECT_EQ(out.batch.jobs, 5u);
    EXPECT_EQ(out.batch.src.jobs, sim::OptionSource::Env);
}

TEST_F(CliTest, GetIntValidatesBoundsAndKeepsDefaults)
{
    Command cmd;
    cmd.name = "lint";
    cmd.own = {{"--budget", true}};

    // Absent flag: the default survives and parsing succeeds.
    Args absent;
    ASSERT_TRUE(parse({}, cmd, absent));
    int64_t v = 42;
    EXPECT_TRUE(getInt(absent, "lint", "--budget", 1, 512, v));
    EXPECT_EQ(v, 42);

    // Present and in range: the value lands.
    Args good;
    ASSERT_TRUE(parse({"--budget", "17"}, cmd, good));
    EXPECT_TRUE(getInt(good, "lint", "--budget", 1, 512, v));
    EXPECT_EQ(v, 17);

    // Out of range or malformed: usage error, value untouched.
    for (const char *bad : {"0", "513", "-3", "nope", "1x", ""}) {
        Args args;
        ASSERT_TRUE(parse({"--budget", bad}, cmd, args)) << bad;
        v = 42;
        EXPECT_FALSE(getInt(args, "lint", "--budget", 1, 512, v))
            << bad;
        EXPECT_EQ(v, 42) << bad;
    }
}

TEST_F(CliTest, PositiveAndNonNegativeHelpers)
{
    Command cmd;
    cmd.name = "trace";
    cmd.own = {{"--pr", true}, {"--start", true}};

    Args args;
    ASSERT_TRUE(parse({"--pr", "0", "--start", "0"}, cmd, args));
    int64_t v = 7;
    EXPECT_FALSE(getPositive(args, "trace", "--pr", v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(getNonNegative(args, "trace", "--start", v));
    EXPECT_EQ(v, 0);
}

} // namespace
} // namespace mg::cli
