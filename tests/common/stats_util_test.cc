#include "common/stats_util.h"

#include <gtest/gtest.h>

namespace mg
{
namespace
{

TEST(StatsUtil, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StatsUtil, GeomeanBasic)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatsUtil, GeomeanIsScaleInvariant)
{
    double g1 = geomean({0.5, 2.0});
    EXPECT_NEAR(g1, 1.0, 1e-12);
}

TEST(StatsUtil, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatsUtil, MinMax)
{
    std::vector<double> v{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 7.0);
    EXPECT_DOUBLE_EQ(minOf({}), 0.0);
}

TEST(StatsUtil, SCurveSortsAscending)
{
    auto s = sCurve(std::vector<double>{3.0, 1.0, 2.0});
    EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(StatsUtil, SCurveLabelledKeepsLabels)
{
    auto s = sCurve(std::vector<LabelledValue>{
        {"b", 2.0}, {"a", 1.0}, {"c", 3.0}});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].label, "a");
    EXPECT_EQ(s[2].label, "c");
}

TEST(StatsUtil, TextTableAlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(StatsUtil, FmtHelpers)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercentDelta(1.02), "+2.0%");
    EXPECT_EQ(fmtPercentDelta(0.9), "-10.0%");
}

} // namespace
} // namespace mg
