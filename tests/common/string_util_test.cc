#include "common/string_util.h"

#include <gtest/gtest.h>

namespace mg
{
namespace
{

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[2], "");
}

TEST(StringUtil, SplitTrailingDelimiter)
{
    auto v = split("a,", ',');
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[1], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty)
{
    auto v = splitWhitespace("  a \t b  c ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
}

TEST(StringUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("minigraph", "mini"));
    EXPECT_FALSE(startsWith("mini", "minigraph"));
    EXPECT_TRUE(endsWith("test.cc", ".cc"));
    EXPECT_FALSE(endsWith(".cc", "test.cc"));
}

TEST(StringUtil, ToLower)
{
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(StringUtil, ParseIntDecimalHexSign)
{
    int64_t v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("abc", v));
}

} // namespace
} // namespace mg
