#include "common/rng.h"

#include <gtest/gtest.h>

namespace mg
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // namespace
} // namespace mg
