/**
 * @file
 * Audited experiment sweep (ctest label: check).
 *
 * Runs the profile -> select -> rewrite -> simulate pipeline with
 * CheckLevel::Full forced on, across baseline and representative
 * selectors on both paper machines.  The auditor is always compiled
 * in, so this target audits the real experiment path regardless of
 * whether the tree was configured with -DMG_CHECKS=ON.
 */

#include <gtest/gtest.h>

#include "minigraph/selectors.h"
#include "sim/experiment.h"
#include "uarch/config.h"
#include "workloads/workload.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

class CheckedSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CheckedSuite, PipelineRunsCleanUnderFullAudit)
{
    auto spec = workloads::findWorkload(GetParam());
    ASSERT_TRUE(spec);
    ProgramContext ctx(*spec);

    const std::optional<SelectorKind> selectors[] = {
        std::nullopt, // baseline
        SelectorKind::StructAll,
        SelectorKind::StructBounded,
        SelectorKind::SlackProfile,
        SelectorKind::SlackDynamic,
    };
    for (const auto &config_name : {"full", "reduced"}) {
        auto config = uarch::configFromName(config_name);
        ASSERT_TRUE(config);
        config->checkLevel = uarch::CheckLevel::Full;
        for (const auto &kind : selectors) {
            RunRequest req;
            req.config = *config;
            req.selector = kind;
            RunResult r = ctx.run(req);
            EXPECT_TRUE(r.ok)
                << GetParam() << " / " << config_name << " / "
                << (kind ? minigraph::nameOf(*kind) : "baseline")
                << ": " << r.error;
            EXPECT_GT(r.sim.cycles, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CheckedSuite,
                         ::testing::Values("crc32.0", "bitcount.1",
                                           "dijkstra_like.2",
                                           "adpcm_c.0"),
                         [](const auto &pinfo) {
                             std::string n = pinfo.param;
                             for (char &c : n)
                                 if (c == '.')
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace mg::sim
