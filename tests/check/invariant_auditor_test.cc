/**
 * @file
 * Invariant-auditor tests: clean runs audit clean (and identically to
 * unaudited runs), and seeded faults — injected into live pipeline
 * state through the Core's audit test hook — trip the auditor with
 * the right violation class.
 */

#include "check/invariant_auditor.h"

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "minigraph/rewriter.h"
#include "minigraph/selection.h"
#include "profile/exec_counts.h"
#include "uarch/core.h"
#include "workloads/workload.h"

namespace mg::uarch
{

/** Test-only backdoor: reach Core's private pipeline state. */
struct CoreTestAccess
{
    static uint64_t cycle(Core &c) { return c.cycle; }
    static uint64_t headSeq(Core &c) { return c.headSeq; }
    static uint64_t tailSeq(Core &c) { return c.tailSeq; }
    static uint32_t &freePhys(Core &c) { return c.freePhys; }
    static std::vector<uint64_t> &iq(Core &c) { return c.iq; }
    static std::vector<DynInst> &rob(Core &c) { return c.rob; }
    static SimResult &res(Core &c) { return c.res; }

    static std::array<uint64_t, isa::kNumArchRegs> &
    renameMap(Core &c)
    {
        return c.renameMap;
    }

    static DynInst &
    robAt(Core &c, uint64_t seq)
    {
        return c.rob[seq % c.rob.size()];
    }
};

} // namespace mg::uarch

namespace mg::check
{
namespace
{

using uarch::Core;
using uarch::CoreConfig;
using uarch::CoreTestAccess;

assembler::Program
testProgram()
{
    auto spec = workloads::findWorkload("bitcount.0");
    EXPECT_TRUE(spec);
    return workloads::buildWorkload(*spec).program;
}

CoreConfig
auditedConfig(uarch::CheckLevel level)
{
    CoreConfig cfg = uarch::fullConfig();
    cfg.checkLevel = level;
    return cfg;
}

/**
 * Run the program with `fault` applied once, as soon as its
 * precondition holds after `after_cycle`, and return the auditor's
 * message (failing the test if nothing trips).
 */
template <typename Fault>
std::string
messageFromFault(uarch::CheckLevel level, Fault fault,
                 uint64_t after_cycle = 50)
{
    assembler::Program prog = testProgram();
    Core core(auditedConfig(level), prog);
    bool injected = false;
    core.setAuditTestHook([&](Core &c) {
        if (injected || CoreTestAccess::cycle(c) < after_cycle)
            return;
        injected = fault(c);
    });
    try {
        core.run();
    } catch (const CheckError &e) {
        EXPECT_TRUE(injected) << "auditor tripped before the fault: "
                              << e.what();
        return e.what();
    }
    ADD_FAILURE() << "fault did not trip the auditor";
    return "";
}

TEST(InvariantAuditor, CleanBaselineRunAuditsClean)
{
    assembler::Program prog = testProgram();
    Core audited(auditedConfig(uarch::CheckLevel::Full), prog);
    uarch::SimResult want;
    {
        Core plain(auditedConfig(uarch::CheckLevel::Off), prog);
        want = plain.run();
    }
    uarch::SimResult got;
    ASSERT_NO_THROW(got = audited.run());
    // Auditing must observe, never perturb.
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.originalInsts, want.originalInsts);
}

TEST(InvariantAuditor, CleanMiniGraphRunAuditsClean)
{
    assembler::Program prog = testProgram();
    auto pool = minigraph::enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    auto sel = minigraph::selectGreedy(pool, counts, 512);
    ASSERT_FALSE(sel.chosen.empty());
    auto rw = minigraph::rewrite(prog, sel.chosen);

    Core core(auditedConfig(uarch::CheckLevel::Full), rw.program,
              &rw.info);
    uarch::SimResult res;
    ASSERT_NO_THROW(res = core.run());
    EXPECT_GT(res.committedHandles, 0u);
}

// --- Seeded faults: each distinct violation class must be caught ----

TEST(InvariantAuditor, CatchesDoubleFreedPhysicalRegister)
{
    std::string msg = messageFromFault(
        uarch::CheckLevel::Full, [](Core &c) {
            // A register freed twice: free count no longer balances
            // the in-flight destinations.
            ++CoreTestAccess::freePhys(c);
            return true;
        });
    EXPECT_NE(msg.find("[free-list]"), std::string::npos) << msg;
}

TEST(InvariantAuditor, CatchesIssueQueueOverfill)
{
    // Cheap level: the occupancy bound alone must catch this.
    std::string msg = messageFromFault(
        uarch::CheckLevel::Cheap, [](Core &c) {
            auto &iq = CoreTestAccess::iq(c);
            if (iq.empty())
                return false;
            // Duplicate the youngest entry until the queue exceeds
            // its configured capacity (fullConfig: 30 entries).
            while (iq.size() <= 30u)
                iq.push_back(iq.back());
            return true;
        });
    EXPECT_NE(msg.find("[iq]"), std::string::npos) << msg;
}

TEST(InvariantAuditor, CatchesRobSlotCorruption)
{
    std::string msg = messageFromFault(
        uarch::CheckLevel::Full, [](Core &c) {
            if (CoreTestAccess::headSeq(c) >= CoreTestAccess::tailSeq(c))
                return false;
            // The head slot claims to hold a different seq: age
            // ordering is gone.
            CoreTestAccess::robAt(c, CoreTestAccess::headSeq(c)).seq +=
                1;
            return true;
        });
    EXPECT_NE(msg.find("[rob]"), std::string::npos) << msg;
}

TEST(InvariantAuditor, CatchesRenameMapCorruption)
{
    std::string msg = messageFromFault(
        uarch::CheckLevel::Full, [](Core &c) {
            // Map r5 to a seq that was never dispatched.
            CoreTestAccess::renameMap(c)[5] =
                CoreTestAccess::tailSeq(c);
            return true;
        });
    EXPECT_NE(msg.find("[rename]"), std::string::npos) << msg;
}

TEST(InvariantAuditor, CatchesCommitAccountingCorruption)
{
    // Cheap level: the conservation equation alone must catch this.
    std::string msg = messageFromFault(
        uarch::CheckLevel::Cheap, [](Core &c) {
            CoreTestAccess::res(c).coveredInsts += 3;
            return true;
        });
    EXPECT_NE(msg.find("[accounting]"), std::string::npos) << msg;
}

TEST(InvariantAuditor, OffLevelDoesNotAudit)
{
    assembler::Program prog = testProgram();
    Core core(auditedConfig(uarch::CheckLevel::Off), prog);
    bool injected = false;
    core.setAuditTestHook([&](Core &c) {
        if (!injected && CoreTestAccess::cycle(c) >= 50) {
            ++CoreTestAccess::freePhys(c);
            --CoreTestAccess::freePhys(c); // restore: stay harmless
            injected = true;
        }
    });
    EXPECT_NO_THROW(core.run());
    EXPECT_TRUE(injected);
}

} // namespace
} // namespace mg::check
