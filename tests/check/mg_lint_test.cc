/**
 * @file
 * Mini-graph structural linter tests.
 *
 * Two halves: hand-built *illegal* artefacts (templates breaking each
 * interface rule, tampered rewritten binaries) must produce findings
 * of the right class, and every *legal* artefact the real pipeline
 * produces — all five paper selectors across all 108 workloads — must
 * lint clean.
 */

#include "check/mg_lint.h"

#include <gtest/gtest.h>

#include <string>

#include "minigraph/candidate.h"
#include "minigraph/rewriter.h"
#include "minigraph/selection.h"
#include "minigraph/selectors.h"
#include "profile/exec_counts.h"
#include "profile/slack_profile.h"
#include "uarch/config.h"
#include "workloads/workload.h"

namespace mg::check
{
namespace
{

using isa::MgConstituent;
using isa::MgSrcKind;
using isa::MgTemplate;
using isa::Opcode;

MgConstituent
constituent(Opcode op, MgSrcKind k1 = MgSrcKind::None, uint8_t s1 = 0,
            MgSrcKind k2 = MgSrcKind::None, uint8_t s2 = 0)
{
    MgConstituent c;
    c.op = op;
    c.src1Kind = k1;
    c.src1 = s1;
    c.src2Kind = k2;
    c.src2 = s2;
    return c;
}

/** add ext0, ext1; addi internal0 -> output.  Interface-legal. */
MgTemplate
legalTemplate()
{
    MgTemplate t;
    t.ops.push_back(constituent(Opcode::ADD, MgSrcKind::External, 0,
                                MgSrcKind::External, 1));
    t.ops.push_back(
        constituent(Opcode::ADDI, MgSrcKind::Internal, 0));
    t.ops[1].producesOutput = true;
    t.numInputs = 2;
    t.hasOutput = true;
    t.outputIdx = 1;
    return t;
}

bool
hasRule(const LintReport &rep, LintRule rule)
{
    for (const auto &f : rep.findings) {
        if (f.rule == rule)
            return true;
    }
    return false;
}

TEST(MgLint, LegalTemplateIsClean)
{
    LintReport rep = lintTemplate(legalTemplate());
    EXPECT_TRUE(rep.clean()) << rep.render();
    EXPECT_EQ(rep.templatesChecked, 1u);
}

TEST(MgLint, RejectsTooManyConstituents)
{
    MgTemplate t = legalTemplate();
    while (t.size() < isa::kMaxMgSize + 1) {
        t.ops.push_back(
            constituent(Opcode::ADDI, MgSrcKind::Internal, 0));
    }
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Size));
}

TEST(MgLint, RejectsSingletonAggregate)
{
    MgTemplate t = legalTemplate();
    t.ops.resize(1);
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Size));
}

TEST(MgLint, RejectsFourRegisterInputs)
{
    // add ext0, ext1; add ext2, ext3: four external register inputs.
    MgTemplate t;
    t.ops.push_back(constituent(Opcode::ADD, MgSrcKind::External, 0,
                                MgSrcKind::External, 1));
    t.ops.push_back(constituent(Opcode::ADD, MgSrcKind::External, 2,
                                MgSrcKind::External, 3));
    t.ops[1].producesOutput = true;
    t.numInputs = 4;
    t.hasOutput = true;
    t.outputIdx = 1;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Inputs));
}

TEST(MgLint, RejectsTwoMemoryOps)
{
    MgTemplate t;
    t.ops.push_back(constituent(Opcode::LW, MgSrcKind::External, 0));
    t.ops.push_back(constituent(Opcode::LW, MgSrcKind::External, 1));
    t.ops[1].producesOutput = true;
    t.numInputs = 2;
    t.hasOutput = true;
    t.hasMem = true;
    t.outputIdx = 1;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Mem));
}

TEST(MgLint, RejectsMidGraphBranch)
{
    // beq ext0, ext1; add ext2: control transfer not last.
    MgTemplate t;
    t.ops.push_back(constituent(Opcode::BEQ, MgSrcKind::External, 0,
                                MgSrcKind::External, 1));
    t.ops.push_back(constituent(Opcode::ADD, MgSrcKind::External, 2));
    t.ops[1].producesOutput = true;
    t.numInputs = 3;
    t.hasOutput = true;
    t.outputIdx = 1;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Control));
}

TEST(MgLint, RejectsIllegalConstituentOpcodes)
{
    // Complex integer ops execute on the multi-cycle unit, not an ALU
    // pipeline; JAL writes a link register as a side effect.
    MgTemplate mul = legalTemplate();
    mul.ops[0].op = Opcode::MUL;
    EXPECT_TRUE(hasRule(lintTemplate(mul), LintRule::Opcode));

    MgTemplate jal = legalTemplate();
    jal.ops[1] = constituent(Opcode::JAL);
    jal.ops[1].producesOutput = true;
    jal.hasControl = true;
    EXPECT_TRUE(hasRule(lintTemplate(jal), LintRule::Opcode));
}

TEST(MgLint, RejectsForwardInternalEdge)
{
    // Constituent 0 reading constituent 1: a cycle.
    MgTemplate t = legalTemplate();
    t.ops[0].src1Kind = MgSrcKind::Internal;
    t.ops[0].src1 = 1;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Dataflow));
}

TEST(MgLint, RejectsInternalEdgeFromNonValueProducer)
{
    // sw produces no value; nothing may read "its result".
    MgTemplate t;
    t.ops.push_back(constituent(Opcode::SW, MgSrcKind::External, 0,
                                MgSrcKind::External, 1));
    t.ops.push_back(
        constituent(Opcode::ADDI, MgSrcKind::Internal, 0));
    t.ops[1].producesOutput = true;
    t.numInputs = 2;
    t.hasOutput = true;
    t.hasMem = true;
    t.outputIdx = 1;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Dataflow));
}

TEST(MgLint, RejectsTwoRegisterOutputs)
{
    MgTemplate t = legalTemplate();
    t.ops[0].producesOutput = true; // second marked producer
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Output));
}

TEST(MgLint, RejectsNonCanonicalExternalNumbering)
{
    // First use of slot 1 before slot 0 breaks template sharing.
    MgTemplate t = legalTemplate();
    t.ops[0].src1 = 1;
    t.ops[0].src2 = 0;
    EXPECT_TRUE(hasRule(lintTemplate(t), LintRule::Inputs));
}

TEST(MgLint, RejectsInconsistentSummaryFlags)
{
    MgTemplate mem = legalTemplate();
    mem.hasMem = true; // no memory constituent
    EXPECT_TRUE(hasRule(lintTemplate(mem), LintRule::Mem));

    MgTemplate ctrl = legalTemplate();
    ctrl.hasControl = true; // last constituent is an addi
    EXPECT_TRUE(hasRule(lintTemplate(ctrl), LintRule::Control));
}

// --- Chosen-set and binary-level rules on a real program ------------

class MgLintPipeline : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto spec = workloads::findWorkload("crc32.0");
        ASSERT_TRUE(spec);
        prog = workloads::buildWorkload(*spec).program;
        pool = minigraph::enumerateCandidates(prog);
        ASSERT_FALSE(pool.empty());
        auto counts = profile::countExecutions(prog);
        sel = minigraph::selectGreedy(pool, counts, 512);
        ASSERT_FALSE(sel.chosen.empty());
        rw = minigraph::rewrite(prog, sel.chosen);
    }

    assembler::Program prog;
    std::vector<minigraph::Candidate> pool;
    minigraph::SelectionResult sel;
    minigraph::RewrittenProgram rw;
};

TEST_F(MgLintPipeline, RealSelectionAndRewriteAreClean)
{
    LintReport rep =
        lintRewrite(prog, sel.chosen, rw.program, rw.info);
    EXPECT_TRUE(rep.clean()) << rep.render();
    EXPECT_EQ(rep.instancesChecked, rw.info.instances.size());
}

TEST_F(MgLintPipeline, DetectsOverlappingCandidates)
{
    std::vector<minigraph::Candidate> twice = {sel.chosen[0],
                                               sel.chosen[0]};
    EXPECT_TRUE(hasRule(lintChosen(prog, twice), LintRule::Overlap));
}

TEST_F(MgLintPipeline, DetectsTemplateSiteMismatch)
{
    std::vector<minigraph::Candidate> tampered = {sel.chosen[0]};
    tampered[0].tmpl.ops[0].imm += 1;
    EXPECT_TRUE(
        hasRule(lintChosen(prog, tampered), LintRule::SiteMatch));
}

TEST_F(MgLintPipeline, DetectsTamperedElidedInterior)
{
    auto broken = rw.program;
    const isa::MgInstance &mi = rw.info.instances.begin()->second;
    broken.code[mi.handlePc + 1] = isa::makeNop();
    EXPECT_TRUE(hasRule(lintBinary(broken, rw.info, &prog),
                        LintRule::Elided));
}

TEST_F(MgLintPipeline, DetectsMissingInstanceEntry)
{
    auto info = rw.info;
    info.instances.erase(info.instances.begin());
    EXPECT_TRUE(
        hasRule(lintBinary(rw.program, info, &prog), LintRule::Handle));
}

TEST_F(MgLintPipeline, DetectsBrokenOutliningJump)
{
    auto broken = rw.program;
    const isa::MgInstance &mi = rw.info.instances.begin()->second;
    const isa::MgTemplate &t = rw.info.templates[mi.templateIdx];
    // Redirect the jump-back away from the fall-through point.
    broken.code[mi.outlinedPc + t.size()] = isa::makeJump(0);
    EXPECT_TRUE(hasRule(lintBinary(broken, rw.info, &prog),
                        LintRule::Outline));
}

TEST_F(MgLintPipeline, DetectsUnfaithfulOutlinedBody)
{
    auto broken = rw.program;
    const isa::MgInstance &mi = rw.info.instances.begin()->second;
    broken.code[mi.outlinedPc].imm += 4;
    EXPECT_TRUE(hasRule(lintBinary(broken, rw.info, &prog),
                        LintRule::Outline));
}

// --- The acceptance sweep: five selectors, all workloads, all clean -

TEST(MgLintSweep, AllFiveSelectorsAllWorkloadsLintClean)
{
    using minigraph::SelectorKind;
    const SelectorKind kinds[] = {
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackProfile,
        SelectorKind::SlackDynamic,
    };
    const uarch::CoreConfig machine = uarch::fullConfig();

    size_t templates_checked = 0;
    for (const auto &spec : workloads::workloadList()) {
        assembler::Program prog =
            workloads::buildWorkload(spec).program;
        auto pool = minigraph::enumerateCandidates(prog);
        auto counts = profile::countExecutions(prog);

        // One slack profile per workload, shared by the profiled
        // selector (collected lazily: most selectors don't need it).
        std::optional<profile::SlackProfileData> prof;

        for (SelectorKind kind : kinds) {
            const profile::SlackProfileData *p = nullptr;
            if (minigraph::selectorNeedsProfile(kind)) {
                if (!prof)
                    prof = profile::profileProgram(prog, machine);
                p = &*prof;
            }
            auto filtered =
                minigraph::filterPool(pool, kind, prog, p);
            auto sel = minigraph::selectGreedy(filtered, counts, 512);
            auto rw = minigraph::rewrite(prog, sel.chosen);
            LintReport rep =
                lintRewrite(prog, sel.chosen, rw.program, rw.info);
            EXPECT_TRUE(rep.clean())
                << spec.name() << " / " << minigraph::nameOf(kind)
                << ":\n"
                << rep.render();
            templates_checked += rep.templatesChecked;
        }
    }
    // The sweep must actually have exercised the linter.
    EXPECT_GT(templates_checked, 0u);
}

} // namespace
} // namespace mg::check
