/**
 * @file
 * End-to-end tests of the full pipeline: profile -> select ->
 * rewrite -> simulate, checking architectural equivalence, coverage
 * accounting, selector orderings and the Slack-Dynamic hardware on
 * real benchmark programs.
 */

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "sim/experiment.h"
#include "uarch/functional.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

uint64_t
resultOf(const assembler::Program &prog, const isa::MgBinaryInfo *info)
{
    uarch::FunctionalCore core(prog, info);
    core.run(1ull << 26);
    return core.memory().read(prog.dataLabels.at("result"), 8);
}

class SelectorEquivalence
    : public ::testing::TestWithParam<SelectorKind>
{
};

TEST_P(SelectorEquivalence, RewrittenBinaryPreservesResults)
{
    // Three programs spanning the suites.
    for (const char *name : {"adpcm_c.0", "crc32.0", "qsort_like.0"}) {
        auto spec = *workloads::findWorkload(name);
        auto built = workloads::buildWorkload(spec);
        uint64_t want = resultOf(built.program, nullptr);

        ProgramContext ctx(built.program);
        SelectorKind kind = GetParam();
        const profile::SlackProfileData *prof = nullptr;
        if (minigraph::selectorNeedsProfile(kind))
            prof = &ctx.profileOn(uarch::reducedConfig());
        auto filtered = minigraph::filterPool(ctx.candidatePool(), kind,
                                              ctx.program(), prof);
        auto sel = minigraph::selectGreedy(filtered, ctx.counts(), 512);
        auto rp = minigraph::rewrite(ctx.program(), sel.chosen);
        EXPECT_EQ(resultOf(rp.program, &rp.info), want) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSelectors, SelectorEquivalence,
    ::testing::Values(SelectorKind::StructAll, SelectorKind::StructNone,
                      SelectorKind::StructBounded,
                      SelectorKind::SlackProfile,
                      SelectorKind::SlackProfileDelay,
                      SelectorKind::SlackProfileSial),
    [](const ::testing::TestParamInfo<SelectorKind> &pinfo) {
        std::string n = minigraph::selectorName(pinfo.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(EndToEnd, TimingRunPreservesInstructionCount)
{
    auto spec = *workloads::findWorkload("gcc_like.0");
    ProgramContext ctx(spec);
    auto base = ctx.baseline(uarch::fullConfig());
    auto run = ctx.run({.config = uarch::fullConfig(),
                        .selector = SelectorKind::StructAll});
    EXPECT_EQ(base.originalInsts, run.sim.originalInsts);
}

TEST(EndToEnd, CoverageAccountingConsistent)
{
    auto spec = *workloads::findWorkload("bitcount.0");
    ProgramContext ctx(spec);
    auto run = ctx.run({.config = uarch::reducedConfig(),
                        .selector = SelectorKind::StructAll});
    EXPECT_GT(run.coverage(), 0.2);
    EXPECT_LE(run.coverage(), 1.0);
    EXPECT_GT(run.sim.committedHandles, 0u);
    // Each handle covers 2-4 instructions.
    EXPECT_GE(run.sim.coveredInsts, 2 * run.sim.committedHandles);
    EXPECT_LE(run.sim.coveredInsts, 4 * run.sim.committedHandles);
}

TEST(EndToEnd, PoolOrderingStructNoneSubsetOfBoundedSubsetOfAll)
{
    auto spec = *workloads::findWorkload("adpcm_c.0");
    ProgramContext ctx(spec);
    auto &pool = ctx.candidatePool();
    auto none = minigraph::filterPool(pool, SelectorKind::StructNone,
                                      ctx.program(), nullptr);
    auto bounded = minigraph::filterPool(
        pool, SelectorKind::StructBounded, ctx.program(), nullptr);
    EXPECT_LE(none.size(), bounded.size());
    EXPECT_LE(bounded.size(), pool.size());
    EXPECT_LT(none.size(), pool.size()); // adpcm has serialization
}

TEST(EndToEnd, CoverageOrderingAcrossSelectors)
{
    auto spec = *workloads::findWorkload("sha_like.0");
    ProgramContext ctx(spec);
    auto red = uarch::reducedConfig();
    auto all =
        ctx.run({.config = red, .selector = SelectorKind::StructAll});
    auto none =
        ctx.run({.config = red, .selector = SelectorKind::StructNone});
    auto prof =
        ctx.run({.config = red, .selector = SelectorKind::SlackProfile});
    EXPECT_GT(all.coverage(), none.coverage());
    EXPECT_GE(all.coverage() + 1e-9, prof.coverage());
    EXPECT_GE(prof.coverage() + 1e-9, none.coverage());
}

TEST(EndToEnd, SlackDynamicDisablesSerializingGraphs)
{
    // A slow multiply chain (r2) feeding the *second* op of a window
    // whose first op is on a fast chain: a serializing mini-graph
    // whose delay actually manifests at run time.
    std::string src =
        ".data\nresult: .dword 0\n.text\n"
        "main:  li r29, 4000\n"
        "       li r2, 3\n"
        "       li r3, 5\n"
        "       li r5, 1\n"
        "loop:  mul r2, r2, r3\n"    // slow chain (complex unit)
        "       mul r2, r2, r3\n"
        "       add r5, r5, r5\n"    // fast chain
        "       andi r5, r5, 255\n"
        "       add r6, r5, r5\n"    // fast: first in the window
        "       add r7, r6, r2\n"    // slow input r2 arrives last
        "       sd r7, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    static std::deque<assembler::Program> hold;
    hold.push_back(assembler::assemble(src));
    ProgramContext ctx(hold.back());
    auto run = ctx.run({.config = uarch::reducedConfig(),
                        .selector = SelectorKind::SlackDynamic});
    EXPECT_GT(run.sim.slackDynamic.serializedIssues, 0u);
}

TEST(EndToEnd, IdealSlackDynamicAvoidsOutliningJumps)
{
    auto spec = *workloads::findWorkload("mcf_like.0");
    ProgramContext ctx(spec);
    auto red = uarch::reducedConfig();
    auto real =
        ctx.run({.config = red, .selector = SelectorKind::SlackDynamic});
    auto ideal = ctx.run(
        {.config = red, .selector = SelectorKind::IdealSlackDynamic});
    // Only the real variant fetches outlining jumps.
    if (real.sim.disabledExpansions > 0) {
        EXPECT_GT(real.sim.outliningJumps, 0u);
    }
    EXPECT_EQ(ideal.sim.outliningJumps, 0u);
}

TEST(EndToEnd, ProfileCachingIsStable)
{
    auto spec = *workloads::findWorkload("fft_like.0");
    ProgramContext ctx(spec);
    auto r1 = ctx.run({.config = uarch::reducedConfig(),
                       .selector = SelectorKind::SlackProfile});
    auto r2 = ctx.run({.config = uarch::reducedConfig(),
                       .selector = SelectorKind::SlackProfile});
    EXPECT_EQ(r1.sim.cycles, r2.sim.cycles);
}

TEST(EndToEnd, CrossTrainedProfileStillSound)
{
    // Figure-9 machinery: select with a profile from another machine
    // and check the run is still architecturally sound and performs
    // in the same ballpark.
    auto spec = *workloads::findWorkload("gsm_like.0");
    ProgramContext ctx(spec);
    auto red = uarch::reducedConfig();
    auto cross_cfg = uarch::eightWayConfig();
    auto self =
        ctx.run({.config = red, .selector = SelectorKind::SlackProfile});
    auto cross = ctx.run({.config = red,
                          .selector = SelectorKind::SlackProfile,
                          .profileConfig = cross_cfg});
    EXPECT_EQ(self.sim.originalInsts, cross.sim.originalInsts);
    double ratio = static_cast<double>(self.sim.cycles) /
                   static_cast<double>(cross.sim.cycles);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

TEST(EndToEnd, ConfigForSelectorSetsHardwareFlags)
{
    auto base = uarch::reducedConfig();
    auto c1 = configForSelector(base, SelectorKind::SlackDynamic);
    EXPECT_TRUE(c1.slackDynamicEnabled);
    EXPECT_FALSE(c1.slackDynamicIdeal);
    EXPECT_TRUE(c1.slackDynamicConsumerCheck);
    auto c2 = configForSelector(base, SelectorKind::IdealSlackDynamicSial);
    EXPECT_TRUE(c2.slackDynamicIdeal);
    EXPECT_TRUE(c2.slackDynamicSial);
    auto c3 = configForSelector(base, SelectorKind::SlackProfile);
    EXPECT_FALSE(c3.slackDynamicEnabled);
}

} // namespace
} // namespace mg::sim
