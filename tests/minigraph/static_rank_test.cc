/**
 * @file
 * The candidate-level static serialization adapter: predicted
 * buckets, the Slack-Static keep rule, and the deterministic
 * `mgsim analyze` report.
 */

#include "minigraph/static_rank.h"

#include <gtest/gtest.h>

#include <optional>

#include "assembler/assembler.h"
#include "minigraph/candidate.h"

namespace mg::minigraph
{
namespace
{

using analysis::ProgramAnalysis;
using analysis::StaticSerialBounds;
using assembler::Program;

/** Find the unique candidate starting at `first_pc` with `len`. */
std::optional<Candidate>
candidateAt(const Program &prog, const ProgramAnalysis &pa,
            isa::Addr first_pc, uint8_t len)
{
    for (const Candidate &c :
         enumerateCandidates(prog, pa.cfg(), pa.liveness())) {
        if (c.firstPc == first_pc && c.len == len)
            return c;
    }
    return std::nullopt;
}

TEST(StaticRank, NonSerializingCandidateIsAlwaysKept)
{
    // add(r1,r2) -> addi chained: externals only feed the first op.
    Program p = assembler::assemble("li r1, 1\n"
                                    "li r2, 2\n"
                                    "add r3, r1, r2\n"
                                    "addi r3, r3, 5\n"
                                    "sw r3, 0(r1)\n"
                                    "halt\n");
    ProgramAnalysis pa(p);
    auto cand = candidateAt(p, pa, 2, 2);
    ASSERT_TRUE(cand.has_value());

    StaticSerialBounds b = staticBoundsFor(*cand, pa);
    EXPECT_FALSE(b.hasSerializingInput);
    EXPECT_EQ(b.serializingHeight, 0u);
    EXPECT_EQ(b.baseHeight, 1u); // both externals are li results
    EXPECT_EQ(b.externalDelayBound(), 0u);
    EXPECT_EQ(predictedSerial(b), PredictedSerial::NonSerializing);
    EXPECT_TRUE(slackStaticKeep(*cand, pa));
}

TEST(StaticRank, BoundedKeepComparesDelayAgainstCriticalPath)
{
    // The serializing input r9 feeds the second add.  Fed by a li
    // (height 1) the extra arrival delay is within the template's
    // 2-cycle critical path and the candidate is kept...
    Program shallow = assembler::assemble("li r9, 7\n"
                                          "add r3, r1, r2\n"
                                          "add r4, r3, r9\n"
                                          "sw r4, 0(r1)\n"
                                          "halt\n");
    ProgramAnalysis paS(shallow);
    auto cs = candidateAt(shallow, paS, 1, 2);
    ASSERT_TRUE(cs.has_value());
    StaticSerialBounds bs = staticBoundsFor(*cs, paS);
    EXPECT_TRUE(bs.hasSerializingInput);
    EXPECT_FALSE(bs.saturated);
    EXPECT_FALSE(bs.recurrent);
    EXPECT_EQ(bs.serializingHeight, 1u);
    EXPECT_EQ(bs.baseHeight, 0u); // r1/r2 carry initial state
    EXPECT_EQ(predictedSerial(bs), PredictedSerial::Bounded);
    ASSERT_EQ(cs->tmpl.criticalLatency(), 2u);
    EXPECT_TRUE(slackStaticKeep(*cs, paS));

    // ...fed by a 3-cycle load the delay exceeds the critical path
    // and the same shape is rejected.
    Program deep = assembler::assemble("lw r9, 0(r8)\n"
                                       "add r3, r1, r2\n"
                                       "add r4, r3, r9\n"
                                       "sw r4, 0(r1)\n"
                                       "halt\n");
    ProgramAnalysis paD(deep);
    auto cd = candidateAt(deep, paD, 1, 2);
    ASSERT_TRUE(cd.has_value());
    StaticSerialBounds bd = staticBoundsFor(*cd, paD);
    EXPECT_EQ(bd.serializingHeight, 3u);
    EXPECT_EQ(bd.externalDelayBound(), 3u);
    EXPECT_EQ(predictedSerial(bd), PredictedSerial::Bounded);
    EXPECT_FALSE(slackStaticKeep(*cd, paD));
}

TEST(StaticRank, LoopRecurrenceIsUnboundedAndRejected)
{
    // The candidate's own output r1 feeds its serializing input
    // around the loop back edge: the aggregate serializes on itself.
    Program p = assembler::assemble("      li r1, 0\n"
                                    "      li r2, 8\n"
                                    "loop: add r3, r1, r0\n"
                                    "      add r1, r3, r1\n"
                                    "      bne r1, r2, loop\n"
                                    "      halt\n");
    ProgramAnalysis pa(p);
    auto cand = candidateAt(p, pa, 2, 2);
    ASSERT_TRUE(cand.has_value());
    ASSERT_EQ(cand->outputReg, 1);

    StaticSerialBounds b = staticBoundsFor(*cand, pa);
    EXPECT_TRUE(b.hasSerializingInput);
    EXPECT_TRUE(b.recurrent);
    EXPECT_TRUE(b.saturated);
    EXPECT_EQ(predictedSerial(b), PredictedSerial::Unbounded);
    EXPECT_FALSE(slackStaticKeep(*cand, pa));
    // Static frequency of the loop body backs the ranking.
    EXPECT_EQ(b.frequency, 8u);
}

TEST(StaticRank, AnalyzeReportIsConsistentAndDeterministic)
{
    Program p = assembler::assemble("      li r1, 0\n"
                                    "      li r2, 8\n"
                                    "loop: add r3, r1, r0\n"
                                    "      add r1, r3, r1\n"
                                    "      bne r1, r2, loop\n"
                                    "      halt\n");
    p.name = "unit";
    AnalyzeReport r = analyzeProgram(p);
    EXPECT_EQ(r.program, "unit");
    EXPECT_EQ(r.instructions, 6u);
    EXPECT_EQ(r.loops, 1u);
    // The add-based step is not the addi counted-loop pattern, so the
    // trip count stays at the default estimate (which is also 8).
    EXPECT_EQ(r.exactTripCounts, 0u);
    EXPECT_EQ(r.maxLoopDepth, 1u);
    EXPECT_EQ(r.maxBlockFrequency, analysis::kDefaultTripCount);
    EXPECT_TRUE(r.saturated);
    // The buckets partition the candidate pool.
    EXPECT_EQ(r.predNonSerializing + r.predBounded + r.predUnbounded,
              r.candidates);
    EXPECT_EQ(r.structNonSerializing + r.structBounded +
                  r.structUnbounded,
              r.candidates);
    EXPECT_LE(r.slackStaticKept, r.candidates);

    // Rendering is deterministic and keeps the fixed key order.
    std::string json = analyzeReportJson(r);
    EXPECT_EQ(json, analyzeReportJson(analyzeProgram(p)));
    EXPECT_EQ(json.find("{\"program\":\"unit\",\"instructions\":6,"),
              0u);
    EXPECT_NE(json.find("\"slack_static_kept\":"), std::string::npos);
    EXPECT_EQ(json.back(), '}');
}

TEST(StaticRank, JsonEscapesQuotesAndControlChars)
{
    AnalyzeReport r;
    r.program = "we\"ird\\na\tme";
    std::string json = analyzeReportJson(r);
    EXPECT_NE(json.find("we\\\"ird\\\\na\\u0009me"), std::string::npos);
}

} // namespace
} // namespace mg::minigraph
