#include "minigraph/rewriter.h"

#include <deque>
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "minigraph/selection.h"
#include "profile/exec_counts.h"
#include "uarch/functional.h"

namespace mg::minigraph
{
namespace
{

using isa::Opcode;

struct Built
{
    assembler::Program prog;
    RewrittenProgram rp;

    Built(const std::string &src, uint32_t budget = 512)
        : prog(assembler::assemble(src))
    {
        auto pool = enumerateCandidates(prog);
        auto counts = profile::countExecutions(prog);
        auto sel = selectGreedy(pool, counts, budget);
        rp = rewrite(prog, sel.chosen);
    }
};

const char *kLoopSrc =
    "main:  li r29, 50\n"
    "       li r1, 0\n"
    "loop:  add r1, r1, r29\n"
    "       add r1, r1, r29\n"
    "       sd r1, 0(r28)\n"
    "       addi r29, r29, -1\n"
    "       bnez r29, loop\n"
    "       halt\n";

TEST(Rewriter, HandleReplacesFirstSlotElidedRest)
{
    Built b(kLoopSrc);
    ASSERT_FALSE(b.rp.info.instances.empty());
    for (const auto &[pc, inst] : b.rp.info.instances) {
        EXPECT_TRUE(b.rp.program.code[pc].isHandle());
        for (isa::Addr p = pc + 1; p < inst.pcAfter; ++p)
            EXPECT_TRUE(b.rp.program.code[p].isElided());
    }
}

TEST(Rewriter, OutlinedBodyMirrorsOriginal)
{
    Built b(kLoopSrc);
    for (const auto &[pc, inst] : b.rp.info.instances) {
        for (size_t k = 0; k < inst.constituentPcs.size(); ++k) {
            const isa::Instruction &orig =
                b.prog.code[inst.constituentPcs[k]];
            const isa::Instruction &copy =
                b.rp.program.code[inst.outlinedPc + k];
            EXPECT_EQ(isa::disassemble(orig), isa::disassemble(copy));
        }
        // Jump back to the fall-through point.
        const isa::Instruction &jb =
            b.rp.program.code[inst.outlinedPc +
                              inst.constituentPcs.size()];
        EXPECT_EQ(jb.op, Opcode::J);
        EXPECT_EQ(static_cast<isa::Addr>(jb.imm), inst.pcAfter);
    }
}

TEST(Rewriter, TemplatesDeduplicated)
{
    const char *src =
        "main:  li r29, 50\n"
        "a:     add r1, r2, r2\n"
        "       add r1, r1, r2\n"
        "       sd r1, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, a\n"
        "       li r29, 50\n"
        "b:     add r3, r2, r2\n"
        "       add r3, r3, r2\n"
        "       sd r3, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, b\n"
        "       halt\n";
    Built b(src);
    EXPECT_GT(b.rp.info.instances.size(), b.rp.info.templates.size());
}

TEST(Rewriter, HandleInterfaceEncodesRegisters)
{
    Built b(kLoopSrc);
    for (const auto &[pc, inst] : b.rp.info.instances) {
        const isa::Instruction &h = b.rp.program.code[pc];
        const isa::MgTemplate &t = b.rp.info.templates[inst.templateIdx];
        EXPECT_EQ(h.numSrcs, t.numInputs);
        EXPECT_EQ(h.hasDest, t.hasOutput);
        EXPECT_EQ(h.mgIndex, inst.templateIdx);
    }
}

TEST(Rewriter, FunctionalEquivalenceEnabled)
{
    Built b(kLoopSrc);
    uarch::FunctionalCore orig(b.prog);
    uarch::FunctionalCore mg(b.rp.program, &b.rp.info);
    orig.run();
    mg.run();
    EXPECT_EQ(orig.instCount(), mg.instCount());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        EXPECT_EQ(orig.reg(r), mg.reg(r)) << "r" << r;
}

TEST(Rewriter, FunctionalEquivalenceAllDisabled)
{
    // With every handle disabled, execution takes the outlined paths
    // (this is also what a non-mini-graph processor would do).
    Built b(kLoopSrc);
    uarch::FunctionalCore orig(b.prog);
    uarch::FunctionalCore mg(b.rp.program, &b.rp.info);
    mg.setDisableQuery([](isa::Addr) { return true; });
    orig.run();
    mg.run();
    EXPECT_EQ(orig.instCount(), mg.instCount());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        EXPECT_EQ(orig.reg(r), mg.reg(r)) << "r" << r;
}

TEST(Rewriter, BranchHandleRedirectsCorrectly)
{
    // The loop branch gets embedded in a handle; both taken and
    // fall-through paths must work.
    const char *src =
        "main:  li r29, 5\n"
        "       li r1, 0\n"
        "loop:  addi r1, r1, 3\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    Built b(src);
    bool branch_in_handle = false;
    for (const auto &t : b.rp.info.templates)
        branch_in_handle |= t.hasControl;
    ASSERT_TRUE(branch_in_handle);
    uarch::FunctionalCore mg(b.rp.program, &b.rp.info);
    mg.run();
    EXPECT_EQ(mg.reg(1), 15u);
}

TEST(Rewriter, EmptyChoiceIsIdentityPlusNoTables)
{
    assembler::Program p = assembler::assemble(kLoopSrc);
    RewrittenProgram rp = rewrite(p, {});
    EXPECT_EQ(rp.program.code.size(), p.code.size());
    EXPECT_TRUE(rp.info.templates.empty());
    EXPECT_TRUE(rp.info.instances.empty());
}

TEST(Rewriter, OverlappingChoicesPanic)
{
    assembler::Program p = assembler::assemble(kLoopSrc);
    auto pool = enumerateCandidates(p);
    // Find two overlapping candidates.
    const Candidate *a = nullptr, *b = nullptr;
    for (size_t i = 0; i < pool.size() && !b; ++i) {
        for (size_t j = i + 1; j < pool.size(); ++j) {
            if (pool[i].overlaps(pool[j])) {
                a = &pool[i];
                b = &pool[j];
                break;
            }
        }
    }
    ASSERT_NE(b, nullptr);
    EXPECT_DEATH(rewrite(p, {*a, *b}), "overlapping");
}

} // namespace
} // namespace mg::minigraph
