#include "minigraph/candidate.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::minigraph
{
namespace
{

using isa::MgSrcKind;
using isa::Opcode;

std::vector<Candidate>
enumerate(const std::string &src, CandidateOptions opts = {})
{
    assembler::Program p = assembler::assemble(src);
    return enumerateCandidates(p, opts);
}

const Candidate *
find(const std::vector<Candidate> &pool, isa::Addr pc, unsigned len)
{
    for (const auto &c : pool) {
        if (c.firstPc == pc && c.len == len)
            return &c;
    }
    return nullptr;
}

TEST(Candidates, SimpleChainWindow)
{
    // 0: li, 1: add, 2: add, 3: sd, 4: halt
    auto pool = enumerate("main: li r1, 1\n"
                          "      add r2, r1, r1\n"
                          "      add r3, r2, r2\n"
                          "      sd r3, 0(r0)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 1, 2); // [add, add]
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->tmpl.numInputs, 1u);
    EXPECT_EQ(c->outputReg, 3);
    EXPECT_EQ(c->tmpl.outputIdx, 1);
    // r2 is interior: dead after the window.
    EXPECT_TRUE(c->tmpl.ops[1].src1Kind == MgSrcKind::Internal);
}

TEST(Candidates, InteriorValueMustBeDead)
{
    // r2 is used again later: [1,2] would need two outputs.
    auto pool = enumerate("main: li r1, 1\n"
                          "      add r2, r1, r1\n"   // 1
                          "      add r3, r2, r2\n"   // 2
                          "      add r4, r2, r3\n"   // 3: r2 reused
                          "      sd r4, 0(r0)\n"
                          "      halt\n");
    EXPECT_EQ(find(pool, 1, 2), nullptr); // r2 and r3 both live out
    EXPECT_NE(find(pool, 2, 2), nullptr); // r3 interior, r4 out
}

TEST(Candidates, InputLimitEnforced)
{
    // Four distinct external inputs: illegal.
    auto pool = enumerate("main: add r5, r1, r2\n"
                          "      add r6, r5, r3\n"
                          "      add r7, r6, r4\n"
                          "      sd r7, 0(r0)\n"
                          "      halt\n");
    EXPECT_NE(find(pool, 0, 2), nullptr);  // r1,r2,r3 = 3 inputs
    EXPECT_EQ(find(pool, 0, 3), nullptr);  // r1..r4 = 4 inputs
}

TEST(Candidates, InputSlotsSharedForSameRegister)
{
    auto pool = enumerate("main: add r5, r1, r1\n"
                          "      add r6, r5, r1\n"
                          "      sd r6, 0(r0)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 0, 2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->tmpl.numInputs, 1u);
    EXPECT_EQ(c->inputRegs[0], 1);
}

TEST(Candidates, OneMemoryOpMax)
{
    auto pool = enumerate("main: lw r1, 0(r5)\n"
                          "      lw r2, 4(r5)\n"
                          "      add r3, r1, r2\n"
                          "      sd r3, 0(r0)\n"
                          "      halt\n");
    EXPECT_EQ(find(pool, 0, 2), nullptr);  // two loads
    EXPECT_NE(find(pool, 1, 2), nullptr);  // lw + add
}

TEST(Candidates, ComplexOpsExcluded)
{
    auto pool = enumerate("main: mul r1, r2, r3\n"
                          "      add r4, r1, r1\n"
                          "      sd r4, 0(r0)\n"
                          "      halt\n");
    EXPECT_EQ(find(pool, 0, 2), nullptr);
}

TEST(Candidates, BranchOnlyAtEnd)
{
    auto pool = enumerate("main: addi r1, r1, 1\n"
                          "      addi r2, r2, -1\n"
                          "      bnez r2, main\n"
                          "      halt\n");
    const Candidate *c = find(pool, 1, 2); // addi + bnez
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->tmpl.hasControl);
    EXPECT_TRUE(c->tmpl.condControl);
    // Branch target stored as displacement from the handle PC.
    EXPECT_EQ(c->tmpl.ops[1].imm, 0 - 1);
}

TEST(Candidates, WindowsNeverCrossBlockBoundaries)
{
    auto pool = enumerate("main: addi r1, r1, 1\n"
                          "      bnez r1, main\n"
                          "      addi r2, r2, 1\n" // new block
                          "      halt\n");
    // No window may contain both the branch and the next block's add.
    for (const auto &c : pool)
        EXPECT_FALSE(c.firstPc <= 1 && c.firstPc + c.len > 2);
}

TEST(Candidates, CallsAndIndirectExcluded)
{
    auto pool = enumerate("main: addi r1, r1, 1\n"
                          "      call fn\n"
                          "      halt\n"
                          "fn:   ret\n");
    for (const auto &c : pool) {
        for (unsigned k = 0; k < c.len; ++k) {
            EXPECT_NE(c.tmpl.ops[k].op, Opcode::JAL);
            EXPECT_NE(c.tmpl.ops[k].op, Opcode::JR);
        }
    }
}

TEST(Candidates, StoreOnlyGraphHasNoOutput)
{
    auto pool = enumerate("main: add r1, r2, r3\n"
                          "      sd r1, 0(r4)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 0, 2);
    ASSERT_NE(c, nullptr);
    // r1 dead after the store (never used again).
    EXPECT_EQ(c->outputReg, -1);
    EXPECT_FALSE(c->tmpl.hasOutput);
    EXPECT_TRUE(c->tmpl.hasMem);
}

TEST(Candidates, SerializationClassNonSerializing)
{
    // Chain where the only external inputs feed the first op.
    auto pool = enumerate("main: add r1, r2, r2\n"
                          "      addi r3, r1, 1\n"
                          "      sd r3, 0(r0)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 0, 2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->serialClass, SerialClass::NonSerializing);
}

TEST(Candidates, SerializationClassBoundedUpstreamInput)
{
    // Figure 4c: the serializing input feeds the output producer.
    auto pool = enumerate("main: add r1, r2, r2\n"
                          "      add r3, r1, r4\n" // ext r4, produces out
                          "      sd r3, 0(r0)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 0, 2);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->serialClass, SerialClass::Bounded);
}

TEST(Candidates, SerializationClassUnboundedDownstreamInput)
{
    // Figure 4d: output comes from the first op; the serializing
    // input feeds a later op that only produces a store.
    auto pool = enumerate("main: add r1, r2, r2\n"   // output producer
                          "      add r9, r4, r4\n"   // ext input, dead
                          "      sd r9, 0(r5)\n"
                          "      sd r1, 8(r5)\n"
                          "      halt\n");
    // Window [0,1]: r1 live-out (used at 3), r9 used at 2 -> both
    // live: illegal. Use window [0..2]: r1 out, r9 interior via sd.
    const Candidate *c = find(pool, 0, 3);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->outputReg, 1);
    EXPECT_EQ(c->serialClass, SerialClass::Unbounded);
}

TEST(Candidates, DisconnectedWithoutSerializingInputIsFine)
{
    // Two independent li ops: internally disconnected, but no
    // external input feeds a non-first op.
    auto pool = enumerate("main: li r1, 1\n"
                          "      li r2, 2\n"
                          "      sd r1, 0(r0)\n"
                          "      sd r2, 8(r0)\n"
                          "      halt\n");
    const Candidate *c = find(pool, 0, 2);
    // Both r1 and r2 live out: illegal (two outputs).
    EXPECT_EQ(c, nullptr);
}

TEST(Candidates, MaxSizeOptionRespected)
{
    CandidateOptions opts;
    opts.maxSize = 2;
    auto pool = enumerate("main: add r1, r9, r9\n"
                          "      add r1, r1, r9\n"
                          "      add r1, r1, r9\n"
                          "      add r1, r1, r9\n"
                          "      sd r1, 0(r0)\n"
                          "      halt\n",
                          opts);
    for (const auto &c : pool)
        EXPECT_LE(c.len, 2u);
}

TEST(Candidates, NoMemOptionExcludesMemory)
{
    CandidateOptions opts;
    opts.allowMem = false;
    auto pool = enumerate("main: lw r1, 0(r5)\n"
                          "      add r2, r1, r1\n"
                          "      sd r2, 0(r0)\n"
                          "      halt\n",
                          opts);
    for (const auto &c : pool)
        EXPECT_FALSE(c.tmpl.hasMem);
}

TEST(Candidates, OverlapPredicate)
{
    Candidate a, b;
    a.firstPc = 4;
    a.len = 3; // [4,7)
    b.firstPc = 6;
    b.len = 2; // [6,8)
    EXPECT_TRUE(a.overlaps(b));
    b.firstPc = 7;
    EXPECT_FALSE(a.overlaps(b));
}

} // namespace
} // namespace mg::minigraph
