/**
 * @file
 * Property tests over the real benchmark suite: every enumerated
 * candidate must satisfy the mini-graph interface invariants of §2,
 * every selection must be disjoint and within budget, and rewriting
 * with any selector must preserve architectural results.
 */

#include <deque>
#include <gtest/gtest.h>

#include "minigraph/rewriter.h"
#include "minigraph/selectors.h"
#include "profile/exec_counts.h"
#include "uarch/functional.h"
#include "workloads/workload.h"

namespace mg::minigraph
{
namespace
{

using isa::MgSrcKind;

std::vector<std::string>
kernelPrograms()
{
    // Variant 0 of every kernel: 26 diverse programs.
    std::vector<std::string> out;
    for (const auto &k : workloads::kernelNames())
        out.push_back(k + ".0");
    return out;
}

class KernelProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    static assembler::Program
    build(const std::string &name)
    {
        auto spec = workloads::findWorkload(name);
        EXPECT_TRUE(spec.has_value());
        return workloads::buildWorkload(*spec).program;
    }
};

TEST_P(KernelProperty, CandidatesSatisfyInterfaceInvariants)
{
    assembler::Program prog = build(GetParam());
    assembler::Cfg cfg(prog);
    assembler::Liveness live(cfg);
    auto pool = enumerateCandidates(prog, cfg, live);
    ASSERT_FALSE(pool.empty());

    for (const Candidate &c : pool) {
        // Size and input limits (§2).
        ASSERT_GE(c.len, 2u);
        ASSERT_LE(c.len, isa::kMaxMgSize);
        ASSERT_LE(c.tmpl.numInputs, isa::kMaxMgInputs);
        ASSERT_EQ(c.tmpl.size(), c.len);

        unsigned mem_ops = 0, controls = 0;
        for (unsigned k = 0; k < c.len; ++k) {
            const auto &op = c.tmpl.ops[k];
            mem_ops += isa::isMem(op.op);
            if (isa::isControl(op.op)) {
                ++controls;
                EXPECT_EQ(k, c.len - 1u) << "control not last";
            }
            // Internal references must point backwards.
            if (op.src1Kind == MgSrcKind::Internal) {
                EXPECT_LT(op.src1, k);
            }
            if (op.src2Kind == MgSrcKind::Internal) {
                EXPECT_LT(op.src2, k);
            }
            // External slots must be in range.
            if (op.src1Kind == MgSrcKind::External) {
                EXPECT_LT(op.src1, c.tmpl.numInputs);
            }
            if (op.src2Kind == MgSrcKind::External) {
                EXPECT_LT(op.src2, c.tmpl.numInputs);
            }
        }
        EXPECT_LE(mem_ops, 1u) << "pc " << c.firstPc;
        EXPECT_LE(controls, 1u);

        // Output declaration consistent.
        EXPECT_EQ(c.tmpl.hasOutput, c.outputReg >= 0);
        if (c.tmpl.hasOutput) {
            ASSERT_GE(c.tmpl.outputIdx, 0);
            EXPECT_TRUE(
                c.tmpl.ops[static_cast<size_t>(c.tmpl.outputIdx)]
                    .producesOutput);
            // The output value must be live after the window; the
            // other written registers must not be.
            EXPECT_TRUE(assembler::regIn(
                live.liveAfter(c.firstPc + c.len - 1),
                static_cast<unsigned>(c.outputReg)));
        }
        // Interior values: every non-output def is dead afterwards.
        for (unsigned k = 0; k < c.len; ++k) {
            const isa::Instruction &inst = prog.code[c.firstPc + k];
            int d = inst.destReg();
            if (d < 0 || d == c.outputReg)
                continue;
            // If this def survives to the window end it must be
            // overwritten inside the window; otherwise it would be a
            // second output.
            bool redefined = false;
            for (unsigned k2 = k + 1; k2 < c.len; ++k2)
                redefined |= prog.code[c.firstPc + k2].destReg() == d;
            if (!redefined) {
                EXPECT_FALSE(assembler::regIn(
                    live.liveAfter(c.firstPc + c.len - 1),
                    static_cast<unsigned>(d)))
                    << "second live-out at pc " << c.firstPc;
            }
        }
        // Windows stay inside one basic block.
        EXPECT_EQ(cfg.blockIdOf(c.firstPc),
                  cfg.blockIdOf(c.firstPc + c.len - 1));
        // Structural classification consistency.
        if (!c.tmpl.hasSerializingInput())
            EXPECT_EQ(c.serialClass, SerialClass::NonSerializing);
        else
            EXPECT_NE(c.serialClass, SerialClass::NonSerializing);
    }
}

TEST_P(KernelProperty, SelectionIsDisjointAndWithinBudget)
{
    assembler::Program prog = build(GetParam());
    auto pool = enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    for (uint32_t budget : {1u, 4u, 512u}) {
        auto sel = selectGreedy(pool, counts, budget);
        EXPECT_LE(sel.templatesUsed, budget);
        std::vector<bool> used(prog.code.size(), false);
        for (const auto &c : sel.chosen) {
            for (isa::Addr pc = c.firstPc; pc < c.pcAfter(); ++pc) {
                EXPECT_FALSE(used[pc]) << "overlap at " << pc;
                used[pc] = true;
            }
        }
    }
}

TEST_P(KernelProperty, StructAllRewriteIsArchitecturallyEquivalent)
{
    assembler::Program prog = build(GetParam());
    auto pool = enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    auto sel = selectGreedy(pool, counts, 512);
    RewrittenProgram rp = rewrite(prog, sel.chosen);

    uarch::FunctionalCore orig(prog);
    uarch::FunctionalCore mg(rp.program, &rp.info);
    orig.run(1ull << 26);
    mg.run(1ull << 26);
    EXPECT_EQ(orig.instCount(), mg.instCount());
    uint64_t raddr = prog.dataLabels.at("result");
    EXPECT_EQ(orig.memory().read(raddr, 8), mg.memory().read(raddr, 8));
}

TEST_P(KernelProperty, AllDisabledRewriteIsArchitecturallyEquivalent)
{
    assembler::Program prog = build(GetParam());
    auto pool = enumerateCandidates(prog);
    auto counts = profile::countExecutions(prog);
    auto sel = selectGreedy(pool, counts, 512);
    RewrittenProgram rp = rewrite(prog, sel.chosen);

    uarch::FunctionalCore orig(prog);
    uarch::FunctionalCore mg(rp.program, &rp.info);
    mg.setDisableQuery([](isa::Addr) { return true; });
    orig.run(1ull << 26);
    mg.run(1ull << 26);
    EXPECT_EQ(orig.instCount(), mg.instCount());
    uint64_t raddr = prog.dataLabels.at("result");
    EXPECT_EQ(orig.memory().read(raddr, 8), mg.memory().read(raddr, 8));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelProperty,
    ::testing::ValuesIn(kernelPrograms()),
    [](const ::testing::TestParamInfo<std::string> &pinfo) {
        std::string n = pinfo.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace mg::minigraph
