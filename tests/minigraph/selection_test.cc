#include "minigraph/selection.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "profile/exec_counts.h"

namespace mg::minigraph
{
namespace
{

/** A hot loop plus a cold tail with identical candidate shapes. */
const char *kTwoLoopSrc =
    "main:  li r29, 100\n"          // 0
    "hot:   add r1, r2, r2\n"       // 1
    "       add r1, r1, r2\n"       // 2
    "       sd r1, 0(r28)\n"        // 3
    "       addi r29, r29, -1\n"    // 4
    "       bnez r29, hot\n"        // 5
    "       li r29, 2\n"            // 6
    "cold:  add r3, r4, r4\n"       // 7
    "       add r3, r3, r4\n"       // 8
    "       sd r3, 8(r28)\n"        // 9
    "       addi r29, r29, -1\n"    // 10
    "       bnez r29, cold\n"       // 11
    "       halt\n";

struct PoolSetup
{
    assembler::Program prog;
    std::vector<Candidate> pool;
    ExecCounts counts;

    explicit PoolSetup(const std::string &src)
        : prog(assembler::assemble(src)),
          pool(enumerateCandidates(prog)),
          counts(profile::countExecutions(prog))
    {}
};

TEST(Selection, EmptyPoolSelectsNothing)
{
    SelectionResult r = selectGreedy({}, {}, 512);
    EXPECT_TRUE(r.chosen.empty());
    EXPECT_EQ(r.templatesUsed, 0u);
}

TEST(Selection, ChoosesDisjointInstances)
{
    PoolSetup s(kTwoLoopSrc);
    SelectionResult r = selectGreedy(s.pool, s.counts, 512);
    for (size_t i = 0; i < r.chosen.size(); ++i) {
        for (size_t j = i + 1; j < r.chosen.size(); ++j)
            EXPECT_FALSE(r.chosen[i].overlaps(r.chosen[j]));
    }
    EXPECT_FALSE(r.chosen.empty());
}

TEST(Selection, PrefersHotCode)
{
    PoolSetup s(kTwoLoopSrc);
    SelectionResult r = selectGreedy(s.pool, s.counts, 512);
    bool covers_hot = false;
    for (const auto &c : r.chosen)
        covers_hot |= c.firstPc >= 1 && c.firstPc <= 5;
    EXPECT_TRUE(covers_hot);
}

TEST(Selection, TemplateBudgetRespected)
{
    PoolSetup s(kTwoLoopSrc);
    SelectionResult full = selectGreedy(s.pool, s.counts, 512);
    SelectionResult one = selectGreedy(s.pool, s.counts, 1);
    EXPECT_EQ(one.templatesUsed, 1u);
    EXPECT_LE(one.templatesUsed, full.templatesUsed);
    EXPECT_LE(one.chosen.size(), full.chosen.size());
}

TEST(Selection, SharedTemplateCountsOnce)
{
    // Hot and cold loops have *structurally identical* windows, but
    // at different immediates (0 vs 8 store offsets), so only the
    // add/add pieces share templates. Verify template sharing works
    // by selecting with budget 1 and still getting 2+ instances.
    const char *src =
        "main:  li r29, 50\n"
        "a:     add r1, r2, r2\n"
        "       add r1, r1, r2\n"
        "       sd r1, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, a\n"
        "       li r29, 50\n"
        "b:     add r3, r2, r2\n"
        "       add r3, r3, r2\n"
        "       sd r3, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, b\n"
        "       halt\n";
    PoolSetup s(src);
    SelectionResult r = selectGreedy(s.pool, s.counts, 1);
    EXPECT_EQ(r.templatesUsed, 1u);
    EXPECT_GE(r.chosen.size(), 2u);
}

TEST(Selection, ScoreWeighsSizeTimesFrequency)
{
    // A len-4 window embedding (n-1)*f beats a len-2 at equal f.
    const char *src =
        "main:  li r29, 100\n"
        "loop:  add r1, r2, r2\n"
        "       add r1, r1, r2\n"
        "       add r1, r1, r2\n"
        "       add r1, r1, r2\n"
        "       sd r1, 0(r28)\n"
        "       addi r29, r29, -1\n"
        "       bnez r29, loop\n"
        "       halt\n";
    PoolSetup s(src);
    SelectionResult r = selectGreedy(s.pool, s.counts, 512);
    // The largest chosen piece in the chain should be length 4.
    unsigned max_len = 0;
    for (const auto &c : r.chosen)
        max_len = std::max(max_len, unsigned(c.len));
    EXPECT_EQ(max_len, 4u);
}

TEST(Selection, ZeroFrequencyCodeIgnored)
{
    const char *src =
        "main:  j end\n"
        "dead:  add r1, r2, r2\n"
        "       add r1, r1, r2\n"
        "       sd r1, 0(r28)\n"
        "end:   halt\n";
    PoolSetup s(src);
    SelectionResult r = selectGreedy(s.pool, s.counts, 512);
    EXPECT_TRUE(r.chosen.empty());
}

TEST(Selection, PredictedCoverageMatchesChoice)
{
    PoolSetup s(kTwoLoopSrc);
    SelectionResult r = selectGreedy(s.pool, s.counts, 512);
    uint64_t total = 0, covered = 0;
    for (uint64_t c : s.counts)
        total += c;
    for (const auto &c : r.chosen)
        covered += c.len * s.counts[c.firstPc];
    EXPECT_NEAR(r.predictedCoverage,
                static_cast<double>(covered) / total, 1e-12);
}

} // namespace
} // namespace mg::minigraph
