/**
 * @file
 * Tests of the Slack-Profile rule engine (Figure 5 of the paper),
 * including the paper's worked BDE example, plus the selector pool
 * filters (Struct-*, Slack-Profile variants).
 */

#include "minigraph/selectors.h"

#include <gtest/gtest.h>

#include "assembler/assembler.h"

namespace mg::minigraph
{
namespace
{

using isa::MgConstituent;
using isa::MgSrcKind;
using isa::Opcode;
using profile::ProfileEntry;
using profile::SlackProfileData;

/**
 * The Figure-5 mini-graph BDE: B reads external input 0 (from A),
 * D reads B plus external input 1 (from C), E reads D and produces
 * the register output.
 */
Candidate
bdeCandidate()
{
    Candidate c;
    c.firstPc = 100;
    c.len = 3;
    MgConstituent b;
    b.op = Opcode::ADD;
    b.src1Kind = MgSrcKind::External;
    b.src1 = 0;
    MgConstituent d;
    d.op = Opcode::ADD;
    d.src1Kind = MgSrcKind::Internal;
    d.src1 = 0;
    d.src2Kind = MgSrcKind::External;
    d.src2 = 1;
    MgConstituent e;
    e.op = Opcode::ADD;
    e.src1Kind = MgSrcKind::Internal;
    e.src1 = 1;
    e.producesOutput = true;
    c.tmpl.ops = {b, d, e};
    c.tmpl.numInputs = 2;
    c.tmpl.hasOutput = true;
    c.tmpl.outputIdx = 2;
    c.inputRegs = {1, 2, 0};
    c.outputReg = 5;
    c.serialClass = SerialClass::Bounded;
    return c;
}

/** Profile matching the Figure-5 singleton schedule. */
SlackProfileData
bdeProfile(double slack_e)
{
    SlackProfileData prof;
    ProfileEntry b;
    b.issueRel = 2.0;            // B issues when A's value is ready
    b.srcReadyRel[0] = 2.0;      // input from A ready at 2
    b.srcObserved[0] = true;
    b.slack = 10.0;
    ProfileEntry d;
    d.issueRel = 6.0;            // D waits for C (ready at 6)
    d.srcReadyRel[0] = 3.0;      // B's value
    d.srcReadyRel[1] = 6.0;      // C's value: the serializing input
    d.srcObserved[0] = d.srcObserved[1] = true;
    d.slack = 10.0;
    ProfileEntry e;
    e.issueRel = 7.0;
    e.srcReadyRel[0] = 7.0;
    e.srcObserved[0] = true;
    e.slack = slack_e;
    prof.entries.emplace(100, b);
    prof.entries.emplace(101, d);
    prof.entries.emplace(102, e);
    return prof;
}

const assembler::Program &
dummyProgram()
{
    static assembler::Program p = assembler::assemble("halt\n");
    return p;
}

TEST(SlackRules, Figure5DelayCalculation)
{
    Candidate c = bdeCandidate();
    SlackProfileData prof = bdeProfile(0.0);
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    // Rule #1: Issue_MG(B) = max(Ready(A)=2, Ready(C)=6, Issue(B)=2)=6
    // Rule #2: Issue_MG(D) = 7, Issue_MG(E) = 8
    // Rule #3: Delay(B)=4, Delay(D)=1, Delay(E)=1
    EXPECT_NEAR(m.delay[0], 4.0, 1e-9);
    EXPECT_NEAR(m.delay[1], 1.0, 1e-9);
    EXPECT_NEAR(m.delay[2], 1.0, 1e-9);
}

TEST(SlackRules, Figure5RejectsWhenSlackZero)
{
    // "BDE is rejected because E has a local slack of 0 cycles."
    Candidate c = bdeCandidate();
    SlackProfileData prof = bdeProfile(0.0);
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    EXPECT_TRUE(m.degrades);
    EXPECT_TRUE(m.anyOutputDelayed);
}

TEST(SlackRules, AcceptsWhenSlackAbsorbsDelay)
{
    // With 3 cycles of local slack on E, the 1-cycle delay is
    // absorbed (rule #4 passes).
    Candidate c = bdeCandidate();
    SlackProfileData prof = bdeProfile(3.0);
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    EXPECT_FALSE(m.degrades);
    // The -Delay variant still rejects: the output *is* delayed.
    EXPECT_TRUE(m.anyOutputDelayed);
}

TEST(SlackRules, SialDetectsSerialInputArrivingLast)
{
    Candidate c = bdeCandidate();
    SlackProfileData prof = bdeProfile(3.0);
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    // C (ready 6) is the last-arriving input and feeds D (non-first).
    EXPECT_TRUE(m.serialInputArrivesLast);
}

TEST(SlackRules, NoDelayWhenSerializingInputArrivesEarly)
{
    Candidate c = bdeCandidate();
    SlackProfileData prof = bdeProfile(0.0);
    // C arrives at 1 (before A at 2): structural vulnerability never
    // manifests.  Singleton issue times shift accordingly.
    prof.entries[101].srcReadyRel[1] = 1.0;
    prof.entries[101].issueRel = 3.0;
    prof.entries[102].issueRel = 4.0;
    prof.entries[102].srcReadyRel[0] = 4.0;
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    EXPECT_FALSE(m.degrades);
    EXPECT_FALSE(m.serialInputArrivesLast);
    EXPECT_NEAR(m.delay[2], 0.0, 1e-9);
}

TEST(SlackRules, InternalSerializationModelled)
{
    // Two *independent* constituents forced into series (rule #2):
    // the second op is delayed by the first even with no external
    // serialization.
    Candidate c;
    c.firstPc = 200;
    c.len = 2;
    MgConstituent a;
    a.op = Opcode::ADD;
    a.src1Kind = MgSrcKind::External;
    a.src1 = 0;
    MgConstituent b;
    b.op = Opcode::ADD;
    b.src1Kind = MgSrcKind::External;
    b.src1 = 0; // same input: both could issue together as singletons
    b.producesOutput = true;
    c.tmpl.ops = {a, b};
    c.tmpl.numInputs = 1;
    c.tmpl.hasOutput = true;
    c.tmpl.outputIdx = 1;

    SlackProfileData prof;
    ProfileEntry pa;
    pa.issueRel = 0.0;
    pa.srcReadyRel[0] = 0.0;
    pa.srcObserved[0] = true;
    ProfileEntry pb = pa;
    pb.slack = 0.0;
    prof.entries.emplace(200, pa);
    prof.entries.emplace(201, pb);

    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), prof);
    EXPECT_NEAR(m.delay[1], 1.0, 1e-9); // pushed behind constituent 0
    EXPECT_TRUE(m.degrades);
}

TEST(SlackRules, MissingProfileAccepts)
{
    Candidate c = bdeCandidate();
    SlackProfileData empty;
    SlackModelResult m = evaluateSlackModel(c, dummyProgram(), empty);
    EXPECT_FALSE(m.degrades);
}

TEST(SelectorFilters, StructFamilies)
{
    Candidate ns, bd, ub;
    ns.serialClass = SerialClass::NonSerializing;
    bd.serialClass = SerialClass::Bounded;
    ub.serialClass = SerialClass::Unbounded;
    std::vector<Candidate> pool{ns, bd, ub};

    auto all = filterPool(pool, SelectorKind::StructAll, dummyProgram(),
                          nullptr);
    EXPECT_EQ(all.size(), 3u);
    auto none = filterPool(pool, SelectorKind::StructNone,
                           dummyProgram(), nullptr);
    EXPECT_EQ(none.size(), 1u);
    EXPECT_EQ(none[0].serialClass, SerialClass::NonSerializing);
    auto bounded = filterPool(pool, SelectorKind::StructBounded,
                              dummyProgram(), nullptr);
    EXPECT_EQ(bounded.size(), 2u);
}

TEST(SelectorFilters, SlackProfileRejectsOnlyDegrading)
{
    std::vector<Candidate> pool{bdeCandidate()};
    SlackProfileData reject = bdeProfile(0.0);
    SlackProfileData accept = bdeProfile(3.0);
    EXPECT_TRUE(filterPool(pool, SelectorKind::SlackProfile,
                           dummyProgram(), &reject)
                    .empty());
    EXPECT_EQ(filterPool(pool, SelectorKind::SlackProfile,
                         dummyProgram(), &accept)
                  .size(),
              1u);
    // -Delay rejects in both cases (output delayed either way).
    EXPECT_TRUE(filterPool(pool, SelectorKind::SlackProfileDelay,
                           dummyProgram(), &accept)
                    .empty());
    // SIAL rejects too: serializing input arrives last.
    EXPECT_TRUE(filterPool(pool, SelectorKind::SlackProfileSial,
                           dummyProgram(), &accept)
                    .empty());
}

TEST(SelectorFilters, DynamicSelectorsKeepEverything)
{
    Candidate ub;
    ub.serialClass = SerialClass::Unbounded;
    std::vector<Candidate> pool{ub};
    for (auto kind : {SelectorKind::SlackDynamic,
                      SelectorKind::IdealSlackDynamic,
                      SelectorKind::IdealSlackDynamicDelay,
                      SelectorKind::IdealSlackDynamicSial}) {
        EXPECT_EQ(filterPool(pool, kind, dummyProgram(), nullptr).size(),
                  1u);
    }
}

TEST(SelectorFilters, ProfileRequiredForSlackProfile)
{
    std::vector<Candidate> pool{bdeCandidate()};
    EXPECT_DEATH(filterPool(pool, SelectorKind::SlackProfile,
                            dummyProgram(), nullptr),
                 "requires a slack profile");
}

TEST(SelectorMeta, NamesAndProperties)
{
    EXPECT_EQ(selectorName(SelectorKind::StructAll), "Struct-All");
    EXPECT_EQ(selectorName(SelectorKind::SlackProfile), "Slack-Profile");
    EXPECT_TRUE(selectorNeedsProfile(SelectorKind::SlackProfileSial));
    EXPECT_FALSE(selectorNeedsProfile(SelectorKind::StructBounded));
    EXPECT_TRUE(selectorIsDynamic(SelectorKind::IdealSlackDynamic));
    EXPECT_FALSE(selectorIsDynamic(SelectorKind::SlackProfile));
}

} // namespace
} // namespace mg::minigraph
