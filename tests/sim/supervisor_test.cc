/**
 * @file
 * The robustness layer (docs/ROBUSTNESS.md): the fork-per-run sandbox
 * (sim/supervisor.h), the MG_FAULTS injection harness (sim/fault.h),
 * the retry/backoff policy, and journal-based resume.  The fault
 * matrix drives every failure kind — crash, hang, oom, corrupt —
 * through a batch and asserts the batch completes around it with the
 * right structured error.
 *
 * Process-fork tests live here (and not in runner_test.cc) so the
 * thread-sanitizer CI job, which filters on "Runner", skips them:
 * fork from a TSan-instrumented multi-threaded test is unsupported.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>

#include "sim/runner.h"
#include "sim/supervisor.h"
#include "trace/stats_json.h"
#include "trace/stats_parse.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

RunRequest
request(const std::string &workload, const std::string &config,
        std::optional<SelectorKind> sel = std::nullopt)
{
    RunRequest req;
    req.workload = *workloads::findWorkload(workload);
    req.config = *uarch::configFromName(config);
    req.selector = sel;
    return req;
}

/** crc32 on reduced (the fault target), crc32 on full, bitcount. */
std::vector<RunRequest>
threeJobBatch()
{
    return {request("crc32.0", "reduced", SelectorKind::StructAll),
            request("crc32.0", "full"),
            request("bitcount.0", "reduced")};
}

FaultSpec
spec(const std::string &text)
{
    std::string err;
    auto parsed = parseFaultSpec(text, err);
    EXPECT_TRUE(parsed) << err;
    return *parsed;
}

// ---------------------------------------------------------------
// Fault-spec parsing
// ---------------------------------------------------------------

TEST(FaultSpecTest, ParsesFullSyntax)
{
    FaultSpec s = spec("corrupt@5000:crc32!2");
    EXPECT_EQ(s.kind, FaultKind::Corrupt);
    EXPECT_EQ(s.cycle, 5000u);
    EXPECT_EQ(s.match, "crc32");
    EXPECT_EQ(s.firstAttempts, 2u);
}

TEST(FaultSpecTest, DefaultsAreEveryRunEveryAttemptCycleOne)
{
    FaultSpec s = spec("crash");
    EXPECT_EQ(s.kind, FaultKind::Crash);
    EXPECT_EQ(s.cycle, 1u);
    EXPECT_EQ(s.match, "");
    EXPECT_EQ(s.firstAttempts, ~0u);
    EXPECT_TRUE(s.appliesTo("any|key", 0));
    EXPECT_TRUE(s.appliesTo("any|key", 99));
}

TEST(FaultSpecTest, RejectsMalformedSpecs)
{
    std::string err;
    EXPECT_FALSE(parseFaultSpec("", err));
    EXPECT_FALSE(parseFaultSpec("explode", err));
    EXPECT_FALSE(parseFaultSpec("crash@zero", err));
    EXPECT_FALSE(parseFaultSpec("crash!x", err));
    EXPECT_FALSE(parseFaultSpec("crash@", err));
}

TEST(FaultSpecTest, AppliesToMatchesKeySubstringAndAttempt)
{
    FaultSpec s = spec("oom@10:crc32!1");
    EXPECT_TRUE(s.appliesTo("crc32.0|reduced-3w|none|budget=512", 0));
    EXPECT_FALSE(s.appliesTo("bitcount.0|reduced-3w|none|budget=512", 0));
    // !1 = first attempt only; the retry runs clean.
    EXPECT_FALSE(s.appliesTo("crc32.0|reduced-3w|none|budget=512", 1));
}

// ---------------------------------------------------------------
// The sandbox itself
// ---------------------------------------------------------------

TEST(SupervisorTest, IsolatedRunMatchesInProcess)
{
    RunRequest req = request("crc32.0", "reduced",
                             SelectorKind::StructAll);
    ProgramContext ctx(req.workload);
    RunResult direct = ctx.run(req);
    ASSERT_TRUE(direct.ok);

    RunResult sandboxed = runIsolated(req, {});
    ASSERT_TRUE(sandboxed.ok) << sandboxed.error;
    EXPECT_EQ(sandboxed.sim.cycles, direct.sim.cycles);
    EXPECT_EQ(sandboxed.sim.originalInsts, direct.sim.originalInsts);
    EXPECT_EQ(sandboxed.templatesUsed, direct.templatesUsed);
    EXPECT_EQ(sandboxed.instances, direct.instances);
    EXPECT_EQ(sandboxed.templateNames, direct.templateNames);

    // The wire format is the stats JSON: the child's marshalled line
    // must byte-match an in-process serialization.
    EXPECT_EQ(sandboxed.statsJsonLine,
              trace::statsJson(metaForRun(req, direct), direct.sim));
}

TEST(SupervisorTest, CrashBecomesStructuredError)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = makeFaultHook(spec("crash@40"));
    RunResult r = runIsolated(req, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.err.cls, ErrorClass::Crash);
    EXPECT_EQ(r.err.signal, SIGABRT);
    EXPECT_EQ(r.err.lastCycle, 40u);
    EXPECT_NE(r.error.find("signal"), std::string::npos) << r.error;
}

TEST(SupervisorTest, HangIsKilledByWatchdog)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = makeFaultHook(spec("hang@40"));
    SupervisorOptions opts;
    opts.timeoutSec = 1.5;
    RunResult r = runIsolated(req, opts);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.err.cls, ErrorClass::Timeout);
    EXPECT_NE(r.error.find("timeout"), std::string::npos) << r.error;
}

TEST(SupervisorTest, OomBecomesStructuredError)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = makeFaultHook(spec("oom@40"));
    RunResult r = runIsolated(req, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.err.cls, ErrorClass::Oom);
}

TEST(SupervisorTest, CorruptBecomesCheckError)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = makeFaultHook(spec("corrupt@40"));
    RunResult r = runIsolated(req, {});
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.err.cls, ErrorClass::Check);
    EXPECT_NE(r.error.find("injected"), std::string::npos) << r.error;
}

TEST(SupervisorTest, ChildStderrIsCapturedInTail)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = [](uarch::Core &) {
        static bool once = false;
        if (!once) {
            once = true;
            std::fprintf(stderr, "marker-from-the-child\n");
            std::abort();
        }
    };
    RunResult r = runIsolated(req, {});
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.err.stderrTail.find("marker-from-the-child"),
              std::string::npos)
        << r.err.stderrTail;
}

TEST(SupervisorTest, UnboundedStderrSpewIsTrimmedToTail)
{
    // A worker that floods stderr must never grow the parent's
    // capture buffer past the configured cap: the tail is trimmed per
    // read, and a truncation marker makes the cut explicit.
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = [](uarch::Core &) {
        static bool once = false;
        if (!once) {
            once = true;
            // ~4MB of stderr, three orders of magnitude over the cap.
            for (int i = 0; i < 65536; ++i)
                std::fprintf(stderr,
                             "spew line %06d padding-padding-padding-"
                             "padding-padding\n",
                             i);
            std::fprintf(stderr, "final-marker-after-the-flood\n");
            std::abort();
        }
    };
    SupervisorOptions opts;
    opts.stderrTailBytes = 4096;
    RunResult r = runIsolated(req, opts);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.err.cls, ErrorClass::Crash);

    // Tail = cap + the explicit truncation marker line, nothing more.
    EXPECT_LE(r.err.stderrTail.size(), 4096u + 128u)
        << "tail size " << r.err.stderrTail.size();
    EXPECT_EQ(r.err.stderrTail.find("[stderr tail: last "), 0u)
        << r.err.stderrTail.substr(0, 120);
    // The *end* of the spew is what survives.
    EXPECT_NE(r.err.stderrTail.find("final-marker-after-the-flood"),
              std::string::npos);
    EXPECT_EQ(r.err.stderrTail.find("spew line 000000"),
              std::string::npos)
        << "the head of the flood should have been trimmed away";
}

TEST(SupervisorTest, SmallStderrHasNoTruncationMarker)
{
    RunRequest req = request("crc32.0", "reduced");
    req.auditHook = [](uarch::Core &) {
        static bool once = false;
        if (!once) {
            once = true;
            std::fprintf(stderr, "tiny\n");
            std::abort();
        }
    };
    RunResult r = runIsolated(req, {});
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.err.stderrTail.find("tiny"), std::string::npos);
    EXPECT_EQ(r.err.stderrTail.find("[stderr tail:"),
              std::string::npos)
        << "unclipped output must not claim truncation";
}

// ---------------------------------------------------------------
// The fault matrix through a full batch
// ---------------------------------------------------------------

struct MatrixCase
{
    const char *fault;
    ErrorClass expect;
    double timeoutSec;
};

class FaultMatrixTest : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(FaultMatrixTest, BatchCompletesAroundTheFault)
{
    const MatrixCase &c = GetParam();
    Runner::Options opts;
    opts.jobs = 2;
    opts.isolate = true;
    opts.timeoutSec = c.timeoutSec;
    opts.fault = spec(c.fault);
    Runner runner(opts);

    auto results = runner.run(threeJobBatch(), "matrix");
    ASSERT_EQ(results.size(), 3u);

    // The fault matches only the crc32-on-reduced key; the other two
    // runs complete normally.
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].err.cls, c.expect)
        << errorClassName(results[0].err.cls) << ": "
        << results[0].error;
    EXPECT_EQ(results[0].err.attempts, 1u);
    EXPECT_TRUE(results[1].ok) << results[1].error;
    EXPECT_TRUE(results[2].ok) << results[2].error;

    BatchSummary sum = summarize(results);
    EXPECT_EQ(sum.total, 3u);
    EXPECT_EQ(sum.ok, 2u);
    EXPECT_EQ(sum.failed, 1u);
    EXPECT_EQ(sum.timedOut, c.expect == ErrorClass::Timeout ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FaultMatrixTest,
    ::testing::Values(
        MatrixCase{"crash@40:crc32.0|reduced", ErrorClass::Crash, 0},
        MatrixCase{"hang@40:crc32.0|reduced", ErrorClass::Timeout, 1.5},
        MatrixCase{"oom@40:crc32.0|reduced", ErrorClass::Oom, 0},
        MatrixCase{"corrupt@40:crc32.0|reduced", ErrorClass::Check, 0}),
    [](const ::testing::TestParamInfo<MatrixCase> &param_info) {
        std::string name = param_info.param.fault;
        return name.substr(0, name.find('@'));
    });

// ---------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------

TEST(RetryTest, TransientFailureIsRetriedWithBackoff)
{
    Runner::Options opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.retries = 2;
    opts.backoffSec = 0.01;
    opts.fault = spec("crash@40:crc32.0|reduced!1"); // first attempt only
    Runner runner(opts);

    auto results = runner.run(threeJobBatch(), "retry");
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].err.attempts, 2u);
    EXPECT_NEAR(results[0].err.backoffSec, 0.01, 1e-12);
    EXPECT_EQ(results[1].err.attempts, 1u);
    EXPECT_EQ(summarize(results).retried, 1u);
}

TEST(RetryTest, RetryCapIsRespectedAndBackoffDoubles)
{
    Runner::Options opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.retries = 2;
    opts.backoffSec = 0.01;
    opts.fault = spec("crash@40:crc32.0|reduced"); // every attempt
    Runner runner(opts);

    auto results = runner.run(threeJobBatch(), "retry-cap");
    ASSERT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].err.cls, ErrorClass::Crash);
    EXPECT_EQ(results[0].err.attempts, 3u); // 1 + 2 retries
    EXPECT_NEAR(results[0].err.backoffSec, 0.01 + 0.02, 1e-12);
}

TEST(RetryTest, PermanentFailureIsNotRetried)
{
    Runner::Options opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.retries = 3;
    opts.fault = spec("corrupt@40:crc32.0|reduced");
    Runner runner(opts);

    auto results = runner.run(threeJobBatch(), "no-retry");
    ASSERT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].err.cls, ErrorClass::Check);
    EXPECT_EQ(results[0].err.attempts, 1u);
    EXPECT_EQ(results[0].err.backoffSec, 0.0);
}

// ---------------------------------------------------------------
// In-process degradation (no sandbox): satellite for the worker
// wrapping — a throwing job must become a RunError, not terminate.
// ---------------------------------------------------------------

TEST(DegradeTest, InProcessOomBecomesError)
{
    Runner::Options opts;
    opts.jobs = 2; // through the worker pool
    opts.fault = spec("oom@40:crc32.0|reduced");
    Runner runner(opts);
    auto results = runner.run(threeJobBatch(), "inproc-oom");
    ASSERT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].err.cls, ErrorClass::Oom);
    EXPECT_TRUE(results[1].ok);
    EXPECT_TRUE(results[2].ok);
}

TEST(DegradeTest, InProcessCorruptBecomesCheckError)
{
    Runner::Options opts;
    opts.jobs = 1;
    opts.fault = spec("corrupt@40:crc32.0|reduced");
    Runner runner(opts);
    auto results = runner.run(threeJobBatch(), "inproc-corrupt");
    ASSERT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].err.cls, ErrorClass::Check);
    EXPECT_TRUE(results[1].ok);
    EXPECT_TRUE(results[2].ok);
}

// ---------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------

TEST(ResumeTest, ResumeRerunsExactlyTheMissingRuns)
{
    std::string path =
        ::testing::TempDir() + "mg_resume_test_journal.log";
    std::remove(path.c_str());

    // First batch: one run crashes, the other two land in the journal.
    {
        Runner::Options opts;
        opts.jobs = 2;
        opts.isolate = true;
        opts.journalPath = path;
        opts.fault = spec("crash@40:crc32.0|reduced");
        Runner runner(opts);
        auto results = runner.run(threeJobBatch(), "first");
        EXPECT_FALSE(results[0].ok);
        EXPECT_TRUE(results[1].ok);
        EXPECT_TRUE(results[2].ok);
    }

    // Resume without the fault: the completed runs replay from the
    // journal (fromJournal), only the failed one re-executes.
    Runner::Options opts;
    opts.jobs = 2;
    opts.isolate = true;
    opts.journalPath = path;
    opts.resume = true;
    Runner runner(opts);
    auto results = runner.run(threeJobBatch(), "resumed");
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[1].ok);
    ASSERT_TRUE(results[2].ok);
    EXPECT_FALSE(results[0].fromJournal);
    EXPECT_TRUE(results[1].fromJournal);
    EXPECT_TRUE(results[2].fromJournal);
    EXPECT_EQ(summarize(results).replayed, 2u);

    // Replay must reproduce the exact wire bytes a fresh run emits.
    auto jobs = threeJobBatch();
    for (size_t i = 0; i < results.size(); ++i) {
        ProgramContext ctx(jobs[i].workload);
        RunResult fresh = ctx.run(jobs[i]);
        EXPECT_EQ(results[i].statsJsonLine,
                  trace::statsJson(metaForRun(jobs[i], fresh),
                                   fresh.sim))
            << "run " << i;
    }
    std::remove(path.c_str());
}

TEST(ResumeTest, ResumeSurvivesCorruptJournalTail)
{
    std::string path =
        ::testing::TempDir() + "mg_resume_corrupt_journal.log";
    std::remove(path.c_str());
    {
        Runner::Options opts;
        opts.jobs = 1;
        opts.journalPath = path;
        Runner runner(opts);
        auto results = runner.run(threeJobBatch(), "seed");
        ASSERT_TRUE(results[0].ok && results[1].ok && results[2].ok);
    }
    // Simulate a SIGKILL mid-append: a partial final line.
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputs("crc32.0|partial-entry\t{\"workload\":\"cr", f);
        std::fclose(f);
    }
    Runner::Options opts;
    opts.jobs = 1;
    opts.journalPath = path;
    opts.resume = true;
    Runner runner(opts);
    auto results = runner.run(threeJobBatch(), "resume-corrupt");
    EXPECT_TRUE(results[0].ok && results[1].ok && results[2].ok);
    EXPECT_EQ(summarize(results).replayed, 3u);
    std::remove(path.c_str());
}

} // namespace
} // namespace mg::sim
