/**
 * @file
 * sim::BatchOptions: the consolidated option surface (env layer,
 * flag-over-env precedence, order-independent validation, provenance
 * reporting).
 */

#include <cstdlib>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "sim/batch_options.h"
#include "sim/runner.h"

namespace mg::sim
{
namespace
{

/** All environment variables fromEnv() consults. */
const char *const kBatchEnvVars[] = {
    "MG_JOBS",    "MG_JSON",   "MG_PROGRESS", "MG_ISOLATE",
    "MG_TIMEOUT", "MG_RETRIES", "MG_BACKOFF",  "MG_JOURNAL",
    "MG_RESUME",  "MG_FAULTS", "MG_CHECKLEVEL",
};

/** Clears the batch environment for a test, restoring it afterward. */
class BatchOptionsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const char *name : kBatchEnvVars) {
            if (const char *v = std::getenv(name))
                saved[name] = v;
            unsetenv(name);
        }
    }

    void
    TearDown() override
    {
        for (const char *name : kBatchEnvVars) {
            auto it = saved.find(name);
            if (it == saved.end())
                unsetenv(name);
            else
                setenv(name, it->second.c_str(), 1);
        }
    }

  private:
    std::map<std::string, std::string> saved;
};

TEST_F(BatchOptionsTest, DefaultsWithEmptyEnvironment)
{
    BatchOptions o = BatchOptions::fromEnv();
    EXPECT_GE(o.jobs, 1u);
    EXPECT_FALSE(o.json);
    EXPECT_FALSE(o.progress);
    EXPECT_FALSE(o.isolate);
    EXPECT_FALSE(o.resume);
    EXPECT_EQ(o.timeoutSec, 0.0);
    EXPECT_EQ(o.retries, 0u);
    EXPECT_DOUBLE_EQ(o.backoffSec, 0.05);
    EXPECT_TRUE(o.journal.empty());
    EXPECT_FALSE(o.fault.has_value());
    EXPECT_EQ(o.src.jobs, OptionSource::Default);
    EXPECT_EQ(o.src.json, OptionSource::Default);
    EXPECT_EQ(o.src.timeout, OptionSource::Default);
    EXPECT_TRUE(o.validate().empty());
}

TEST_F(BatchOptionsTest, EnvironmentLayerIsReadOnce)
{
    setenv("MG_JOBS", "3", 1);
    setenv("MG_JSON", "1", 1);
    setenv("MG_TIMEOUT", "2.5", 1);
    setenv("MG_JOURNAL", "runs.journal", 1);
    BatchOptions o = BatchOptions::fromEnv();
    EXPECT_EQ(o.jobs, 3u);
    EXPECT_EQ(o.src.jobs, OptionSource::Env);
    EXPECT_TRUE(o.json);
    EXPECT_EQ(o.src.json, OptionSource::Env);
    EXPECT_DOUBLE_EQ(o.timeoutSec, 2.5);
    EXPECT_EQ(o.src.timeout, OptionSource::Env);
    EXPECT_EQ(o.journal, "runs.journal");
    EXPECT_EQ(o.src.journal, OptionSource::Env);
    // Untouched fields keep default provenance.
    EXPECT_EQ(o.src.isolate, OptionSource::Default);
}

TEST_F(BatchOptionsTest, FlagBeatsEnvironment)
{
    setenv("MG_JOBS", "3", 1);
    setenv("MG_ISOLATE", "1", 1);
    BatchOptions o = BatchOptions::fromEnv();
    std::string err;
    ASSERT_TRUE(o.applyFlag("--jobs", "7", err));
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(o.jobs, 7u);
    EXPECT_EQ(o.src.jobs, OptionSource::Flag);
    // The env-sourced isolate survives un-overridden.
    EXPECT_TRUE(o.isolate);
    EXPECT_EQ(o.src.isolate, OptionSource::Env);
}

TEST_F(BatchOptionsTest, BadFlagValuesAreConsumedWithComplaint)
{
    BatchOptions o = BatchOptions::fromEnv();
    std::string err;
    ASSERT_TRUE(o.applyFlag("--jobs", "0", err));
    EXPECT_FALSE(err.empty());
    err.clear();
    ASSERT_TRUE(o.applyFlag("--timeout", "-1", err));
    EXPECT_FALSE(err.empty());
    err.clear();
    ASSERT_TRUE(o.applyFlag("--retries", "101", err));
    EXPECT_FALSE(err.empty());
    err.clear();
    ASSERT_TRUE(o.applyFlag("--check-level", "bogus", err));
    EXPECT_FALSE(err.empty());
    // A flag outside the batch surface is not consumed.
    err.clear();
    EXPECT_FALSE(o.applyFlag("--config", "reduced", err));
    EXPECT_TRUE(err.empty());
}

TEST_F(BatchOptionsTest, OwnsFlagMatchesApplyFlag)
{
    for (const char *f :
         {"--jobs", "--json", "--progress", "--isolate", "--timeout",
          "--retries", "--backoff", "--journal", "--resume",
          "--inject-fault", "--check-level"}) {
        EXPECT_TRUE(BatchOptions::ownsFlag(f)) << f;
    }
    EXPECT_FALSE(BatchOptions::ownsFlag("--config"));
    EXPECT_FALSE(BatchOptions::ownsFlag("--out"));
}

TEST_F(BatchOptionsTest, ValidateIsFlagOrderIndependent)
{
    // --timeout before --isolate.
    BatchOptions a = BatchOptions::fromEnv();
    std::string err;
    ASSERT_TRUE(a.applyFlag("--timeout", "5", err) && err.empty());
    ASSERT_TRUE(a.applyFlag("--isolate", "", err) && err.empty());
    EXPECT_TRUE(a.validate().empty()) << a.validate();

    // --isolate before --timeout.
    BatchOptions b = BatchOptions::fromEnv();
    ASSERT_TRUE(b.applyFlag("--isolate", "", err) && err.empty());
    ASSERT_TRUE(b.applyFlag("--timeout", "5", err) && err.empty());
    EXPECT_TRUE(b.validate().empty()) << b.validate();

    // --timeout alone is rejected, naming the missing flag.
    BatchOptions c = BatchOptions::fromEnv();
    ASSERT_TRUE(c.applyFlag("--timeout", "5", err) && err.empty());
    EXPECT_NE(c.validate().find("--isolate"), std::string::npos);

    // --resume alone is rejected, naming --journal.
    BatchOptions d = BatchOptions::fromEnv();
    ASSERT_TRUE(d.applyFlag("--resume", "", err) && err.empty());
    EXPECT_NE(d.validate().find("--journal"), std::string::npos);
}

TEST_F(BatchOptionsTest, TimeoutFromEnvStillRequiresIsolate)
{
    setenv("MG_TIMEOUT", "5", 1);
    BatchOptions o = BatchOptions::fromEnv();
    EXPECT_FALSE(o.validate().empty());
    std::string err;
    ASSERT_TRUE(o.applyFlag("--isolate", "", err) && err.empty());
    EXPECT_TRUE(o.validate().empty());
}

TEST_F(BatchOptionsTest, DescribeReportsProvenance)
{
    setenv("MG_JOBS", "3", 1);
    BatchOptions o = BatchOptions::fromEnv();
    std::string err;
    ASSERT_TRUE(o.applyFlag("--json", "", err) && err.empty());
    std::string d = o.describe();
    EXPECT_NE(d.find("\"jobs\":{\"value\":3,\"source\":\"env\"}"),
              std::string::npos)
        << d;
    EXPECT_NE(d.find("\"json\":{\"value\":true,\"source\":\"flag\"}"),
              std::string::npos)
        << d;
    EXPECT_NE(
        d.find("\"progress\":{\"value\":false,\"source\":\"default\"}"),
        std::string::npos)
        << d;
}

TEST_F(BatchOptionsTest, RunnerOptionsCarryResolvedValues)
{
    setenv("MG_RETRIES", "2", 1);
    BatchOptions o = BatchOptions::fromEnv();
    std::string err;
    ASSERT_TRUE(o.applyFlag("--isolate", "", err) && err.empty());
    ASSERT_TRUE(o.applyFlag("--timeout", "1.5", err) && err.empty());
    RunnerOptions r = o.runnerOptions();
    EXPECT_EQ(r.jobs, o.jobs);
    EXPECT_TRUE(r.isolate);
    EXPECT_DOUBLE_EQ(r.timeoutSec, 1.5);
    EXPECT_EQ(r.retries, 2u);
}

} // namespace
} // namespace mg::sim
