/**
 * @file
 * The parallel experiment runner: determinism across pool sizes,
 * concurrent jobs sharing one ProgramContext, and the config /
 * selector name registries the batch API is driven by.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "trace/stats_json.h"

namespace mg::sim
{
namespace
{

using minigraph::SelectorKind;

/** A 6-job batch over two programs: baselines plus selector runs. */
std::vector<RunRequest>
sixJobBatch()
{
    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");
    auto w1 = *workloads::findWorkload("crc32.0");
    auto w2 = *workloads::findWorkload("bitcount.0");

    std::vector<RunRequest> jobs;
    jobs.push_back({.workload = w1, .config = full});
    jobs.push_back({.workload = w1,
                    .config = reduced,
                    .selector = SelectorKind::StructAll});
    jobs.push_back({.workload = w1,
                    .config = reduced,
                    .selector = SelectorKind::SlackProfile});
    jobs.push_back({.workload = w2, .config = full});
    jobs.push_back({.workload = w2,
                    .config = reduced,
                    .selector = SelectorKind::StructNone});
    jobs.push_back({.workload = w2,
                    .config = reduced,
                    .selector = SelectorKind::SlackProfile});
    return jobs;
}

void
expectBitIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.originalInsts, b.sim.originalInsts);
    EXPECT_EQ(a.sim.committedUnits, b.sim.committedUnits);
    EXPECT_EQ(a.sim.committedHandles, b.sim.committedHandles);
    EXPECT_EQ(a.sim.coveredInsts, b.sim.coveredInsts);
    EXPECT_EQ(a.sim.memOrderViolations, b.sim.memOrderViolations);
    EXPECT_EQ(a.sim.issueReplays, b.sim.issueReplays);
    EXPECT_EQ(a.templatesUsed, b.templatesUsed);
    EXPECT_EQ(a.instances, b.instances);
}

TEST(Runner, ParallelMatchesSerialBitIdentical)
{
    auto jobs = sixJobBatch();

    Runner serial({.jobs = 1});
    Runner parallel({.jobs = 4});
    auto a = serial.run(jobs, "serial");
    auto b = parallel.run(jobs, "parallel");

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        expectBitIdentical(a[i], b[i]);
    }
}

/** The serialized stats of one whole batch, one JSON line per job. */
std::string
batchStatsJson(const std::vector<RunRequest> &jobs,
               const std::vector<RunResult> &results)
{
    std::string out;
    for (size_t i = 0; i < results.size(); ++i) {
        trace::StatsMeta meta;
        meta.workload = jobs[i].workload.name();
        meta.config = jobs[i].config.name;
        meta.selector = jobs[i].selector
                            ? minigraph::nameOf(*jobs[i].selector)
                            : "none";
        meta.templateNames = results[i].templateNames;
        meta.mgInstances = results[i].instances;
        meta.mgTemplatesUsed = results[i].templatesUsed;
        out += trace::statsJson(meta, results[i].sim);
        out += '\n';
    }
    return out;
}

TEST(Runner, StatsJsonByteIdenticalAcrossPoolSizesAndRuns)
{
    // The full serialized stats — every counter, the loss-bucket
    // accounting, the per-template serialization counters — must be
    // byte-identical at any pool size and across repeated runs.
    auto jobs = sixJobBatch();

    Runner serial({.jobs = 1});
    Runner wide({.jobs = 8});
    std::string a = batchStatsJson(jobs, serial.run(jobs, "json-1"));
    std::string b = batchStatsJson(jobs, wide.run(jobs, "json-8"));
    EXPECT_EQ(a, b) << "stats JSON differs between --jobs 1 and 8";

    // Second run on a fresh pool: no hidden run-to-run state.
    Runner again({.jobs = 8});
    std::string c = batchStatsJson(jobs, again.run(jobs, "json-8b"));
    EXPECT_EQ(b, c) << "stats JSON differs between repeated runs";

    // The accounting must actually be on in these runs.
    EXPECT_NE(a.find("\"lossAccounting\":{"), std::string::npos);
}

TEST(Runner, ResultsArriveInSubmissionOrder)
{
    auto jobs = sixJobBatch();
    Runner runner({.jobs = 4});
    auto results = runner.run(jobs, "order");

    // Independent serial reference, per submission index.
    for (size_t i = 0; i < jobs.size(); ++i) {
        ProgramContext ctx(jobs[i].workload);
        auto expect = ctx.run(jobs[i]);
        ASSERT_TRUE(results[i].ok) << results[i].error;
        expectBitIdentical(expect, results[i]);
    }
}

TEST(Runner, ConcurrentJobsShareOneContext)
{
    auto reduced = *uarch::configFromName("reduced");
    auto spec = *workloads::findWorkload("crc32.0");

    Runner runner({.jobs = 4});
    // Same shared context throughout the runner's lifetime.
    ProgramContext *ctx = &runner.context(spec);
    EXPECT_EQ(ctx, &runner.context(spec));
    // The alternate-input build is a distinct context.
    EXPECT_NE(ctx, &runner.context(spec, /*alt_input=*/true));

    // Four concurrent jobs on one program: two pairs racing the same
    // lazy caches (profile, pool, baseline).
    std::vector<RunRequest> jobs;
    for (int i = 0; i < 2; ++i) {
        jobs.push_back({.workload = spec, .config = reduced});
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .selector = SelectorKind::SlackProfile});
    }
    auto results = runner.run(jobs, "shared");
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;
    expectBitIdentical(results[0], results[2]);
    expectBitIdentical(results[1], results[3]);
    EXPECT_GT(results[1].sim.committedHandles, 0u);
}

TEST(Runner, ReportsFailedJobsWithoutThrowing)
{
    // A degenerate workload spec that cannot build.
    workloads::WorkloadSpec bogus;
    bogus.kernel = "no_such_kernel";
    bogus.suite = "spec";

    Runner runner({.jobs = 2});
    std::vector<RunRequest> jobs;
    jobs.push_back({.workload = bogus});
    auto results = runner.run(jobs, "failing");
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].error.empty());
}

TEST(NameRegistry, ConfigRoundTrip)
{
    EXPECT_EQ(uarch::allConfigNames().size(), 6u);
    for (const auto &name : uarch::allConfigNames()) {
        auto cfg = uarch::configFromName(name);
        ASSERT_TRUE(cfg.has_value()) << name;
        EXPECT_EQ(uarch::nameOf(*cfg), name);
    }
    EXPECT_FALSE(uarch::configFromName("bogus").has_value());
    uarch::CoreConfig custom;
    custom.name = "hand-rolled";
    EXPECT_EQ(uarch::nameOf(custom), "");
}

TEST(NameRegistry, SelectorRoundTrip)
{
    EXPECT_EQ(minigraph::allSelectorNames().size(), 11u);
    for (const auto &name : minigraph::allSelectorNames()) {
        auto kind = minigraph::selectorFromName(name);
        ASSERT_TRUE(kind.has_value()) << name;
        EXPECT_EQ(minigraph::nameOf(*kind), name);
    }
    EXPECT_FALSE(minigraph::selectorFromName("bogus").has_value());

    // Every enum value has a registry name and a display name.
    for (auto kind :
         {SelectorKind::StructAll, SelectorKind::StructNone,
          SelectorKind::StructBounded, SelectorKind::SlackProfile,
          SelectorKind::SlackProfileDelay,
          SelectorKind::SlackProfileSial, SelectorKind::SlackDynamic,
          SelectorKind::IdealSlackDynamic,
          SelectorKind::IdealSlackDynamicDelay,
          SelectorKind::IdealSlackDynamicSial,
          SelectorKind::SlackStatic}) {
        EXPECT_FALSE(minigraph::nameOf(kind).empty());
        EXPECT_NE(minigraph::selectorName(kind), "?");
    }
}

TEST(RunRequestApi, BaselineSelectorAndChosenShareOnePath)
{
    auto reduced = *uarch::configFromName("reduced");
    auto spec = *workloads::findWorkload("crc32.0");
    ProgramContext ctx(spec);

    // Baseline: no selector, no mini-graphs committed.
    auto base = ctx.run({.config = reduced});
    EXPECT_TRUE(base.ok);
    EXPECT_EQ(base.sim.committedHandles, 0u);
    EXPECT_EQ(base.sim.cycles, ctx.baseline(reduced).cycles);

    // Selector path commits mini-graphs.
    auto sel = ctx.run(
        {.config = reduced, .selector = SelectorKind::StructAll});
    EXPECT_TRUE(sel.ok);
    EXPECT_GT(sel.sim.committedHandles, 0u);

    // Empty explicit chosen set behaves like the baseline.
    auto none = ctx.run({.config = reduced,
                         .chosen = std::vector<minigraph::Candidate>{}});
    EXPECT_EQ(none.sim.committedHandles, 0u);
}

} // namespace
} // namespace mg::sim
