/**
 * @file
 * Perf-harness tests (docs/PERF.md).
 *
 * Determinism: two harness executions must produce bit-identical
 * simulated-cycle counts and stats-JSON lines; only wall-time and RSS
 * may differ.  Schema: the BENCH_*.json emitter and parser round-trip
 * every deterministic field.
 */

#include <gtest/gtest.h>

#include "sim/perf_harness.h"

namespace mg::sim
{
namespace
{

TEST(PerfSubsets, PinnedIsDotZeroKernelsTimesFivePolicies)
{
    auto cells = perfPinnedCells();
    ASSERT_FALSE(cells.empty());
    EXPECT_EQ(cells.size() % 5, 0u);
    for (const auto &c : cells) {
        EXPECT_EQ(c.config, "reduced");
        EXPECT_TRUE(c.workload.size() > 2 &&
                    c.workload.substr(c.workload.size() - 2) == ".0")
            << c.workload;
    }
    // Workload-major order: each workload's five policies are
    // contiguous and start with the no-mini-graph baseline.
    for (size_t i = 0; i + 4 < cells.size(); i += 5) {
        EXPECT_EQ(cells[i].selector, "none");
        for (size_t k = 1; k < 5; ++k)
            EXPECT_EQ(cells[i + k].workload, cells[i].workload);
    }
}

TEST(PerfSubsets, SmokeIsSubsetOfPinned)
{
    auto smoke = perfSmokeCells();
    auto pinned = perfPinnedCells();
    ASSERT_EQ(smoke.size(), 15u);
    for (const auto &s : smoke) {
        bool found = false;
        for (const auto &p : pinned) {
            if (p.workload == s.workload && p.config == s.config &&
                p.selector == s.selector)
                found = true;
        }
        EXPECT_TRUE(found) << s.workload << "/" << s.selector;
    }
}

TEST(PerfSubsets, UnknownNameIsAnError)
{
    std::string err;
    auto cells = perfCellsForSubset("bogus", err);
    EXPECT_TRUE(cells.empty());
    EXPECT_FALSE(err.empty());
    err.clear();
    cells = perfCellsForSubset("smoke", err);
    EXPECT_EQ(cells.size(), 15u);
    EXPECT_TRUE(err.empty()) << err;
}

TEST(PerfDeterminism, TwoRunsBitIdenticalModuloWallTime)
{
    auto cells = perfSmokeCells();
    PerfReport a = runPerf(cells, 1, 6, "smoke");
    PerfReport b = runPerf(cells, 1, 6, "smoke");

    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    ASSERT_EQ(a.runs.size(), b.runs.size());
    EXPECT_EQ(a.totalSimCycles, b.totalSimCycles);
    for (size_t i = 0; i < a.runs.size(); ++i) {
        const PerfRun &ra = a.runs[i];
        const PerfRun &rb = b.runs[i];
        EXPECT_EQ(ra.cell.workload, rb.cell.workload);
        EXPECT_EQ(ra.cell.selector, rb.cell.selector);
        // Deterministic fields: exact.
        EXPECT_EQ(ra.simCycles, rb.simCycles) << ra.cell.workload;
        EXPECT_EQ(ra.statsJsonLine, rb.statsJsonLine)
            << ra.cell.workload << "/" << ra.cell.selector;
        EXPECT_EQ(ra.statsHash, rb.statsHash);
        // And the hash really is the hash of the line.
        EXPECT_EQ(ra.statsHash, fnv1a64(ra.statsJsonLine));
    }
}

TEST(PerfBenchJson, RoundTripPreservesDeterministicFields)
{
    auto cells = perfSmokeCells();
    PerfReport rep = runPerf(cells, 1, 6, "smoke");
    PerfBaseline base;
    base.label = "pre-optimization";
    base.batchWallSec = 12.5;
    base.totalSimCycles = 42;
    base.simCyclesPerSec = 3.36;
    base.peakRssKb = 1234;
    rep.baseline = base;

    std::string doc = benchJson(rep);
    PerfReport back;
    std::string err = parseBenchJson(doc, back);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(back.pr, rep.pr);
    EXPECT_EQ(back.subset, rep.subset);
    EXPECT_EQ(back.jobs, rep.jobs);
    EXPECT_EQ(back.totalSimCycles, rep.totalSimCycles);
    EXPECT_EQ(back.peakRssKb, rep.peakRssKb);
    ASSERT_EQ(back.runs.size(), rep.runs.size());
    for (size_t i = 0; i < rep.runs.size(); ++i) {
        EXPECT_EQ(back.runs[i].cell.workload, rep.runs[i].cell.workload);
        EXPECT_EQ(back.runs[i].cell.config, rep.runs[i].cell.config);
        EXPECT_EQ(back.runs[i].cell.selector, rep.runs[i].cell.selector);
        EXPECT_EQ(back.runs[i].ok, rep.runs[i].ok);
        EXPECT_EQ(back.runs[i].simCycles, rep.runs[i].simCycles);
        EXPECT_EQ(back.runs[i].statsHash, rep.runs[i].statsHash);
    }
    ASSERT_TRUE(back.baseline.has_value());
    EXPECT_EQ(back.baseline->label, "pre-optimization");
    EXPECT_EQ(back.baseline->totalSimCycles, 42u);
    EXPECT_EQ(back.baseline->peakRssKb, 1234);
    EXPECT_NEAR(back.baseline->batchWallSec, 12.5, 1e-9);
    EXPECT_GT(back.speedup(), 0.0);

    // A second serialization of the parsed report differs only in
    // what was never stored (in-memory stats lines).
    PerfReport again;
    ASSERT_TRUE(parseBenchJson(benchJson(back), again).empty());
    EXPECT_EQ(again.totalSimCycles, rep.totalSimCycles);
}

TEST(PerfBenchJson, ParserRejectsGarbage)
{
    PerfReport out;
    EXPECT_FALSE(parseBenchJson("", out).empty());
    EXPECT_FALSE(parseBenchJson("{}", out).empty());
    EXPECT_FALSE(
        parseBenchJson("{\"schema\": \"mg-bench-v0\"}", out).empty());
}

TEST(PerfFnv, KnownVectors)
{
    // FNV-1a 64 reference values.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

} // namespace
} // namespace mg::sim
