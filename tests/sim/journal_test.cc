/**
 * @file
 * The batch journal (sim/journal.h): run-key derivation, append/load
 * round trips, and corruption tolerance — a truncated final line or
 * garbage bytes must be detected and dropped so a resume continues
 * from the last valid entry (docs/ROBUSTNESS.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/experiment.h"
#include "sim/journal.h"
#include "trace/stats_json.h"

namespace mg::sim::journal
{
namespace
{

using minigraph::SelectorKind;

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "mg_journal_" + name + ".log";
}

/** A request for key-derivation tests. */
RunRequest
request(const std::string &workload, const std::string &config,
        std::optional<SelectorKind> sel = std::nullopt)
{
    RunRequest req;
    req.workload = *workloads::findWorkload(workload);
    req.config = *uarch::configFromName(config);
    req.selector = sel;
    return req;
}

/** One real run + its journal-ready stats line. */
std::pair<RunRequest, std::string>
realEntry()
{
    RunRequest req = request("crc32.0", "reduced",
                             SelectorKind::StructAll);
    ProgramContext ctx(req.workload);
    RunResult r = ctx.run(req);
    EXPECT_TRUE(r.ok);
    return {req, trace::statsJson(metaForRun(req, r), r.sim)};
}

TEST(JournalTest, RunKeyDistinguishesRequests)
{
    std::string base = runKey(request("crc32.0", "reduced"));
    EXPECT_NE(base, runKey(request("bitcount.0", "reduced")));
    EXPECT_NE(base, runKey(request("crc32.0", "full")));
    EXPECT_NE(base, runKey(request("crc32.0", "reduced",
                                   SelectorKind::StructAll)));

    RunRequest alt = request("crc32.0", "reduced");
    alt.altInput = true;
    EXPECT_NE(base, runKey(alt));

    RunRequest cross = request("crc32.0", "reduced",
                               SelectorKind::SlackProfile);
    RunRequest self = cross;
    cross.profileFromAltInput = true;
    EXPECT_NE(runKey(self), runKey(cross));

    RunRequest budget = request("crc32.0", "reduced");
    budget.templateBudget = 8;
    EXPECT_NE(base, runKey(budget));
}

TEST(JournalTest, RunKeyIsFramingSafe)
{
    // Keys are the journal's first field (tab-delimited) and the
    // fault-spec match text (':' / '!' / '@' delimited): they must
    // never contain those characters.
    for (const auto &key :
         {runKey(request("crc32.0", "reduced")),
          runKey(request("gcc_like.2", "full",
                         SelectorKind::SlackProfile))}) {
        EXPECT_EQ(key.find('\t'), std::string::npos) << key;
        EXPECT_EQ(key.find('\n'), std::string::npos) << key;
        EXPECT_EQ(key.find(':'), std::string::npos) << key;
        EXPECT_EQ(key.find('!'), std::string::npos) << key;
        EXPECT_EQ(key.find('@'), std::string::npos) << key;
    }
}

TEST(JournalTest, RunKeyFoldsInSimulatorVersion)
{
    // The simulator version is part of the run identity (the same
    // rule the DSE result store applies to its content addresses): a
    // journal written by an older timing model must never be replayed
    // as current results, because the stats line it stored can no
    // longer be reproduced by this binary.
    RunRequest req = request("crc32.0", "reduced");
    std::string current = runKey(req);
    EXPECT_NE(current.find("|sim=" + std::string(kSimVersion)),
              std::string::npos)
        << current;

    // A key derived under any other version cannot collide with the
    // current one, so stale entries are silently skipped on resume
    // (the run re-executes) instead of being served.
    std::string stale = runKey(req, "mg-sim-0");
    EXPECT_NE(current, stale);

    // Everything before the version suffix is unchanged, so bumping
    // kSimVersion invalidates journals without perturbing how the
    // rest of the identity is spelled.
    EXPECT_EQ(current.substr(0, current.rfind("|sim=")),
              stale.substr(0, stale.rfind("|sim=")));
}

TEST(JournalTest, StaleVersionJournalIsNotReplayed)
{
    // Simulate a journal left behind by an older simulator: the entry
    // is valid JSON under a stale-version key.  A resume under the
    // current version derives a different key, so the runner re-runs
    // the job instead of replaying the stale line.
    auto [req, line] = realEntry();
    const std::string path = tmpPath("stale_version");
    {
        Writer w;
        ASSERT_EQ(w.open(path), "");
        w.append(runKey(req, "mg-sim-0"), line);
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.dropped, 0u);
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries.count(runKey(req)), 0u)
        << "stale-version journal entry must not match a current key";
    std::remove(path.c_str());
}

TEST(JournalTest, AppendLoadRoundTrip)
{
    auto [req, line] = realEntry();
    std::string path = tmpPath("roundtrip");
    std::remove(path.c_str());

    Writer w;
    ASSERT_EQ(w.open(path), "");
    ASSERT_TRUE(w.isOpen());
    w.append(runKey(req), line);
    w.append("other|key", line);

    LoadResult loaded = load(path);
    EXPECT_TRUE(loaded.existed);
    EXPECT_EQ(loaded.dropped, 0u);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[runKey(req)], line);
    std::remove(path.c_str());
}

TEST(JournalTest, MissingFileIsEmptyNotError)
{
    LoadResult loaded = load(tmpPath("does_not_exist"));
    EXPECT_FALSE(loaded.existed);
    EXPECT_EQ(loaded.entries.size(), 0u);
    EXPECT_EQ(loaded.dropped, 0u);
}

TEST(JournalTest, DuplicateKeyLastWins)
{
    auto [req, line] = realEntry();
    std::string path = tmpPath("dup");
    std::remove(path.c_str());
    {
        Writer w;
        ASSERT_EQ(w.open(path), "");
        w.append("k", line);
        w.append("k", line); // re-run of the same job
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.dropped, 0u);
    EXPECT_EQ(loaded.entries["k"], line);
    std::remove(path.c_str());
}

TEST(JournalTest, TruncatedFinalLineIsDropped)
{
    auto [req, line] = realEntry();
    std::string path = tmpPath("trunc");
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::binary);
        out << "good\t" << line << "\n";
        // A batch process SIGKILLed mid-write leaves a partial line
        // with no trailing newline.
        out << "half\t" << line.substr(0, line.size() / 2);
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.dropped, 1u);
    EXPECT_NE(loaded.warning.find("truncated"), std::string::npos)
        << loaded.warning;
    EXPECT_EQ(loaded.entries.count("good"), 1u);
    std::remove(path.c_str());
}

TEST(JournalTest, GarbageBytesAreDroppedOthersSurvive)
{
    auto [req, line] = realEntry();
    std::string path = tmpPath("garbage");
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::binary);
        out << "a\t" << line << "\n";
        out << "\x01\x02\xff binary garbage, no tab\n";
        out << "b\tnot a stats json line\n";
        out << "c\t" << line << "\n";
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.dropped, 2u);
    EXPECT_FALSE(loaded.warning.empty());
    EXPECT_EQ(loaded.entries.count("a"), 1u);
    EXPECT_EQ(loaded.entries.count("c"), 1u);
    std::remove(path.c_str());
}

TEST(JournalTest, AppendIsDurableBeforeReturning)
{
    // append() fsyncs each entry: an observer reading the file after
    // append() returns — with the writer still open, as a resuming
    // process after a SIGKILL effectively is — must see the entry.
    auto [req, line] = realEntry();
    std::string path = tmpPath("durable");
    std::remove(path.c_str());

    Writer w;
    ASSERT_EQ(w.open(path), "");
    w.append(runKey(req), line);
    // No close, no flush by the test: append alone must suffice.
    LoadResult loaded = load(path);
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.dropped, 0u);
    EXPECT_EQ(loaded.entries[runKey(req)], line);
    std::remove(path.c_str());
}

TEST(JournalTest, TornTailFollowedByValidLineDropsBoth)
{
    // The failure mode per-entry fsync exists to rule out: a torn
    // entry with bytes of a *later* complete entry after it.  Ordered
    // durable appends make this impossible in a real journal (a torn
    // entry can only be the final line), but the loader must still
    // handle the bytes defensively: the torn fragment glues onto the
    // next line, the garbled result is dropped, and no entry is
    // misattributed — earlier and later well-formed lines survive.
    auto [req, line] = realEntry();
    std::string path = tmpPath("torn_then_valid");
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::binary);
        out << "a\t" << line << "\n";
        out << "torn\t" << line.substr(0, line.size() / 2); // no '\n'
        out << "b\t" << line << "\n"; // glued onto the torn fragment
        out << "c\t" << line << "\n";
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.dropped, 1u);
    EXPECT_EQ(loaded.entries.count("a"), 1u);
    EXPECT_EQ(loaded.entries.count("torn"), 0u)
        << "a torn entry must never be replayed";
    EXPECT_EQ(loaded.entries.count("b"), 0u)
        << "an entry glued onto a torn tail must never be replayed";
    EXPECT_EQ(loaded.entries.count("c"), 1u);
    EXPECT_FALSE(loaded.warning.empty());
    std::remove(path.c_str());
}

TEST(JournalTest, ErrorRecordsAreNotReplayable)
{
    // Only successful runs may be replayed: an error record in the
    // journal (hand-written or from an older format) must be skipped
    // so the run re-executes on resume.
    trace::StatsMeta meta;
    meta.workload = "w";
    meta.config = "c";
    meta.selector = "none";
    std::string err_line = trace::errorJson(meta, "boom");

    std::string path = tmpPath("errors");
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::binary);
        out << "e\t" << err_line << "\n";
    }
    LoadResult loaded = load(path);
    EXPECT_EQ(loaded.entries.size(), 0u);
    EXPECT_EQ(loaded.dropped, 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace mg::sim::journal
