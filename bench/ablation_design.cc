/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (not a paper
 * figure — these quantify the knobs around the reproduction):
 *
 *  1. MGT template budget (the paper's 512 vs starved MGTs),
 *  2. mini-graph issue bandwidth (ALU pipelines per cycle),
 *  3. maximum mini-graph size (2..4 constituents),
 *  4. the loop-carried recurrence guard in the slack model.
 *
 * Uses a suite-balanced subset of programs (honours MG_QUICK /
 * MG_BENCH_PROGRAMS); Slack-Profile on the reduced machine throughout.
 * One runner serves all four ablations, so per-program artefacts
 * (baselines, reduced-machine profiles, candidate pools) are computed
 * once and shared across them.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

namespace
{

std::vector<workloads::WorkloadSpec>
ablationPrograms()
{
    auto all = bench::benchPrograms();
    if (all.size() <= 16)
        return all;
    // Cap the ablation set: 16 programs, suite-balanced.
    std::vector<workloads::WorkloadSpec> out;
    for (size_t i = 0; i < all.size() && out.size() < 16;
         i += all.size() / 16)
        out.push_back(all[i]);
    return out;
}

} // namespace

int
main()
{
    auto programs = ablationPrograms();
    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");
    std::printf("Design ablations over %zu programs "
                "(Slack-Profile, reduced machine)\n",
                programs.size());

    sim::Runner runner(bench::runnerOptions());

    // Fully-provisioned baseline cycles per program (shared by all
    // four ablations).
    std::vector<double> baseCycles;
    {
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs)
            jobs.push_back({.workload = spec, .config = full});
        auto results = runner.run(jobs, "ablation-baselines");
        bench::reportFailures(jobs, results, "ablation-baselines");
        for (const auto &r : results)
            baseCycles.push_back(r.ok
                                     ? static_cast<double>(r.sim.cycles)
                                     : std::nan(""));
    }

    // ---- 1. MGT budget ----
    {
        const std::vector<uint32_t> budgets{2, 8, 32, 128, 512};
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            for (uint32_t budget : budgets) {
                jobs.push_back({.workload = spec,
                                .config = reduced,
                                .selector = SelectorKind::SlackProfile,
                                .templateBudget = budget});
            }
        }
        auto results = runner.run(jobs, "ablation1-budget");
        bench::reportFailures(jobs, results, "ablation1-budget");

        TextTable t;
        t.header({"MGT budget", "mean coverage", "mean rel. perf"});
        for (size_t bi = 0; bi < budgets.size(); ++bi) {
            std::vector<double> cov, perf;
            for (size_t p = 0; p < programs.size(); ++p) {
                const auto &r = results[p * budgets.size() + bi];
                cov.push_back(bench::coverageOf(r));
                perf.push_back(r.ok ? baseCycles[p] / r.sim.cycles
                                    : std::nan(""));
            }
            t.row({std::to_string(budgets[bi]), fmtDouble(bench::meanFinite(cov), 3),
                   fmtDouble(bench::meanFinite(perf), 3)});
        }
        std::printf("\n== Ablation 1: MGT template budget ==\n%s",
                    t.render().c_str());
    }

    // ---- 2. mini-graph issue bandwidth ----
    {
        const std::vector<uint32_t> widths{1, 2, 4};
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            for (uint32_t width : widths) {
                auto cfg = reduced;
                cfg.name = "reduced-mg" + std::to_string(width);
                cfg.mgIssuePerCycle = width;
                cfg.mgMemIssuePerCycle = std::max(1u, width / 2);
                jobs.push_back({.workload = spec,
                                .config = cfg,
                                .selector = SelectorKind::SlackProfile});
            }
        }
        auto results = runner.run(jobs, "ablation2-width");
        bench::reportFailures(jobs, results, "ablation2-width");

        TextTable t;
        t.header({"MG/cycle", "mean rel. perf"});
        for (size_t wi = 0; wi < widths.size(); ++wi) {
            std::vector<double> perf;
            for (size_t p = 0; p < programs.size(); ++p) {
                const auto &r = results[p * widths.size() + wi];
                perf.push_back(r.ok ? baseCycles[p] / r.sim.cycles
                                    : std::nan(""));
            }
            t.row({std::to_string(widths[wi]), fmtDouble(bench::meanFinite(perf), 3)});
        }
        std::printf("\n== Ablation 2: ALU pipelines (mini-graph issue "
                    "bandwidth) ==\n%s",
                    t.render().c_str());
    }

    // ---- 3. maximum mini-graph size ----
    {
        const std::vector<unsigned> sizes{2, 3, 4};
        // Selection over a re-enumerated pool is a per-program prep
        // step against the shared contexts; the simulations then run
        // as one batch of explicit chosen sets.
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            auto &ctx = runner.context(spec);
            for (unsigned max_size : sizes) {
                minigraph::CandidateOptions copts;
                copts.maxSize = max_size;
                auto pool = minigraph::enumerateCandidates(
                    ctx.program(), copts);
                auto filtered = minigraph::filterPool(
                    pool, SelectorKind::SlackProfile, ctx.program(),
                    &ctx.profileOn(reduced));
                auto sel = minigraph::selectGreedy(filtered,
                                                   ctx.counts(), 512);
                jobs.push_back({.workload = spec,
                                .config = reduced,
                                .chosen = sel.chosen});
            }
        }
        auto results = runner.run(jobs, "ablation3-size");
        bench::reportFailures(jobs, results, "ablation3-size");

        TextTable t;
        t.header({"max size", "mean coverage", "mean rel. perf"});
        for (size_t si = 0; si < sizes.size(); ++si) {
            std::vector<double> cov, perf;
            for (size_t p = 0; p < programs.size(); ++p) {
                const auto &r = results[p * sizes.size() + si];
                cov.push_back(bench::coverageOf(r));
                perf.push_back(r.ok ? baseCycles[p] / r.sim.cycles
                                    : std::nan(""));
            }
            t.row({std::to_string(sizes[si]), fmtDouble(bench::meanFinite(cov), 3),
                   fmtDouble(bench::meanFinite(perf), 3)});
        }
        std::printf("\n== Ablation 3: maximum mini-graph size ==\n%s",
                    t.render().c_str());
    }

    // ---- 4. recurrence guard ----
    {
        const bool guards[] = {false, true};
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            auto &ctx = runner.context(spec);
            const auto &prof = ctx.profileOn(reduced);
            for (bool guard : guards) {
                minigraph::SlackModelOptions mopts;
                mopts.recurrenceGuard = guard;
                std::vector<minigraph::Candidate> filtered;
                for (const auto &c : ctx.candidatePool()) {
                    auto m = minigraph::evaluateSlackModel(
                        c, ctx.program(), prof, mopts);
                    if (!m.degrades)
                        filtered.push_back(c);
                }
                auto sel = minigraph::selectGreedy(filtered,
                                                   ctx.counts(), 512);
                jobs.push_back({.workload = spec,
                                .config = reduced,
                                .chosen = sel.chosen});
            }
        }
        auto results = runner.run(jobs, "ablation4-guard");
        bench::reportFailures(jobs, results, "ablation4-guard");

        TextTable t;
        t.header({"recurrence guard", "mean coverage", "mean rel. perf"});
        for (size_t gi = 0; gi < 2; ++gi) {
            std::vector<double> cov, perf;
            for (size_t p = 0; p < programs.size(); ++p) {
                const auto &r = results[p * 2 + gi];
                cov.push_back(bench::coverageOf(r));
                perf.push_back(r.ok ? baseCycles[p] / r.sim.cycles
                                    : std::nan(""));
            }
            t.row({guards[gi] ? "on" : "off", fmtDouble(bench::meanFinite(cov), 3),
                   fmtDouble(bench::meanFinite(perf), 3)});
        }
        std::printf("\n== Ablation 4: loop-carried recurrence guard "
                    "(DESIGN.md §6.3) ==\n%s",
                    t.render().c_str());
    }
    return bench::benchExitCode();
}
