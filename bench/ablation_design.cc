/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (not a paper
 * figure — these quantify the knobs around the reproduction):
 *
 *  1. MGT template budget (the paper's 512 vs starved MGTs),
 *  2. mini-graph issue bandwidth (ALU pipelines per cycle),
 *  3. maximum mini-graph size (2..4 constituents),
 *  4. the loop-carried recurrence guard in the slack model.
 *
 * Uses a suite-balanced subset of programs (honours MG_QUICK /
 * MG_BENCH_PROGRAMS); Slack-Profile on the reduced machine throughout.
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

namespace
{

std::vector<workloads::WorkloadSpec>
ablationPrograms()
{
    auto all = bench::benchPrograms();
    if (all.size() <= 16)
        return all;
    // Cap the ablation set: 16 programs, suite-balanced.
    std::vector<workloads::WorkloadSpec> out;
    for (size_t i = 0; i < all.size() && out.size() < 16;
         i += all.size() / 16)
        out.push_back(all[i]);
    return out;
}

} // namespace

int
main()
{
    auto programs = ablationPrograms();
    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();
    std::printf("Design ablations over %zu programs "
                "(Slack-Profile, reduced machine)\n",
                programs.size());

    // ---- 1. MGT budget ----
    {
        TextTable t;
        t.header({"MGT budget", "mean coverage", "mean rel. perf"});
        for (uint32_t budget : {2u, 8u, 32u, 128u, 512u}) {
            std::vector<double> cov, perf;
            for (const auto &spec : programs) {
                sim::ProgramContext ctx(spec);
                double base =
                    static_cast<double>(ctx.baseline(full).cycles);
                auto r = ctx.runSelector(SelectorKind::SlackProfile,
                                         reduced, nullptr, budget);
                cov.push_back(r.coverage());
                perf.push_back(base / r.sim.cycles);
            }
            t.row({std::to_string(budget), fmtDouble(mean(cov), 3),
                   fmtDouble(mean(perf), 3)});
        }
        std::printf("\n== Ablation 1: MGT template budget ==\n%s",
                    t.render().c_str());
    }

    // ---- 2. mini-graph issue bandwidth ----
    {
        TextTable t;
        t.header({"MG/cycle", "mean rel. perf"});
        for (uint32_t width : {1u, 2u, 4u}) {
            std::vector<double> perf;
            for (const auto &spec : programs) {
                sim::ProgramContext ctx(spec);
                double base =
                    static_cast<double>(ctx.baseline(full).cycles);
                auto cfg = reduced;
                cfg.name = "reduced-mg" + std::to_string(width);
                cfg.mgIssuePerCycle = width;
                cfg.mgMemIssuePerCycle = std::max(1u, width / 2);
                auto r = ctx.runSelector(SelectorKind::SlackProfile, cfg);
                perf.push_back(base / r.sim.cycles);
            }
            t.row({std::to_string(width), fmtDouble(mean(perf), 3)});
        }
        std::printf("\n== Ablation 2: ALU pipelines (mini-graph issue "
                    "bandwidth) ==\n%s",
                    t.render().c_str());
    }

    // ---- 3. maximum mini-graph size ----
    {
        TextTable t;
        t.header({"max size", "mean coverage", "mean rel. perf"});
        for (unsigned max_size : {2u, 3u, 4u}) {
            std::vector<double> cov, perf;
            for (const auto &spec : programs) {
                sim::ProgramContext ctx(spec);
                double base =
                    static_cast<double>(ctx.baseline(full).cycles);
                minigraph::CandidateOptions copts;
                copts.maxSize = max_size;
                auto pool = minigraph::enumerateCandidates(
                    ctx.program(), copts);
                auto filtered = minigraph::filterPool(
                    pool, SelectorKind::SlackProfile, ctx.program(),
                    &ctx.profileOn(reduced));
                auto sel = minigraph::selectGreedy(filtered,
                                                   ctx.counts(), 512);
                auto r = ctx.runChosen(sel.chosen, reduced);
                cov.push_back(r.coverage());
                perf.push_back(base / r.sim.cycles);
            }
            t.row({std::to_string(max_size), fmtDouble(mean(cov), 3),
                   fmtDouble(mean(perf), 3)});
        }
        std::printf("\n== Ablation 3: maximum mini-graph size ==\n%s",
                    t.render().c_str());
    }

    // ---- 4. recurrence guard ----
    {
        TextTable t;
        t.header({"recurrence guard", "mean coverage", "mean rel. perf"});
        for (bool guard : {false, true}) {
            std::vector<double> cov, perf;
            for (const auto &spec : programs) {
                sim::ProgramContext ctx(spec);
                double base =
                    static_cast<double>(ctx.baseline(full).cycles);
                const auto &prof = ctx.profileOn(reduced);
                minigraph::SlackModelOptions mopts;
                mopts.recurrenceGuard = guard;
                std::vector<minigraph::Candidate> filtered;
                for (const auto &c : ctx.candidatePool()) {
                    auto m = minigraph::evaluateSlackModel(
                        c, ctx.program(), prof, mopts);
                    if (!m.degrades)
                        filtered.push_back(c);
                }
                auto sel = minigraph::selectGreedy(filtered,
                                                   ctx.counts(), 512);
                auto r = ctx.runChosen(sel.chosen, reduced);
                cov.push_back(r.coverage());
                perf.push_back(base / r.sim.cycles);
            }
            t.row({guard ? "on" : "off", fmtDouble(mean(cov), 3),
                   fmtDouble(mean(perf), 3)});
        }
        std::printf("\n== Ablation 4: loop-carried recurrence guard "
                    "(DESIGN.md §6.3) ==\n%s",
                    t.render().c_str());
    }
    return 0;
}
