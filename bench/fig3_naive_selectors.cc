/**
 * @file
 * Figure 3: the naive structural selectors.  Top graph: Struct-All
 * vs Struct-None performance on the reduced processor (the paper
 * shows a cross-over: All wins where amplification matters, None
 * where serialization dominates).  Bottom graph: the same selectors
 * on the fully-provisioned processor, where serialization is exposed
 * and Struct-None consistently wins.  Also reports the coverage
 * ranges (paper: Struct-All 18-60%, avg 38%; Struct-None 6-38%,
 * avg 20%).
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 3 reproduction: %zu programs\n", programs.size());

    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");

    // Six jobs per program: two baselines, All/None on each machine.
    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        jobs.push_back({.workload = spec, .config = reduced});
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .selector = SelectorKind::StructAll});
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .selector = SelectorKind::StructNone});
        jobs.push_back({.workload = spec,
                        .config = full,
                        .selector = SelectorKind::StructAll});
        jobs.push_back({.workload = spec,
                        .config = full,
                        .selector = SelectorKind::StructNone});
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "fig3");

    bench::Series red_none{"no-minigraphs", {}};
    bench::Series red_all{"Struct-All", {}};
    bench::Series red_sn{"Struct-None", {}};
    bench::Series full_all{"Struct-All", {}};
    bench::Series full_sn{"Struct-None", {}};
    bench::Series cov_all{"Struct-All cov", {}};
    bench::Series cov_sn{"Struct-None cov", {}};
    std::vector<std::string> names;

    int slowdowns_all_full = 0;

    const size_t per = 6;
    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        double base = static_cast<double>(r[0].sim.cycles);
        names.push_back(programs[p].name());

        red_none.values.push_back(base / r[1].sim.cycles);
        red_all.values.push_back(base / r[2].sim.cycles);
        red_sn.values.push_back(base / r[3].sim.cycles);
        full_all.values.push_back(base / r[4].sim.cycles);
        full_sn.values.push_back(base / r[5].sim.cycles);
        cov_all.values.push_back(r[2].coverage());
        cov_sn.values.push_back(r[3].coverage());
        if (base / r[4].sim.cycles < 0.995)
            ++slowdowns_all_full;
    }

    bench::printSCurves(
        "Figure 3 top: naive selectors on the REDUCED processor "
        "(relative to fully-provisioned baseline)",
        {red_none, red_all, red_sn});
    bench::printSCurves(
        "Figure 3 bottom: naive selectors on the FULLY-PROVISIONED "
        "processor (serialization exposed)",
        {full_all, full_sn});
    bench::printSCurves("Figure 3 companion: dynamic coverage",
                        {cov_all, cov_sn});

    std::printf("\n");
    bench::printHeadline("Struct-All coverage (avg)", "0.38",
                         mean(cov_all.values));
    bench::printHeadline("Struct-None coverage (avg)", "0.20",
                         mean(cov_sn.values));
    bench::printHeadline("Struct-All, reduced (rel. perf)", "~0.90",
                         mean(red_all.values));
    bench::printHeadline("Struct-None, reduced (rel. perf)", "~0.95",
                         mean(red_sn.values));
    std::printf("Programs slowed by Struct-All on the fully-provisioned "
                "machine: %d of %zu (paper: 29 of 78)\n",
                slowdowns_all_full, names.size());
    return 0;
}
