/**
 * @file
 * Figure 3: the naive structural selectors.  Top graph: Struct-All
 * vs Struct-None performance on the reduced processor (the paper
 * shows a cross-over: All wins where amplification matters, None
 * where serialization dominates).  Bottom graph: the same selectors
 * on the fully-provisioned processor, where serialization is exposed
 * and Struct-None consistently wins.  Also reports the coverage
 * ranges (paper: Struct-All 18-60%, avg 38%; Struct-None 6-38%,
 * avg 20%).
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 3 reproduction: %zu programs\n", programs.size());

    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");

    // Six jobs per program: two baselines, All/None on each machine.
    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        jobs.push_back({.workload = spec, .config = reduced});
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .selector = SelectorKind::StructAll});
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .selector = SelectorKind::StructNone});
        jobs.push_back({.workload = spec,
                        .config = full,
                        .selector = SelectorKind::StructAll});
        jobs.push_back({.workload = spec,
                        .config = full,
                        .selector = SelectorKind::StructNone});
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "fig3");
    bench::reportFailures(jobs, results, "fig3");

    bench::Series red_none{"no-minigraphs", {}};
    bench::Series red_all{"Struct-All", {}};
    bench::Series red_sn{"Struct-None", {}};
    bench::Series full_all{"Struct-All", {}};
    bench::Series full_sn{"Struct-None", {}};
    bench::Series cov_all{"Struct-All cov", {}};
    bench::Series cov_sn{"Struct-None cov", {}};
    std::vector<std::string> names;

    int slowdowns_all_full = 0;

    const size_t per = 6;
    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        names.push_back(programs[p].name());

        red_none.values.push_back(bench::cycleRatio(r[0], r[1]));
        red_all.values.push_back(bench::cycleRatio(r[0], r[2]));
        red_sn.values.push_back(bench::cycleRatio(r[0], r[3]));
        full_all.values.push_back(bench::cycleRatio(r[0], r[4]));
        full_sn.values.push_back(bench::cycleRatio(r[0], r[5]));
        cov_all.values.push_back(bench::coverageOf(r[2]));
        cov_sn.values.push_back(bench::coverageOf(r[3]));
        if (bench::cycleRatio(r[0], r[4]) < 0.995)
            ++slowdowns_all_full;
    }

    bench::printSCurves(
        "Figure 3 top: naive selectors on the REDUCED processor "
        "(relative to fully-provisioned baseline)",
        {red_none, red_all, red_sn});
    bench::printSCurves(
        "Figure 3 bottom: naive selectors on the FULLY-PROVISIONED "
        "processor (serialization exposed)",
        {full_all, full_sn});
    bench::printSCurves("Figure 3 companion: dynamic coverage",
                        {cov_all, cov_sn});

    std::printf("\n");
    bench::printHeadline("Struct-All coverage (avg)", "0.38",
                         bench::meanFinite(cov_all.values));
    bench::printHeadline("Struct-None coverage (avg)", "0.20",
                         bench::meanFinite(cov_sn.values));
    bench::printHeadline("Struct-All, reduced (rel. perf)", "~0.90",
                         bench::meanFinite(red_all.values));
    bench::printHeadline("Struct-None, reduced (rel. perf)", "~0.95",
                         bench::meanFinite(red_sn.values));
    std::printf("Programs slowed by Struct-All on the fully-provisioned "
                "machine: %d of %zu (paper: 29 of 78)\n",
                slowdowns_all_full, names.size());
    return bench::benchExitCode();
}
