/**
 * @file
 * Figure 3: the naive structural selectors.  Top graph: Struct-All
 * vs Struct-None performance on the reduced processor (the paper
 * shows a cross-over: All wins where amplification matters, None
 * where serialization dominates).  Bottom graph: the same selectors
 * on the fully-provisioned processor, where serialization is exposed
 * and Struct-None consistently wins.  Also reports the coverage
 * ranges (paper: Struct-All 18-60%, avg 38%; Struct-None 6-38%,
 * avg 20%).
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 3 reproduction: %zu programs\n", programs.size());

    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();

    bench::Series red_none{"no-minigraphs", {}};
    bench::Series red_all{"Struct-All", {}};
    bench::Series red_sn{"Struct-None", {}};
    bench::Series full_all{"Struct-All", {}};
    bench::Series full_sn{"Struct-None", {}};
    bench::Series cov_all{"Struct-All cov", {}};
    bench::Series cov_sn{"Struct-None cov", {}};
    std::vector<std::string> names;

    int slowdowns_all_full = 0;

    for (const auto &spec : programs) {
        sim::ProgramContext ctx(spec);
        double base = static_cast<double>(ctx.baseline(full).cycles);
        names.push_back(spec.name());

        red_none.values.push_back(base / ctx.baseline(reduced).cycles);
        auto all_r = ctx.runSelector(SelectorKind::StructAll, reduced);
        auto sn_r = ctx.runSelector(SelectorKind::StructNone, reduced);
        auto all_f = ctx.runSelector(SelectorKind::StructAll, full);
        auto sn_f = ctx.runSelector(SelectorKind::StructNone, full);
        red_all.values.push_back(base / all_r.sim.cycles);
        red_sn.values.push_back(base / sn_r.sim.cycles);
        full_all.values.push_back(base / all_f.sim.cycles);
        full_sn.values.push_back(base / sn_f.sim.cycles);
        cov_all.values.push_back(all_r.coverage());
        cov_sn.values.push_back(sn_r.coverage());
        if (base / all_f.sim.cycles < 0.995)
            ++slowdowns_all_full;
        std::fprintf(stderr, "  done %s\n", spec.name().c_str());
    }

    bench::printSCurves(
        "Figure 3 top: naive selectors on the REDUCED processor "
        "(relative to fully-provisioned baseline)",
        {red_none, red_all, red_sn});
    bench::printSCurves(
        "Figure 3 bottom: naive selectors on the FULLY-PROVISIONED "
        "processor (serialization exposed)",
        {full_all, full_sn});
    bench::printSCurves("Figure 3 companion: dynamic coverage",
                        {cov_all, cov_sn});

    std::printf("\n");
    bench::printHeadline("Struct-All coverage (avg)", "0.38",
                         mean(cov_all.values));
    bench::printHeadline("Struct-None coverage (avg)", "0.20",
                         mean(cov_sn.values));
    bench::printHeadline("Struct-All, reduced (rel. perf)", "~0.90",
                         mean(red_all.values));
    bench::printHeadline("Struct-None, reduced (rel. perf)", "~0.95",
                         mean(red_sn.values));
    std::printf("Programs slowed by Struct-All on the fully-provisioned "
                "machine: %d of %zu (paper: 29 of 78)\n",
                slowdowns_all_full, names.size());
    return 0;
}
