/**
 * @file
 * Table 1: the simulated processor configurations, plus the two
 * quantitative claims attached to it in §3.1:
 *   (i) the baseline sits at the performance "knee" — enlarging it to
 *       40 IQ entries / 164 registers buys only ~1.5%;
 *  (ii) the reduced configuration typically costs ~18%.
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;

namespace
{

void
printConfig(const uarch::CoreConfig &c)
{
    std::printf(
        "%-12s fetch/issue/commit=%u/%u/%u IQ=%u regs=%u ROB=%u "
        "LQ/SQ=%u/%u simple=%u complex=%u loads=%u stores=%u\n",
        c.name.c_str(), c.fetchWidth, c.issueWidth, c.commitWidth,
        c.issueQueueEntries, c.physRegs, c.robEntries,
        c.loadQueueEntries, c.storeQueueEntries, c.simpleIntPerCycle,
        c.complexPerCycle, c.loadsPerCycle, c.storesPerCycle);
    std::printf(
        "             I$=%uKB/%u-way D$=%uKB/%u-way L2=%uKB/%u-way "
        "mem=%u cyc; MG: %u/cycle (%u mem), MGT=%u\n",
        c.icache.sizeBytes / 1024, c.icache.assoc,
        c.dcache.sizeBytes / 1024, c.dcache.assoc,
        c.l2.sizeBytes / 1024, c.l2.assoc, c.memLatency,
        c.mgIssuePerCycle, c.mgMemIssuePerCycle, c.mgtEntries);
}

} // namespace

int
main()
{
    std::printf("== Table 1: simulated processors ==\n");
    for (const auto &name : uarch::allConfigNames())
        printConfig(*uarch::configFromName(name));

    auto programs = bench::benchPrograms();
    std::printf("\nknee / reduction check over %zu programs\n",
                programs.size());

    auto full = *uarch::configFromName("full");
    auto enlarged = *uarch::configFromName("enlarged");
    auto reduced = *uarch::configFromName("reduced");

    // Three baseline jobs per program.
    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        jobs.push_back({.workload = spec, .config = enlarged});
        jobs.push_back({.workload = spec, .config = reduced});
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "table1");
    bench::reportFailures(jobs, results, "table1");

    bench::Series knee{"enlarged/baseline", {}};
    bench::Series redu{"reduced/baseline", {}};
    std::vector<std::string> names;
    const size_t per = 3;
    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        names.push_back(programs[p].name());
        knee.values.push_back(bench::cycleRatio(r[0], r[1]));
        redu.values.push_back(bench::cycleRatio(r[0], r[2]));
    }
    bench::printPerProgram("Table 1 claims", names, {knee, redu});
    std::printf("\n");
    bench::printHeadline("40 IQ / 164 regs over baseline", "+1.5%",
                         (bench::meanFinite(knee.values) - 1.0) * 100.0);
    bench::printHeadline("reduced config slowdown (%)", "18%",
                         (1.0 - bench::meanFinite(redu.values)) * 100.0);
    return bench::benchExitCode();
}
