/**
 * @file
 * Figure 8: limit study.  For the adpcm_c benchmark, take the 10 most
 * frequently executed non-overlapping mini-graph candidates, evaluate
 * all 1024 subsets exhaustively on the reduced processor (coverage vs
 * performance scatter), and mark the subset each selector would pick.
 * The exhaustive sweep is one runner batch: every subset is an
 * independent job against the shared adpcm_c context.
 *
 * Paper shape: Struct-All right-most; Struct-None left-most;
 * Struct-Bounded decent coverage / poor performance; the slack-based
 * selectors approach the exhaustive best; no selector finds the
 * optimum (selection is non-decomposable).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::Candidate;
using minigraph::SelectorKind;

namespace
{

/** Subset bitmask -> which of the base candidates are included. */
std::vector<Candidate>
subset(const std::vector<Candidate> &base, unsigned mask)
{
    std::vector<Candidate> out;
    for (size_t i = 0; i < base.size(); ++i) {
        if (mask & (1u << i))
            out.push_back(base[i]);
    }
    return out;
}

/** Mask of base candidates a selector's chosen set corresponds to. */
unsigned
maskOf(const std::vector<Candidate> &base,
       const std::vector<Candidate> &chosen)
{
    unsigned mask = 0;
    for (const auto &c : chosen) {
        for (size_t i = 0; i < base.size(); ++i) {
            if (c.firstPc == base[i].firstPc && c.len == base[i].len)
                mask |= 1u << i;
        }
    }
    return mask;
}

} // namespace

int
main()
{
    bool quick = std::getenv("MG_QUICK") != nullptr;
    unsigned pool_size = quick ? 7 : 10;

    auto spec = *workloads::findWorkload("adpcm_c.0");
    auto reduced = *uarch::configFromName("reduced");
    auto full = *uarch::configFromName("full");

    sim::Runner runner(bench::runnerOptions());
    sim::ProgramContext &ctx = runner.context(spec);
    double base_cycles = static_cast<double>(ctx.baseline(full).cycles);

    // The pool: most frequent candidates, pairwise non-overlapping.
    std::vector<Candidate> sorted = ctx.candidatePool();
    const auto &counts = ctx.counts();
    std::sort(sorted.begin(), sorted.end(),
              [&](const Candidate &a, const Candidate &b) {
                  uint64_t fa = counts[a.firstPc] *
                                static_cast<uint64_t>(a.len - 1);
                  uint64_t fb = counts[b.firstPc] *
                                static_cast<uint64_t>(b.len - 1);
                  return fa > fb;
              });
    std::vector<Candidate> base;
    for (const auto &c : sorted) {
        bool clash = false;
        for (const auto &b : base)
            clash |= c.overlaps(b);
        if (!clash) {
            base.push_back(c);
            if (base.size() == pool_size)
                break;
        }
    }
    std::printf("Figure 8 reproduction: adpcm_c, %zu candidate "
                "mini-graphs, %u combinations\n",
                base.size(), 1u << base.size());
    for (size_t i = 0; i < base.size(); ++i) {
        std::printf("  MG %zu: pc=%u len=%u class=%s freq=%llu\n", i,
                    base[i].firstPc, base[i].len,
                    base[i].serialClass ==
                            minigraph::SerialClass::NonSerializing
                        ? "none"
                    : base[i].serialClass ==
                            minigraph::SerialClass::Bounded
                        ? "bounded"
                        : "unbounded",
                    static_cast<unsigned long long>(
                        counts[base[i].firstPc]));
    }

    // Exhaustive sweep: one job per subset, all sharing the context.
    unsigned n_masks = 1u << base.size();
    std::vector<sim::RunRequest> jobs;
    jobs.reserve(n_masks);
    for (unsigned mask = 0; mask < n_masks; ++mask) {
        jobs.push_back({.workload = spec,
                        .config = reduced,
                        .chosen = subset(base, mask)});
    }
    auto results = runner.run(jobs, "fig8-sweep");
    bench::reportFailures(jobs, results, "fig8-sweep");

    // Failed subsets carry NaN and drop out of the scatter and the
    // exhaustive-best search.
    std::vector<double> perf(n_masks), cov(n_masks);
    for (unsigned mask = 0; mask < n_masks; ++mask) {
        perf[mask] = results[mask].ok
                         ? base_cycles / results[mask].sim.cycles
                         : std::nan("");
        cov[mask] = bench::coverageOf(results[mask]);
    }

    unsigned best = 0;
    for (unsigned m = 1; m < n_masks; ++m) {
        if (!std::isfinite(perf[best]) ||
            (std::isfinite(perf[m]) && perf[m] > perf[best]))
            best = m;
    }

    // Scatter, bucketed by coverage decile: min/max performance.
    std::printf("\n== Figure 8 scatter (coverage bucket -> perf range, "
                "%u subsets) ==\n",
                n_masks);
    std::map<int, std::pair<double, double>> buckets;
    for (unsigned m = 0; m < n_masks; ++m) {
        if (!std::isfinite(perf[m]) || !std::isfinite(cov[m]))
            continue;
        int b = static_cast<int>(cov[m] * 20); // 5% buckets
        auto it = buckets.find(b);
        if (it == buckets.end())
            buckets[b] = {perf[m], perf[m]};
        else {
            it->second.first = std::min(it->second.first, perf[m]);
            it->second.second = std::max(it->second.second, perf[m]);
        }
    }
    TextTable t;
    t.header({"coverage", "min perf", "max perf"});
    for (auto &[b, mm] : buckets) {
        t.row({fmtDouble(b * 0.05, 2) + "-" + fmtDouble((b + 1) * 0.05, 2),
               fmtDouble(mm.first, 3), fmtDouble(mm.second, 3)});
    }
    std::printf("%s", t.render().c_str());

    // Selector choices restricted to this pool (Figure 8 bottom).
    auto pick = [&](SelectorKind kind) -> unsigned {
        const profile::SlackProfileData *prof = nullptr;
        if (minigraph::selectorNeedsProfile(kind))
            prof = &ctx.profileOn(reduced);
        auto filtered =
            minigraph::filterPool(base, kind, ctx.program(), prof);
        auto sel = minigraph::selectGreedy(filtered, counts, 512);
        return maskOf(base, sel.chosen);
    };

    std::printf("\n== Figure 8 selector choices ==\n");
    TextTable ct;
    ct.header({"selector", "chosen set", "coverage", "perf"});
    auto row = [&](const std::string &name, unsigned mask) {
        std::string bits;
        for (size_t i = 0; i < base.size(); ++i)
            bits += (mask & (1u << i)) ? ('0' + static_cast<char>(i % 10))
                                       : '.';
        ct.row({name, bits,
                std::isfinite(cov[mask]) ? fmtDouble(cov[mask], 3)
                                         : "FAIL",
                std::isfinite(perf[mask]) ? fmtDouble(perf[mask], 3)
                                          : "FAIL"});
    };
    row("Struct-All", pick(SelectorKind::StructAll));
    row("Struct-None", pick(SelectorKind::StructNone));
    row("Struct-Bounded", pick(SelectorKind::StructBounded));
    row("Slack-Profile", pick(SelectorKind::SlackProfile));
    row("exhaustive best", best);
    std::printf("%s", ct.render().c_str());

    // Slack-Dynamic runs the Struct-All set with disable hardware.
    auto sd = ctx.run({.workload = spec,
                       .config = reduced,
                       .selector = SelectorKind::SlackDynamic,
                       .chosen =
                           subset(base, pick(SelectorKind::StructAll))});
    std::printf("Slack-Dynamic (Struct-All set + hardware): cov=%s "
                "perf=%s\n",
                fmtDouble(sd.coverage(), 3).c_str(),
                fmtDouble(base_cycles / sd.sim.cycles, 3).c_str());

    std::printf("\n");
    bench::printHeadline("exhaustive best perf (this pool only)", "n/a",
                         perf[best]);
    bench::printHeadline("Struct-All (right-most point) perf", "low",
                         perf[pick(SelectorKind::StructAll)]);
    bench::printHeadline("Slack-Profile perf vs best", "close",
                         perf[pick(SelectorKind::SlackProfile)]);
    return bench::benchExitCode();
}
