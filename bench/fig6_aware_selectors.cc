/**
 * @file
 * Figure 6: the serialization-aware selectors.  Three S-curve groups:
 * performance on the reduced processor (top), performance on the
 * fully-provisioned processor (middle), and dynamic coverage
 * (bottom) for Struct-All, Struct-None, Struct-Bounded,
 * Slack-Dynamic and Slack-Profile.
 *
 * Paper shape: Slack-Profile dominates, Struct-Bounded ~ shifted
 * Struct-All, Slack-Dynamic between None and Bounded; coverage
 * ordering All > Profile > Bounded ~ Dynamic > None.
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 6 reproduction: %zu programs\n", programs.size());

    const std::vector<SelectorKind> kinds{
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackDynamic,
        SelectorKind::SlackProfile};

    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();

    std::vector<bench::Series> red, ful, cov;
    bench::Series base_red{"no-minigraphs", {}};
    for (auto k : kinds) {
        red.push_back({minigraph::selectorName(k), {}});
        ful.push_back({minigraph::selectorName(k), {}});
        cov.push_back({minigraph::selectorName(k), {}});
    }
    std::vector<std::string> names;

    for (const auto &spec : programs) {
        sim::ProgramContext ctx(spec);
        double base = static_cast<double>(ctx.baseline(full).cycles);
        names.push_back(spec.name());
        base_red.values.push_back(base / ctx.baseline(reduced).cycles);
        for (size_t i = 0; i < kinds.size(); ++i) {
            auto r = ctx.runSelector(kinds[i], reduced);
            auto f = ctx.runSelector(kinds[i], full);
            red[i].values.push_back(base / r.sim.cycles);
            ful[i].values.push_back(base / f.sim.cycles);
            cov[i].values.push_back(r.coverage());
        }
        std::fprintf(stderr, "  done %s\n", spec.name().c_str());
    }

    std::vector<bench::Series> red_all{base_red};
    red_all.insert(red_all.end(), red.begin(), red.end());
    bench::printSCurves(
        "Figure 6 top: performance on the REDUCED processor", red_all);
    bench::printSCurves(
        "Figure 6 middle: performance on the FULLY-PROVISIONED "
        "processor",
        ful);
    bench::printSCurves("Figure 6 bottom: dynamic coverage", cov);

    std::printf("\n");
    bench::printHeadline("Struct-All coverage", "0.38",
                         mean(cov[0].values));
    bench::printHeadline("Struct-None coverage", "0.20",
                         mean(cov[1].values));
    bench::printHeadline("Struct-Bounded coverage", "0.30",
                         mean(cov[2].values));
    bench::printHeadline("Slack-Dynamic coverage", "0.30",
                         mean(cov[3].values));
    bench::printHeadline("Slack-Profile coverage", "0.34",
                         mean(cov[4].values));
    bench::printHeadline("Struct-Bounded, reduced (rel. perf)", "~0.98",
                         mean(red[2].values));
    bench::printHeadline("Slack-Dynamic, reduced (rel. perf)", "~0.94",
                         mean(red[3].values));
    bench::printHeadline("Slack-Profile, reduced (rel. perf)", "~1.02",
                         mean(red[4].values));
    return 0;
}
