/**
 * @file
 * Figure 6: the serialization-aware selectors.  Three S-curve groups:
 * performance on the reduced processor (top), performance on the
 * fully-provisioned processor (middle), and dynamic coverage
 * (bottom) for Struct-All, Struct-None, Struct-Bounded,
 * Slack-Dynamic and Slack-Profile.
 *
 * Paper shape: Slack-Profile dominates, Struct-Bounded ~ shifted
 * Struct-All, Slack-Dynamic between None and Bounded; coverage
 * ordering All > Profile > Bounded ~ Dynamic > None.
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 6 reproduction: %zu programs\n", programs.size());

    const std::vector<SelectorKind> kinds{
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::StructBounded, SelectorKind::SlackDynamic,
        SelectorKind::SlackProfile};

    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");

    // Twelve jobs per program: two baselines, then each selector on
    // the reduced and the fully-provisioned machine.
    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        jobs.push_back({.workload = spec, .config = reduced});
        for (auto k : kinds) {
            jobs.push_back(
                {.workload = spec, .config = reduced, .selector = k});
            jobs.push_back(
                {.workload = spec, .config = full, .selector = k});
        }
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "fig6");
    bench::reportFailures(jobs, results, "fig6");

    std::vector<bench::Series> red, ful, cov;
    bench::Series base_red{"no-minigraphs", {}};
    for (auto k : kinds) {
        red.push_back({minigraph::selectorName(k), {}});
        ful.push_back({minigraph::selectorName(k), {}});
        cov.push_back({minigraph::selectorName(k), {}});
    }
    std::vector<std::string> names;

    const size_t per = 2 + 2 * kinds.size();
    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        names.push_back(programs[p].name());
        base_red.values.push_back(bench::cycleRatio(r[0], r[1]));
        for (size_t i = 0; i < kinds.size(); ++i) {
            const sim::RunResult &on_red = r[2 + 2 * i];
            const sim::RunResult &on_full = r[3 + 2 * i];
            red[i].values.push_back(bench::cycleRatio(r[0], on_red));
            ful[i].values.push_back(bench::cycleRatio(r[0], on_full));
            cov[i].values.push_back(bench::coverageOf(on_red));
        }
    }

    std::vector<bench::Series> red_all{base_red};
    red_all.insert(red_all.end(), red.begin(), red.end());
    bench::printSCurves(
        "Figure 6 top: performance on the REDUCED processor", red_all);
    bench::printSCurves(
        "Figure 6 middle: performance on the FULLY-PROVISIONED "
        "processor",
        ful);
    bench::printSCurves("Figure 6 bottom: dynamic coverage", cov);

    std::printf("\n");
    bench::printHeadline("Struct-All coverage", "0.38",
                         bench::meanFinite(cov[0].values));
    bench::printHeadline("Struct-None coverage", "0.20",
                         bench::meanFinite(cov[1].values));
    bench::printHeadline("Struct-Bounded coverage", "0.30",
                         bench::meanFinite(cov[2].values));
    bench::printHeadline("Slack-Dynamic coverage", "0.30",
                         bench::meanFinite(cov[3].values));
    bench::printHeadline("Slack-Profile coverage", "0.34",
                         bench::meanFinite(cov[4].values));
    bench::printHeadline("Struct-Bounded, reduced (rel. perf)", "~0.98",
                         bench::meanFinite(red[2].values));
    bench::printHeadline("Slack-Dynamic, reduced (rel. perf)", "~0.94",
                         bench::meanFinite(red[3].values));
    bench::printHeadline("Slack-Profile, reduced (rel. perf)", "~1.02",
                         bench::meanFinite(red[4].values));
    return bench::benchExitCode();
}
