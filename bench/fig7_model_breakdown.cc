/**
 * @file
 * Figure 7: isolating the components of the two slack models.
 *
 * Top (Slack-Profile family, on the reduced processor):
 *   Slack-Profile (rules #1-4), Slack-Profile-Delay (rules #1-3:
 *   reject any delayed output), Slack-Profile-SIAL (operand-arrival
 *   heuristic), against Struct-All / Struct-None.
 *
 * Bottom (Slack-Dynamic family):
 *   Slack-Dynamic (real, with outlining penalties),
 *   Ideal-Slack-Dynamic (penalty-free), Ideal-Slack-Dynamic-Delay
 *   (no consumer check) and Ideal-Slack-Dynamic-SIAL.
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 7 reproduction: %zu programs\n", programs.size());

    const std::vector<SelectorKind> top_kinds{
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::SlackProfile, SelectorKind::SlackProfileDelay,
        SelectorKind::SlackProfileSial};
    const std::vector<SelectorKind> bot_kinds{
        SelectorKind::StructAll, SelectorKind::SlackDynamic,
        SelectorKind::IdealSlackDynamic,
        SelectorKind::IdealSlackDynamicDelay,
        SelectorKind::IdealSlackDynamicSial};

    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();

    std::vector<bench::Series> top, bot;
    for (auto k : top_kinds)
        top.push_back({minigraph::selectorName(k), {}});
    for (auto k : bot_kinds)
        bot.push_back({minigraph::selectorName(k), {}});

    for (const auto &spec : programs) {
        sim::ProgramContext ctx(spec);
        double base = static_cast<double>(ctx.baseline(full).cycles);
        for (size_t i = 0; i < top_kinds.size(); ++i) {
            auto r = ctx.runSelector(top_kinds[i], reduced);
            top[i].values.push_back(base / r.sim.cycles);
        }
        for (size_t i = 0; i < bot_kinds.size(); ++i) {
            // Struct-All was already run above; rerun is cached-free
            // but cheap relative to clarity.
            auto r = ctx.runSelector(bot_kinds[i], reduced);
            bot[i].values.push_back(base / r.sim.cycles);
        }
        std::fprintf(stderr, "  done %s\n", spec.name().c_str());
    }

    bench::printSCurves(
        "Figure 7 top: Slack-Profile model components (reduced "
        "processor)",
        top);
    bench::printSCurves(
        "Figure 7 bottom: Slack-Dynamic model components (reduced "
        "processor)",
        bot);

    std::printf("\n");
    double d_prof = mean(top[2].values) - mean(top[3].values);
    double d_sial = mean(top[3].values) - mean(top[4].values);
    bench::printHeadline(
        "rule #4 (consumer slack) contribution, Profile", "+0.01",
        d_prof);
    bench::printHeadline(
        "true delay vs SIAL heuristic, Profile (-Delay minus -SIAL)",
        "+0.04", d_sial);
    double d_outline = mean(bot[2].values) - mean(bot[1].values);
    bench::printHeadline("outlining penalty removed, Dynamic", "+0.03",
                         d_outline);
    double d_consumer = mean(bot[2].values) - mean(bot[3].values);
    bench::printHeadline("consumer check contribution, Ideal-Dynamic",
                         "<0.01", d_consumer);
    return 0;
}
