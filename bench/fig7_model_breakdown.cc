/**
 * @file
 * Figure 7: isolating the components of the two slack models.
 *
 * Top (Slack-Profile family, on the reduced processor):
 *   Slack-Profile (rules #1-4), Slack-Profile-Delay (rules #1-3:
 *   reject any delayed output), Slack-Profile-SIAL (operand-arrival
 *   heuristic), against Struct-All / Struct-None.
 *
 * Bottom (Slack-Dynamic family):
 *   Slack-Dynamic (real, with outlining penalties),
 *   Ideal-Slack-Dynamic (penalty-free), Ideal-Slack-Dynamic-Delay
 *   (no consumer check) and Ideal-Slack-Dynamic-SIAL.
 *
 * Also prints the cycle-loss bucket breakdown (docs/TRACING.md)
 * aggregated across programs for every selector, attributing each
 * model's wins/losses to a pipeline cause; set MG_JSON=1 to emit the
 * per-job stats JSON lines on stdout as well.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/bench_support.h"
#include "trace/stats_json.h"

using namespace mg;
using minigraph::SelectorKind;

namespace
{

/**
 * Aggregate loss-bucket shares across programs for one selector
 * (slots summed over programs, shown as % of summed total slots).
 */
struct LossAgg
{
    std::string label;
    uint64_t totalSlots = 0;
    uint64_t usedSlots = 0;
    std::array<uint64_t, uarch::kNumLossBuckets> buckets{};

    void
    add(const uarch::SimResult &r)
    {
        totalSlots += r.totalSlots();
        usedSlots += r.committedUnits;
        for (size_t i = 0; i < uarch::kNumLossBuckets; ++i)
            buckets[i] += r.lossSlots[i];
    }
};

void
printLossBreakdown(const std::string &title,
                   const std::vector<LossAgg> &rows)
{
    std::printf("\n%s\n", title.c_str());
    TextTable t;
    std::vector<std::string> header{"selector", "used%"};
    for (size_t i = 0; i < uarch::kNumLossBuckets; ++i)
        header.push_back(uarch::lossBucketName(
            static_cast<uarch::LossBucket>(i)));
    t.header(header);
    for (const LossAgg &a : rows) {
        std::vector<std::string> row{a.label};
        row.push_back(fmtDouble(
            a.totalSlots ? 100.0 * a.usedSlots / a.totalSlots : 0.0, 1));
        for (size_t i = 0; i < uarch::kNumLossBuckets; ++i)
            row.push_back(fmtDouble(
                a.totalSlots ? 100.0 * a.buckets[i] / a.totalSlots : 0.0,
                1));
        t.row(row);
    }
    std::printf("%s(retirement-slot shares, %% of width x cycles, "
                "summed over programs)\n",
                t.render().c_str());
}

} // namespace

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 7 reproduction: %zu programs\n", programs.size());

    const std::vector<SelectorKind> top_kinds{
        SelectorKind::StructAll, SelectorKind::StructNone,
        SelectorKind::SlackProfile, SelectorKind::SlackProfileDelay,
        SelectorKind::SlackProfileSial};
    // Struct-All is shared with the top panel; only the dynamic
    // variants are extra jobs.
    const std::vector<SelectorKind> bot_extra{
        SelectorKind::SlackDynamic, SelectorKind::IdealSlackDynamic,
        SelectorKind::IdealSlackDynamicDelay,
        SelectorKind::IdealSlackDynamicSial};

    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");

    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        for (auto k : top_kinds)
            jobs.push_back(
                {.workload = spec, .config = reduced, .selector = k});
        for (auto k : bot_extra)
            jobs.push_back(
                {.workload = spec, .config = reduced, .selector = k});
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "fig7");
    bench::reportFailures(jobs, results, "fig7");

    std::vector<bench::Series> top, bot;
    for (auto k : top_kinds)
        top.push_back({minigraph::selectorName(k), {}});
    bot.push_back({minigraph::selectorName(SelectorKind::StructAll), {}});
    for (auto k : bot_extra)
        bot.push_back({minigraph::selectorName(k), {}});

    const size_t per = 1 + top_kinds.size() + bot_extra.size();

    // Loss-bucket aggregation: baseline (full) + one row per selector.
    std::vector<LossAgg> loss(per);
    loss[0].label = "baseline-full";
    for (size_t i = 0; i < top_kinds.size(); ++i)
        loss[1 + i].label = minigraph::selectorName(top_kinds[i]);
    for (size_t i = 0; i < bot_extra.size(); ++i)
        loss[1 + top_kinds.size() + i].label =
            minigraph::selectorName(bot_extra[i]);

    const bool emit_json =
        std::getenv("MG_JSON") && *std::getenv("MG_JSON") == '1';

    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        for (size_t i = 0; i < top_kinds.size(); ++i)
            top[i].values.push_back(bench::cycleRatio(r[0], r[1 + i]));
        bot[0].values.push_back(
            bench::cycleRatio(r[0], r[1])); // Struct-All
        for (size_t i = 0; i < bot_extra.size(); ++i)
            bot[1 + i].values.push_back(bench::cycleRatio(
                r[0], r[1 + top_kinds.size() + i]));

        for (size_t j = 0; j < per; ++j) {
            if (r[j].ok)
                loss[j].add(r[j].sim);
            if (emit_json && r[j].ok) {
                trace::StatsMeta meta;
                meta.workload = programs[p].name();
                meta.config = jobs[p * per + j].config.name;
                meta.selector = jobs[p * per + j].selector
                                    ? minigraph::nameOf(
                                          *jobs[p * per + j].selector)
                                    : "none";
                meta.templateNames = r[j].templateNames;
                meta.mgInstances = r[j].instances;
                meta.mgTemplatesUsed = r[j].templatesUsed;
                std::printf("%s\n",
                            trace::statsJson(meta, r[j].sim).c_str());
            }
        }
    }

    bench::printSCurves(
        "Figure 7 top: Slack-Profile model components (reduced "
        "processor)",
        top);
    bench::printSCurves(
        "Figure 7 bottom: Slack-Dynamic model components (reduced "
        "processor)",
        bot);

    printLossBreakdown(
        "Cycle-loss accounting: where the retirement slots went", loss);

    std::printf("\n");
    double d_prof = bench::meanFinite(top[2].values) -
                    bench::meanFinite(top[3].values);
    double d_sial = bench::meanFinite(top[3].values) -
                    bench::meanFinite(top[4].values);
    bench::printHeadline(
        "rule #4 (consumer slack) contribution, Profile", "+0.01",
        d_prof);
    bench::printHeadline(
        "true delay vs SIAL heuristic, Profile (-Delay minus -SIAL)",
        "+0.04", d_sial);
    double d_outline = bench::meanFinite(bot[2].values) -
                       bench::meanFinite(bot[1].values);
    bench::printHeadline("outlining penalty removed, Dynamic", "+0.03",
                         d_outline);
    double d_consumer = bench::meanFinite(bot[2].values) -
                        bench::meanFinite(bot[3].values);
    bench::printHeadline("consumer check contribution, Ideal-Dynamic",
                         "<0.01", d_consumer);
    return bench::benchExitCode();
}
