/**
 * @file
 * Figure 1: Serialization-aware mini-graph selection — performance on
 * the reduced processor relative to the fully-provisioned one, for
 * the no-mini-graph baseline and the Struct-All / Struct-None /
 * Slack-Profile selectors, across all 78 programs.
 *
 * Paper shape: no-mini-graphs averages ~0.85 (18% slower); Struct-All
 * and Struct-None recover part of the loss; the serialization-aware
 * Slack-Profile outperforms both and on average beats the
 * fully-provisioned baseline (~1.02).
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 1 reproduction: %zu programs\n", programs.size());

    auto full = *uarch::configFromName("full");
    auto reduced = *uarch::configFromName("reduced");

    // Five jobs per program: the two baselines, then the selectors.
    const std::vector<SelectorKind> kinds{SelectorKind::StructAll,
                                          SelectorKind::StructNone,
                                          SelectorKind::SlackProfile};
    std::vector<sim::RunRequest> jobs;
    for (const auto &spec : programs) {
        jobs.push_back({.workload = spec, .config = full});
        jobs.push_back({.workload = spec, .config = reduced});
        for (auto k : kinds)
            jobs.push_back(
                {.workload = spec, .config = reduced, .selector = k});
    }
    sim::Runner runner(bench::runnerOptions());
    auto results = runner.run(jobs, "fig1");
    bench::reportFailures(jobs, results, "fig1");

    bench::Series no_mg{"no-minigraphs", {}};
    bench::Series s_all{"Struct-All", {}};
    bench::Series s_none{"Struct-None", {}};
    bench::Series s_prof{"Slack-Profile", {}};
    std::vector<std::string> names;

    const size_t per = 2 + kinds.size();
    for (size_t p = 0; p < programs.size(); ++p) {
        const sim::RunResult *r = &results[p * per];
        names.push_back(programs[p].name());
        no_mg.values.push_back(bench::cycleRatio(r[0], r[1]));
        s_all.values.push_back(bench::cycleRatio(r[0], r[2]));
        s_none.values.push_back(bench::cycleRatio(r[0], r[3]));
        s_prof.values.push_back(bench::cycleRatio(r[0], r[4]));
    }

    std::vector<bench::Series> series{no_mg, s_all, s_none, s_prof};
    bench::printPerProgram("Figure 1", names, series);
    bench::printSCurves(
        "Figure 1: reduced-processor performance relative to the "
        "fully-provisioned baseline",
        series);

    std::printf("\n");
    bench::printHeadline("reduced, no mini-graphs (rel. perf)", "~0.85",
                         bench::meanFinite(no_mg.values));
    bench::printHeadline("reduced + Struct-All (rel. perf)", "~0.90",
                         bench::meanFinite(s_all.values));
    bench::printHeadline("reduced + Struct-None (rel. perf)", "~0.95",
                         bench::meanFinite(s_none.values));
    bench::printHeadline("reduced + Slack-Profile (rel. perf)", "~1.02",
                         bench::meanFinite(s_prof.values));
    return bench::benchExitCode();
}
