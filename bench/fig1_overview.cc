/**
 * @file
 * Figure 1: Serialization-aware mini-graph selection — performance on
 * the reduced processor relative to the fully-provisioned one, for
 * the no-mini-graph baseline and the Struct-All / Struct-None /
 * Slack-Profile selectors, across all 78 programs.
 *
 * Paper shape: no-mini-graphs averages ~0.85 (18% slower); Struct-All
 * and Struct-None recover part of the loss; the serialization-aware
 * Slack-Profile outperforms both and on average beats the
 * fully-provisioned baseline (~1.02).
 */

#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto programs = bench::benchPrograms();
    std::printf("Figure 1 reproduction: %zu programs\n", programs.size());

    bench::Series no_mg{"no-minigraphs", {}};
    bench::Series s_all{"Struct-All", {}};
    bench::Series s_none{"Struct-None", {}};
    bench::Series s_prof{"Slack-Profile", {}};
    std::vector<std::string> names;

    auto full = uarch::fullConfig();
    auto reduced = uarch::reducedConfig();

    for (const auto &spec : programs) {
        sim::ProgramContext ctx(spec);
        double base = static_cast<double>(ctx.baseline(full).cycles);
        names.push_back(spec.name());
        no_mg.values.push_back(base / ctx.baseline(reduced).cycles);
        s_all.values.push_back(
            base /
            ctx.runSelector(SelectorKind::StructAll, reduced).sim.cycles);
        s_none.values.push_back(
            base /
            ctx.runSelector(SelectorKind::StructNone, reduced).sim.cycles);
        s_prof.values.push_back(
            base / ctx.runSelector(SelectorKind::SlackProfile, reduced)
                       .sim.cycles);
        std::fprintf(stderr, "  done %s\n", spec.name().c_str());
    }

    std::vector<bench::Series> series{no_mg, s_all, s_none, s_prof};
    bench::printPerProgram("Figure 1", names, series);
    bench::printSCurves(
        "Figure 1: reduced-processor performance relative to the "
        "fully-provisioned baseline",
        series);

    std::printf("\n");
    bench::printHeadline("reduced, no mini-graphs (rel. perf)", "~0.85",
                         mean(no_mg.values));
    bench::printHeadline("reduced + Struct-All (rel. perf)", "~0.90",
                         mean(s_all.values));
    bench::printHeadline("reduced + Struct-None (rel. perf)", "~0.95",
                         mean(s_none.values));
    bench::printHeadline("reduced + Slack-Profile (rel. perf)", "~1.02",
                         mean(s_prof.values));
    return 0;
}
