#include "bench/bench_support.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/stats_util.h"

namespace mg::bench
{

namespace
{

size_t
requestedCount()
{
    if (const char *quick = std::getenv("MG_QUICK");
        quick && quick[0] == '1') {
        return 12;
    }
    if (const char *n = std::getenv("MG_BENCH_PROGRAMS")) {
        long v = std::atol(n);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return workloads::workloadList().size();
}

std::vector<workloads::WorkloadSpec>
takeBalanced(std::vector<workloads::WorkloadSpec> all, size_t want)
{
    if (want >= all.size())
        return all;
    // Round-robin across the list (which is grouped by kernel) with a
    // stride, so every suite stays represented.
    std::vector<workloads::WorkloadSpec> out;
    size_t stride = all.size() / want;
    if (stride == 0)
        stride = 1;
    for (size_t i = 0; i < all.size() && out.size() < want; i += stride)
        out.push_back(all[i]);
    return out;
}

} // namespace

std::vector<workloads::WorkloadSpec>
benchPrograms()
{
    return takeBalanced(workloads::workloadList(), requestedCount());
}

sim::Runner::Options
runnerOptions()
{
    sim::Runner::Options opts;
    if (const char *p = std::getenv("MG_PROGRESS"))
        opts.progress = p[0] == '1';
    return opts;
}

std::vector<workloads::WorkloadSpec>
benchPrograms(const std::vector<std::string> &suites)
{
    std::vector<workloads::WorkloadSpec> all;
    for (const auto &w : workloads::workloadList()) {
        if (std::find(suites.begin(), suites.end(), w.suite) !=
            suites.end()) {
            all.push_back(w);
        }
    }
    size_t want = requestedCount();
    if (want >= workloads::workloadList().size())
        return all;
    // Scale the subset proportionally.
    size_t scaled = std::max<size_t>(
        4, want * all.size() / workloads::workloadList().size());
    return takeBalanced(all, scaled);
}

void
printSCurves(const std::string &title, const std::vector<Series> &series)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("(S-curves: each column sorted independently, "
                "worst-to-best, as in the paper's figures)\n\n");

    std::vector<std::vector<double>> sorted;
    size_t n = 0;
    for (const auto &s : series) {
        sorted.push_back(mg::sCurve(s.values));
        n = std::max(n, s.values.size());
    }

    TextTable t;
    std::vector<std::string> head{"rank"};
    for (const auto &s : series)
        head.push_back(s.label);
    t.header(head);
    for (size_t i = 0; i < n; ++i) {
        std::vector<std::string> row{std::to_string(i + 1)};
        for (const auto &col : sorted) {
            row.push_back(i < col.size() ? fmtDouble(col[i], 3) : "-");
        }
        t.row(row);
    }
    auto stat_row = [&](const char *name, auto f) {
        std::vector<std::string> row{name};
        for (const auto &s : series)
            row.push_back(fmtDouble(f(s.values), 3));
        t.row(row);
    };
    t.row({"----"});
    stat_row("min", [](const std::vector<double> &v) { return minOf(v); });
    stat_row("mean", [](const std::vector<double> &v) { return mean(v); });
    stat_row("median",
             [](const std::vector<double> &v) { return median(v); });
    stat_row("max", [](const std::vector<double> &v) { return maxOf(v); });
    std::printf("%s", t.render().c_str());
}

void
printPerProgram(const std::string &title,
                const std::vector<std::string> &names,
                const std::vector<Series> &series)
{
    std::printf("\n-- %s (per program) --\n", title.c_str());
    TextTable t;
    std::vector<std::string> head{"program"};
    for (const auto &s : series)
        head.push_back(s.label);
    t.header(head);
    for (size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> row{names[i]};
        for (const auto &s : series)
            row.push_back(i < s.values.size() ? fmtDouble(s.values[i], 3)
                                              : "-");
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
}

void
printHeadline(const std::string &what, const std::string &paper,
              double measured)
{
    std::printf("HEADLINE  %-58s paper: %-10s measured: %s\n",
                what.c_str(), paper.c_str(),
                fmtDouble(measured, 3).c_str());
}

} // namespace mg::bench
