#include "bench/bench_support.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stats_util.h"
#include "sim/batch_options.h"

namespace mg::bench
{

namespace
{

size_t
requestedCount()
{
    if (const char *quick = std::getenv("MG_QUICK");
        quick && quick[0] == '1') {
        return 12;
    }
    if (const char *n = std::getenv("MG_BENCH_PROGRAMS")) {
        long v = std::atol(n);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return workloads::workloadList().size();
}

std::vector<workloads::WorkloadSpec>
takeBalanced(std::vector<workloads::WorkloadSpec> all, size_t want)
{
    if (want >= all.size())
        return all;
    // Round-robin across the list (which is grouped by kernel) with a
    // stride, so every suite stays represented.
    std::vector<workloads::WorkloadSpec> out;
    size_t stride = all.size() / want;
    if (stride == 0)
        stride = 1;
    for (size_t i = 0; i < all.size() && out.size() < want; i += stride)
        out.push_back(all[i]);
    return out;
}

/** Bench-wide failure tally (see reportFailures / benchExitCode). */
size_t g_totalRuns = 0;
size_t g_failedRuns = 0;

/** The finite subset of a value vector (drops NaN "FAIL" cells). */
std::vector<double>
finiteOnly(const std::vector<double> &xs)
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs) {
        if (std::isfinite(x))
            out.push_back(x);
    }
    return out;
}

} // namespace

std::vector<workloads::WorkloadSpec>
benchPrograms()
{
    return takeBalanced(workloads::workloadList(), requestedCount());
}

sim::Runner::Options
runnerOptions()
{
    // One parse point for the whole batch-execution option surface
    // (MG_JOBS, MG_ISOLATE, MG_TIMEOUT, ...): sim::BatchOptions.
    return sim::BatchOptions::fromEnv().runnerOptions();
}

double
cycleRatio(const sim::RunResult &base, const sim::RunResult &run)
{
    if (!base.ok || !run.ok || run.sim.cycles == 0)
        return std::nan("");
    return static_cast<double>(base.sim.cycles) /
           static_cast<double>(run.sim.cycles);
}

double
coverageOf(const sim::RunResult &r)
{
    return r.ok ? r.coverage() : std::nan("");
}

size_t
reportFailures(const std::vector<sim::RunRequest> &jobs,
               const std::vector<sim::RunResult> &results,
               const std::string &phase)
{
    size_t failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const sim::RunResult &r = results[i];
        if (r.ok)
            continue;
        ++failed;
        std::fprintf(stderr, "[%s] FAILED %s: [%s] %s\n", phase.c_str(),
                     i < jobs.size()
                         ? sim::journal::runKey(jobs[i]).c_str()
                         : "?",
                     sim::errorClassName(r.err.cls), r.error.c_str());
    }
    g_totalRuns += results.size();
    g_failedRuns += failed;
    if (failed) {
        std::fprintf(stderr,
                     "[%s] %zu of %zu runs failed; the affected cells "
                     "are marked FAIL below\n",
                     phase.c_str(), failed, results.size());
    }
    return failed;
}

double
meanFinite(const std::vector<double> &xs)
{
    std::vector<double> f = finiteOnly(xs);
    return f.empty() ? std::nan("") : mean(f);
}

int
benchExitCode()
{
    if (g_failedRuns == 0)
        return 0;
    return g_failedRuns < g_totalRuns ? 3 : 1;
}

std::vector<workloads::WorkloadSpec>
benchPrograms(const std::vector<std::string> &suites)
{
    std::vector<workloads::WorkloadSpec> all;
    for (const auto &w : workloads::workloadList()) {
        if (std::find(suites.begin(), suites.end(), w.suite) !=
            suites.end()) {
            all.push_back(w);
        }
    }
    size_t want = requestedCount();
    if (want >= workloads::workloadList().size())
        return all;
    // Scale the subset proportionally.
    size_t scaled = std::max<size_t>(
        4, want * all.size() / workloads::workloadList().size());
    return takeBalanced(all, scaled);
}

void
printSCurves(const std::string &title, const std::vector<Series> &series)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("(S-curves: each column sorted independently, "
                "worst-to-best, as in the paper's figures)\n\n");

    // Failed runs appear as NaN cells: drop them before sorting (NaN
    // breaks the sort's strict weak ordering) and the summary rows,
    // and render them as trailing FAIL rows so a partial figure is
    // still printed.
    std::vector<std::vector<double>> sorted;
    size_t n = 0;
    for (const auto &s : series) {
        sorted.push_back(mg::sCurve(finiteOnly(s.values)));
        n = std::max(n, s.values.size());
    }

    TextTable t;
    std::vector<std::string> head{"rank"};
    for (const auto &s : series)
        head.push_back(s.label);
    t.header(head);
    for (size_t i = 0; i < n; ++i) {
        std::vector<std::string> row{std::to_string(i + 1)};
        for (size_t si = 0; si < series.size(); ++si) {
            const auto &col = sorted[si];
            if (i < col.size())
                row.push_back(fmtDouble(col[i], 3));
            else if (i < series[si].values.size())
                row.push_back("FAIL");
            else
                row.push_back("-");
        }
        t.row(row);
    }
    auto stat_row = [&](const char *name, auto f) {
        std::vector<std::string> row{name};
        for (size_t si = 0; si < series.size(); ++si) {
            const auto &col = sorted[si];
            row.push_back(col.empty() ? "-" : fmtDouble(f(col), 3));
        }
        t.row(row);
    };
    t.row({"----"});
    stat_row("min", [](const std::vector<double> &v) { return minOf(v); });
    stat_row("mean", [](const std::vector<double> &v) { return mean(v); });
    stat_row("median",
             [](const std::vector<double> &v) { return median(v); });
    stat_row("max", [](const std::vector<double> &v) { return maxOf(v); });
    std::printf("%s", t.render().c_str());
}

void
printPerProgram(const std::string &title,
                const std::vector<std::string> &names,
                const std::vector<Series> &series)
{
    std::printf("\n-- %s (per program) --\n", title.c_str());
    TextTable t;
    std::vector<std::string> head{"program"};
    for (const auto &s : series)
        head.push_back(s.label);
    t.header(head);
    for (size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> row{names[i]};
        for (const auto &s : series) {
            if (i >= s.values.size())
                row.push_back("-");
            else if (!std::isfinite(s.values[i]))
                row.push_back("FAIL");
            else
                row.push_back(fmtDouble(s.values[i], 3));
        }
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
}

void
printHeadline(const std::string &what, const std::string &paper,
              double measured)
{
    std::printf("HEADLINE  %-58s paper: %-10s measured: %s\n",
                what.c_str(), paper.c_str(),
                std::isfinite(measured) ? fmtDouble(measured, 3).c_str()
                                        : "FAIL (no data)");
}

} // namespace mg::bench
