/**
 * @file
 * Figure 9: robustness of slack profiles.
 *
 * Top: MediaBench/CommBench analogues on the reduced processor,
 * Slack-Profile mini-graphs self-trained (profile collected on the
 * reduced machine itself) vs cross-trained on a 2-way machine, an
 * 8-way machine, and a machine with 1/4 the data-memory hierarchy.
 *
 * Bottom: SPEC/MiBench analogues, self-trained vs cross-trained on
 * the alternate input data set (the paper's train/ref and
 * large/small splits).
 *
 * Paper shape: cross-trained points sit almost on the self-trained
 * S-curve (<2% average difference for inputs).
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto reduced = uarch::reducedConfig();
    auto full = uarch::fullConfig();

    // ---- Top: microarchitecture sensitivity ----
    {
        auto programs = bench::benchPrograms({"media", "comm"});
        std::printf("Figure 9 top: %zu media/comm programs\n",
                    programs.size());
        bench::Series self{"self-trained", {}};
        bench::Series c2{"cross 2-way", {}};
        bench::Series c8{"cross 8-way", {}};
        bench::Series cd{"cross dmem/4", {}};
        std::vector<std::string> names;
        auto cfg2 = uarch::twoWayConfig();
        auto cfg8 = uarch::eightWayConfig();
        auto cfgd = uarch::dmemQuarterConfig();

        for (const auto &spec : programs) {
            sim::ProgramContext ctx(spec);
            double base = static_cast<double>(ctx.baseline(full).cycles);
            names.push_back(spec.name());
            self.values.push_back(
                base /
                ctx.runSelector(SelectorKind::SlackProfile, reduced)
                    .sim.cycles);
            c2.values.push_back(
                base / ctx.runSelector(SelectorKind::SlackProfile,
                                       reduced, &cfg2)
                           .sim.cycles);
            c8.values.push_back(
                base / ctx.runSelector(SelectorKind::SlackProfile,
                                       reduced, &cfg8)
                           .sim.cycles);
            cd.values.push_back(
                base / ctx.runSelector(SelectorKind::SlackProfile,
                                       reduced, &cfgd)
                           .sim.cycles);
            std::fprintf(stderr, "  done %s\n", spec.name().c_str());
        }
        bench::printPerProgram("Figure 9 top (machine sensitivity)",
                               names, {self, c2, c8, cd});

        auto mean_abs_delta = [&](const bench::Series &s) {
            double sum = 0;
            for (size_t i = 0; i < s.values.size(); ++i)
                sum += std::fabs(s.values[i] - self.values[i]);
            return sum / static_cast<double>(s.values.size());
        };
        std::printf("\n");
        bench::printHeadline("mean |delta| cross 2-way", "small",
                             mean_abs_delta(c2));
        bench::printHeadline("mean |delta| cross 8-way", "small",
                             mean_abs_delta(c8));
        bench::printHeadline("mean |delta| cross dmem/4", "small",
                             mean_abs_delta(cd));
    }

    // ---- Bottom: input-set sensitivity ----
    {
        auto programs = bench::benchPrograms({"spec", "mibench"});
        std::printf("\nFigure 9 bottom: %zu spec/mibench programs\n",
                    programs.size());
        bench::Series self{"self-trained", {}};
        bench::Series cross{"cross-input", {}};
        bench::Series cov_self{"cov self", {}};
        bench::Series cov_cross{"cov cross", {}};
        std::vector<std::string> names;

        for (const auto &spec : programs) {
            sim::ProgramContext ctx(spec);
            double base = static_cast<double>(ctx.baseline(full).cycles);
            names.push_back(spec.name());
            auto s = ctx.runSelector(SelectorKind::SlackProfile, reduced);
            self.values.push_back(base / s.sim.cycles);
            cov_self.values.push_back(s.coverage());

            // Profile collected on the *alternate* input's run.
            sim::ProgramContext alt_ctx(spec, /*alt_input=*/true);
            const auto &alt_prof = alt_ctx.profileOn(reduced);
            auto c = ctx.runSelectorWithProfile(SelectorKind::SlackProfile,
                                                reduced, alt_prof);
            cross.values.push_back(base / c.sim.cycles);
            cov_cross.values.push_back(c.coverage());
            std::fprintf(stderr, "  done %s\n", spec.name().c_str());
        }
        bench::printPerProgram("Figure 9 bottom (input sensitivity)",
                               names,
                               {self, cross, cov_self, cov_cross});

        double sum = 0;
        for (size_t i = 0; i < cross.values.size(); ++i)
            sum += std::fabs(cross.values[i] - self.values[i]);
        std::printf("\n");
        bench::printHeadline("mean |delta| cross-input (rel. perf)",
                             "<0.02",
                             sum / static_cast<double>(
                                       cross.values.size()));
    }
    return 0;
}
