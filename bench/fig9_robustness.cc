/**
 * @file
 * Figure 9: robustness of slack profiles.
 *
 * Top: MediaBench/CommBench analogues on the reduced processor,
 * Slack-Profile mini-graphs self-trained (profile collected on the
 * reduced machine itself) vs cross-trained on a 2-way machine, an
 * 8-way machine, and a machine with 1/4 the data-memory hierarchy.
 *
 * Bottom: SPEC/MiBench analogues, self-trained vs cross-trained on
 * the alternate input data set (the paper's train/ref and
 * large/small splits).
 *
 * Paper shape: cross-trained points sit almost on the self-trained
 * S-curve (<2% average difference for inputs).
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_support.h"

using namespace mg;
using minigraph::SelectorKind;

int
main()
{
    auto reduced = *uarch::configFromName("reduced");
    auto full = *uarch::configFromName("full");

    sim::Runner runner(bench::runnerOptions());

    // ---- Top: microarchitecture sensitivity ----
    {
        auto programs = bench::benchPrograms({"media", "comm"});
        std::printf("Figure 9 top: %zu media/comm programs\n",
                    programs.size());
        auto cfg2 = *uarch::configFromName("2way");
        auto cfg8 = *uarch::configFromName("8way");
        auto cfgd = *uarch::configFromName("dmem4");

        // Five jobs per program: baseline, self-trained, and one
        // cross-trained run per profiling machine.
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            jobs.push_back({.workload = spec, .config = full});
            jobs.push_back({.workload = spec,
                            .config = reduced,
                            .selector = SelectorKind::SlackProfile});
            for (const auto &pc : {cfg2, cfg8, cfgd}) {
                jobs.push_back({.workload = spec,
                                .config = reduced,
                                .selector = SelectorKind::SlackProfile,
                                .profileConfig = pc});
            }
        }
        auto results = runner.run(jobs, "fig9-top");
        bench::reportFailures(jobs, results, "fig9-top");

        bench::Series self{"self-trained", {}};
        bench::Series c2{"cross 2-way", {}};
        bench::Series c8{"cross 8-way", {}};
        bench::Series cd{"cross dmem/4", {}};
        std::vector<std::string> names;

        const size_t per = 5;
        for (size_t p = 0; p < programs.size(); ++p) {
            const sim::RunResult *r = &results[p * per];
            names.push_back(programs[p].name());
            self.values.push_back(bench::cycleRatio(r[0], r[1]));
            c2.values.push_back(bench::cycleRatio(r[0], r[2]));
            c8.values.push_back(bench::cycleRatio(r[0], r[3]));
            cd.values.push_back(bench::cycleRatio(r[0], r[4]));
        }
        bench::printPerProgram("Figure 9 top (machine sensitivity)",
                               names, {self, c2, c8, cd});

        auto mean_abs_delta = [&](const bench::Series &s) {
            double sum = 0;
            size_t n = 0;
            for (size_t i = 0; i < s.values.size(); ++i) {
                double d = std::fabs(s.values[i] - self.values[i]);
                if (std::isfinite(d)) {
                    sum += d;
                    ++n;
                }
            }
            return n ? sum / static_cast<double>(n) : std::nan("");
        };
        std::printf("\n");
        bench::printHeadline("mean |delta| cross 2-way", "small",
                             mean_abs_delta(c2));
        bench::printHeadline("mean |delta| cross 8-way", "small",
                             mean_abs_delta(c8));
        bench::printHeadline("mean |delta| cross dmem/4", "small",
                             mean_abs_delta(cd));
    }

    // ---- Bottom: input-set sensitivity ----
    {
        auto programs = bench::benchPrograms({"spec", "mibench"});
        std::printf("\nFigure 9 bottom: %zu spec/mibench programs\n",
                    programs.size());

        // Three jobs per program: baseline, self-trained, and
        // cross-trained on the alternate input set's profile.
        std::vector<sim::RunRequest> jobs;
        for (const auto &spec : programs) {
            jobs.push_back({.workload = spec, .config = full});
            jobs.push_back({.workload = spec,
                            .config = reduced,
                            .selector = SelectorKind::SlackProfile});
            jobs.push_back({.workload = spec,
                            .config = reduced,
                            .selector = SelectorKind::SlackProfile,
                            .profileFromAltInput = true});
        }
        auto results = runner.run(jobs, "fig9-bottom");
        bench::reportFailures(jobs, results, "fig9-bottom");

        bench::Series self{"self-trained", {}};
        bench::Series cross{"cross-input", {}};
        bench::Series cov_self{"cov self", {}};
        bench::Series cov_cross{"cov cross", {}};
        std::vector<std::string> names;

        const size_t per = 3;
        for (size_t p = 0; p < programs.size(); ++p) {
            const sim::RunResult *r = &results[p * per];
            names.push_back(programs[p].name());
            self.values.push_back(bench::cycleRatio(r[0], r[1]));
            cov_self.values.push_back(bench::coverageOf(r[1]));
            cross.values.push_back(bench::cycleRatio(r[0], r[2]));
            cov_cross.values.push_back(bench::coverageOf(r[2]));
        }
        bench::printPerProgram("Figure 9 bottom (input sensitivity)",
                               names,
                               {self, cross, cov_self, cov_cross});

        double sum = 0;
        size_t n = 0;
        for (size_t i = 0; i < cross.values.size(); ++i) {
            double d = std::fabs(cross.values[i] - self.values[i]);
            if (std::isfinite(d)) {
                sum += d;
                ++n;
            }
        }
        std::printf("\n");
        bench::printHeadline("mean |delta| cross-input (rel. perf)",
                             "<0.02",
                             n ? sum / static_cast<double>(n)
                               : std::nan(""));
    }
    return bench::benchExitCode();
}
