/**
 * @file
 * DSE frontier bench (docs/DSE.md): run the pinned 130-cell grid
 * through `runSweep` twice against one result store — a cold pass
 * that simulates everything, then a warm pass that must answer
 * entirely from the store — and report the measured Pareto frontier
 * plus the cache's wall-time reduction.  The second pass simulating
 * anything, or speeding up by less than 10x, is a regression in the
 * DSE service's core promise.
 *
 * The store lives under MG_STORE (default: a fresh directory beside
 * the working directory's .mgstore, wiped first so the cold pass is
 * genuinely cold).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "bench/bench_support.h"
#include "dse/sweep.h"

using namespace mg;

namespace
{

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

dse::SweepOutcome
timedSweep(const dse::GridSpec &grid, const dse::SweepOptions &opts,
           const char *label, double &wall)
{
    auto t0 = std::chrono::steady_clock::now();
    dse::SweepOutcome out = dse::runSweep(grid, opts);
    wall = seconds(t0, std::chrono::steady_clock::now());
    std::printf("%-6s %6.2fs  %3zu hits %3zu simulated %3zu failed\n",
                label, wall, out.summary.hits, out.summary.simulated,
                out.summary.failed);
    return out;
}

/** Print the document's "pareto" section verbatim. */
void
printFrontier(const std::string &doc)
{
    std::istringstream in(doc);
    std::string line;
    bool inside = false;
    while (std::getline(in, line)) {
        if (line.find("\"pareto\": [") != std::string::npos)
            inside = true;
        if (inside)
            std::printf("%s\n", line.c_str());
        if (inside && line.find(']') != std::string::npos &&
            line.find('{') == std::string::npos)
            break;
    }
}

} // namespace

int
main()
{
    const char *env_store = std::getenv("MG_STORE");
    const std::string root =
        env_store && *env_store ? env_store : ".mgstore-bench";
    std::filesystem::remove_all(root);

    dse::SweepOptions opts;
    opts.storeRoot = root;
    opts.prefilter = false; // measure every cell; the frontier is golden
    opts.batch = sim::BatchOptions::fromEnv();

    const dse::GridSpec grid = dse::pinnedDseGrid();
    std::printf("== DSE frontier: pinned grid (%zu workloads x %zu "
                "selectors x %zu configs) ==\n",
                grid.workloads.size(), grid.selectors.size(),
                grid.configs.size());

    double cold_s = 0.0, warm_s = 0.0;
    dse::SweepOutcome cold = timedSweep(grid, opts, "cold", cold_s);
    if (!cold.error.empty()) {
        std::fprintf(stderr, "dse_frontier: %s\n", cold.error.c_str());
        return 1;
    }
    dse::SweepOutcome warm = timedSweep(grid, opts, "warm", warm_s);

    std::printf("\n");
    printFrontier(cold.doc);

    const bool identical = cold.doc == warm.doc;
    const double speedup = warm_s > 0.0 ? cold_s / warm_s : 1e9;
    std::printf("\ncold=%.2fs warm=%.2fs speedup=%.0fx "
                "identical-docs=%s\n",
                cold_s, warm_s, speedup, identical ? "yes" : "NO");

    int rc = cold.ok() ? 0 : 3;
    if (!identical || warm.summary.simulated != 0) {
        std::fprintf(stderr, "dse_frontier: warm pass was not a pure "
                             "cache replay\n");
        rc = 1;
    }
    if (speedup < 10.0) {
        std::fprintf(stderr, "dse_frontier: cache speedup %.1fx is "
                             "below the 10x floor\n",
                     speedup);
        rc = 1;
    }
    return rc;
}
