/**
 * @file
 * Shared support for the figure-reproduction benches: program-set
 * selection (with MG_QUICK / MG_BENCH_PROGRAMS environment knobs),
 * runner configuration (MG_JOBS / MG_PROGRESS), S-curve rendering,
 * and summary statistics.
 */

#ifndef MG_BENCH_BENCH_SUPPORT_H
#define MG_BENCH_BENCH_SUPPORT_H

#include <string>
#include <vector>

#include "common/stats_util.h"
#include "sim/runner.h"
#include "workloads/workload.h"

namespace mg::bench
{

/**
 * The benchmark set for this run: all 78 programs by default, or a
 * suite-balanced subset when MG_QUICK=1 (12 programs) or
 * MG_BENCH_PROGRAMS=<n> is set.
 */
std::vector<workloads::WorkloadSpec> benchPrograms();

/** Programs restricted to the given suites. */
std::vector<workloads::WorkloadSpec>
benchPrograms(const std::vector<std::string> &suites);

/**
 * Runner options for a bench: pool size from MG_JOBS (default: all
 * cores), progress lines on stderr when MG_PROGRESS=1.  Robustness
 * knobs (docs/ROBUSTNESS.md): MG_ISOLATE=1 runs each job in a forked
 * sandbox, MG_TIMEOUT=<sec> sets the per-run watchdog, and
 * MG_RETRIES=<n> retries transient failures — so a bench survives a
 * crash or hang in one cell and prints a partial figure.
 */
sim::Runner::Options runnerOptions();

/**
 * Relative performance of `run` against `base` (base cycles / run
 * cycles), or NaN when either run failed.  NaN cells render as
 * "FAIL" in the figure tables and are excluded from the summary
 * statistics.
 */
double cycleRatio(const sim::RunResult &base, const sim::RunResult &run);

/** Dynamic coverage of a run, or NaN when it failed. */
double coverageOf(const sim::RunResult &r);

/**
 * Report a batch's failures on stderr — one line per failed run with
 * its journal key, error class, and message — and fold the counts
 * into the bench-wide tally behind benchExitCode().  Returns the
 * number of failed runs.
 */
size_t reportFailures(const std::vector<sim::RunRequest> &jobs,
                      const std::vector<sim::RunResult> &results,
                      const std::string &phase);

/** Mean over the finite values only; NaN when none are finite. */
double meanFinite(const std::vector<double> &xs);

/**
 * Exit code for a bench main, from the reportFailures() tally:
 * 0 = every run succeeded, 3 = partial failure (the figures above
 * are incomplete), 1 = every run failed.
 */
int benchExitCode();

/**
 * One experiment series for an S-curve graph: a label and one value
 * per program (same program order across series).
 */
struct Series
{
    std::string label;
    std::vector<double> values;
};

/**
 * Print the paper-style S-curve table: each series sorted
 * independently worst-to-best (the paper's Figures 1/3/6/7/9), then
 * min / mean / median / max summary rows.
 */
void printSCurves(const std::string &title,
                  const std::vector<Series> &series);

/** Print per-program values (unsorted, labelled) for reference. */
void printPerProgram(const std::string &title,
                     const std::vector<std::string> &names,
                     const std::vector<Series> &series);

/** One-line "paper vs measured" summary row. */
void printHeadline(const std::string &what, const std::string &paper,
                   double measured);

} // namespace mg::bench

#endif // MG_BENCH_BENCH_SUPPORT_H
