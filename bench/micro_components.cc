/**
 * @file
 * google-benchmark microbenchmarks of the simulator's component
 * models: cache, TLB, branch predictor, StoreSets, the assembler,
 * candidate enumeration, the functional core and the timing core.
 * These document simulation throughput, not paper results.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.h"
#include "common/rng.h"
#include "minigraph/candidate.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/core.h"
#include "uarch/functional.h"
#include "uarch/store_sets.h"
#include "workloads/workload.h"

namespace
{

using namespace mg;

void
BM_CacheAccess(benchmark::State &state)
{
    uarch::Cache cache(uarch::CacheConfig{32 * 1024, 2, 32, 3});
    Rng rng(1);
    std::vector<uint64_t> addrs(4096);
    for (auto &a : addrs)
        a = rng.below(256 * 1024);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    uarch::Tlb tlb(uarch::TlbConfig{64, 4, 4096, 30});
    Rng rng(2);
    std::vector<uint64_t> addrs(4096);
    for (auto &a : addrs)
        a = rng.below(8ull << 20);
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.access(addrs[i++ & 4095]));
}
BENCHMARK(BM_TlbAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    uarch::BranchPredictor bp(uarch::BranchPredConfig{});
    Rng rng(3);
    uint32_t pc = 0;
    for (auto _ : state) {
        pc = (pc + 7) & 1023;
        benchmark::DoNotOptimize(
            bp.predictConditional(pc, rng.chance(0.7)));
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_StoreSets(benchmark::State &state)
{
    uarch::StoreSets ss(1024, 128);
    uint64_t seq = 0;
    for (auto _ : state) {
        ss.storeRenamed((seq * 13) & 511, seq);
        benchmark::DoNotOptimize(ss.loadRenamed((seq * 7) & 511));
        ++seq;
    }
}
BENCHMARK(BM_StoreSets);

void
BM_Assemble(benchmark::State &state)
{
    auto spec = *workloads::findWorkload("crc32.0");
    for (auto _ : state) {
        auto built = workloads::buildWorkload(spec);
        benchmark::DoNotOptimize(built.program.code.size());
    }
}
BENCHMARK(BM_Assemble);

void
BM_CandidateEnumeration(benchmark::State &state)
{
    auto built = workloads::buildWorkload(
        *workloads::findWorkload("sha_like.0"));
    for (auto _ : state) {
        auto pool = minigraph::enumerateCandidates(built.program);
        benchmark::DoNotOptimize(pool.size());
    }
}
BENCHMARK(BM_CandidateEnumeration);

void
BM_FunctionalExecution(benchmark::State &state)
{
    auto built = workloads::buildWorkload(
        *workloads::findWorkload("bitcount.0"));
    for (auto _ : state) {
        uarch::FunctionalCore core(built.program);
        uint64_t insts = core.run(1ull << 26);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<int64_t>(insts));
    }
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    auto built = workloads::buildWorkload(
        *workloads::findWorkload("bitcount.0"));
    for (auto _ : state) {
        uarch::Core core(uarch::fullConfig(), built.program);
        auto r = core.run();
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<int64_t>(r.originalInsts));
    }
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
