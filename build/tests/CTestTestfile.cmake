# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mg_common_test[1]_include.cmake")
include("/root/repo/build/tests/mg_isa_test[1]_include.cmake")
include("/root/repo/build/tests/mg_assembler_test[1]_include.cmake")
include("/root/repo/build/tests/mg_uarch_test[1]_include.cmake")
include("/root/repo/build/tests/mg_minigraph_test[1]_include.cmake")
include("/root/repo/build/tests/mg_profile_test[1]_include.cmake")
include("/root/repo/build/tests/mg_workloads_test[1]_include.cmake")
include("/root/repo/build/tests/mg_integration_test[1]_include.cmake")
