file(REMOVE_RECURSE
  "CMakeFiles/mg_common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/mg_common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/mg_common_test.dir/common/stats_util_test.cc.o"
  "CMakeFiles/mg_common_test.dir/common/stats_util_test.cc.o.d"
  "CMakeFiles/mg_common_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/mg_common_test.dir/common/string_util_test.cc.o.d"
  "mg_common_test"
  "mg_common_test.pdb"
  "mg_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
