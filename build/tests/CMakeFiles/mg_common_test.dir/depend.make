# Empty dependencies file for mg_common_test.
# This may be replaced when dependencies are built.
