
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/mg_integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/mg_integration_test.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minigraph/CMakeFiles/mg_minigraph.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/mg_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/mg_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/mg_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
