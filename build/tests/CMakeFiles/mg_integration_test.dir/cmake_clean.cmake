file(REMOVE_RECURSE
  "CMakeFiles/mg_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/mg_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "mg_integration_test"
  "mg_integration_test.pdb"
  "mg_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
