# Empty dependencies file for mg_integration_test.
# This may be replaced when dependencies are built.
