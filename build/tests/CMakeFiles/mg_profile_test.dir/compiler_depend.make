# Empty compiler generated dependencies file for mg_profile_test.
# This may be replaced when dependencies are built.
