file(REMOVE_RECURSE
  "CMakeFiles/mg_profile_test.dir/profile/exec_counts_test.cc.o"
  "CMakeFiles/mg_profile_test.dir/profile/exec_counts_test.cc.o.d"
  "CMakeFiles/mg_profile_test.dir/profile/profile_io_test.cc.o"
  "CMakeFiles/mg_profile_test.dir/profile/profile_io_test.cc.o.d"
  "CMakeFiles/mg_profile_test.dir/profile/slack_profile_test.cc.o"
  "CMakeFiles/mg_profile_test.dir/profile/slack_profile_test.cc.o.d"
  "mg_profile_test"
  "mg_profile_test.pdb"
  "mg_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
