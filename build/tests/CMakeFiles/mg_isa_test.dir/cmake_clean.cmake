file(REMOVE_RECURSE
  "CMakeFiles/mg_isa_test.dir/isa/instruction_test.cc.o"
  "CMakeFiles/mg_isa_test.dir/isa/instruction_test.cc.o.d"
  "CMakeFiles/mg_isa_test.dir/isa/minigraph_types_test.cc.o"
  "CMakeFiles/mg_isa_test.dir/isa/minigraph_types_test.cc.o.d"
  "CMakeFiles/mg_isa_test.dir/isa/opcodes_test.cc.o"
  "CMakeFiles/mg_isa_test.dir/isa/opcodes_test.cc.o.d"
  "mg_isa_test"
  "mg_isa_test.pdb"
  "mg_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
