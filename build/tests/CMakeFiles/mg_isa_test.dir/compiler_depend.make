# Empty compiler generated dependencies file for mg_isa_test.
# This may be replaced when dependencies are built.
