file(REMOVE_RECURSE
  "CMakeFiles/mg_assembler_test.dir/assembler/assembler_test.cc.o"
  "CMakeFiles/mg_assembler_test.dir/assembler/assembler_test.cc.o.d"
  "CMakeFiles/mg_assembler_test.dir/assembler/cfg_test.cc.o"
  "CMakeFiles/mg_assembler_test.dir/assembler/cfg_test.cc.o.d"
  "CMakeFiles/mg_assembler_test.dir/assembler/liveness_test.cc.o"
  "CMakeFiles/mg_assembler_test.dir/assembler/liveness_test.cc.o.d"
  "mg_assembler_test"
  "mg_assembler_test.pdb"
  "mg_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
