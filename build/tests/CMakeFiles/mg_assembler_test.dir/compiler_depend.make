# Empty compiler generated dependencies file for mg_assembler_test.
# This may be replaced when dependencies are built.
