file(REMOVE_RECURSE
  "CMakeFiles/mg_minigraph_test.dir/minigraph/candidate_test.cc.o"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/candidate_test.cc.o.d"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/invariants_property_test.cc.o"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/invariants_property_test.cc.o.d"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/rewriter_test.cc.o"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/rewriter_test.cc.o.d"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/selection_test.cc.o"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/selection_test.cc.o.d"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/slack_rules_test.cc.o"
  "CMakeFiles/mg_minigraph_test.dir/minigraph/slack_rules_test.cc.o.d"
  "mg_minigraph_test"
  "mg_minigraph_test.pdb"
  "mg_minigraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_minigraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
