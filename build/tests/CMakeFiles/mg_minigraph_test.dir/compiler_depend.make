# Empty compiler generated dependencies file for mg_minigraph_test.
# This may be replaced when dependencies are built.
