# Empty compiler generated dependencies file for mg_workloads_test.
# This may be replaced when dependencies are built.
