file(REMOVE_RECURSE
  "CMakeFiles/mg_workloads_test.dir/workloads/workload_test.cc.o"
  "CMakeFiles/mg_workloads_test.dir/workloads/workload_test.cc.o.d"
  "mg_workloads_test"
  "mg_workloads_test.pdb"
  "mg_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
