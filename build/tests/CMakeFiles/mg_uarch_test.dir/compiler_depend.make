# Empty compiler generated dependencies file for mg_uarch_test.
# This may be replaced when dependencies are built.
