file(REMOVE_RECURSE
  "CMakeFiles/mg_uarch_test.dir/uarch/alu_property_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/alu_property_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/branch_pred_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/branch_pred_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/cache_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/cache_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/config_sweep_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/config_sweep_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/core_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/core_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/functional_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/functional_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/memory_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/memory_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/mg_timing_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/mg_timing_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/slack_dynamic_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/slack_dynamic_test.cc.o.d"
  "CMakeFiles/mg_uarch_test.dir/uarch/store_sets_test.cc.o"
  "CMakeFiles/mg_uarch_test.dir/uarch/store_sets_test.cc.o.d"
  "mg_uarch_test"
  "mg_uarch_test.pdb"
  "mg_uarch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_uarch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
