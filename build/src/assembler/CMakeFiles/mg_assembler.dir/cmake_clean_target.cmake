file(REMOVE_RECURSE
  "libmg_assembler.a"
)
