file(REMOVE_RECURSE
  "CMakeFiles/mg_assembler.dir/assembler.cc.o"
  "CMakeFiles/mg_assembler.dir/assembler.cc.o.d"
  "CMakeFiles/mg_assembler.dir/cfg.cc.o"
  "CMakeFiles/mg_assembler.dir/cfg.cc.o.d"
  "CMakeFiles/mg_assembler.dir/liveness.cc.o"
  "CMakeFiles/mg_assembler.dir/liveness.cc.o.d"
  "CMakeFiles/mg_assembler.dir/program.cc.o"
  "CMakeFiles/mg_assembler.dir/program.cc.o.d"
  "libmg_assembler.a"
  "libmg_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
