# Empty dependencies file for mg_assembler.
# This may be replaced when dependencies are built.
