file(REMOVE_RECURSE
  "CMakeFiles/mg_minigraph.dir/candidate.cc.o"
  "CMakeFiles/mg_minigraph.dir/candidate.cc.o.d"
  "CMakeFiles/mg_minigraph.dir/rewriter.cc.o"
  "CMakeFiles/mg_minigraph.dir/rewriter.cc.o.d"
  "CMakeFiles/mg_minigraph.dir/selection.cc.o"
  "CMakeFiles/mg_minigraph.dir/selection.cc.o.d"
  "CMakeFiles/mg_minigraph.dir/selectors.cc.o"
  "CMakeFiles/mg_minigraph.dir/selectors.cc.o.d"
  "libmg_minigraph.a"
  "libmg_minigraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_minigraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
