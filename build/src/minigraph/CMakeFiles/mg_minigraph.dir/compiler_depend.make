# Empty compiler generated dependencies file for mg_minigraph.
# This may be replaced when dependencies are built.
