file(REMOVE_RECURSE
  "libmg_minigraph.a"
)
