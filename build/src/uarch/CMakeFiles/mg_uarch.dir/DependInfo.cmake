
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_pred.cc" "src/uarch/CMakeFiles/mg_uarch.dir/branch_pred.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/branch_pred.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/mg_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/config.cc" "src/uarch/CMakeFiles/mg_uarch.dir/config.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/config.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/mg_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/core.cc.o.d"
  "/root/repo/src/uarch/functional.cc" "src/uarch/CMakeFiles/mg_uarch.dir/functional.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/functional.cc.o.d"
  "/root/repo/src/uarch/memory.cc" "src/uarch/CMakeFiles/mg_uarch.dir/memory.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/memory.cc.o.d"
  "/root/repo/src/uarch/store_sets.cc" "src/uarch/CMakeFiles/mg_uarch.dir/store_sets.cc.o" "gcc" "src/uarch/CMakeFiles/mg_uarch.dir/store_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/mg_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
