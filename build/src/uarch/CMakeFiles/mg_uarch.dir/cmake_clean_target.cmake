file(REMOVE_RECURSE
  "libmg_uarch.a"
)
