# Empty dependencies file for mg_uarch.
# This may be replaced when dependencies are built.
