file(REMOVE_RECURSE
  "CMakeFiles/mg_uarch.dir/branch_pred.cc.o"
  "CMakeFiles/mg_uarch.dir/branch_pred.cc.o.d"
  "CMakeFiles/mg_uarch.dir/cache.cc.o"
  "CMakeFiles/mg_uarch.dir/cache.cc.o.d"
  "CMakeFiles/mg_uarch.dir/config.cc.o"
  "CMakeFiles/mg_uarch.dir/config.cc.o.d"
  "CMakeFiles/mg_uarch.dir/core.cc.o"
  "CMakeFiles/mg_uarch.dir/core.cc.o.d"
  "CMakeFiles/mg_uarch.dir/functional.cc.o"
  "CMakeFiles/mg_uarch.dir/functional.cc.o.d"
  "CMakeFiles/mg_uarch.dir/memory.cc.o"
  "CMakeFiles/mg_uarch.dir/memory.cc.o.d"
  "CMakeFiles/mg_uarch.dir/store_sets.cc.o"
  "CMakeFiles/mg_uarch.dir/store_sets.cc.o.d"
  "libmg_uarch.a"
  "libmg_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
