file(REMOVE_RECURSE
  "CMakeFiles/mg_common.dir/logging.cc.o"
  "CMakeFiles/mg_common.dir/logging.cc.o.d"
  "CMakeFiles/mg_common.dir/stats_util.cc.o"
  "CMakeFiles/mg_common.dir/stats_util.cc.o.d"
  "CMakeFiles/mg_common.dir/string_util.cc.o"
  "CMakeFiles/mg_common.dir/string_util.cc.o.d"
  "libmg_common.a"
  "libmg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
