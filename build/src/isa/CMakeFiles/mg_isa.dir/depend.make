# Empty dependencies file for mg_isa.
# This may be replaced when dependencies are built.
