file(REMOVE_RECURSE
  "CMakeFiles/mg_isa.dir/instruction.cc.o"
  "CMakeFiles/mg_isa.dir/instruction.cc.o.d"
  "CMakeFiles/mg_isa.dir/minigraph_types.cc.o"
  "CMakeFiles/mg_isa.dir/minigraph_types.cc.o.d"
  "CMakeFiles/mg_isa.dir/opcodes.cc.o"
  "CMakeFiles/mg_isa.dir/opcodes.cc.o.d"
  "libmg_isa.a"
  "libmg_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
