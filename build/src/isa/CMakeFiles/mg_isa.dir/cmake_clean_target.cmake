file(REMOVE_RECURSE
  "libmg_isa.a"
)
