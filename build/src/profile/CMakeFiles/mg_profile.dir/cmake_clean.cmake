file(REMOVE_RECURSE
  "CMakeFiles/mg_profile.dir/exec_counts.cc.o"
  "CMakeFiles/mg_profile.dir/exec_counts.cc.o.d"
  "CMakeFiles/mg_profile.dir/profile_io.cc.o"
  "CMakeFiles/mg_profile.dir/profile_io.cc.o.d"
  "CMakeFiles/mg_profile.dir/slack_profile.cc.o"
  "CMakeFiles/mg_profile.dir/slack_profile.cc.o.d"
  "libmg_profile.a"
  "libmg_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
