file(REMOVE_RECURSE
  "libmg_profile.a"
)
