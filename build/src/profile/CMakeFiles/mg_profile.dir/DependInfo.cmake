
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/exec_counts.cc" "src/profile/CMakeFiles/mg_profile.dir/exec_counts.cc.o" "gcc" "src/profile/CMakeFiles/mg_profile.dir/exec_counts.cc.o.d"
  "/root/repo/src/profile/profile_io.cc" "src/profile/CMakeFiles/mg_profile.dir/profile_io.cc.o" "gcc" "src/profile/CMakeFiles/mg_profile.dir/profile_io.cc.o.d"
  "/root/repo/src/profile/slack_profile.cc" "src/profile/CMakeFiles/mg_profile.dir/slack_profile.cc.o" "gcc" "src/profile/CMakeFiles/mg_profile.dir/slack_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/mg_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/mg_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
