# Empty dependencies file for mg_profile.
# This may be replaced when dependencies are built.
