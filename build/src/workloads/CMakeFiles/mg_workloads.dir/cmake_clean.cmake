file(REMOVE_RECURSE
  "CMakeFiles/mg_workloads.dir/comm_kernels.cc.o"
  "CMakeFiles/mg_workloads.dir/comm_kernels.cc.o.d"
  "CMakeFiles/mg_workloads.dir/media_kernels.cc.o"
  "CMakeFiles/mg_workloads.dir/media_kernels.cc.o.d"
  "CMakeFiles/mg_workloads.dir/mibench_kernels.cc.o"
  "CMakeFiles/mg_workloads.dir/mibench_kernels.cc.o.d"
  "CMakeFiles/mg_workloads.dir/spec_kernels.cc.o"
  "CMakeFiles/mg_workloads.dir/spec_kernels.cc.o.d"
  "CMakeFiles/mg_workloads.dir/workloads.cc.o"
  "CMakeFiles/mg_workloads.dir/workloads.cc.o.d"
  "libmg_workloads.a"
  "libmg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
