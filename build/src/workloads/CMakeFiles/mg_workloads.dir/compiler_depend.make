# Empty compiler generated dependencies file for mg_workloads.
# This may be replaced when dependencies are built.
