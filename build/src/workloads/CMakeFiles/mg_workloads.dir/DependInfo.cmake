
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/comm_kernels.cc" "src/workloads/CMakeFiles/mg_workloads.dir/comm_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/mg_workloads.dir/comm_kernels.cc.o.d"
  "/root/repo/src/workloads/media_kernels.cc" "src/workloads/CMakeFiles/mg_workloads.dir/media_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/mg_workloads.dir/media_kernels.cc.o.d"
  "/root/repo/src/workloads/mibench_kernels.cc" "src/workloads/CMakeFiles/mg_workloads.dir/mibench_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/mg_workloads.dir/mibench_kernels.cc.o.d"
  "/root/repo/src/workloads/spec_kernels.cc" "src/workloads/CMakeFiles/mg_workloads.dir/spec_kernels.cc.o" "gcc" "src/workloads/CMakeFiles/mg_workloads.dir/spec_kernels.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/mg_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/mg_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/mg_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mg_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
