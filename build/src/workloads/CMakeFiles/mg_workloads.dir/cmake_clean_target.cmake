file(REMOVE_RECURSE
  "libmg_workloads.a"
)
