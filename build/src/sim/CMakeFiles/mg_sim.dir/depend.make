# Empty dependencies file for mg_sim.
# This may be replaced when dependencies are built.
