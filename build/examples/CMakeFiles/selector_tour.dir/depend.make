# Empty dependencies file for selector_tour.
# This may be replaced when dependencies are built.
