# Empty dependencies file for serialization_anatomy.
# This may be replaced when dependencies are built.
