file(REMOVE_RECURSE
  "CMakeFiles/serialization_anatomy.dir/serialization_anatomy.cpp.o"
  "CMakeFiles/serialization_anatomy.dir/serialization_anatomy.cpp.o.d"
  "serialization_anatomy"
  "serialization_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
