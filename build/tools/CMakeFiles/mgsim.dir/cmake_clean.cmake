file(REMOVE_RECURSE
  "CMakeFiles/mgsim.dir/mgsim.cc.o"
  "CMakeFiles/mgsim.dir/mgsim.cc.o.d"
  "mgsim"
  "mgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
