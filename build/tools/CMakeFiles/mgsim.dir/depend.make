# Empty dependencies file for mgsim.
# This may be replaced when dependencies are built.
