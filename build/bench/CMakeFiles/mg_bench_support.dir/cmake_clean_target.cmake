file(REMOVE_RECURSE
  "libmg_bench_support.a"
)
