file(REMOVE_RECURSE
  "CMakeFiles/mg_bench_support.dir/bench_support.cc.o"
  "CMakeFiles/mg_bench_support.dir/bench_support.cc.o.d"
  "libmg_bench_support.a"
  "libmg_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
