# Empty dependencies file for fig8_limit_study.
# This may be replaced when dependencies are built.
