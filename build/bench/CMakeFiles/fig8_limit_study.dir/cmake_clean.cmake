file(REMOVE_RECURSE
  "CMakeFiles/fig8_limit_study.dir/fig8_limit_study.cc.o"
  "CMakeFiles/fig8_limit_study.dir/fig8_limit_study.cc.o.d"
  "fig8_limit_study"
  "fig8_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
