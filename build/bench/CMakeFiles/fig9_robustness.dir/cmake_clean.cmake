file(REMOVE_RECURSE
  "CMakeFiles/fig9_robustness.dir/fig9_robustness.cc.o"
  "CMakeFiles/fig9_robustness.dir/fig9_robustness.cc.o.d"
  "fig9_robustness"
  "fig9_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
