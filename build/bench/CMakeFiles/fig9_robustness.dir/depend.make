# Empty dependencies file for fig9_robustness.
# This may be replaced when dependencies are built.
