# Empty compiler generated dependencies file for fig1_overview.
# This may be replaced when dependencies are built.
