# Empty dependencies file for fig3_naive_selectors.
# This may be replaced when dependencies are built.
