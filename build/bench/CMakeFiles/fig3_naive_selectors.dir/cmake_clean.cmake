file(REMOVE_RECURSE
  "CMakeFiles/fig3_naive_selectors.dir/fig3_naive_selectors.cc.o"
  "CMakeFiles/fig3_naive_selectors.dir/fig3_naive_selectors.cc.o.d"
  "fig3_naive_selectors"
  "fig3_naive_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_naive_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
