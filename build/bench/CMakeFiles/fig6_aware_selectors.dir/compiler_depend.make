# Empty compiler generated dependencies file for fig6_aware_selectors.
# This may be replaced when dependencies are built.
