file(REMOVE_RECURSE
  "CMakeFiles/fig6_aware_selectors.dir/fig6_aware_selectors.cc.o"
  "CMakeFiles/fig6_aware_selectors.dir/fig6_aware_selectors.cc.o.d"
  "fig6_aware_selectors"
  "fig6_aware_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aware_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
