#include "uarch/functional.h"

#include "common/logging.h"

namespace mg::uarch
{

using isa::Addr;
using isa::Instruction;
using isa::MgConstituent;
using isa::MgSrcKind;
using isa::MgTemplate;
using isa::Opcode;

namespace
{

/** Evaluate an integer ALU/complex op; b is the immediate for i-forms. */
uint64_t
evalIntOp(Opcode op, uint64_t a, uint64_t b)
{
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    switch (op) {
      case Opcode::ADD: case Opcode::ADDI: return a + b;
      case Opcode::SUB:                    return a - b;
      case Opcode::AND: case Opcode::ANDI: return a & b;
      case Opcode::OR:  case Opcode::ORI:  return a | b;
      case Opcode::XOR: case Opcode::XORI: return a ^ b;
      case Opcode::SLL: case Opcode::SLLI: return a << (b & 63);
      case Opcode::SRL: case Opcode::SRLI: return a >> (b & 63);
      case Opcode::SRA: case Opcode::SRAI:
        return static_cast<uint64_t>(sa >> (b & 63));
      case Opcode::SLT: case Opcode::SLTI: return sa < sb ? 1 : 0;
      case Opcode::SLTU: case Opcode::SLTIU: return a < b ? 1 : 0;
      case Opcode::MUL: case Opcode::MULI: return a * b;
      case Opcode::DIV:
        if (b == 0)
            return ~0ull; // RISC-V convention: div by zero -> -1
        if (sa == INT64_MIN && sb == -1)
            return a;
        return static_cast<uint64_t>(sa / sb);
      case Opcode::REM:
        if (b == 0)
            return a;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<uint64_t>(sa % sb);
      case Opcode::LI: return b;
      default:
        mg_panic("evalIntOp: not an ALU opcode: %s",
                 std::string(isa::mnemonic(op)).c_str());
    }
}

/** Evaluate a conditional branch predicate. */
bool
evalBranch(Opcode op, uint64_t a, uint64_t b)
{
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    switch (op) {
      case Opcode::BEQ:  return a == b;
      case Opcode::BNE:  return a != b;
      case Opcode::BLT:  return sa < sb;
      case Opcode::BGE:  return sa >= sb;
      case Opcode::BLTU: return a < b;
      case Opcode::BGEU: return a >= b;
      default:
        mg_panic("evalBranch: not a branch opcode: %s",
                 std::string(isa::mnemonic(op)).c_str());
    }
}

/** Bytes accessed by a memory opcode. */
unsigned
memBytes(Opcode op)
{
    switch (op) {
      case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
      case Opcode::LH: case Opcode::LHU: case Opcode::SH: return 2;
      case Opcode::LW: case Opcode::LWU: case Opcode::SW: return 4;
      case Opcode::LD: case Opcode::SD: return 8;
      default:
        mg_panic("memBytes: not a memory opcode");
    }
}

/** True for sign-extending loads. */
bool
loadSigned(Opcode op)
{
    return op == Opcode::LB || op == Opcode::LH || op == Opcode::LW ||
           op == Opcode::LD;
}

} // namespace

FunctionalCore::FunctionalCore(const assembler::Program &program,
                               const isa::MgBinaryInfo *mg_info)
    : prog(program), mgInfo(mg_info), mem(program)
{
    curPc = prog.entry;
    regs.fill(0);
    regs[isa::kStackReg] = mem.initialSp();

    if (mgInfo) {
        pcFlags.assign(prog.code.size(), 0);
        pcInstance.assign(prog.code.size(), nullptr);
        for (Addr pc : mgInfo->outlinedBodyPcs)
            if (pc < pcFlags.size())
                pcFlags[pc] |= kPcOutlinedBody;
        for (Addr pc : mgInfo->outliningJumpPcs)
            if (pc < pcFlags.size())
                pcFlags[pc] |= kPcOutliningJump;
        for (const auto &[pc, inst] : mgInfo->instances)
            if (pc < pcInstance.size())
                pcInstance[pc] = &inst;
    }
}

ExecStep
FunctionalCore::step()
{
    mg_assert(!isHalted, "step() after halt in '%s'", prog.name.c_str());
    const Instruction &inst = prog.at(curPc);

    if (inst.isHandle()) {
        mg_assert(mgInfo, "handle with no MgBinaryInfo at pc %u", curPc);
        const isa::MgInstance *info =
            curPc < pcInstance.size() ? pcInstance[curPc] : nullptr;
        mg_assert(info, "no instance metadata for handle at pc %u", curPc);
        bool disabled = disableState
                            ? disableState->isDisabled(curPc)
                            : (disableQuery && disableQuery(curPc));
        if (!disabled)
            return execHandle(*info);

        // Disabled: emit the restored outlining jump; the body then
        // executes as ordinary singletons ending in a jump back.
        ExecStep step;
        step.pc = curPc;
        step.inst = isa::makeJump(info->outlinedPc);
        step.nextPc = info->outlinedPc;
        step.taken = true;
        step.syntheticJump = true;
        curPc = info->outlinedPc;
        return step;
    }

    return execSingleton();
}

ExecStep
FunctionalCore::execSingleton()
{
    const Instruction &inst = prog.at(curPc);
    mg_assert(!inst.isElided(), "executed ELIDED slot at pc %u", curPc);

    ExecStep step;
    step.pc = curPc;
    step.inst = inst;
    step.nextPc = curPc + 1;
    applySingleton(inst, step);

    if (mgInfo && curPc < pcFlags.size()) {
        uint8_t f = pcFlags[curPc];
        if (f & kPcOutlinedBody)
            step.fromDisabledMg = true;
        if (f & kPcOutliningJump) {
            step.outliningJump = true;
            step.fromDisabledMg = false;
        }
    }
    executedInsts += step.originalInstCount();
    curPc = step.nextPc;
    return step;
}

void
FunctionalCore::applySingleton(const Instruction &inst, ExecStep &step)
{
    auto rv = [&](unsigned r) { return regs[r]; };
    auto wr = [&](unsigned r, uint64_t v) {
        if (r != isa::kZeroReg)
            regs[r] = v;
    };

    switch (inst.execClass()) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::IntComplex: {
        uint64_t b;
        switch (isa::opInfo(inst.op).format) {
          case isa::Format::RRR: b = rv(inst.rs2); break;
          case isa::Format::RRI: b = static_cast<uint64_t>(inst.imm); break;
          case isa::Format::RI:  b = static_cast<uint64_t>(inst.imm); break;
          default: mg_panic("bad ALU format");
        }
        wr(inst.rd, evalIntOp(inst.op, rv(inst.rs1), b));
        break;
      }
      case isa::ExecClass::MemRead: {
        uint64_t addr = rv(inst.rs1) + static_cast<uint64_t>(inst.imm);
        unsigned bytes = memBytes(inst.op);
        uint64_t v = loadSigned(inst.op)
                         ? static_cast<uint64_t>(mem.readSigned(addr, bytes))
                         : mem.read(addr, bytes);
        wr(inst.rd, v);
        step.memAddr = addr;
        step.memSize = static_cast<uint8_t>(bytes);
        break;
      }
      case isa::ExecClass::MemWrite: {
        uint64_t addr = rv(inst.rs1) + static_cast<uint64_t>(inst.imm);
        unsigned bytes = memBytes(inst.op);
        mem.write(addr, rv(inst.rs2), bytes);
        step.memAddr = addr;
        step.memSize = static_cast<uint8_t>(bytes);
        break;
      }
      case isa::ExecClass::Control: {
        switch (inst.op) {
          case Opcode::J:
            step.nextPc = static_cast<Addr>(inst.imm);
            step.taken = true;
            break;
          case Opcode::JAL:
            wr(inst.rd, step.pc + 1);
            step.nextPc = static_cast<Addr>(inst.imm);
            step.taken = true;
            break;
          case Opcode::JR:
            step.nextPc = static_cast<Addr>(rv(inst.rs1));
            step.taken = true;
            break;
          case Opcode::JALR: {
            Addr target = static_cast<Addr>(rv(inst.rs1));
            wr(inst.rd, step.pc + 1);
            step.nextPc = target;
            step.taken = true;
            break;
          }
          default: // conditional branch
            step.taken = evalBranch(inst.op, rv(inst.rs1), rv(inst.rs2));
            if (step.taken)
                step.nextPc = static_cast<Addr>(inst.imm);
            break;
        }
        break;
      }
      case isa::ExecClass::Nop:
        if (inst.isHalt())
            isHalted = true;
        break;
      case isa::ExecClass::MgHandle:
        mg_panic("applySingleton on a handle");
    }
}

ExecStep
FunctionalCore::execHandle(const isa::MgInstance &inst_info)
{
    const Instruction &handle = prog.at(curPc);
    const MgTemplate &tmpl = mgInfo->templates[inst_info.templateIdx];

    ExecStep step;
    step.pc = curPc;
    step.inst = handle;
    step.tmpl = &tmpl;
    step.instance = &inst_info;
    step.nextPc = inst_info.pcAfter;
    step.numConstituents = static_cast<uint8_t>(tmpl.size());

    // Gather external inputs in slot order.
    std::array<uint64_t, isa::kMaxMgInputs> ext{};
    if (handle.numSrcs >= 1)
        ext[0] = regs[handle.rs1];
    if (handle.numSrcs >= 2)
        ext[1] = regs[handle.rs2];
    if (handle.numSrcs >= 3)
        ext[2] = regs[handle.rs3];

    // Interpret the template in series, latching internal results.
    std::array<uint64_t, isa::kMaxMgSize> internal{};
    uint64_t output = 0;
    bool wrote_output = false;

    for (unsigned k = 0; k < tmpl.size(); ++k) {
        const MgConstituent &c = tmpl.ops[k];
        ConstituentExec &ce = step.constituents[k];
        auto src = [&](MgSrcKind kind, uint8_t idx) -> uint64_t {
            switch (kind) {
              case MgSrcKind::External: return ext[idx];
              case MgSrcKind::Internal: return internal[idx];
              case MgSrcKind::None: return 0;
            }
            return 0;
        };
        uint64_t a = src(c.src1Kind, c.src1);
        uint64_t b = src(c.src2Kind, c.src2);
        uint64_t result = 0;

        switch (isa::opInfo(c.op).execClass) {
          case isa::ExecClass::IntAlu:
          case isa::ExecClass::IntComplex: {
            isa::Format f = isa::opInfo(c.op).format;
            uint64_t rhs = (f == isa::Format::RRR)
                               ? b
                               : static_cast<uint64_t>(c.imm);
            result = evalIntOp(c.op, a, rhs);
            break;
          }
          case isa::ExecClass::MemRead: {
            uint64_t addr = a + static_cast<uint64_t>(c.imm);
            unsigned bytes = memBytes(c.op);
            result = loadSigned(c.op)
                         ? static_cast<uint64_t>(
                               mem.readSigned(addr, bytes))
                         : mem.read(addr, bytes);
            ce.isMem = true;
            ce.memAddr = addr;
            ce.memSize = static_cast<uint8_t>(bytes);
            break;
          }
          case isa::ExecClass::MemWrite: {
            uint64_t addr = a + static_cast<uint64_t>(c.imm);
            unsigned bytes = memBytes(c.op);
            mem.write(addr, b, bytes);
            ce.isMem = true;
            ce.isStore = true;
            ce.memAddr = addr;
            ce.memSize = static_cast<uint8_t>(bytes);
            break;
          }
          case isa::ExecClass::Control: {
            mg_assert((isa::isCondBranch(c.op) || c.op == Opcode::J) &&
                          k == tmpl.size() - 1,
                      "only a final branch or direct jump may be a "
                      "constituent");
            ce.taken = c.op == Opcode::J || evalBranch(c.op, a, b);
            if (ce.taken) {
                // c.imm holds the displacement from the handle PC.
                step.nextPc = static_cast<Addr>(
                    static_cast<int64_t>(step.pc) + c.imm);
                step.taken = true;
            }
            break;
          }
          default:
            mg_panic("illegal constituent op %s",
                     std::string(isa::mnemonic(c.op)).c_str());
        }
        internal[k] = result;
        if (c.producesOutput) {
            output = result;
            wrote_output = true;
        }
    }

    if (handle.hasDest && wrote_output && handle.rd != isa::kZeroReg)
        regs[handle.rd] = output;

    executedInsts += tmpl.size();
    curPc = step.nextPc;
    return step;
}

uint64_t
FunctionalCore::run(uint64_t max_steps)
{
    uint64_t steps = 0;
    while (!isHalted) {
        mg_assert(steps < max_steps,
                  "program '%s' exceeded %llu functional steps",
                  prog.name.c_str(),
                  static_cast<unsigned long long>(max_steps));
        step();
        ++steps;
    }
    return executedInsts;
}

} // namespace mg::uarch
