/**
 * @file
 * Core configuration: every Table-1 parameter of the simulated
 * processors, with factory functions for the paper's named
 * configurations (fully-provisioned baseline, reduced, and the
 * robustness-study variants).
 */

#ifndef MG_UARCH_CONFIG_H
#define MG_UARCH_CONFIG_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mg::uarch
{

/**
 * How much end-of-cycle invariant auditing the timing core performs
 * (see src/check/invariant_auditor.h and docs/CHECKING.md).
 *
 * The auditor is always compiled in; this knob selects how much of it
 * runs.  `Cheap` audits O(1) conservation laws every cycle; `Full`
 * additionally re-derives the O(window) structural invariants (ROB /
 * IQ / LQ / SQ walks, rename-map and free-list reconstruction).
 */
enum class CheckLevel : uint8_t
{
    Off,   ///< no auditing (production default)
    Cheap, ///< O(1) checks: occupancy bounds, commit accounting
    Full,  ///< everything: per-cycle window re-derivation
};

/**
 * The build/environment default for CoreConfig::checkLevel: Full when
 * the tree was configured with -DMG_CHECKS=ON, else the MG_CHECKLEVEL
 * environment variable (off | cheap | full), else Off.
 */
CheckLevel defaultCheckLevel();

/** Parse a check-level name (off | cheap | full). */
std::optional<CheckLevel> checkLevelFromName(const std::string &name);

/** The registry name of a check level (inverse of checkLevelFromName). */
std::string nameOf(CheckLevel level);

/** Parameters of one cache. */
struct CacheConfig
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 2;
    uint32_t lineBytes = 32;
    uint32_t hitLatency = 3;
};

/** Parameters of a TLB. */
struct TlbConfig
{
    uint32_t entries = 64;
    uint32_t assoc = 4;
    uint32_t pageBytes = 4096;
    uint32_t missLatency = 30;
};

/** Branch predictor parameters (24Kb hybrid bimodal/gShare). */
struct BranchPredConfig
{
    uint32_t bimodalEntries = 4096;  ///< 2-bit counters
    uint32_t gshareEntries = 4096;   ///< 2-bit counters
    uint32_t chooserEntries = 4096;  ///< 2-bit chooser counters
    uint32_t historyBits = 12;
    uint32_t btbEntries = 2048;
    uint32_t btbAssoc = 4;
    uint32_t rasEntries = 32;
};

/** Everything Table 1 specifies, plus model-level constants. */
struct CoreConfig
{
    std::string name = "base-4w";

    // --- Pipeline widths (the full/reduced knob) ---
    uint32_t fetchWidth = 4;
    uint32_t renameWidth = 4;   ///< matches fetch width in the paper
    uint32_t issueWidth = 4;
    uint32_t commitWidth = 4;

    // --- Window capacities ---
    uint32_t robEntries = 128;
    uint32_t issueQueueEntries = 30;
    uint32_t physRegs = 144;     ///< total; rename pool = physRegs - 32
    uint32_t loadQueueEntries = 48;
    uint32_t storeQueueEntries = 32;

    // --- Per-cycle issue limits by class ---
    uint32_t simpleIntPerCycle = 4;
    uint32_t complexPerCycle = 1;  ///< complex integer / FP unit
    uint32_t loadsPerCycle = 2;
    uint32_t storesPerCycle = 1;

    // --- Pipeline depth (13 stages) ---
    // 1 predict + 3 I$ + 1 decode = 5 cycles fetch-to-rename.
    uint32_t frontendDelay = 5;
    // 2 rename + 1 schedule: dispatch-to-earliest-issue.
    uint32_t renameDelay = 3;
    // 2 regread stages between issue and execute.
    uint32_t regreadDelay = 2;
    // 1 regwrite stage between execute-complete and commit-eligible.
    uint32_t regwriteDelay = 1;

    // --- Branch prediction ---
    BranchPredConfig branchPred{};

    // --- Memory system ---
    CacheConfig icache{32 * 1024, 2, 32, 3};
    CacheConfig dcache{32 * 1024, 2, 32, 3};
    CacheConfig l2{1024 * 1024, 4, 64, 12};
    TlbConfig itlb{64, 4, 4096, 30};
    TlbConfig dtlb{64, 4, 4096, 30};
    uint32_t memLatency = 200;

    // --- Memory speculation ---
    uint32_t storeSetsSsitEntries = 1024;
    uint32_t storeSetsLfstEntries = 128;
    /** SSIT cyclic-clearing interval in rename events (0 = never). */
    uint64_t storeSetsClearPeriod = 32768;

    // --- Mini-graph support (Table 1, bottom row) ---
    bool mgEnabled = true;          ///< processor recognises handles
    uint32_t mgIssuePerCycle = 2;   ///< ALU pipelines (mini-graphs/cycle)
    uint32_t mgMemIssuePerCycle = 1;///< of which may contain a memory op
    uint32_t mgtEntries = 512;      ///< MGT capacity (selection budget)

    // --- Slack-Dynamic hardware (used only by that selector) ---
    bool slackDynamicEnabled = false;
    bool slackDynamicIdeal = false;      ///< no outlining penalty
    bool slackDynamicConsumerCheck = true; ///< require consumer delay
    bool slackDynamicSial = false;       ///< SIAL heuristic variant
    uint32_t slackDynamicThreshold = 10;  ///< disable at this count
    uint32_t slackDynamicMax = 15;       ///< counter saturation
    uint32_t slackDynamicDecayCycles = 12288; ///< resurrection decay

    /** Maximum cycles to simulate (safety net against livelock). */
    uint64_t maxCycles = 1ull << 32;

    // --- Observability (src/trace/) ---
    /**
     * Cycle-loss accounting: charge every unfilled retirement slot to
     * a LossBucket and keep per-template serialization counters (see
     * uarch/sim_stats.h and docs/TRACING.md).  One branchy O(1) check
     * per non-ideal cycle; disable to shave the last percent off big
     * sweeps.
     */
    bool lossAccounting = true;

    // --- Invariant auditing (src/check/) ---
    /**
     * End-of-cycle pipeline invariant auditing.  Defaults to
     * defaultCheckLevel() so a -DMG_CHECKS=ON build (or an
     * MG_CHECKLEVEL=full environment) audits every simulation without
     * per-call-site changes.  A CheckError is thrown on a violation.
     */
    CheckLevel checkLevel = defaultCheckLevel();
};

/** The fully-provisioned 4-way baseline (Table 1). */
CoreConfig fullConfig();

/** The reduced 3-way configuration (Table 1). */
CoreConfig reducedConfig();

/** Further-reduced 2-way machine (Figure 9 robustness study). */
CoreConfig twoWayConfig();

/** 8-way machine (Figure 9 robustness study). */
CoreConfig eightWayConfig();

/** Reduced machine with 8KB D$ and 256KB L2 (Figure 9, "dmem/4"). */
CoreConfig dmemQuarterConfig();

/** Baseline enlarged to 40 IQ entries / 164 registers (knee check). */
CoreConfig enlargedConfig();

// --- Name registry -----------------------------------------------------
//
// Every preset above has a short registry name used by the CLI, the
// batch runner's job lists and the parameterised tests:
//
//   full reduced 2way 8way dmem4 enlarged

/** Look up a preset by registry name; nullopt for unknown names. */
std::optional<CoreConfig> configFromName(const std::string &name);

/**
 * The registry name of a configuration ("" if it is not one of the
 * presets — matched by CoreConfig::name, so renamed copies don't
 * count).
 */
std::string nameOf(const CoreConfig &config);

/** All registry names, in Table-1 order. */
const std::vector<std::string> &allConfigNames();

} // namespace mg::uarch

#endif // MG_UARCH_CONFIG_H
