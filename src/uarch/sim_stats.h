/**
 * @file
 * Aggregate results of one timing simulation.
 */

#ifndef MG_UARCH_SIM_STATS_H
#define MG_UARCH_SIM_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/slack_dynamic.h"
#include "uarch/store_sets.h"

namespace mg::uarch
{

/**
 * Cycle-loss taxonomy: where every non-ideal retirement slot went.
 *
 * Each simulated cycle offers `commitWidth` retirement slots; the
 * core charges every cycle's unfilled slots to exactly one bucket,
 * chosen from the oldest uncommitted instruction (or the front-end
 * state when the window is empty).  By construction the buckets sum
 * exactly to `commitWidth * cycles - committedUnits` — the identity
 * the accounting regression tests and the invariant auditor enforce.
 * See docs/TRACING.md for the attribution rules.
 */
enum class LossBucket : uint8_t
{
    FrontEnd,       ///< fetch supply: I$ miss, BTB penalty, refill depth
    BranchMispredict, ///< resolving / recovering a mispredicted branch
    DCacheMiss,     ///< D$/L2/memory latency at the window head
    IqFull,         ///< issue queue back-pressure limited the window
    RobFull,        ///< ROB back-pressure limited the window
    RegFull,        ///< physical-register back-pressure
    MgExternal,     ///< mini-graph external serialization (input wait)
    MgInternal,     ///< mini-graph internal serialization (chain delay)
    Other,          ///< dependence chains, FU limits, drain, misc.
};

constexpr size_t kNumLossBuckets = 9;

/** Registry name of a loss bucket (stable: used in the JSON dump). */
constexpr const char *
lossBucketName(LossBucket b)
{
    constexpr const char *names[kNumLossBuckets] = {
        "frontend", "branch-mispredict", "dcache-l2",
        "iq-full",  "rob-full",          "reg-full",
        "mg-external-serialization",     "mg-internal-serialization",
        "other"};
    return names[static_cast<size_t>(b)];
}

/**
 * Per-mini-graph-template serialization counters, indexed by the
 * rewritten binary's template id (MgBinaryInfo::templates order).
 */
struct MgTemplateSerialStats
{
    /** Issue events of handles naming this template. */
    uint64_t issues = 0;

    /**
     * External serialization: cycles issue was delayed past the point
     * the first constituent could have started, waiting for a
     * *serializing* external input (one feeding a later constituent).
     */
    uint64_t extWaitCycles = 0;

    /**
     * Internal serialization: extra cycles consumers waited for the
     * output because constituents execute in series instead of
     * dataflow order (template-structural penalty x issues).
     */
    uint64_t intPenaltyCycles = 0;
};

/** Everything a simulation run reports. */
struct SimResult
{
    uint64_t cycles = 0;

    /** Original-program instructions committed (handles count as n). */
    uint64_t originalInsts = 0;

    /** Commit "units" (handles count as 1, jumps included). */
    uint64_t committedUnits = 0;

    uint64_t committedHandles = 0;

    /** Original instructions retired inside enabled handles. */
    uint64_t coveredInsts = 0;

    /** Disabled-handle expansions executed (Slack-Dynamic). */
    uint64_t disabledExpansions = 0;

    /** Outlining jumps fetched for disabled handles. */
    uint64_t outliningJumps = 0;

    uint64_t memOrderViolations = 0;
    uint64_t issueReplays = 0;

    uint64_t robStallCycles = 0;
    uint64_t iqStallCycles = 0;
    uint64_t regStallCycles = 0;

    // Oldest-unissued blame counters (one per cycle with a non-empty
    // window): why the oldest not-yet-issued instruction did not
    // issue this cycle.  Diagnostic only.
    uint64_t blameNotDispatched = 0; ///< still in the fetch queue
    uint64_t blameEarliest = 0;      ///< within rename/schedule delay
    uint64_t blameSrcs = 0;          ///< waiting for operands
    uint64_t blameMemDep = 0;        ///< waiting for a predicted store
    uint64_t blameFu = 0;            ///< class issue limit
    uint64_t blameReplay = 0;        ///< actual operands late (replay)
    uint64_t blameIssued = 0;        ///< it issued this cycle

    // --- Cycle-loss accounting (cfg.lossAccounting) ---

    /** Retirement width the accounting ran at (0 = accounting off). */
    uint32_t accountedWidth = 0;

    /** Lost retirement slots charged to each bucket. */
    std::array<uint64_t, kNumLossBuckets> lossSlots{};

    /** Per-template serialization counters (rewritten binaries). */
    std::vector<MgTemplateSerialStats> mgTemplates;

    /** Total retirement slots the accounting covered. */
    uint64_t
    totalSlots() const
    {
        return static_cast<uint64_t>(accountedWidth) * cycles;
    }

    /** Slots lost = totalSlots() - committedUnits (identity target). */
    uint64_t
    lostSlots() const
    {
        return totalSlots() - committedUnits;
    }

    /** Sum of all loss buckets (must equal lostSlots()). */
    uint64_t
    lossSum() const
    {
        uint64_t sum = 0;
        for (uint64_t v : lossSlots)
            sum += v;
        return sum;
    }

    uint64_t
    loss(LossBucket b) const
    {
        return lossSlots[static_cast<size_t>(b)];
    }

    BranchPredStats branchPred;
    CacheStats icache, dcache, l2;
    CacheStats itlb, dtlb;
    StoreSetsStats storeSets;
    SlackDynamicStats slackDynamic;
    uint64_t slackDynamicDisabledStatic = 0;

    /** IPC over original-program instructions. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(originalInsts) / cycles : 0.0;
    }

    /** Dynamic coverage: fraction of instructions inside mini-graphs. */
    double
    coverage() const
    {
        return originalInsts
                   ? static_cast<double>(coveredInsts) / originalInsts
                   : 0.0;
    }
};

} // namespace mg::uarch

#endif // MG_UARCH_SIM_STATS_H
