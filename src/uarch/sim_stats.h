/**
 * @file
 * Aggregate results of one timing simulation.
 */

#ifndef MG_UARCH_SIM_STATS_H
#define MG_UARCH_SIM_STATS_H

#include <cstdint>

#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/slack_dynamic.h"
#include "uarch/store_sets.h"

namespace mg::uarch
{

/** Everything a simulation run reports. */
struct SimResult
{
    uint64_t cycles = 0;

    /** Original-program instructions committed (handles count as n). */
    uint64_t originalInsts = 0;

    /** Commit "units" (handles count as 1, jumps included). */
    uint64_t committedUnits = 0;

    uint64_t committedHandles = 0;

    /** Original instructions retired inside enabled handles. */
    uint64_t coveredInsts = 0;

    /** Disabled-handle expansions executed (Slack-Dynamic). */
    uint64_t disabledExpansions = 0;

    /** Outlining jumps fetched for disabled handles. */
    uint64_t outliningJumps = 0;

    uint64_t memOrderViolations = 0;
    uint64_t issueReplays = 0;

    uint64_t robStallCycles = 0;
    uint64_t iqStallCycles = 0;
    uint64_t regStallCycles = 0;

    // Oldest-unissued blame counters (one per cycle with a non-empty
    // window): why the oldest not-yet-issued instruction did not
    // issue this cycle.  Diagnostic only.
    uint64_t blameNotDispatched = 0; ///< still in the fetch queue
    uint64_t blameEarliest = 0;      ///< within rename/schedule delay
    uint64_t blameSrcs = 0;          ///< waiting for operands
    uint64_t blameMemDep = 0;        ///< waiting for a predicted store
    uint64_t blameFu = 0;            ///< class issue limit
    uint64_t blameReplay = 0;        ///< actual operands late (replay)
    uint64_t blameIssued = 0;        ///< it issued this cycle

    BranchPredStats branchPred;
    CacheStats icache, dcache, l2;
    CacheStats itlb, dtlb;
    StoreSetsStats storeSets;
    SlackDynamicStats slackDynamic;
    uint64_t slackDynamicDisabledStatic = 0;

    /** IPC over original-program instructions. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(originalInsts) / cycles : 0.0;
    }

    /** Dynamic coverage: fraction of instructions inside mini-graphs. */
    double
    coverage() const
    {
        return originalInsts
                   ? static_cast<double>(coveredInsts) / originalInsts
                   : 0.0;
    }
};

} // namespace mg::uarch

#endif // MG_UARCH_SIM_STATS_H
