/**
 * @file
 * Hybrid bimodal/gshare direction predictor with BTB and RAS
 * (Table 1: 24Kb hybrid predictor, 2K-entry 4-way BTB, 32-entry RAS).
 */

#ifndef MG_UARCH_BRANCH_PRED_H
#define MG_UARCH_BRANCH_PRED_H

#include <cstdint>
#include <vector>

#include "isa/instruction.h"
#include "uarch/config.h"

namespace mg::uarch
{

/** Branch predictor statistics. */
struct BranchPredStats
{
    uint64_t condPredictions = 0;
    uint64_t condMispredicts = 0;
    uint64_t btbMisses = 0;
    uint64_t rasPredictions = 0;
    uint64_t rasMispredicts = 0;

    double
    condMispredictRate() const
    {
        return condPredictions
                   ? static_cast<double>(condMispredicts) / condPredictions
                   : 0.0;
    }
};

/**
 * Direction predictor + BTB + RAS.
 *
 * Because the simulator never walks wrong paths, prediction and update
 * happen together at fetch time (the caller supplies the oracle
 * outcome); mispredictions are charged as a fetch stall until the
 * branch resolves in the back-end.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredConfig &cfg);

    /**
     * Predict and update a conditional branch.
     * @param pc     branch PC
     * @param taken  oracle outcome
     * @retval predicted direction
     */
    bool predictConditional(isa::Addr pc, bool taken);

    /**
     * Look up / train the BTB for a taken control transfer.
     * @retval true if the BTB held the correct target.
     */
    bool btbLookup(isa::Addr pc, isa::Addr target);

    /** Push a return address (on call). */
    void rasPush(isa::Addr return_pc);

    /**
     * Pop and check a return prediction.
     * @retval true if the RAS top matched the oracle target.
     */
    bool rasPop(isa::Addr actual_target);

    const BranchPredStats &stats() const { return stat; }

  private:
    uint8_t &counter(std::vector<uint8_t> &table, uint32_t idx);
    static void bump(uint8_t &ctr, bool up);

    BranchPredConfig cfg;
    std::vector<uint8_t> bimodal;
    std::vector<uint8_t> gshare;
    std::vector<uint8_t> chooser;
    uint32_t history = 0;

    struct BtbWay
    {
        uint64_t tag = 0;
        isa::Addr target = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };
    std::vector<BtbWay> btb;
    uint32_t btbSets;
    uint64_t btbUse = 0;

    std::vector<isa::Addr> ras;
    uint32_t rasTop = 0;   ///< index of next push slot
    uint32_t rasCount = 0;

    BranchPredStats stat;
};

} // namespace mg::uarch

#endif // MG_UARCH_BRANCH_PRED_H
