/**
 * @file
 * Slack-Dynamic hardware state (§4.4): per-static-handle saturating
 * counters that disable mini-graphs whose serialization delay actually
 * propagates to consumers, with periodic decay for resurrection.
 */

#ifndef MG_UARCH_SLACK_DYNAMIC_H
#define MG_UARCH_SLACK_DYNAMIC_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "isa/instruction.h"
#include "uarch/config.h"

namespace mg::uarch
{

/** Slack-Dynamic statistics. */
struct SlackDynamicStats
{
    uint64_t serializedIssues = 0;  ///< handle issues flagged serialized
    uint64_t harmfulEvents = 0;     ///< counter increments
    uint64_t disables = 0;
    uint64_t resurrections = 0;
};

/** Saturating-counter disable table, keyed by static handle PC. */
class SlackDynamicState
{
  public:
    explicit SlackDynamicState(const CoreConfig &cfg)
        : threshold(cfg.slackDynamicThreshold),
          maxCount(cfg.slackDynamicMax),
          decayCycles(cfg.slackDynamicDecayCycles),
          nextDecay(cfg.slackDynamicDecayCycles)
    {}

    /** Is this static handle currently disabled? */
    bool
    isDisabled(isa::Addr pc) const
    {
        // Most programs never disable anything; skip the hash probe.
        return !disabled.empty() && disabled.count(pc) != 0;
    }

    /** Record a harmful serialization event for a handle. */
    void
    harmful(isa::Addr pc)
    {
        ++stat.harmfulEvents;
        uint8_t &ctr = counters[pc];
        ctr = static_cast<uint8_t>(std::min<uint32_t>(ctr + 2, maxCount));
        if (ctr >= threshold && disabled.insert(pc).second)
            ++stat.disables;
    }

    /**
     * Record a benign (non-serialized) execution: the hysteresis that
     * keeps occasionally-serializing mini-graphs enabled (§4.4,
     * "avoid rashly disabling a mini-graph that serializes once").
     */
    void
    benign(isa::Addr pc)
    {
        auto it = counters.find(pc);
        if (it != counters.end() && it->second > 0)
            --it->second;
    }

    /** Periodic decay tick: halve counters, resurrect cool handles. */
    void
    maybeDecay(uint64_t cycle)
    {
        if (cycle < nextDecay)
            return;
        nextDecay = cycle + decayCycles;
        for (auto &[pc, ctr] : counters) {
            ctr /= 2;
            if (ctr < threshold && disabled.erase(pc))
                ++stat.resurrections;
        }
    }

    void noteSerializedIssue() { ++stat.serializedIssues; }

    size_t disabledCount() const { return disabled.size(); }
    const SlackDynamicStats &stats() const { return stat; }

  private:
    uint32_t threshold;
    uint32_t maxCount;
    uint64_t decayCycles;
    uint64_t nextDecay = 0;
    std::unordered_map<isa::Addr, uint8_t> counters;
    std::unordered_set<isa::Addr> disabled;
    SlackDynamicStats stat;
};

} // namespace mg::uarch

#endif // MG_UARCH_SLACK_DYNAMIC_H
