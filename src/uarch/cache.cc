#include "uarch/cache.h"

#include "common/logging.h"

namespace mg::uarch
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    mg_assert(cfg.assoc > 0 && isPow2(cfg.lineBytes),
              "cache line size must be a power of two (line=%u)",
              cfg.lineBytes);
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    mg_assert(numSets > 0 && isPow2(numSets), "cache sets must be a "
              "power of two (size=%u line=%u assoc=%u)", cfg.sizeBytes,
              cfg.lineBytes, cfg.assoc);
    lineShift = __builtin_ctz(cfg.lineBytes);
    setShift = __builtin_ctz(numSets);
    ways.resize(static_cast<size_t>(numSets) * cfg.assoc);
}

bool
Cache::access(uint64_t addr)
{
    ++stat.accesses;
    ++useCounter;
    uint64_t line = addr >> lineShift;
    uint32_t set = static_cast<uint32_t>(line & (numSets - 1));
    uint64_t tag = line >> setShift;
    Way *base = &ways[static_cast<size_t>(set) * cfg.assoc];

    Way *victim = base;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useCounter;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++stat.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useCounter;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t line = addr >> lineShift;
    uint32_t set = static_cast<uint32_t>(line & (numSets - 1));
    uint64_t tag = line >> setShift;
    const Way *base = &ways[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Way &w : ways)
        w.valid = false;
}

Tlb::Tlb(const TlbConfig &config) : cfg(config)
{
    numSets = cfg.entries / cfg.assoc;
    mg_assert(numSets > 0 && isPow2(numSets), "TLB sets must be a power "
              "of two");
    mg_assert(isPow2(cfg.pageBytes),
              "TLB page size must be a power of two");
    pageShift = __builtin_ctz(cfg.pageBytes);
    setShift = __builtin_ctz(numSets);
    ways.resize(static_cast<size_t>(numSets) * cfg.assoc);
}

uint32_t
Tlb::access(uint64_t addr)
{
    ++stat.accesses;
    ++useCounter;
    uint64_t vpn = addr >> pageShift;
    uint32_t set = static_cast<uint32_t>(vpn & (numSets - 1));
    uint64_t key = vpn >> setShift;
    Way *base = &ways[static_cast<size_t>(set) * cfg.assoc];

    Way *victim = base;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.vpn == key) {
            way.lastUse = useCounter;
            return 0;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++stat.misses;
    victim->valid = true;
    victim->vpn = key;
    victim->lastUse = useCounter;
    return cfg.missLatency;
}

CacheHierarchy::CacheHierarchy(const CoreConfig &config)
    : cfg(config), l1i(config.icache), l1d(config.dcache), l2(config.l2),
      itlbUnit(config.itlb), dtlbUnit(config.dtlb)
{
}

uint32_t
CacheHierarchy::dataAccess(uint64_t addr, bool /* write */)
{
    uint32_t lat = dtlbUnit.access(addr);
    lat += cfg.dcache.hitLatency;
    if (!l1d.access(addr)) {
        lat += cfg.l2.hitLatency;
        if (!l2.access(addr))
            lat += cfg.memLatency;
    }
    return lat;
}

uint32_t
CacheHierarchy::instAccess(uint64_t addr)
{
    uint32_t lat = itlbUnit.access(addr);
    // L1I hit latency is already part of the front-end pipeline depth
    // (three I$ stages); only the *extra* miss latency is returned.
    if (!l1i.access(addr)) {
        lat += cfg.l2.hitLatency;
        if (!l2.access(addr))
            lat += cfg.memLatency;
    }
    return lat;
}

} // namespace mg::uarch
