/**
 * @file
 * Flat byte-addressable data memory for one simulated program.
 */

#ifndef MG_UARCH_MEMORY_H
#define MG_UARCH_MEMORY_H

#include <cstdint>
#include <vector>

#include "assembler/program.h"

namespace mg::uarch
{

/**
 * The program's data address space: a flat byte array initialised
 * from the program's data image, with the stack at the top.
 */
class Memory
{
  public:
    /** Construct and load a program's data segment. */
    explicit Memory(const assembler::Program &prog);

    /** Read `bytes` (1/2/4/8) at addr, zero-extended. */
    uint64_t read(uint64_t addr, unsigned bytes) const;

    /** Read with sign extension. */
    int64_t readSigned(uint64_t addr, unsigned bytes) const;

    /** Write the low `bytes` of value at addr. */
    void write(uint64_t addr, uint64_t value, unsigned bytes);

    /** Initial stack pointer (top of memory, 16-byte aligned). */
    uint64_t initialSp() const { return (size() - 64) & ~15ull; }

    uint64_t size() const { return bytes.size(); }

  private:
    void checkRange(uint64_t addr, unsigned n) const;

    std::vector<uint8_t> bytes;
};

} // namespace mg::uarch

#endif // MG_UARCH_MEMORY_H
