#include "uarch/store_sets.h"

#include <algorithm>

#include "common/logging.h"

namespace mg::uarch
{

StoreSets::StoreSets(uint32_t ssit_entries, uint32_t lfst_entries,
                     uint64_t clear_period)
    : clearPeriod(clear_period), ssit(ssit_entries, kInvalidSet),
      lfst(lfst_entries)
{
    mg_assert(ssit_entries && (ssit_entries & (ssit_entries - 1)) == 0,
              "SSIT entries must be a power of two");
}

void
StoreSets::maybeClear()
{
    if (clearPeriod == 0 || ++renameEvents % clearPeriod != 0)
        return;
    std::fill(ssit.begin(), ssit.end(), kInvalidSet);
    // LFST pointers stay: in-flight waits already captured remain
    // valid; new renames simply find no set.
}

uint32_t
StoreSets::ssitIndex(isa::Addr pc) const
{
    return pc & (static_cast<uint32_t>(ssit.size()) - 1);
}

uint64_t
StoreSets::storeRenamed(isa::Addr pc, uint64_t seq)
{
    maybeClear();
    uint32_t set = ssit[ssitIndex(pc)];
    if (set == kInvalidSet)
        return kNone;
    LfstEntry &e = lfst[set % lfst.size()];
    uint64_t prev = e.seq;
    e.seq = seq;
    e.pc = pc;
    return prev;
}

uint64_t
StoreSets::loadRenamed(isa::Addr pc)
{
    maybeClear();
    uint32_t set = ssit[ssitIndex(pc)];
    if (set == kInvalidSet)
        return kNone;
    const LfstEntry &e = lfst[set % lfst.size()];
    if (e.seq != kNone)
        ++stat.loadsDeferred;
    return e.seq;
}

void
StoreSets::storeCompleted(isa::Addr pc, uint64_t seq)
{
    uint32_t set = ssit[ssitIndex(pc)];
    if (set == kInvalidSet)
        return;
    LfstEntry &e = lfst[set % lfst.size()];
    if (e.seq == seq)
        e.seq = kNone;
}

void
StoreSets::violation(isa::Addr load_pc, isa::Addr store_pc)
{
    ++stat.violations;
    uint32_t &load_set = ssit[ssitIndex(load_pc)];
    uint32_t &store_set = ssit[ssitIndex(store_pc)];
    if (load_set == kInvalidSet && store_set == kInvalidSet) {
        load_set = store_set = nextSetId++;
    } else if (load_set == kInvalidSet) {
        load_set = store_set;
    } else if (store_set == kInvalidSet) {
        store_set = load_set;
    } else {
        // Merge: adopt the smaller id (declining-set-id rule).
        uint32_t winner = std::min(load_set, store_set);
        load_set = store_set = winner;
    }
}

} // namespace mg::uarch
