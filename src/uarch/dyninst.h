/**
 * @file
 * DynInst: one in-flight instruction (or mini-graph handle) in the
 * timing core, carrying its oracle execution facts plus all per-stage
 * timing state.
 */

#ifndef MG_UARCH_DYNINST_H
#define MG_UARCH_DYNINST_H

#include <array>
#include <cstdint>
#include <limits>

#include "uarch/functional.h"

namespace mg::uarch
{

/** "Unknown / not yet" cycle sentinel. */
constexpr uint64_t kInfCycle = std::numeric_limits<uint64_t>::max();

/** "Committed long ago" producer sentinel. */
constexpr uint64_t kCommitted = std::numeric_limits<uint64_t>::max();

/** One in-flight instruction. */
struct DynInst
{
    ExecStep ex;      ///< oracle execution facts (owns the inst copy)
    uint64_t seq = 0; ///< dynamic sequence number (ROB slot = seq % N)

    // ---- rename state ----
    int destArch = -1;              ///< architectural dest (-1: none)
    uint64_t prevProducer = kCommitted; ///< rename-map value displaced
    uint8_t numSrcs = 0;
    std::array<uint64_t, 3> srcProducers{kCommitted, kCommitted,
                                         kCommitted};
    std::array<uint8_t, 3> srcSlots{0, 0, 0}; ///< operand slot per src

    // ---- basic-block instance (profiler) ----
    uint64_t bbInstance = 0;
    bool bbHead = false;

    // ---- memory state ----
    bool isLoadOp = false;   ///< load singleton or handle w/ load
    bool isStoreOp = false;  ///< store singleton or handle w/ store
    uint64_t memAddr = 0;
    uint8_t memSize = 0;
    uint64_t waitForStore = kCommitted; ///< StoreSets ordering dep
    uint64_t memIssueCycle = kInfCycle; ///< when the mem op accesses D$
    uint64_t memExecDone = kInfCycle;   ///< store addr/data known
    bool forwarded = false;

    // ---- pipeline timing ----
    uint64_t fetchCycle = 0;
    uint64_t renameReady = 0;    ///< earliest rename/dispatch cycle
    uint64_t dispatchCycle = 0;
    uint64_t earliestIssue = 0;
    bool inIq = false;
    bool issued = false;
    uint64_t issueCycle = kInfCycle;
    uint64_t specReady = kInfCycle; ///< dest ready, hit-speculative
    uint64_t ready = kInfCycle;     ///< dest ready, actual
    uint64_t execDone = kInfCycle;  ///< resolve point (branches/stores)
    uint64_t complete = kInfCycle;  ///< commit-eligible cycle
    bool mispredicted = false;
    bool missedCache = false;       ///< any D$ access exceeded hit latency

    // ---- mini-graph bookkeeping ----
    bool serializedIssue = false; ///< Slack-Dynamic serialization flag

    bool isHandle() const { return ex.isHandle(); }
    bool hasDest() const { return destArch >= 0; }

    /**
     * Reset every field except `ex` to its freshly-constructed value.
     * Fetch creates instructions directly in recycled fetch-queue
     * slots (RingQueue::emplace_back_raw()) and overwrites `ex` with
     * the oracle step separately; re-zeroing the large inline
     * constituents array would be pure waste.
     */
    void
    resetMeta()
    {
        seq = 0;
        destArch = -1;
        prevProducer = kCommitted;
        numSrcs = 0;
        srcProducers = {kCommitted, kCommitted, kCommitted};
        srcSlots = {0, 0, 0};
        bbInstance = 0;
        bbHead = false;
        isLoadOp = false;
        isStoreOp = false;
        memAddr = 0;
        memSize = 0;
        waitForStore = kCommitted;
        memIssueCycle = kInfCycle;
        memExecDone = kInfCycle;
        forwarded = false;
        fetchCycle = 0;
        renameReady = 0;
        dispatchCycle = 0;
        earliestIssue = 0;
        inIq = false;
        issued = false;
        issueCycle = kInfCycle;
        specReady = kInfCycle;
        ready = kInfCycle;
        execDone = kInfCycle;
        complete = kInfCycle;
        mispredicted = false;
        missedCache = false;
        serializedIssue = false;
    }
};

} // namespace mg::uarch

#endif // MG_UARCH_DYNINST_H
