/**
 * @file
 * Observation interface the timing core exposes to the slack profiler.
 *
 * The profiler (src/profile) implements these callbacks to build
 * per-static-instruction issue-time / ready-time / local-slack
 * aggregates from a singleton (non-mini-graph) timing run, exactly the
 * "more verbose profiler output" §4.3 describes.
 */

#ifndef MG_UARCH_PROFILER_HOOKS_H
#define MG_UARCH_PROFILER_HOOKS_H

#include <cstdint>

#include "isa/instruction.h"

namespace mg::uarch
{

/** Per-source observation at consumer issue time. */
struct SrcObservation
{
    uint8_t slot = 0;            ///< source operand slot (0/1)
    isa::Addr producerPc = isa::kNoAddr;
    uint64_t producerSeq = 0;
    uint64_t readyCycle = 0;     ///< when the value became available
};

/** Observation of one instruction issuing. */
struct IssueObservation
{
    isa::Addr pc = 0;
    uint64_t seq = 0;
    uint64_t bbInstance = 0;     ///< dynamic basic-block instance id
    bool bbHead = false;         ///< first instruction of its block
    uint64_t issueCycle = 0;
    uint64_t readyCycle = 0;     ///< dest value ready (actual), or issue
    bool producesValue = false;
    bool isStore = false;
    bool isCondBranch = false;
    bool mispredicted = false;
    uint64_t storeExecDone = 0;  ///< stores: addr/data known
    const SrcObservation *srcs = nullptr;
    uint8_t numSrcs = 0;
};

/** Observation of one instruction entering the pipeline. */
struct FetchObservation
{
    isa::Addr pc = 0;
    uint64_t seq = 0;
    uint64_t cycle = 0;
    const isa::Instruction *inst = nullptr;
    bool isHandle = false;
    uint8_t mgSize = 0;          ///< constituents (handles), else 0
};

/** Observation of one instruction renaming/dispatching into the IQ. */
struct DispatchObservation
{
    uint64_t seq = 0;
    uint64_t cycle = 0;
};

/** Observation of one instruction retiring, with its full timeline. */
struct CommitObservation
{
    uint64_t seq = 0;
    uint64_t cycle = 0;          ///< commit cycle
    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0;
    uint64_t issueCycle = 0;
    uint64_t completeCycle = 0;  ///< commit-eligible cycle
    bool mispredicted = false;
    bool isLoad = false;
    bool isStore = false;
    bool isHandle = false;
    bool missedCache = false;
};

/**
 * Callbacks invoked by the core when a profiler is attached.
 *
 * The slack profiler (src/profile) consumes the issue/commit/squash
 * subset; the pipeline tracer (src/trace) additionally consumes the
 * per-stage observations, which default to no-ops so existing
 * implementations are unaffected.
 */
class ProfilerHooks
{
  public:
    virtual ~ProfilerHooks() = default;

    /** An instruction issued (with resolved source observations). */
    virtual void onIssue(const IssueObservation &obs) = 0;

    /** A load forwarded from an in-flight store. */
    virtual void onStoreForward(uint64_t store_seq,
                                uint64_t load_issue_cycle) = 0;

    /** Instructions with seq >= first_squashed were squashed. */
    virtual void onSquash(uint64_t first_squashed) = 0;

    /** The instruction with this seq committed. */
    virtual void onCommit(uint64_t seq) = 0;

    /** An instruction was fetched (trace-sink seam; default no-op). */
    virtual void onFetch(const FetchObservation &) {}

    /** An instruction dispatched into the window (default no-op). */
    virtual void onDispatch(const DispatchObservation &) {}

    /** An instruction retired, with its timeline (default no-op). */
    virtual void onCommitDetail(const CommitObservation &) {}
};

} // namespace mg::uarch

#endif // MG_UARCH_PROFILER_HOOKS_H
