#include "uarch/config.h"

#include <cstdlib>

#include "common/logging.h"

namespace mg::uarch
{

std::optional<CheckLevel>
checkLevelFromName(const std::string &name)
{
    if (name == "off")
        return CheckLevel::Off;
    if (name == "cheap")
        return CheckLevel::Cheap;
    if (name == "full")
        return CheckLevel::Full;
    return std::nullopt;
}

std::string
nameOf(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off: return "off";
      case CheckLevel::Cheap: return "cheap";
      case CheckLevel::Full: return "full";
    }
    return "off";
}

CheckLevel
defaultCheckLevel()
{
    // Resolved once: the default is a build/environment property, not
    // a per-config one (configs can still override the field).
    static const CheckLevel level = [] {
#ifdef MG_CHECKS
        return CheckLevel::Full;
#else
        const char *env = std::getenv("MG_CHECKLEVEL");
        if (!env)
            return CheckLevel::Off;
        auto parsed = checkLevelFromName(env);
        if (!parsed) {
            mg_warn("ignoring unknown MG_CHECKLEVEL '%s' "
                    "(expected off | cheap | full)", env);
            return CheckLevel::Off;
        }
        return *parsed;
#endif
    }();
    return level;
}

CoreConfig
fullConfig()
{
    CoreConfig c;
    c.name = "full-4w";
    return c;
}

CoreConfig
reducedConfig()
{
    CoreConfig c;
    c.name = "reduced-3w";
    c.fetchWidth = 3;
    c.renameWidth = 3;
    c.issueWidth = 3;
    c.commitWidth = 3;
    c.issueQueueEntries = 20;
    c.physRegs = 120;
    c.simpleIntPerCycle = 3;
    c.complexPerCycle = 1;
    c.loadsPerCycle = 1;
    c.storesPerCycle = 1;
    return c;
}

CoreConfig
twoWayConfig()
{
    CoreConfig c;
    c.name = "cross-2w";
    c.fetchWidth = 2;
    c.renameWidth = 2;
    c.issueWidth = 2;
    c.commitWidth = 2;
    c.issueQueueEntries = 14;
    c.physRegs = 96;
    c.simpleIntPerCycle = 2;
    c.complexPerCycle = 1;
    c.loadsPerCycle = 1;
    c.storesPerCycle = 1;
    return c;
}

CoreConfig
eightWayConfig()
{
    CoreConfig c;
    c.name = "cross-8w";
    c.fetchWidth = 8;
    c.renameWidth = 8;
    c.issueWidth = 8;
    c.commitWidth = 8;
    c.issueQueueEntries = 60;
    c.physRegs = 224;
    c.robEntries = 256;
    c.simpleIntPerCycle = 8;
    c.complexPerCycle = 2;
    c.loadsPerCycle = 4;
    c.storesPerCycle = 2;
    return c;
}

CoreConfig
dmemQuarterConfig()
{
    CoreConfig c = reducedConfig();
    c.name = "cross-dmem4";
    c.dcache.sizeBytes = 8 * 1024;
    c.l2.sizeBytes = 256 * 1024;
    return c;
}

CoreConfig
enlargedConfig()
{
    CoreConfig c;
    c.name = "enlarged-4w";
    c.issueQueueEntries = 40;
    c.physRegs = 164;
    return c;
}

namespace
{

struct ConfigEntry
{
    const char *name;
    CoreConfig (*factory)();
};

constexpr ConfigEntry kConfigRegistry[] = {
    {"full", fullConfig},         {"reduced", reducedConfig},
    {"2way", twoWayConfig},       {"8way", eightWayConfig},
    {"dmem4", dmemQuarterConfig}, {"enlarged", enlargedConfig},
};

} // namespace

std::optional<CoreConfig>
configFromName(const std::string &name)
{
    for (const auto &e : kConfigRegistry) {
        if (name == e.name)
            return e.factory();
    }
    return std::nullopt;
}

std::string
nameOf(const CoreConfig &config)
{
    for (const auto &e : kConfigRegistry) {
        if (config.name == e.factory().name)
            return e.name;
    }
    return "";
}

const std::vector<std::string> &
allConfigNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : kConfigRegistry)
            out.emplace_back(e.name);
        return out;
    }();
    return names;
}

} // namespace mg::uarch
