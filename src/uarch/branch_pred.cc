#include "uarch/branch_pred.h"

#include "common/logging.h"

namespace mg::uarch
{

BranchPredictor::BranchPredictor(const BranchPredConfig &config)
    : cfg(config),
      bimodal(config.bimodalEntries, 1),
      gshare(config.gshareEntries, 1),
      chooser(config.chooserEntries, 1)
{
    btbSets = cfg.btbEntries / cfg.btbAssoc;
    mg_assert(btbSets > 0 && (btbSets & (btbSets - 1)) == 0,
              "BTB sets must be a power of two");
    btb.resize(cfg.btbEntries);
    ras.resize(cfg.rasEntries, 0);
}

void
BranchPredictor::bump(uint8_t &ctr, bool up)
{
    if (up) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

bool
BranchPredictor::predictConditional(isa::Addr pc, bool taken)
{
    ++stat.condPredictions;
    uint32_t b_idx = pc & (cfg.bimodalEntries - 1);
    uint32_t g_idx = (pc ^ (history << (32 - cfg.historyBits) >>
                            (32 - cfg.historyBits))) &
                     (cfg.gshareEntries - 1);
    uint32_t c_idx = pc & (cfg.chooserEntries - 1);

    bool b_pred = bimodal[b_idx] >= 2;
    bool g_pred = gshare[g_idx] >= 2;
    bool use_gshare = chooser[c_idx] >= 2;
    bool pred = use_gshare ? g_pred : b_pred;

    // Train: component counters toward the outcome; the chooser toward
    // whichever component was right (when they disagree).
    bump(bimodal[b_idx], taken);
    bump(gshare[g_idx], taken);
    if (b_pred != g_pred)
        bump(chooser[c_idx], g_pred == taken);
    history = ((history << 1) | (taken ? 1 : 0)) &
              ((1u << cfg.historyBits) - 1);

    if (pred != taken)
        ++stat.condMispredicts;
    return pred;
}

bool
BranchPredictor::btbLookup(isa::Addr pc, isa::Addr target)
{
    ++btbUse;
    uint32_t set = pc & (btbSets - 1);
    uint64_t tag = pc / btbSets;
    BtbWay *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];

    BtbWay *victim = base;
    for (uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        BtbWay &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = btbUse;
            bool correct = way.target == target;
            way.target = target;
            if (!correct)
                ++stat.btbMisses;
            return correct;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    ++stat.btbMisses;
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = btbUse;
    return false;
}

void
BranchPredictor::rasPush(isa::Addr return_pc)
{
    ras[rasTop] = return_pc;
    rasTop = (rasTop + 1) % cfg.rasEntries;
    if (rasCount < cfg.rasEntries)
        ++rasCount;
}

bool
BranchPredictor::rasPop(isa::Addr actual_target)
{
    ++stat.rasPredictions;
    if (rasCount == 0) {
        ++stat.rasMispredicts;
        return false;
    }
    rasTop = (rasTop + cfg.rasEntries - 1) % cfg.rasEntries;
    --rasCount;
    bool correct = ras[rasTop] == actual_target;
    if (!correct)
        ++stat.rasMispredicts;
    return correct;
}

} // namespace mg::uarch
