/**
 * @file
 * Functional (architectural) execution of MG-RISC programs.
 *
 * FunctionalCore is both the golden model for correctness tests and
 * the *oracle* that drives the timing core's fetch stage: because the
 * timing model never walks wrong paths, it can pull the committed
 * instruction stream — with all values, memory addresses and branch
 * outcomes resolved — directly from this in-order interpreter.
 *
 * The core also understands rewritten binaries: an enabled MGHANDLE
 * executes its whole template atomically; a handle that the hardware
 * has dynamically disabled (Slack-Dynamic) is expanded into its
 * outlined singleton form, including the two outlining jumps whose
 * fetch cost is the encoding penalty discussed in §4.4/§5.3.
 */

#ifndef MG_UARCH_FUNCTIONAL_H
#define MG_UARCH_FUNCTIONAL_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "uarch/memory.h"

namespace mg::uarch
{

/** Execution record of one constituent inside an enabled handle. */
struct ConstituentExec
{
    uint64_t memAddr = 0;
    uint8_t memSize = 0;
    bool isMem = false;
    bool isStore = false;
    bool taken = false;
};

/**
 * One step of oracle execution: a singleton, an enabled handle
 * (reported as a unit), or one element of a disabled handle's
 * outlined expansion.
 */
struct ExecStep
{
    isa::Addr pc = 0;
    isa::Instruction inst;
    isa::Addr nextPc = 0;

    // Memory access (singletons).
    uint64_t memAddr = 0;
    uint8_t memSize = 0;

    // Control outcome.
    bool taken = false;

    /** Synthetic outlining jump injected for a disabled handle. */
    bool syntheticJump = false;

    /** Real jump-back at the end of an outlined body. */
    bool outliningJump = false;

    /** Singleton that is part of a disabled handle's outlined body. */
    bool fromDisabledMg = false;

    /** Enabled handle: template and per-constituent execution facts. */
    const isa::MgTemplate *tmpl = nullptr;
    const isa::MgInstance *instance = nullptr;
    std::vector<ConstituentExec> constituents;

    bool isHandle() const { return tmpl != nullptr; }

    /** Original-program instructions this step accounts for. */
    unsigned
    originalInstCount() const
    {
        if (isHandle())
            return tmpl->size();
        if (syntheticJump || outliningJump)
            return 0;
        return 1;
    }
};

/**
 * In-order architectural interpreter.
 */
class FunctionalCore
{
  public:
    /**
     * @param prog    the (possibly rewritten) program
     * @param mg_info template table for rewritten binaries (or null)
     */
    FunctionalCore(const assembler::Program &prog,
                   const isa::MgBinaryInfo *mg_info = nullptr);

    /**
     * Install the dynamic-disable oracle: called with a handle PC,
     * returns true if the hardware currently has it disabled.
     * When unset, every handle is enabled.
     */
    void
    setDisableQuery(std::function<bool(isa::Addr)> query)
    {
        disableQuery = std::move(query);
    }

    /** Execute one step. Must not be called once halted. */
    ExecStep step();

    bool halted() const { return isHalted; }

    /** Architectural instructions executed (original-program count). */
    uint64_t instCount() const { return executedInsts; }

    /** Current architectural PC. */
    isa::Addr pc() const { return curPc; }

    /** Register read (tests). */
    uint64_t reg(unsigned r) const { return regs[r]; }

    /** Register write (tests / initialisation). */
    void setReg(unsigned r, uint64_t v) { if (r) regs[r] = v; }

    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

    /**
     * Run to completion (convenience for tests and workloads).
     * @param max_steps safety limit
     * @retval number of architectural instructions executed
     */
    uint64_t run(uint64_t max_steps = 1ull << 32);

  private:
    ExecStep execSingleton();
    ExecStep execHandle(const isa::MgInstance &inst_info);

    /** Evaluate a singleton's result value (ALU/loads). */
    void applySingleton(const isa::Instruction &inst, ExecStep &step);

    const assembler::Program &prog;
    const isa::MgBinaryInfo *mgInfo;
    std::function<bool(isa::Addr)> disableQuery;

    Memory mem;
    std::array<uint64_t, isa::kNumArchRegs> regs{};
    isa::Addr curPc;
    bool isHalted = false;
    uint64_t executedInsts = 0;
};

} // namespace mg::uarch

#endif // MG_UARCH_FUNCTIONAL_H
