/**
 * @file
 * Functional (architectural) execution of MG-RISC programs.
 *
 * FunctionalCore is both the golden model for correctness tests and
 * the *oracle* that drives the timing core's fetch stage: because the
 * timing model never walks wrong paths, it can pull the committed
 * instruction stream — with all values, memory addresses and branch
 * outcomes resolved — directly from this in-order interpreter.
 *
 * The core also understands rewritten binaries: an enabled MGHANDLE
 * executes its whole template atomically; a handle that the hardware
 * has dynamically disabled (Slack-Dynamic) is expanded into its
 * outlined singleton form, including the two outlining jumps whose
 * fetch cost is the encoding penalty discussed in §4.4/§5.3.
 */

#ifndef MG_UARCH_FUNCTIONAL_H
#define MG_UARCH_FUNCTIONAL_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "uarch/memory.h"
#include "uarch/slack_dynamic.h"

namespace mg::uarch
{

/** Execution record of one constituent inside an enabled handle. */
struct ConstituentExec
{
    uint64_t memAddr = 0;
    uint8_t memSize = 0;
    bool isMem = false;
    bool isStore = false;
    bool taken = false;
};

/**
 * One step of oracle execution: a singleton, an enabled handle
 * (reported as a unit), or one element of a disabled handle's
 * outlined expansion.
 */
struct ExecStep
{
    isa::Addr pc = 0;
    isa::Instruction inst;
    isa::Addr nextPc = 0;

    // Memory access (singletons).
    uint64_t memAddr = 0;
    uint8_t memSize = 0;

    // Control outcome.
    bool taken = false;

    /** Synthetic outlining jump injected for a disabled handle. */
    bool syntheticJump = false;

    /** Real jump-back at the end of an outlined body. */
    bool outliningJump = false;

    /** Singleton that is part of a disabled handle's outlined body. */
    bool fromDisabledMg = false;

    /**
     * Enabled handle: template and per-constituent execution facts.
     * Inline capacity (templates have at most kMaxMgSize
     * constituents) so copying a step around the front end never
     * touches the heap; numConstituents gives the live count.
     */
    const isa::MgTemplate *tmpl = nullptr;
    const isa::MgInstance *instance = nullptr;
    std::array<ConstituentExec, isa::kMaxMgSize> constituents;
    uint8_t numConstituents = 0;

    // A step is copied several times on its way through the pipeline
    // (oracle -> pending -> fetch queue -> ROB, back out on squash).
    // Most steps are singletons with numConstituents == 0, so copying
    // the whole constituents array is pure waste: copy only the live
    // prefix.  Stale elements beyond numConstituents are never read;
    // for the same reason the copy and move constructors leave the
    // array uninitialized rather than zeroing all of it before
    // assign() overwrites the live part (measurable at tens of
    // millions of steps per run).
    ExecStep() : constituents{} {}
    ExecStep(const ExecStep &o) { assign(o); }
    ExecStep(ExecStep &&o) noexcept { assign(o); }
    ExecStep &operator=(const ExecStep &o)
    {
        assign(o);
        return *this;
    }
    ExecStep &operator=(ExecStep &&o) noexcept
    {
        assign(o);
        return *this;
    }

    bool isHandle() const { return tmpl != nullptr; }

    /** Original-program instructions this step accounts for. */
    unsigned
    originalInstCount() const
    {
        if (isHandle())
            return tmpl->size();
        if (syntheticJump || outliningJump)
            return 0;
        return 1;
    }

  private:
    void
    assign(const ExecStep &o)
    {
        pc = o.pc;
        inst = o.inst;
        nextPc = o.nextPc;
        memAddr = o.memAddr;
        memSize = o.memSize;
        taken = o.taken;
        syntheticJump = o.syntheticJump;
        outliningJump = o.outliningJump;
        fromDisabledMg = o.fromDisabledMg;
        tmpl = o.tmpl;
        instance = o.instance;
        numConstituents = o.numConstituents;
        for (uint8_t k = 0; k < o.numConstituents; ++k)
            constituents[k] = o.constituents[k];
    }
};

/**
 * In-order architectural interpreter.
 */
class FunctionalCore
{
  public:
    /**
     * @param prog    the (possibly rewritten) program
     * @param mg_info template table for rewritten binaries (or null)
     */
    FunctionalCore(const assembler::Program &prog,
                   const isa::MgBinaryInfo *mg_info = nullptr);

    /**
     * Install the dynamic-disable oracle: called with a handle PC,
     * returns true if the hardware currently has it disabled.
     * When unset, every handle is enabled.
     */
    void
    setDisableQuery(std::function<bool(isa::Addr)> query)
    {
        disableQuery = std::move(query);
    }

    /**
     * Fast-path variant of setDisableQuery: query the Slack-Dynamic
     * hardware state directly.  The timing core asks about every
     * handle it fetches, so the type-erased std::function call is a
     * measurable cost there; tests with ad-hoc predicates keep using
     * setDisableQuery.  Takes precedence over disableQuery when set.
     */
    void
    setDisableState(const SlackDynamicState *state)
    {
        disableState = state;
    }

    /** Execute one step. Must not be called once halted. */
    ExecStep step();

    bool halted() const { return isHalted; }

    /** Architectural instructions executed (original-program count). */
    uint64_t instCount() const { return executedInsts; }

    /** Current architectural PC. */
    isa::Addr pc() const { return curPc; }

    /** Register read (tests). */
    uint64_t reg(unsigned r) const { return regs[r]; }

    /** Register write (tests / initialisation). */
    void setReg(unsigned r, uint64_t v) { if (r) regs[r] = v; }

    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

    /**
     * Run to completion (convenience for tests and workloads).
     * @param max_steps safety limit
     * @retval number of architectural instructions executed
     */
    uint64_t run(uint64_t max_steps = 1ull << 32);

  private:
    ExecStep execSingleton();
    ExecStep execHandle(const isa::MgInstance &inst_info);

    /** Evaluate a singleton's result value (ALU/loads). */
    void applySingleton(const isa::Instruction &inst, ExecStep &step);

    const assembler::Program &prog;
    const isa::MgBinaryInfo *mgInfo;
    std::function<bool(isa::Addr)> disableQuery;
    const SlackDynamicState *disableState = nullptr;

    /**
     * Dense per-PC caches of the MgBinaryInfo side tables.  The
     * interpreter classifies every executed singleton against
     * outlinedBodyPcs/outliningJumpPcs and resolves handles through
     * instanceAt(); at one probe per architectural instruction the
     * hash lookups dominate oracle time, so flatten them into arrays
     * indexed by PC (PCs are instruction indices).
     */
    static constexpr uint8_t kPcOutlinedBody = 1;  ///< in an outlined body
    static constexpr uint8_t kPcOutliningJump = 2; ///< body's jump-back
    std::vector<uint8_t> pcFlags;
    std::vector<const isa::MgInstance *> pcInstance;

    Memory mem;
    std::array<uint64_t, isa::kNumArchRegs> regs{};
    isa::Addr curPc;
    bool isHalted = false;
    uint64_t executedInsts = 0;
};

} // namespace mg::uarch

#endif // MG_UARCH_FUNCTIONAL_H
