/**
 * @file
 * The cycle-level out-of-order superscalar timing model.
 *
 * The model follows the paper's Table-1 machine: a 13-stage pipeline
 * (1 predict, 3 I$, 1 decode, 2 rename, 1 schedule, 2 regread,
 * 1 execute, 1 regwrite, 1 commit) with a hybrid branch predictor,
 * BTB and RAS, physical-register renaming, a unified issue queue with
 * per-class issue limits, a 128-entry ROB, load/store queues with
 * aggressive StoreSets-scheduled loads and pipeline-flushing ordering
 * violations, speculative (hit-assumed) wakeup with issue replays, and
 * a two-level cache hierarchy with I/D TLBs.
 *
 * Mini-graph support: MGHANDLE units occupy a single slot in every
 * book-keeping structure; the scheduler issues at most
 * `mgIssuePerCycle` handles per cycle (one containing a memory op),
 * each executing on an ALU pipeline with internal serialization
 * (constituent n issues when n-1 completes).  External serialization
 * is modelled by requiring all handle inputs ready at issue.  The
 * Slack-Dynamic hardware (§4.4) can disable handles at run time,
 * after which the oracle expands them in outlined form (two extra
 * jumps) — or penalty-free in the Ideal variant.
 *
 * The front end is driven by an in-order functional oracle, so the
 * model never fetches wrong-path instructions; a mispredicted branch
 * instead stalls fetch until it resolves, the standard trace-driven
 * equivalence.  Memory-ordering violations squash and re-fetch the
 * offending load and everything younger.
 */

#ifndef MG_UARCH_CORE_H
#define MG_UARCH_CORE_H

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "uarch/branch_pred.h"
#include "uarch/cache.h"
#include "uarch/config.h"
#include "uarch/dyninst.h"
#include "uarch/functional.h"
#include "uarch/profiler_hooks.h"
#include "uarch/ring_queue.h"
#include "uarch/sim_stats.h"
#include "uarch/slack_dynamic.h"
#include "uarch/store_sets.h"

namespace mg::check
{
class InvariantAuditor;
}

namespace mg::uarch
{

/** Test-only backdoor into Core state (defined by the check tests). */
struct CoreTestAccess;

/** One simulated core running one program to completion. */
class Core
{
  public:
    /**
     * @param cfg     machine configuration
     * @param prog    program (original or rewritten)
     * @param mg_info mini-graph side table for rewritten binaries
     */
    Core(const CoreConfig &cfg, const assembler::Program &prog,
         const isa::MgBinaryInfo *mg_info = nullptr);

    ~Core();

    /** Attach a profiler (must be done before run()). */
    void setProfiler(ProfilerHooks *hooks) { profiler = hooks; }

    /**
     * Install a hook run at the end of every cycle, just before the
     * invariant audit.  Test-only: the fault-injection tests use it to
     * corrupt pipeline state mid-run and prove the auditor trips.
     */
    void
    setAuditTestHook(std::function<void(Core &)> hook)
    {
        auditTestHook = std::move(hook);
    }

    /** Run the program to completion and return the results. */
    SimResult run();

    /**
     * The functional oracle that drove fetch.  After run() its
     * architectural state (registers, memory, instruction count) *is*
     * the committed final state of the program — the timing model
     * never advances it down a wrong path — so the differential
     * fuzzing oracle (fuzz/oracle.h) compares it against an
     * independent functional run of the original binary.
     */
    const FunctionalCore &architecturalState() const { return oracle; }

  private:
    friend class mg::check::InvariantAuditor;
    friend struct CoreTestAccess;

    // ---- pipeline stages (called in back-to-front order) ----
    /** @return commit units retired this cycle (loss accounting). */
    uint32_t commitStage();
    void processEvents();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // ---- cycle-loss accounting (cfg.lossAccounting) ----
    /** Charge this cycle's unfilled retirement slots to one bucket. */
    void accountLoss(uint32_t committed_now);
    /** Pick the bucket for a cycle that lost retirement slots. */
    LossBucket classifyLossCycle() const;
    /** Per-template external-serialization charge at handle issue. */
    void accountHandleIssue(const DynInst &d,
                            const std::array<uint64_t, 3> &src_ready);
    /** Memoized MgTemplate::internalChainPenalty() for a handle. */
    unsigned chainPenaltyOf(const DynInst &d) const;

    // ---- issue helpers ----
    /** Blame accounting for a cycle with provably no issue action. */
    void issueIdleBlame();
    /**
     * Earliest cycle a waiting entry could issue or replay; when
     * infinite, `blocker` names an unissued instruction gating it.
     */
    uint64_t issueReadyBound(const DynInst &d, uint64_t &blocker) const;
    bool srcsSpecReady(const DynInst &d) const;
    uint64_t srcActualReady(uint64_t producer) const;
    uint64_t srcSpecReady(uint64_t producer) const;
    bool memDepSatisfied(const DynInst &d) const;
    void doIssue(DynInst &d);
    void issueSingleton(DynInst &d);
    void issueHandle(DynInst &d);
    void observeIssue(const DynInst &d,
                      const std::array<uint64_t, 3> &src_ready);
    void slackDynamicOnIssue(DynInst &d,
                             const std::array<uint64_t, 3> &src_ready);

    // ---- memory helpers ----
    /** Youngest older overlapping store in the SQ, or nullptr. */
    DynInst *findForwardingStore(const DynInst &load, uint64_t load_seq);
    void checkViolations(DynInst &store);
    bool overlap(uint64_t a0, unsigned s0, uint64_t a1, unsigned s1) const;

    // ---- squash / flush ----
    void flushFrom(uint64_t first_squashed);

    // ---- bookkeeping ----
    // The ROB vector is sized to the next power of two above
    // cfg.robEntries (occupancy is still limited to cfg.robEntries at
    // dispatch) purely so this seq -> slot map is an AND instead of a
    // modulo: robAt() is the single hottest operation in the model.
    DynInst &robAt(uint64_t seq) { return rob[seq & robMask]; }
    const DynInst &
    robAt(uint64_t seq) const
    {
        return rob[seq & robMask];
    }
    bool
    inFlight(uint64_t seq) const
    {
        return seq >= headSeq && seq < tailSeq && robAt(seq).seq == seq;
    }
    uint64_t fetchAddrOf(isa::Addr pc) const { return fetchAddr[pc]; }
    void buildFetchAddrMap();

    // ---- members ----
    CoreConfig cfg;
    const assembler::Program &prog;
    const isa::MgBinaryInfo *mgInfo;
    FunctionalCore oracle;
    CacheHierarchy hier;
    BranchPredictor bpred;
    StoreSets storeSets;
    std::unique_ptr<SlackDynamicState> slackDyn;
    ProfilerHooks *profiler = nullptr;

    // End-of-cycle invariant auditing (cfg.checkLevel != Off).
    std::unique_ptr<check::InvariantAuditor> auditor;
    std::function<void(Core &)> auditTestHook;

    uint64_t cycle = 0;

    // ROB as a seq-indexed circular buffer (power-of-two size, see
    // robAt()).
    std::vector<DynInst> rob;
    uint64_t robMask = 0;  ///< rob.size() - 1
    uint64_t headSeq = 0;  ///< oldest in-flight (in ROB)
    uint64_t tailSeq = 0;  ///< next ROB slot (== first fetch-queue seq)
    uint64_t nextSeq = 0;  ///< next seq to assign at fetch

    RingQueue<DynInst> fetchQueue;     ///< fetched, awaiting dispatch
    std::vector<uint64_t> iq;          ///< in-flight seqs, age order

    /**
     * Issue-scan gate: no IQ entry can issue or replay before this
     * cycle, so issueStage() runs only the per-cycle blame accounting
     * (issueIdleBlame()) instead of the O(iq) wakeup/select scan.
     * Recomputed by every full scan that takes no action, from each
     * waiting entry's known producer timing (issueReadyBound());
     * lowered on dispatch, cleared on flush.
     */
    uint64_t issueSkipUntil = 0;

    /**
     * Per-entry readiness memo, in lockstep with iq.  A plain value
     * is a cycle bound: entry i cannot issue or replay before
     * iqNextCheck[i], so the scan skips it without touching its ROB
     * slot (0 = must recheck every scan).  A value with kMemoSeqTag
     * set names an unissued instruction the entry is gated on; the
     * scan skips the entry with a single ROB probe until that
     * instruction issues.  Compacted alongside iq; reset by flushes.
     */
    static constexpr uint64_t kMemoSeqTag = 1ull << 63;
    std::vector<uint64_t> iqNextCheck;
    std::deque<uint64_t> lq;           ///< load queue (seqs)
    std::deque<uint64_t> sq;           ///< store queue (seqs)

    // Rename map: arch reg -> producing seq (kCommitted if none).
    std::array<uint64_t, isa::kNumArchRegs> renameMap;
    uint32_t freePhys = 0;

    // Fetch state.
    RingQueue<ExecStep> replayQueue;   ///< squashed steps to re-fetch
    std::optional<ExecStep> pendingStep;
    uint64_t fetchResumeCycle = 0;     ///< stall until this cycle
    uint64_t stalledOnSeq = kCommitted;///< unresolved mispredict
    uint64_t fetchBlockedUntil = 0;    ///< I$ miss stall
    uint64_t curFetchLine = kInfCycle;
    static constexpr uint32_t kBtbMissPenalty = 4;
    static constexpr uint32_t kMaxFetchLines = 2;

    // Deferred events: (cycle, seq) pairs for store-execute checks.
    using Event = std::pair<uint64_t, uint64_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;

    // Slack-Dynamic consumer-delay watch: producer seq -> handle pc.
    std::unordered_map<uint64_t, isa::Addr> sdWatch;

    // Cycle-loss accounting state.
    /** Why dispatch last blocked on a full structure (-1: it didn't). */
    int dispatchBlock = -1;
    /** Bucket charged while fetch waits for fetchResumeCycle. */
    LossBucket resumeBucket = LossBucket::Other;
    /**
     * MgTemplate::internalChainPenalty() per template, memoized at
     * construction: the recursive chain walk is too slow to repeat on
     * every lost cycle in classifyLossCycle().
     */
    std::vector<uint32_t> tmplChainPenalty;

    // Basic-block instance tracking for the profiler.
    std::vector<bool> isLeader; ///< per-PC leader flags
    uint64_t bbInstanceId = 0;
    isa::Addr lastFetchPc = isa::kNoAddr;

    // Compacted I$ byte address per PC.
    std::vector<uint64_t> fetchAddr;

    SimResult res;
};

} // namespace mg::uarch

#endif // MG_UARCH_CORE_H
