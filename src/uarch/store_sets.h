/**
 * @file
 * StoreSets memory-dependence predictor (Chrysos & Emer style),
 * Table 1: "Loads are scheduled aggressively using a 1K-entry
 * StoreSets predictor."
 *
 * The SSIT maps instruction PCs to store-set IDs; the LFST tracks the
 * most recent in-flight store of each set.  A load whose PC maps to a
 * valid set must wait for that store.  Memory-ordering violations
 * merge the offending load and store into one set.
 */

#ifndef MG_UARCH_STORE_SETS_H
#define MG_UARCH_STORE_SETS_H

#include <cstdint>
#include <vector>

#include "isa/instruction.h"
#include "uarch/config.h"

namespace mg::uarch
{

/** StoreSets statistics. */
struct StoreSetsStats
{
    uint64_t violations = 0;
    uint64_t loadsDeferred = 0;
};

class StoreSets
{
  public:
    /**
     * @param ssit_entries  SSIT size (power of two)
     * @param lfst_entries  LFST size
     * @param clear_period  cyclic clearing interval in rename events
     *                      (Chrysos & Emer's antidote to over-merging;
     *                      0 disables)
     */
    StoreSets(uint32_t ssit_entries, uint32_t lfst_entries,
              uint64_t clear_period = 131072);

    /** Invalid store-set / sequence sentinel. */
    static constexpr uint64_t kNone = ~0ull;

    /**
     * Rename-time hook for a store.
     * Registers the store as the last fetched store of its set (if it
     * has one) and returns the sequence number of the previous store
     * in the set that this store must (per predictor) follow, or
     * kNone.
     */
    uint64_t storeRenamed(isa::Addr pc, uint64_t seq);

    /**
     * Rename-time hook for a load.
     * @retval sequence number of the in-flight store this load should
     *         wait for, or kNone.
     */
    uint64_t loadRenamed(isa::Addr pc);

    /** A store left the window (executed/committed/squashed). */
    void storeCompleted(isa::Addr pc, uint64_t seq);

    /** Train on a memory-ordering violation between load and store. */
    void violation(isa::Addr load_pc, isa::Addr store_pc);

    const StoreSetsStats &stats() const { return stat; }

  private:
    static constexpr uint32_t kInvalidSet = ~0u;

    uint32_t ssitIndex(isa::Addr pc) const;
    void maybeClear();

    uint64_t clearPeriod;
    uint64_t renameEvents = 0;
    std::vector<uint32_t> ssit;   ///< pc -> store-set id (or invalid)
    struct LfstEntry
    {
        uint64_t seq = kNone;     ///< last fetched store in this set
        isa::Addr pc = isa::kNoAddr;
    };
    std::vector<LfstEntry> lfst;
    uint32_t nextSetId = 0;
    StoreSetsStats stat;
};

} // namespace mg::uarch

#endif // MG_UARCH_STORE_SETS_H
