/**
 * @file
 * Fixed-layout FIFO over a power-of-two circular buffer.
 *
 * The timing core's fetch and replay queues hold large value types
 * (DynInst is several hundred bytes), for which std::deque degrades
 * to one element per chunk — every push/pop pair becomes a heap
 * allocation plus deallocation, tens of millions of them per
 * simulation.  This queue keeps elements in one contiguous buffer
 * that only ever grows (doubling), so steady-state push/pop touch no
 * allocator at all.
 *
 * pop_front() does not destroy the element, it only advances the
 * head; slots are overwritten on reuse.  That is fine for the
 * trivially-destructible pipeline records stored here and keeps the
 * hot path branch-free.
 */

#ifndef MG_UARCH_RING_QUEUE_H
#define MG_UARCH_RING_QUEUE_H

#include <cstddef>
#include <utility>
#include <vector>

namespace mg::uarch
{

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count == 0; }
    size_t size() const { return count; }

    T &front() { return buf[head]; }
    const T &front() const { return buf[head]; }

    T &operator[](size_t i) { return buf[(head + i) & mask]; }
    const T &operator[](size_t i) const { return buf[(head + i) & mask]; }

    /** Append a default-initialized element and return it. */
    T &
    emplace_back()
    {
        if (count == buf.size())
            grow();
        T &slot = buf[(head + count) & mask];
        slot = T(); // reused slots hold stale values
        ++count;
        return slot;
    }

    /**
     * Append without resetting the recycled slot: the caller must
     * overwrite every field it will later read (e.g. fetch pairs this
     * with DynInst::resetMeta() plus an ExecStep assignment).
     */
    T &
    emplace_back_raw()
    {
        if (count == buf.size())
            grow();
        return buf[(head + count++) & mask];
    }

    // Assignment fully overwrites the recycled slot, no reset needed.
    void push_back(T &&v) { emplace_back_raw() = std::move(v); }

    /** Prepend; used when a squash re-queues steps for re-fetch. */
    void
    push_front(T &&v)
    {
        if (count == buf.size())
            grow();
        head = (head + mask) & mask; // head - 1, wrapped
        buf[head] = std::move(v);
        ++count;
    }

    void
    pop_front()
    {
        head = (head + 1) & mask;
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    void
    grow()
    {
        size_t cap = buf.empty() ? kInitialCapacity : buf.size() * 2;
        std::vector<T> next(cap);
        for (size_t i = 0; i < count; ++i)
            next[i] = std::move(buf[(head + i) & mask]);
        buf = std::move(next);
        head = 0;
        mask = cap - 1;
    }

    static constexpr size_t kInitialCapacity = 16;

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
    size_t mask = 0;
};

} // namespace mg::uarch

#endif // MG_UARCH_RING_QUEUE_H
