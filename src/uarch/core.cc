#include "uarch/core.h"

#include <algorithm>

#include "assembler/cfg.h"
#include "check/invariant_auditor.h"
#include "common/logging.h"

namespace mg::uarch
{


using isa::Addr;
using isa::Instruction;
using isa::MgConstituent;
using isa::MgTemplate;
using isa::Opcode;

Core::Core(const CoreConfig &config, const assembler::Program &program,
           const isa::MgBinaryInfo *mg_info)
    : cfg(config), prog(program), mgInfo(mg_info),
      oracle(program, mg_info), hier(config),
      bpred(config.branchPred),
      storeSets(config.storeSetsSsitEntries, config.storeSetsLfstEntries,
                config.storeSetsClearPeriod)
{
    // Power-of-two ROB backing store so robAt() is an AND, not a
    // modulo; dispatch still caps occupancy at cfg.robEntries.
    size_t rob_size = 1;
    while (rob_size < cfg.robEntries)
        rob_size <<= 1;
    rob.resize(rob_size);
    robMask = rob_size - 1;
    iq.reserve(cfg.issueQueueEntries);
    iqNextCheck.reserve(cfg.issueQueueEntries);
    renameMap.fill(kCommitted);
    mg_assert(cfg.physRegs > isa::kNumArchRegs,
              "config '%s': need more physical than architectural "
              "registers", cfg.name.c_str());
    freePhys = cfg.physRegs - isa::kNumArchRegs;

    if (cfg.checkLevel != CheckLevel::Off) {
        auditor =
            std::make_unique<check::InvariantAuditor>(cfg.checkLevel);
    }

    if (cfg.slackDynamicEnabled && mgInfo) {
        slackDyn = std::make_unique<SlackDynamicState>(cfg);
        oracle.setDisableState(slackDyn.get());
    }

    if (mgInfo) {
        tmplChainPenalty.reserve(mgInfo->templates.size());
        for (const MgTemplate &t : mgInfo->templates)
            tmplChainPenalty.push_back(t.internalChainPenalty());
    }

    // Basic-block leaders for profiler BB-instance tracking.
    assembler::Cfg cfg_graph(prog);
    isLeader.assign(prog.code.size(), false);
    for (const auto &bb : cfg_graph.blocks())
        isLeader[bb.first] = true;

    buildFetchAddrMap();
}

Core::~Core() = default;

void
Core::buildFetchAddrMap()
{
    // Compacted code layout for the I$: outlined/elided slots are
    // squeezed out of the fetch image (the encoding's capacity
    // amplification); every other instruction occupies 4 bytes.
    fetchAddr.resize(prog.code.size());
    uint64_t addr = 0;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        fetchAddr[pc] = addr;
        if (!prog.code[pc].isElided())
            addr += 4;
    }
}

uint64_t
Core::srcActualReady(uint64_t producer) const
{
    if (producer == kCommitted || !inFlight(producer))
        return 0;
    return robAt(producer).ready;
}

uint64_t
Core::srcSpecReady(uint64_t producer) const
{
    if (producer == kCommitted || !inFlight(producer))
        return 0;
    return robAt(producer).specReady;
}

bool
Core::srcsSpecReady(const DynInst &d) const
{
    for (uint8_t i = 0; i < d.numSrcs; ++i) {
        if (srcSpecReady(d.srcProducers[i]) > cycle)
            return false;
    }
    return true;
}

bool
Core::memDepSatisfied(const DynInst &d) const
{
    uint64_t ws = d.waitForStore;
    if (ws == kCommitted || ws == StoreSets::kNone || !inFlight(ws))
        return true;
    const DynInst &store = robAt(ws);
    if (!store.isStoreOp)
        return true; // stale reference after a flush reused the seq
    return store.memExecDone <= cycle;
}

bool
Core::overlap(uint64_t a0, unsigned s0, uint64_t a1, unsigned s1) const
{
    return a0 < a1 + s1 && a1 < a0 + s0;
}

DynInst *
Core::findForwardingStore(const DynInst &load, uint64_t load_seq)
{
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        if (*it >= load_seq)
            continue;
        DynInst &store = robAt(*it);
        if (overlap(load.memAddr, load.memSize, store.memAddr,
                    store.memSize)) {
            return &store;
        }
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

void
Core::issueSingleton(DynInst &d)
{
    const Instruction &inst = d.ex.inst;
    unsigned lat = inst.latency();

    switch (inst.execClass()) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::IntComplex:
      case isa::ExecClass::Nop:
        d.specReady = d.ready = cycle + lat;
        d.execDone = cycle + cfg.regreadDelay + lat;
        d.complete = d.execDone + cfg.regwriteDelay;
        break;

      case isa::ExecClass::Control:
        d.specReady = d.ready = cycle + 1; // link value (jal/jalr)
        d.execDone = cycle + cfg.regreadDelay + 1;
        d.complete = d.execDone + cfg.regwriteDelay;
        break;

      case isa::ExecClass::MemRead: {
        d.memIssueCycle = cycle;
        unsigned actual;
        DynInst *fwd = findForwardingStore(d, d.seq);
        if (fwd && fwd->memExecDone <= cycle) {
            actual = cfg.dcache.hitLatency;
            d.forwarded = true;
            if (profiler)
                profiler->onStoreForward(fwd->seq, cycle);
        } else {
            actual = hier.dataAccess(d.memAddr, false);
        }
        if (actual > cfg.dcache.hitLatency)
            d.missedCache = true;
        d.specReady = cycle + cfg.dcache.hitLatency;
        d.ready = cycle + actual;
        d.execDone = cycle + cfg.regreadDelay + 1; // address known
        d.complete = cycle + cfg.regreadDelay + actual +
                     cfg.regwriteDelay;
        break;
      }

      case isa::ExecClass::MemWrite:
        d.memIssueCycle = cycle;
        d.execDone = cycle + cfg.regreadDelay + 1;
        d.memExecDone = d.execDone;
        d.complete = d.execDone + cfg.regwriteDelay;
        events.emplace(d.memExecDone, d.seq);
        break;

      case isa::ExecClass::MgHandle:
        mg_panic("issueSingleton on a handle");
    }

    if (d.mispredicted) {
        mg_assert(d.execDone != kInfCycle, "mispredict without resolve");
        if (stalledOnSeq == d.seq) {
            stalledOnSeq = kCommitted;
            fetchResumeCycle = d.execDone + 1;
            resumeBucket = LossBucket::BranchMispredict;
        }
    }
}

void
Core::issueHandle(DynInst &d)
{
    const MgTemplate &t = *d.ex.tmpl;
    uint64_t cum_spec = 0;
    uint64_t cum_actual = 0;
    uint64_t resolve = kInfCycle;

    for (unsigned k = 0; k < t.size(); ++k) {
        const MgConstituent &c = t.ops[k];
        const ConstituentExec &ce = d.ex.constituents[k];
        unsigned lat_spec = isa::opInfo(c.op).latency;
        unsigned lat_actual = lat_spec;

        if (isa::isLoad(c.op)) {
            d.memIssueCycle = cycle + cum_actual;
            DynInst *fwd = findForwardingStore(d, d.seq);
            if (fwd && fwd->memExecDone <= d.memIssueCycle) {
                lat_actual = cfg.dcache.hitLatency;
                d.forwarded = true;
                if (profiler)
                    profiler->onStoreForward(fwd->seq, d.memIssueCycle);
            } else {
                lat_actual = hier.dataAccess(ce.memAddr, false);
            }
            if (lat_actual > cfg.dcache.hitLatency)
                d.missedCache = true;
        } else if (isa::isStore(c.op)) {
            d.memIssueCycle = cycle + cum_actual;
            d.memExecDone = cycle + cfg.regreadDelay + cum_actual + 1;
            events.emplace(d.memExecDone, d.seq);
        }

        cum_spec += lat_spec;
        cum_actual += lat_actual;

        if (static_cast<int>(k) == t.outputIdx) {
            d.specReady = cycle + cum_spec;
            d.ready = cycle + cum_actual;
        }
        if (isa::isCondBranch(c.op))
            resolve = cycle + cfg.regreadDelay + cum_actual;
    }

    d.execDone = cycle + cfg.regreadDelay + cum_actual;
    d.complete = d.execDone + cfg.regwriteDelay;

    if (d.mispredicted) {
        uint64_t at = resolve != kInfCycle ? resolve : d.execDone;
        if (stalledOnSeq == d.seq) {
            stalledOnSeq = kCommitted;
            fetchResumeCycle = at + 1;
            resumeBucket = LossBucket::BranchMispredict;
        }
    }
}

// ---------------------------------------------------------------------
// Cycle-loss accounting
// ---------------------------------------------------------------------

unsigned
Core::chainPenaltyOf(const DynInst &d) const
{
    if (d.ex.instance && d.ex.instance->templateIdx < tmplChainPenalty.size())
        return tmplChainPenalty[d.ex.instance->templateIdx];
    return d.ex.tmpl->internalChainPenalty();
}

void
Core::accountHandleIssue(const DynInst &d,
                         const std::array<uint64_t, 3> &src_ready)
{
    if (!d.ex.instance || res.mgTemplates.empty())
        return;
    MgTemplateSerialStats &ts =
        res.mgTemplates[d.ex.instance->templateIdx];
    ++ts.issues;
    ts.intPenaltyCycles += chainPenaltyOf(d);

    // External serialization: cycles issue slipped past the point the
    // first constituent could have started (all non-serializing inputs
    // ready, schedule delay elapsed) waiting for a serializing input.
    uint64_t ser = 0, nonser = 0;
    for (uint8_t i = 0; i < d.numSrcs; ++i) {
        if (d.ex.tmpl->inputIsSerializing(d.srcSlots[i]))
            ser = std::max(ser, src_ready[i]);
        else
            nonser = std::max(nonser, src_ready[i]);
    }
    uint64_t base = std::max(nonser, d.dispatchCycle + cfg.renameDelay);
    if (ser > base)
        ts.extWaitCycles += ser - base;
}

LossBucket
Core::classifyLossCycle() const
{
    if (headSeq < tailSeq) {
        const DynInst &d = robAt(headSeq);
        if (d.issued) {
            // Head is executing: its latency is the bottleneck.
            if (d.missedCache)
                return LossBucket::DCacheMiss;
            if (d.mispredicted)
                return LossBucket::BranchMispredict;
            if (d.isHandle() && chainPenaltyOf(d) > 0)
                return LossBucket::MgInternal;
            // Short-latency head with nothing complete behind it:
            // the window was supply-limited — charge the structure
            // dispatch last blocked on, if any.
            if (dispatchBlock >= 0)
                return static_cast<LossBucket>(dispatchBlock);
            return LossBucket::Other;
        }

        // Head dispatched but unissued: why could it not issue?
        if (!memDepSatisfied(d))
            return LossBucket::Other; // predicted store-order wait
        if (!srcsSpecReady(d)) {
            if (d.isHandle()) {
                // External serialization only if every missing input
                // is a *serializing* one (a singleton would already
                // be running); otherwise charge the producer.
                bool nonser_missing = false;
                for (uint8_t i = 0; i < d.numSrcs; ++i) {
                    if (srcSpecReady(d.srcProducers[i]) > cycle &&
                        !d.ex.tmpl->inputIsSerializing(d.srcSlots[i]))
                        nonser_missing = true;
                }
                if (!nonser_missing)
                    return LossBucket::MgExternal;
            }
            for (uint8_t i = 0; i < d.numSrcs; ++i) {
                uint64_t p = d.srcProducers[i];
                if (p == kCommitted || !inFlight(p))
                    continue;
                const DynInst &prod = robAt(p);
                if (prod.specReady <= cycle)
                    continue;
                if (prod.missedCache)
                    return LossBucket::DCacheMiss;
                if (prod.issued && prod.isHandle() &&
                    chainPenaltyOf(prod) > 0)
                    return LossBucket::MgInternal;
            }
            return LossBucket::Other; // plain dependence chain
        }
        // Replay shadow: speculative wakeup fired but actual operands
        // are late — almost always a cache miss in the producer.
        for (uint8_t i = 0; i < d.numSrcs; ++i) {
            uint64_t p = d.srcProducers[i];
            if (p != kCommitted && inFlight(p) &&
                robAt(p).missedCache && robAt(p).ready > cycle)
                return LossBucket::DCacheMiss;
        }
        return LossBucket::Other; // schedule delay / FU / issue width
    }

    // Empty window: the front end failed to supply.
    if (stalledOnSeq != kCommitted)
        return LossBucket::BranchMispredict;
    if (cycle < fetchResumeCycle)
        return resumeBucket;
    if (cycle < fetchBlockedUntil)
        return LossBucket::FrontEnd;
    if (!fetchQueue.empty())
        return LossBucket::FrontEnd; // front-end refill depth
    return LossBucket::Other;        // drain / end of program
}

void
Core::accountLoss(uint32_t committed_now)
{
    if (committed_now >= cfg.commitWidth)
        return;
    res.lossSlots[static_cast<size_t>(classifyLossCycle())] +=
        cfg.commitWidth - committed_now;
}

void
Core::slackDynamicOnIssue(DynInst &d,
                          const std::array<uint64_t, 3> &src_ready)
{
    const MgTemplate &t = *d.ex.tmpl;

    // Find the last-arriving external operand (among in-flight
    // producers; long-committed values cannot have constrained issue)
    // and the runner-up, to judge how much the late operand really
    // delayed the aggregate.
    int last_slot = -1;
    uint64_t last_ready = 0;
    uint64_t second_ready = 0;
    for (uint8_t i = 0; i < d.numSrcs; ++i) {
        if (src_ready[i] > last_ready) {
            second_ready = last_ready;
            last_ready = src_ready[i];
            last_slot = d.srcSlots[i];
        } else if (src_ready[i] > second_ready) {
            second_ready = src_ready[i];
        }
    }
    if (last_slot < 0) {
        slackDyn->benign(d.ex.pc);
        return;
    }
    bool serializing = t.inputIsSerializing(static_cast<uint8_t>(last_slot));
    if (!serializing) {
        slackDyn->benign(d.ex.pc);
        return;
    }

    if (cfg.slackDynamicSial) {
        // SIAL heuristic: last-arriving operand is serializing.
        slackDyn->noteSerializedIssue();
        slackDyn->harmful(d.ex.pc);
        return;
    }

    // True delay detection: the handle issued the moment the
    // serializing operand arrived (that operand was the constraint)
    // *and* the operand was late by a real margin — in a dense steady
    // state every operand is "last" by a cycle without costing
    // anything.
    if (d.issueCycle != last_ready ||
        last_ready < std::max(second_ready, d.earliestIssue) + 2) {
        slackDyn->benign(d.ex.pc);
        return;
    }
    slackDyn->noteSerializedIssue();
    d.serializedIssue = true;

    if (!cfg.slackDynamicConsumerCheck) {
        slackDyn->harmful(d.ex.pc);
        return;
    }

    // Full model: also require that the delay reaches a consumer.
    // Watch this handle's output; a consumer that issues exactly when
    // the output arrives (and for which the output was last) confirms
    // propagation.
    if (d.hasDest())
        sdWatch[d.seq] = d.ex.pc;
}

void
Core::observeIssue(const DynInst &d,
                   const std::array<uint64_t, 3> &src_ready)
{
    std::array<SrcObservation, 3> srcs;
    uint8_t n = 0;
    for (uint8_t i = 0; i < d.numSrcs; ++i) {
        uint64_t p = d.srcProducers[i];
        SrcObservation &o = srcs[n++];
        o.slot = d.srcSlots[i];
        o.producerSeq = p;
        if (p != kCommitted && inFlight(p)) {
            o.producerPc = robAt(p).ex.pc;
            o.readyCycle = src_ready[i];
        } else {
            o.producerPc = isa::kNoAddr;
            o.readyCycle = 0; // long ago; profiler clamps to BB start
        }
    }

    IssueObservation obs;
    obs.pc = d.ex.pc;
    obs.seq = d.seq;
    obs.bbInstance = d.bbInstance;
    obs.bbHead = d.bbHead;
    obs.issueCycle = d.issueCycle;
    obs.producesValue = d.hasDest();
    obs.readyCycle = d.hasDest() ? d.ready : d.issueCycle;
    obs.isStore = d.isStoreOp;
    obs.isCondBranch = d.ex.inst.isCondBranch();
    obs.mispredicted = d.mispredicted;
    obs.storeExecDone = d.memExecDone;
    obs.srcs = srcs.data();
    obs.numSrcs = n;
    profiler->onIssue(obs);
}

void
Core::issueIdleBlame()
{
    // Mirrors the blame tail of issueStage() for a cycle on which the
    // scan provably takes no action: nothing issued, replayed, or
    // FU-blocked, so only the oldest entry's wait reason is charged.
    uint64_t oldest = iq.empty() ? kCommitted : iq.front();
    if (oldest == kCommitted) {
        if (!fetchQueue.empty())
            ++res.blameNotDispatched;
        return;
    }
    const DynInst &od = robAt(oldest);
    if (od.earliestIssue > cycle)
        ++res.blameEarliest;
    else if (!srcsSpecReady(od))
        ++res.blameSrcs;
    else if (!memDepSatisfied(od))
        ++res.blameMemDep;
    else
        ++res.blameFu;
}

uint64_t
Core::issueReadyBound(const DynInst &d, uint64_t &blocker) const
{
    // Lower bound on the first cycle this waiting entry could pass the
    // readiness checks, from currently known timing.  An unissued
    // producer contributes kInfCycle; that is safe because the
    // producer sits in the IQ with its own (finite) bound.  A producer
    // can also stop gating via commit, never earlier than its
    // `complete` cycle, hence the min() with it.  When the bound is
    // infinite, `blocker` names one unissued in-flight instruction the
    // entry cannot get past: the caller memoizes it and, until it
    // issues, skips the entry with a single ROB probe.
    uint64_t lb = d.earliestIssue;
    for (uint8_t i = 0; i < d.numSrcs; ++i) {
        uint64_t p = d.srcProducers[i];
        if (p == kCommitted || !inFlight(p))
            continue;
        const DynInst &prod = robAt(p);
        uint64_t at = std::min(prod.specReady, prod.complete);
        if (at == kInfCycle && blocker == kCommitted)
            blocker = p;
        lb = std::max(lb, at);
    }
    uint64_t ws = d.waitForStore;
    if (ws != kCommitted && ws != StoreSets::kNone && inFlight(ws)) {
        const DynInst &store = robAt(ws);
        if (store.isStoreOp) {
            uint64_t at = std::min(store.memExecDone, store.complete);
            if (at == kInfCycle && blocker == kCommitted)
                blocker = ws;
            lb = std::max(lb, at);
        }
    }
    return lb;
}

void
Core::issueStage()
{
    // Skip the wakeup/select scan while nothing can happen.  Tests may
    // mutate core state from the audit hook, so the memoized bound is
    // only trusted without one.
    if (cycle < issueSkipUntil && !auditTestHook) {
        issueIdleBlame();
        return;
    }

    uint64_t oldest = iq.empty() ? kCommitted : iq.front();
    bool oldest_replayed = false;
    bool oldest_fu = false;
    bool oldest_issued = false;
    uint32_t slots = 0;
    uint32_t simple_used = 0, complex_used = 0;
    uint32_t loads_used = 0, stores_used = 0;
    uint32_t mg_used = 0, mg_mem_used = 0;

    // Single pass with in-place compaction: survivors are copied down
    // over issued entries, so a cycle that issues k of n instructions
    // costs O(n), not the O(n*k) of erasing from the middle k times.
    const size_t n = iq.size();
    size_t out = 0;
    size_t idx = 0;
    uint64_t min_lb = kInfCycle; // earliest future action, if no issue
    for (; idx < n; ++idx) {
        if (slots >= cfg.issueWidth)
            break;
        uint64_t seq = iq[idx];
        uint64_t memo = iqNextCheck[idx];
        if (memo & kMemoSeqTag) {
            // Blocked until a specific instruction issues: one ROB
            // probe decides whether anything could have changed.
            uint64_t pseq = memo & ~kMemoSeqTag;
            if (inFlight(pseq) && !robAt(pseq).issued) {
                // Still unissued; no finite bound to feed min_lb (the
                // blocker's own IQ entry keeps the global gate
                // honest, exactly as for an untagged infinite bound).
                iq[out] = seq;
                iqNextCheck[out] = memo;
                ++out;
                continue;
            }
            memo = 0; // blocker issued or squashed: recheck
        }
        if (cycle < memo) {
            // Provably not ready before `memo`: keep the entry without
            // touching its ROB slot.
            min_lb = std::min(min_lb, memo);
            iq[out] = seq;
            iqNextCheck[out] = memo;
            ++out;
            continue;
        }
        DynInst &d = robAt(seq);
        // One walk does double duty: the entry is ready exactly when
        // the bound has arrived (for an in-flight producer specReady
        // <= complete and for a store memExecDone <= complete, so the
        // min() terms reduce to the readiness conditions themselves).
        uint64_t blocker = kCommitted;
        uint64_t b = issueReadyBound(d, blocker);
        if (b > cycle) {
            min_lb = std::min(min_lb, b);
            iq[out] = seq;
            // An infinite bound means "gated by an instruction that
            // has not issued yet": memoize that blocker, or recheck
            // every scan if it could not be identified.
            iqNextCheck[out] = b != kInfCycle        ? b
                               : blocker != kCommitted
                                   ? (kMemoSeqTag | blocker)
                                   : 0;
            ++out;
            continue;
        }

        // Functional-unit / class availability (skipping an entry with
        // no free unit costs no scheduler slot: selection picks
        // another ready instruction instead).
        bool fu_ok = true;
        if (d.isHandle()) {
            fu_ok = mg_used < cfg.mgIssuePerCycle &&
                    (!d.ex.tmpl->hasMem ||
                     mg_mem_used < cfg.mgMemIssuePerCycle);
        } else {
            switch (d.ex.inst.execClass()) {
              case isa::ExecClass::IntComplex:
                fu_ok = complex_used < cfg.complexPerCycle;
                break;
              case isa::ExecClass::MemRead:
                fu_ok = loads_used < cfg.loadsPerCycle;
                break;
              case isa::ExecClass::MemWrite:
                fu_ok = stores_used < cfg.storesPerCycle;
                break;
              default:
                fu_ok = simple_used < cfg.simpleIntPerCycle;
                break;
            }
        }
        if (!fu_ok) {
            if (seq == oldest)
                oldest_fu = true;
            min_lb = cycle; // ready now, blocked only by issue width
            iq[out] = seq;
            iqNextCheck[out] = 0;
            ++out;
            continue;
        }

        // Speculative wakeup said "go"; verify actual readiness.  A
        // miss shadow costs the issue slot and the instruction replays
        // (Table 1: "Cache miss replays are modeled").
        std::array<uint64_t, 3> src_ready{0, 0, 0};
        uint64_t actual_max = 0;
        for (uint8_t i = 0; i < d.numSrcs; ++i) {
            src_ready[i] = srcActualReady(d.srcProducers[i]);
            actual_max = std::max(actual_max, src_ready[i]);
        }
        ++slots;
        if (d.isHandle()) {
            ++mg_used;
            if (d.ex.tmpl->hasMem)
                ++mg_mem_used;
        } else {
            switch (d.ex.inst.execClass()) {
              case isa::ExecClass::IntComplex: ++complex_used; break;
              case isa::ExecClass::MemRead: ++loads_used; break;
              case isa::ExecClass::MemWrite: ++stores_used; break;
              default: ++simple_used; break;
            }
        }
        if (actual_max > cycle) {
            ++res.issueReplays;
            if (seq == oldest)
                oldest_replayed = true;
            d.earliestIssue = actual_max;
            iq[out] = seq;
            iqNextCheck[out] = actual_max;
            ++out;
            continue;
        }

        // Issue for real.
        d.issued = true;
        d.issueCycle = cycle;
        if (d.isHandle())
            issueHandle(d);
        else
            issueSingleton(d);

        if (cfg.lossAccounting && d.isHandle())
            accountHandleIssue(d, src_ready);

        if (slackDyn && d.isHandle())
            slackDynamicOnIssue(d, src_ready);

        // Consumer-delay confirmation for watched mini-graph outputs.
        if (!sdWatch.empty()) {
            for (uint8_t i = 0; i < d.numSrcs; ++i) {
                uint64_t p = d.srcProducers[i];
                auto it = sdWatch.find(p);
                if (it == sdWatch.end())
                    continue;
                uint64_t r = src_ready[i];
                bool is_last = r == cycle;
                for (uint8_t j = 0; j < d.numSrcs; ++j)
                    if (src_ready[j] > r)
                        is_last = false;
                if (is_last && d.issueCycle == r) {
                    slackDyn->harmful(it->second);
                    sdWatch.erase(it);
                }
            }
        }

        if (profiler)
            observeIssue(d, src_ready);

        // Issued: drop from the IQ by not copying it down.
        d.inIq = false;
        if (seq == oldest)
            oldest_issued = true;
    }
    if (out != idx) {
        for (; idx < n; ++idx) {
            iq[out] = iq[idx];
            iqNextCheck[out] = iqNextCheck[idx];
            ++out;
        }
        iq.resize(out);
        iqNextCheck.resize(out);
    }

    // A pass that took no action (no issue, no replay — both consume
    // `slots`, so the loop cannot have broken early) examined or
    // memo-skipped every entry: min_lb gates future scans entirely.
    issueSkipUntil = slots == 0 ? min_lb : 0;

    // Oldest-unissued blame accounting (diagnostics).
    if (oldest == kCommitted) {
        if (!fetchQueue.empty())
            ++res.blameNotDispatched;
        return;
    }
    if (oldest_issued) {
        ++res.blameIssued;
        return;
    }
    if (oldest_replayed) {
        ++res.blameReplay;
        return;
    }
    if (oldest_fu) {
        ++res.blameFu;
        return;
    }
    const DynInst &od = robAt(oldest);
    if (od.earliestIssue > cycle)
        ++res.blameEarliest;
    else if (!srcsSpecReady(od))
        ++res.blameSrcs;
    else if (!memDepSatisfied(od))
        ++res.blameMemDep;
    else
        ++res.blameFu;
}

// ---------------------------------------------------------------------
// Memory ordering
// ---------------------------------------------------------------------

void
Core::checkViolations(DynInst &store)
{
    // A younger load that already performed its access read stale
    // data: flush from the oldest such load and train StoreSets.
    uint64_t victim = kCommitted;
    for (uint64_t lseq : lq) {
        if (lseq <= store.seq)
            continue;
        DynInst &load = robAt(lseq);
        if (!load.issued || load.memIssueCycle >= store.memExecDone)
            continue;
        if (load.forwarded)
            continue; // got its value from an even younger store copy
        if (overlap(load.memAddr, load.memSize, store.memAddr,
                    store.memSize)) {
            victim = lseq;
            break; // lq is in age order: first match is oldest
        }
    }
    if (victim == kCommitted)
        return;

    ++res.memOrderViolations;
    storeSets.violation(robAt(victim).ex.pc, store.ex.pc);
    flushFrom(victim);
}

void
Core::processEvents()
{
    while (!events.empty() && events.top().first <= cycle) {
        auto [when, seq] = events.top();
        events.pop();
        if (!inFlight(seq))
            continue;
        DynInst &d = robAt(seq);
        if (!d.issued || !d.isStoreOp || d.memExecDone != when)
            continue; // stale event (seq reused after a flush)
        checkViolations(d);
    }
}

// ---------------------------------------------------------------------
// Flush
// ---------------------------------------------------------------------

void
Core::flushFrom(uint64_t first_squashed)
{
    mg_assert(first_squashed >= headSeq && first_squashed <= tailSeq,
              "flush point %llu outside window",
              static_cast<unsigned long long>(first_squashed));

    // Collect the squashed correct-path steps for re-fetch, oldest
    // first: ROB suffix, then the fetch queue, then any pending step.
    std::vector<ExecStep> steps;
    for (uint64_t s = first_squashed; s < tailSeq; ++s)
        steps.push_back(std::move(robAt(s).ex));
    for (size_t i = 0; i < fetchQueue.size(); ++i)
        steps.push_back(std::move(fetchQueue[i].ex));
    if (pendingStep) {
        steps.push_back(std::move(*pendingStep));
        pendingStep.reset();
    }
    // Prepend ahead of any not-yet-refetched older squash remnants.
    for (size_t i = steps.size(); i-- > 0;)
        replayQueue.push_front(std::move(steps[i]));

    // Roll back rename state, youngest first (only ROB entries were
    // renamed; fetch-queue instructions had not reached rename).
    for (uint64_t s = tailSeq; s-- > first_squashed;) {
        DynInst &d = robAt(s);
        if (d.destArch >= 0) {
            if (renameMap[d.destArch] == s)
                renameMap[static_cast<size_t>(d.destArch)] =
                    d.prevProducer;
            ++freePhys;
        }
        if (d.isStoreOp)
            storeSets.storeCompleted(d.ex.pc, s);
        if (!sdWatch.empty())
            sdWatch.erase(s);
    }
    fetchQueue.clear();

    std::erase_if(iq, [&](uint64_t s) { return s >= first_squashed; });
    iqNextCheck.assign(iq.size(), 0); // squash can relax memo bounds
    while (!lq.empty() && lq.back() >= first_squashed)
        lq.pop_back();
    while (!sq.empty() && sq.back() >= first_squashed)
        sq.pop_back();

    tailSeq = first_squashed;
    nextSeq = first_squashed;

    // Squashing can relax memory-ordering waits (a waited-on store seq
    // is no longer in flight): re-scan the IQ immediately.
    issueSkipUntil = 0;

    if (profiler)
        profiler->onSquash(first_squashed);

    // Reset fetch: resume re-fetching next cycle (the front-end depth
    // charges the refill delay naturally).  Loss accounting charges
    // the recovery bubble to Other (memory-order violation), not to
    // branch misprediction.
    resumeBucket = LossBucket::Other;
    if (stalledOnSeq != kCommitted && stalledOnSeq >= first_squashed)
        stalledOnSeq = kCommitted;
    fetchResumeCycle = std::max(fetchResumeCycle, cycle + 1);
    if (fetchResumeCycle == kInfCycle)
        fetchResumeCycle = cycle + 1;
    curFetchLine = kInfCycle;
    lastFetchPc = isa::kNoAddr;
}

// ---------------------------------------------------------------------
// Dispatch (rename + queue allocation)
// ---------------------------------------------------------------------

void
Core::dispatchStage()
{
    dispatchBlock = -1;
    for (uint32_t n = 0; n < cfg.renameWidth; ++n) {
        if (fetchQueue.empty())
            return;
        DynInst &d = fetchQueue.front();
        if (d.renameReady > cycle)
            return;

        if (tailSeq - headSeq >= cfg.robEntries) {
            ++res.robStallCycles;
            dispatchBlock = static_cast<int>(LossBucket::RobFull);
            return;
        }
        if (iq.size() >= cfg.issueQueueEntries) {
            ++res.iqStallCycles;
            dispatchBlock = static_cast<int>(LossBucket::IqFull);
            return;
        }

        const Instruction &inst = d.ex.inst;
        int dest = inst.destReg();
        if (dest >= 0 && freePhys == 0) {
            ++res.regStallCycles;
            dispatchBlock = static_cast<int>(LossBucket::RegFull);
            return;
        }

        // Classify memory behaviour (handles carry it in a
        // constituent).
        bool is_load = false, is_store = false;
        uint64_t maddr = 0;
        uint8_t msize = 0;
        if (d.isHandle()) {
            for (uint8_t k = 0; k < d.ex.numConstituents; ++k) {
                const ConstituentExec &ce = d.ex.constituents[k];
                if (ce.isMem) {
                    is_load = !ce.isStore;
                    is_store = ce.isStore;
                    maddr = ce.memAddr;
                    msize = ce.memSize;
                }
            }
        } else if (inst.isLoad()) {
            is_load = true;
            maddr = d.ex.memAddr;
            msize = d.ex.memSize;
        } else if (inst.isStore()) {
            is_store = true;
            maddr = d.ex.memAddr;
            msize = d.ex.memSize;
        }
        if (is_load && lq.size() >= cfg.loadQueueEntries)
            return;
        if (is_store && sq.size() >= cfg.storeQueueEntries)
            return;

        // --- All resources available: allocate. ---
        d.isLoadOp = is_load;
        d.isStoreOp = is_store;
        d.memAddr = maddr;
        d.memSize = msize;

        // Source producers from the rename map (read *before* the
        // destination mapping is updated: an instruction may read the
        // previous version of its own destination register).
        d.numSrcs = 0;
        auto add_src = [&](uint8_t reg, uint8_t slot) {
            if (reg == isa::kZeroReg)
                return;
            d.srcProducers[d.numSrcs] = renameMap[reg];
            d.srcSlots[d.numSrcs] = slot;
            ++d.numSrcs;
        };
        if (d.isHandle()) {
            if (inst.numSrcs >= 1)
                add_src(inst.rs1, 0);
            if (inst.numSrcs >= 2)
                add_src(inst.rs2, 1);
            if (inst.numSrcs >= 3)
                add_src(inst.rs3, 2);
        } else {
            const isa::OpInfo &info = isa::opInfo(inst.op);
            if (info.readsRs1)
                add_src(inst.rs1, 0);
            if (info.readsRs2)
                add_src(inst.rs2, 1);
        }

        if (dest >= 0) {
            d.destArch = dest;
            d.prevProducer = renameMap[static_cast<size_t>(dest)];
            renameMap[static_cast<size_t>(dest)] = d.seq;
            --freePhys;
        }

        // Memory-dependence prediction.
        if (is_store) {
            d.waitForStore = storeSets.storeRenamed(d.ex.pc, d.seq);
            sq.push_back(d.seq);
        } else if (is_load) {
            d.waitForStore = storeSets.loadRenamed(d.ex.pc);
            lq.push_back(d.seq);
        }

        d.dispatchCycle = cycle;
        d.earliestIssue = cycle + cfg.renameDelay;
        d.inIq = true;
        iq.push_back(d.seq);
        iqNextCheck.push_back(0);

        // New IQ entry: the issue gate must scan no later than its
        // first possible issue cycle (issue already ran this cycle).
        uint64_t first = std::max(d.earliestIssue, cycle + 1);
        if (issueSkipUntil > first)
            issueSkipUntil = first;

        if (profiler)
            profiler->onDispatch({d.seq, cycle});

        mg_assert(d.seq == tailSeq, "dispatch out of order");
        robAt(tailSeq) = std::move(d);
        fetchQueue.pop_front();
        ++tailSeq;
    }
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::fetchStage()
{
    if (stalledOnSeq != kCommitted || cycle < fetchResumeCycle)
        return;
    if (cycle < fetchBlockedUntil)
        return;

    uint32_t slots = 0;
    uint32_t lines = 0;
    bool new_fetch_group = true;

    while (slots < cfg.fetchWidth) {
        // Obtain the next correct-path step.
        if (!pendingStep) {
            if (!replayQueue.empty()) {
                pendingStep = std::move(replayQueue.front());
                replayQueue.pop_front();
            } else if (!oracle.halted()) {
                pendingStep = oracle.step();
            } else {
                return;
            }
            if (pendingStep->syntheticJump)
                ++res.disabledExpansions;
        }
        ExecStep &step = *pendingStep;

        // Ideal-Slack-Dynamic: outlining jumps are free — they do not
        // consume fetch slots, break fetch, or enter the pipeline.
        bool free_step = cfg.slackDynamicIdeal &&
                         (step.syntheticJump || step.outliningJump);
        if (free_step) {
            pendingStep.reset();
            continue;
        }

        // I$ access (ideal mode charges outlined bodies no I$ cost:
        // they behave as if fetched inline).
        bool skip_icache = cfg.slackDynamicIdeal && step.fromDisabledMg;
        if (!skip_icache) {
            uint64_t line = hier.icache().lineOf(fetchAddrOf(step.pc));
            if (line != curFetchLine || new_fetch_group) {
                if (lines >= kMaxFetchLines)
                    return; // step stays pending for next cycle
                ++lines;
                curFetchLine = line;
                uint32_t extra = hier.instAccess(fetchAddrOf(step.pc));
                if (extra > 0) {
                    fetchBlockedUntil = cycle + extra;
                    return; // step stays pending
                }
            }
        }
        new_fetch_group = false;

        // Create the in-flight instruction directly in the fetch
        // queue: DynInst is large enough (inline ExecStep) that an
        // extra stack copy per fetched instruction is measurable.
        DynInst &d = fetchQueue.emplace_back_raw();
        d.resetMeta();
        d.seq = nextSeq++;
        d.ex = std::move(step);
        pendingStep.reset();
        d.fetchCycle = cycle;
        d.renameReady = cycle + cfg.frontendDelay;

        // Basic-block instance tracking (profiler).
        bool is_code_pc = d.ex.pc < isLeader.size();
        if (lastFetchPc == isa::kNoAddr ||
            (is_code_pc && isLeader[d.ex.pc])) {
            ++bbInstanceId;
            d.bbHead = is_code_pc && isLeader[d.ex.pc];
        }
        d.bbInstance = bbInstanceId;
        lastFetchPc = d.ex.pc;

        // Branch prediction / fetch redirection.
        bool break_fetch = false;
        const Instruction &inst = d.ex.inst;
        bool handle_cond = d.isHandle() && d.ex.tmpl->condControl;
        bool handle_jump = d.isHandle() && d.ex.tmpl->hasControl &&
                           !d.ex.tmpl->condControl;

        if (handle_jump) {
            // Handle ending in a direct jump: always taken.
            if (!bpred.btbLookup(d.ex.pc, d.ex.nextPc))
                fetchBlockedUntil = cycle + kBtbMissPenalty;
            break_fetch = true;
        } else if (inst.isCondBranch() || handle_cond) {
            bool pred = bpred.predictConditional(d.ex.pc, d.ex.taken);
            if (pred != d.ex.taken) {
                d.mispredicted = true;
                stalledOnSeq = d.seq;
                fetchResumeCycle = kInfCycle;
                break_fetch = true;
            } else if (d.ex.taken) {
                if (!bpred.btbLookup(d.ex.pc, d.ex.nextPc))
                    fetchBlockedUntil = cycle + kBtbMissPenalty;
                break_fetch = true;
            }
        } else if (inst.op == Opcode::J) {
            if (!bpred.btbLookup(d.ex.pc, d.ex.nextPc))
                fetchBlockedUntil = cycle + kBtbMissPenalty;
            break_fetch = true;
        } else if (inst.op == Opcode::JAL) {
            bpred.rasPush(d.ex.pc + 1);
            if (!bpred.btbLookup(d.ex.pc, d.ex.nextPc))
                fetchBlockedUntil = cycle + kBtbMissPenalty;
            break_fetch = true;
        } else if (inst.op == Opcode::JR) {
            if (!bpred.rasPop(d.ex.nextPc)) {
                d.mispredicted = true;
                stalledOnSeq = d.seq;
                fetchResumeCycle = kInfCycle;
            }
            break_fetch = true;
        } else if (inst.op == Opcode::JALR) {
            bpred.rasPush(d.ex.pc + 1);
            if (!bpred.btbLookup(d.ex.pc, d.ex.nextPc)) {
                d.mispredicted = true;
                stalledOnSeq = d.seq;
                fetchResumeCycle = kInfCycle;
            }
            break_fetch = true;
        }

        if (profiler) {
            FetchObservation fo;
            fo.pc = d.ex.pc;
            fo.seq = d.seq;
            fo.cycle = cycle;
            fo.inst = &d.ex.inst;
            fo.isHandle = d.isHandle();
            fo.mgSize = d.isHandle()
                            ? static_cast<uint8_t>(d.ex.tmpl->size())
                            : 0;
            profiler->onFetch(fo);
        }

        ++slots;
        if (break_fetch)
            return;
    }
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

uint32_t
Core::commitStage()
{
    uint32_t n = 0;
    for (; n < cfg.commitWidth && headSeq < tailSeq; ++n) {
        DynInst &d = robAt(headSeq);
        if (!d.issued || d.complete > cycle)
            return n;

        if (d.isStoreOp) {
            hier.dataAccess(d.memAddr, true);
            storeSets.storeCompleted(d.ex.pc, d.seq);
            mg_assert(!sq.empty() && sq.front() == d.seq,
                      "store queue out of order at commit");
            sq.pop_front();
        }
        if (d.isLoadOp) {
            mg_assert(!lq.empty() && lq.front() == d.seq,
                      "load queue out of order at commit");
            lq.pop_front();
        }
        if (d.destArch >= 0) {
            ++freePhys;
            if (renameMap[static_cast<size_t>(d.destArch)] == d.seq)
                renameMap[static_cast<size_t>(d.destArch)] = kCommitted;
        }
        if (!sdWatch.empty())
            sdWatch.erase(d.seq);
        if (profiler) {
            profiler->onCommit(d.seq);
            CommitObservation co;
            co.seq = d.seq;
            co.cycle = cycle;
            co.fetchCycle = d.fetchCycle;
            co.dispatchCycle = d.dispatchCycle;
            co.issueCycle = d.issueCycle;
            co.completeCycle = d.complete;
            co.mispredicted = d.mispredicted;
            co.isLoad = d.isLoadOp;
            co.isStore = d.isStoreOp;
            co.isHandle = d.isHandle();
            co.missedCache = d.missedCache;
            profiler->onCommitDetail(co);
        }

        ++res.committedUnits;
        res.originalInsts += d.ex.originalInstCount();
        if (d.isHandle()) {
            ++res.committedHandles;
            res.coveredInsts += d.ex.tmpl->size();
        }
        if (d.ex.syntheticJump || d.ex.outliningJump)
            ++res.outliningJumps;

        ++headSeq;
    }
    return n;
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

SimResult
Core::run()
{
    res = SimResult{};
    if (cfg.lossAccounting) {
        res.accountedWidth = cfg.commitWidth;
        if (mgInfo)
            res.mgTemplates.resize(mgInfo->templates.size());
    }
    while (!(oracle.halted() && headSeq == tailSeq &&
             fetchQueue.empty() && replayQueue.empty() && !pendingStep)) {
        ++cycle;
        if (cycle >= cfg.maxCycles) {
            std::string head_state = "<empty>";
            if (headSeq < tailSeq) {
                const DynInst &h = robAt(headSeq);
                head_state = strprintf(
                    "pc=%u inst='%s' inIq=%d issued=%d earliest=%llu "
                    "complete=%llu waitStore=%llu srcs=%u "
                    "p0=%llu p1=%llu inIqVec=%d",
                    h.ex.pc, isa::disassemble(h.ex.inst).c_str(),
                    h.inIq, h.issued,
                    static_cast<unsigned long long>(h.earliestIssue),
                    static_cast<unsigned long long>(h.complete),
                    static_cast<unsigned long long>(h.waitForStore),
                    h.numSrcs,
                    static_cast<unsigned long long>(h.srcProducers[0]),
                    static_cast<unsigned long long>(h.srcProducers[1]),
                    std::count(iq.begin(), iq.end(), h.seq) ? 1 : 0);
            }
            mg_panic("simulation of '%s' exceeded %llu cycles "
                     "(livelock?): rob=[%llu,%llu) iq=%zu fq=%zu "
                     "stalledOn=%llu resume=%llu blocked=%llu "
                     "committed=%llu head{%s}",
                     prog.name.c_str(),
                     static_cast<unsigned long long>(cfg.maxCycles),
                     static_cast<unsigned long long>(headSeq),
                     static_cast<unsigned long long>(tailSeq),
                     iq.size(), fetchQueue.size(),
                     static_cast<unsigned long long>(stalledOnSeq),
                     static_cast<unsigned long long>(fetchResumeCycle),
                     static_cast<unsigned long long>(fetchBlockedUntil),
                     static_cast<unsigned long long>(res.committedUnits),
                     head_state.c_str());
        }
        uint32_t committed_now = commitStage();
        if (cfg.lossAccounting)
            accountLoss(committed_now);
        processEvents();
        issueStage();
        dispatchStage();
        fetchStage();
        if (slackDyn)
            slackDyn->maybeDecay(cycle);
        if (auditTestHook)
            auditTestHook(*this);
        if (auditor)
            auditor->endOfCycle(*this, cycle);
    }

    res.cycles = cycle;
    res.branchPred = bpred.stats();
    res.icache = hier.icache().stats();
    res.dcache = hier.dcache().stats();
    res.l2 = hier.l2cache().stats();
    res.itlb = hier.itlb().stats();
    res.dtlb = hier.dtlb().stats();
    res.storeSets = storeSets.stats();
    if (slackDyn) {
        res.slackDynamic = slackDyn->stats();
        res.slackDynamicDisabledStatic = slackDyn->disabledCount();
    }
    return res;
}

} // namespace mg::uarch
