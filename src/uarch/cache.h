/**
 * @file
 * Set-associative cache and TLB timing models.
 *
 * These are latency-oracle models: an access updates tag/LRU state and
 * returns the latency the access would take.  Misses propagate to the
 * next level through CacheHierarchy.  Bandwidth/bus contention is not
 * modelled (the paper's main-memory bus is far from saturation for
 * these workloads); miss status registers are unbounded.
 */

#ifndef MG_UARCH_CACHE_H
#define MG_UARCH_CACHE_H

#include <cstdint>
#include <vector>

#include "uarch/config.h"

namespace mg::uarch
{

/** Per-cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** One level of set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the given address.
     * @retval true on hit.  Allocates the line on miss.
     */
    bool access(uint64_t addr);

    /** Probe without state update. */
    bool probe(uint64_t addr) const;

    /** Invalidate everything (used by tests). */
    void flush();

    uint32_t hitLatency() const { return cfg.hitLatency; }
    uint64_t lineOf(uint64_t addr) const { return addr >> lineShift; }
    const CacheStats &stats() const { return stat; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    CacheConfig cfg;
    uint32_t numSets;
    uint32_t lineShift; ///< log2(cfg.lineBytes)
    uint32_t setShift;  ///< log2(numSets)
    std::vector<Way> ways; ///< numSets * assoc
    uint64_t useCounter = 0;
    CacheStats stat;
};

/** Set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /** @retval extra latency (0 on hit, missLatency on miss). */
    uint32_t access(uint64_t addr);

    const CacheStats &stats() const { return stat; }

  private:
    TlbConfig cfg;
    uint32_t numSets;
    uint32_t pageShift; ///< log2(cfg.pageBytes)
    uint32_t setShift;  ///< log2(numSets)
    struct Way
    {
        uint64_t vpn = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };
    std::vector<Way> ways;
    uint64_t useCounter = 0;
    CacheStats stat;
};

/**
 * Two-level hierarchy used for both instruction and data sides:
 * L1 -> shared L2 -> fixed-latency main memory.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CoreConfig &cfg);

    /**
     * Data-side access.
     * @param addr   byte address
     * @param write  store (writes allocate like reads)
     * @retval total access latency in cycles (including TLB miss cost)
     */
    uint32_t dataAccess(uint64_t addr, bool write);

    /**
     * Instruction-side access (compacted code byte address).
     * @retval total access latency in cycles
     */
    uint32_t instAccess(uint64_t addr);

    Cache &icache() { return l1i; }
    Cache &dcache() { return l1d; }
    Cache &l2cache() { return l2; }
    Tlb &dtlb() { return dtlbUnit; }
    Tlb &itlb() { return itlbUnit; }

  private:
    CoreConfig cfg;
    Cache l1i;
    Cache l1d;
    Cache l2;
    Tlb itlbUnit;
    Tlb dtlbUnit;
};

} // namespace mg::uarch

#endif // MG_UARCH_CACHE_H
