#include "uarch/memory.h"

#include <cstring>

#include "common/logging.h"

namespace mg::uarch
{

Memory::Memory(const assembler::Program &prog)
{
    bytes.assign(prog.memSize, 0);
    mg_assert(prog.dataBase + prog.dataInit.size() <= bytes.size(),
              "data image overflows memory in '%s'", prog.name.c_str());
    // Guard the empty image: memcpy forbids null even for n == 0.
    if (!prog.dataInit.empty()) {
        std::memcpy(bytes.data() + prog.dataBase, prog.dataInit.data(),
                    prog.dataInit.size());
    }
}

void
Memory::checkRange(uint64_t addr, unsigned n) const
{
    mg_assert(addr + n <= bytes.size(),
              "memory access out of range: addr=0x%llx size=%u mem=%llu",
              static_cast<unsigned long long>(addr), n,
              static_cast<unsigned long long>(bytes.size()));
}

uint64_t
Memory::read(uint64_t addr, unsigned bytes_n) const
{
    checkRange(addr, bytes_n);
    uint64_t v = 0;
    for (unsigned i = 0; i < bytes_n; ++i)
        v |= static_cast<uint64_t>(bytes[addr + i]) << (8 * i);
    return v;
}

int64_t
Memory::readSigned(uint64_t addr, unsigned bytes_n) const
{
    uint64_t v = read(addr, bytes_n);
    unsigned shift = 64 - 8 * bytes_n;
    return static_cast<int64_t>(v << shift) >> shift;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned bytes_n)
{
    checkRange(addr, bytes_n);
    for (unsigned i = 0; i < bytes_n; ++i)
        bytes[addr + i] = static_cast<uint8_t>(value >> (8 * i));
}

} // namespace mg::uarch
