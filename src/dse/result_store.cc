#include "dse/result_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "trace/stats_parse.h"

namespace fs = std::filesystem;

namespace mg::dse
{

namespace
{

constexpr const char *kMagic = "mg-dse-v1";

std::string
slurp(const fs::path &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return {};
    }
    std::stringstream ss;
    ss << in.rdbuf();
    ok = true;
    return ss.str();
}

/** Append one CoreConfig field as "name=value;". */
template <typename T>
void
field(std::string &out, const char *name, const T &value)
{
    out += name;
    out += '=';
    out += std::to_string(value);
    out += ';';
}

void
cacheFields(std::string &out, const char *name,
            const uarch::CacheConfig &c)
{
    out += name;
    out += "={";
    field(out, "size", c.sizeBytes);
    field(out, "assoc", c.assoc);
    field(out, "line", c.lineBytes);
    field(out, "hitLat", c.hitLatency);
    out += "};";
}

void
tlbFields(std::string &out, const char *name, const uarch::TlbConfig &t)
{
    out += name;
    out += "={";
    field(out, "entries", t.entries);
    field(out, "assoc", t.assoc);
    field(out, "page", t.pageBytes);
    field(out, "missLat", t.missLatency);
    out += "};";
}

} // namespace

std::string
StoreKey::hex() const
{
    return hex64(value);
}

std::string
canonicalConfig(const uarch::CoreConfig &c)
{
    std::string out = "name=" + c.name + ";";
    field(out, "fetchWidth", c.fetchWidth);
    field(out, "renameWidth", c.renameWidth);
    field(out, "issueWidth", c.issueWidth);
    field(out, "commitWidth", c.commitWidth);
    field(out, "rob", c.robEntries);
    field(out, "iq", c.issueQueueEntries);
    field(out, "regs", c.physRegs);
    field(out, "lq", c.loadQueueEntries);
    field(out, "sq", c.storeQueueEntries);
    field(out, "simpleInt", c.simpleIntPerCycle);
    field(out, "complex", c.complexPerCycle);
    field(out, "loads", c.loadsPerCycle);
    field(out, "stores", c.storesPerCycle);
    field(out, "frontendDelay", c.frontendDelay);
    field(out, "renameDelay", c.renameDelay);
    field(out, "regreadDelay", c.regreadDelay);
    field(out, "regwriteDelay", c.regwriteDelay);
    field(out, "bpBimodal", c.branchPred.bimodalEntries);
    field(out, "bpGshare", c.branchPred.gshareEntries);
    field(out, "bpChooser", c.branchPred.chooserEntries);
    field(out, "bpHistory", c.branchPred.historyBits);
    field(out, "btb", c.branchPred.btbEntries);
    field(out, "btbAssoc", c.branchPred.btbAssoc);
    field(out, "ras", c.branchPred.rasEntries);
    cacheFields(out, "icache", c.icache);
    cacheFields(out, "dcache", c.dcache);
    cacheFields(out, "l2", c.l2);
    tlbFields(out, "itlb", c.itlb);
    tlbFields(out, "dtlb", c.dtlb);
    field(out, "memLat", c.memLatency);
    field(out, "ssit", c.storeSetsSsitEntries);
    field(out, "lfst", c.storeSetsLfstEntries);
    field(out, "ssClear", c.storeSetsClearPeriod);
    field(out, "mg", static_cast<int>(c.mgEnabled));
    field(out, "mgIssue", c.mgIssuePerCycle);
    field(out, "mgMemIssue", c.mgMemIssuePerCycle);
    field(out, "mgt", c.mgtEntries);
    field(out, "sd", static_cast<int>(c.slackDynamicEnabled));
    field(out, "sdIdeal", static_cast<int>(c.slackDynamicIdeal));
    field(out, "sdConsumer",
          static_cast<int>(c.slackDynamicConsumerCheck));
    field(out, "sdSial", static_cast<int>(c.slackDynamicSial));
    field(out, "sdThreshold", c.slackDynamicThreshold);
    field(out, "sdMax", c.slackDynamicMax);
    field(out, "sdDecay", c.slackDynamicDecayCycles);
    field(out, "maxCycles", c.maxCycles);
    field(out, "loss", static_cast<int>(c.lossAccounting));
    field(out, "check", static_cast<int>(c.checkLevel));
    return out;
}

uint64_t
programFingerprint(const assembler::Program &prog)
{
    std::string bytes = prog.name;
    bytes += '\0';
    bytes += prog.listing();
    bytes += '\0';
    bytes.append(reinterpret_cast<const char *>(prog.dataInit.data()),
                 prog.dataInit.size());
    bytes += '\0';
    bytes += std::to_string(prog.dataBase);
    bytes += '|';
    bytes += std::to_string(prog.memSize);
    bytes += '|';
    bytes += std::to_string(prog.entry);
    return fnv1a64(bytes);
}

StoreKey
deriveKey(const assembler::Program &prog,
          const uarch::CoreConfig &config, const std::string &selector,
          uint32_t templateBudget, const std::string &sim_version)
{
    StoreKey key;
    key.identity = "prog=" + prog.name + "#" +
                   hex64(programFingerprint(prog)) +
                   "|cfg=" + canonicalConfig(config) +
                   "|sel=" + selector +
                   "|budget=" + std::to_string(templateBudget) +
                   "|sim=" + sim_version;
    key.value = fnv1a64(key.identity);
    return key;
}

std::string
ResultStore::open(const std::string &root_dir)
{
    std::error_code ec;
    for (const char *sub : {"objects", "quarantine", "tmp"}) {
        fs::create_directories(fs::path(root_dir) / sub, ec);
        if (ec) {
            return "cannot create store directory '" + root_dir + "/" +
                   sub + "': " + ec.message();
        }
    }
    root = root_dir;
    return "";
}

std::string
ResultStore::objectPath(const StoreKey &key) const
{
    std::string hex = key.hex();
    return root + "/objects/" + hex.substr(0, 2) + "/" + hex + ".entry";
}

std::string
ResultStore::validateEntry(const std::string &content,
                           const std::string &key_hex,
                           std::string *stats_line_out,
                           std::string *version_out)
{
    // The writer terminates the file with '\n'; anything else is the
    // mid-write truncation signature.
    if (content.empty() || content.back() != '\n')
        return "truncated";

    size_t nl1 = content.find('\n');
    size_t nl2 = nl1 == std::string::npos
                     ? std::string::npos
                     : content.find('\n', nl1 + 1);
    size_t nl3 = nl2 == std::string::npos
                     ? std::string::npos
                     : content.find('\n', nl2 + 1);
    if (nl1 == std::string::npos || nl2 == std::string::npos ||
        nl3 == std::string::npos || nl3 + 1 != content.size())
        return "framing";

    const std::string header = content.substr(0, nl1);
    const std::string identity =
        content.substr(nl1 + 1, nl2 - nl1 - 1);
    const std::string stats = content.substr(nl2 + 1, nl3 - nl2 - 1);

    auto tokens = splitWhitespace(header);
    if (tokens.size() != 4 || tokens[0] != kMagic)
        return "header";
    if (tokens[1] != key_hex)
        return "key-mismatch";
    if (hex64(fnv1a64(identity)) != key_hex)
        return "identity-hash";
    if (hex64(fnv1a64(stats)) != tokens[2])
        return "payload-hash";

    trace::ParsedStats parsed;
    if (std::string err = trace::parseStatsJson(stats, parsed);
        !err.empty())
        return "stats-parse";
    if (parsed.isError)
        return "error-record";

    if (stats_line_out)
        *stats_line_out = stats;
    if (version_out)
        *version_out = tokens[3];
    return "";
}

void
ResultStore::quarantine(const std::string &path,
                        const std::string &key_hex,
                        const std::string &reason)
{
    std::error_code ec;
    fs::path dest =
        fs::path(root) / "quarantine" / (key_hex + "." + reason);
    fs::rename(path, dest, ec);
    if (ec) {
        // Cross-device or permission trouble: removing is still safe
        // (the entry is invalid) and keeps it from being re-served.
        fs::remove(path, ec);
    }
    ++nQuarantined;
    quarantinedEntries.push_back(
        {"objects/" + key_hex.substr(0, 2) + "/" + key_hex + ".entry",
         reason});
}

std::optional<std::string>
ResultStore::lookup(const StoreKey &key)
{
    mg_assert(isOpen(), "ResultStore::lookup before open()");
    const std::string path = objectPath(key);
    bool ok = false;
    std::string content = slurp(path, ok);
    if (!ok) {
        ++nMisses;
        return std::nullopt;
    }
    std::string stats;
    if (std::string reason =
            validateEntry(content, key.hex(), &stats, nullptr);
        !reason.empty()) {
        quarantine(path, key.hex(), reason);
        ++nMisses;
        return std::nullopt;
    }
    ++nHits;
    return stats;
}

std::string
ResultStore::insert(const StoreKey &key,
                    const std::string &stats_json_line)
{
    mg_assert(isOpen(), "ResultStore::insert before open()");

    // Refuse to store anything lookup would quarantine.
    trace::ParsedStats parsed;
    if (std::string err =
            trace::parseStatsJson(stats_json_line, parsed);
        !err.empty())
        return "not a stats line: " + err;
    if (parsed.isError)
        return "refusing to store an error record";

    const std::string hex = key.hex();
    std::string content = std::string(kMagic) + " " + hex + " " +
                          hex64(fnv1a64(stats_json_line)) + " " +
                          kSimVersion + "\n" + key.identity + "\n" +
                          stats_json_line + "\n";

    // Stage under a writer-unique name, then rename into place: a
    // reader never observes a partial entry, and two concurrent
    // writers of the same key (which stage identical bytes — the
    // store is content-addressed) race only on who renames last.
    std::ostringstream tid;
    tid << std::this_thread::get_id();
    fs::path tmp = fs::path(root) / "tmp" /
                   (hex + "." + std::to_string(getpid()) + "." +
                    tid.str() + ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary);
        out << content;
        if (!out)
            return "cannot write '" + tmp.string() + "'";
    }
    std::error_code ec;
    const fs::path target = objectPath(key);
    fs::create_directories(target.parent_path(), ec); // fan-out dir
    fs::rename(tmp, target, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return "cannot publish '" + target.string() + "'";
    }
    return "";
}

VerifyReport
ResultStore::verify()
{
    mg_assert(isOpen(), "ResultStore::verify before open()");
    VerifyReport rep;

    // Deterministic traversal: collect then sort.
    std::vector<fs::path> files;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(
             fs::path(root) / "objects", ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file())
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &f : files) {
        ++rep.checked;
        std::string stem = f.stem().string();
        bool ok = false;
        std::string content = slurp(f, ok);
        std::string reason =
            ok ? validateEntry(content, stem, nullptr, nullptr)
               : "unreadable";
        if (!reason.empty()) {
            quarantine(f.string(), stem, reason);
            rep.bad.push_back({"objects/" + stem.substr(0, 2) + "/" +
                                   stem + ".entry",
                               reason});
        }
    }
    return rep;
}

GcReport
ResultStore::gc(const std::string &keep_version)
{
    mg_assert(isOpen(), "ResultStore::gc before open()");
    GcReport rep;
    std::error_code ec;

    std::vector<fs::path> objects;
    for (auto it = fs::recursive_directory_iterator(
             fs::path(root) / "objects", ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file())
            objects.push_back(it->path());
    }
    std::sort(objects.begin(), objects.end());
    for (const fs::path &f : objects) {
        bool ok = false;
        std::string content = slurp(f, ok);
        std::string version;
        std::string reason =
            ok ? validateEntry(content, f.stem().string(), nullptr,
                               &version)
               : "unreadable";
        if (!reason.empty()) {
            // Invalid entries route through quarantine (and are then
            // reclaimed below on the next gc); verify() first gives a
            // report, but gc alone must still never leave them live.
            quarantine(f.string(), f.stem().string(), reason);
            continue;
        }
        if (version != keep_version) {
            uint64_t bytes = content.size();
            fs::remove(f, ec);
            if (!ec) {
                ++rep.staleRemoved;
                rep.bytesReclaimed += bytes;
            }
        }
    }

    std::vector<fs::path> quarantined;
    for (auto it =
             fs::directory_iterator(fs::path(root) / "quarantine", ec);
         !ec && it != fs::directory_iterator(); ++it) {
        if (it->is_regular_file())
            quarantined.push_back(it->path());
    }
    std::sort(quarantined.begin(), quarantined.end());
    for (const fs::path &f : quarantined) {
        uint64_t bytes = fs::file_size(f, ec);
        if (ec)
            bytes = 0;
        fs::remove(f, ec);
        if (!ec) {
            ++rep.quarantineRemoved;
            rep.bytesReclaimed += bytes;
        }
    }
    return rep;
}

StoreStats
ResultStore::stats() const
{
    mg_assert(isOpen(), "ResultStore::stats before open()");
    StoreStats st;
    std::error_code ec;

    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(
             fs::path(root) / "objects", ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file())
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files) {
        ++st.entries;
        uint64_t bytes = fs::file_size(f, ec);
        if (!ec)
            st.objectBytes += bytes;
        bool ok = false;
        std::string content = slurp(f, ok);
        std::string version;
        if (ok && validateEntry(content, f.stem().string(), nullptr,
                                &version)
                      .empty())
            ++st.byVersion[version];
        else
            ++st.byVersion["invalid"];
    }

    for (auto it =
             fs::directory_iterator(fs::path(root) / "quarantine", ec);
         !ec && it != fs::directory_iterator(); ++it) {
        if (it->is_regular_file())
            ++st.quarantined;
    }
    return st;
}

} // namespace mg::dse
