/**
 * @file
 * The sweep engine behind `mgsim sweep` (docs/DSE.md): expand a
 * parameter grid (dse/grid.h), answer every point it can from the
 * content-addressed result store (dse/result_store.h), simulate only
 * the misses through the parallel batch substrate (sim/runner.h), and
 * emit one deterministic JSON document — grid, per-point results,
 * per-(config, selector) aggregates, and the Pareto frontier of
 * geomean IPC versus aggregate resource cost.
 *
 * Determinism contract (proved by tests/dse/sweep_diff_test.cc): for
 * a given grid and simulator version, the emitted document is
 * byte-identical whether every point was freshly simulated, every
 * point was a cache hit, or the grid was split into shards whose
 * results were merged afterwards.  Everything run-provenance-shaped —
 * hit/miss counts, wall time, worker count — therefore lives in the
 * SweepSummary (for the CLI's stderr report), never in the document.
 *
 * Sharding protocol: shard i of N (1-based) simulates exactly the
 * cache-missing points whose expansion index satisfies
 * `index % N == i-1`, publishing results only into the shared store
 * (no document).  A final `--merge` pass reads every point back from
 * the store and emits the document; it fails loudly if any point is
 * still missing rather than emit a partial sweep.
 *
 * The analytic pre-filter (dse/queue_model.h) marks grid
 * configurations that a strictly cheaper configuration is predicted
 * to beat by at least kPruneMargin.  Pruned points are never silent:
 * they appear in the document as explicit `"status": "pruned"`
 * records carrying the model's prediction and the dominating
 * configuration.
 */

#ifndef MG_DSE_SWEEP_H
#define MG_DSE_SWEEP_H

#include <cstddef>
#include <string>

#include "dse/grid.h"
#include "dse/result_store.h"
#include "sim/batch_options.h"

namespace mg::dse
{

/** How one sweep invocation should run. */
struct SweepOptions
{
    /** Result-store root directory. */
    std::string storeRoot = ".mgstore";

    /** 1-based shard identity (with shardCount; 1/1 = unsharded). */
    unsigned shardIndex = 1;
    unsigned shardCount = 1;

    /**
     * Merge mode: simulate nothing — every unpruned point must
     * already be in the store (the shards ran first), and a miss is
     * an error instead of a simulation.
     */
    bool merge = false;

    /** Apply the analytic pre-filter (--no-prefilter disables). */
    bool prefilter = true;

    /**
     * Batch execution surface for the misses (jobs, isolation,
     * timeouts, retries...); the sweep inherits the full
     * fault-tolerance substrate of `mgsim batch`.
     */
    sim::BatchOptions batch = sim::BatchOptions::fromEnv();
};

/** Run-provenance tallies (stderr report only — never in the doc). */
struct SweepSummary
{
    size_t points = 0;    ///< expanded grid points
    size_t pruned = 0;    ///< pre-filtered (explicit in the doc)
    size_t hits = 0;      ///< served from the result store
    size_t misses = 0;    ///< not in the store
    size_t skipped = 0;   ///< other shards' points (shard mode)
    size_t simulated = 0; ///< executed by this invocation
    size_t failed = 0;    ///< simulations that ended in a RunError
};

/** Everything one sweep invocation produced. */
struct SweepOutcome
{
    /** Fatal problem ("" = the sweep ran). */
    std::string error;

    /**
     * The deterministic sweep document ("" in shard mode, where only
     * the store is updated).
     */
    std::string doc;

    SweepSummary summary;

    /** True when the sweep ran and every simulated point succeeded. */
    bool ok() const { return error.empty() && summary.failed == 0; }
};

/** Execute one sweep. */
SweepOutcome runSweep(const GridSpec &grid, const SweepOptions &opts);

} // namespace mg::dse

#endif // MG_DSE_SWEEP_H
