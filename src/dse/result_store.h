/**
 * @file
 * Persistent content-addressed result store for the design-space
 * exploration service (docs/DSE.md).
 *
 * Every completed simulation is stored under a 64-bit FNV-1a content
 * address derived from everything that determines its deterministic
 * stats-JSON line: the assembled program bytes, the *full* core
 * configuration (every field, not just the registry name), the
 * selector, and the simulator version (common/version.h).  Repeat
 * sweep points then cost one file read instead of one simulation, and
 * a timing-model change simply misses — an old entry can never be
 * served as a current result.
 *
 * On-disk layout (one entry per file, atomic rename-into-place):
 *
 *     <root>/objects/<kk>/<key16>.entry      kk = first 2 hex digits
 *     <root>/quarantine/<key16>.<reason>     entries that failed
 *                                            validation (never served)
 *     <root>/tmp/                            write staging
 *
 * Entry format (three lines, every line '\n'-terminated):
 *
 *     mg-dse-v1 <key16> <payload-fnv16> <sim-version>
 *     <identity line>
 *     <stats JSON line>
 *
 * Self-validation: the filename stem, the header key, and
 * fnv1a64(identity line) must all agree; fnv1a64(stats line) must
 * match the header payload digest; the stats line must parse as a
 * successful run (trace/stats_parse.h); and the final newline must be
 * present (its absence is the mid-write truncation signature).  Any
 * violation quarantines the entry — a corrupt result is *never*
 * served, and `mgsim cache verify` exits nonzero.
 */

#ifndef MG_DSE_RESULT_STORE_H
#define MG_DSE_RESULT_STORE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "assembler/program.h"
#include "common/version.h"
#include "uarch/config.h"

namespace mg::dse
{

/** A derived content address plus the identity it hashes. */
struct StoreKey
{
    /** FNV-1a-64 of `identity`. */
    uint64_t value = 0;

    /**
     * One-line, human-auditable derivation record:
     * "prog=<name>#<fnv16>|cfg=<canonical config>|sel=<selector>|
     * sim=<version>".  Stored in the entry so verify/gc can recompute
     * the key without the program in hand.
     */
    std::string identity;

    /** 16-digit lower-case hex of `value` (filename stem). */
    std::string hex() const;
};

/**
 * Canonical serialization of *every* CoreConfig field, in fixed
 * declaration order.  This string — not the registry name — is what
 * the content address hashes, so editing any preset parameter
 * invalidates exactly the affected entries.  (checkLevel and
 * lossAccounting are included deliberately: both can perturb run
 * outcomes — an audit aborts a run, lossAccounting adds stats-JSON
 * fields.)
 */
std::string canonicalConfig(const uarch::CoreConfig &config);

/**
 * Fingerprint of the assembled program: code listing, data image,
 * memory geometry and entry point.
 */
uint64_t programFingerprint(const assembler::Program &prog);

/**
 * Derive the content address of one (program, config, selector) run.
 *
 * @param selector      selector registry name ("none" = baseline)
 * @param templateBudget MGT selection budget of the request
 * @param sim_version   defaults to the compiled-in kSimVersion;
 *                      overridable for tests and gc tooling
 */
StoreKey deriveKey(const assembler::Program &prog,
                   const uarch::CoreConfig &config,
                   const std::string &selector,
                   uint32_t templateBudget,
                   const std::string &sim_version = kSimVersion);

/** Aggregate store statistics (`mgsim cache stats`). */
struct StoreStats
{
    size_t entries = 0;        ///< valid-looking object files
    size_t quarantined = 0;    ///< files in quarantine/
    uint64_t objectBytes = 0;  ///< total size of object files
    /** Entry count per simulator version (header field). */
    std::map<std::string, size_t> byVersion;
};

/** One verify/lookup failure. */
struct BadEntry
{
    std::string file;   ///< path relative to the store root
    std::string reason; ///< short slug, e.g. "truncated", "payload-hash"
};

/** Result of a full-store verification walk. */
struct VerifyReport
{
    size_t checked = 0;
    std::vector<BadEntry> bad; ///< quarantined during the walk
    bool clean() const { return bad.empty(); }
};

/** Result of a garbage collection (`mgsim cache gc`). */
struct GcReport
{
    size_t staleRemoved = 0;      ///< entries of other sim versions
    size_t quarantineRemoved = 0; ///< quarantined files deleted
    uint64_t bytesReclaimed = 0;
};

class ResultStore
{
  public:
    ResultStore() = default;

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open (creating directories as needed).
     * @return "" on success, else the error
     */
    std::string open(const std::string &root_dir);

    bool isOpen() const { return !root.empty(); }
    const std::string &rootDir() const { return root; }

    /**
     * Fetch the stats-JSON line stored under `key`, fully validating
     * the entry.  A missing file is a miss; an invalid file is
     * quarantined (moved aside, recorded, counted) and reported as a
     * miss — never served.
     */
    std::optional<std::string> lookup(const StoreKey &key);

    /**
     * Store one completed run.  The write is atomic (staged in tmp/,
     * renamed into place), so a concurrent writer of the same key is
     * harmless: both stage identical bytes and the second rename
     * simply replaces the first.
     * @return "" on success, else the error
     */
    std::string insert(const StoreKey &key,
                       const std::string &stats_json_line);

    /** Validate every object entry, quarantining failures. */
    VerifyReport verify();

    /**
     * Remove quarantined files and entries whose header simulator
     * version differs from `keep_version` (they can never hit again
     * under the current binary).
     */
    GcReport gc(const std::string &keep_version = kSimVersion);

    /** Walk the store and tally (deterministic: sorted traversal). */
    StoreStats stats() const;

    // Session counters (this process, this store object).
    size_t hits() const { return nHits; }
    size_t misses() const { return nMisses; }
    size_t quarantines() const { return nQuarantined; }

    /** Entries quarantined by this store object (lookup + verify). */
    const std::vector<BadEntry> &quarantined() const
    {
        return quarantinedEntries;
    }

  private:
    std::string objectPath(const StoreKey &key) const;

    /**
     * Validate one entry file's bytes against its expected key.
     * @return "" if valid, else the failure reason slug
     */
    static std::string validateEntry(const std::string &content,
                                     const std::string &key_hex,
                                     std::string *stats_line_out,
                                     std::string *version_out);

    /** Move a bad entry into quarantine/ and record it. */
    void quarantine(const std::string &path, const std::string &key_hex,
                    const std::string &reason);

    std::string root;
    size_t nHits = 0;
    size_t nMisses = 0;
    size_t nQuarantined = 0;
    std::vector<BadEntry> quarantinedEntries;
};

} // namespace mg::dse

#endif // MG_DSE_RESULT_STORE_H
