#include "dse/pareto.h"

#include <algorithm>

namespace mg::dse
{

void
markFrontier(std::vector<ParetoPoint> &points)
{
    for (ParetoPoint &p : points) {
        p.onFrontier = true;
        for (const ParetoPoint &q : points) {
            bool betterOrEqual = q.cost <= p.cost && q.ipc >= p.ipc;
            bool strict = q.cost < p.cost || q.ipc > p.ipc;
            if (betterOrEqual && strict) {
                p.onFrontier = false;
                break;
            }
        }
    }
}

std::vector<ParetoPoint>
frontierOf(std::vector<ParetoPoint> points)
{
    markFrontier(points);
    std::vector<ParetoPoint> frontier;
    for (const ParetoPoint &p : points)
        if (p.onFrontier)
            frontier.push_back(p);
    std::sort(frontier.begin(), frontier.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  if (a.ipc != b.ipc)
                      return a.ipc > b.ipc;
                  if (a.config != b.config)
                      return a.config < b.config;
                  return a.selector < b.selector;
              });
    return frontier;
}

} // namespace mg::dse
