#include "dse/grid.h"

#include <map>

#include "common/string_util.h"
#include "minigraph/selectors.h"
#include "workloads/workload.h"

namespace mg::dse
{

namespace
{

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for grid documents: objects,
// arrays, strings, integers.  (The repo's JSON *writers* are all
// deterministic hand-rolled emitters; this is its first reader of
// externally authored JSON, so errors must be positioned and clear.)
// ---------------------------------------------------------------------

struct JValue
{
    enum Kind { Object, Array, String, Number, Bool, Null } kind = Null;
    std::map<std::string, JValue> object;
    std::vector<JValue> array;
    std::string string_;
    double number = 0.0;
    bool boolean = false;
};

struct JParser
{
    const std::string &text;
    size_t pos = 0;
    std::string err;

    explicit JParser(const std::string &t) : text(t) {}

    void
    fail(const std::string &why)
    {
        if (err.empty())
            err = "offset " + std::to_string(pos) + ": " + why;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    JValue
    parseValue()
    {
        skipSpace();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return {};
        }
        char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            if (text.compare(pos, 4, "null") == 0) {
                pos += 4;
                return {};
            }
            fail("bad literal");
            return {};
        }
        return parseNumber();
    }

    JValue
    parseObject()
    {
        JValue v;
        v.kind = JValue::Object;
        ++pos; // '{'
        skipSpace();
        if (consume('}'))
            return v;
        for (;;) {
            skipSpace();
            if (pos >= text.size() || text[pos] != '"') {
                fail("expected object key string");
                return v;
            }
            JValue key = parseString();
            if (!err.empty())
                return v;
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            v.object[key.string_] = parseValue();
            if (!err.empty())
                return v;
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}'");
            return v;
        }
    }

    JValue
    parseArray()
    {
        JValue v;
        v.kind = JValue::Array;
        ++pos; // '['
        skipSpace();
        if (consume(']'))
            return v;
        for (;;) {
            v.array.push_back(parseValue());
            if (!err.empty())
                return v;
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']'");
            return v;
        }
    }

    JValue
    parseString()
    {
        JValue v;
        v.kind = JValue::String;
        ++pos; // '"'
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                if (pos + 1 >= text.size()) {
                    fail("bad escape");
                    return v;
                }
                char e = text[pos + 1];
                switch (e) {
                case 'n': v.string_ += '\n'; break;
                case 't': v.string_ += '\t'; break;
                case 'r': v.string_ += '\r'; break;
                case '"':
                case '\\':
                case '/': v.string_ += e; break;
                default: fail("unsupported escape"); return v;
                }
                pos += 2;
                continue;
            }
            v.string_ += c;
            ++pos;
        }
        if (pos >= text.size()) {
            fail("unterminated string");
            return v;
        }
        ++pos; // closing '"'
        return v;
    }

    JValue
    parseBool()
    {
        JValue v;
        v.kind = JValue::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JValue
    parseNumber()
    {
        JValue v;
        v.kind = JValue::Number;
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               ((text[pos] >= '0' && text[pos] <= '9') ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+'))
            ++pos;
        if (pos == start) {
            fail("expected a value");
            return v;
        }
        try {
            v.number = std::stod(text.substr(start, pos - start));
        } catch (...) {
            fail("bad number");
        }
        return v;
    }
};

/** Read one positive-integer axis ("width": [2, 4] or "width": 4). */
std::string
readAxis(const JValue &root, const std::string &name, uint32_t base_value,
         std::vector<uint32_t> &out)
{
    out.clear();
    auto it = root.object.find(name);
    if (it == root.object.end()) {
        out.push_back(base_value);
        return "";
    }
    std::vector<const JValue *> items;
    if (it->second.kind == JValue::Number) {
        items.push_back(&it->second);
    } else if (it->second.kind == JValue::Array) {
        for (const JValue &v : it->second.array)
            items.push_back(&v);
    } else {
        return "'" + name + "' must be a number or array of numbers";
    }
    if (items.empty())
        return "'" + name + "' must not be empty";
    for (const JValue *v : items) {
        if (v->kind != JValue::Number || v->number < 1 ||
            v->number != static_cast<uint32_t>(v->number))
            return "'" + name + "' values must be positive integers";
        out.push_back(static_cast<uint32_t>(v->number));
    }
    return "";
}

std::string
readStringList(const JValue &v, const std::string &name,
               std::vector<std::string> &out)
{
    if (v.kind != JValue::Array)
        return "'" + name + "' must be an array of strings";
    for (const JValue &e : v.array) {
        if (e.kind != JValue::String)
            return "'" + name + "' must be an array of strings";
        out.push_back(e.string_);
    }
    if (out.empty())
        return "'" + name + "' must not be empty";
    return "";
}

/** The five paper policies plus baseline, in fixed order. */
const std::vector<std::string> &
paperSelectors()
{
    static const std::vector<std::string> kSelectors = {
        "none", "struct-all", "struct-bounded", "slack-profile",
        "slack-dynamic",
    };
    return kSelectors;
}

std::vector<std::string>
workloadSet(const std::string &name)
{
    std::vector<std::string> out;
    if (name == "golden") {
        out = {"crc32.0", "bitcount.0", "adpcm_c.0"};
    } else if (name == "pinned") {
        for (const auto &w : workloads::workloadList()) {
            std::string n = w.name();
            if (endsWith(n, ".0"))
                out.push_back(n);
        }
    } else if (name == "all") {
        for (const auto &w : workloads::workloadList())
            out.push_back(w.name());
    }
    return out;
}

} // namespace

std::string
parseGrid(const std::string &json_text, GridSpec &out)
{
    JParser p(json_text);
    JValue root = p.parseValue();
    p.skipSpace();
    if (p.err.empty() && p.pos != p.text.size())
        p.fail("trailing garbage after document");
    if (!p.err.empty())
        return "grid JSON: " + p.err;
    if (root.kind != JValue::Object)
        return "grid JSON: top level must be an object";

    for (const auto &[key, value] : root.object) {
        (void)value;
        if (key != "base" && key != "workloads" && key != "selectors" &&
            key != "width" && key != "iq" && key != "regs" &&
            key != "mgt" && key != "configs")
            return "grid JSON: unknown key '" + key + "'";
    }

    GridSpec grid;
    if (auto it = root.object.find("base"); it != root.object.end()) {
        if (it->second.kind != JValue::String)
            return "grid JSON: 'base' must be a string";
        grid.base = it->second.string_;
    }
    auto base = uarch::configFromName(grid.base);
    if (!base)
        return "grid JSON: unknown base config '" + grid.base + "'";

    // Workloads: named set or explicit list.
    if (auto it = root.object.find("workloads");
        it != root.object.end()) {
        if (it->second.kind == JValue::String) {
            grid.workloads = workloadSet(it->second.string_);
            if (grid.workloads.empty())
                return "grid JSON: unknown workload set '" +
                       it->second.string_ +
                       "' (want golden, pinned or all)";
        } else if (std::string err = readStringList(
                       it->second, "workloads", grid.workloads);
                   !err.empty()) {
            return "grid JSON: " + err;
        }
    } else {
        grid.workloads = workloadSet("golden");
    }

    // Selectors: explicit list or the paper set.
    if (auto it = root.object.find("selectors");
        it != root.object.end()) {
        if (it->second.kind == JValue::String &&
            it->second.string_ == "paper") {
            grid.selectors = paperSelectors();
        } else if (std::string err = readStringList(
                       it->second, "selectors", grid.selectors);
                   !err.empty()) {
            return "grid JSON: " + err;
        }
    } else {
        grid.selectors = {"none"};
    }

    // Configurations: explicit tuples win over the axis product.
    if (auto it = root.object.find("configs");
        it != root.object.end()) {
        for (const char *axis : {"width", "iq", "regs", "mgt"}) {
            if (root.object.count(axis))
                return std::string("grid JSON: '") + axis +
                       "' and 'configs' are mutually exclusive";
        }
        if (it->second.kind != JValue::Array ||
            it->second.array.empty())
            return "grid JSON: 'configs' must be a non-empty array";
        for (const JValue &tuple : it->second.array) {
            if (tuple.kind != JValue::Array ||
                tuple.array.size() != 4)
                return "grid JSON: each 'configs' entry must be "
                       "[width, iq, regs, mgt]";
            ConfigTuple t{};
            for (size_t i = 0; i < 4; ++i) {
                const JValue &v = tuple.array[i];
                if (v.kind != JValue::Number || v.number < 1 ||
                    v.number != static_cast<uint32_t>(v.number))
                    return "grid JSON: 'configs' values must be "
                           "positive integers";
                t[i] = static_cast<uint32_t>(v.number);
            }
            for (const ConfigTuple &prev : grid.configs) {
                if (prev == t)
                    return "grid JSON: duplicate 'configs' entry [" +
                           std::to_string(t[0]) + ", " +
                           std::to_string(t[1]) + ", " +
                           std::to_string(t[2]) + ", " +
                           std::to_string(t[3]) + "]";
            }
            grid.configs.push_back(t);
        }
    } else {
        std::vector<uint32_t> width, iq, regs, mgt;
        struct Axis
        {
            const char *name;
            std::vector<uint32_t> *values;
            uint32_t baseValue;
        };
        const Axis axes[] = {
            {"width", &width, base->issueWidth},
            {"iq", &iq, base->issueQueueEntries},
            {"regs", &regs, base->physRegs},
            {"mgt", &mgt, base->mgtEntries},
        };
        for (const Axis &axis : axes) {
            if (std::string err = readAxis(root, axis.name,
                                           axis.baseValue,
                                           *axis.values);
                !err.empty())
                return "grid JSON: " + err;
        }
        for (uint32_t w : width)
            for (uint32_t q : iq)
                for (uint32_t r : regs)
                    for (uint32_t m : mgt)
                        grid.configs.push_back({w, q, r, m});
    }

    out = std::move(grid);
    return "";
}

uarch::CoreConfig
deriveConfig(const uarch::CoreConfig &base, const ConfigTuple &tuple)
{
    uarch::CoreConfig cfg = base;
    const auto [width, iq, regs, mgt] = tuple;
    cfg.fetchWidth = width;
    cfg.renameWidth = width;
    cfg.issueWidth = width;
    cfg.commitWidth = width;
    cfg.issueQueueEntries = iq;
    cfg.physRegs = regs;
    cfg.mgtEntries = mgt;
    if (width != base.issueWidth || iq != base.issueQueueEntries ||
        regs != base.physRegs || mgt != base.mgtEntries) {
        cfg.name = base.name + "+w" + std::to_string(width) + "-iq" +
                   std::to_string(iq) + "-r" + std::to_string(regs) +
                   "-mgt" + std::to_string(mgt);
    }
    return cfg;
}

uint64_t
resourceCost(const uarch::CoreConfig &config)
{
    uint64_t regs = config.physRegs > 32 ? config.physRegs - 32 : 0;
    return 64ull * config.issueWidth +
           4ull * config.issueQueueEntries + 2ull * regs +
           config.mgtEntries / 8;
}

std::string
expandGrid(const GridSpec &grid, std::vector<SweepPoint> &out)
{
    out.clear();
    auto base = uarch::configFromName(grid.base);
    if (!base)
        return "unknown base config '" + grid.base + "'";
    for (const std::string &w : grid.workloads) {
        if (!workloads::findWorkload(w))
            return "unknown workload '" + w + "'";
    }
    for (const std::string &s : grid.selectors) {
        if (s != "none" && !minigraph::selectorFromName(s))
            return "unknown selector '" + s + "'";
    }

    size_t index = 0;
    for (const std::string &w : grid.workloads) {
        for (const std::string &sel : grid.selectors) {
            for (const ConfigTuple &tuple : grid.configs) {
                SweepPoint pt;
                pt.index = index++;
                pt.workload = w;
                pt.selector = sel;
                pt.config = deriveConfig(*base, tuple);
                pt.templateBudget = tuple[3];
                pt.cost = resourceCost(pt.config);
                out.push_back(std::move(pt));
            }
        }
    }
    return "";
}

GridSpec
pinnedDseGrid()
{
    GridSpec grid;
    grid.base = "reduced";
    grid.workloads = {"crc32.0", "bitcount.0"};
    grid.selectors = paperSelectors();
    // 13 tuples spanning the paper's resource trade-off space: three
    // width tiers, IQ/regs knees around the reduced machine, and MGT
    // capacities from starved to overprovisioned.
    grid.configs = {
        {2, 12, 80, 128},  {2, 18, 96, 256},  {2, 30, 96, 256},
        {2, 30, 144, 512}, {3, 18, 96, 256},  {3, 24, 128, 384},
        {3, 30, 112, 512}, {3, 30, 144, 128}, {3, 30, 144, 512},
        {4, 18, 112, 256}, {4, 30, 144, 512}, {4, 36, 160, 640},
        {4, 42, 176, 512},
    };
    return grid;
}

} // namespace mg::dse
