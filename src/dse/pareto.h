/**
 * @file
 * Pareto-frontier computation over (resource cost, IPC) points — the
 * first-class output of the sweep engine (docs/DSE.md): which
 * configurations buy performance *per resource*, the paper's central
 * question asked of the whole design space at once.
 *
 * Convention: cost is minimized, IPC is maximized.  A point is
 * dominated when another point has cost <= and ipc >= with at least
 * one strict; the frontier is the set of non-dominated points.  Ties
 * (equal cost, equal IPC) all stay on the frontier, so the result is
 * independent of input order.
 */

#ifndef MG_DSE_PARETO_H
#define MG_DSE_PARETO_H

#include <cstdint>
#include <string>
#include <vector>

namespace mg::dse
{

/** One candidate design point. */
struct ParetoPoint
{
    std::string config;   ///< derived configuration name
    std::string selector; ///< selector registry name
    uint64_t cost = 0;    ///< aggregate resource cost (grid.h)
    double ipc = 0.0;     ///< geomean IPC over the measured workloads
    size_t workloads = 0; ///< measurements aggregated into `ipc`
    bool onFrontier = false;
};

/** Mark every non-dominated point (O(n^2); grids are small). */
void markFrontier(std::vector<ParetoPoint> &points);

/**
 * The frontier itself, sorted by (cost asc, ipc desc, config,
 * selector) — a deterministic order for JSON emission.
 */
std::vector<ParetoPoint> frontierOf(std::vector<ParetoPoint> points);

} // namespace mg::dse

#endif // MG_DSE_PARETO_H
