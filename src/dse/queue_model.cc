#include "dse/queue_model.h"

#include <algorithm>
#include <cmath>

namespace mg::dse
{

namespace
{

/**
 * Mean service demand per instruction in cycles: the execute
 * occupancy of an average instruction over the suite's mix (ALU ops
 * at 1 cycle, loads at the D$ hit latency, a miss tail, multiplies).
 * A constant — the model ranks configurations, it does not predict
 * absolute IPC.
 */
constexpr double kServiceCycles = 2.1;

/**
 * Effective issue-parallelism ceiling.  The suite's kernels expose
 * roughly three instructions of ILP; beyond that, extra issue ways
 * buy only scheduling slack, not throughput (measured on the pinned
 * grid: width 3 -> 4 moves geomean IPC by under 1%).  Without this
 * cap the M/M/s station scales almost linearly in s and predicts
 * width-4 configurations ~4/3 faster than width-3 ones — an error
 * far beyond kPruneMargin that made cross-width pruning unsafe.
 */
constexpr double kIlpCeiling = 3.0;

/**
 * Sargent/Allen-Cunneen style approximation of the M/M/s queueing
 * delay factor: rho^(sqrt(2(s+1))) / (s (1 - rho)).  Cheap, smooth,
 * and exact enough for ranking (Carroll & Lin use the closed-form
 * Erlang-C; this approximation tracks it within a few percent over
 * the utilizations a grid visits).
 */
double
mmsWait(double rho, double servers)
{
    rho = std::clamp(rho, 0.0, 0.995);
    double exponent = std::sqrt(2.0 * (servers + 1.0));
    return std::pow(rho, exponent) / (servers * (1.0 - rho));
}

} // namespace

double
predictedIpc(const uarch::CoreConfig &config, bool minigraphs)
{
    // Servers: issue ways, capped at the ILP the workloads can feed.
    const double s =
        std::min(static_cast<double>(config.issueWidth), kIlpCeiling);

    // Customer population: in-flight instructions, bounded by the ROB,
    // the renaming pool, and what the scheduler window plus the
    // pipeline itself can hold (the pipeline drains at the full
    // physical width, so the buffering term keeps issueWidth).
    const double renamePool =
        config.physRegs > 32 ? config.physRegs - 32 : 1;
    const double pipeline = config.frontendDelay + config.renameDelay +
                            config.regreadDelay + config.regwriteDelay;
    const double window = std::min(
        {static_cast<double>(config.robEntries), renamePool,
         config.issueQueueEntries + config.issueWidth * pipeline});

    // Mini-graph amplification: fused instructions share issue slots
    // and window entries; the benefit saturates with MGT capacity
    // (most of the suite's coverage fits in a few hundred templates).
    double amplify = 1.0;
    if (minigraphs && config.mgEnabled) {
        double mgt = config.mgtEntries;
        amplify = 1.0 + 0.30 * (mgt / (mgt + 192.0));
    }

    // Fused instructions share issue slots and window entries, so in
    // units of *original* instructions both capacities scale by the
    // amplification factor.
    const double cap = s * amplify;        // issue limit
    const double pop = window * amplify;   // population limit

    // Fixed point between throughput and queueing delay: residency
    // R = service * (1 + wait(rho)), X = min(pop / R, cap).  The map
    // x -> min(pop / R(x), cap) is decreasing in x, so g(x) = x - map(x)
    // is strictly increasing with a unique root in [0, cap]; bisection
    // finds it exactly (a damped Picard iteration oscillates when the
    // station saturates, which broke monotonicity in the population).
    auto excess = [&](double x) {
        double rho = x / cap;
        double residency = kServiceCycles * (1.0 + mmsWait(rho, s));
        return x - std::min(pop / residency, cap);
    };
    double lo = 0.0, hi = cap;
    for (int iter = 0; iter < 64; ++iter) {
        double mid = 0.5 * (lo + hi);
        (excess(mid) < 0.0 ? lo : hi) = mid;
    }
    return std::min(
        0.5 * (lo + hi),
        static_cast<double>(config.commitWidth) * amplify);
}

} // namespace mg::dse
