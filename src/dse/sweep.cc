#include "dse/sweep.h"

#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats_util.h"
#include "common/string_util.h"
#include "dse/pareto.h"
#include "dse/queue_model.h"
#include "minigraph/selectors.h"
#include "sim/runner.h"
#include "trace/stats_json.h"
#include "trace/stats_parse.h"
#include "workloads/workload.h"

namespace mg::dse
{

namespace
{

/** Minimal JSON string escape (names and error messages). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jstr(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jnum(uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
jfix(double v)
{
    return strprintf("%.6f", v);
}

/** Pre-filter verdict for one (config, selector) cell. */
struct PruneDecision
{
    bool pruned = false;
    double predicted = 0.0;   ///< model IPC of this configuration
    std::string dominatedBy;  ///< the cheaper, predicted-faster config
};

/** What one grid point resolved to. */
enum class PointStatus : uint8_t
{
    Ok,      ///< stats line in hand (cache hit or fresh simulation)
    Pruned,  ///< pre-filtered; never measured
    Skipped, ///< another shard's point (shard mode; no document)
    Error,   ///< simulation failed
};

struct PointRecord
{
    PointStatus status = PointStatus::Skipped;
    std::string keyHex;     ///< content address (Ok points)
    std::string statsLine;  ///< the stored stats-JSON bytes (Ok)
    double predicted = 0.0; ///< model IPC (Pruned)
    std::string dominatedBy; ///< dominating config (Pruned)
    std::string errorClass;  ///< error class slug (Error)
    std::string errorMsg;    ///< failure message (Error)
};

/**
 * Pre-filter decisions per (selector, config) cell.  Decisions are a
 * pure function of the grid and the model, so every shard computes
 * the identical set.  A cell is pruned only when a *strictly cheaper*
 * configuration is predicted at least kPruneMargin faster; the
 * dominating cell named in the record is the best such predictor
 * (ties broken toward lower cost, then grid order — deterministic).
 */
std::vector<PruneDecision>
decidePrunes(const std::vector<uarch::CoreConfig> &configs,
             const std::vector<uint64_t> &costs,
             const std::vector<std::string> &selectors, bool enabled)
{
    const size_t nCfg = configs.size();
    std::vector<PruneDecision> out(selectors.size() * nCfg);
    for (size_t s = 0; s < selectors.size(); ++s) {
        const bool minigraphs = selectors[s] != "none";
        std::vector<double> pred(nCfg);
        for (size_t c = 0; c < nCfg; ++c)
            pred[c] = predictedIpc(configs[c], minigraphs);
        for (size_t c = 0; c < nCfg; ++c) {
            PruneDecision &d = out[s * nCfg + c];
            d.predicted = pred[c];
            if (!enabled)
                continue;
            size_t best = nCfg;
            for (size_t j = 0; j < nCfg; ++j) {
                if (costs[j] >= costs[c])
                    continue;
                if (pred[j] < pred[c] * kPruneMargin)
                    continue;
                if (best == nCfg || pred[j] > pred[best] ||
                    (pred[j] == pred[best] && costs[j] < costs[best]))
                    best = j;
            }
            if (best != nCfg) {
                d.pruned = true;
                d.dominatedBy = configs[best].name;
            }
        }
    }
    return out;
}

/**
 * Append one point's document record.  Every value here is a pure
 * function of the grid and the stored stats bytes — both the cache
 * hit and the fresh simulation paths parse the *stored* line, which
 * is what makes fresh/cached/merged documents byte-identical.
 */
std::string
pointJson(const SweepPoint &pt, const PointRecord &rec)
{
    std::string j = "    {\"workload\": " + jstr(pt.workload) +
                    ", \"selector\": " + jstr(pt.selector) +
                    ", \"config\": " + jstr(pt.config.name) +
                    ", \"cost\": " + jnum(pt.cost);
    switch (rec.status) {
      case PointStatus::Ok: {
        trace::ParsedStats parsed;
        std::string err = trace::parseStatsJson(rec.statsLine, parsed);
        if (!err.empty()) // lookup/insert validated; cannot happen
            mg_panic("sweep: stored stats line unparsable: %s",
                     err.c_str());
        j += ", \"status\": \"ok\", \"key\": " + jstr(rec.keyHex) +
             ", \"cycles\": " + jnum(parsed.sim.cycles) +
             ", \"ipc\": " + jfix(parsed.sim.ipc()) +
             ", \"coverage\": " + jfix(parsed.sim.coverage()) +
             ", \"statsHash\": " + jstr(hex64(fnv1a64(rec.statsLine)));
        break;
      }
      case PointStatus::Pruned:
        j += ", \"status\": \"pruned\", \"predictedIpc\": " +
             jfix(rec.predicted) +
             ", \"dominatedBy\": " + jstr(rec.dominatedBy);
        break;
      case PointStatus::Error:
        j += ", \"status\": \"error\", \"class\": " +
             jstr(rec.errorClass) + ", \"error\": " + jstr(rec.errorMsg);
        break;
      case PointStatus::Skipped: // no document in shard mode
        mg_panic("sweep: skipped point reached document emission");
    }
    return j + "}";
}

} // namespace

SweepOutcome
runSweep(const GridSpec &grid, const SweepOptions &opts)
{
    SweepOutcome out;
    if (opts.shardCount < 1 || opts.shardIndex < 1 ||
        opts.shardIndex > opts.shardCount) {
        out.error = strprintf("bad shard %u/%u (want 1 <= i <= N)",
                              opts.shardIndex, opts.shardCount);
        return out;
    }

    std::vector<SweepPoint> points;
    out.error = expandGrid(grid, points);
    if (!out.error.empty())
        return out;
    out.summary.points = points.size();
    if (points.empty()) {
        out.error = "empty grid (no workloads, selectors or configs)";
        return out;
    }

    // `mgsim batch --check-level` semantics: an explicit audit level
    // applies to every simulated core.  It perturbs the run (an audit
    // can abort it), so it must be set *before* key derivation — the
    // content address covers the full configuration.
    if (opts.batch.src.checkLevel != sim::OptionSource::Default)
        for (SweepPoint &pt : points)
            pt.config.checkLevel = opts.batch.checkLevel;

    ResultStore store;
    out.error = store.open(opts.storeRoot);
    if (!out.error.empty())
        return out;

    // The distinct configuration list (grid tuple order) drives the
    // pre-filter and the aggregate/Pareto sections.
    const size_t nCfg = grid.configs.size();
    const size_t nSel = grid.selectors.size();
    std::vector<uarch::CoreConfig> cfgs;
    std::vector<uint64_t> costs;
    for (size_t c = 0; c < nCfg; ++c) {
        cfgs.push_back(points[c].config);
        costs.push_back(points[c].cost);
    }
    const std::vector<PruneDecision> prunes =
        decidePrunes(cfgs, costs, grid.selectors, opts.prefilter);

    // Build each workload's program once; the content address hashes
    // the assembled bytes, not the name.
    std::map<std::string, assembler::Program> programs;
    for (const std::string &w : grid.workloads)
        if (!programs.count(w))
            programs.emplace(
                w, workloads::buildWorkload(*workloads::findWorkload(w))
                       .program);

    const bool shardMode = opts.shardCount > 1 && !opts.merge;
    std::vector<PointRecord> records(points.size());
    std::vector<size_t> toRun;       // indices into points
    std::vector<StoreKey> runKeys;   // parallel to toRun
    std::vector<std::string> missing; // merge mode: absent keys

    for (const SweepPoint &pt : points) {
        PointRecord &rec = records[pt.index];
        const size_t cfgIdx = pt.index % nCfg;
        const size_t selIdx = (pt.index / nCfg) % nSel;
        const PruneDecision &d = prunes[selIdx * nCfg + cfgIdx];
        if (d.pruned) {
            rec.status = PointStatus::Pruned;
            rec.predicted = d.predicted;
            rec.dominatedBy = d.dominatedBy;
            ++out.summary.pruned;
            continue;
        }
        if (shardMode &&
            pt.index % opts.shardCount != opts.shardIndex - 1) {
            rec.status = PointStatus::Skipped;
            ++out.summary.skipped;
            continue;
        }
        StoreKey key =
            deriveKey(programs.at(pt.workload), pt.config, pt.selector,
                      pt.templateBudget);
        rec.keyHex = key.hex();
        if (auto line = store.lookup(key)) {
            rec.status = PointStatus::Ok;
            rec.statsLine = std::move(*line);
            ++out.summary.hits;
            continue;
        }
        ++out.summary.misses;
        if (opts.merge) {
            missing.push_back(pt.workload + "/" + pt.selector + "/" +
                              pt.config.name);
            continue;
        }
        toRun.push_back(pt.index);
        runKeys.push_back(std::move(key));
    }

    if (opts.merge && !missing.empty()) {
        out.error = strprintf(
            "merge: %zu point(s) not in the store (run the shards "
            "first); first missing: %s",
            missing.size(), missing.front().c_str());
        return out;
    }

    if (!toRun.empty()) {
        std::vector<sim::RunRequest> reqs;
        for (size_t idx : toRun) {
            const SweepPoint &pt = points[idx];
            sim::RunRequest req;
            req.workload = *workloads::findWorkload(pt.workload);
            req.config = pt.config;
            if (pt.selector != "none")
                req.selector = *minigraph::selectorFromName(pt.selector);
            req.templateBudget = pt.templateBudget;
            reqs.push_back(std::move(req));
        }
        sim::Runner runner(opts.batch.runnerOptions());
        std::vector<sim::RunResult> results = runner.run(reqs, "sweep");
        out.summary.simulated = results.size();
        for (size_t i = 0; i < results.size(); ++i) {
            PointRecord &rec = records[toRun[i]];
            sim::RunResult &r = results[i];
            if (!r.ok) {
                rec.status = PointStatus::Error;
                rec.errorClass = sim::errorClassName(r.err.cls);
                rec.errorMsg = r.error;
                ++out.summary.failed;
                continue;
            }
            std::string line =
                r.statsJsonLine.empty()
                    ? trace::statsJson(sim::metaForRun(reqs[i], r), r.sim)
                    : r.statsJsonLine;
            std::string err = store.insert(runKeys[i], line);
            if (!err.empty() && out.error.empty())
                out.error = "store insert failed: " + err;
            rec.status = PointStatus::Ok;
            rec.statsLine = std::move(line);
        }
        if (!out.error.empty())
            return out;
    }

    if (shardMode) // shards publish into the store only
        return out;

    // ---- Deterministic document ----------------------------------
    std::string doc = "{\n";
    doc += "  \"schema\": \"mg-dse-sweep-v1\",\n";
    doc += "  \"simVersion\": " + jstr(kSimVersion) + ",\n";
    doc += "  \"base\": " + jstr(grid.base) + ",\n";
    doc += "  \"workloads\": [";
    for (size_t i = 0; i < grid.workloads.size(); ++i)
        doc += (i ? ", " : "") + jstr(grid.workloads[i]);
    doc += "],\n  \"selectors\": [";
    for (size_t i = 0; i < nSel; ++i)
        doc += (i ? ", " : "") + jstr(grid.selectors[i]);
    doc += "],\n  \"configs\": [\n";
    for (size_t c = 0; c < nCfg; ++c) {
        const ConfigTuple &t = grid.configs[c];
        doc += "    {\"name\": " + jstr(cfgs[c].name) +
               ", \"width\": " + jnum(t[0]) + ", \"iq\": " + jnum(t[1]) +
               ", \"regs\": " + jnum(t[2]) + ", \"mgt\": " + jnum(t[3]) +
               ", \"cost\": " + jnum(costs[c]) + "}";
        doc += c + 1 < nCfg ? ",\n" : "\n";
    }
    doc += "  ],\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        doc += pointJson(points[i], records[i]);
        doc += i + 1 < points.size() ? ",\n" : "\n";
    }
    doc += "  ],\n";

    // Aggregates: geomean IPC per (selector, config) over the
    // workloads that measured Ok, in (selector, tuple) grid order.
    std::vector<ParetoPoint> aggs;
    std::vector<std::vector<double>> ipcs(nSel * nCfg);
    for (size_t i = 0; i < points.size(); ++i) {
        if (records[i].status != PointStatus::Ok)
            continue;
        trace::ParsedStats parsed;
        trace::parseStatsJson(records[i].statsLine, parsed);
        const size_t cfgIdx = i % nCfg;
        const size_t selIdx = (i / nCfg) % nSel;
        ipcs[selIdx * nCfg + cfgIdx].push_back(parsed.sim.ipc());
    }
    for (size_t s = 0; s < nSel; ++s)
        for (size_t c = 0; c < nCfg; ++c) {
            const std::vector<double> &xs = ipcs[s * nCfg + c];
            if (xs.empty())
                continue;
            ParetoPoint p;
            p.config = cfgs[c].name;
            p.selector = grid.selectors[s];
            p.cost = costs[c];
            p.ipc = geomean(xs);
            p.workloads = xs.size();
            aggs.push_back(std::move(p));
        }
    markFrontier(aggs);
    doc += "  \"aggregates\": [\n";
    for (size_t i = 0; i < aggs.size(); ++i) {
        const ParetoPoint &p = aggs[i];
        doc += "    {\"config\": " + jstr(p.config) +
               ", \"selector\": " + jstr(p.selector) +
               ", \"cost\": " + jnum(p.cost) +
               ", \"workloads\": " + jnum(p.workloads) +
               ", \"geomeanIpc\": " + jfix(p.ipc) + ", \"pareto\": " +
               (p.onFrontier ? "true" : "false") + "}";
        doc += i + 1 < aggs.size() ? ",\n" : "\n";
    }
    doc += "  ],\n  \"pareto\": [\n";
    std::vector<ParetoPoint> frontier = frontierOf(std::move(aggs));
    for (size_t i = 0; i < frontier.size(); ++i) {
        const ParetoPoint &p = frontier[i];
        doc += "    {\"config\": " + jstr(p.config) +
               ", \"selector\": " + jstr(p.selector) +
               ", \"cost\": " + jnum(p.cost) +
               ", \"ipc\": " + jfix(p.ipc) +
               ", \"workloads\": " + jnum(p.workloads) + "}";
        doc += i + 1 < frontier.size() ? ",\n" : "\n";
    }
    doc += "  ]\n}\n";
    out.doc = std::move(doc);
    return out;
}

} // namespace mg::dse
