/**
 * @file
 * Analytic throughput pre-filter for the sweep engine, after the
 * queuing model of Carroll & Lin, "A Queuing Model for CPU Functional
 * Unit and Issue Queue Configuration" (arXiv 1807.08586; PAPERS.md).
 *
 * The issue stage is modelled as an M/M/s station: s servers (the
 * issue width), a waiting room bounded by the issue queue, and a
 * customer population bounded by the instruction window (min of ROB
 * and renaming registers — Little's law turns that population and the
 * per-instruction residency into a throughput bound).  The model
 * iterates a fixed point between utilization and queueing delay: as a
 * resource saturates, extra capacity on the other axes stops moving
 * the prediction, which is exactly the "obviously dominated"
 * signature the pre-filter prunes on.
 *
 * Predictions are *relative* IPC estimates for ranking configurations
 * of one grid — deliberately coarse, never a substitute for
 * simulation.  The sweep engine only prunes a configuration when a
 * strictly cheaper one is predicted better by at least the safety
 * margin (kPruneMargin), and the pre-filter safety test
 * (tests/dse/prefilter_test.cc) proves on the pinned grid that no
 * pruned point would have been on the measured Pareto frontier.
 */

#ifndef MG_DSE_QUEUE_MODEL_H
#define MG_DSE_QUEUE_MODEL_H

#include "uarch/config.h"

namespace mg::dse
{

/**
 * Safety factor of the pre-filter: a point is pruned only when a
 * strictly cheaper configuration is predicted at least this much
 * faster (1.25 = 25% — well beyond the model's observed ranking
 * error on the pinned grid).
 */
inline constexpr double kPruneMargin = 1.25;

/**
 * Predicted relative IPC of one configuration.
 *
 * @param minigraphs  true when a mini-graph selector is active: the
 *                    MGT then amplifies effective width/capacity
 *                    (saturating in mgtEntries)
 */
double predictedIpc(const uarch::CoreConfig &config, bool minigraphs);

} // namespace mg::dse

#endif // MG_DSE_QUEUE_MODEL_H
