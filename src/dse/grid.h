/**
 * @file
 * Parameter-grid specification and expansion for `mgsim sweep`
 * (docs/DSE.md).
 *
 * A grid is a JSON object naming a base configuration, a workload
 * set, a selector set, and per-axis value lists for the resource
 * dimensions the paper sweeps: pipeline width, issue-queue entries,
 * physical registers, and MGT capacity.  Expansion is the cartesian
 * product in a fixed nesting order (workload-major, then selector,
 * width, iq, regs, mgt), so point indices — and therefore shard
 * assignment and output ordering — are deterministic for a given
 * grid.
 *
 *     {"base": "reduced",
 *      "workloads": ["crc32.0", "bitcount.0"],   // or "golden" |
 *                                                //    "pinned" | "all"
 *      "selectors": ["none", "struct-all"],
 *      "width": [2, 4], "iq": [20, 30],
 *      "regs": [96, 144], "mgt": [256, 512]}
 *
 * An omitted axis inherits the base configuration's value.  The
 * alternative "configs" key supplies explicit [width, iq, regs, mgt]
 * tuples instead of a product (the pinned DSE grid uses this).
 */

#ifndef MG_DSE_GRID_H
#define MG_DSE_GRID_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "uarch/config.h"

namespace mg::dse
{

/** One resolved configuration tuple: width, iq, regs, mgt. */
using ConfigTuple = std::array<uint32_t, 4>;

/** A parsed, resolved grid specification. */
struct GridSpec
{
    /** Base configuration registry name (axes override its fields). */
    std::string base = "reduced";

    /** Resolved workload display names, in grid order. */
    std::vector<std::string> workloads;

    /** Selector registry names ("none" = baseline). */
    std::vector<std::string> selectors;

    /**
     * Explicit configuration tuples, in grid order.  Always resolved:
     * parsing a product-form grid expands the axis product into this
     * list, so expansion has one code path.
     */
    std::vector<ConfigTuple> configs;
};

/**
 * Parse a grid JSON document.
 * @return "" on success (out filled), else the first problem found
 */
std::string parseGrid(const std::string &json_text, GridSpec &out);

/** One expanded grid point. */
struct SweepPoint
{
    size_t index = 0; ///< position in expansion order (shard identity)
    std::string workload;
    std::string selector;
    uarch::CoreConfig config; ///< derived from base, deterministic name
    uint32_t templateBudget = 512; ///< follows the mgt axis
    uint64_t cost = 0;             ///< aggregate resource cost
};

/**
 * Derive the configuration for one tuple: the four widths track the
 * width axis; iq, regs and mgt override their fields.  The derived
 * name is deterministic — the base name when the tuple equals the
 * base's own values, else "<base>+w<W>-iq<Q>-r<R>-mgt<M>".
 */
uarch::CoreConfig deriveConfig(const uarch::CoreConfig &base,
                               const ConfigTuple &tuple);

/**
 * Aggregate resource cost of a configuration (the Pareto x-axis):
 * a fixed-weight integer sum of the swept resources,
 *
 *     64*issueWidth + 4*IQ + 2*(physRegs - 32) + MGT/8
 *
 * chosen so one issue-way trades against ~16 IQ entries or ~32
 * renaming registers (the paper's Table-1 proportions).
 */
uint64_t resourceCost(const uarch::CoreConfig &config);

/**
 * Expand a grid into points, in the fixed deterministic order.
 * @return "" on success, else the first problem (unknown base
 *         config, workload or selector)
 */
std::string expandGrid(const GridSpec &grid,
                       std::vector<SweepPoint> &out);

/**
 * The pinned DSE grid (docs/DSE.md): 2 workloads x 5 selectors x 13
 * configuration tuples = 130 cells.  The Pareto output of this grid
 * is golden-snapshotted in tests/golden/golden_pareto.json, and the
 * pre-filter safety test proves pruning never removes a measured
 * frontier point on it.
 */
GridSpec pinnedDseGrid();

} // namespace mg::dse

#endif // MG_DSE_GRID_H
