#include "isa/minigraph_types.h"

#include <functional>

namespace mg::isa
{

unsigned
MgTemplate::totalLatency() const
{
    unsigned total = 0;
    for (const auto &c : ops)
        total += opInfo(c.op).latency;
    return total;
}

bool
MgTemplate::inputIsSerializing(uint8_t slot) const
{
    for (size_t i = 1; i < ops.size(); ++i) {
        const MgConstituent &c = ops[i];
        if ((c.src1Kind == MgSrcKind::External && c.src1 == slot) ||
            (c.src2Kind == MgSrcKind::External && c.src2 == slot)) {
            return true;
        }
    }
    return false;
}

bool
MgTemplate::hasSerializingInput() const
{
    for (uint8_t s = 0; s < numInputs; ++s) {
        if (inputIsSerializing(s))
            return true;
    }
    return false;
}

size_t
MgTemplate::hash() const
{
    size_t h = ops.size();
    auto mix = [&h](size_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (const auto &c : ops) {
        mix(static_cast<size_t>(c.op));
        mix((static_cast<size_t>(c.src1Kind) << 16) |
            (static_cast<size_t>(c.src2Kind) << 8) |
            (static_cast<size_t>(c.src1) << 4) | c.src2);
        mix(std::hash<int64_t>{}(c.imm));
        mix(c.producesOutput ? 1 : 0);
    }
    return h;
}

} // namespace mg::isa
