#include "isa/minigraph_types.h"

#include <functional>

namespace mg::isa
{

unsigned
MgTemplate::totalLatency() const
{
    unsigned total = 0;
    for (const auto &c : ops)
        total += opInfo(c.op).latency;
    return total;
}

/**
 * Longest Internal-dependency chain ending at (and including)
 * constituent `idx`, by execution latency.
 */
static unsigned
chainLatencyTo(const std::vector<MgConstituent> &ops, size_t idx)
{
    const MgConstituent &c = ops[idx];
    unsigned before = 0;
    if (c.src1Kind == MgSrcKind::Internal && c.src1 < idx)
        before = chainLatencyTo(ops, c.src1);
    if (c.src2Kind == MgSrcKind::Internal && c.src2 < idx)
        before = std::max(before, chainLatencyTo(ops, c.src2));
    return before + opInfo(c.op).latency;
}

unsigned
MgTemplate::criticalLatency() const
{
    unsigned longest = 0;
    for (size_t i = 0; i < ops.size(); ++i)
        longest = std::max(longest, chainLatencyTo(ops, i));
    return longest;
}

unsigned
MgTemplate::serialLatencyToOutput() const
{
    if (outputIdx < 0)
        return totalLatency();
    unsigned total = 0;
    for (size_t i = 0; i <= static_cast<size_t>(outputIdx); ++i)
        total += opInfo(ops[i].op).latency;
    return total;
}

unsigned
MgTemplate::criticalLatencyToOutput() const
{
    if (outputIdx < 0)
        return criticalLatency();
    return chainLatencyTo(ops, static_cast<size_t>(outputIdx));
}

unsigned
MgTemplate::internalChainPenalty() const
{
    return serialLatencyToOutput() - criticalLatencyToOutput();
}

bool
MgTemplate::inputIsSerializing(uint8_t slot) const
{
    for (size_t i = 1; i < ops.size(); ++i) {
        const MgConstituent &c = ops[i];
        if ((c.src1Kind == MgSrcKind::External && c.src1 == slot) ||
            (c.src2Kind == MgSrcKind::External && c.src2 == slot)) {
            return true;
        }
    }
    return false;
}

bool
MgTemplate::hasSerializingInput() const
{
    for (uint8_t s = 0; s < numInputs; ++s) {
        if (inputIsSerializing(s))
            return true;
    }
    return false;
}

size_t
MgTemplate::hash() const
{
    size_t h = ops.size();
    auto mix = [&h](size_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (const auto &c : ops) {
        mix(static_cast<size_t>(c.op));
        mix((static_cast<size_t>(c.src1Kind) << 16) |
            (static_cast<size_t>(c.src2Kind) << 8) |
            (static_cast<size_t>(c.src1) << 4) | c.src2);
        mix(std::hash<int64_t>{}(c.imm));
        mix(c.producesOutput ? 1 : 0);
    }
    return h;
}

} // namespace mg::isa
