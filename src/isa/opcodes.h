/**
 * @file
 * MG-RISC opcode definitions and static per-opcode metadata.
 *
 * MG-RISC is the small load/store RISC ISA this reproduction uses in
 * place of the Alpha AXP.  It has 32 64-bit integer registers (r0 is
 * hard-wired to zero), immediate forms of the common ALU operations,
 * byte/half/word/double loads and stores, compare-and-branch control
 * flow, and one special opcode (MGHANDLE) that represents an entire
 * mini-graph in a rewritten binary.
 */

#ifndef MG_ISA_OPCODES_H
#define MG_ISA_OPCODES_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mg::isa
{

/** Functional-unit class an instruction executes on. */
enum class ExecClass : uint8_t
{
    Nop,        ///< consumes a slot but no FU (NOP, ELIDED)
    IntAlu,     ///< simple 1-cycle integer ALU op
    IntComplex, ///< multi-cycle integer op (mul/div/rem)
    MemRead,    ///< load
    MemWrite,   ///< store
    Control,    ///< branch or jump
    MgHandle,   ///< mini-graph handle (executes on an ALU pipeline)
};

/** Every MG-RISC opcode. */
enum class Opcode : uint8_t
{
    // ALU register-register (simple)
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // ALU register-immediate (simple)
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
    // Constant / move
    LI,                       ///< rd <- imm (64-bit immediate)
    // Complex integer
    MUL, MULI, DIV, REM,
    // Loads: rd <- mem[rs1 + imm]
    LB, LBU, LH, LHU, LW, LWU, LD,
    // Stores: mem[rs1 + imm] <- rs2
    SB, SH, SW, SD,
    // Conditional branches: if (rs1 op rs2) pc <- imm
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Unconditional control
    J,                        ///< pc <- imm
    JAL,                      ///< rd <- pc+1; pc <- imm
    JR,                       ///< pc <- rs1
    JALR,                     ///< rd <- pc+1; pc <- rs1
    // Misc
    NOP,
    HALT,                     ///< terminate the program
    // Mini-graph support (appear only in rewritten binaries)
    MGHANDLE,                 ///< aggregate handle; mgIndex names template
    ELIDED,                   ///< hole left by outlining; never fetched

    NumOpcodes
};

/** Count of real opcodes. */
constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

/** Instruction operand format. */
enum class Format : uint8_t
{
    RRR,     ///< op rd, rs1, rs2
    RRI,     ///< op rd, rs1, imm
    RI,      ///< op rd, imm
    Load,    ///< op rd, imm(rs1)
    Store,   ///< op rs2, imm(rs1)
    Branch,  ///< op rs1, rs2, target
    JTarget, ///< op target
    JLink,   ///< op rd, target
    JReg,    ///< op rs1
    JLinkReg,///< op rd, rs1
    None,    ///< op
    Handle,  ///< mini-graph handle (internal)
};

/** Static metadata for one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    ExecClass execClass;
    uint8_t latency;      ///< execution latency in cycles
    bool readsRs1;
    bool readsRs2;
    bool writesRd;
};

/** Look up the metadata for an opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic string for an opcode. */
std::string_view mnemonic(Opcode op);

/** Parse a mnemonic (lower case) into an opcode. */
std::optional<Opcode> parseMnemonic(std::string_view s);

/** True for conditional branches (BEQ..BGEU). */
bool isCondBranch(Opcode op);

/** True for any control transfer (branches, jumps). */
bool isControl(Opcode op);

/** True for loads. */
bool isLoad(Opcode op);

/** True for stores. */
bool isStore(Opcode op);

/** True for any memory op. */
inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }

} // namespace mg::isa

#endif // MG_ISA_OPCODES_H
