/**
 * @file
 * MG-RISC opcode definitions and static per-opcode metadata.
 *
 * MG-RISC is the small load/store RISC ISA this reproduction uses in
 * place of the Alpha AXP.  It has 32 64-bit integer registers (r0 is
 * hard-wired to zero), immediate forms of the common ALU operations,
 * byte/half/word/double loads and stores, compare-and-branch control
 * flow, and one special opcode (MGHANDLE) that represents an entire
 * mini-graph in a rewritten binary.
 */

#ifndef MG_ISA_OPCODES_H
#define MG_ISA_OPCODES_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mg::isa
{

/** Functional-unit class an instruction executes on. */
enum class ExecClass : uint8_t
{
    Nop,        ///< consumes a slot but no FU (NOP, ELIDED)
    IntAlu,     ///< simple 1-cycle integer ALU op
    IntComplex, ///< multi-cycle integer op (mul/div/rem)
    MemRead,    ///< load
    MemWrite,   ///< store
    Control,    ///< branch or jump
    MgHandle,   ///< mini-graph handle (executes on an ALU pipeline)
};

/** Every MG-RISC opcode. */
enum class Opcode : uint8_t
{
    // ALU register-register (simple)
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // ALU register-immediate (simple)
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
    // Constant / move
    LI,                       ///< rd <- imm (64-bit immediate)
    // Complex integer
    MUL, MULI, DIV, REM,
    // Loads: rd <- mem[rs1 + imm]
    LB, LBU, LH, LHU, LW, LWU, LD,
    // Stores: mem[rs1 + imm] <- rs2
    SB, SH, SW, SD,
    // Conditional branches: if (rs1 op rs2) pc <- imm
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Unconditional control
    J,                        ///< pc <- imm
    JAL,                      ///< rd <- pc+1; pc <- imm
    JR,                       ///< pc <- rs1
    JALR,                     ///< rd <- pc+1; pc <- rs1
    // Misc
    NOP,
    HALT,                     ///< terminate the program
    // Mini-graph support (appear only in rewritten binaries)
    MGHANDLE,                 ///< aggregate handle; mgIndex names template
    ELIDED,                   ///< hole left by outlining; never fetched

    NumOpcodes
};

/** Count of real opcodes. */
constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

/** Instruction operand format. */
enum class Format : uint8_t
{
    RRR,     ///< op rd, rs1, rs2
    RRI,     ///< op rd, rs1, imm
    RI,      ///< op rd, imm
    Load,    ///< op rd, imm(rs1)
    Store,   ///< op rs2, imm(rs1)
    Branch,  ///< op rs1, rs2, target
    JTarget, ///< op target
    JLink,   ///< op rd, target
    JReg,    ///< op rs1
    JLinkReg,///< op rd, rs1
    None,    ///< op
    Handle,  ///< mini-graph handle (internal)
};

/** Static metadata for one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    ExecClass execClass;
    uint8_t latency;      ///< execution latency in cycles
    bool readsRs1;
    bool readsRs2;
    bool writesRd;
};

namespace detail
{

/**
 * The opcode metadata table.  Lives in the header so the predicates
 * below fold to a table load (or a range check) at every call site:
 * the simulator consults them for every instruction in every cycle,
 * which makes an out-of-line call per query a measurable cost.
 */
constexpr OpInfo kOpTable[kNumOpcodes] = {
    // mnemonic  format          execClass              lat  rs1    rs2    rd
    {"add",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sub",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"and",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"or",    Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"xor",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sll",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"srl",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sra",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"slt",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sltu",  Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"addi",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"andi",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"ori",   Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"xori",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"slli",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"srli",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"srai",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"slti",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"sltiu", Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"li",    Format::RI,     ExecClass::IntAlu,      1, false, false, true},
    {"mul",   Format::RRR,    ExecClass::IntComplex,  4, true,  true,  true},
    {"muli",  Format::RRI,    ExecClass::IntComplex,  4, true,  false, true},
    {"div",   Format::RRR,    ExecClass::IntComplex, 12, true,  true,  true},
    {"rem",   Format::RRR,    ExecClass::IntComplex, 12, true,  true,  true},
    {"lb",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lbu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lh",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lhu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lw",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lwu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"ld",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"sb",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sh",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sw",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sd",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"beq",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bne",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"blt",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bge",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bltu",  Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bgeu",  Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"j",     Format::JTarget,ExecClass::Control,     1, false, false, false},
    {"jal",   Format::JLink,  ExecClass::Control,     1, false, false, true},
    {"jr",    Format::JReg,   ExecClass::Control,     1, true,  false, false},
    {"jalr",  Format::JLinkReg,ExecClass::Control,    1, true,  false, true},
    {"nop",   Format::None,   ExecClass::Nop,         1, false, false, false},
    {"halt",  Format::None,   ExecClass::Nop,         1, false, false, false},
    {"mghandle", Format::Handle, ExecClass::MgHandle, 1, false, false, false},
    {"elided",   Format::None,   ExecClass::Nop,      1, false, false, false},
};

} // namespace detail

/** Look up the metadata for an opcode. */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::kOpTable[static_cast<size_t>(op)];
}

/** Mnemonic string for an opcode. */
std::string_view mnemonic(Opcode op);

/** Parse a mnemonic (lower case) into an opcode. */
std::optional<Opcode> parseMnemonic(std::string_view s);

/** True for conditional branches (BEQ..BGEU). */
inline bool
isCondBranch(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BGEU;
}

/** True for any control transfer (branches, jumps). */
inline bool
isControl(Opcode op)
{
    return opInfo(op).execClass == ExecClass::Control;
}

/** True for loads. */
inline bool
isLoad(Opcode op)
{
    return opInfo(op).execClass == ExecClass::MemRead;
}

/** True for stores. */
inline bool
isStore(Opcode op)
{
    return opInfo(op).execClass == ExecClass::MemWrite;
}

/** True for any memory op. */
inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }

} // namespace mg::isa

#endif // MG_ISA_OPCODES_H
