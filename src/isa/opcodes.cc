#include "isa/opcodes.h"

#include <unordered_map>

namespace mg::isa
{

namespace
{

const std::unordered_map<std::string_view, Opcode> &
mnemonicMap()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Opcode>();
        for (size_t i = 0; i < kNumOpcodes; ++i)
            m->emplace(detail::kOpTable[i].mnemonic,
                       static_cast<Opcode>(i));
        return m;
    }();
    return *map;
}

} // namespace

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

std::optional<Opcode>
parseMnemonic(std::string_view s)
{
    auto it = mnemonicMap().find(s);
    if (it == mnemonicMap().end())
        return std::nullopt;
    return it->second;
}

} // namespace mg::isa
