#include "isa/opcodes.h"

#include <array>
#include <unordered_map>

#include "common/logging.h"

namespace mg::isa
{

namespace
{

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    // mnemonic  format          execClass              lat  rs1    rs2    rd
    {"add",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sub",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"and",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"or",    Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"xor",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sll",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"srl",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sra",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"slt",   Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"sltu",  Format::RRR,    ExecClass::IntAlu,      1, true,  true,  true},
    {"addi",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"andi",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"ori",   Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"xori",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"slli",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"srli",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"srai",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"slti",  Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"sltiu", Format::RRI,    ExecClass::IntAlu,      1, true,  false, true},
    {"li",    Format::RI,     ExecClass::IntAlu,      1, false, false, true},
    {"mul",   Format::RRR,    ExecClass::IntComplex,  4, true,  true,  true},
    {"muli",  Format::RRI,    ExecClass::IntComplex,  4, true,  false, true},
    {"div",   Format::RRR,    ExecClass::IntComplex, 12, true,  true,  true},
    {"rem",   Format::RRR,    ExecClass::IntComplex, 12, true,  true,  true},
    {"lb",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lbu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lh",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lhu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lw",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"lwu",   Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"ld",    Format::Load,   ExecClass::MemRead,     3, true,  false, true},
    {"sb",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sh",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sw",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"sd",    Format::Store,  ExecClass::MemWrite,    1, true,  true,  false},
    {"beq",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bne",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"blt",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bge",   Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bltu",  Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"bgeu",  Format::Branch, ExecClass::Control,     1, true,  true,  false},
    {"j",     Format::JTarget,ExecClass::Control,     1, false, false, false},
    {"jal",   Format::JLink,  ExecClass::Control,     1, false, false, true},
    {"jr",    Format::JReg,   ExecClass::Control,     1, true,  false, false},
    {"jalr",  Format::JLinkReg,ExecClass::Control,    1, true,  false, true},
    {"nop",   Format::None,   ExecClass::Nop,         1, false, false, false},
    {"halt",  Format::None,   ExecClass::Nop,         1, false, false, false},
    {"mghandle", Format::Handle, ExecClass::MgHandle, 1, false, false, false},
    {"elided",   Format::None,   ExecClass::Nop,      1, false, false, false},
}};

const std::unordered_map<std::string_view, Opcode> &
mnemonicMap()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Opcode>();
        for (size_t i = 0; i < kNumOpcodes; ++i)
            m->emplace(kOpTable[i].mnemonic, static_cast<Opcode>(i));
        return m;
    }();
    return *map;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    mg_assert(static_cast<size_t>(op) < kNumOpcodes, "bad opcode %d",
              static_cast<int>(op));
    return kOpTable[static_cast<size_t>(op)];
}

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

std::optional<Opcode>
parseMnemonic(std::string_view s)
{
    auto it = mnemonicMap().find(s);
    if (it == mnemonicMap().end())
        return std::nullopt;
    return it->second;
}

bool
isCondBranch(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BGEU;
}

bool
isControl(Opcode op)
{
    return opInfo(op).execClass == ExecClass::Control;
}

bool
isLoad(Opcode op)
{
    return opInfo(op).execClass == ExecClass::MemRead;
}

bool
isStore(Opcode op)
{
    return opInfo(op).execClass == ExecClass::MemWrite;
}

} // namespace mg::isa
