/**
 * @file
 * Architecturally visible mini-graph structures.
 *
 * A rewritten ("outlined") binary contains MGHANDLE instructions that
 * name entries in a template table (the software image of the MGT).
 * These types describe templates — constituent operations and their
 * dataflow — and per-static-handle instance metadata.  They live in
 * the isa layer because both the functional/timing cores and the
 * mini-graph selection tooling need them.
 */

#ifndef MG_ISA_MINIGRAPH_TYPES_H
#define MG_ISA_MINIGRAPH_TYPES_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/instruction.h"

namespace mg::isa
{

/** Maximum instructions per mini-graph (Table 1). */
constexpr unsigned kMaxMgSize = 4;

/** Maximum external register inputs per mini-graph (§2). */
constexpr unsigned kMaxMgInputs = 3;

/** Where a constituent source operand comes from. */
enum class MgSrcKind : uint8_t
{
    None,     ///< operand unused (or r0)
    External, ///< one of the handle's external inputs (index 0..2)
    Internal, ///< the result of an earlier constituent (index)
};

/** One instruction inside a mini-graph template. */
struct MgConstituent
{
    Opcode op = Opcode::NOP;
    MgSrcKind src1Kind = MgSrcKind::None;
    MgSrcKind src2Kind = MgSrcKind::None;
    uint8_t src1 = 0;      ///< external-input slot or constituent index
    uint8_t src2 = 0;
    int64_t imm = 0;       ///< immediate / branch target
    bool producesOutput = false; ///< writes the mini-graph register output

    bool operator==(const MgConstituent &o) const = default;
};

/**
 * A mini-graph template: the MGT's description of constituent
 * operations and their dataflow.  Templates from different static
 * locations that match exactly share one MGT entry.
 */
struct MgTemplate
{
    std::vector<MgConstituent> ops;
    uint8_t numInputs = 0;   ///< number of external register inputs
    bool hasOutput = false;  ///< has a register output
    bool hasMem = false;     ///< contains a load or store
    bool hasControl = false; ///< ends with a control transfer
    bool condControl = false;///< ... which is a conditional branch
    /** Constituent index that produces the register output (or -1). */
    int outputIdx = -1;

    bool operator==(const MgTemplate &o) const
    {
        return ops == o.ops;
    }

    unsigned size() const { return static_cast<unsigned>(ops.size()); }

    /**
     * Sum of constituent execution latencies assuming cache hits —
     * the mini-graph's serial execution latency (§4.2: "the maximum
     * execution latency of any mini-graph is 6 cycles" there; ours is
     * bounded by the selector's latency cap).
     */
    unsigned totalLatency() const;

    /**
     * Dataflow critical-path latency through the template: the longest
     * chain of Internal-source dependencies, by constituent execution
     * latency.  Constituents whose operands are all external could
     * execute in parallel on a non-aggregated machine; the difference
     * `totalLatency() - criticalLatency()` is therefore the template's
     * structural *internal serialization* penalty (§4.2).
     */
    unsigned criticalLatency() const;

    /** Serial (constituent-by-constituent) latency up to and including
     *  the output producer; totalLatency() if there is no output. */
    unsigned serialLatencyToOutput() const;

    /** Dataflow critical-path latency up to and including the output
     *  producer; criticalLatency() if there is no output. */
    unsigned criticalLatencyToOutput() const;

    /**
     * Extra cycles the aggregate's consumers wait because constituents
     * execute in series instead of dataflow order:
     * serialLatencyToOutput() - criticalLatencyToOutput().
     */
    unsigned internalChainPenalty() const;

    /**
     * True if external-input slot `slot` feeds any constituent other
     * than the first — i.e. is a potentially *serializing* input.
     */
    bool inputIsSerializing(uint8_t slot) const;

    /** True if any input is serializing. */
    bool hasSerializingInput() const;

    /** Structural hash for template sharing. */
    size_t hash() const;
};

/** Per-static-location handle metadata in a rewritten binary. */
struct MgInstance
{
    Addr handlePc = kNoAddr;   ///< PC of the MGHANDLE
    uint16_t templateIdx = 0;  ///< index into MgBinaryInfo::templates
    Addr outlinedPc = kNoAddr; ///< start of the outlined singleton body
    Addr pcAfter = kNoAddr;    ///< fall-through PC after the mini-graph
    /** PCs of the original constituent singletons (profiling/debug). */
    std::vector<Addr> constituentPcs;
};

/** Mini-graph side table carried with a rewritten Program. */
struct MgBinaryInfo
{
    std::vector<MgTemplate> templates;
    std::unordered_map<Addr, MgInstance> instances; ///< by handle PC

    /** PCs inside outlined singleton bodies (constituent copies). */
    std::unordered_set<Addr> outlinedBodyPcs;

    /** PCs of the jump-back instructions terminating outlined bodies. */
    std::unordered_set<Addr> outliningJumpPcs;

    const MgInstance *
    instanceAt(Addr pc) const
    {
        auto it = instances.find(pc);
        return it == instances.end() ? nullptr : &it->second;
    }
};

} // namespace mg::isa

#endif // MG_ISA_MINIGRAPH_TYPES_H
