/**
 * @file
 * The MG-RISC Instruction record and operand accessors.
 *
 * Instructions are held decoded; a "PC" is an index into the program's
 * instruction vector.  Control-flow targets are absolute PCs resolved
 * at assembly time.
 */

#ifndef MG_ISA_INSTRUCTION_H
#define MG_ISA_INSTRUCTION_H

#include <array>
#include <cstdint>
#include <string>

#include "isa/opcodes.h"

namespace mg::isa
{

/** Instruction address: index into the code vector. */
using Addr = uint32_t;

/** An invalid / "no pc" sentinel. */
constexpr Addr kNoAddr = 0xffffffffu;

/** Number of architectural integer registers. */
constexpr unsigned kNumArchRegs = 32;

/** r0 is hard-wired to zero. */
constexpr uint8_t kZeroReg = 0;

/** Stack-pointer convention (initialised by the loader). */
constexpr uint8_t kStackReg = 30;

/** Link-register convention used by jal. */
constexpr uint8_t kLinkReg = 31;

/**
 * A decoded MG-RISC instruction.
 *
 * The same record represents singleton instructions and, in rewritten
 * binaries, mini-graph handles (op == MGHANDLE, with up to three source
 * registers, one destination register, and mgIndex naming the template).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    uint8_t rd = 0;    ///< destination register
    uint8_t rs1 = 0;   ///< first source register
    uint8_t rs2 = 0;   ///< second source register
    uint8_t rs3 = 0;   ///< third source (MGHANDLE only)
    uint8_t numSrcs = 0;  ///< valid sources for MGHANDLE (0-3)
    bool hasDest = false; ///< MGHANDLE: does the aggregate write rd?
    int64_t imm = 0;   ///< immediate / branch target / data address
    uint16_t mgIndex = 0; ///< MGHANDLE: template index into the MGT

    /** Up to three source architectural registers, r0s excluded. */
    struct SrcList
    {
        std::array<uint8_t, 3> regs;
        uint8_t count = 0;
    };

    /**
     * Collect this instruction's source registers (skipping r0).
     * Inline: rename and wakeup consult this for every in-flight
     * instruction every cycle.
     */
    SrcList
    srcRegs() const
    {
        SrcList out;
        auto push = [&out](uint8_t r) {
            if (r != kZeroReg)
                out.regs[out.count++] = r;
        };
        if (op == Opcode::MGHANDLE) {
            if (numSrcs >= 1)
                push(rs1);
            if (numSrcs >= 2)
                push(rs2);
            if (numSrcs >= 3)
                push(rs3);
            return out;
        }
        const OpInfo &info = opInfo(op);
        if (info.readsRs1)
            push(rs1);
        if (info.readsRs2)
            push(rs2);
        return out;
    }

    /** Destination register, or -1 if none (or r0). */
    int
    destReg() const
    {
        if (op == Opcode::MGHANDLE)
            return (hasDest && rd != kZeroReg) ? rd : -1;
        const OpInfo &info = opInfo(op);
        if (!info.writesRd || rd == kZeroReg)
            return -1;
        return rd;
    }

    /** Execution class (looked up from the opcode table). */
    ExecClass execClass() const { return opInfo(op).execClass; }

    /** Execution latency in cycles for singletons. */
    unsigned latency() const { return opInfo(op).latency; }

    bool isLoad() const { return isa::isLoad(op); }
    bool isStore() const { return isa::isStore(op); }
    bool isMem() const { return isa::isMem(op); }
    bool isControl() const { return isa::isControl(op); }
    bool isCondBranch() const { return isa::isCondBranch(op); }
    bool isHandle() const { return op == Opcode::MGHANDLE; }
    bool isElided() const { return op == Opcode::ELIDED; }
    bool isHalt() const { return op == Opcode::HALT; }

    /** True for control transfers with a statically known target. */
    bool
    isDirectControl() const
    {
        return op == Opcode::J || op == Opcode::JAL || isCondBranch();
    }

    /** True for register-indirect control transfers. */
    bool isIndirectControl() const
    {
        return op == Opcode::JR || op == Opcode::JALR;
    }
};

/** Render an instruction as assembly text (for debugging and tests). */
std::string disassemble(const Instruction &inst);

// --- Convenience constructors used by tests and code generators ------

/** op rd, rs1, rs2 */
Instruction makeRRR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2);

/** op rd, rs1, imm */
Instruction makeRRI(Opcode op, uint8_t rd, uint8_t rs1, int64_t imm);

/** li rd, imm */
Instruction makeLi(uint8_t rd, int64_t imm);

/** load: op rd, imm(rs1) */
Instruction makeLoad(Opcode op, uint8_t rd, uint8_t rs1, int64_t imm);

/** store: op rs2, imm(rs1) */
Instruction makeStore(Opcode op, uint8_t rs2, uint8_t rs1, int64_t imm);

/** branch: op rs1, rs2, target */
Instruction makeBranch(Opcode op, uint8_t rs1, uint8_t rs2, Addr target);

/** j target */
Instruction makeJump(Addr target);

/** halt */
Instruction makeHalt();

/** nop */
Instruction makeNop();

} // namespace mg::isa

#endif // MG_ISA_INSTRUCTION_H
