#include "isa/instruction.h"

#include "common/logging.h"

namespace mg::isa
{

std::string
disassemble(const Instruction &inst)
{
    const OpInfo &info = opInfo(inst.op);
    std::string m(info.mnemonic);
    switch (info.format) {
      case Format::RRR:
        return strprintf("%s r%d, r%d, r%d", m.c_str(), inst.rd, inst.rs1,
                         inst.rs2);
      case Format::RRI:
        return strprintf("%s r%d, r%d, %lld", m.c_str(), inst.rd, inst.rs1,
                         static_cast<long long>(inst.imm));
      case Format::RI:
        return strprintf("%s r%d, %lld", m.c_str(), inst.rd,
                         static_cast<long long>(inst.imm));
      case Format::Load:
        return strprintf("%s r%d, %lld(r%d)", m.c_str(), inst.rd,
                         static_cast<long long>(inst.imm), inst.rs1);
      case Format::Store:
        return strprintf("%s r%d, %lld(r%d)", m.c_str(), inst.rs2,
                         static_cast<long long>(inst.imm), inst.rs1);
      case Format::Branch:
        return strprintf("%s r%d, r%d, %lld", m.c_str(), inst.rs1, inst.rs2,
                         static_cast<long long>(inst.imm));
      case Format::JTarget:
        return strprintf("%s %lld", m.c_str(),
                         static_cast<long long>(inst.imm));
      case Format::JLink:
        return strprintf("%s r%d, %lld", m.c_str(), inst.rd,
                         static_cast<long long>(inst.imm));
      case Format::JReg:
        return strprintf("%s r%d", m.c_str(), inst.rs1);
      case Format::JLinkReg:
        return strprintf("%s r%d, r%d", m.c_str(), inst.rd, inst.rs1);
      case Format::Handle:
        return strprintf("%s #%u rd=r%d srcs=[r%d,r%d,r%d](%d)", m.c_str(),
                         inst.mgIndex, inst.hasDest ? inst.rd : -1, inst.rs1,
                         inst.rs2, inst.rs3, inst.numSrcs);
      case Format::None:
      default:
        return m;
    }
}

Instruction
makeRRR(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2)
{
    mg_assert(opInfo(op).format == Format::RRR, "makeRRR: bad opcode %s",
              opInfo(op).mnemonic);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Instruction
makeRRI(Opcode op, uint8_t rd, uint8_t rs1, int64_t imm)
{
    mg_assert(opInfo(op).format == Format::RRI, "makeRRI: bad opcode %s",
              opInfo(op).mnemonic);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

Instruction
makeLi(uint8_t rd, int64_t imm)
{
    Instruction i;
    i.op = Opcode::LI;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Instruction
makeLoad(Opcode op, uint8_t rd, uint8_t rs1, int64_t imm)
{
    mg_assert(isLoad(op), "makeLoad: bad opcode %s", opInfo(op).mnemonic);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

Instruction
makeStore(Opcode op, uint8_t rs2, uint8_t rs1, int64_t imm)
{
    mg_assert(isStore(op), "makeStore: bad opcode %s", opInfo(op).mnemonic);
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.imm = imm;
    return i;
}

Instruction
makeBranch(Opcode op, uint8_t rs1, uint8_t rs2, Addr target)
{
    mg_assert(isCondBranch(op), "makeBranch: bad opcode %s",
              opInfo(op).mnemonic);
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.imm = static_cast<int64_t>(target);
    return i;
}

Instruction
makeJump(Addr target)
{
    Instruction i;
    i.op = Opcode::J;
    i.imm = static_cast<int64_t>(target);
    return i;
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Opcode::HALT;
    return i;
}

Instruction
makeNop()
{
    return Instruction{};
}

} // namespace mg::isa
