#include "frontend/cgen.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace mg::frontend {
namespace {

constexpr int kArrayLen = 16;  // every index is masked `& 15`

struct Ctx {
    Rng rng;
    std::ostringstream os;
    int indent = 1;

    // Readable scalar names (globals + locals + live loop counters);
    // writable is a prefix-set: counters are readable but reserved.
    std::vector<std::string> readable;
    std::vector<std::string> writable;
    std::vector<std::string> arrays;     // always A (int), B (unsigned)
    std::vector<std::string> helpers;    // callable function names
    std::vector<int> helperArity;
    int nextCounter = 0;

    explicit Ctx(uint64_t seed) : rng(seed ? seed : 1) {}

    void line(const std::string &text) {
        for (int i = 0; i < indent; ++i) os << "    ";
        os << text << "\n";
    }

    const std::string &pick(const std::vector<std::string> &v) {
        return v[rng.below(v.size())];
    }
};

std::string literal(Ctx &c) {
    switch (c.rng.below(6)) {
    case 0:
        return std::to_string(c.rng.range(0, 9));
    case 1:
        return std::to_string(c.rng.range(-100, 100));
    case 2:
        return std::to_string(c.rng.range(0, 65535)) + "u";
    case 3: {
        // Large 64-bit constant in hex (exercises li + the lexer's
        // implicit-unsigned promotion).
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(c.rng.next()));
        return buf;
    }
    case 4:
        return std::to_string(1ll << c.rng.below(32));
    default:
        return std::to_string(c.rng.range(-7, 7));
    }
}

std::string expr(Ctx &c, int depth);

std::string leaf(Ctx &c, int depth) {
    unsigned roll = static_cast<unsigned>(c.rng.below(10));
    if (roll < 4) return literal(c);
    if (roll < 8 && !c.readable.empty()) return c.pick(c.readable);
    if (depth > 0 && !c.arrays.empty())
        return c.pick(c.arrays) + "[(" + expr(c, depth - 1) + ") & 15]";
    return literal(c);
}

std::string expr(Ctx &c, int depth) {
    if (depth <= 0 || c.rng.chance(0.25)) return leaf(c, depth);
    switch (c.rng.below(12)) {
    case 0:
        return "(" + expr(c, depth - 1) + " + " + expr(c, depth - 1) + ")";
    case 1:
        return "(" + expr(c, depth - 1) + " - " + expr(c, depth - 1) + ")";
    case 2:
        return "(" + expr(c, depth - 1) + " * " + expr(c, depth - 1) + ")";
    case 3:
        return "(" + expr(c, depth - 1) + " & " + expr(c, depth - 1) + ")";
    case 4:
        return "(" + expr(c, depth - 1) + " | " + expr(c, depth - 1) + ")";
    case 5:
        return "(" + expr(c, depth - 1) + " ^ " + expr(c, depth - 1) + ")";
    case 6:
        return "(" + expr(c, depth - 1) + " << (" + expr(c, depth - 1) +
               " & 15))";
    case 7:
        return "(" + expr(c, depth - 1) + " >> (" + expr(c, depth - 1) +
               " & 15))";
    case 8:
        // Guarded division: an odd divisor is never zero, and the
        // INT64_MIN/-1 edge case is defined identically on both sides
        // of the differential gate.
        return "(" + expr(c, depth - 1) + (c.rng.chance(0.5) ? " / (" : " % (") +
               expr(c, depth - 1) + " | 1))";
    case 9: {
        static const char *kRel[] = {"<", ">", "<=", ">=", "==", "!="};
        return "(" + expr(c, depth - 1) + " " + kRel[c.rng.below(6)] +
               " " + expr(c, depth - 1) + ")";
    }
    case 10: {
        static const char *kUn[] = {"-", "~", "!"};
        return std::string(kUn[c.rng.below(3)]) + "(" +
               expr(c, depth - 1) + ")";
    }
    default:
        if (!c.helpers.empty() && c.rng.chance(0.5)) {
            size_t h = c.rng.below(c.helpers.size());
            std::string call = c.helpers[h] + "(";
            for (int i = 0; i < c.helperArity[h]; ++i) {
                if (i) call += ", ";
                call += expr(c, depth - 1);
            }
            return call + ")";
        }
        return "(" + expr(c, depth - 1) + " ? " + expr(c, depth - 1) +
               " : " + expr(c, depth - 1) + ")";
    }
}

std::string cond(Ctx &c) {
    static const char *kRel[] = {"<", ">", "<=", ">=", "==", "!="};
    std::string base = expr(c, 2) + " " + kRel[c.rng.below(6)] + " " +
                       expr(c, 2);
    if (c.rng.chance(0.2))
        return "(" + base + ") " + (c.rng.chance(0.5) ? "&&" : "||") +
               " (" + expr(c, 2) + " " + kRel[c.rng.below(6)] + " " +
               expr(c, 2) + ")";
    return base;
}

void statements(Ctx &c, int count, int depth);

void statement(Ctx &c, int depth) {
    static const char *kCompound[] = {"+=", "-=", "*=", "&=", "|=",
                                      "^=", "<<=", ">>="};
    unsigned roll = static_cast<unsigned>(c.rng.below(10));
    if (roll < 3) {  // scalar assignment
        c.line(c.pick(c.writable) + " = " + expr(c, 3) + ";");
        return;
    }
    if (roll < 5) {  // scalar compound assignment
        c.line(c.pick(c.writable) + " " +
               kCompound[c.rng.below(8)] + " " + expr(c, 3) + ";");
        return;
    }
    if (roll < 7) {  // array store (plain or compound)
        std::string target = c.pick(c.arrays) + "[(" + expr(c, 2) +
                             ") & 15]";
        if (c.rng.chance(0.3)) {
            c.line(target + " " + kCompound[c.rng.below(8)] + " " +
                   expr(c, 2) + ";");
        } else {
            c.line(target + " = " + expr(c, 3) + ";");
        }
        return;
    }
    if (roll < 8 && !c.helpers.empty()) {  // call into a helper
        size_t h = c.rng.below(c.helpers.size());
        std::string call = c.helpers[h] + "(";
        for (int i = 0; i < c.helperArity[h]; ++i) {
            if (i) call += ", ";
            call += expr(c, 2);
        }
        c.line(c.pick(c.writable) + " = " + call + ");");
        return;
    }
    if (roll < 9 && depth > 0) {  // if / if-else
        c.line("if (" + cond(c) + ") {");
        ++c.indent;
        statements(c, 1 + static_cast<int>(c.rng.below(3)), depth - 1);
        --c.indent;
        if (c.rng.chance(0.4)) {
            c.line("} else {");
            ++c.indent;
            statements(c, 1 + static_cast<int>(c.rng.below(2)),
                       depth - 1);
            --c.indent;
        }
        c.line("}");
        return;
    }
    if (depth > 0 && c.nextCounter < 3) {  // bounded for loop
        std::string i = "i" + std::to_string(c.nextCounter++);
        int64_t trips = c.rng.range(1, 8);
        c.line("for (" + i + " = 0; " + i + " < " +
               std::to_string(trips) + "; " + i + " = " + i + " + 1) {");
        c.readable.push_back(i);
        ++c.indent;
        statements(c, 1 + static_cast<int>(c.rng.below(3)), depth - 1);
        --c.indent;
        c.readable.pop_back();
        --c.nextCounter;
        c.line("}");
        return;
    }
    c.line(c.pick(c.writable) + " ^= " + expr(c, 2) + ";");
}

void statements(Ctx &c, int count, int depth) {
    for (int i = 0; i < count; ++i) statement(c, depth);
}

}  // namespace

std::string cFuzzProgramName(uint64_t seed) {
    return "cfuzz-" + std::to_string(seed);
}

std::string generateCSource(const CGenOptions &opts) {
    Ctx c(opts.seed);
    c.os << "// " << cFuzzProgramName(opts.seed)
         << " -- generated by `mgsim fuzz --frontend` (docs/FRONTEND.md)\n";

    // Globals: mixed-signedness scalars plus two 16-element arrays.
    int numGlobals = 4 + static_cast<int>(c.rng.below(3));
    for (int i = 0; i < numGlobals; ++i) {
        std::string name = "g" + std::to_string(i);
        bool uns = c.rng.chance(0.4);
        c.os << (uns ? "unsigned " : "int ") << name << " = "
             << literal(c) << ";\n";
        c.readable.push_back(name);
        c.writable.push_back(name);
    }
    c.os << "int A[" << kArrayLen << "] = {";
    for (int i = 0; i < kArrayLen; ++i) {
        if (i) c.os << ", ";
        c.os << c.rng.range(-1000, 1000);
    }
    c.os << "};\n";
    c.os << "unsigned B[" << kArrayLen << "];\n";
    c.arrays.push_back("A");
    c.arrays.push_back("B");

    // 0-2 straight-line helper functions (no loops, no further calls:
    // termination by construction).
    int numHelpers = static_cast<int>(c.rng.below(3));
    for (int h = 0; h < numHelpers; ++h) {
        std::string name = "h" + std::to_string(h);
        int arity = 1 + static_cast<int>(c.rng.below(2));
        c.os << "\nint " << name << "(";
        std::vector<std::string> params;
        for (int p = 0; p < arity; ++p) {
            if (p) c.os << ", ";
            std::string pn = "p" + std::to_string(p);
            c.os << (c.rng.chance(0.3) ? "unsigned " : "int ") << pn;
            params.push_back(pn);
        }
        c.os << ") {\n";
        size_t baseReadable = c.readable.size();
        size_t baseWritable = c.writable.size();
        for (const std::string &p : params) {
            c.readable.push_back(p);
            c.writable.push_back(p);
        }
        c.line("int t0 = " + expr(c, 2) + ";");
        c.readable.push_back("t0");
        c.writable.push_back("t0");
        int body = 1 + static_cast<int>(c.rng.below(4));
        for (int s = 0; s < body; ++s)
            c.line(c.pick(c.writable) + " = " + expr(c, 3) + ";");
        c.line("return " + expr(c, 3) + ";");
        c.os << "}\n";
        c.readable.resize(baseReadable);
        c.writable.resize(baseWritable);
        c.helpers.push_back(name);
        c.helperArity.push_back(arity);
    }

    // main: local scalars, reserved loop counters, then the body.
    c.os << "\nint main() {\n";
    int numLocals = 2 + static_cast<int>(c.rng.below(3));
    for (int i = 0; i < numLocals; ++i) {
        std::string name = "x" + std::to_string(i);
        c.line((c.rng.chance(0.3) ? std::string("unsigned ")
                                  : std::string("int ")) +
               name + " = " + literal(c) + ";");
        c.readable.push_back(name);
        c.writable.push_back(name);
    }
    c.line("int i0 = 0;");
    c.line("int i1 = 0;");
    c.line("int i2 = 0;");
    statements(c, 6 + static_cast<int>(c.rng.below(10)), 2);
    // Fold the locals into observable state: the differential gate
    // compares final globals only.
    for (int i = 0; i < numLocals; ++i)
        c.line("g0 ^= x" + std::to_string(i) + ";");
    c.line("g1 ^= i0 + i1 + i2;");
    c.line("return 0;");
    c.os << "}\n";
    return c.os.str();
}

}  // namespace mg::frontend
