#include "frontend/interp.h"

#include <limits>
#include <utility>

#include "common/logging.h"

namespace mg::frontend {

std::string initialGlobalImage(
    const CProgram &program,
    const std::map<std::string, uint64_t> &overrides,
    std::vector<std::vector<uint64_t>> &out) {
    for (const auto &[name, value] : overrides) {
        (void)value;
        const GlobalDecl *g = program.findGlobal(name);
        if (g == nullptr)
            return strprintf("override of unknown global '%s'",
                             name.c_str());
        if (g->arraySize != 0)
            return strprintf("override of array global '%s' "
                             "(only scalars can be overridden)",
                             name.c_str());
    }
    out.clear();
    out.reserve(program.globals.size());
    for (const GlobalDecl &g : program.globals) {
        std::vector<uint64_t> image(g.arraySize == 0 ? 1 : g.arraySize, 0);
        for (size_t i = 0; i < g.init.size(); ++i) image[i] = g.init[i];
        auto ov = overrides.find(g.name);
        if (ov != overrides.end()) image[0] = ov->second;
        out.push_back(std::move(image));
    }
    return "";
}

uint64_t evalCBinary(const std::string &op, bool uns, uint64_t a,
                     uint64_t b) {
    auto asS = [](uint64_t v) { return static_cast<int64_t>(v); };
    const int64_t kMin = std::numeric_limits<int64_t>::min();
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "&") return a & b;
    if (op == "|") return a | b;
    if (op == "^") return a ^ b;
    if (op == "<<") return a << (b & 63);
    if (op == ">>") {
        uint64_t sh = b & 63;
        return uns ? a >> sh
                   : static_cast<uint64_t>(asS(a) >> sh);
    }
    if (op == "/") {
        // MG-RISC DIV (there is no DIVU): x/0 == -1, INT64_MIN/-1 == x.
        if (b == 0) return ~0ull;
        if (asS(a) == kMin && asS(b) == -1) return a;
        return static_cast<uint64_t>(asS(a) / asS(b));
    }
    if (op == "%") {
        if (b == 0) return a;
        if (asS(a) == kMin && asS(b) == -1) return 0;
        return static_cast<uint64_t>(asS(a) % asS(b));
    }
    if (op == "<") return uns ? (a < b) : (asS(a) < asS(b));
    if (op == ">") return uns ? (a > b) : (asS(a) > asS(b));
    if (op == "<=") return uns ? (a <= b) : (asS(a) <= asS(b));
    if (op == ">=") return uns ? (a >= b) : (asS(a) >= asS(b));
    if (op == "==") return a == b;
    if (op == "!=") return a != b;
    mg_panic("evalCBinary: unknown operator '%s'", op.c_str());
}

namespace {

struct InterpAbort {
    std::string msg;
};

class Interp {
  public:
    Interp(const CProgram &p, const InterpOptions &opts)
        : p_(p), maxSteps_(opts.maxSteps) {}

    InterpResult run(const InterpOptions &opts) {
        InterpResult out;
        std::string err =
            initialGlobalImage(p_, opts.globalOverrides, g_);
        if (!err.empty()) {
            out.error = std::move(err);
            return out;
        }
        try {
            callFn(*p_.findFunc("main"), {});
            out.ok = true;
        } catch (const InterpAbort &abort) {
            out.error = abort.msg;
        }
        out.steps = steps_;
        out.globals = std::move(g_);
        return out;
    }

  private:
    enum class Flow { Normal, Break, Continue, Return };

    struct Frame {
        std::vector<uint64_t> locals;
        uint64_t retValue = 0;
    };

    void tick() {
        if (++steps_ > maxSteps_)
            throw InterpAbort{"interpreter step budget exceeded "
                              "(likely non-terminating program)"};
    }
    [[noreturn]] void abort(const Expr &e, std::string msg) {
        throw InterpAbort{strprintf("%d:%d: %s", e.line, e.col,
                                    msg.c_str())};
    }

    uint64_t callFn(const FuncDecl &fn, std::vector<uint64_t> args) {
        if (++depth_ > kMaxDepth)
            throw InterpAbort{strprintf(
                "call depth exceeds %d (runaway recursion in '%s')",
                kMaxDepth, fn.name.c_str())};
        Frame frame;
        frame.locals.assign(static_cast<size_t>(fn.numLocals), 0);
        for (size_t i = 0; i < args.size(); ++i) frame.locals[i] = args[i];
        Flow flow = exec(fn.body, frame);
        (void)flow;  // falling off the end of a non-void fn returns 0
        --depth_;
        return frame.retValue;
    }

    Flow exec(const Stmt &s, Frame &f) {
        tick();
        switch (s.k) {
        case Stmt::K::Empty:
            return Flow::Normal;
        case Stmt::K::Expr:
            eval(*s.e, f);
            return Flow::Normal;
        case Stmt::K::Decl:
            for (const Stmt::DeclItem &d : s.decls) {
                f.locals[static_cast<size_t>(d.localId)] =
                    d.init ? eval(*d.init, f) : 0;
            }
            return Flow::Normal;
        case Stmt::K::Block:
            for (const Stmt &sub : s.body) {
                Flow flow = exec(sub, f);
                if (flow != Flow::Normal) return flow;
            }
            return Flow::Normal;
        case Stmt::K::If:
            if (eval(*s.e, f) != 0) return exec(*s.s1, f);
            if (s.s2) return exec(*s.s2, f);
            return Flow::Normal;
        case Stmt::K::While:
            while (eval(*s.e, f) != 0) {
                Flow flow = exec(*s.s1, f);
                if (flow == Flow::Break) break;
                if (flow == Flow::Return) return flow;
            }
            return Flow::Normal;
        case Stmt::K::DoWhile:
            do {
                Flow flow = exec(*s.s1, f);
                if (flow == Flow::Break) break;
                if (flow == Flow::Return) return flow;
            } while (eval(*s.e, f) != 0);
            return Flow::Normal;
        case Stmt::K::For: {
            if (s.forInit) {
                Flow flow = exec(*s.forInit, f);
                if (flow != Flow::Normal) return flow;
            }
            while (s.e == nullptr || eval(*s.e, f) != 0) {
                Flow flow = exec(*s.s1, f);
                if (flow == Flow::Break) break;
                if (flow == Flow::Return) return flow;
                if (s.forStep) eval(*s.forStep, f);
            }
            return Flow::Normal;
        }
        case Stmt::K::Return:
            if (s.e) f.retValue = eval(*s.e, f);
            return Flow::Return;
        case Stmt::K::Break:
            return Flow::Break;
        case Stmt::K::Continue:
            return Flow::Continue;
        }
        mg_panic("interp: unhandled statement kind");
    }

    uint64_t *arraySlot(const Expr &e, uint64_t idx) {
        int gi = p_.globalIdx.at(e.name);
        std::vector<uint64_t> &img = g_[static_cast<size_t>(gi)];
        if (idx >= img.size())
            abort(e, strprintf("index %llu out of bounds for '%s[%zu]'",
                               static_cast<unsigned long long>(idx),
                               e.name.c_str(), img.size()));
        return &img[idx];
    }

    uint64_t eval(const Expr &e, Frame &f) {
        tick();
        switch (e.k) {
        case Expr::K::Num:
            return e.value;
        case Expr::K::Var:
            if (e.localId >= 0)
                return f.locals[static_cast<size_t>(e.localId)];
            return g_[static_cast<size_t>(p_.globalIdx.at(e.name))][0];
        case Expr::K::Index:
            return *arraySlot(e, eval(*e.a, f));
        case Expr::K::Unary: {
            uint64_t v = eval(*e.a, f);
            if (e.op == "-") return 0 - v;
            if (e.op == "~") return ~v;
            if (e.op == "!") return v == 0 ? 1 : 0;
            return v;  // unary +
        }
        case Expr::K::Binary: {
            if (e.op == "&&") {
                if (eval(*e.a, f) == 0) return 0;
                return eval(*e.b, f) != 0 ? 1 : 0;
            }
            if (e.op == "||") {
                if (eval(*e.a, f) != 0) return 1;
                return eval(*e.b, f) != 0 ? 1 : 0;
            }
            uint64_t a = eval(*e.a, f);
            uint64_t b = eval(*e.b, f);
            // Shift signedness comes from the left operand alone; for
            // everything else the usual "unsigned wins" conversion.
            bool uns = (e.op == "<<" || e.op == ">>")
                           ? e.a->type == CType::Unsigned
                           : unsignedOperands(e);
            return evalCBinary(e.op, uns, a, b);
        }
        case Expr::K::Assign:
            return assign(e, f);
        case Expr::K::Cond:
            return eval(*e.a, f) != 0 ? eval(*e.b, f) : eval(*e.c, f);
        case Expr::K::Call: {
            const FuncDecl &fn = *p_.findFunc(e.name);
            std::vector<uint64_t> args;
            args.reserve(e.args.size());
            for (const auto &arg : e.args) args.push_back(eval(*arg, f));
            return callFn(fn, std::move(args));
        }
        }
        mg_panic("interp: unhandled expression kind");
    }

    // Evaluation order (matched by the codegen): array index first,
    // then the rhs, then (for compound ops) the load.
    uint64_t assign(const Expr &e, Frame &f) {
        const Expr &lhs = *e.a;
        uint64_t *slot = nullptr;
        if (lhs.k == Expr::K::Index) {
            slot = arraySlot(lhs, eval(*lhs.a, f));
        } else if (lhs.localId >= 0) {
            slot = &f.locals[static_cast<size_t>(lhs.localId)];
        } else {
            int gi = p_.globalIdx.at(lhs.name);
            slot = &g_[static_cast<size_t>(gi)][0];
        }
        uint64_t rhs = eval(*e.b, f);
        if (e.op.empty()) {
            *slot = rhs;
        } else {
            // Compound signedness comes from the already-typed operand
            // pair, same as the expanded `a = a op b` form.
            bool uns = lhs.type == CType::Unsigned ||
                       e.b->type == CType::Unsigned;
            if (e.op == "<<" || e.op == ">>") uns =
                lhs.type == CType::Unsigned;
            *slot = evalCBinary(e.op, uns, *slot, rhs);
        }
        return *slot;
    }

    static constexpr int kMaxDepth = 1024;

    const CProgram &p_;
    uint64_t maxSteps_;
    uint64_t steps_ = 0;
    int depth_ = 0;
    std::vector<std::vector<uint64_t>> g_;
};

}  // namespace

InterpResult interpret(const CProgram &program, const InterpOptions &opts) {
    return Interp(program, opts).run(opts);
}

}  // namespace mg::frontend
