#include "frontend/compile.h"

#include <utility>

#include "assembler/assembler.h"
#include "common/logging.h"
#include "frontend/codegen.h"
#include "frontend/interp.h"
#include "frontend/parser.h"

namespace mg::frontend {

CompileResult compile(const std::string &source,
                      const CompileOptions &opts) {
    CompileResult out;
    ParseResult parsed = parse(source, opts.name);
    if (!parsed.ok()) {
        out.diags = std::move(parsed.diags);
        if (out.diags.empty())
            out.diags.push_back(Diag{0, 0, "parse failed"});
        out.error = renderDiag(opts.name, out.diags.front());
        return out;
    }
    // Validate overrides up front so the caller gets a diagnostic, not
    // an mg_fatal out of codegen.
    std::vector<std::vector<uint64_t>> images;
    std::string err = initialGlobalImage(*parsed.program,
                                         opts.globalOverrides, images);
    if (!err.empty()) {
        out.diags.push_back(Diag{0, 0, err});
        out.error = opts.name + ": " + err;
        return out;
    }
    CodegenOptions cg;
    cg.globalOverrides = opts.globalOverrides;
    out.asmText = generateAsm(*parsed.program, cg);
    out.ast = std::shared_ptr<CProgram>(parsed.program.release());
    out.ok = true;
    return out;
}

assembler::Program assemble(const CompileResult &compiled,
                            const CompileOptions &opts) {
    if (!compiled.ok)
        mg_fatal("assemble() on a failed compile: %s",
                 compiled.error.c_str());
    assembler::AssembleOptions ao;
    ao.name = opts.name;
    ao.memSize = opts.memSize;
    if (opts.dataBase != 0) ao.dataBase = opts.dataBase;
    return assembler::assemble(compiled.asmText, ao);
}

}  // namespace mg::frontend
