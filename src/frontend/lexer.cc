#include "frontend/lexer.h"

#include <cctype>

#include "common/logging.h"

namespace mg::frontend {

std::string renderDiag(const std::string &name, const Diag &d) {
    return strprintf("%s:%d:%d: %s", name.c_str(), d.line, d.col,
                     d.msg.c_str());
}

namespace {

// Multi-character operators, longest first so maximal munch works.
const char *kOps[] = {
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "+",  "-",
    "*",   "/",   "%",  "&",  "|",  "^",  "~",  "!",  "<",  ">",
    "=",   "(",   ")",  "[",  "]",  "{",  "}",  ",",  ";",  "?",
    ":",
};

struct Keyword {
    const char *name;
    Token::Kind kind;
};
const Keyword kKeywords[] = {
    {"int", Token::Kind::KwInt},
    {"unsigned", Token::Kind::KwUnsigned},
    {"void", Token::Kind::KwVoid},
    {"if", Token::Kind::KwIf},
    {"else", Token::Kind::KwElse},
    {"while", Token::Kind::KwWhile},
    {"do", Token::Kind::KwDo},
    {"for", Token::Kind::KwFor},
    {"return", Token::Kind::KwReturn},
    {"break", Token::Kind::KwBreak},
    {"continue", Token::Kind::KwContinue},
};

class Lexer {
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    LexResult run() {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                col_ = 1;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
            } else if (c == '/' && peek(1) == '*') {
                blockComment();
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                number();
            } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_') {
                identifier();
            } else {
                op();
            }
        }
        Token end;
        end.kind = Token::Kind::End;
        end.line = line_;
        end.col = col_;
        out_.tokens.push_back(end);
        return std::move(out_);
    }

  private:
    char peek(size_t ahead) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    void advance() {
        ++pos_;
        ++col_;
    }
    void error(int line, int col, std::string msg) {
        out_.diags.push_back(Diag{line, col, std::move(msg)});
    }

    void blockComment() {
        int line = line_, col = col_;
        advance();
        advance();
        while (pos_ < src_.size()) {
            if (src_[pos_] == '*' && peek(1) == '/') {
                advance();
                advance();
                return;
            }
            if (src_[pos_] == '\n') {
                ++line_;
                col_ = 1;
                ++pos_;
            } else {
                advance();
            }
        }
        error(line, col, "unterminated block comment");
    }

    void number() {
        Token t;
        t.kind = Token::Kind::Number;
        t.line = line_;
        t.col = col_;
        uint64_t v = 0;
        bool overflow = false;
        if (src_[pos_] == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            size_t digits = 0;
            while (pos_ < src_.size() &&
                   std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
                char c = src_[pos_];
                uint64_t d = std::isdigit(static_cast<unsigned char>(c))
                                 ? static_cast<uint64_t>(c - '0')
                                 : static_cast<uint64_t>(
                                       std::tolower(c) - 'a' + 10);
                if (v > (~0ull - d) / 16) overflow = true;
                v = v * 16 + d;
                ++digits;
                advance();
            }
            if (digits == 0) error(t.line, t.col, "malformed hex literal");
        } else {
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
                uint64_t d = static_cast<uint64_t>(src_[pos_] - '0');
                if (v > (~0ull - d) / 10) overflow = true;
                v = v * 10 + d;
                advance();
            }
        }
        if (overflow) error(t.line, t.col, "integer literal overflows 64 bits");
        if (pos_ < src_.size() && (src_[pos_] == 'u' || src_[pos_] == 'U')) {
            t.isUnsigned = true;
            advance();
        }
        // A decimal literal that does not fit a signed 64-bit int is
        // unsigned even without the suffix (mirrors C's promotion).
        if (v > 0x7fffffffffffffffull) t.isUnsigned = true;
        if (pos_ < src_.size() &&
            (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
             src_[pos_] == '_')) {
            error(t.line, t.col, "malformed integer literal suffix");
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                advance();
        }
        t.value = v;
        out_.tokens.push_back(std::move(t));
    }

    void identifier() {
        Token t;
        t.line = line_;
        t.col = col_;
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_'))
            advance();
        t.text = src_.substr(start, pos_ - start);
        t.kind = Token::Kind::Ident;
        for (const Keyword &kw : kKeywords) {
            if (t.text == kw.name) {
                t.kind = kw.kind;
                break;
            }
        }
        out_.tokens.push_back(std::move(t));
    }

    void op() {
        for (const char *candidate : kOps) {
            size_t n = std::string::npos;
            for (n = 0; candidate[n] != '\0'; ++n) {
                if (peek(n) != candidate[n]) break;
            }
            if (candidate[n] != '\0') continue;
            Token t;
            t.kind = Token::Kind::Punct;
            t.text = candidate;
            t.line = line_;
            t.col = col_;
            for (size_t i = 0; i < n; ++i) advance();
            out_.tokens.push_back(std::move(t));
            return;
        }
        error(line_, col_,
              strprintf("unexpected character '%c'", src_[pos_]));
        advance();
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    LexResult out_;
};

}  // namespace

LexResult lex(const std::string &source) { return Lexer(source).run(); }

}  // namespace mg::frontend
