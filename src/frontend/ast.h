// Typed AST for the MG-RISC C subset (docs/FRONTEND.md).
//
// The parser produces this tree fully type-annotated; the codegen
// (frontend/codegen.h) and the reference interpreter
// (frontend/interp.h) both consume it, which is what makes the
// differential fuzz gate meaningful: two independent executions of the
// same tree.
//
// All values are 64-bit.  `int` is signed 64-bit, `unsigned` is
// unsigned 64-bit; the distinction only changes comparisons, right
// shifts, and which division semantics apply (the ISA has no unsigned
// divide, so / and % are always the signed MG-RISC DIV/REM — see
// docs/FRONTEND.md for the deviation note).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mg::frontend {

enum class CType { Int, Unsigned, Void };

inline const char *typeName(CType t) {
    switch (t) {
    case CType::Int: return "int";
    case CType::Unsigned: return "unsigned";
    case CType::Void: return "void";
    }
    return "?";
}

struct Expr {
    enum class K {
        Num,     // value / isUnsigned-driven type
        Var,     // name (+ localId >= 0 when local/param)
        Index,   // name[a] — global array element
        Unary,   // op in {"-","~","!","+"}; operand a
        Binary,  // op; operands a, b
        Assign,  // op "" for plain =, else the compound base ("+", "<<", ...)
                 // a = lvalue (Var or Index), b = rhs
        Cond,    // a ? b : c
        Call,    // name(args...)
    };
    K k = K::Num;
    CType type = CType::Int;
    int line = 0, col = 0;

    uint64_t value = 0;     // Num
    std::string name;       // Var / Index / Call
    int localId = -1;       // Var: local slot; -1 = global scalar
    std::string op;         // Unary / Binary / Assign
    std::unique_ptr<Expr> a, b, c;
    std::vector<std::unique_ptr<Expr>> args;  // Call
};

// True when the (already-typed) binary comparison or division-free op
// should use unsigned semantics: either operand unsigned.
inline bool unsignedOperands(const Expr &e) {
    return e.a->type == CType::Unsigned || e.b->type == CType::Unsigned;
}

struct Stmt {
    enum class K {
        Expr,      // e
        Decl,      // decls
        Block,     // body
        If,        // e, s1, optional s2
        While,     // e, s1
        DoWhile,   // s1, e
        For,       // forInit (may be null), e (may be null), forStep
                   // (may be null), s1
        Return,    // optional e
        Break,
        Continue,
        Empty,
    };
    K k = K::Empty;
    int line = 0, col = 0;

    std::unique_ptr<Expr> e;
    std::vector<Stmt> body;
    std::unique_ptr<Stmt> s1, s2;

    struct DeclItem {
        int localId = -1;
        std::string name;
        CType type = CType::Int;
        std::unique_ptr<Expr> init;  // may be null
    };
    std::vector<DeclItem> decls;

    std::unique_ptr<Stmt> forInit;   // Decl, Expr or null
    std::unique_ptr<Expr> forStep;   // may be null
};

struct Param {
    std::string name;
    CType type = CType::Int;
};

struct FuncDecl {
    std::string name;
    CType ret = CType::Void;
    std::vector<Param> params;  // local ids 0..params.size()-1
    Stmt body;                  // K::Block
    int numLocals = 0;          // params + all declared locals
    int line = 0, col = 0;
};

struct GlobalDecl {
    std::string name;
    CType type = CType::Int;
    // 0 = scalar; otherwise the element count of a 1-D array.  All
    // elements are 8 bytes in the emitted memory image.
    uint64_t arraySize = 0;
    std::vector<uint64_t> init;  // <= max(1, arraySize) leading values
    int line = 0, col = 0;
};

struct CProgram {
    std::string name = "cprog";
    std::vector<GlobalDecl> globals;       // declaration order
    std::map<std::string, int> globalIdx;  // name -> index in globals
    std::vector<FuncDecl> funcs;           // declaration order
    std::map<std::string, int> funcIdx;    // name -> index in funcs

    const GlobalDecl *findGlobal(const std::string &n) const {
        auto it = globalIdx.find(n);
        return it == globalIdx.end() ? nullptr : &globals[it->second];
    }
    const FuncDecl *findFunc(const std::string &n) const {
        auto it = funcIdx.find(n);
        return it == funcIdx.end() ? nullptr : &funcs[it->second];
    }
};

}  // namespace mg::frontend
