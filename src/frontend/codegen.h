// MG-RISC code generation from the typed C-subset AST.
//
// Lowering pipeline: AST -> linear virtual-register IR -> basic-block
// liveness -> linear-scan register allocation -> assembly text for the
// existing two-pass assembler (assembler/assembler.h), consumed
// unchanged.  Register convention (docs/FRONTEND.md):
//
//   r0          hardwired zero
//   r1  - r25   allocatable pool (all caller-saved at call sites)
//   r26 - r28   codegen scratch (spill reloads, address scaling)
//   r29         function return value
//   r30 (sp)    stack pointer
//   r31 (ra)    link register
//
// Arguments are passed on the stack: the caller stores argument i at
// -8*(i+1)(sp) immediately before `call`, and the callee's frame
// covers that area, so argument i lands at F-8*(i+1)(sp) after the
// callee's `addi sp, sp, -F`.
//
// The emitted text is a pure function of the AST and options — no
// clocks, no randomness, no unordered containers — which is what the
// byte-identical determinism test relies on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "frontend/ast.h"

namespace mg::frontend {

struct CodegenOptions {
    // Replaces the initial value of named scalar globals in the
    // emitted .data image (must match the interpreter's overrides for
    // the differential gate to be meaningful).
    std::map<std::string, uint64_t> globalOverrides;
};

// Returns MG-RISC assembly text.  Throws (mg_fatal) on invalid
// overrides; any other failure here is a compiler bug.
std::string generateAsm(const CProgram &program,
                        const CodegenOptions &opts);

}  // namespace mg::frontend
