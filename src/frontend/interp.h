// Reference interpreter for the MG-RISC C-subset AST.
//
// This is the compiler's differential ground truth: `mgsim fuzz
// --frontend` executes the same typed AST here and through
// compile→assemble→FunctionalCore, then requires the final global
// images to match.  The arithmetic deliberately mirrors the MG-RISC
// ALU semantics (uarch/functional.cc evalIntOp): shift counts mask
// `& 63`, division is always the signed DIV/REM with the ISA's defined
// edge cases (x/0 == -1, x%0 == x, INT64_MIN/-1 == INT64_MIN with
// remainder 0).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "frontend/ast.h"

namespace mg::frontend {

struct InterpOptions {
    uint64_t maxSteps = 1ull << 22;
    // Replaces the initial value of named scalar globals (the workload
    // registry's SEED/N parameterization).  Unknown names are errors.
    std::map<std::string, uint64_t> globalOverrides;
};

struct InterpResult {
    bool ok = false;
    std::string error;     // non-empty when !ok
    uint64_t steps = 0;    // AST nodes evaluated
    // Final memory image per global, in CProgram::globals order; each
    // inner vector has max(1, arraySize) elements.
    std::vector<std::vector<uint64_t>> globals;
};

InterpResult interpret(const CProgram &program, const InterpOptions &opts);

// Expands each global's initial 64-bit image (zero-filled past the
// initializers), applying overrides.  Returns an empty string on
// success or an error message.  Shared by the interpreter and the
// codegen so both sides of the differential gate see identical data.
std::string initialGlobalImage(
    const CProgram &program,
    const std::map<std::string, uint64_t> &overrides,
    std::vector<std::vector<uint64_t>> &out);

// The single scalar binary-op evaluator both the interpreter and any
// constant folding use; `op` is the C operator spelling, `uns` selects
// unsigned comparison/shift semantics.  Division is always signed
// (the ISA has no DIVU/REMU).
uint64_t evalCBinary(const std::string &op, bool uns, uint64_t a,
                     uint64_t b);

}  // namespace mg::frontend
