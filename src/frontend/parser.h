// Recursive-descent parser + type checker for the MG-RISC C subset.
//
// parse() never throws: syntax and semantic errors become Diag entries
// (first error wins — parsing stops at the first diagnostic so the
// tree is never half-typed).  See docs/FRONTEND.md for the grammar.
#pragma once

#include <memory>
#include <string>

#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace mg::frontend {

struct ParseResult {
    std::unique_ptr<CProgram> program;  // null on error
    std::vector<Diag> diags;
    bool ok() const { return program != nullptr && diags.empty(); }
};

ParseResult parse(const std::string &source, const std::string &name);

}  // namespace mg::frontend
