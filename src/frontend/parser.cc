#include "frontend/parser.h"

#include <utility>

#include "common/logging.h"

namespace mg::frontend {
namespace {

// Internal unwind signal: the parser stops at the first diagnostic so
// the returned tree is either fully typed or absent.
struct ParseAbort {};

struct LocalInfo {
    int id = -1;
    CType type = CType::Int;
};

class Parser {
  public:
    Parser(std::vector<Token> tokens, std::string name)
        : toks_(std::move(tokens)), name_(std::move(name)) {}

    ParseResult run() {
        ParseResult out;
        auto prog = std::make_unique<CProgram>();
        prog->name = name_;
        prog_ = prog.get();
        try {
            while (!at(Token::Kind::End)) topLevel();
            if (prog_->funcIdx.find("main") == prog_->funcIdx.end())
                fail(cur(), "program has no main() function");
        } catch (const ParseAbort &) {
            out.diags = std::move(diags_);
            return out;
        }
        out.program = std::move(prog);
        out.diags = std::move(diags_);
        return out;
    }

  private:
    // ---- token stream -------------------------------------------------
    const Token &cur() const { return toks_[pos_]; }
    const Token &peek(size_t n = 1) const {
        size_t i = pos_ + n;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool at(Token::Kind k) const { return cur().kind == k; }
    bool atPunct(const char *p) const { return cur().is(p); }
    Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
    Token expectPunct(const char *p) {
        if (!atPunct(p))
            fail(cur(), strprintf("expected '%s'", p));
        return take();
    }
    Token expectIdent(const char *what) {
        if (!at(Token::Kind::Ident))
            fail(cur(), strprintf("expected %s name", what));
        return take();
    }

    [[noreturn]] void fail(const Token &t, std::string msg) {
        diags_.push_back(Diag{t.line, t.col, std::move(msg)});
        throw ParseAbort{};
    }
    [[noreturn]] void fail(const Expr &e, std::string msg) {
        diags_.push_back(Diag{e.line, e.col, std::move(msg)});
        throw ParseAbort{};
    }

    // ---- scopes -------------------------------------------------------
    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }
    const LocalInfo *findLocal(const std::string &n) const {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto hit = it->find(n);
            if (hit != it->end()) return &hit->second;
        }
        return nullptr;
    }
    LocalInfo declareLocal(const Token &nameTok, CType type) {
        auto &scope = scopes_.back();
        if (scope.find(nameTok.text) != scope.end())
            fail(nameTok, strprintf("redeclaration of '%s'",
                                    nameTok.text.c_str()));
        LocalInfo info{numLocals_++, type};
        scope.emplace(nameTok.text, info);
        return info;
    }

    // ---- types --------------------------------------------------------
    bool atType() const {
        return at(Token::Kind::KwInt) || at(Token::Kind::KwUnsigned) ||
               at(Token::Kind::KwVoid);
    }
    CType takeType() {
        if (at(Token::Kind::KwInt)) {
            take();
            return CType::Int;
        }
        if (at(Token::Kind::KwUnsigned)) {
            take();
            // Accept "unsigned int" as a synonym.
            if (at(Token::Kind::KwInt)) take();
            return CType::Unsigned;
        }
        if (at(Token::Kind::KwVoid)) {
            take();
            return CType::Void;
        }
        fail(cur(), "expected type ('int', 'unsigned' or 'void')");
    }
    void requireValue(const Expr &e, const char *what) {
        if (e.type == CType::Void)
            fail(e, strprintf("void value used as %s", what));
    }

    // ---- top level ----------------------------------------------------
    void topLevel() {
        if (!atType())
            fail(cur(), "expected a global declaration or function");
        const Token typeTok = cur();
        CType type = takeType();
        Token name = expectIdent("declaration");
        if (atPunct("(")) {
            function(type, name);
            return;
        }
        if (type == CType::Void)
            fail(typeTok, "global variables cannot be void");
        global(type, name);
    }

    uint64_t constExpr() {
        bool neg = false;
        while (atPunct("-") || atPunct("+")) {
            if (take().text == "-") neg = !neg;
        }
        if (!at(Token::Kind::Number))
            fail(cur(), "expected an integer constant");
        uint64_t v = take().value;
        return neg ? 0 - v : v;
    }

    void global(CType type, const Token &name) {
        checkFreshGlobalName(name);
        GlobalDecl g;
        g.name = name.text;
        g.type = type;
        g.line = name.line;
        g.col = name.col;
        if (atPunct("[")) {
            take();
            if (!at(Token::Kind::Number))
                fail(cur(), "expected a constant array size");
            Token sz = take();
            if (sz.value == 0 || sz.value > 1u << 20)
                fail(sz, "array size must be in [1, 1048576]");
            g.arraySize = sz.value;
            expectPunct("]");
        }
        if (atPunct("=")) {
            take();
            if (g.arraySize == 0) {
                g.init.push_back(constExpr());
            } else {
                expectPunct("{");
                if (!atPunct("}")) {
                    g.init.push_back(constExpr());
                    while (atPunct(",")) {
                        take();
                        g.init.push_back(constExpr());
                    }
                }
                if (g.init.size() > g.arraySize)
                    fail(name, strprintf(
                                   "too many initializers for '%s' "
                                   "(%zu > %llu)",
                                   g.name.c_str(), g.init.size(),
                                   static_cast<unsigned long long>(
                                       g.arraySize)));
                expectPunct("}");
            }
        }
        expectPunct(";");
        prog_->globalIdx.emplace(g.name,
                                 static_cast<int>(prog_->globals.size()));
        prog_->globals.push_back(std::move(g));
    }

    void checkFreshGlobalName(const Token &name) {
        if (prog_->globalIdx.count(name.text) ||
            prog_->funcIdx.count(name.text))
            fail(name,
                 strprintf("redefinition of '%s'", name.text.c_str()));
    }

    void function(CType ret, const Token &name) {
        checkFreshGlobalName(name);
        FuncDecl fn;
        fn.name = name.text;
        fn.ret = ret;
        fn.line = name.line;
        fn.col = name.col;
        expectPunct("(");
        numLocals_ = 0;
        scopes_.clear();
        pushScope();
        if (!atPunct(")")) {
            if (at(Token::Kind::KwVoid) && peek().is(")")) {
                take();  // f(void)
            } else {
                do {
                    CType pt = takeType();
                    if (pt == CType::Void)
                        fail(cur(), "parameters cannot be void");
                    Token pn = expectIdent("parameter");
                    if (atPunct("["))
                        fail(cur(), "array parameters are not supported; "
                                    "use a global array");
                    declareLocal(pn, pt);
                    fn.params.push_back(Param{pn.text, pt});
                } while (atPunct(",") && (take(), true));
            }
        }
        expectPunct(")");
        if (fn.name == "main" && !fn.params.empty())
            fail(name, "main() cannot take parameters");
        if (!atPunct("{"))
            fail(cur(), "expected function body "
                        "(forward declarations are not supported)");
        // Register before parsing the body so direct recursion works.
        int idx = static_cast<int>(prog_->funcs.size());
        prog_->funcIdx.emplace(fn.name, idx);
        prog_->funcs.push_back(std::move(fn));
        curFunc_ = &prog_->funcs[idx];
        loopDepth_ = 0;
        curFunc_->body = block();
        curFunc_->numLocals = numLocals_;
        curFunc_ = nullptr;
        popScope();
    }

    // ---- statements ---------------------------------------------------
    Stmt block() {
        Stmt s;
        s.k = Stmt::K::Block;
        s.line = cur().line;
        s.col = cur().col;
        expectPunct("{");
        pushScope();
        while (!atPunct("}")) {
            if (at(Token::Kind::End))
                fail(cur(), "unexpected end of input inside a block");
            s.body.push_back(statement());
        }
        popScope();
        take();
        return s;
    }

    Stmt declaration() {
        Stmt s;
        s.k = Stmt::K::Decl;
        s.line = cur().line;
        s.col = cur().col;
        CType type = takeType();
        if (type == CType::Void)
            fail(cur(), "local variables cannot be void");
        for (;;) {
            Token nm = expectIdent("variable");
            if (atPunct("["))
                fail(cur(), "local arrays are not supported; "
                            "declare the array as a global");
            Stmt::DeclItem item;
            item.name = nm.text;
            item.type = type;
            if (atPunct("=")) {
                take();
                item.init = assignment();
                requireValue(*item.init, "an initializer");
            }
            // Declare after the initializer is parsed so `int x = x;`
            // refers to an outer x (or errors), never to itself.
            item.localId = declareLocal(nm, type).id;
            s.decls.push_back(std::move(item));
            if (!atPunct(",")) break;
            take();
        }
        expectPunct(";");
        return s;
    }

    Stmt statement() {
        Stmt s;
        s.line = cur().line;
        s.col = cur().col;
        if (atPunct("{")) return block();
        if (atPunct(";")) {
            take();
            s.k = Stmt::K::Empty;
            return s;
        }
        if (atType()) return declaration();
        if (at(Token::Kind::KwIf)) {
            take();
            s.k = Stmt::K::If;
            expectPunct("(");
            s.e = expression();
            requireValue(*s.e, "a condition");
            expectPunct(")");
            s.s1 = std::make_unique<Stmt>(statement());
            if (at(Token::Kind::KwElse)) {
                take();
                s.s2 = std::make_unique<Stmt>(statement());
            }
            return s;
        }
        if (at(Token::Kind::KwWhile)) {
            take();
            s.k = Stmt::K::While;
            expectPunct("(");
            s.e = expression();
            requireValue(*s.e, "a condition");
            expectPunct(")");
            ++loopDepth_;
            s.s1 = std::make_unique<Stmt>(statement());
            --loopDepth_;
            return s;
        }
        if (at(Token::Kind::KwDo)) {
            take();
            s.k = Stmt::K::DoWhile;
            ++loopDepth_;
            s.s1 = std::make_unique<Stmt>(statement());
            --loopDepth_;
            if (!at(Token::Kind::KwWhile))
                fail(cur(), "expected 'while' after do-body");
            take();
            expectPunct("(");
            s.e = expression();
            requireValue(*s.e, "a condition");
            expectPunct(")");
            expectPunct(";");
            return s;
        }
        if (at(Token::Kind::KwFor)) {
            take();
            s.k = Stmt::K::For;
            expectPunct("(");
            pushScope();  // for-init declarations scope over the loop
            if (atPunct(";")) {
                take();
            } else if (atType()) {
                s.forInit = std::make_unique<Stmt>(declaration());
            } else {
                Stmt init;
                init.k = Stmt::K::Expr;
                init.line = cur().line;
                init.col = cur().col;
                init.e = expression();
                s.forInit = std::make_unique<Stmt>(std::move(init));
                expectPunct(";");
            }
            if (!atPunct(";")) {
                s.e = expression();
                requireValue(*s.e, "a condition");
            }
            expectPunct(";");
            if (!atPunct(")")) s.forStep = expression();
            expectPunct(")");
            ++loopDepth_;
            s.s1 = std::make_unique<Stmt>(statement());
            --loopDepth_;
            popScope();
            return s;
        }
        if (at(Token::Kind::KwReturn)) {
            Token kw = take();
            s.k = Stmt::K::Return;
            if (!atPunct(";")) {
                s.e = expression();
                requireValue(*s.e, "a return value");
                if (curFunc_->ret == CType::Void)
                    fail(kw, strprintf("void function '%s' returns a value",
                                       curFunc_->name.c_str()));
            } else if (curFunc_->ret != CType::Void) {
                fail(kw, strprintf("non-void function '%s' returns nothing",
                                   curFunc_->name.c_str()));
            }
            expectPunct(";");
            return s;
        }
        if (at(Token::Kind::KwBreak) || at(Token::Kind::KwContinue)) {
            Token kw = take();
            if (loopDepth_ == 0)
                fail(kw, strprintf("'%s' outside a loop", kw.text.c_str()));
            s.k = kw.kind == Token::Kind::KwBreak ? Stmt::K::Break
                                                  : Stmt::K::Continue;
            expectPunct(";");
            return s;
        }
        s.k = Stmt::K::Expr;
        s.e = expression();
        expectPunct(";");
        return s;
    }

    // ---- expressions --------------------------------------------------
    std::unique_ptr<Expr> makeExpr(Expr::K k, const Token &at) {
        auto e = std::make_unique<Expr>();
        e->k = k;
        e->line = at.line;
        e->col = at.col;
        return e;
    }

    std::unique_ptr<Expr> expression() { return assignment(); }

    bool isLvalue(const Expr &e) const {
        return (e.k == Expr::K::Var) || (e.k == Expr::K::Index);
    }

    std::unique_ptr<Expr> assignment() {
        std::unique_ptr<Expr> lhs = conditional();
        static const char *kAssignOps[] = {"=",  "+=", "-=", "*=",
                                           "/=", "%=", "&=", "|=",
                                           "^=", "<<=", ">>="};
        for (const char *opText : kAssignOps) {
            if (!atPunct(opText)) continue;
            Token opTok = take();
            if (!isLvalue(*lhs))
                fail(opTok, "left side of assignment is not assignable");
            auto e = makeExpr(Expr::K::Assign, opTok);
            std::string base = opText;
            base.pop_back();  // strip '='
            e->op = base;     // "" for plain =
            e->type = lhs->type;
            e->a = std::move(lhs);
            e->b = assignment();  // right associative
            requireValue(*e->b, "an assigned value");
            return e;
        }
        return lhs;
    }

    std::unique_ptr<Expr> conditional() {
        std::unique_ptr<Expr> c = binary(0);
        if (!atPunct("?")) return c;
        Token opTok = take();
        requireValue(*c, "a condition");
        auto e = makeExpr(Expr::K::Cond, opTok);
        e->a = std::move(c);
        e->b = expression();
        expectPunct(":");
        e->c = conditional();
        requireValue(*e->b, "a conditional arm");
        requireValue(*e->c, "a conditional arm");
        e->type = (e->b->type == CType::Unsigned ||
                   e->c->type == CType::Unsigned)
                      ? CType::Unsigned
                      : CType::Int;
        return e;
    }

    // Precedence-climbing over the binary operator table.
    struct OpLevel {
        const char *ops[5];
    };
    static constexpr int kNumLevels = 10;
    const OpLevel &level(int i) const {
        static const OpLevel kLevels[kNumLevels] = {
            {{"||", nullptr}},
            {{"&&", nullptr}},
            {{"|", nullptr}},
            {{"^", nullptr}},
            {{"&", nullptr}},
            {{"==", "!=", nullptr}},
            {{"<", ">", "<=", ">=", nullptr}},
            {{"<<", ">>", nullptr}},
            {{"+", "-", nullptr}},
            {{"*", "/", "%", nullptr}},
        };
        return kLevels[i];
    }

    std::unique_ptr<Expr> binary(int lvl) {
        if (lvl >= kNumLevels) return unary();
        std::unique_ptr<Expr> lhs = binary(lvl + 1);
        for (;;) {
            const char *matched = nullptr;
            for (const char *op : level(lvl).ops) {
                if (op == nullptr) break;
                if (atPunct(op)) {
                    matched = op;
                    break;
                }
            }
            if (matched == nullptr) return lhs;
            Token opTok = take();
            auto e = makeExpr(Expr::K::Binary, opTok);
            e->op = matched;
            e->a = std::move(lhs);
            e->b = binary(lvl + 1);
            requireValue(*e->a, "an operand");
            requireValue(*e->b, "an operand");
            e->type = binaryResultType(*e);
            lhs = std::move(e);
        }
    }

    static CType binaryResultType(const Expr &e) {
        const std::string &op = e.op;
        if (op == "&&" || op == "||" || op == "==" || op == "!=" ||
            op == "<" || op == ">" || op == "<=" || op == ">=")
            return CType::Int;  // 0/1
        if (op == "<<" || op == ">>") return e.a->type;
        return unsignedOperands(e) ? CType::Unsigned : CType::Int;
    }

    std::unique_ptr<Expr> unary() {
        if (atPunct("-") || atPunct("~") || atPunct("!") || atPunct("+")) {
            Token opTok = take();
            auto e = makeExpr(Expr::K::Unary, opTok);
            e->op = opTok.text;
            e->a = unary();
            requireValue(*e->a, "an operand");
            e->type = opTok.text == "!" ? CType::Int : e->a->type;
            return e;
        }
        return postfix();
    }

    std::unique_ptr<Expr> postfix() {
        std::unique_ptr<Expr> e = primary();
        if (atPunct("[")) {
            Token opTok = take();
            if (e->k != Expr::K::Var || e->localId >= 0)
                fail(opTok, "only global arrays can be indexed");
            const GlobalDecl *g = prog_->findGlobal(e->name);
            // primary() already resolved the name; a Var always exists.
            if (g->arraySize == 0)
                fail(opTok, strprintf("'%s' is a scalar, not an array",
                                      e->name.c_str()));
            auto idx = makeExpr(Expr::K::Index, opTok);
            idx->name = e->name;
            idx->type = g->type;
            idx->a = expression();
            requireValue(*idx->a, "an array index");
            expectPunct("]");
            if (atPunct("["))
                fail(cur(), "multi-dimensional indexing is not supported");
            return idx;
        }
        return e;
    }

    std::unique_ptr<Expr> primary() {
        if (at(Token::Kind::Number)) {
            Token t = take();
            auto e = makeExpr(Expr::K::Num, t);
            e->value = t.value;
            e->type = t.isUnsigned ? CType::Unsigned : CType::Int;
            return e;
        }
        if (atPunct("(")) {
            take();
            std::unique_ptr<Expr> e = expression();
            expectPunct(")");
            return e;
        }
        if (!at(Token::Kind::Ident))
            fail(cur(), "expected an expression");
        Token nameTok = take();
        if (atPunct("(")) return call(nameTok);
        auto e = makeExpr(Expr::K::Var, nameTok);
        e->name = nameTok.text;
        if (const LocalInfo *local = findLocal(nameTok.text)) {
            e->localId = local->id;
            e->type = local->type;
            return e;
        }
        const GlobalDecl *g = prog_->findGlobal(nameTok.text);
        if (g == nullptr)
            fail(nameTok, strprintf("use of undeclared identifier '%s'",
                                    nameTok.text.c_str()));
        if (g->arraySize != 0 && !atPunct("["))
            fail(nameTok, strprintf("array '%s' used without an index",
                                    nameTok.text.c_str()));
        e->type = g->type;
        return e;
    }

    std::unique_ptr<Expr> call(const Token &nameTok) {
        const FuncDecl *fn = prog_->findFunc(nameTok.text);
        if (fn == nullptr)
            fail(nameTok,
                 strprintf("call to undefined function '%s' (functions "
                           "must be defined before use)",
                           nameTok.text.c_str()));
        if (fn->name == "main")
            fail(nameTok, "main() cannot be called");
        auto e = makeExpr(Expr::K::Call, nameTok);
        e->name = nameTok.text;
        e->type = fn->ret;
        expectPunct("(");
        if (!atPunct(")")) {
            do {
                e->args.push_back(assignment());
                requireValue(*e->args.back(), "an argument");
            } while (atPunct(",") && (take(), true));
        }
        expectPunct(")");
        if (e->args.size() != fn->params.size())
            fail(nameTok,
                 strprintf("'%s' expects %zu argument(s), got %zu",
                           fn->name.c_str(), fn->params.size(),
                           e->args.size()));
        return e;
    }

    std::vector<Token> toks_;
    std::string name_;
    size_t pos_ = 0;
    CProgram *prog_ = nullptr;
    FuncDecl *curFunc_ = nullptr;
    int numLocals_ = 0;
    int loopDepth_ = 0;
    std::vector<std::map<std::string, LocalInfo>> scopes_;
    std::vector<Diag> diags_;
};

}  // namespace

ParseResult parse(const std::string &source, const std::string &name) {
    LexResult lexed = lex(source);
    if (!lexed.ok()) {
        ParseResult out;
        out.diags = std::move(lexed.diags);
        return out;
    }
    return Parser(std::move(lexed.tokens), name).run();
}

}  // namespace mg::frontend
