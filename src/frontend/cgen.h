// Seeded random C-subset program generator (docs/FRONTEND.md).
//
// `mgsim fuzz --frontend` feeds these programs to the differential
// pipeline: AST interpreter vs compile→assemble→FunctionalCore vs the
// full PR-9 architectural oracle.  Programs are always terminating by
// construction — every loop is a constant-trip-count `for` over a
// reserved counter variable that nothing else writes, helper functions
// are straight-line, and there is no recursion — and every array index
// is masked to the array bound, every divisor forced odd, so the only
// way a trial can fail is a frontend, assembler, or simulator bug.
#pragma once

#include <cstdint>
#include <string>

namespace mg::frontend {

struct CGenOptions {
    uint64_t seed = 1;
};

std::string generateCSource(const CGenOptions &opts);

// Canonical program name for a fuzz trial seed ("cfuzz-<seed>").
std::string cFuzzProgramName(uint64_t seed);

}  // namespace mg::frontend
