#include "frontend/codegen.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "frontend/interp.h"

// The IR below is built with designated initializers; fields not named
// take their member defaults, which is the point — don't warn on them.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace mg::frontend {
namespace {

// Physical register convention (see codegen.h).
constexpr int kAllocBase = 1;
constexpr int kAllocCount = 25;  // r1..r25
constexpr int kScratchA = 26;
constexpr int kScratchB = 27;
constexpr int kScratchAddr = 28;
constexpr int kRetValReg = 29;

// Virtual-register operand encoding: >= 0 is a vreg, kNone is absent,
// kZero is the physical zero register (r0).
constexpr int kNone = -1;
constexpr int kZero = -2;

struct Ir {
    enum class K {
        Li,      // d <- imm
        Rr,      // d <- a op b            (op = mnemonic)
        Ri,      // d <- a op imm
        Mov,     // d <- a
        LdG,     // d <- mem[g + off + (a<<3 if a != kNone)]
        StG,     // mem[g + off + (b<<3 if b != kNone)] <- a
        LdArg,   // d <- incoming argument #imm
        Call,    // d (may be kNone) <- g(args...)
        RetVal,  // r29 <- a (a may be kNone for void)
        Lbl,     // label #lbl
        Jmp,     // goto #lbl
        Br,      // if (a op b) goto #lbl
    };
    K k;
    std::string op;
    int d = kNone, a = kNone, b = kNone;
    int64_t imm = 0;
    int lbl = kNone;
    std::string g;
    int64_t off = 0;
    std::vector<int> args;
};

bool containsAssign(const Expr &e) {
    if (e.k == Expr::K::Assign) return true;
    if (e.a && containsAssign(*e.a)) return true;
    if (e.b && containsAssign(*e.b)) return true;
    if (e.c && containsAssign(*e.c)) return true;
    for (const auto &arg : e.args)
        if (containsAssign(*arg)) return true;
    return false;
}

void collectCalls(const Expr &e, std::set<std::string> &out) {
    if (e.k == Expr::K::Call) out.insert(e.name);
    if (e.a) collectCalls(*e.a, out);
    if (e.b) collectCalls(*e.b, out);
    if (e.c) collectCalls(*e.c, out);
    for (const auto &arg : e.args) collectCalls(*arg, out);
}

void collectCalls(const Stmt &s, std::set<std::string> &out) {
    if (s.e) collectCalls(*s.e, out);
    if (s.s1) collectCalls(*s.s1, out);
    if (s.s2) collectCalls(*s.s2, out);
    if (s.forInit) collectCalls(*s.forInit, out);
    if (s.forStep) collectCalls(*s.forStep, out);
    for (const Stmt::DeclItem &d : s.decls)
        if (d.init) collectCalls(*d.init, out);
    for (const Stmt &sub : s.body) collectCalls(sub, out);
}

/** Function names reachable from main() over the static call graph. */
std::set<std::string> liveFunctions(const CProgram &program) {
    std::set<std::string> live{"main"};
    std::vector<const FuncDecl *> work{program.findFunc("main")};
    while (!work.empty()) {
        const FuncDecl *fn = work.back();
        work.pop_back();
        std::set<std::string> calls;
        collectCalls(fn->body, calls);
        for (const std::string &name : calls)
            if (live.insert(name).second)
                work.push_back(program.findFunc(name));
    }
    return live;
}

// Drop IR blocks no control path from the function entry reaches.
// Lowering `return` mid-block leaves its fall-through tail in place
// (e.g. the implicit "return 0" after an explicit final return), and
// mg_lint rejects candidates built over unreachable instructions, so
// the dead tail must not survive into the binary.  The epilogue label
// (always the last IR) is retained even when unreachable: the emitter
// hangs the frame teardown off it.
std::vector<Ir> pruneUnreachable(std::vector<Ir> code) {
    const int n = static_cast<int>(code.size());
    if (n == 0) return code;
    std::set<int> leaderSet{0};
    std::map<int, int> labelPos;
    for (int i = 0; i < n; ++i) {
        if (code[i].k == Ir::K::Lbl) {
            leaderSet.insert(i);
            labelPos[code[i].lbl] = i;
        }
        if (code[i].k == Ir::K::Jmp || code[i].k == Ir::K::Br)
            if (i + 1 < n) leaderSet.insert(i + 1);
    }
    const std::vector<int> leaders(leaderSet.begin(), leaderSet.end());
    const int numBlocks = static_cast<int>(leaders.size());
    auto blockOf = [&](int pos) {
        return static_cast<int>(std::upper_bound(leaders.begin(),
                                                 leaders.end(), pos) -
                                leaders.begin()) -
               1;
    };
    std::vector<char> reach(numBlocks, 0);
    std::vector<int> work{0};
    reach[0] = 1;
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        const int end = b + 1 < numBlocks ? leaders[b + 1] : n;
        const Ir &last = code[end - 1];
        auto add = [&](int nb) {
            if (!reach[nb]) {
                reach[nb] = 1;
                work.push_back(nb);
            }
        };
        if (last.k == Ir::K::Jmp || last.k == Ir::K::Br)
            add(blockOf(labelPos.at(last.lbl)));
        if (last.k != Ir::K::Jmp && end < n) add(blockOf(end));
    }
    std::vector<Ir> out;
    out.reserve(code.size());
    for (int b = 0; b < numBlocks; ++b) {
        if (!reach[b]) continue;
        const int end = b + 1 < numBlocks ? leaders[b + 1] : n;
        for (int p = leaders[b]; p < end; ++p)
            out.push_back(std::move(code[p]));
    }
    if (out.empty() || out.back().k != Ir::K::Lbl)
        out.push_back(code[n - 1]);  // unreachable epilogue label
    return out;
}

// Compile-time constant folding.  Uses the same scalar evaluator as
// the reference interpreter (interp.h) so folded arithmetic cannot
// diverge from it.  Short-circuit and ?: fold lazily, mirroring the
// interpreter's evaluation (the discarded arm may be non-constant).
bool constantOf(const Expr &e, uint64_t &out) {
    switch (e.k) {
    case Expr::K::Num:
        out = e.value;
        return true;
    case Expr::K::Unary: {
        uint64_t v;
        if (!constantOf(*e.a, v)) return false;
        if (e.op == "-") out = 0 - v;
        else if (e.op == "~") out = ~v;
        else if (e.op == "!") out = v == 0 ? 1 : 0;
        else out = v;
        return true;
    }
    case Expr::K::Binary: {
        uint64_t a;
        if (!constantOf(*e.a, a)) return false;
        if (e.op == "&&") {
            if (a == 0) { out = 0; return true; }
            uint64_t b;
            if (!constantOf(*e.b, b)) return false;
            out = b != 0 ? 1 : 0;
            return true;
        }
        if (e.op == "||") {
            if (a != 0) { out = 1; return true; }
            uint64_t b;
            if (!constantOf(*e.b, b)) return false;
            out = b != 0 ? 1 : 0;
            return true;
        }
        uint64_t b;
        if (!constantOf(*e.b, b)) return false;
        bool uns = (e.op == "<<" || e.op == ">>")
                       ? e.a->type == CType::Unsigned
                       : unsignedOperands(e);
        out = evalCBinary(e.op, uns, a, b);
        return true;
    }
    case Expr::K::Cond: {
        uint64_t c;
        if (!constantOf(*e.a, c)) return false;
        return constantOf(c != 0 ? *e.b : *e.c, out);
    }
    default:
        return false;
    }
}

// An expression's value: a vreg, plus whether that vreg is a local
// variable's long-lived register (raw == lazily read) rather than a
// fresh temporary.  Raw values must be materialized before a later-
// evaluated sibling expression can assign to locals.
struct Val {
    int v = kNone;
    bool raw = false;
};

class FuncLower {
  public:
    explicit FuncLower(const FuncDecl &fn) : fn_(fn) {}

    std::vector<Ir> run() {
        epilogue_ = newLabel();
        for (size_t i = 0; i < fn_.params.size(); ++i) {
            int v = localVreg(static_cast<int>(i));
            emit({.k = Ir::K::LdArg, .d = v,
                  .imm = static_cast<int64_t>(i)});
        }
        genStmt(fn_.body);
        if (fn_.ret != CType::Void) {
            // Falling off the end of a non-void function returns 0,
            // matching the interpreter's zero-initialized return slot.
            int z = newVreg();
            emit({.k = Ir::K::Li, .d = z, .imm = 0});
            emit({.k = Ir::K::RetVal, .a = z});
        }
        emit({.k = Ir::K::Lbl, .lbl = epilogue_});
        return std::move(code_);
    }

    int numLabels() const { return nextLabel_; }
    int numVregs() const { return nextVreg_; }
    int epilogueLabel() const { return epilogue_; }

  private:
    void emit(Ir ir) { code_.push_back(std::move(ir)); }
    int newVreg() { return nextVreg_++; }
    int newLabel() { return nextLabel_++; }
    int localVreg(int localId) {
        auto it = locals_.find(localId);
        if (it != locals_.end()) return it->second;
        int v = newVreg();
        locals_.emplace(localId, v);
        return v;
    }

    bool unsignedCmp(const Expr &e) const { return unsignedOperands(e); }

    Val materialize(Val val) {
        if (!val.raw) return val;
        int t = newVreg();
        emit({.k = Ir::K::Mov, .d = t, .a = val.v});
        return Val{t, false};
    }

    // Operand for an Rr/Br: constant zero folds to r0.
    int operand(const Expr &e) {
        uint64_t c;
        if (constantOf(e, c)) {
            if (c == 0) return kZero;
            int t = newVreg();
            emit({.k = Ir::K::Li, .d = t,
                  .imm = static_cast<int64_t>(c)});
            return t;
        }
        return genExpr(e).v;
    }

    // ---- expressions --------------------------------------------------
    Val genExpr(const Expr &e) {
        uint64_t c;
        if (constantOf(e, c)) {
            int t = newVreg();
            emit({.k = Ir::K::Li, .d = t, .imm = static_cast<int64_t>(c)});
            return Val{t, false};
        }
        switch (e.k) {
        case Expr::K::Num:
            mg_panic("codegen: Num not caught by constantOf");
        case Expr::K::Var:
            if (e.localId >= 0) return Val{localVreg(e.localId), true};
            return loadGlobal(e.name, 0, kNone);
        case Expr::K::Index: {
            auto [off, idx] = indexOperand(e, /*rhsAssigns=*/false);
            return loadGlobal(e.name, off, idx);
        }
        case Expr::K::Unary:
            return genUnary(e);
        case Expr::K::Binary:
            return genBinary(e);
        case Expr::K::Assign:
            return genAssign(e);
        case Expr::K::Cond: {
            // A constant selector picks its arm at compile time; the
            // discarded arm must not be emitted (unreachable code).
            uint64_t sel;
            if (constantOf(*e.a, sel))
                return genExpr(sel != 0 ? *e.b : *e.c);
            int lElse = newLabel(), lEnd = newLabel();
            int d = newVreg();
            genCondBranch(*e.a, lElse, false);
            Val bv = genExpr(*e.b);
            emit({.k = Ir::K::Mov, .d = d, .a = bv.v});
            emit({.k = Ir::K::Jmp, .lbl = lEnd});
            emit({.k = Ir::K::Lbl, .lbl = lElse});
            Val cv = genExpr(*e.c);
            emit({.k = Ir::K::Mov, .d = d, .a = cv.v});
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return Val{d, false};
        }
        case Expr::K::Call:
            return genCall(e);
        }
        mg_panic("codegen: unhandled expression kind");
    }

    Val loadGlobal(const std::string &name, int64_t off, int idx) {
        int d = newVreg();
        emit({.k = Ir::K::LdG, .d = d, .a = idx, .g = name, .off = off});
        return Val{d, false};
    }

    // Index of e (an Expr::K::Index): returns {byteOff, idxVreg}.
    // Constant indices fold into the byte offset (idx == kNone).
    std::pair<int64_t, int> indexOperand(const Expr &e, bool rhsAssigns) {
        uint64_t c;
        if (constantOf(*e.a, c))
            return {static_cast<int64_t>(c * 8), kNone};
        Val iv = genExpr(*e.a);
        if (rhsAssigns) iv = materialize(iv);
        return {0, iv.v};
    }

    Val genUnary(const Expr &e) {
        if (e.op == "+") return genExpr(*e.a);
        if (e.op == "-") {
            int a = operand(*e.a);
            int d = newVreg();
            emit({.k = Ir::K::Rr, .op = "sub", .d = d, .a = kZero,
                  .b = a});
            return Val{d, false};
        }
        int a = genExpr(*e.a).v;
        int d = newVreg();
        if (e.op == "~")
            emit({.k = Ir::K::Ri, .op = "xori", .d = d, .a = a,
                  .imm = -1});
        else  // "!"
            emit({.k = Ir::K::Ri, .op = "sltiu", .d = d, .a = a,
                  .imm = 1});
        return Val{d, false};
    }

    // The hardware mnemonic pair (register form, immediate form) for a
    // C arithmetic operator; empty immediate form = none in the ISA.
    struct OpPair {
        const char *rr;
        const char *ri;
        bool commutative;
    };
    OpPair arithOp(const Expr &e) const {
        const std::string &op = e.op;
        bool uns = e.a->type == CType::Unsigned ||
                   (e.b && e.b->type == CType::Unsigned);
        if (op == "+") return {"add", "addi", true};
        if (op == "-") return {"sub", "", false};
        if (op == "*") return {"mul", "muli", true};
        if (op == "&") return {"and", "andi", true};
        if (op == "|") return {"or", "ori", true};
        if (op == "^") return {"xor", "xori", true};
        if (op == "<<") return {"sll", "slli", false};
        if (op == ">>")
            return e.a->type == CType::Unsigned
                       ? OpPair{"srl", "srli", false}
                       : OpPair{"sra", "srai", false};
        if (op == "/") return {"div", "", false};
        if (op == "%") return {"rem", "", false};
        if (op == "<") return uns ? OpPair{"sltu", "sltiu", false}
                                  : OpPair{"slt", "slti", false};
        mg_panic("codegen: no ALU op for '%s'", op.c_str());
    }

    // d <- a OP rhs, where rhs may fold to an immediate form.
    int emitArith(const Expr &shape, int a, const Expr &rhs) {
        OpPair ops = arithOp(shape);
        int d = newVreg();
        uint64_t c;
        if (ops.ri[0] != '\0' && constantOf(rhs, c)) {
            int64_t imm = static_cast<int64_t>(c);
            const std::string &op = shape.op;
            if (op == "<<" || op == ">>") imm &= 63;
            emit({.k = Ir::K::Ri, .op = ops.ri, .d = d, .a = a,
                  .imm = imm});
            return d;
        }
        int b = operand(rhs);
        emit({.k = Ir::K::Rr, .op = ops.rr, .d = d, .a = a, .b = b});
        return d;
    }

    Val genBinary(const Expr &e) {
        const std::string &op = e.op;
        if (op == "&&" || op == "||") {
            int lFalse = newLabel(), lEnd = newLabel();
            int d = newVreg();
            genCondBranch(e, lFalse, false);
            emit({.k = Ir::K::Li, .d = d, .imm = 1});
            emit({.k = Ir::K::Jmp, .lbl = lEnd});
            emit({.k = Ir::K::Lbl, .lbl = lFalse});
            emit({.k = Ir::K::Li, .d = d, .imm = 0});
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return Val{d, false};
        }
        if (op == "==" || op == "!=") {
            int d = cmpEq(e);
            return Val{d, false};
        }
        if (op == ">" || op == "<=" || op == ">=") {
            bool uns = unsignedCmp(e);
            const char *sltOp = uns ? "sltu" : "slt";
            // a > b  ==  b < a;   a <= b == !(b < a);  a >= b == !(a < b)
            bool swap = (op == ">" || op == "<=");
            bool invert = (op == "<=" || op == ">=");
            Val av = genExpr(*e.a);
            if (containsAssign(*e.b)) av = materialize(av);
            int bo = operand(*e.b);
            int lhs = swap ? bo : av.v;
            int rhs = swap ? av.v : bo;
            int d = newVreg();
            emit({.k = Ir::K::Rr, .op = sltOp, .d = d, .a = lhs,
                  .b = rhs});
            if (invert) {
                int d2 = newVreg();
                emit({.k = Ir::K::Ri, .op = "xori", .d = d2, .a = d,
                      .imm = 1});
                return Val{d2, false};
            }
            return Val{d, false};
        }
        // "<" and the arithmetic family share the immediate-folding
        // path.  Commutative ops with a constant lhs swap it over.
        uint64_t c;
        OpPair ops = arithOp(e);
        if (ops.commutative && constantOf(*e.a, c) &&
            !constantOf(*e.b, c)) {
            Val bv = genExpr(*e.b);
            return Val{emitArith(e, bv.v, *e.a), false};
        }
        if (op == "-" && constantOf(*e.b, c)) {
            // a - c  ==  a + (-c), with 2^64 wraparound.
            Val av = genExpr(*e.a);
            int d = newVreg();
            emit({.k = Ir::K::Ri, .op = "addi", .d = d, .a = av.v,
                  .imm = static_cast<int64_t>(0 - c)});
            return Val{d, false};
        }
        Val av = genExpr(*e.a);
        if (containsAssign(*e.b)) av = materialize(av);
        return Val{emitArith(e, av.v, *e.b), false};
    }

    int cmpEq(const Expr &e) {
        Val av = genExpr(*e.a);
        if (containsAssign(*e.b)) av = materialize(av);
        int t = newVreg();
        uint64_t c;
        if (constantOf(*e.b, c)) {
            emit({.k = Ir::K::Ri, .op = "xori", .d = t, .a = av.v,
                  .imm = static_cast<int64_t>(c)});
        } else {
            int bo = operand(*e.b);
            emit({.k = Ir::K::Rr, .op = "xor", .d = t, .a = av.v,
                  .b = bo});
        }
        int d = newVreg();
        if (e.op == "==")
            emit({.k = Ir::K::Ri, .op = "sltiu", .d = d, .a = t,
                  .imm = 1});
        else
            emit({.k = Ir::K::Rr, .op = "sltu", .d = d, .a = kZero,
                  .b = t});
        return d;
    }

    Val genAssign(const Expr &e) {
        const Expr &lhs = *e.a;
        bool compound = !e.op.empty();
        // Shape node for arithOp/emitArith: operand types of the
        // expanded `lhs op rhs` (signedness of >> and < come from it).
        if (lhs.k == Expr::K::Var && lhs.localId >= 0) {
            int lv = localVreg(lhs.localId);
            if (!compound) {
                Val bv = genExpr(*e.b);
                emit({.k = Ir::K::Mov, .d = lv, .a = bv.v});
                return bv;
            }
            int d = compoundValue(e, Val{lv, true});
            emit({.k = Ir::K::Mov, .d = lv, .a = d});
            return Val{lv, true};
        }
        if (lhs.k == Expr::K::Var) {  // global scalar
            if (!compound) {
                Val bv = genExpr(*e.b);
                emit({.k = Ir::K::StG, .a = bv.v, .g = lhs.name});
                return bv;
            }
            int d = compoundValue(e, Val{kNone, false});
            emit({.k = Ir::K::StG, .a = d, .g = lhs.name});
            return Val{d, false};
        }
        // Array element.  Order (matched with the interpreter):
        // index, rhs, (load), store.
        auto [off, idx] = indexOperand(lhs, containsAssign(*e.b));
        if (!compound) {
            Val bv = genExpr(*e.b);
            emit({.k = Ir::K::StG, .a = bv.v, .b = idx, .g = lhs.name,
                  .off = off});
            return bv;
        }
        int d = compoundValue(e, Val{kNone, false}, off, idx);
        emit({.k = Ir::K::StG, .a = d, .b = idx, .g = lhs.name,
              .off = off});
        return Val{d, false};
    }

    // Evaluates `current op= rhs` for a compound assignment: rhs
    // first, then the load of the current value (interpreter order).
    // `cur.v == kNone` means load from the lhs global/array.
    int compoundValue(const Expr &e, Val cur, int64_t off = 0,
                      int idx = kNone) {
        const Expr &lhs = *e.a;
        // Synthesize the operator shape: `lhs op rhs`.
        Expr shape;
        shape.k = Expr::K::Binary;
        shape.op = e.op;
        // Only .type of the operand slots is inspected by arithOp.
        shape.a = std::make_unique<Expr>();
        shape.a->type = lhs.type;
        shape.b = std::make_unique<Expr>();
        shape.b->type = e.b->type;
        uint64_t c;
        bool rhsConst = constantOf(*e.b, c);
        int rhsVreg = kNone;
        if (!rhsConst) rhsVreg = genExpr(*e.b).v;
        int base = cur.v;
        if (base == kNone)
            base = loadGlobal(lhs.name, off, idx).v;
        if (rhsConst) return emitArith(shape, base, *e.b);
        OpPair ops = arithOp(shape);
        int d = newVreg();
        emit({.k = Ir::K::Rr, .op = ops.rr, .d = d, .a = base,
              .b = rhsVreg});
        return d;
    }

    Val genCall(const Expr &e) {
        std::vector<Val> args;
        args.reserve(e.args.size());
        for (size_t i = 0; i < e.args.size(); ++i) {
            Val v = genExpr(*e.args[i]);
            bool laterAssigns = false;
            for (size_t j = i + 1; j < e.args.size(); ++j)
                laterAssigns |= containsAssign(*e.args[j]);
            if (laterAssigns) v = materialize(v);
            args.push_back(v);
        }
        Ir call{.k = Ir::K::Call, .g = e.name};
        for (const Val &v : args) call.args.push_back(v.v);
        if (e.type != CType::Void) call.d = newVreg();
        int d = call.d;
        emit(std::move(call));
        return Val{d, false};
    }

    // ---- control flow -------------------------------------------------
    void genCondBranch(const Expr &e, int target, bool jumpIfTrue) {
        uint64_t c;
        if (constantOf(e, c)) {
            if ((c != 0) == jumpIfTrue)
                emit({.k = Ir::K::Jmp, .lbl = target});
            return;
        }
        if (e.k == Expr::K::Unary && e.op == "!") {
            genCondBranch(*e.a, target, !jumpIfTrue);
            return;
        }
        if (e.k == Expr::K::Binary && (e.op == "&&" || e.op == "||")) {
            bool isAnd = e.op == "&&";
            if (isAnd == jumpIfTrue) {
                // all-must-hold (or all-must-fail): short circuit to a
                // local skip label on the first decisive operand.
                int skip = newLabel();
                genCondBranch(*e.a, skip, !jumpIfTrue);
                genCondBranch(*e.b, target, jumpIfTrue);
                emit({.k = Ir::K::Lbl, .lbl = skip});
            } else {
                genCondBranch(*e.a, target, jumpIfTrue);
                genCondBranch(*e.b, target, jumpIfTrue);
            }
            return;
        }
        if (e.k == Expr::K::Binary && isRelational(e.op)) {
            relationalBranch(e, target, jumpIfTrue);
            return;
        }
        int v = genExpr(e).v;
        emit({.k = Ir::K::Br, .op = jumpIfTrue ? "bne" : "beq", .a = v,
              .b = kZero, .lbl = target});
    }

    static bool isRelational(const std::string &op) {
        return op == "<" || op == ">" || op == "<=" || op == ">=" ||
               op == "==" || op == "!=";
    }

    void relationalBranch(const Expr &e, int target, bool jumpIfTrue) {
        std::string op = e.op;
        if (!jumpIfTrue) {
            // Branch on the negated relation.
            if (op == "<") op = ">=";
            else if (op == ">=") op = "<";
            else if (op == ">") op = "<=";
            else if (op == "<=") op = ">";
            else if (op == "==") op = "!=";
            else op = "==";
        }
        bool uns = unsignedCmp(e);
        Val av = genExpr(*e.a);
        if (containsAssign(*e.b)) av = materialize(av);
        int bo = operand(*e.b);
        int a = av.v, b = bo;
        const char *mn;
        if (op == "==") mn = "beq";
        else if (op == "!=") mn = "bne";
        else if (op == "<") mn = uns ? "bltu" : "blt";
        else if (op == ">=") mn = uns ? "bgeu" : "bge";
        else if (op == ">") { mn = uns ? "bltu" : "blt"; std::swap(a, b); }
        else { mn = uns ? "bgeu" : "bge"; std::swap(a, b); }  // "<="
        emit({.k = Ir::K::Br, .op = mn, .a = a, .b = b, .lbl = target});
    }

    // ---- statements ---------------------------------------------------
    void genStmt(const Stmt &s) {
        switch (s.k) {
        case Stmt::K::Empty:
            return;
        case Stmt::K::Expr:
            genExpr(*s.e);
            return;
        case Stmt::K::Decl:
            for (const Stmt::DeclItem &d : s.decls) {
                int lv = localVreg(d.localId);
                if (d.init) {
                    Val v = genExpr(*d.init);
                    emit({.k = Ir::K::Mov, .d = lv, .a = v.v});
                } else {
                    // Deterministic zero, matching the interpreter's
                    // zero-filled frame.
                    emit({.k = Ir::K::Li, .d = lv, .imm = 0});
                }
            }
            return;
        case Stmt::K::Block:
            for (const Stmt &sub : s.body) genStmt(sub);
            return;
        case Stmt::K::If: {
            // Constant conditions keep only the live arm: the dead
            // arm would be unreachable code, which mg_lint rejects
            // (candidates with constituents unreachable from entry).
            uint64_t c;
            if (constantOf(*s.e, c)) {
                if (c != 0) genStmt(*s.s1);
                else if (s.s2) genStmt(*s.s2);
                return;
            }
            int lEnd = newLabel();
            int lElse = s.s2 ? newLabel() : lEnd;
            genCondBranch(*s.e, lElse, false);
            genStmt(*s.s1);
            if (s.s2) {
                emit({.k = Ir::K::Jmp, .lbl = lEnd});
                emit({.k = Ir::K::Lbl, .lbl = lElse});
                genStmt(*s.s2);
            }
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return;
        }
        case Stmt::K::While: {
            // while(0) vanishes; while(1) drops the exit test (break
            // still leaves through lEnd).
            uint64_t c;
            const bool constCond = constantOf(*s.e, c);
            if (constCond && c == 0) return;
            int lHead = newLabel(), lEnd = newLabel();
            emit({.k = Ir::K::Lbl, .lbl = lHead});
            if (!constCond) genCondBranch(*s.e, lEnd, false);
            loops_.push_back({lHead, lEnd});
            genStmt(*s.s1);
            loops_.pop_back();
            emit({.k = Ir::K::Jmp, .lbl = lHead});
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return;
        }
        case Stmt::K::DoWhile: {
            int lBody = newLabel(), lCond = newLabel(), lEnd = newLabel();
            emit({.k = Ir::K::Lbl, .lbl = lBody});
            loops_.push_back({lCond, lEnd});
            genStmt(*s.s1);
            loops_.pop_back();
            emit({.k = Ir::K::Lbl, .lbl = lCond});
            // do-while(0) runs once and falls through; do-while(1)
            // loops unconditionally.
            uint64_t c;
            if (!constantOf(*s.e, c)) {
                genCondBranch(*s.e, lBody, true);
            } else if (c != 0) {
                emit({.k = Ir::K::Jmp, .lbl = lBody});
            }
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return;
        }
        case Stmt::K::For: {
            // A constant-false condition leaves only the init; a
            // constant-true one drops the exit test.
            uint64_t c;
            const bool constCond = s.e && constantOf(*s.e, c);
            if (constCond && c == 0) {
                if (s.forInit) genStmt(*s.forInit);
                return;
            }
            int lHead = newLabel(), lStep = newLabel(), lEnd = newLabel();
            if (s.forInit) genStmt(*s.forInit);
            emit({.k = Ir::K::Lbl, .lbl = lHead});
            if (s.e && !constCond) genCondBranch(*s.e, lEnd, false);
            loops_.push_back({lStep, lEnd});
            genStmt(*s.s1);
            loops_.pop_back();
            emit({.k = Ir::K::Lbl, .lbl = lStep});
            if (s.forStep) genExpr(*s.forStep);
            emit({.k = Ir::K::Jmp, .lbl = lHead});
            emit({.k = Ir::K::Lbl, .lbl = lEnd});
            return;
        }
        case Stmt::K::Return: {
            if (s.e) {
                int v = genExpr(*s.e).v;
                emit({.k = Ir::K::RetVal, .a = v});
            } else {
                emit({.k = Ir::K::RetVal, .a = kNone});
            }
            emit({.k = Ir::K::Jmp, .lbl = epilogue_});
            return;
        }
        case Stmt::K::Break:
            emit({.k = Ir::K::Jmp, .lbl = loops_.back().breakLbl});
            return;
        case Stmt::K::Continue:
            emit({.k = Ir::K::Jmp, .lbl = loops_.back().continueLbl});
            return;
        }
        mg_panic("codegen: unhandled statement kind");
    }

    struct LoopLabels {
        int continueLbl;
        int breakLbl;
    };

    const FuncDecl &fn_;
    std::vector<Ir> code_;
    std::map<int, int> locals_;
    std::vector<LoopLabels> loops_;
    int nextVreg_ = 0;
    int nextLabel_ = 0;
    int epilogue_ = 0;
};

// ---- liveness + linear scan -------------------------------------------

struct Interval {
    int vreg = kNone;
    int start = -1;  // IR position
    int end = -1;
    int reg = kNone;     // physical register, or kNone when spilled
    bool spilled = false;
};

void forEachUse(const Ir &ir, const std::function<void(int)> &fn) {
    auto u = [&](int v) {
        if (v >= 0) fn(v);
    };
    switch (ir.k) {
    case Ir::K::Rr:
        u(ir.a);
        u(ir.b);
        break;
    case Ir::K::Ri:
    case Ir::K::Mov:
        u(ir.a);
        break;
    case Ir::K::LdG:
        u(ir.a);  // index
        break;
    case Ir::K::StG:
        u(ir.a);  // source
        u(ir.b);  // index
        break;
    case Ir::K::Br:
        u(ir.a);
        u(ir.b);
        break;
    case Ir::K::Call:
        for (int v : ir.args) u(v);
        break;
    case Ir::K::RetVal:
        u(ir.a);
        break;
    default:
        break;
    }
}

int defOf(const Ir &ir) {
    switch (ir.k) {
    case Ir::K::Li:
    case Ir::K::Rr:
    case Ir::K::Ri:
    case Ir::K::Mov:
    case Ir::K::LdG:
    case Ir::K::LdArg:
        return ir.d;
    case Ir::K::Call:
        return ir.d;  // may be kNone
    default:
        return kNone;
    }
}

class Allocator {
  public:
    Allocator(const std::vector<Ir> &code, int numVregs)
        : code_(code), numVregs_(numVregs) {}

    void run() {
        buildBlocks();
        solveLiveness();
        buildIntervals();
        scan();
        planCallSaves();
    }

    // Physical register of a vreg, or kNone when spilled.
    int regOf(int vreg) const { return assignment_[vreg]; }
    bool isSpilled(int vreg) const { return assignment_[vreg] == kNone; }
    // Frame slot index of a spilled or call-saved vreg (asserted to
    // exist).
    int slotOf(int vreg) const { return slots_.at(vreg); }
    bool hasSlot(int vreg) const { return slots_.count(vreg) != 0; }
    int numSlots() const { return nextSlot_; }
    // For a Call at position p: (physReg, vreg) pairs to save/restore.
    const std::vector<std::pair<int, int>> &savesAt(int pos) const {
        static const std::vector<std::pair<int, int>> kEmpty;
        auto it = callSaves_.find(pos);
        return it == callSaves_.end() ? kEmpty : it->second;
    }

  private:
    void buildBlocks() {
        // Block leaders: position 0, every Lbl, every successor of a
        // Jmp/Br.
        std::set<int> leaders;
        leaders.insert(0);
        for (size_t i = 0; i < code_.size(); ++i) {
            const Ir &ir = code_[i];
            if (ir.k == Ir::K::Lbl) {
                leaders.insert(static_cast<int>(i));
                labelPos_[ir.lbl] = static_cast<int>(i);
            }
            if (ir.k == Ir::K::Jmp || ir.k == Ir::K::Br)
                leaders.insert(static_cast<int>(i) + 1);
        }
        leaders.insert(static_cast<int>(code_.size()));
        std::vector<int> sorted(leaders.begin(), leaders.end());
        for (size_t i = 0; i + 1 < sorted.size(); ++i) {
            if (sorted[i] == sorted[i + 1]) continue;
            blocks_.push_back({sorted[i], sorted[i + 1], {}, {}, {}, {}});
        }
        for (size_t b = 0; b < blocks_.size(); ++b) {
            for (int p = blocks_[b].begin; p < blocks_[b].end; ++p)
                blockOf_[p] = static_cast<int>(b);
        }
    }

    int blockOfLabel(int lbl) const {
        return blockOf_.at(labelPos_.at(lbl));
    }

    std::vector<int> successors(size_t b) const {
        std::vector<int> out;
        const Block &blk = blocks_[b];
        const Ir &last = code_[blk.end - 1];
        if (last.k == Ir::K::Jmp) {
            out.push_back(blockOfLabel(last.lbl));
            return out;
        }
        if (last.k == Ir::K::Br) out.push_back(blockOfLabel(last.lbl));
        if (static_cast<size_t>(blk.end) < code_.size())
            out.push_back(blockOf_.at(blk.end));
        return out;
    }

    void solveLiveness() {
        for (Block &blk : blocks_) {
            std::set<int> defined;
            for (int p = blk.begin; p < blk.end; ++p) {
                forEachUse(code_[p], [&](int v) {
                    if (defined.count(v) == 0) blk.use.insert(v);
                });
                int d = defOf(code_[p]);
                if (d >= 0) defined.insert(d);
            }
            blk.def = std::move(defined);
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t b = blocks_.size(); b-- > 0;) {
                Block &blk = blocks_[b];
                std::set<int> out;
                for (int s : successors(b)) {
                    const std::set<int> &in = blocks_[s].liveIn;
                    out.insert(in.begin(), in.end());
                }
                std::set<int> in = blk.use;
                for (int v : out)
                    if (blk.def.count(v) == 0) in.insert(v);
                if (out != blk.liveOut || in != blk.liveIn) {
                    blk.liveOut = std::move(out);
                    blk.liveIn = std::move(in);
                    changed = true;
                }
            }
        }
    }

    void buildIntervals() {
        intervals_.assign(static_cast<size_t>(numVregs_), Interval{});
        auto extend = [&](int v, int pos) {
            Interval &iv = intervals_[static_cast<size_t>(v)];
            iv.vreg = v;
            if (iv.start < 0 || pos < iv.start) iv.start = pos;
            if (pos > iv.end) iv.end = pos;
        };
        for (const Block &blk : blocks_) {
            for (int v : blk.liveIn) extend(v, blk.begin);
            for (int v : blk.liveOut) extend(v, blk.end - 1);
        }
        for (size_t p = 0; p < code_.size(); ++p) {
            int pos = static_cast<int>(p);
            forEachUse(code_[p], [&](int v) { extend(v, pos); });
            int d = defOf(code_[p]);
            if (d >= 0) extend(d, pos);
        }
    }

    void scan() {
        assignment_.assign(static_cast<size_t>(numVregs_), kNone);
        std::vector<const Interval *> order;
        for (const Interval &iv : intervals_)
            if (iv.vreg >= 0) order.push_back(&iv);
        std::sort(order.begin(), order.end(),
                  [](const Interval *x, const Interval *y) {
                      if (x->start != y->start) return x->start < y->start;
                      return x->vreg < y->vreg;
                  });
        // Free pool, lowest register first for deterministic output.
        std::set<int> freeRegs;
        for (int i = 0; i < kAllocCount; ++i)
            freeRegs.insert(kAllocBase + i);
        // Active set ordered by (end, vreg).
        std::set<std::pair<int, int>> active;
        for (const Interval *iv : order) {
            // Expire intervals that ended strictly before this start.
            while (!active.empty() &&
                   active.begin()->first < iv->start) {
                int ended = active.begin()->second;
                freeRegs.insert(assignment_[ended]);
                active.erase(active.begin());
            }
            if (!freeRegs.empty()) {
                int reg = *freeRegs.begin();
                freeRegs.erase(freeRegs.begin());
                assignment_[iv->vreg] = reg;
                active.emplace(iv->end, iv->vreg);
                continue;
            }
            // Spill the interval that ends last.
            auto victimIt = std::prev(active.end());
            int victim = victimIt->second;
            if (intervals_[victim].end > iv->end) {
                assignment_[iv->vreg] = assignment_[victim];
                assignment_[victim] = kNone;
                ensureSlot(victim);
                active.erase(victimIt);
                active.emplace(iv->end, iv->vreg);
            } else {
                ensureSlot(iv->vreg);
            }
        }
    }

    void ensureSlot(int vreg) {
        if (slots_.count(vreg) == 0) slots_[vreg] = nextSlot_++;
    }

    void planCallSaves() {
        for (size_t p = 0; p < code_.size(); ++p) {
            if (code_[p].k != Ir::K::Call) continue;
            int pos = static_cast<int>(p);
            std::vector<std::pair<int, int>> saves;
            for (const Interval &iv : intervals_) {
                if (iv.vreg < 0 || assignment_[iv.vreg] == kNone)
                    continue;
                if (iv.start < pos && iv.end > pos) {
                    ensureSlot(iv.vreg);
                    saves.emplace_back(assignment_[iv.vreg], iv.vreg);
                }
            }
            std::sort(saves.begin(), saves.end());
            if (!saves.empty()) callSaves_[pos] = std::move(saves);
        }
    }

    struct Block {
        int begin;
        int end;
        std::set<int> use, def, liveIn, liveOut;
    };

    const std::vector<Ir> &code_;
    int numVregs_;
    std::vector<Block> blocks_;
    std::map<int, int> blockOf_;   // position -> block index
    std::map<int, int> labelPos_;  // label id -> position
    std::vector<Interval> intervals_;
    std::vector<int> assignment_;  // vreg -> phys reg or kNone
    std::map<int, int> slots_;     // vreg -> frame slot
    std::map<int, std::vector<std::pair<int, int>>> callSaves_;
    int nextSlot_ = 0;
};

// ---- assembly emission --------------------------------------------------

class Emitter {
  public:
    Emitter(std::ostringstream &os, const FuncDecl &fn,
            const std::vector<Ir> &code, const Allocator &alloc)
        : os_(os), fn_(fn), code_(code), alloc_(alloc) {
        frame_ = 8 * (static_cast<int64_t>(fn_.params.size()) + 1 +
                      alloc_.numSlots());
        raOffset_ = 8 * alloc_.numSlots();
    }

    void run() {
        os_ << fn_.name << ":\n";
        ins("addi", "sp", "sp", std::to_string(-frame_));
        ins("sd", "ra", offSp(raOffset_));
        for (size_t p = 0; p < code_.size(); ++p) emitOne(code_[p],
                                                          static_cast<int>(p));
        // Epilogue (the Lbl for it was emitted by emitOne).
        if (fn_.name == "main") {
            ins("halt");
        } else {
            ins("ld", "ra", offSp(raOffset_));
            ins("addi", "sp", "sp", std::to_string(frame_));
            ins("ret");
        }
    }

  private:
    std::string label(int id) const {
        return strprintf(".L.%s.%d", fn_.name.c_str(), id);
    }
    static std::string offSp(int64_t off) {
        return std::to_string(off) + "(sp)";
    }
    static std::string regName(int phys) {
        return "r" + std::to_string(phys);
    }

    void ins(const std::string &mn) { os_ << "    " << mn << "\n"; }
    template <typename First, typename... Rest>
    void ins(const std::string &mn, First &&first, Rest &&...rest) {
        os_ << "    " << mn << " " << first;
        ((os_ << ", " << rest), ...);
        os_ << "\n";
    }

    int64_t slotOff(int vreg) const { return 8 * alloc_.slotOf(vreg); }

    // Operand read: returns the register name holding the value,
    // reloading spilled vregs into the given scratch register.
    std::string use(int v, int scratch) {
        if (v == kZero) return "r0";
        if (!alloc_.isSpilled(v)) return regName(alloc_.regOf(v));
        std::string s = regName(scratch);
        ins("ld", s, offSp(slotOff(v)));
        return s;
    }

    // Destination write: pick the target register (scratch when
    // spilled); finishDef stores it back if needed.
    std::string defReg(int v, int scratch) const {
        if (!alloc_.isSpilled(v)) return regName(alloc_.regOf(v));
        return regName(scratch);
    }
    void finishDef(int v, int scratch) {
        if (alloc_.isSpilled(v))
            ins("sd", regName(scratch), offSp(slotOff(v)));
    }

    std::string memOperand(const Ir &ir, const std::string &idxReg) {
        std::string sym = ir.g;
        if (ir.off != 0) sym += "+" + std::to_string(ir.off);
        if (!idxReg.empty()) sym += "(" + idxReg + ")";
        return sym;
    }

    void emitOne(const Ir &ir, int pos) {
        switch (ir.k) {
        case Ir::K::Li: {
            std::string d = defReg(ir.d, kScratchA);
            ins("li", d, std::to_string(ir.imm));
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::Rr: {
            std::string a = use(ir.a, kScratchA);
            std::string b = use(ir.b, kScratchB);
            std::string d = defReg(ir.d, kScratchA);
            ins(ir.op, d, a, b);
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::Ri: {
            std::string a = use(ir.a, kScratchA);
            std::string d = defReg(ir.d, kScratchA);
            ins(ir.op, d, a, std::to_string(ir.imm));
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::Mov: {
            std::string a = use(ir.a, kScratchA);
            std::string d = defReg(ir.d, kScratchA);
            if (d != a) ins("mov", d, a);
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::LdG: {
            std::string idxReg;
            if (ir.a != kNone) {
                std::string iv = use(ir.a, kScratchB);
                ins("slli", regName(kScratchAddr), iv, "3");
                idxReg = regName(kScratchAddr);
            }
            std::string d = defReg(ir.d, kScratchA);
            ins("ld", d, memOperand(ir, idxReg));
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::StG: {
            std::string idxReg;
            if (ir.b != kNone) {
                std::string iv = use(ir.b, kScratchB);
                ins("slli", regName(kScratchAddr), iv, "3");
                idxReg = regName(kScratchAddr);
            }
            std::string src = use(ir.a, kScratchA);
            ins("sd", src, memOperand(ir, idxReg));
            return;
        }
        case Ir::K::LdArg: {
            std::string d = defReg(ir.d, kScratchA);
            ins("ld", d, offSp(frame_ - 8 * (ir.imm + 1)));
            finishDef(ir.d, kScratchA);
            return;
        }
        case Ir::K::Call: {
            const auto &saves = alloc_.savesAt(pos);
            for (const auto &[phys, vreg] : saves)
                ins("sd", regName(phys), offSp(slotOff(vreg)));
            for (size_t i = 0; i < ir.args.size(); ++i) {
                std::string src = use(ir.args[i], kScratchA);
                ins("sd", src,
                    offSp(-8 * (static_cast<int64_t>(i) + 1)));
            }
            ins("call", ir.g);
            for (const auto &[phys, vreg] : saves)
                ins("ld", regName(phys), offSp(slotOff(vreg)));
            if (ir.d != kNone) {
                std::string d = defReg(ir.d, kScratchA);
                if (d != regName(kRetValReg))
                    ins("mov", d, regName(kRetValReg));
                finishDef(ir.d, kScratchA);
            }
            return;
        }
        case Ir::K::RetVal: {
            if (ir.a != kNone) {
                std::string a = use(ir.a, kScratchA);
                if (a != regName(kRetValReg))
                    ins("mov", regName(kRetValReg), a);
            }
            return;
        }
        case Ir::K::Lbl:
            os_ << label(ir.lbl) << ":\n";
            return;
        case Ir::K::Jmp:
            ins("j", label(ir.lbl));
            return;
        case Ir::K::Br: {
            std::string a = use(ir.a, kScratchA);
            std::string b = use(ir.b, kScratchB);
            ins(ir.op, a, b, label(ir.lbl));
            return;
        }
        }
        mg_panic("codegen: unhandled IR kind in emitter");
    }

    std::ostringstream &os_;
    const FuncDecl &fn_;
    const std::vector<Ir> &code_;
    const Allocator &alloc_;
    int64_t frame_ = 0;
    int64_t raOffset_ = 0;
};

}  // namespace

std::string generateAsm(const CProgram &program,
                        const CodegenOptions &opts) {
    std::vector<std::vector<uint64_t>> images;
    std::string err =
        initialGlobalImage(program, opts.globalOverrides, images);
    if (!err.empty())
        mg_fatal("%s: %s", program.name.c_str(), err.c_str());

    std::ostringstream os;
    os << "; " << program.name
       << " -- generated by the mgsim C frontend (docs/FRONTEND.md)\n";
    os << "    .text\n";
    // Dead-function elimination: an uncalled helper would be
    // unreachable code in the binary, and mg_lint rejects candidates
    // whose constituents are unreachable from the program entry.
    const std::set<std::string> live = liveFunctions(program);
    for (const FuncDecl &fn : program.funcs) {
        if (!live.count(fn.name)) continue;
        FuncLower lower(fn);
        std::vector<Ir> code = pruneUnreachable(lower.run());
        Allocator alloc(code, lower.numVregs());
        alloc.run();
        Emitter(os, fn, code, alloc).run();
    }
    os << "\n    .data\n";
    for (size_t gi = 0; gi < program.globals.size(); ++gi) {
        const GlobalDecl &g = program.globals[gi];
        const std::vector<uint64_t> &image = images[gi];
        // Trailing zeros become .space so large arrays stay compact.
        size_t tail = image.size();
        while (tail > 0 && image[tail - 1] == 0) --tail;
        os << g.name << ":";
        if (tail == 0) {
            os << "\n    .space " << 8 * image.size() << "\n";
            continue;
        }
        os << "\n";
        for (size_t i = 0; i < tail; i += 8) {
            os << "    .dword ";
            for (size_t j = i; j < std::min(tail, i + 8); ++j) {
                if (j > i) os << ", ";
                os << static_cast<int64_t>(image[j]);
            }
            os << "\n";
        }
        if (tail < image.size())
            os << "    .space " << 8 * (image.size() - tail) << "\n";
    }
    return os.str();
}

}  // namespace mg::frontend
