// frontend::compile() — the library entry point for the C-subset
// compiler (docs/FRONTEND.md): source text in, MG-RISC assembly (and
// optionally an assembled Program) out.  `mgsim cc`, the workload
// registry (workloads/c_kernels.cc) and the differential fuzz gate
// (fuzz/frontend_fuzz.h) all go through here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assembler/program.h"
#include "frontend/ast.h"
#include "frontend/lexer.h"

namespace mg::frontend {

struct CompileOptions {
    std::string name = "cprog";
    // Memory image size of the assembled program (code is index-based;
    // this bounds data + stack).
    uint64_t memSize = 8ull << 20;
    // Base address of the .data section (assembler default when 0).
    uint64_t dataBase = 0;
    // Replaces the initial value of named scalar globals — the
    // workload registry's SEED/N parameterization.
    std::map<std::string, uint64_t> globalOverrides;
};

struct CompileResult {
    bool ok = false;
    // All diagnostics (first error wins; see parser.h).  `error` is
    // the first one rendered "name:line:col: message".
    std::vector<Diag> diags;
    std::string error;
    std::string asmText;                // empty unless ok
    std::shared_ptr<CProgram> ast;      // null unless ok
};

CompileResult compile(const std::string &source,
                      const CompileOptions &opts);

// Assembles a successful CompileResult into a runnable Program.
// Throws (mg_fatal) only on a frontend bug: frontend-emitted assembly
// is assembler-clean by construction.
assembler::Program assemble(const CompileResult &compiled,
                            const CompileOptions &opts);

}  // namespace mg::frontend
