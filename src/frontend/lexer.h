// Lexer for the MG-RISC C subset (docs/FRONTEND.md).
//
// Produces a flat token stream with 1-based line/column positions so
// the parser can emit "name:line:col: message" diagnostics in the same
// shape the assembler uses.  The lexer never throws: malformed input
// becomes Diag entries and lexing continues where possible, which is
// what the ddmin shrinker needs (arbitrary line subsets must fail
// cleanly, not crash).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::frontend {

// One diagnostic, positioned in the original source.
struct Diag {
    int line = 0;  // 1-based
    int col = 0;   // 1-based
    std::string msg;
};

std::string renderDiag(const std::string &name, const Diag &d);

struct Token {
    enum class Kind {
        End,
        Ident,
        Number,
        KwInt,
        KwUnsigned,
        KwVoid,
        KwIf,
        KwElse,
        KwWhile,
        KwDo,
        KwFor,
        KwReturn,
        KwBreak,
        KwContinue,
        Punct,
    };
    Kind kind = Kind::End;
    std::string text;  // identifier spelling / operator spelling
    uint64_t value = 0;        // Number only
    bool isUnsigned = false;   // Number only: 'u' suffix or > INT64_MAX
    int line = 0;
    int col = 0;

    bool is(const char *punct) const {
        return kind == Kind::Punct && text == punct;
    }
};

struct LexResult {
    std::vector<Token> tokens;  // always ends with Kind::End
    std::vector<Diag> diags;
    bool ok() const { return diags.empty(); }
};

LexResult lex(const std::string &source);

}  // namespace mg::frontend
