/**
 * @file
 * Mini-graph candidate enumeration.
 *
 * A candidate is a contiguous run of 2-4 instructions inside one basic
 * block that satisfies the RISC-singleton interface of §2: at most
 * three external register inputs, at most one register output (a
 * value live after the run), at most one memory reference, and at
 * most one control transfer (which, inside a basic block, can only be
 * the final instruction).  Liveness analysis proves the interior
 * values dead outside the candidate.
 *
 * Each candidate carries its canonical template (operations plus
 * dataflow with external inputs numbered in first-use order — the
 * exact content of an MGT entry) and a structural serialization
 * classification used by the Struct-* selectors.
 */

#ifndef MG_MINIGRAPH_CANDIDATE_H
#define MG_MINIGRAPH_CANDIDATE_H

#include <array>
#include <cstdint>
#include <vector>

#include "assembler/cfg.h"
#include "assembler/liveness.h"
#include "assembler/program.h"
#include "isa/minigraph_types.h"

namespace mg::minigraph
{

/** Structural serialization classification (§4.2). */
enum class SerialClass : uint8_t
{
    /** No external input feeds a non-first constituent. */
    NonSerializing,

    /**
     * Potentially serializing, but the delay on the register output is
     * provably bounded by the mini-graph's own latency (every
     * serializing input feeds an ancestor of the output producer, or
     * there is no register output).
     */
    Bounded,

    /** Potentially serializing with unbounded output delay. */
    Unbounded,
};

/** A legal mini-graph candidate at one static location. */
struct Candidate
{
    isa::MgTemplate tmpl;      ///< canonical template (MGT content)
    isa::Addr firstPc = 0;     ///< PC of the first constituent
    uint8_t len = 0;           ///< number of constituents (2-4)
    std::array<uint8_t, isa::kMaxMgInputs> inputRegs{}; ///< per slot
    int outputReg = -1;        ///< architectural output register
    SerialClass serialClass = SerialClass::NonSerializing;

    isa::Addr pcAfter() const { return firstPc + len; }

    /** True if this candidate's instructions overlap the other's. */
    bool
    overlaps(const Candidate &o) const
    {
        return firstPc < o.pcAfter() && o.firstPc < pcAfter();
    }
};

/** Options bounding enumeration. */
struct CandidateOptions
{
    unsigned maxSize = isa::kMaxMgSize;
    unsigned maxInputs = isa::kMaxMgInputs;
    bool allowControl = true; ///< permit a final branch/direct jump
    bool allowMem = true;     ///< permit one load or store
};

/**
 * Enumerate every legal candidate in a program.
 *
 * @param prog  an original (non-rewritten) program
 * @param cfg   its control-flow graph
 * @param live  its liveness analysis
 * @param opts  enumeration limits
 */
std::vector<Candidate> enumerateCandidates(const assembler::Program &prog,
                                           const assembler::Cfg &cfg,
                                           const assembler::Liveness &live,
                                           const CandidateOptions &opts = {});

/** Convenience overload that builds the CFG and liveness itself. */
std::vector<Candidate> enumerateCandidates(const assembler::Program &prog,
                                           const CandidateOptions &opts = {});

} // namespace mg::minigraph

#endif // MG_MINIGRAPH_CANDIDATE_H
