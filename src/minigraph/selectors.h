/**
 * @file
 * The paper's mini-graph selectors.
 *
 * All selectors share the enumeration + greedy-selection machinery and
 * differ in how they prune the pool of *potentially serializing*
 * candidates (those with an external register input to a non-first
 * constituent), plus — for Slack-Dynamic — in the hardware they enable
 * at run time:
 *
 *  - Struct-All      keeps every candidate (§3, serialization-blind).
 *  - Struct-None     rejects every potentially-serializing candidate.
 *  - Struct-Bounded  rejects only candidates whose register-output
 *                    delay is structurally unbounded (§4.2).
 *  - Slack-Profile   applies rules #1-#4 with a local slack profile
 *                    (§4.3); variants -Delay (no rule #4) and -SIAL
 *                    (operand-arrival heuristic) support Figure 7.
 *  - Slack-Dynamic   selects like Struct-All and relies on the
 *                    saturating-counter disable hardware (§4.4);
 *                    Ideal/-Delay/-SIAL variants support Figure 7.
 *  - Slack-Static    applies the whole-program static analyzer's
 *                    serialization bounds (analysis/analyzer.h) with
 *                    no profile run: non-serializing candidates pass,
 *                    recurrence-fed or saturated-arrival candidates
 *                    are rejected, and bounded candidates pass when
 *                    the predicted arrival delay fits within the
 *                    template's own critical-path latency.
 */

#ifndef MG_MINIGRAPH_SELECTORS_H
#define MG_MINIGRAPH_SELECTORS_H

#include <optional>
#include <string>
#include <vector>

#include "minigraph/candidate.h"
#include "minigraph/selection.h"
#include "profile/slack_profile.h"

namespace mg::minigraph
{

/** Every selector (and variant) evaluated in the paper. */
enum class SelectorKind
{
    StructAll,
    StructNone,
    StructBounded,
    SlackProfile,
    SlackProfileDelay,      ///< rules #1-#3 only (Figure 7 top)
    SlackProfileSial,       ///< SIAL heuristic (Figure 7 top)
    SlackDynamic,           ///< Struct-All pool + disable hardware
    IdealSlackDynamic,      ///< ... without the outlining penalty
    IdealSlackDynamicDelay, ///< ... and without the consumer check
    IdealSlackDynamicSial,  ///< ... with the SIAL heuristic
    SlackStatic,            ///< static analyzer bounds, no profile
};

/** Human-readable selector name (as used in the paper's figures). */
std::string selectorName(SelectorKind kind);

// --- Name registry -----------------------------------------------------
//
// Every selector has a short registry name used by the CLI, the batch
// runner's job lists and the tests: struct-all, struct-none,
// struct-bounded, slack-profile, slack-profile-delay,
// slack-profile-sial, slack-dynamic, ideal-slack-dynamic,
// ideal-slack-dynamic-delay, ideal-slack-dynamic-sial, slack-static.

/** Look up a selector by registry name; nullopt for unknown names. */
std::optional<SelectorKind> selectorFromName(const std::string &name);

/** The registry name of a selector (inverse of selectorFromName). */
std::string nameOf(SelectorKind kind);

/** All registry names, in SelectorKind order. */
const std::vector<std::string> &allSelectorNames();

/** Does this selector require a slack profile? */
bool selectorNeedsProfile(SelectorKind kind);

/** Does this selector enable the Slack-Dynamic hardware? */
bool selectorIsDynamic(SelectorKind kind);

/**
 * Slack-Profile model evaluation for one candidate (rules #1-#4 of
 * Figure 5), exposed for tests and the Figure-8 analysis.
 */
struct SlackModelResult
{
    /** Induced delay on each constituent (rule #3). */
    std::array<double, isa::kMaxMgSize> delay{};

    /** Rule #4 outcome: would forming this mini-graph degrade? */
    bool degrades = false;

    /** Any output delayed at all (the -Delay variant's criterion)? */
    bool anyOutputDelayed = false;

    /** Does the last-arriving input feed a non-first constituent? */
    bool serialInputArrivesLast = false;
};

/** Options for the slack model (ablation hooks). */
struct SlackModelOptions
{
    /**
     * Reject self-recurrent aggregates whose recurrent input enters
     * at a non-first constituent (see DESIGN.md §6.3).  On by
     * default; the ablation bench switches it off.
     */
    bool recurrenceGuard = true;
};

/** Evaluate rules #1-#4 for a candidate given a profile. */
SlackModelResult evaluateSlackModel(const Candidate &cand,
                                    const assembler::Program &prog,
                                    const profile::SlackProfileData &prof,
                                    const SlackModelOptions &opts = {});

/**
 * Apply a selector's pool filter.
 *
 * @param all     the full candidate pool
 * @param kind    which selector
 * @param prog    the program (for per-constituent PCs)
 * @param prof    slack profile (required iff selectorNeedsProfile)
 */
std::vector<Candidate> filterPool(const std::vector<Candidate> &all,
                                  SelectorKind kind,
                                  const assembler::Program &prog,
                                  const profile::SlackProfileData *prof);

/**
 * Full static selection pipeline: enumerate, filter, greedily select.
 *
 * @param prog           the original program
 * @param kind           selector
 * @param counts         per-PC execution counts
 * @param prof           slack profile (may be null for Struct-*)
 * @param templateBudget MGT capacity
 */
SelectionResult runSelector(const assembler::Program &prog,
                            SelectorKind kind, const ExecCounts &counts,
                            const profile::SlackProfileData *prof,
                            uint32_t templateBudget = 512);

} // namespace mg::minigraph

#endif // MG_MINIGRAPH_SELECTORS_H
