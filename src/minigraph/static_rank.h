/**
 * @file
 * Candidate-level adapter over the static serialization analyzer.
 *
 * The analysis library (analysis/analyzer.h) bounds serialization
 * behaviour for a (template, site, input registers) tuple; this
 * header adapts it to minigraph::Candidate and defines on top of it:
 *
 *  - the predicted serialization bucket of a candidate — the static
 *    analogue of the dynamic mg-external / mg-internal accounting;
 *  - the Slack-Static keep decision, a profile-free selector filter
 *    that stands in for Slack-Profile when no training run exists
 *    (the "performance with fewer resources *and* no profile" point
 *    in the selector design space, see docs/ANALYSIS.md);
 *  - the `mgsim analyze` per-program report and its deterministic
 *    one-line JSON rendering (golden-snapshotted by the tests).
 */

#ifndef MG_MINIGRAPH_STATIC_RANK_H
#define MG_MINIGRAPH_STATIC_RANK_H

#include <string>

#include "analysis/analyzer.h"
#include "minigraph/candidate.h"

namespace mg::minigraph
{

/** Static serialization prediction for one candidate. */
enum class PredictedSerial : uint8_t
{
    NonSerializing, ///< no serializing input: never waits externally
    Bounded,        ///< serializing, arrival delay statically bounded
    Unbounded,      ///< recurrence-fed or saturated arrival chain
};

/** Static bounds of one candidate (analysis adapter). */
analysis::StaticSerialBounds
staticBoundsFor(const Candidate &cand, const analysis::ProgramAnalysis &pa);

/** Predicted serialization bucket from the static bounds. */
PredictedSerial predictedSerial(const analysis::StaticSerialBounds &b);

/**
 * The Slack-Static filter: keep non-serializing candidates; reject
 * recurrence-fed and saturated ones outright; keep the rest when the
 * serializing inputs' statically-bounded extra arrival delay does not
 * exceed the template's own dataflow critical-path latency (the delay
 * the aggregate can absorb while executing).
 */
bool slackStaticKeep(const Candidate &cand,
                     const analysis::ProgramAnalysis &pa);

/** The `mgsim analyze` per-program report. */
struct AnalyzeReport
{
    std::string program;        ///< program name
    size_t instructions = 0;
    size_t blocks = 0;
    size_t reachableBlocks = 0;
    size_t loops = 0;
    size_t exactTripCounts = 0; ///< loops with a derived trip count
    uint32_t maxLoopDepth = 0;
    uint32_t irreducibleEdges = 0;
    uint64_t maxBlockFrequency = 0;
    uint32_t maxHeight = 0;     ///< largest readiness height
    bool saturated = false;     ///< any height hit the cap

    size_t candidates = 0;
    /** Structural classes (candidate.h). */
    size_t structNonSerializing = 0;
    size_t structBounded = 0;
    size_t structUnbounded = 0;
    /** Predicted buckets (this header). */
    size_t predNonSerializing = 0;
    size_t predBounded = 0;
    size_t predUnbounded = 0;
    /** Candidates the Slack-Static filter keeps. */
    size_t slackStaticKept = 0;
};

/** Analyze one program (builds the ProgramAnalysis internally). */
AnalyzeReport analyzeProgram(const assembler::Program &prog);

/**
 * Deterministic one-line JSON rendering of a report: fixed key order,
 * integer-only values, byte-identical across runs and job counts (the
 * PR-3 stats-JSON contract; golden-snapshotted in tests/golden/).
 */
std::string analyzeReportJson(const AnalyzeReport &rep);

} // namespace mg::minigraph

#endif // MG_MINIGRAPH_STATIC_RANK_H
