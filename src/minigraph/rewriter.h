/**
 * @file
 * Binary rewriter: applies a set of selected mini-graphs to a program
 * using the "outlining" encoding (§2, Figure 2).
 *
 * At each chosen site, the first constituent is replaced by an
 * MGHANDLE and the remaining slots by ELIDED holes (outlining removes
 * them from the fetch image; the I$ indexes a compacted layout).  A
 * copy of the original singleton body, terminated by a jump back to
 * the fall-through point, is appended at the end of the code: that is
 * the outlined form a non-mini-graph processor — or a mini-graph
 * processor that has dynamically *disabled* the handle — executes.
 */

#ifndef MG_MINIGRAPH_REWRITER_H
#define MG_MINIGRAPH_REWRITER_H

#include <vector>

#include "assembler/program.h"
#include "isa/minigraph_types.h"
#include "minigraph/candidate.h"

namespace mg::minigraph
{

/** A rewritten binary: program image plus its mini-graph side table. */
struct RewrittenProgram
{
    assembler::Program program;
    isa::MgBinaryInfo info;

    /** Static mini-graph instances in the binary. */
    size_t instanceCount() const { return info.instances.size(); }
};

/**
 * Rewrite a program with the chosen (pairwise-disjoint) mini-graphs.
 *
 * @param orig   the original program
 * @param chosen disjoint candidates (from selectGreedy)
 */
RewrittenProgram rewrite(const assembler::Program &orig,
                         const std::vector<Candidate> &chosen);

} // namespace mg::minigraph

#endif // MG_MINIGRAPH_REWRITER_H
