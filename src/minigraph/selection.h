/**
 * @file
 * Budgeted greedy mini-graph selection (§2, "Selection").
 *
 * Candidates from multiple static locations that share a template are
 * grouped; each template's coverage score is sum_instances (n-1)*f
 * where n is the template size and f the profiled execution frequency
 * of the instance.  Selection repeatedly takes the highest-scoring
 * template, claims its still-unclaimed instances (mini-graphs must be
 * disjoint), discounts the survivors, and stops at the MGT budget.
 */

#ifndef MG_MINIGRAPH_SELECTION_H
#define MG_MINIGRAPH_SELECTION_H

#include <cstdint>
#include <vector>

#include "minigraph/candidate.h"

namespace mg::minigraph
{

/** Per-PC dynamic execution counts (index == PC). */
using ExecCounts = std::vector<uint64_t>;

/** Result of the selection pass. */
struct SelectionResult
{
    /** Chosen, pairwise-disjoint candidate instances. */
    std::vector<Candidate> chosen;

    /** Number of distinct MGT templates used. */
    uint32_t templatesUsed = 0;

    /** Predicted dynamic coverage: covered insts / total insts. */
    double predictedCoverage = 0.0;
};

/**
 * Greedily select mini-graphs from a (selector-filtered) pool.
 *
 * @param pool            candidate pool
 * @param counts          per-PC dynamic execution counts
 * @param templateBudget  MGT capacity (512 in Table 1)
 */
SelectionResult selectGreedy(const std::vector<Candidate> &pool,
                             const ExecCounts &counts,
                             uint32_t templateBudget);

} // namespace mg::minigraph

#endif // MG_MINIGRAPH_SELECTION_H
