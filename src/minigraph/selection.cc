#include "minigraph/selection.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace mg::minigraph
{

namespace
{

/** All instances of one canonical template. */
struct TemplateGroup
{
    std::vector<size_t> instances; ///< indices into the pool
};

} // namespace

SelectionResult
selectGreedy(const std::vector<Candidate> &pool, const ExecCounts &counts,
             uint32_t template_budget)
{
    SelectionResult result;
    if (pool.empty())
        return result;

    auto freq = [&](const Candidate &c) -> uint64_t {
        return c.firstPc < counts.size() ? counts[c.firstPc] : 0;
    };

    // Group candidates by canonical template.
    std::unordered_map<size_t, std::vector<uint32_t>> by_hash;
    std::vector<TemplateGroup> groups;
    for (size_t i = 0; i < pool.size(); ++i) {
        size_t h = pool[i].tmpl.hash();
        auto &bucket = by_hash[h];
        bool placed = false;
        for (uint32_t g : bucket) {
            if (pool[groups[g].instances.front()].tmpl == pool[i].tmpl) {
                groups[g].instances.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed) {
            bucket.push_back(static_cast<uint32_t>(groups.size()));
            groups.push_back(TemplateGroup{{i}});
        }
    }

    // Claimed static instructions (selected mini-graphs are disjoint).
    size_t code_size = counts.size();
    std::vector<bool> claimed(code_size, false);
    auto instance_free = [&](const Candidate &c) {
        for (isa::Addr pc = c.firstPc; pc < c.pcAfter(); ++pc) {
            if (pc < code_size && claimed[pc])
                return false;
        }
        return true;
    };

    auto group_score = [&](const TemplateGroup &g) -> uint64_t {
        uint64_t score = 0;
        for (size_t i : g.instances) {
            const Candidate &c = pool[i];
            if (instance_free(c))
                score += static_cast<uint64_t>(c.len - 1) * freq(c);
        }
        return score;
    };

    // Lazy greedy: scores only decrease as instances get claimed, so a
    // popped entry whose recomputed score still tops the queue is the
    // true maximum.
    using Entry = std::pair<uint64_t, uint32_t>; // (score, group)
    std::priority_queue<Entry> heap;
    for (uint32_t g = 0; g < groups.size(); ++g) {
        uint64_t s = group_score(groups[g]);
        if (s > 0)
            heap.emplace(s, g);
    }

    while (!heap.empty() && result.templatesUsed < template_budget) {
        auto [stale_score, g] = heap.top();
        heap.pop();
        uint64_t score = group_score(groups[g]);
        if (score == 0)
            continue;
        if (!heap.empty() && score < heap.top().first) {
            heap.emplace(score, g);
            continue;
        }

        // Choose this template: claim every still-free instance.
        bool took_any = false;
        for (size_t i : groups[g].instances) {
            const Candidate &c = pool[i];
            if (!instance_free(c))
                continue;
            for (isa::Addr pc = c.firstPc; pc < c.pcAfter(); ++pc) {
                if (pc < code_size)
                    claimed[pc] = true;
            }
            result.chosen.push_back(c);
            took_any = true;
        }
        if (took_any)
            ++result.templatesUsed;
    }

    // Predicted coverage over all executed instructions.
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    uint64_t covered = 0;
    for (const Candidate &c : result.chosen)
        covered += static_cast<uint64_t>(c.len) * freq(c);
    result.predictedCoverage =
        total ? static_cast<double>(covered) / static_cast<double>(total)
              : 0.0;
    return result;
}

} // namespace mg::minigraph
