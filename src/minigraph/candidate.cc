#include "minigraph/candidate.h"

#include <algorithm>

#include "common/logging.h"

namespace mg::minigraph
{

using assembler::BasicBlock;
using assembler::Cfg;
using assembler::Liveness;
using assembler::Program;
using isa::Addr;
using isa::Instruction;
using isa::MgConstituent;
using isa::MgSrcKind;
using isa::MgTemplate;
using isa::Opcode;

namespace
{

/** May this opcode appear inside a mini-graph at all? */
bool
opcodeAllowed(Opcode op, const CandidateOptions &opts)
{
    const isa::OpInfo &info = isa::opInfo(op);
    switch (info.execClass) {
      case isa::ExecClass::IntAlu:
        return true;
      case isa::ExecClass::IntComplex:
        // Constituents execute on simple ALU pipelines; multi-cycle
        // complex units are not part of an ALU pipeline.
        return false;
      case isa::ExecClass::MemRead:
      case isa::ExecClass::MemWrite:
        return opts.allowMem;
      case isa::ExecClass::Control:
        // Only conditional branches and direct jumps (calls and
        // indirect jumps have link/indirect side effects that break
        // the singleton interface).
        return opts.allowControl &&
               (isa::isCondBranch(op) || op == Opcode::J);
      case isa::ExecClass::Nop:
      case isa::ExecClass::MgHandle:
        return false;
    }
    return false;
}

/** Builder that grows a window one instruction at a time. */
class WindowBuilder
{
  public:
    WindowBuilder(const Program &program, const CandidateOptions &options,
                  Addr first_pc)
        : prog(program), opts(options), firstPc(first_pc)
    {
        defOf.fill(-1);
    }

    /**
     * Try to extend the window with the instruction at pc.
     * @retval false if the extension violates an interface constraint
     *         (in which case the builder must be discarded).
     */
    bool
    append(Addr pc)
    {
        const Instruction &inst = prog.at(pc);
        if (!opcodeAllowed(inst.op, opts))
            return false;
        if (inst.isMem() && ++memOps > 1)
            return false;
        if (inst.isControl() && tmpl.hasControl)
            return false; // only one (and it ends the block anyway)

        unsigned k = tmpl.size();
        MgConstituent c;
        c.op = inst.op;
        c.imm = inst.imm;

        const isa::OpInfo &info = isa::opInfo(inst.op);
        if (info.readsRs1 && !bindSource(inst.rs1, c.src1Kind, c.src1))
            return false;
        if (info.readsRs2 && !bindSource(inst.rs2, c.src2Kind, c.src2))
            return false;

        if (inst.isControl()) {
            // Store control targets as displacements from the handle
            // PC so identical loops at different addresses share one
            // template.
            c.imm = inst.imm - static_cast<int64_t>(firstPc);
            tmpl.hasControl = true;
            tmpl.condControl = inst.isCondBranch();
        }
        if (inst.isMem())
            tmpl.hasMem = true;

        int dest = inst.destReg();
        if (dest >= 0)
            defOf[static_cast<size_t>(dest)] = static_cast<int>(k);

        tmpl.ops.push_back(c);
        return true;
    }

    /**
     * Finalise the window [firstPc, firstPc+len) into a candidate.
     * @retval false if the output interface is violated (more than
     *         one live-out value).
     */
    bool
    finalize(const Liveness &live, Candidate &out)
    {
        Addr last_pc = firstPc + tmpl.size() - 1;
        assembler::RegSet live_after = live.liveAfter(last_pc);

        int output_reg = -1;
        int output_idx = -1;
        for (unsigned r = 1; r < isa::kNumArchRegs; ++r) {
            if (defOf[r] < 0 || !assembler::regIn(live_after, r))
                continue;
            if (output_reg >= 0)
                return false; // two live-out values
            output_reg = static_cast<int>(r);
            output_idx = defOf[r];
        }

        tmpl.numInputs = static_cast<uint8_t>(numExternals);
        tmpl.hasOutput = output_reg >= 0;
        tmpl.outputIdx = output_idx;
        if (output_idx >= 0)
            tmpl.ops[static_cast<size_t>(output_idx)].producesOutput = true;

        out.tmpl = tmpl;
        out.firstPc = firstPc;
        out.len = static_cast<uint8_t>(tmpl.size());
        out.inputRegs = externalRegs;
        out.outputReg = output_reg;
        out.serialClass = classify(out.tmpl);
        return true;
    }

  private:
    /** Map a read register to an external slot or internal producer. */
    bool
    bindSource(uint8_t reg, MgSrcKind &kind, uint8_t &idx)
    {
        if (reg == isa::kZeroReg) {
            kind = MgSrcKind::None;
            idx = 0;
            return true;
        }
        int def = defOf[reg];
        if (def >= 0) {
            kind = MgSrcKind::Internal;
            idx = static_cast<uint8_t>(def);
            return true;
        }
        // External: reuse or allocate a slot.
        for (unsigned s = 0; s < numExternals; ++s) {
            if (externalRegs[s] == reg) {
                kind = MgSrcKind::External;
                idx = static_cast<uint8_t>(s);
                return true;
            }
        }
        if (numExternals >= opts.maxInputs)
            return false;
        externalRegs[numExternals] = reg;
        kind = MgSrcKind::External;
        idx = static_cast<uint8_t>(numExternals);
        ++numExternals;
        return true;
    }

    /** Structural serialization classification (§4.2). */
    static SerialClass
    classify(const MgTemplate &t)
    {
        if (!t.hasSerializingInput())
            return SerialClass::NonSerializing;
        if (t.outputIdx < 0) {
            // No register output to delay: the only delayed outputs
            // are stores/branches, which Struct-Bounded's heuristic
            // treats as bounded (§4.2).
            return SerialClass::Bounded;
        }

        // Ancestor bitmasks over internal dataflow.
        std::array<uint8_t, isa::kMaxMgSize> anc{};
        for (unsigned k = 0; k < t.size(); ++k) {
            const MgConstituent &c = t.ops[k];
            uint8_t a = 0;
            if (c.src1Kind == MgSrcKind::Internal)
                a |= static_cast<uint8_t>(anc[c.src1] | (1u << c.src1));
            if (c.src2Kind == MgSrcKind::Internal)
                a |= static_cast<uint8_t>(anc[c.src2] | (1u << c.src2));
            anc[k] = a;
        }
        uint8_t out_anc = static_cast<uint8_t>(
            anc[t.outputIdx] | (1u << t.outputIdx));

        // Every constituent fed by a serializing input must be
        // upstream of (or be) the output producer.
        for (unsigned k = 1; k < t.size(); ++k) {
            const MgConstituent &c = t.ops[k];
            bool fed = c.src1Kind == MgSrcKind::External ||
                       c.src2Kind == MgSrcKind::External;
            if (fed && !(out_anc & (1u << k)))
                return SerialClass::Unbounded;
        }
        return SerialClass::Bounded;
    }

    const Program &prog;
    const CandidateOptions &opts;
    Addr firstPc;
    MgTemplate tmpl;
    std::array<int, isa::kNumArchRegs> defOf;
    std::array<uint8_t, isa::kMaxMgInputs> externalRegs{};
    unsigned numExternals = 0;
    unsigned memOps = 0;
};

} // namespace

std::vector<Candidate>
enumerateCandidates(const Program &prog, const Cfg &cfg,
                    const Liveness &live, const CandidateOptions &opts)
{
    std::vector<Candidate> out;
    for (const BasicBlock &bb : cfg.blocks()) {
        for (Addr start = bb.first; start + 1 <= bb.last; ++start) {
            // Grow incrementally; emit a candidate at every legal
            // length >= 2.
            WindowBuilder builder(prog, opts, start);
            bool alive = true;
            for (unsigned len = 1; len <= opts.maxSize && alive; ++len) {
                Addr pc = start + len - 1;
                if (pc > bb.last)
                    break;
                alive = builder.append(pc);
                if (!alive)
                    break;
                if (len >= 2) {
                    // finalize() mutates template output marking, so
                    // work on a copy.
                    WindowBuilder snapshot = builder;
                    Candidate cand;
                    if (snapshot.finalize(live, cand))
                        out.push_back(std::move(cand));
                }
            }
        }
    }
    return out;
}

std::vector<Candidate>
enumerateCandidates(const Program &prog, const CandidateOptions &opts)
{
    Cfg cfg(prog);
    Liveness live(cfg);
    return enumerateCandidates(prog, cfg, live, opts);
}

} // namespace mg::minigraph
