#include "minigraph/rewriter.h"

#include <unordered_map>

#include "common/logging.h"

namespace mg::minigraph
{

using assembler::Program;
using isa::Addr;
using isa::Instruction;
using isa::MgInstance;
using isa::MgTemplate;
using isa::Opcode;

RewrittenProgram
rewrite(const Program &orig, const std::vector<Candidate> &chosen)
{
    RewrittenProgram out;
    out.program = orig;
    out.program.name = orig.name;

    // Deduplicate templates (instances of one template share an MGT
    // entry).
    std::unordered_map<size_t, std::vector<uint16_t>> tmpl_by_hash;
    auto intern_template = [&](const MgTemplate &t) -> uint16_t {
        auto &bucket = tmpl_by_hash[t.hash()];
        for (uint16_t idx : bucket) {
            if (out.info.templates[idx] == t)
                return idx;
        }
        mg_assert(out.info.templates.size() < 0xffff, "template overflow");
        uint16_t idx = static_cast<uint16_t>(out.info.templates.size());
        out.info.templates.push_back(t);
        bucket.push_back(idx);
        return idx;
    };

    for (const Candidate &c : chosen) {
        // Sanity: disjointness and bounds.
        mg_assert(c.firstPc + c.len <= orig.code.size(),
                  "candidate out of range at pc %u", c.firstPc);
        for (Addr pc = c.firstPc; pc < c.pcAfter(); ++pc) {
            mg_assert(!out.program.code[pc].isHandle() &&
                          !out.program.code[pc].isElided(),
                      "overlapping mini-graphs at pc %u", pc);
        }

        uint16_t tmpl_idx = intern_template(c.tmpl);

        // Handle at the first slot.
        Instruction handle;
        handle.op = Opcode::MGHANDLE;
        handle.mgIndex = tmpl_idx;
        handle.numSrcs = c.tmpl.numInputs;
        handle.rs1 = c.tmpl.numInputs >= 1 ? c.inputRegs[0] : 0;
        handle.rs2 = c.tmpl.numInputs >= 2 ? c.inputRegs[1] : 0;
        handle.rs3 = c.tmpl.numInputs >= 3 ? c.inputRegs[2] : 0;
        handle.hasDest = c.outputReg >= 0;
        handle.rd = c.outputReg >= 0 ? static_cast<uint8_t>(c.outputReg)
                                     : 0;
        out.program.code[c.firstPc] = handle;
        for (Addr pc = c.firstPc + 1; pc < c.pcAfter(); ++pc) {
            Instruction hole;
            hole.op = Opcode::ELIDED;
            out.program.code[pc] = hole;
        }

        // Outlined singleton body appended at the end of the image.
        Addr outlined_pc = static_cast<Addr>(out.program.code.size());
        MgInstance inst;
        inst.handlePc = c.firstPc;
        inst.templateIdx = tmpl_idx;
        inst.outlinedPc = outlined_pc;
        inst.pcAfter = c.pcAfter();
        for (Addr pc = c.firstPc; pc < c.pcAfter(); ++pc) {
            inst.constituentPcs.push_back(pc);
            out.program.code.push_back(orig.code[pc]);
            out.info.outlinedBodyPcs.insert(
                static_cast<Addr>(out.program.code.size() - 1));
        }
        Addr jump_pc = static_cast<Addr>(out.program.code.size());
        out.program.code.push_back(isa::makeJump(inst.pcAfter));
        out.info.outliningJumpPcs.insert(jump_pc);

        out.info.instances.emplace(c.firstPc, std::move(inst));
    }

    return out;
}

} // namespace mg::minigraph
