#include "minigraph/selectors.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "minigraph/static_rank.h"

namespace mg::minigraph
{

using isa::MgConstituent;
using isa::MgSrcKind;
using isa::MgTemplate;

std::string
selectorName(SelectorKind kind)
{
    switch (kind) {
      case SelectorKind::StructAll: return "Struct-All";
      case SelectorKind::StructNone: return "Struct-None";
      case SelectorKind::StructBounded: return "Struct-Bounded";
      case SelectorKind::SlackProfile: return "Slack-Profile";
      case SelectorKind::SlackProfileDelay: return "Slack-Profile-Delay";
      case SelectorKind::SlackProfileSial: return "Slack-Profile-SIAL";
      case SelectorKind::SlackDynamic: return "Slack-Dynamic";
      case SelectorKind::IdealSlackDynamic: return "Ideal-Slack-Dynamic";
      case SelectorKind::IdealSlackDynamicDelay:
        return "Ideal-Slack-Dynamic-Delay";
      case SelectorKind::IdealSlackDynamicSial:
        return "Ideal-Slack-Dynamic-SIAL";
      case SelectorKind::SlackStatic: return "Slack-Static";
    }
    return "?";
}

namespace
{

struct SelectorEntry
{
    const char *name;
    SelectorKind kind;
};

constexpr SelectorEntry kSelectorRegistry[] = {
    {"struct-all", SelectorKind::StructAll},
    {"struct-none", SelectorKind::StructNone},
    {"struct-bounded", SelectorKind::StructBounded},
    {"slack-profile", SelectorKind::SlackProfile},
    {"slack-profile-delay", SelectorKind::SlackProfileDelay},
    {"slack-profile-sial", SelectorKind::SlackProfileSial},
    {"slack-dynamic", SelectorKind::SlackDynamic},
    {"ideal-slack-dynamic", SelectorKind::IdealSlackDynamic},
    {"ideal-slack-dynamic-delay", SelectorKind::IdealSlackDynamicDelay},
    {"ideal-slack-dynamic-sial", SelectorKind::IdealSlackDynamicSial},
    {"slack-static", SelectorKind::SlackStatic},
};

} // namespace

std::optional<SelectorKind>
selectorFromName(const std::string &name)
{
    for (const auto &e : kSelectorRegistry) {
        if (name == e.name)
            return e.kind;
    }
    return std::nullopt;
}

std::string
nameOf(SelectorKind kind)
{
    for (const auto &e : kSelectorRegistry) {
        if (kind == e.kind)
            return e.name;
    }
    return "";
}

const std::vector<std::string> &
allSelectorNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : kSelectorRegistry)
            out.emplace_back(e.name);
        return out;
    }();
    return names;
}

bool
selectorNeedsProfile(SelectorKind kind)
{
    return kind == SelectorKind::SlackProfile ||
           kind == SelectorKind::SlackProfileDelay ||
           kind == SelectorKind::SlackProfileSial;
}

bool
selectorIsDynamic(SelectorKind kind)
{
    switch (kind) {
      case SelectorKind::SlackDynamic:
      case SelectorKind::IdealSlackDynamic:
      case SelectorKind::IdealSlackDynamicDelay:
      case SelectorKind::IdealSlackDynamicSial:
        return true;
      default:
        return false;
    }
}

SlackModelResult
evaluateSlackModel(const Candidate &cand,
                   const assembler::Program & /* prog */,
                   const profile::SlackProfileData &prof,
                   const SlackModelOptions &opts)
{
    SlackModelResult out;
    const MgTemplate &t = cand.tmpl;
    unsigned n = t.size();

    // Per-constituent profile entries (by original PC).  Instructions
    // with no profile data never executed; the model trivially accepts
    // (their frequency is zero, so selection ignores them anyway).
    std::array<const profile::ProfileEntry *, isa::kMaxMgSize> pe{};
    for (unsigned k = 0; k < n; ++k) {
        pe[k] = prof.at(cand.firstPc + k);
        if (!pe[k])
            return out;
    }

    // Ready(i) per external input slot: the observed ready time of
    // that value at whichever constituent consumes it (max over
    // consumers — the same value, possibly differing estimates).
    std::array<double, isa::kMaxMgInputs> input_ready;
    std::array<bool, isa::kMaxMgInputs> input_seen{};
    input_ready.fill(-1e9);
    for (unsigned k = 0; k < n; ++k) {
        const MgConstituent &c = t.ops[k];
        auto consider = [&](MgSrcKind kind, uint8_t idx, int slot) {
            if (kind != MgSrcKind::External || slot >= 2)
                return;
            double r = pe[k]->srcReadyRel[slot];
            if (input_seen[idx])
                input_ready[idx] = std::max(input_ready[idx], r);
            else
                input_ready[idx] = r;
            input_seen[idx] = true;
        };
        consider(c.src1Kind, c.src1, 0);
        consider(c.src2Kind, c.src2, 1);
    }

    // Rule #1 (external serialization): the handle issues once every
    // input is ready, no earlier than the first constituent's own
    // issue time.
    double issue0 = pe[0]->issueRel;
    double issue_mg = issue0;
    for (unsigned s = 0; s < t.numInputs; ++s) {
        if (input_seen[s])
            issue_mg = std::max(issue_mg, input_ready[s]);
    }

    // SIAL: does the latest-arriving input feed a non-first
    // constituent (and actually arrive after the first instruction
    // could have issued)?
    double last_ready = -1e9;
    int last_slot = -1;
    for (unsigned s = 0; s < t.numInputs; ++s) {
        if (input_seen[s] && input_ready[s] > last_ready) {
            last_ready = input_ready[s];
            last_slot = static_cast<int>(s);
        }
    }
    out.serialInputArrivesLast =
        last_slot >= 0 &&
        t.inputIsSerializing(static_cast<uint8_t>(last_slot)) &&
        last_ready > issue0;

    // Loop-carried recurrence guard.  Rule #3 evaluates one instance
    // against the singleton schedule, which is blind to a mini-graph
    // whose own output feeds its next dynamic instance (§5.4: the
    // model "assesses mini-graphs in isolation").  If the recurrent
    // register enters the aggregate at a non-first consumer, atomic
    // issue stretches that register's recurrence from the singleton
    // sub-chain to the aggregate's full prefix latency; the extra
    // delay compounds every iteration and no local slack can absorb
    // it.  Reject such candidates outright.
    for (unsigned s = 0; opts.recurrenceGuard && s < t.numInputs; ++s) {
        if (cand.outputReg < 0 ||
            cand.inputRegs[s] != static_cast<uint8_t>(cand.outputReg)) {
            continue;
        }
        int first_consumer = -1;
        for (unsigned k = 0; k < n && first_consumer < 0; ++k) {
            const MgConstituent &c = t.ops[k];
            if ((c.src1Kind == MgSrcKind::External && c.src1 == s) ||
                (c.src2Kind == MgSrcKind::External && c.src2 == s)) {
                first_consumer = static_cast<int>(k);
            }
        }
        if (first_consumer > 0) {
            out.degrades = true;
            out.anyOutputDelayed = true;
        }
    }

    // Rules #2 and #3: internal serialization and per-constituent
    // delay.  Execution latencies are optimistic (cache hits) — the
    // mcf footnote in §5.1.
    constexpr double kEps = 0.5;
    double issue_k = issue_mg;
    for (unsigned k = 0; k < n; ++k) {
        if (k > 0)
            issue_k += isa::opInfo(t.ops[k - 1].op).latency;
        double delay = issue_k - pe[k]->issueRel;
        out.delay[k] = std::max(delay, 0.0);

        // Rule #4 (performance degradation): compare each output's
        // delay against its local slack.
        const MgConstituent &c = t.ops[k];
        bool is_reg_output = static_cast<int>(k) == t.outputIdx;
        bool is_store = isa::isStore(c.op);
        bool is_branch = isa::isCondBranch(c.op);
        if (is_reg_output || is_store || is_branch) {
            if (out.delay[k] > kEps)
                out.anyOutputDelayed = true;
            double slack = is_reg_output ? pe[k]->slack
                         : is_store      ? pe[k]->storeSlack
                                         : pe[k]->branchSlack;
            if (out.delay[k] > slack + kEps)
                out.degrades = true;
        }
    }
    return out;
}

std::vector<Candidate>
filterPool(const std::vector<Candidate> &all, SelectorKind kind,
           const assembler::Program &prog,
           const profile::SlackProfileData *prof)
{
    mg_assert(!selectorNeedsProfile(kind) || prof,
              "%s requires a slack profile", selectorName(kind).c_str());

    // Slack-Static replaces the profile with the static analyzer,
    // built once per pool.
    std::unique_ptr<analysis::ProgramAnalysis> pa;
    if (kind == SelectorKind::SlackStatic)
        pa = std::make_unique<analysis::ProgramAnalysis>(prog);

    std::vector<Candidate> out;
    out.reserve(all.size());
    for (const Candidate &c : all) {
        bool keep = true;
        switch (kind) {
          case SelectorKind::StructAll:
          case SelectorKind::SlackDynamic:
          case SelectorKind::IdealSlackDynamic:
          case SelectorKind::IdealSlackDynamicDelay:
          case SelectorKind::IdealSlackDynamicSial:
            keep = true;
            break;
          case SelectorKind::StructNone:
            keep = c.serialClass == SerialClass::NonSerializing;
            break;
          case SelectorKind::StructBounded:
            keep = c.serialClass != SerialClass::Unbounded;
            break;
          case SelectorKind::SlackProfile: {
            SlackModelResult m = evaluateSlackModel(c, prog, *prof);
            keep = !m.degrades;
            break;
          }
          case SelectorKind::SlackProfileDelay: {
            SlackModelResult m = evaluateSlackModel(c, prog, *prof);
            keep = !m.anyOutputDelayed;
            break;
          }
          case SelectorKind::SlackProfileSial: {
            SlackModelResult m = evaluateSlackModel(c, prog, *prof);
            keep = !m.serialInputArrivesLast;
            break;
          }
          case SelectorKind::SlackStatic:
            keep = slackStaticKeep(c, *pa);
            break;
        }
        if (keep)
            out.push_back(c);
    }
    return out;
}

SelectionResult
runSelector(const assembler::Program &prog, SelectorKind kind,
            const ExecCounts &counts,
            const profile::SlackProfileData *prof,
            uint32_t template_budget)
{
    std::vector<Candidate> pool = enumerateCandidates(prog);
    std::vector<Candidate> filtered = filterPool(pool, kind, prog, prof);
    return selectGreedy(filtered, counts, template_budget);
}

} // namespace mg::minigraph
