#include "minigraph/static_rank.h"

#include <algorithm>
#include <cstdio>

namespace mg::minigraph
{

using analysis::ProgramAnalysis;
using analysis::StaticSerialBounds;

analysis::StaticSerialBounds
staticBoundsFor(const Candidate &cand, const ProgramAnalysis &pa)
{
    return analysis::staticSerialBounds(pa, cand.tmpl, cand.firstPc,
                                        cand.len, cand.inputRegs,
                                        cand.outputReg);
}

PredictedSerial
predictedSerial(const StaticSerialBounds &b)
{
    if (!b.hasSerializingInput)
        return PredictedSerial::NonSerializing;
    if (b.recurrent || b.saturated)
        return PredictedSerial::Unbounded;
    return PredictedSerial::Bounded;
}

bool
slackStaticKeep(const Candidate &cand, const ProgramAnalysis &pa)
{
    StaticSerialBounds b = staticBoundsFor(cand, pa);
    switch (predictedSerial(b)) {
      case PredictedSerial::NonSerializing:
        return true;
      case PredictedSerial::Unbounded:
        return false;
      case PredictedSerial::Bounded:
        return b.externalDelayBound() <= cand.tmpl.criticalLatency();
    }
    return false;
}

AnalyzeReport
analyzeProgram(const assembler::Program &prog)
{
    ProgramAnalysis pa(prog);
    AnalyzeReport rep;
    rep.program = prog.name;
    rep.instructions = prog.size();
    rep.blocks = pa.cfg().blocks().size();
    rep.reachableBlocks = pa.dominators().reachableCount();
    rep.loops = pa.loops().loops().size();
    for (const analysis::Loop &l : pa.loops().loops()) {
        if (l.tripCountExact)
            ++rep.exactTripCounts;
    }
    rep.maxLoopDepth = pa.loops().maxDepth();
    rep.irreducibleEdges = pa.loops().irreducibleEdges();
    for (const assembler::BasicBlock &bb : pa.cfg().blocks()) {
        rep.maxBlockFrequency =
            std::max(rep.maxBlockFrequency, pa.loops().frequencyOf(bb.id));
    }
    rep.maxHeight = pa.dataflow().maxHeight();
    rep.saturated = pa.dataflow().saturated();

    auto pool = enumerateCandidates(prog, pa.cfg(), pa.liveness());
    rep.candidates = pool.size();
    for (const Candidate &c : pool) {
        switch (c.serialClass) {
          case SerialClass::NonSerializing: ++rep.structNonSerializing;
            break;
          case SerialClass::Bounded: ++rep.structBounded; break;
          case SerialClass::Unbounded: ++rep.structUnbounded; break;
        }
        switch (predictedSerial(staticBoundsFor(c, pa))) {
          case PredictedSerial::NonSerializing: ++rep.predNonSerializing;
            break;
          case PredictedSerial::Bounded: ++rep.predBounded; break;
          case PredictedSerial::Unbounded: ++rep.predUnbounded; break;
        }
        if (slackStaticKeep(c, pa))
            ++rep.slackStaticKept;
    }
    return rep;
}

namespace
{

/** Minimal JSON string escape (names are identifiers or paths). */
std::string
escape(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
            continue;
        }
        out += ch;
    }
    return out;
}

} // namespace

std::string
analyzeReportJson(const AnalyzeReport &r)
{
    std::string out = "{\"program\":\"" + escape(r.program) + "\"";
    auto field = [&out](const char *key, uint64_t v) {
        out += ",\"";
        out += key;
        out += "\":";
        out += std::to_string(v);
    };
    field("instructions", r.instructions);
    field("blocks", r.blocks);
    field("reachable_blocks", r.reachableBlocks);
    field("loops", r.loops);
    field("exact_trip_counts", r.exactTripCounts);
    field("max_loop_depth", r.maxLoopDepth);
    field("irreducible_edges", r.irreducibleEdges);
    field("max_block_freq", r.maxBlockFrequency);
    field("max_height", r.maxHeight);
    field("saturated", r.saturated ? 1 : 0);
    field("candidates", r.candidates);
    field("struct_nonserializing", r.structNonSerializing);
    field("struct_bounded", r.structBounded);
    field("struct_unbounded", r.structUnbounded);
    field("pred_nonserializing", r.predNonSerializing);
    field("pred_bounded", r.predBounded);
    field("pred_unbounded", r.predUnbounded);
    field("slack_static_kept", r.slackStaticKept);
    out += "}";
    return out;
}

} // namespace mg::minigraph
