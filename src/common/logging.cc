#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace mg
{

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

CheckError::CheckError(const char *file, int line, const char *expr_text,
                       const std::string &msg)
    : std::runtime_error("check failed: " + std::string(expr_text) +
                         " at " + file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : " — " + msg)),
      srcFile(file), srcLine(line), expr(expr_text)
{
}

void
checkFailImpl(const char *file, int line, const char *expr,
              const std::string &msg)
{
    throw CheckError(file, line, expr, msg);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing (rather than exit(1)) lets tests exercise fatal paths.
    throw std::runtime_error(msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace mg
