#include "common/string_util.h"

#include <cctype>
#include <cstdlib>

namespace mg
{

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    if (s.empty())
        return false;
    std::string tmp(s);
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(tmp.c_str(), &end, 0);
    if (errno != 0 || end == tmp.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

uint64_t
fnv1a64(std::string_view text)
{
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex64(uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace mg
