/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors
 * (bad configuration, malformed assembly input), warn()/inform()
 * are non-terminating status channels.
 */

#ifndef MG_COMMON_LOGGING_H
#define MG_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mg
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of strprintf(). */
std::string vstrprintf(const char *fmt, va_list args);

/**
 * Thrown by mg_check on an invariant-audit failure.  Unlike mg_panic
 * (which aborts: the process state is unusable), an audit failure is a
 * *diagnosis* — the auditor caught the model in an illegal state — so
 * it propagates as an exception that tests can assert on and the
 * parallel runner can turn into a per-job error.
 */
class CheckError : public std::runtime_error
{
  public:
    CheckError(const char *file, int line, const char *expr,
               const std::string &msg);

    const std::string &file() const { return srcFile; }
    int line() const { return srcLine; }
    const std::string &expression() const { return expr; }

  private:
    std::string srcFile;
    int srcLine;
    std::string expr;
};

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void checkFailImpl(const char *file, int line,
                                const char *expr, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Abort due to an internal invariant violation (a library bug). */
#define mg_panic(...) \
    ::mg::panicImpl(__FILE__, __LINE__, ::mg::strprintf(__VA_ARGS__))

/** Terminate due to a user-caused error (bad input or configuration). */
#define mg_fatal(...) \
    ::mg::fatalImpl(__FILE__, __LINE__, ::mg::strprintf(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define mg_warn(...) ::mg::warnImpl(::mg::strprintf(__VA_ARGS__))

/** Informational message to stderr. */
#define mg_inform(...) ::mg::informImpl(::mg::strprintf(__VA_ARGS__))

/**
 * Assert an internal invariant with a formatted message.  The message
 * captures the failed expression text and the file:line of the assert
 * site (panicImpl prints and aborts).  Always on, including -DNDEBUG
 * builds: the simulator's asserts are part of its contract.
 */
#define mg_assert(cond, ...)                                        \
    do {                                                            \
        if (!(cond)) {                                              \
            ::mg::panicImpl(__FILE__, __LINE__,                     \
                            std::string("assertion failed: " #cond  \
                                        " at " __FILE__ ":") +      \
                                std::to_string(__LINE__) + " — " +  \
                                ::mg::strprintf(__VA_ARGS__));      \
        }                                                           \
    } while (0)

/**
 * Always-on audit check: throws CheckError (with the expression text
 * and file:line baked into the message) instead of aborting.  Used by
 * the invariant auditor and the mini-graph linter so that seeded-fault
 * tests can catch the failure and batch jobs can report it as a
 * per-job error; stays active under -DNDEBUG so release builds still
 * audit when MG_CHECKS is on.
 */
#define mg_check(cond, ...)                                         \
    do {                                                            \
        if (!(cond)) {                                              \
            ::mg::checkFailImpl(__FILE__, __LINE__, #cond,          \
                                ::mg::strprintf(__VA_ARGS__));      \
        }                                                           \
    } while (0)

} // namespace mg

#endif // MG_COMMON_LOGGING_H
