/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors
 * (bad configuration, malformed assembly input), warn()/inform()
 * are non-terminating status channels.
 */

#ifndef MG_COMMON_LOGGING_H
#define MG_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace mg
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of strprintf(). */
std::string vstrprintf(const char *fmt, va_list args);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Abort due to an internal invariant violation (a library bug). */
#define mg_panic(...) \
    ::mg::panicImpl(__FILE__, __LINE__, ::mg::strprintf(__VA_ARGS__))

/** Terminate due to a user-caused error (bad input or configuration). */
#define mg_fatal(...) \
    ::mg::fatalImpl(__FILE__, __LINE__, ::mg::strprintf(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define mg_warn(...) ::mg::warnImpl(::mg::strprintf(__VA_ARGS__))

/** Informational message to stderr. */
#define mg_inform(...) ::mg::informImpl(::mg::strprintf(__VA_ARGS__))

/** Assert an internal invariant with a formatted message. */
#define mg_assert(cond, ...)                                        \
    do {                                                            \
        if (!(cond)) {                                              \
            ::mg::panicImpl(__FILE__, __LINE__,                     \
                            std::string("assertion failed: " #cond  \
                                        " — ") +                    \
                                ::mg::strprintf(__VA_ARGS__));      \
        }                                                           \
    } while (0)

} // namespace mg

#endif // MG_COMMON_LOGGING_H
