/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload input generation,
 * synthetic data sets) flows through this xorshift64* generator so that
 * every experiment is reproducible bit-for-bit from its seed.
 */

#ifndef MG_COMMON_RNG_H
#define MG_COMMON_RNG_H

#include <cstdint>

namespace mg
{

/**
 * xorshift64* pseudo-random generator.
 *
 * Small, fast, and with far better statistical behaviour than rand().
 * Deliberately not std::mt19937: we want a header-only generator whose
 * sequence is stable across standard-library implementations.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
                        static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state;
};

} // namespace mg

#endif // MG_COMMON_RNG_H
