#include "common/stats_util.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace mg
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        mg_assert(x > 0.0, "geomean requires positive inputs, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

std::vector<double>
sCurve(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs;
}

std::vector<LabelledValue>
sCurve(std::vector<LabelledValue> xs)
{
    std::sort(xs.begin(), xs.end(),
              [](const LabelledValue &a, const LabelledValue &b) {
                  return a.value < b.value;
              });
    return xs;
}

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size())
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!head.empty()) {
        emit(head);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

std::string
fmtDouble(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
fmtPercentDelta(double ratio, int precision)
{
    double pct = (ratio - 1.0) * 100.0;
    return strprintf("%+.*f%%", precision, pct);
}

} // namespace mg
