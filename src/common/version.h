/**
 * @file
 * The simulator version string: the timing-model generation folded
 * into every persistent run identity (the DSE result store's content
 * address and the batch journal's run key).
 *
 * Bump this whenever a change can alter the deterministic stats JSON
 * of *any* run — a timing-model change, a stats-schema change, a
 * selector behaviour change.  Stale identities then simply miss:
 * cached results from an older simulator are never served as current
 * ones (`mgsim cache gc` reclaims them).  The golden snapshots in
 * tests/golden/ are the practical bump detector: if bless_golden.sh
 * shows a diff, this constant must change too.
 */

#ifndef MG_COMMON_VERSION_H
#define MG_COMMON_VERSION_H

namespace mg
{

/** Timing-model generation (see file comment for the bump rule). */
inline constexpr const char *kSimVersion = "mg-sim-8";

} // namespace mg

#endif // MG_COMMON_VERSION_H
