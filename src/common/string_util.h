/**
 * @file
 * String manipulation helpers shared by the assembler and tools.
 */

#ifndef MG_COMMON_STRING_UTIL_H
#define MG_COMMON_STRING_UTIL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mg
{

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on arbitrary whitespace runs; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** True if s begins with prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer with optional 0x prefix and +- sign.
 * @retval true on success (value stored in out).
 */
bool parseInt(std::string_view s, int64_t &out);

/**
 * FNV-1a 64-bit hash: the digest behind every content address in the
 * repo — BENCH stats-line digests (sim/perf_harness.h) and the DSE
 * result store's entry keys (dse/result_store.h).
 */
uint64_t fnv1a64(std::string_view text);

/** Fixed-width lower-case hex rendering of a 64-bit hash. */
std::string hex64(uint64_t value);

} // namespace mg

#endif // MG_COMMON_STRING_UTIL_H
