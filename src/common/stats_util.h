/**
 * @file
 * Small statistics helpers used by the experiment harness.
 *
 * The paper reports averages over 78 benchmarks and displays most data
 * as "S-curves" (each experiment's per-program results sorted
 * independently from worst to best).  These helpers compute the
 * summary statistics and the S-curve orderings.
 */

#ifndef MG_COMMON_STATS_UTIL_H
#define MG_COMMON_STATS_UTIL_H

#include <cstddef>
#include <string>
#include <vector>

namespace mg
{

/** Arithmetic mean; 0.0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0.0 for an empty vector. All inputs must be > 0. */
double geomean(const std::vector<double> &xs);

/** Median (average of middle two for even sizes); 0.0 for empty. */
double median(std::vector<double> xs);

/** Minimum; 0.0 for empty. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0.0 for empty. */
double maxOf(const std::vector<double> &xs);

/** Sorted copy, ascending (the paper's worst-to-best S-curve order). */
std::vector<double> sCurve(std::vector<double> xs);

/**
 * One labelled point of an experiment series (program name + value),
 * used when an S-curve must keep its program labels.
 */
struct LabelledValue
{
    std::string label;
    double value = 0.0;
};

/** Sort labelled values ascending by value (S-curve order). */
std::vector<LabelledValue> sCurve(std::vector<LabelledValue> xs);

/**
 * Fixed-width text table writer for bench output.
 *
 * Collects rows of strings and prints them with aligned columns, the
 * closest text equivalent of the paper's figures.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table with space-padded columns. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a ratio as a signed percentage, e.g. 1.02 -> "+2.0%". */
std::string fmtPercentDelta(double ratio, int precision = 1);

} // namespace mg

#endif // MG_COMMON_STATS_UTIL_H
