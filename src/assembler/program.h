/**
 * @file
 * The Program container: assembled MG-RISC code plus its data image.
 *
 * A Program is the unit the functional core executes, the profiler
 * profiles, the mini-graph rewriter transforms, and the timing core
 * simulates.  PCs are indices into @ref code; the data segment is a
 * byte image loaded at @ref dataBase inside a flat memory of
 * @ref memSize bytes.
 */

#ifndef MG_ASSEMBLER_PROGRAM_H
#define MG_ASSEMBLER_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "isa/instruction.h"

namespace mg::assembler
{

/** An assembled program image. */
struct Program
{
    std::string name;

    /** Decoded instructions; PC == index. */
    std::vector<isa::Instruction> code;

    /** Initial bytes of the data segment (starting at dataBase). */
    std::vector<uint8_t> dataInit;

    /** Virtual address where the data segment begins. */
    uint64_t dataBase = 0x10000;

    /** Total flat memory size (data + heap + stack). */
    uint64_t memSize = 8ull << 20;

    /** Entry PC (label "main" if present, else 0). */
    isa::Addr entry = 0;

    /** Code labels -> PC (kept for tooling and tests). */
    std::map<std::string, isa::Addr> codeLabels;

    /** Data labels -> absolute virtual address. */
    std::map<std::string, uint64_t> dataLabels;

    /** Number of instructions. */
    size_t size() const { return code.size(); }

    /**
     * Bounds-checked instruction access.  Inline: fetch, dispatch and
     * issue all read instructions through this accessor every cycle.
     */
    const isa::Instruction &
    at(isa::Addr pc) const
    {
        mg_assert(pc < code.size(),
                  "pc %u out of range (program '%s', %zu instructions)",
                  pc, name.c_str(), code.size());
        return code[pc];
    }

    /** Full listing with PCs and labels (debugging aid). */
    std::string listing() const;
};

} // namespace mg::assembler

#endif // MG_ASSEMBLER_PROGRAM_H
