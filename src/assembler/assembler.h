/**
 * @file
 * Two-pass assembler for MG-RISC assembly text.
 *
 * Syntax overview:
 *
 * @code
 *         .data
 * arr:    .word 1, 2, 3        ; 4-byte words
 * buf:    .space 256
 *         .text
 * main:   li   r1, 0
 * loop:   lw   r2, arr(r1)     ; load from label+register
 *         add  r3, r3, r2
 *         addi r1, r1, 4
 *         blt  r1, r4, loop
 *         halt
 * @endcode
 *
 * Directives: .text .data .byte .half .word .dword .space .align .asciiz
 * Registers:  r0..r31 with aliases zero (r0), sp (r30), ra (r31)
 * Pseudo-ops: mov, la, b, ble, bgt, bleu, bgtu, call, ret, neg, not,
 *             beqz, bnez
 * Comments:   from ';' or '#' to end of line
 *
 * Branch/jump targets are resolved to absolute PCs; data labels resolve
 * to absolute virtual addresses.  Errors raise mg_fatal with the line
 * number.
 */

#ifndef MG_ASSEMBLER_ASSEMBLER_H
#define MG_ASSEMBLER_ASSEMBLER_H

#include <string>
#include <string_view>

#include "assembler/program.h"

namespace mg::assembler
{

/** Options controlling assembly. */
struct AssembleOptions
{
    /** Program name recorded in the output. */
    std::string name = "program";

    /** Data segment base address. */
    uint64_t dataBase = 0x10000;

    /** Total flat memory size (bytes). */
    uint64_t memSize = 8ull << 20;
};

/**
 * Assemble MG-RISC source text into a Program.
 *
 * @param source assembly text
 * @param opts   assembly options
 * @return the assembled program
 */
Program assemble(std::string_view source, const AssembleOptions &opts = {});

/** Parse a register name ("r7", "sp", "zero", ...) or return -1. */
int parseRegister(std::string_view token);

} // namespace mg::assembler

#endif // MG_ASSEMBLER_ASSEMBLER_H
